//! Microbenchmarks for the simulation infrastructure: decoder, assembler,
//! emulator, predictors, caches, and the pipeline itself. These measure
//! *our* code, while the `figNN`/`tableN` binaries regenerate the *paper's*
//! results.
//!
//! Uses a small std-only timing harness (`harness = false`; no external
//! benchmark framework is available offline): each benchmark runs a warmup,
//! then reports the best-of-N mean time per iteration, which is stable
//! enough for the coarse regression tracking these serve.

use helios_core::{FpConfig, FusionPredictor, Uch, UchConfig};
use helios_emu::{Cpu, RetireStream};
use helios_isa::{decode, encode, parse_asm, Asm, Reg};
use helios_uarch::{Cache, CacheParams, StoreSets, Tage};
use std::hint::black_box;
use std::time::Instant;

/// Times `f` over `iters` iterations, repeated over `samples` rounds, and
/// prints the fastest round's per-iteration mean.
fn bench<T>(name: &str, iters: u64, samples: u32, mut f: impl FnMut() -> T) {
    // Warmup round.
    for _ in 0..iters.min(1000) {
        black_box(f());
    }
    let mut best = f64::INFINITY;
    for _ in 0..samples {
        let t0 = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let per_iter = t0.elapsed().as_secs_f64() / iters as f64;
        best = best.min(per_iter);
    }
    let (scaled, unit) = if best >= 1e-3 {
        (best * 1e3, "ms")
    } else if best >= 1e-6 {
        (best * 1e6, "µs")
    } else {
        (best * 1e9, "ns")
    };
    println!("{name:<32} {scaled:>10.2} {unit}/iter  ({iters} iters × {samples} samples)");
}

fn bench_isa() {
    let mut a = Asm::new();
    let buf = a.zeros(4096, 64);
    a.la(Reg::S0, buf);
    for i in 0..64 {
        a.ld(Reg::A0, (i % 32) * 8, Reg::S0);
        a.add(Reg::S1, Reg::S1, Reg::A0);
        a.sd(Reg::S1, (i % 32) * 8, Reg::S0);
    }
    a.halt();
    let prog = a.assemble().unwrap();
    let words = prog.words();

    bench("isa/decode_194_words", 10_000, 5, || {
        let mut n = 0usize;
        for &w in &words {
            n += decode(w).is_ok() as usize;
        }
        n
    });
    bench("isa/encode_program", 10_000, 5, || {
        prog.insts.iter().map(encode).fold(0u64, |a, w| a ^ w as u64)
    });
    let src = r#"
        li a0, 1000
    top:
        ld t0, 0(s0)
        add a1, a1, t0
        sd a1, 8(s0)
        addi a0, a0, -1
        bnez a0, top
        ebreak
    "#;
    bench("isa/assemble_text", 5_000, 5, || parse_asm(src).unwrap().len());
}

fn bench_emulator() {
    let prog = parse_asm(
        r#"
        li a0, 10000
        li s0, 0x100000
    top:
        ld t0, 0(s0)
        addi t0, t0, 3
        sd t0, 0(s0)
        addi a0, a0, -1
        bnez a0, top
        ebreak
    "#,
    )
    .unwrap();
    bench("emu/retire_50k_uops", 50, 5, || {
        let mut cpu = Cpu::new(prog.clone());
        cpu.run(1_000_000).unwrap()
    });
}

fn bench_predictors() {
    {
        let mut t = Tage::new();
        let mut hist = 0u64;
        let mut pc = 0x1000u64;
        bench("pred/tage_predict_update", 500_000, 5, move || {
            let taken = (pc >> 3) & 1 == 0;
            let ok = t.update(pc, hist, taken);
            hist = (hist << 1) | taken as u64;
            pc = pc.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407) & 0xffff;
            ok
        });
    }
    {
        let mut fp = FusionPredictor::new(FpConfig::default());
        for pc in (0..4096u64).step_by(4) {
            for _ in 0..3 {
                fp.train(pc, 0, (pc % 63 + 1) as u32);
            }
        }
        let mut pc = 0u64;
        bench("pred/fusion_predictor_lookup", 500_000, 5, move || {
            pc = (pc + 4) & 0xfff;
            fp.predict(pc, 0)
        });
    }
    {
        let mut uch = Uch::new(UchConfig::default());
        let mut line = 0u64;
        bench("pred/uch_observe", 500_000, 5, move || {
            uch.tick();
            line = (line + 0x40) & 0xffff;
            uch.observe(false, line)
        });
    }
    {
        let mut ss = StoreSets::new();
        ss.train_violation(0x200, 0x100);
        let mut seq = 0u64;
        bench("pred/store_sets", 500_000, 5, move || {
            seq += 1;
            ss.store_dispatched(0x100, seq);
            let d = ss.load_dependency(0x200);
            ss.store_executed(0x100, seq);
            d
        });
    }
}

fn bench_cache() {
    let mut cache = Cache::new(&CacheParams {
        size: 48 * 1024,
        ways: 12,
        line: 64,
        latency: 5,
    });
    let mut addr = 0u64;
    bench("cache/l1_access", 1_000_000, 5, move || {
        addr = (addr + 64) & 0xf_ffff;
        cache.access(addr, false)
    });
}

fn bench_pipeline() {
    use helios::FusionMode;
    use helios_uarch::{PipeConfig, Pipeline};
    let prog = parse_asm(
        r#"
        li a0, 2000
        li s0, 0x100000
    top:
        ld t0, 0(s0)
        add t1, t1, t0
        ld t2, 8(s0)
        add t1, t1, t2
        sd t1, 16(s0)
        addi a0, a0, -1
        bnez a0, top
        ebreak
    "#,
    )
    .unwrap();
    for mode in [FusionMode::NoFusion, FusionMode::Helios, FusionMode::OracleFusion] {
        let prog = prog.clone();
        bench(&format!("pipeline/simulate_{}", mode.name()), 10, 3, move || {
            let mut p = Pipeline::new(
                PipeConfig::with_fusion(mode),
                RetireStream::new(prog.clone(), 1_000_000),
            );
            p.try_run(10_000_000).expect("bench kernel simulates cleanly");
            p.stats().instructions
        });
    }
}

fn main() {
    // `cargo test` builds and runs bench targets with `--test` style args;
    // only actually measure when invoked via `cargo bench` (or directly).
    if std::env::args().any(|a| a == "--test") {
        println!("infrastructure benches: skipped under test harness");
        return;
    }
    bench_isa();
    bench_emulator();
    bench_predictors();
    bench_cache();
    bench_pipeline();
}
