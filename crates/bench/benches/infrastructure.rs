//! Criterion microbenchmarks for the simulation infrastructure: decoder,
//! assembler, emulator, predictors, and caches. These measure *our* code,
//! while the `figNN`/`tableN` binaries regenerate the *paper's* results.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use helios_core::{FpConfig, FusionPredictor, Uch, UchConfig};
use helios_emu::{Cpu, RetireStream};
use helios_isa::{decode, encode, parse_asm, Asm, Reg};
use helios_uarch::{Cache, CacheParams, StoreSets, Tage};

fn bench_isa(c: &mut Criterion) {
    let mut a = Asm::new();
    let buf = a.zeros(4096, 64);
    a.la(Reg::S0, buf);
    for i in 0..64 {
        a.ld(Reg::A0, (i % 32) * 8, Reg::S0);
        a.add(Reg::S1, Reg::S1, Reg::A0);
        a.sd(Reg::S1, (i % 32) * 8, Reg::S0);
    }
    a.halt();
    let prog = a.assemble().unwrap();
    let words = prog.words();

    let mut g = c.benchmark_group("isa");
    g.throughput(Throughput::Elements(words.len() as u64));
    g.bench_function("decode", |b| {
        b.iter(|| {
            let mut n = 0usize;
            for &w in &words {
                n += decode(w).is_ok() as usize;
            }
            n
        })
    });
    g.bench_function("encode", |b| {
        b.iter(|| prog.insts.iter().map(encode).fold(0u64, |a, w| a ^ w as u64))
    });
    g.bench_function("assemble_text", |b| {
        let src = r#"
            li a0, 1000
        top:
            ld t0, 0(s0)
            add a1, a1, t0
            sd a1, 8(s0)
            addi a0, a0, -1
            bnez a0, top
            ebreak
        "#;
        b.iter(|| parse_asm(src).unwrap().len())
    });
    g.finish();
}

fn bench_emulator(c: &mut Criterion) {
    let prog = parse_asm(
        r#"
        li a0, 10000
        li s0, 0x100000
    top:
        ld t0, 0(s0)
        addi t0, t0, 3
        sd t0, 0(s0)
        addi a0, a0, -1
        bnez a0, top
        ebreak
    "#,
    )
    .unwrap();
    let mut g = c.benchmark_group("emulator");
    g.throughput(Throughput::Elements(50_002));
    g.bench_function("retire_rate", |b| {
        b.iter_batched(
            || Cpu::new(prog.clone()),
            |mut cpu| cpu.run(1_000_000).unwrap(),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_predictors(c: &mut Criterion) {
    let mut g = c.benchmark_group("predictors");
    g.bench_function("tage_predict_update", |b| {
        let mut t = Tage::new();
        let mut hist = 0u64;
        let mut pc = 0x1000u64;
        b.iter(|| {
            let taken = (pc >> 3) & 1 == 0;
            let ok = t.update(pc, hist, taken);
            hist = (hist << 1) | taken as u64;
            pc = pc.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407) & 0xffff;
            ok
        })
    });
    g.bench_function("fusion_predictor_lookup", |b| {
        let mut fp = FusionPredictor::new(FpConfig::default());
        for pc in (0..4096u64).step_by(4) {
            for _ in 0..3 {
                fp.train(pc, 0, (pc % 63 + 1) as u32);
            }
        }
        let mut pc = 0u64;
        b.iter(|| {
            pc = (pc + 4) & 0xfff;
            fp.predict(pc, 0)
        })
    });
    g.bench_function("uch_observe", |b| {
        let mut uch = Uch::new(UchConfig::default());
        let mut line = 0u64;
        b.iter(|| {
            uch.tick();
            line = (line + 0x40) & 0xffff;
            uch.observe(false, line)
        })
    });
    g.bench_function("store_sets", |b| {
        let mut ss = StoreSets::new();
        ss.train_violation(0x200, 0x100);
        let mut seq = 0u64;
        b.iter(|| {
            seq += 1;
            ss.store_dispatched(0x100, seq);
            let d = ss.load_dependency(0x200);
            ss.store_executed(0x100, seq);
            d
        })
    });
    g.finish();
}

fn bench_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache");
    g.bench_function("l1_access", |b| {
        let mut cache = Cache::new(&CacheParams {
            size: 48 * 1024,
            ways: 12,
            line: 64,
            latency: 5,
        });
        let mut addr = 0u64;
        b.iter(|| {
            addr = (addr + 64) & 0xf_ffff;
            cache.access(addr, false)
        })
    });
    g.finish();
}

fn bench_pipeline(c: &mut Criterion) {
    use helios::FusionMode;
    use helios_uarch::{PipeConfig, Pipeline};
    let prog = parse_asm(
        r#"
        li a0, 2000
        li s0, 0x100000
    top:
        ld t0, 0(s0)
        add t1, t1, t0
        ld t2, 8(s0)
        add t1, t1, t2
        sd t1, 16(s0)
        addi a0, a0, -1
        bnez a0, top
        ebreak
    "#,
    )
    .unwrap();
    let mut g = c.benchmark_group("pipeline");
    g.sample_size(20);
    for mode in [FusionMode::NoFusion, FusionMode::Helios, FusionMode::OracleFusion] {
        g.bench_function(format!("simulate_{}", mode.name()), |b| {
            b.iter_batched(
                || {
                    (
                        PipeConfig::with_fusion(mode),
                        RetireStream::new(prog.clone(), 1_000_000),
                    )
                },
                |(cfg, stream)| {
                    let mut p = Pipeline::new(cfg, stream);
                    p.run(10_000_000);
                    p.stats().instructions
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_isa,
    bench_emulator,
    bench_predictors,
    bench_cache,
    bench_pipeline
);
criterion_main!(benches);
