//! Ablation study over the Helios design choices the paper fixes:
//! UCH load-history size (6), NCSF nesting depth (2), fusion-predictor
//! geometry (512×4 ×2 + selector), maximum pair distance (64), and the
//! fusion-region (cache access granularity) size (64 B).
//!
//! ```text
//! cargo run --release -p helios-bench --bin ablation [--quick|--only a,b]
//! ```

use helios::{geomean, run_workload_with, FusionMode, PipeConfig, Workload};

fn helios_cfg() -> PipeConfig {
    PipeConfig::with_fusion(FusionMode::Helios)
}

fn geomean_ipc(workloads: &[Workload], cfg: PipeConfig, label: &str) -> f64 {
    let vals: Vec<f64> = workloads
        .iter()
        .map(|w| {
            let s = run_workload_with(w, cfg);
            eprint!("\r{label:<28} {:<18}", w.name);
            s.ipc()
        })
        .collect();
    geomean(&vals)
}

fn main() {
    let workloads = helios_bench::select_workloads();
    eprintln!("ablating over {} workloads…", workloads.len());

    let baseline = geomean_ipc(&workloads, helios_cfg(), "Helios (paper params)");
    println!("\nHelios geomean IPC (paper parameters): {baseline:.4}");
    println!("\n{:<44} {:>10} {:>8}", "variant", "geomean", "vs base");
    let report = |name: &str, cfg: PipeConfig| {
        let g = geomean_ipc(&workloads, cfg, name);
        println!("{name:<44} {g:>10.4} {:>+7.2}%", (g / baseline - 1.0) * 100.0);
    };

    // UCH load-history size (paper: 6 entries).
    for entries in [1usize, 2, 12] {
        let mut cfg = helios_cfg();
        cfg.helios.uch.load_entries = entries;
        report(&format!("UCH load entries = {entries}"), cfg);
    }

    // NCSF nesting depth (paper: 2; "sufficient for most of the benefits").
    for nest in [1usize, 4, 8] {
        let mut cfg = helios_cfg();
        cfg.helios.max_nest = nest;
        report(&format!("Max Active NCS (nesting) = {nest}"), cfg);
    }

    // Maximum head→tail distance (paper: 64 µ-ops / 7-bit CN).
    for dist in [8u32, 16, 32] {
        let mut cfg = helios_cfg();
        cfg.helios.uch.max_distance = dist;
        report(&format!("max fusion distance = {dist} µ-ops"), cfg);
    }

    // Fusion-predictor capacity (paper: 512 sets × 4 ways per component).
    for sets in [64usize, 128] {
        let mut cfg = helios_cfg();
        cfg.helios.fp.sets = sets;
        cfg.helios.fp.selector_entries = sets * 4;
        report(&format!("FP sets per component = {sets}"), cfg);
    }

    // Fusion region = cache access granularity (paper: 64 B; §III-C notes
    // the granularity could be narrower or as wide as a line).
    for line in [16u64, 32] {
        let mut cfg = helios_cfg();
        cfg.helios.line_bytes = line;
        report(&format!("fusion region = {line} B"), cfg);
    }

    // Post-commit UCH decoupling queue (paper: 8 entries / 1 port is lossless).
    {
        let mut cfg = helios_cfg();
        cfg.helios.uch_queue.entries = Some(1);
        report("UCH queue = 1 entry", cfg);
        let mut cfg = helios_cfg();
        cfg.helios.uch_queue.entries = None;
        cfg.helios.uch_queue.drain_per_cycle = 8;
        report("UCH queue = ideal (unbounded, 8 ports)", cfg);
    }

    // Probabilistic confidence counters (Riley & Zilles [20], §V-B2's
    // accuracy-for-coverage trade).
    {
        let mut cfg = helios_cfg();
        cfg.helios.fp.probabilistic_confidence = true;
        report("probabilistic confidence", cfg);
    }

    println!("\n(paper choices should be at or near the top of each group)");
}
