//! Ablation study over the Helios design choices the paper fixes:
//! UCH load-history size (6), NCSF nesting depth (2), fusion-predictor
//! geometry (512×4 ×2 + selector), maximum pair distance (64), and the
//! fusion-region (cache access granularity) size (64 B).
//!
//! ```text
//! cargo run --release -p helios-bench --bin ablation [--quick|--only a,b]
//! ```

use helios::{geomean, FusionMode, PipeConfig, Progress, Report, SimRequest, Table};

/// Every ablated configuration, built through the validating builder so a
/// degenerate variant fails loudly here rather than hanging the sweep.
fn variants() -> Vec<(String, PipeConfig)> {
    let base = || PipeConfig::builder().fusion(FusionMode::Helios);
    let built = |name: String, b: helios::PipeConfigBuilder| {
        (name, b.build().expect("ablation variant validates"))
    };
    let mut v = vec![built("Helios (paper params)".into(), base())];

    // UCH load-history size (paper: 6 entries).
    for entries in [1usize, 2, 12] {
        v.push(built(
            format!("UCH load entries = {entries}"),
            base().tweak(|c| c.helios.uch.load_entries = entries),
        ));
    }
    // NCSF nesting depth (paper: 2; "sufficient for most of the benefits").
    for nest in [1usize, 4, 8] {
        v.push(built(
            format!("Max Active NCS (nesting) = {nest}"),
            base().tweak(|c| c.helios.max_nest = nest),
        ));
    }
    // Maximum head→tail distance (paper: 64 µ-ops / 7-bit CN).
    for dist in [8u32, 16, 32] {
        v.push(built(
            format!("max fusion distance = {dist} µ-ops"),
            base().tweak(|c| c.helios.uch.max_distance = dist),
        ));
    }
    // Fusion-predictor capacity (paper: 512 sets × 4 ways per component).
    for sets in [64usize, 128] {
        v.push(built(
            format!("FP sets per component = {sets}"),
            base().tweak(|c| {
                c.helios.fp.sets = sets;
                c.helios.fp.selector_entries = sets * 4;
            }),
        ));
    }
    // Fusion region = cache access granularity (paper: 64 B; §III-C notes
    // the granularity could be narrower or as wide as a line).
    for line in [16u64, 32] {
        v.push(built(
            format!("fusion region = {line} B"),
            base().tweak(|c| c.helios.line_bytes = line),
        ));
    }
    // Post-commit UCH decoupling queue (paper: 8 entries / 1 port is lossless).
    v.push(built(
        "UCH queue = 1 entry".into(),
        base().tweak(|c| c.helios.uch_queue.entries = Some(1)),
    ));
    v.push(built(
        "UCH queue = ideal (unbounded, 8 ports)".into(),
        base().tweak(|c| {
            c.helios.uch_queue.entries = None;
            c.helios.uch_queue.drain_per_cycle = 8;
        }),
    ));
    // Probabilistic confidence counters (Riley & Zilles [20], §V-B2's
    // accuracy-for-coverage trade).
    v.push(built(
        "probabilistic confidence".into(),
        base().tweak(|c| c.helios.fp.probabilistic_confidence = true),
    ));
    v
}

fn main() {
    let workloads = helios_bench::select_workloads();
    let vars = variants();
    eprintln!(
        "ablating {} variants over {} workloads…",
        vars.len(),
        workloads.len()
    );
    let progress = Progress::new(vars.len() * workloads.len());
    let results: Vec<(String, f64)> = vars
        .iter()
        .map(|(name, cfg)| {
            let vals: Vec<f64> = workloads
                .iter()
                .map(|w| {
                    let ipc = SimRequest::new(w, *cfg).run().stats.ipc();
                    progress.item_done(w.name, name);
                    ipc
                })
                .collect();
            (name.clone(), geomean(&vals))
        })
        .collect();
    progress.finish("ablation");

    let base = results[0].1;
    let mut t = Table::new(vec![
        "variant".into(),
        "geomean IPC".into(),
        "vs base".into(),
    ]);
    for (name, g) in &results {
        t.row(vec![
            name.clone(),
            format!("{g:.4}"),
            format!("{:+.2}%", (g / base - 1.0) * 100.0),
        ]);
    }
    let mut report = Report::new(
        "ablation",
        "Ablation: Helios design-choice sensitivity (geomean IPC over the suite)",
        t,
    );
    report.note("(paper choices should be at or near the top of each group)");
    report.print_and_emit();
}
