//! Figure 2 — percentage of fused µ-ops considering all idioms, split into
//! Memory (bold Table I pairs) and Others, relative to total dynamic µ-ops.

use helios::{format_row, Progress, Report, Table};
use helios_bench::census::census;

fn main() {
    let workloads = helios_bench::select_workloads();
    let mut t = Table::new(vec![
        "benchmark".into(),
        "Memory %".into(),
        "Others %".into(),
    ]);
    let progress = Progress::new(workloads.len());
    let (mut mem, mut oth) = (Vec::new(), Vec::new());
    for w in &workloads {
        let c = census(w);
        mem.push(c.mem_pct());
        oth.push(c.other_pct());
        t.row(format_row(w.name, &[c.mem_pct(), c.other_pct()], 2));
        progress.item_done(w.name, "census");
    }
    progress.finish("census");
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    t.row(format_row("average", &[avg(&mem), avg(&oth)], 2));
    let mut report = Report::new(
        "fig02",
        "Figure 2: fused µ-ops (consecutive Table I idioms) as % of dynamic µ-ops",
        t,
    );
    report.note("paper averages: Memory 5.6%, Others 1.1% (bitcount/susan/xz_2 Others-heavy)");
    report.print_and_emit();
}
