//! Figure 3 — normalized IPC of fusing *all* Table I idioms vs fusing only
//! memory pairs, relative to a no-fusion baseline.
//!
//! "All idioms" is RISCVFusion++; "memory only" is CSF-SBR plus the Helios
//! machinery disabled — i.e. the CSF-SBR configuration.

use helios::{format_row, FusionMode, Report, Table};

fn main() {
    let opts = helios_bench::parse_opts();
    let modes = [
        FusionMode::NoFusion,
        FusionMode::RiscvFusionPlusPlus,
        FusionMode::CsfSbr,
    ];
    let sweep = helios_bench::run_standard_sweep("fig03", &opts, &modes);
    let mut t = Table::new(vec![
        "benchmark".into(),
        "all idioms".into(),
        "memory only".into(),
    ]);
    for w in sweep.workloads() {
        let (Some(base), Some(all), Some(memo)) = (
            sweep.get(w, FusionMode::NoFusion),
            sweep.get(w, FusionMode::RiscvFusionPlusPlus),
            sweep.get(w, FusionMode::CsfSbr),
        ) else {
            continue; // quarantined cell: row omitted, named in the notes
        };
        let base = base.ipc();
        t.row(format_row(w, &[all.ipc() / base, memo.ipc() / base], 3));
    }
    let (_, g_all) = sweep.normalized_ipc(FusionMode::RiscvFusionPlusPlus, FusionMode::NoFusion);
    let (_, g_mem) = sweep.normalized_ipc(FusionMode::CsfSbr, FusionMode::NoFusion);
    t.row(format_row("geomean", &[g_all, g_mem], 3));
    let mut report = Report::new(
        "fig03",
        "Figure 3: normalized IPC, all idioms vs memory-only fusion",
        t,
    );
    report.note(
        "paper: ~1 percentage point between the two on average; susan the\n\
         notable exception (6.5 pp, non-memory idioms dominate there)",
    );
    helios_bench::finalize_sweep_report(report, &sweep);
}
