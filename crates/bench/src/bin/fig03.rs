//! Figure 3 — normalized IPC of fusing *all* Table I idioms vs fusing only
//! memory pairs, relative to a no-fusion baseline.
//!
//! "All idioms" is RISCVFusion++; "memory only" is CSF-SBR plus the Helios
//! machinery disabled — i.e. the CSF-SBR configuration.

use helios::{format_row, run_sweep_jobs, FusionMode, Report, Table};

fn main() {
    let opts = helios_bench::parse_opts();
    let workloads = opts.workloads;
    let modes = [
        FusionMode::NoFusion,
        FusionMode::RiscvFusionPlusPlus,
        FusionMode::CsfSbr,
    ];
    let sweep = run_sweep_jobs(&workloads, &modes, opts.jobs);
    let mut t = Table::new(vec![
        "benchmark".into(),
        "all idioms".into(),
        "memory only".into(),
    ]);
    for w in sweep.workloads() {
        let base = sweep.get(w, FusionMode::NoFusion).unwrap().ipc();
        let all = sweep.get(w, FusionMode::RiscvFusionPlusPlus).unwrap().ipc() / base;
        let memo = sweep.get(w, FusionMode::CsfSbr).unwrap().ipc() / base;
        t.row(format_row(w, &[all, memo], 3));
    }
    let (_, g_all) = sweep.normalized_ipc(FusionMode::RiscvFusionPlusPlus, FusionMode::NoFusion);
    let (_, g_mem) = sweep.normalized_ipc(FusionMode::CsfSbr, FusionMode::NoFusion);
    t.row(format_row("geomean", &[g_all, g_mem], 3));
    let mut report = Report::new(
        "fig03",
        "Figure 3: normalized IPC, all idioms vs memory-only fusion",
        t,
    );
    report.note(
        "paper: ~1 percentage point between the two on average; susan the\n\
         notable exception (6.5 pp, non-memory idioms dominate there)",
    );
    report.print_and_emit();
}
