//! Figure 4 — consecutive memory pairs by contiguity class (contiguous /
//! overlapping / same cache line / next line), relative to dynamic µ-ops.

use helios::{format_row, Progress, Report, Table};
use helios_bench::census::census;

fn main() {
    let workloads = helios_bench::select_workloads();
    let mut t = Table::new(vec![
        "benchmark".into(),
        "Contig %".into(),
        "Overlap %".into(),
        "SameLine %".into(),
        "NextLine %".into(),
    ]);
    let progress = Progress::new(workloads.len());
    let mut sums = [0.0f64; 4];
    for w in &workloads {
        let c = census(w);
        let f = |x: u64| {
            if c.uops == 0 { 0.0 } else { 100.0 * 2.0 * x as f64 / c.uops as f64 }
        };
        let row = [
            f(c.csf_contiguous),
            f(c.csf_overlapping),
            f(c.csf_same_line),
            f(c.csf_next_line),
        ];
        for (s, v) in sums.iter_mut().zip(row) {
            *s += v;
        }
        t.row(format_row(w.name, &row, 3));
        progress.item_done(w.name, "census");
    }
    progress.finish("census");
    let n = workloads.len() as f64;
    t.row(format_row(
        "average",
        &[sums[0] / n, sums[1] / n, sums[2] / n, sums[3] / n],
        3,
    ));
    let mut report = Report::new(
        "fig04",
        "Figure 4: consecutive memory pairs by contiguity class (% of dynamic µ-ops)",
        t,
    );
    report.note(
        "paper: contiguous dominates, overlap is rare, SameLine+NextLine add ~1%\n\
         (what architectural ldp/stp would leave on the table)",
    );
    report.print_and_emit();
}
