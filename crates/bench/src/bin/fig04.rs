//! Figure 4 — consecutive memory pairs by contiguity class (contiguous /
//! overlapping / same cache line / next line), relative to dynamic µ-ops.

use helios::{format_row, Table};
use helios_bench::census::census;

fn main() {
    let workloads = helios_bench::select_workloads();
    let mut t = Table::new(vec![
        "benchmark".into(),
        "Contig %".into(),
        "Overlap %".into(),
        "SameLine %".into(),
        "NextLine %".into(),
    ]);
    let mut sums = [0.0f64; 4];
    for w in &workloads {
        let c = census(w);
        let f = |x: u64| {
            if c.uops == 0 { 0.0 } else { 100.0 * 2.0 * x as f64 / c.uops as f64 }
        };
        let row = [
            f(c.csf_contiguous),
            f(c.csf_overlapping),
            f(c.csf_same_line),
            f(c.csf_next_line),
        ];
        for (s, v) in sums.iter_mut().zip(row) {
            *s += v;
        }
        t.row(format_row(w.name, &row, 3));
        eprint!("\rcensus: {:<18}", w.name);
    }
    eprintln!();
    let n = workloads.len() as f64;
    t.row(format_row(
        "average",
        &[sums[0] / n, sums[1] / n, sums[2] / n, sums[3] / n],
        3,
    ));
    println!("Figure 4: consecutive memory pairs by contiguity class (% of dynamic µ-ops)");
    println!("{t}");
    println!(
        "paper: contiguous dominates, overlap is rare, SameLine+NextLine add ~1%\n\
         (what architectural ldp/stp would leave on the table)"
    );
}
