//! Figure 5 — additional fusion potential from non-consecutive pairing
//! (NCSF) and from different-base-register (DBR) pairs, plus the asymmetric
//! share of NCSF pairs.

use helios::{format_row, Progress, Report, Table};
use helios_bench::census::census;

fn main() {
    let workloads = helios_bench::select_workloads();
    let mut t = Table::new(vec![
        "benchmark".into(),
        "CSF-mem %".into(),
        "+NCSF %".into(),
        "DBR %".into(),
        "NCSF asym %".into(),
    ]);
    let progress = Progress::new(workloads.len());
    let mut acc = [0.0f64; 4];
    for w in &workloads {
        let c = census(w);
        let asym = if c.ncsf_pairs == 0 {
            0.0
        } else {
            100.0 * c.ncsf_asymmetric as f64 / c.ncsf_pairs as f64
        };
        let row = [c.mem_pct(), c.ncsf_pct(), c.dbr_pct(), asym];
        for (a, v) in acc.iter_mut().zip(row) {
            *a += v;
        }
        t.row(format_row(w.name, &row, 2));
        progress.item_done(w.name, "census");
    }
    progress.finish("census");
    let n = workloads.len() as f64;
    t.row(format_row("average", &[acc[0] / n, acc[1] / n, acc[2] / n, acc[3] / n], 2));
    let mut report = Report::new(
        "fig05",
        "Figure 5: NCSF and DBR fusion potential (% of dynamic µ-ops)",
        t,
    );
    report.note("paper: NCSF adds ~5%; 12.1% of NCSF pairs asymmetric; DBR ~1.5%");
    report.print_and_emit();
}
