//! Figure 8 — committed CSF and NCSF pairs in Helios and OracleFusion,
//! relative to total dynamic memory instructions.

use helios::{format_row, run_sweep_jobs, FusionMode, Report, Table};

fn main() {
    let opts = helios_bench::parse_opts();
    let workloads = opts.workloads;
    let modes = [FusionMode::Helios, FusionMode::OracleFusion];
    let sweep = run_sweep_jobs(&workloads, &modes, opts.jobs);
    let mut t = Table::new(vec![
        "benchmark".into(),
        "Helios CSF %".into(),
        "Helios NCSF %".into(),
        "Oracle CSF %".into(),
        "Oracle NCSF %".into(),
    ]);
    let mut acc = [0.0f64; 4];
    for w in sweep.workloads() {
        let h = sweep.get(w, FusionMode::Helios).unwrap();
        let o = sweep.get(w, FusionMode::OracleFusion).unwrap();
        let (hc, hn) = h.fused_pct_of_mem();
        let (oc, on) = o.fused_pct_of_mem();
        let row = [hc, hn, oc, on];
        for (a, v) in acc.iter_mut().zip(row) {
            *a += v;
        }
        t.row(format_row(w, &row, 2));
    }
    let n = sweep.workloads().len() as f64;
    t.row(format_row("average", &[acc[0] / n, acc[1] / n, acc[2] / n, acc[3] / n], 2));
    let mut report = Report::new(
        "fig08",
        "Figure 8: CSF / NCSF pairs as % of dynamic memory instructions",
        t,
    );
    report.note(
        "paper: Helios 6.7% CSF + 5.5% NCSF, Oracle 6.1% CSF (Helios favours\n\
         CSF during training); overall Helios 12.2% vs Oracle 13.6% of µ-ops",
    );
    report.print_and_emit();
}
