//! Figure 8 — committed CSF and NCSF pairs in Helios and OracleFusion,
//! relative to total dynamic memory instructions.

use helios::{format_row, FusionMode, Report, Table};

fn main() {
    let opts = helios_bench::parse_opts();
    let modes = [FusionMode::Helios, FusionMode::OracleFusion];
    let sweep = helios_bench::run_standard_sweep("fig08", &opts, &modes);
    let mut t = Table::new(vec![
        "benchmark".into(),
        "Helios CSF %".into(),
        "Helios NCSF %".into(),
        "Oracle CSF %".into(),
        "Oracle NCSF %".into(),
    ]);
    let mut acc = [0.0f64; 4];
    let mut n = 0.0f64;
    for w in sweep.workloads() {
        let (Some(h), Some(o)) = (
            sweep.get(w, FusionMode::Helios),
            sweep.get(w, FusionMode::OracleFusion),
        ) else {
            continue; // quarantined cell: row omitted, named in the notes
        };
        let (hc, hn) = h.fused_pct_of_mem();
        let (oc, on) = o.fused_pct_of_mem();
        let row = [hc, hn, oc, on];
        for (a, v) in acc.iter_mut().zip(row) {
            *a += v;
        }
        n += 1.0;
        t.row(format_row(w, &row, 2));
    }
    t.row(format_row("average", &[acc[0] / n, acc[1] / n, acc[2] / n, acc[3] / n], 2));
    let mut report = Report::new(
        "fig08",
        "Figure 8: CSF / NCSF pairs as % of dynamic memory instructions",
        t,
    );
    report.note(
        "paper: Helios 6.7% CSF + 5.5% NCSF, Oracle 6.1% CSF (Helios favours\n\
         CSF during training); overall Helios 12.2% vs Oracle 13.6% of µ-ops",
    );
    helios_bench::finalize_sweep_report(report, &sweep);
}
