//! Figure 9 — Rename and Dispatch structural stalls as a percentage of
//! execution cycles, for the no-fusion baseline, Helios, and OracleFusion.

use helios::{format_row, run_sweep_jobs, FusionMode, Report, Table};

fn main() {
    let opts = helios_bench::parse_opts();
    let workloads = opts.workloads;
    let modes = [
        FusionMode::NoFusion,
        FusionMode::Helios,
        FusionMode::OracleFusion,
    ];
    let sweep = run_sweep_jobs(&workloads, &modes, opts.jobs);
    let mut t = Table::new(vec![
        "benchmark".into(),
        "base %".into(),
        "helios %".into(),
        "oracle %".into(),
        "base SQ%".into(),
        "base ROB%".into(),
        "base IQ%".into(),
    ]);
    for w in sweep.workloads() {
        let b = sweep.get(w, FusionMode::NoFusion).unwrap();
        let h = sweep.get(w, FusionMode::Helios).unwrap();
        let o = sweep.get(w, FusionMode::OracleFusion).unwrap();
        let pc = |n: u64, d: u64| if d == 0 { 0.0 } else { 100.0 * n as f64 / d as f64 };
        t.row(format_row(
            w,
            &[
                b.stall_pct(),
                h.stall_pct(),
                o.stall_pct(),
                pc(b.dispatch_stall_sq, b.cycles),
                pc(b.dispatch_stall_rob, b.cycles),
                pc(b.dispatch_stall_iq, b.cycles),
            ],
            1,
        ));
    }
    let mut report = Report::new(
        "fig09",
        "Figure 9: Rename+Dispatch structural stalls (% of cycles)",
        t,
    );
    report.note("paper: e.g. 657.xz_1 baseline spends 88% of cycles waiting on an SQ entry");
    report.print_and_emit();
}
