//! Figure 9 — Rename and Dispatch structural stalls as a percentage of
//! execution cycles, for the no-fusion baseline, Helios, and OracleFusion.

use helios::{format_row, FusionMode, Report, Table};

fn main() {
    let opts = helios_bench::parse_opts();
    let modes = [
        FusionMode::NoFusion,
        FusionMode::Helios,
        FusionMode::OracleFusion,
    ];
    let sweep = helios_bench::run_standard_sweep("fig09", &opts, &modes);
    let mut t = Table::new(vec![
        "benchmark".into(),
        "base %".into(),
        "helios %".into(),
        "oracle %".into(),
        "base SQ%".into(),
        "base ROB%".into(),
        "base IQ%".into(),
    ]);
    for w in sweep.workloads() {
        let (Some(b), Some(h), Some(o)) = (
            sweep.get(w, FusionMode::NoFusion),
            sweep.get(w, FusionMode::Helios),
            sweep.get(w, FusionMode::OracleFusion),
        ) else {
            continue; // quarantined cell: row omitted, named in the notes
        };
        let pc = |n: u64, d: u64| if d == 0 { 0.0 } else { 100.0 * n as f64 / d as f64 };
        t.row(format_row(
            w,
            &[
                b.stall_pct(),
                h.stall_pct(),
                o.stall_pct(),
                pc(b.dispatch_stall_sq, b.cycles),
                pc(b.dispatch_stall_rob, b.cycles),
                pc(b.dispatch_stall_iq, b.cycles),
            ],
            1,
        ));
    }
    let mut report = Report::new(
        "fig09",
        "Figure 9: Rename+Dispatch structural stalls (% of cycles)",
        t,
    );
    report.note("paper: e.g. 657.xz_1 baseline spends 88% of cycles waiting on an SQ entry");
    helios_bench::finalize_sweep_report(report, &sweep);
}
