//! Figure 10 — IPC of all five fusion configurations, normalized to the
//! NoFusion baseline, per application plus the geometric mean.
//!
//! Also prints the paper's §V-B headline numbers: Helios vs NoFusion and vs
//! CSF-SBR, and OracleFusion vs NoFusion.
//!
//! ```text
//! cargo run --release -p helios-bench --bin fig10 [--quick|--only a,b] [--jobs N]
//! ```
//!
//! Also writes `BENCH_sweep.json` (wall-clock, cells/sec, simulated
//! Mcycles/sec, jobs used) to the working directory so the simulator's own
//! performance trajectory is tracked alongside its outputs. Set
//! `HELIOS_BENCH_STABLE=1` to zero the wall-clock-derived fields so the
//! file can be diffed across runs (resume-equivalence CI).

use helios::{format_row, FusionMode, Report, Table};
use std::time::Instant;

fn main() {
    let opts = helios_bench::parse_opts();
    let modes = FusionMode::ALL;
    let start = Instant::now();
    let sweep = helios_bench::run_standard_sweep("fig10", &opts, &modes);
    let wall = start.elapsed().as_secs_f64();
    write_bench_json(&sweep, wall, opts.jobs);

    let mut headers = vec!["benchmark".to_string(), "IPC(base)".to_string()];
    headers.extend(
        modes
            .iter()
            .skip(1)
            .map(|m| m.name().to_string()),
    );
    let mut table = Table::new(headers);

    for w in sweep.workloads() {
        let Some(base) = sweep.get(w, FusionMode::NoFusion).map(|s| s.ipc()) else {
            continue; // quarantined baseline: row omitted, named in the notes
        };
        let mut vals = vec![base];
        let complete = modes.iter().skip(1).all(|&m| {
            sweep
                .get(w, m)
                .map(|s| vals.push(s.ipc() / base))
                .is_some()
        });
        if complete {
            table.row(format_row(w, &vals, 3));
        }
    }
    // Geomean row.
    let mut geo = vec![f64::NAN];
    for &m in modes.iter().skip(1) {
        let (_, g) = sweep.normalized_ipc(m, FusionMode::NoFusion);
        geo.push(g);
    }
    table.row(format_row("geomean", &geo, 3));

    let pct = |m: FusionMode, b: FusionMode| {
        let vals: Vec<f64> = sweep
            .workloads()
            .iter()
            .filter_map(|w| Some(sweep.get(w, m)?.ipc() / sweep.get(w, b)?.ipc()))
            .collect();
        (helios::geomean(&vals) - 1.0) * 100.0
    };
    let mut report = Report::new("fig10", "Figure 10: IPC normalized to NoFusion", table);
    report.note("§V-B headline (geomean speedups):");
    report.note(format!(
        "  RISCVFusion   vs NoFusion : {:+.1}%   (paper:  +0.8%)",
        pct(FusionMode::RiscvFusion, FusionMode::NoFusion)
    ));
    report.note(format!(
        "  CSF-SBR       vs NoFusion : {:+.1}%   (paper:  +6.0%)",
        pct(FusionMode::CsfSbr, FusionMode::NoFusion)
    ));
    report.note(format!(
        "  RISCVFusion++ vs NoFusion : {:+.1}%   (paper:  +7.0%)",
        pct(FusionMode::RiscvFusionPlusPlus, FusionMode::NoFusion)
    ));
    report.note(format!(
        "  Helios        vs NoFusion : {:+.1}%   (paper: +14.2%)",
        pct(FusionMode::Helios, FusionMode::NoFusion)
    ));
    report.note(format!(
        "  Helios        vs CSF-SBR  : {:+.1}%   (paper:  +8.2%)",
        pct(FusionMode::Helios, FusionMode::CsfSbr)
    ));
    report.note(format!(
        "  OracleFusion  vs NoFusion : {:+.1}%   (paper: +16.3%)",
        pct(FusionMode::OracleFusion, FusionMode::NoFusion)
    ));
    helios_bench::finalize_sweep_report(report, &sweep);
}

/// Records the sweep's own throughput in `BENCH_sweep.json`. With
/// `HELIOS_BENCH_STABLE=1` the wall-clock-derived fields are zeroed so the
/// file is a pure function of the simulated cells and can be diffed across
/// runs (e.g. interrupted-then-resumed vs uninterrupted).
fn write_bench_json(sweep: &helios::Sweep, wall_seconds: f64, jobs: usize) {
    let stable = std::env::var("HELIOS_BENCH_STABLE").is_ok_and(|v| v == "1");
    let wall_seconds = if stable { 0.0 } else { wall_seconds };
    let cells = sweep.results().len();
    let sim_cycles: u64 = sweep.results().iter().map(|r| r.stats.cycles).sum();
    let per_sec = |x: f64| {
        if stable {
            0.0
        } else {
            x / wall_seconds
        }
    };
    let json = format!(
        "{{\n  \"benchmark\": \"fig10_sweep\",\n  \"workloads\": {},\n  \"modes\": {},\n  \"cells\": {},\n  \"jobs\": {},\n  \"wall_seconds\": {:.3},\n  \"cells_per_sec\": {:.3},\n  \"simulated_cycles\": {},\n  \"simulated_mcycles_per_sec\": {:.3}\n}}\n",
        sweep.workloads().len(),
        FusionMode::ALL.len(),
        cells,
        jobs,
        wall_seconds,
        per_sec(cells as f64),
        sim_cycles,
        per_sec(sim_cycles as f64 / 1e6),
    );
    match std::fs::write("BENCH_sweep.json", &json) {
        Ok(()) => eprintln!("wrote BENCH_sweep.json ({cells} cells, {wall_seconds:.1}s, {jobs} jobs)"),
        Err(e) => eprintln!("warning: could not write BENCH_sweep.json: {e}"),
    }
}
