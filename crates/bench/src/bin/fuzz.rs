//! fuzz — differential co-simulation fuzzing campaign driver.
//!
//! Generates seeded random RV64IM programs (`helios::fuzz`) and drives the
//! three oracles over each one: decode totality/roundtrip at the word
//! level, emulator ↔ pipeline commit-trace lockstep, and architectural
//! invariance across all six fusion modes. Failures are delta-debug
//! minimized and printed in the committable corpus (`.s`) format.
//!
//! ```text
//! fuzz [--seed N] [--iters N] [--profile mixed|branch-dense|mem-dense]
//!      [--jobs N] [--quiet] [--replay DIR]
//! ```
//!
//! `--replay DIR` switches to corpus-replay mode: every committed seed
//! under `DIR` is re-checked and no campaign (or report artifact) runs.
//! Campaign mode emits `results/fuzz.{json,csv}`. Exits 0 only when every
//! oracle held.

use helios::fuzz::{replay_corpus, run_campaign, FuzzConfig, Profile};
use helios::{Report, Table};

fn usage() -> ! {
    eprintln!(
        "usage: fuzz [--seed N] [--iters N] [--profile mixed|branch-dense|mem-dense] \
         [--jobs N] [--quiet] [--replay DIR]"
    );
    std::process::exit(2)
}

fn parse_u64(what: &str, s: &str) -> u64 {
    let parsed = if let Some(hex) = s.strip_prefix("0x") {
        u64::from_str_radix(hex, 16)
    } else {
        s.parse()
    };
    parsed.unwrap_or_else(|_| {
        eprintln!("error: bad {what} `{s}`");
        usage()
    })
}

fn main() {
    let mut cfg = FuzzConfig::new(1, 1000);
    let mut replay: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut val = || {
            args.next().unwrap_or_else(|| {
                eprintln!("error: `{a}` needs a value");
                usage()
            })
        };
        match a.as_str() {
            "--seed" => cfg.seed = parse_u64("seed", &val()),
            "--iters" => cfg.iters = parse_u64("iteration count", &val()),
            "--jobs" => cfg.jobs = parse_u64("job count", &val()).max(1) as usize,
            "--profile" => {
                let v = val();
                cfg.profile = Some(Profile::parse(&v).unwrap_or_else(|| {
                    eprintln!("error: unknown profile `{v}`");
                    usage()
                }));
            }
            "--quiet" => cfg.quiet = true,
            "--replay" => replay = Some(val()),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("error: unknown option `{other}`");
                usage()
            }
        }
    }

    if let Some(dir) = replay {
        replay_main(&dir);
    }

    println!(
        "fuzz: seed {:#x}, {} programs, profile {}, {} jobs",
        cfg.seed,
        cfg.iters,
        cfg.profile.map_or("rotating", Profile::name),
        cfg.jobs
    );
    let start = std::time::Instant::now();
    let summary = run_campaign(cfg);
    let elapsed = start.elapsed().as_secs_f64();

    for f in &summary.failures {
        println!(
            "FAIL iter {} (seed {:#x}, {}): {}",
            f.index,
            f.seed,
            f.profile.name(),
            f.message
        );
        if f.minimized.is_empty() {
            println!("  (word-level failure: add the word to tests/corpus/words.txt)");
        } else {
            println!("  minimized reproducer (commit under tests/corpus/):");
            for line in f.minimized.lines() {
                println!("  | {line}");
            }
        }
    }

    let mut table = Table::new(vec!["metric".into(), "value".into()]);
    table.row(vec!["programs".into(), summary.programs.to_string()]);
    table.row(vec!["words_screened".into(), summary.words.to_string()]);
    table.row(vec!["static_insts".into(), summary.static_insts.to_string()]);
    table.row(vec!["emulated_uops".into(), summary.uops.to_string()]);
    for (p, n) in Profile::ALL.iter().zip(summary.per_profile) {
        table.row(vec![format!("programs[{}]", p.name()), n.to_string()]);
    }
    table.row(vec!["failures".into(), summary.failures.len().to_string()]);
    let mut report = Report::new(
        "fuzz",
        format!(
            "fuzz: differential co-simulation campaign (seed {:#x}, {} programs)",
            cfg.seed, cfg.iters
        ),
        table,
    );
    report.note(format!(
        "oracles: decode totality/roundtrip, emulator<->pipeline lockstep, {}-mode invariance",
        helios::FusionMode::ALL.len()
    ));
    report.note(format!("wall-clock: {elapsed:.1}s at {} jobs", cfg.jobs));
    if let Err(e) = report.emit() {
        eprintln!("warning: could not write fuzz artifacts: {e}");
    }

    if summary.failures.is_empty() {
        println!(
            "fuzz: {} programs ({} static insts, {} uops x 6 modes) + {} words, zero oracle violations in {elapsed:.1}s",
            summary.programs, summary.static_insts, summary.uops, summary.words
        );
    } else {
        println!(
            "fuzz: {} FAILURES over {} programs",
            summary.failures.len(),
            summary.programs
        );
        std::process::exit(1);
    }
}

/// Corpus-replay mode: re-check every committed seed, no artifacts.
fn replay_main(dir: &str) -> ! {
    let results = match replay_corpus(dir) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: cannot read corpus `{dir}`: {e}");
            std::process::exit(2);
        }
    };
    if results.is_empty() {
        // A corpus replaying nothing must not report success.
        eprintln!("error: no corpus seeds found under `{dir}`");
        std::process::exit(2);
    }
    let mut failed = 0usize;
    for (name, failure) in &results {
        match failure {
            None => println!("  ok   {name}"),
            Some(m) => {
                failed += 1;
                println!("  FAIL {name}: {m}");
            }
        }
    }
    if failed == 0 {
        println!("fuzz: corpus replay clean ({} seeds)", results.len());
        std::process::exit(0);
    }
    println!("fuzz: {failed}/{} corpus seeds FAILED", results.len());
    std::process::exit(1)
}
