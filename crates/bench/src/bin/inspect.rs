//! Full statistics dump for one workload across all configurations —
//! the debugging companion to the figure binaries.
//!
//! ```text
//! cargo run --release -p helios-bench --bin inspect -- --only 605.mcf
//! cargo run --release -p helios-bench --bin inspect -- --only 605.mcf --obs
//! ```
//!
//! With `--obs`, each configuration additionally runs with the event
//! observer attached and dumps the full self-describing stats registry
//! (every counter with its unit and description, plus the observer's
//! fetch-to-commit latency and occupancy histograms).

use helios::{FusionMode, ObsOpts, SimRequest};
use helios_bench::ExtraFlag;

fn main() {
    let opts = helios_bench::parse_opts_with(&[ExtraFlag::Bool("--obs")]);
    let dump_registry = opts.extra[0].is_some();
    for w in &opts.workloads {
        println!("=== {} ===", w.name);
        for mode in FusionMode::ALL {
            let obs = if dump_registry {
                ObsOpts::metrics()
            } else {
                ObsOpts::off()
            };
            let run = SimRequest::mode(w, mode).observing(obs).run();
            let s = &run.stats;
            println!(
                "{:<14} ipc {:>6.3}  cyc {:>9}  inst {:>8}  uops {:>8}",
                mode.name(),
                s.ipc(),
                s.cycles,
                s.instructions,
                s.uops
            );
            println!(
                "   pairs: csf {} ncsf {}  (ld {} / st {} / other {})  dbr {} asym {}",
                s.fusion.csf_pairs,
                s.fusion.ncsf_pairs,
                s.fusion.idiom_count(helios_core::Idiom::LoadPair),
                s.fusion.idiom_count(helios_core::Idiom::StorePair),
                s.fusion.other_pairs(),
                s.fusion.dbr_pairs,
                s.fusion.asymmetric_pairs,
            );
            println!(
                "   contig: cont {} ovl {} same {} next {} | pred {} ok {} mis {} nest_abort {} repairs {:?}",
                s.fusion.contiguous,
                s.fusion.overlapping,
                s.fusion.same_line,
                s.fusion.next_line,
                s.fusion.predictions,
                s.fusion.predictions_correct,
                s.fusion.mispredictions,
                s.ncsf_nest_aborts,
                s.fusion.repairs,
            );
            println!(
                "   stalls: rename {} rob {} iq {} lq {} sq {} redirect {} | flush: mem {} fus {}",
                s.rename_stall_cycles,
                s.dispatch_stall_rob,
                s.dispatch_stall_iq,
                s.dispatch_stall_lq,
                s.dispatch_stall_sq,
                s.fetch_stall_redirect,
                s.memdep_flushes,
                s.fusion_flushes,
            );
            println!(
                "   mem: l1acc {} l1m {} l2m {} l3m {} stlf {} | br {}/{} ind {}/{}",
                s.l1d_accesses,
                s.l1d_misses,
                s.l2_misses,
                s.l3_misses,
                s.stlf_forwards,
                s.branch_mispredicts,
                s.branches,
                s.indirect_mispredicts,
                s.indirects,
            );
            if dump_registry {
                println!("   --- registry ---");
                for line in run.registry().to_text().lines() {
                    println!("   {line}");
                }
            }
        }
        println!();
    }
}
