//! Full statistics dump for one workload across all configurations —
//! the debugging companion to the figure binaries.
//!
//! ```text
//! cargo run --release -p helios-bench --bin inspect -- --only 605.mcf
//! ```

use helios::{run_workload, FusionMode};

fn main() {
    let workloads = helios_bench::select_workloads();
    for w in &workloads {
        println!("=== {} ===", w.name);
        for mode in FusionMode::ALL {
            let s = run_workload(w, mode);
            println!(
                "{:<14} ipc {:>6.3}  cyc {:>9}  inst {:>8}  uops {:>8}",
                mode.name(),
                s.ipc(),
                s.cycles,
                s.instructions,
                s.uops
            );
            println!(
                "   pairs: csf {} ncsf {}  (ld {} / st {} / other {})  dbr {} asym {}",
                s.fusion.csf_pairs,
                s.fusion.ncsf_pairs,
                s.fusion.idiom_count(helios_core::Idiom::LoadPair),
                s.fusion.idiom_count(helios_core::Idiom::StorePair),
                s.fusion.other_pairs(),
                s.fusion.dbr_pairs,
                s.fusion.asymmetric_pairs,
            );
            println!(
                "   contig: cont {} ovl {} same {} next {} | pred {} ok {} mis {} nest_abort {} repairs {:?}",
                s.fusion.contiguous,
                s.fusion.overlapping,
                s.fusion.same_line,
                s.fusion.next_line,
                s.fusion.predictions,
                s.fusion.predictions_correct,
                s.fusion.mispredictions,
                s.ncsf_nest_aborts,
                s.fusion.repairs,
            );
            println!(
                "   stalls: rename {} rob {} iq {} lq {} sq {} redirect {} | flush: mem {} fus {}",
                s.rename_stall_cycles,
                s.dispatch_stall_rob,
                s.dispatch_stall_iq,
                s.dispatch_stall_lq,
                s.dispatch_stall_sq,
                s.fetch_stall_redirect,
                s.memdep_flushes,
                s.fusion_flushes,
            );
            println!(
                "   mem: l1acc {} l1m {} l2m {} l3m {} stlf {} | br {}/{} ind {}/{}",
                s.l1d_accesses,
                s.l1d_misses,
                s.l2_misses,
                s.l3_misses,
                s.stlf_forwards,
                s.branch_mispredicts,
                s.branches,
                s.indirect_mispredicts,
                s.indirects,
            );
        }
        println!();
    }
}
