//! `sweepd` — the sweep-as-a-service daemon (DESIGN.md §17).
//!
//! Serves sweep grids to `--server` figure binaries over HTTP/1.1, backed
//! by a persistent result cache keyed `(trace digest, config digest, ISA
//! version)` and a shared content-addressed trace store. Repeated cells
//! are answered from the cache without simulating.
//!
//! ```text
//! cargo run --release -p helios-bench --bin serve -- --addr 127.0.0.1:0
//! cargo run --release -p helios-bench --bin fig10 -- --quick --server http://127.0.0.1:PORT
//! ```
//!
//! Flags:
//! * `--addr <host:port>` — bind address (default `127.0.0.1:0`; the
//!   chosen port is announced on stderr as `sweepd: listening on ...`);
//! * `--jobs <N>` — simulation worker threads (default: all cores);
//! * `--cache-dir <dir>` — daemon state directory (default
//!   `results/sweepd`; `HELIOS_RESULTS_DIR` moves `results/`);
//! * `--cell-timeout <secs>` — wall-clock budget per cell.
//!
//! SIGINT stops accepting, lets in-flight cells finish, and exits 0 — the
//! cache journal is fsynced per append, so finished work is durable.

use helios_bench::server::{Server, ServerConfig};
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: serve [--addr <host:port>] [--jobs <N>] [--cache-dir <dir>] [--cell-timeout <secs>]"
    );
    std::process::exit(helios::exit::USAGE);
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut config = ServerConfig::default();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => {
                i += 1;
                match args.get(i) {
                    Some(a) => config.addr = a.clone(),
                    None => usage(),
                }
            }
            "--jobs" => {
                i += 1;
                config.jobs = match args.get(i).map(|s| s.parse::<usize>()) {
                    Some(Ok(n)) if n >= 1 => n,
                    _ => usage(),
                };
            }
            "--cache-dir" => {
                i += 1;
                match args.get(i) {
                    Some(d) => config.cache_dir = d.into(),
                    None => usage(),
                }
            }
            "--cell-timeout" => {
                i += 1;
                config.cell_timeout = match args.get(i).map(|s| s.parse::<u64>()) {
                    Some(Ok(secs)) if secs >= 1 => Some(Duration::from_secs(secs)),
                    _ => usage(),
                };
            }
            other => {
                eprintln!("error: unknown argument `{other}`");
                usage();
            }
        }
        i += 1;
    }

    helios::install_interrupt_handler();
    let server = Server::bind(&config).unwrap_or_else(|e| {
        eprintln!("error: sweepd: {e}");
        std::process::exit(helios::exit::FAILED);
    });
    eprintln!("sweepd: listening on http://{}", server.local_addr());
    eprintln!(
        "sweepd: cache dir {} ({} worker(s))",
        config.cache_dir.display(),
        config.jobs
    );
    server.run();
    // run() returns on SIGINT or stop(); dropping the server joins the
    // workers after their in-flight cells finish.
    drop(server);
    eprintln!("sweepd: shut down cleanly");
    std::process::exit(helios::exit::COMPLETE);
}
