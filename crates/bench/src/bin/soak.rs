//! soak — fault-injection soak harness for the Helios repair paths.
//!
//! For every selected workload (all 32 by default; `--quick` / `--only`
//! as usual), runs the Helios pipeline with the lockstep oracle checker
//! attached:
//!
//! * **baseline** — no faults; establishes the reference IPC;
//! * **suppress / corrupt / evict / flush / chaos** — the deterministic
//!   fault modes of `FaultConfig::modes`, each forcing a different family
//!   of repair paths (§IV-C) to fire;
//! * **starve** — chaos faults on a starvation-sized core (ROB 8, IQ 4,
//!   LQ 4, SQ 2), where forward progress leans on the resource-deadlock
//!   breaker.
//!
//! Every run must complete: `try_run` returning `Ok` proves no hang, no
//! panic, and zero lockstep/invariant violations. Faulted IPC must also
//! stay inside a sanity envelope of the baseline — faults may slow the
//! machine down, but a "fault" that speeds it up or grinds it to a halt
//! means the model leaked architectural state. Exits non-zero on any
//! failure, printing a reproducible (seeded) description.

use helios::{Report, Table, Workload};
use helios_core::FusionMode;
use helios_uarch::{FaultConfig, PipeConfig, Pipeline};

/// PRNG seed for every injector (reruns reproduce exactly).
const SEED: u64 = 0x50a7;

/// Faulted IPC must stay within `[LO, HI] × baseline`.
const ENVELOPE: (f64, f64) = (0.05, 1.25);

/// The starvation-sized core, through the validating builder: every
/// structure at (or near) its minimum, watchdog tight enough to catch a
/// hang quickly.
fn starved() -> PipeConfig {
    PipeConfig::builder()
        .fusion(FusionMode::Helios)
        .rob_size(8)
        .iq_size(4)
        .lq_size(4)
        .sq_size(2)
        .aq_size(16)
        .prf_size(48)
        .watchdog_cycles(50_000)
        .build()
        .expect("starvation config is small but valid")
}

/// One oracle-checked run. `Ok((ipc, injected))` only if the pipeline
/// drained with zero invariant violations.
fn soak_run(w: &Workload, cfg: PipeConfig, fault: Option<FaultConfig>) -> Result<(f64, u64), String> {
    let mut pipe = Pipeline::new(cfg, w.stream());
    pipe.attach_checker(w.stream());
    if let Some(f) = fault {
        pipe.attach_faults(f);
    }
    match pipe.try_run(w.fuel * 40) {
        Ok(s) => Ok((s.ipc(), s.injected_faults)),
        Err(e) => Err(e.to_string()),
    }
}

fn main() {
    let workloads = helios_bench::select_workloads();
    if workloads.is_empty() {
        // A soak that runs nothing must not report success.
        eprintln!("error: no workloads selected (check --only names)");
        std::process::exit(2);
    }
    let modes = FaultConfig::modes(SEED);
    let cfg = PipeConfig::with_fusion(FusionMode::Helios);
    let mut failures: Vec<String> = Vec::new();
    let mut runs = 0u64;

    let mut headers = vec!["benchmark".to_string(), "base".to_string()];
    headers.extend(modes.iter().map(|(n, _)| n.to_string()));
    headers.push("starve".into());
    let mut table = Table::new(headers);

    println!(
        "soak: {} workloads x (baseline + {} fault modes + starve), seed {SEED:#x}",
        workloads.len(),
        modes.len()
    );
    for w in &workloads {
        let base = match soak_run(w, cfg, None) {
            Ok((ipc, _)) => {
                runs += 1;
                ipc
            }
            Err(e) => {
                failures.push(format!("{} baseline: {e}", w.name));
                continue;
            }
        };
        let mut cells: Vec<String> = vec![format!("base {base:.3}")];
        let mut row: Vec<String> = vec![w.name.to_string(), format!("{base:.3}")];
        for (name, fc) in &modes {
            runs += 1;
            match soak_run(w, cfg, Some(*fc)) {
                Ok((ipc, injected)) => {
                    if ipc < base * ENVELOPE.0 || ipc > base * ENVELOPE.1 {
                        failures.push(format!(
                            "{} {name}: IPC {ipc:.3} outside [{:.3}, {:.3}] envelope of baseline {base:.3}",
                            w.name,
                            base * ENVELOPE.0,
                            base * ENVELOPE.1,
                        ));
                    }
                    cells.push(format!("{name} {ipc:.3}/{injected}"));
                    row.push(format!("{ipc:.3}/{injected}"));
                }
                Err(e) => {
                    failures.push(format!("{} {name}: {e}", w.name));
                    row.push("FAIL".into());
                }
            }
        }
        runs += 1;
        match soak_run(w, starved(), Some(FaultConfig::chaos(SEED))) {
            Ok((ipc, injected)) => {
                cells.push(format!("starve {ipc:.3}/{injected}"));
                row.push(format!("{ipc:.3}/{injected}"));
            }
            Err(e) => {
                failures.push(format!("{} starve: {e}", w.name));
                row.push("FAIL".into());
            }
        }
        table.row(row);
        println!("  {:<18} {}", w.name, cells.join("  "));
    }

    let mut report = Report::new(
        "soak",
        format!(
            "soak: fault-injection IPC/injected-fault matrix (seed {SEED:#x})"
        ),
        table,
    );
    report.note(format!("failures: {}", failures.len()));
    if let Err(e) = report.emit() {
        eprintln!("warning: could not write soak artifacts: {e}");
    }

    if failures.is_empty() {
        println!("soak: all {runs} runs completed, zero violations");
    } else {
        println!("soak: {} FAILURES over {runs} runs:", failures.len());
        for f in &failures {
            println!("  FAIL {f}");
        }
        std::process::exit(1);
    }
}
