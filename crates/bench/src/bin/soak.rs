//! soak — fault-injection soak harness for the Helios repair paths.
//!
//! For every selected workload (all 32 by default; `--quick` / `--only`
//! as usual), runs the Helios pipeline with the lockstep oracle checker
//! attached:
//!
//! * **baseline** — no faults; establishes the reference IPC;
//! * **suppress / corrupt / evict / flush / chaos** — the deterministic
//!   fault modes of `FaultConfig::modes`, each forcing a different family
//!   of repair paths (§IV-C) to fire;
//! * **starve** — chaos faults on a starvation-sized core (ROB 8, IQ 4,
//!   LQ 4, SQ 2), where forward progress leans on the resource-deadlock
//!   breaker.
//!
//! Every run must complete: `try_run` returning `Ok` proves no hang, no
//! panic, and zero lockstep/invariant violations. Faulted IPC must also
//! stay inside a sanity envelope of the baseline — faults may slow the
//! machine down, but a "fault" that speeds it up or grinds it to a halt
//! means the model leaked architectural state. Exits non-zero on any
//! failure, printing a reproducible (seeded) description.
//!
//! `--sweep-chaos` instead soaks the *sweep executor*: a seeded
//! [`CellChaos`] spec injects panics and timeouts into a deterministic
//! subset of cells, and the harness asserts that exactly those cells are
//! quarantined with the matching outcome while every healthy cell still
//! completes — the resilience contract of `run_sweep_opts`.

use helios::{
    CellChaos, CellFault, CellOutcome, Report, Sweep, SweepOptions, SweepPolicy, Table, Workload,
};
use helios_core::FusionMode;
use helios_uarch::{FaultConfig, PipeConfig, Pipeline};

/// PRNG seed for every injector (reruns reproduce exactly).
const SEED: u64 = 0x50a7;

/// Faulted IPC must stay within `[LO, HI] × baseline`.
const ENVELOPE: (f64, f64) = (0.05, 1.25);

/// The starvation-sized core, through the validating builder: every
/// structure at (or near) its minimum, watchdog tight enough to catch a
/// hang quickly.
fn starved() -> PipeConfig {
    PipeConfig::builder()
        .fusion(FusionMode::Helios)
        .rob_size(8)
        .iq_size(4)
        .lq_size(4)
        .sq_size(2)
        .aq_size(16)
        .prf_size(48)
        .watchdog_cycles(50_000)
        .build()
        .expect("starvation config is small but valid")
}

/// One oracle-checked run. `Ok((ipc, injected))` only if the pipeline
/// drained with zero invariant violations.
fn soak_run(w: &Workload, cfg: PipeConfig, fault: Option<FaultConfig>) -> Result<(f64, u64), String> {
    let mut pipe = Pipeline::new(cfg, w.stream());
    pipe.attach_checker(w.stream());
    if let Some(f) = fault {
        pipe.attach_faults(f);
    }
    match pipe.try_run(w.fuel * 40) {
        Ok(s) => Ok((s.ipc(), s.injected_faults)),
        Err(e) => Err(e.to_string()),
    }
}

/// Chaos soak for the resilient sweep executor itself: inject seeded
/// panics/timeouts into ~20% of cells, then assert the quarantine is
/// *exact* — every injected cell reported with the matching outcome, every
/// healthy cell completed.
fn sweep_chaos_soak(opts: &helios_bench::SweepOpts) -> ! {
    let chaos = CellChaos::parse(&format!("seed={SEED},panic=0.12,timeout=0.08"))
        .expect("built-in chaos spec is valid");
    let modes = FusionMode::ALL;
    let sweep_opts = SweepOptions {
        jobs: opts.jobs,
        // Chaos re-fires every attempt, so keep retries cheap: two attempts
        // exercise the retry machinery, 1 ms backoff keeps the soak fast.
        policy: SweepPolicy {
            max_attempts: 2,
            backoff_ms: 1,
            backoff_cap_ms: 1,
            ..SweepPolicy::default()
        },
        chaos: Some(chaos.clone()),
        ..SweepOptions::default()
    };
    let sweep: Sweep = helios::run_sweep_opts(&opts.workloads, &modes, &sweep_opts)
        .expect("no checkpoint journal: sweep setup cannot fail on I/O");

    let mut violations: Vec<String> = Vec::new();
    let (mut panics, mut timeouts, mut healthy) = (0u64, 0u64, 0u64);
    for w in &opts.workloads {
        for &m in &modes {
            let injected = chaos.fault_for(w.name, m.name());
            let quarantined = sweep
                .failures()
                .iter()
                .find(|f| f.workload == w.name && f.mode == m);
            match (injected, sweep.get(w.name, m), quarantined) {
                (None, Some(_), None) => healthy += 1,
                (Some(CellFault::Panic), None, Some(f)) => match &f.outcome {
                    CellOutcome::Failed { attempts: 2, .. } => panics += 1,
                    other => violations.push(format!(
                        "{}/{}: injected panic, expected Failed after 2 attempts, got: {}",
                        w.name,
                        m.name(),
                        other.describe()
                    )),
                },
                (Some(CellFault::Timeout), None, Some(f)) => match &f.outcome {
                    CellOutcome::TimedOut { attempts: 2, .. } => timeouts += 1,
                    other => violations.push(format!(
                        "{}/{}: injected timeout, expected TimedOut after 2 attempts, got: {}",
                        w.name,
                        m.name(),
                        other.describe()
                    )),
                },
                (fault, stats, f) => violations.push(format!(
                    "{}/{}: injected={fault:?} but stats={} quarantined={}",
                    w.name,
                    m.name(),
                    stats.is_some(),
                    f.map_or("no".into(), |f| f.outcome.describe()),
                )),
            }
        }
    }
    if sweep.interrupted() {
        violations.push("sweep reported interrupted without a SIGINT or stop-after cap".into());
    }
    let total = opts.workloads.len() * modes.len();
    println!(
        "sweep-chaos: {total} cells, {healthy} healthy, {panics} panics + {timeouts} timeouts quarantined, seed {SEED:#x}"
    );
    if (panics + timeouts) == 0 {
        // A chaos soak that injected nothing proves nothing.
        violations.push("chaos spec injected zero faults; widen the workload set".into());
    }
    if violations.is_empty() {
        println!("sweep-chaos: quarantine exact, all healthy cells completed");
        std::process::exit(0);
    }
    println!("sweep-chaos: {} VIOLATIONS:", violations.len());
    for v in &violations {
        println!("  FAIL {v}");
    }
    std::process::exit(1);
}

fn main() {
    let opts = helios_bench::parse_opts_with(&[helios_bench::ExtraFlag::Bool("--sweep-chaos")]);
    if opts.workloads.is_empty() {
        // A soak that runs nothing must not report success.
        eprintln!("error: no workloads selected (check --only names)");
        std::process::exit(2);
    }
    if opts.extra[0].is_some() {
        sweep_chaos_soak(&opts);
    }
    let workloads = opts.workloads;
    let modes = FaultConfig::modes(SEED);
    let cfg = PipeConfig::with_fusion(FusionMode::Helios);
    let mut failures: Vec<String> = Vec::new();
    let mut runs = 0u64;

    let mut headers = vec!["benchmark".to_string(), "base".to_string()];
    headers.extend(modes.iter().map(|(n, _)| n.to_string()));
    headers.push("starve".into());
    let mut table = Table::new(headers);

    println!(
        "soak: {} workloads x (baseline + {} fault modes + starve), seed {SEED:#x}",
        workloads.len(),
        modes.len()
    );
    for w in &workloads {
        let base = match soak_run(w, cfg, None) {
            Ok((ipc, _)) => {
                runs += 1;
                ipc
            }
            Err(e) => {
                failures.push(format!("{} baseline: {e}", w.name));
                continue;
            }
        };
        let mut cells: Vec<String> = vec![format!("base {base:.3}")];
        let mut row: Vec<String> = vec![w.name.to_string(), format!("{base:.3}")];
        for (name, fc) in &modes {
            runs += 1;
            match soak_run(w, cfg, Some(*fc)) {
                Ok((ipc, injected)) => {
                    if ipc < base * ENVELOPE.0 || ipc > base * ENVELOPE.1 {
                        failures.push(format!(
                            "{} {name}: IPC {ipc:.3} outside [{:.3}, {:.3}] envelope of baseline {base:.3}",
                            w.name,
                            base * ENVELOPE.0,
                            base * ENVELOPE.1,
                        ));
                    }
                    cells.push(format!("{name} {ipc:.3}/{injected}"));
                    row.push(format!("{ipc:.3}/{injected}"));
                }
                Err(e) => {
                    failures.push(format!("{} {name}: {e}", w.name));
                    row.push("FAIL".into());
                }
            }
        }
        runs += 1;
        match soak_run(w, starved(), Some(FaultConfig::chaos(SEED))) {
            Ok((ipc, injected)) => {
                cells.push(format!("starve {ipc:.3}/{injected}"));
                row.push(format!("{ipc:.3}/{injected}"));
            }
            Err(e) => {
                failures.push(format!("{} starve: {e}", w.name));
                row.push("FAIL".into());
            }
        }
        table.row(row);
        println!("  {:<18} {}", w.name, cells.join("  "));
    }

    let mut report = Report::new(
        "soak",
        format!(
            "soak: fault-injection IPC/injected-fault matrix (seed {SEED:#x})"
        ),
        table,
    );
    report.note(format!("failures: {}", failures.len()));
    if let Err(e) = report.emit() {
        eprintln!("warning: could not write soak artifacts: {e}");
    }

    if failures.is_empty() {
        println!("soak: all {runs} runs completed, zero violations");
    } else {
        println!("soak: {} FAILURES over {runs} runs:", failures.len());
        for f in &failures {
            println!("  FAIL {f}");
        }
        std::process::exit(1);
    }
}
