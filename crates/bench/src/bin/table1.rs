//! Table I — the RISC-V fusion idioms (memory pairs in bold in the paper)
//! with their dynamic consecutive-pair frequency over the workload suite.

use helios::{Progress, Report, Table};
use helios_core::{match_idiom, Idiom, ALL_IDIOMS};
use helios_emu::Retired;

fn main() {
    let workloads = helios_bench::select_workloads();
    let mut counts = [0u64; 8];
    let mut total = 0u64;
    let progress = Progress::new(workloads.len());
    for w in &workloads {
        let trace: Vec<Retired> = w.stream().collect();
        total += trace.len() as u64;
        let mut i = 0;
        while i + 1 < trace.len() {
            if let Some(idm) = match_idiom(&trace[i].inst, &trace[i + 1].inst, true, true) {
                let idx = ALL_IDIOMS.iter().position(|&x| x == idm).unwrap();
                counts[idx] += 1;
                i += 2;
            } else {
                i += 1;
            }
        }
        progress.item_done(w.name, "scan");
    }
    progress.finish("scan");
    let mut t = Table::new(vec![
        "idiom".into(),
        "category".into(),
        "pairs".into(),
        "% of µ-ops".into(),
    ]);
    for (i, idm) in ALL_IDIOMS.iter().enumerate() {
        let cat = if idm.is_memory_pair() {
            "MEMORY (bold)"
        } else {
            "other"
        };
        t.row(vec![
            idm.name().to_string(),
            cat.to_string(),
            counts[i].to_string(),
            format!("{:.3}", 100.0 * 2.0 * counts[i] as f64 / total as f64),
        ]);
    }
    let report = Report::new(
        "table1",
        "Table I: RISC-V fusion idioms (after Celio et al. [7]) and dynamic frequency",
        t,
    );
    report.print_and_emit();
    let _ = Idiom::LoadPair;
}
