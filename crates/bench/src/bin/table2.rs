//! Table II — the simulated processor configuration, plus the Helios
//! storage budget of §IV-B7/§IV-C (4.9 Kbit pipeline support, 72 Kbit
//! predictor, ≈83 Kbit total with flush pointers).

use helios::PipeConfig;
use helios_core::{helios_storage, FpConfig};

fn main() {
    let c = PipeConfig::default();
    println!("Table II: processor configuration (Icelake-like, §V-A)");
    println!("  Fetch/Decode width       : {} µ-ops/cycle (8-wide per §V-A)", c.fetch_width);
    println!("  Rename/Dispatch width    : {} µ-ops/cycle", c.rename_width);
    println!("  Commit width             : {} µ-ops/cycle", c.commit_width);
    println!("  Allocation Queue         : {} entries (§IV-B1)", c.aq_size);
    println!("  ROB / IQ                 : {} / {} entries", c.rob_size, c.iq_size);
    println!("  LQ / SQ                  : {} / {} entries", c.lq_size, c.sq_size);
    println!("  Physical int registers   : {}", c.prf_size);
    println!("  Ports (ALU/load/store)   : {}/{}/{}", c.alu_ports, c.load_ports, c.store_ports);
    println!("  Senior store drain       : {} /cycle", c.store_drain_per_cycle);
    println!(
        "  L1D                      : {} KiB, {}-way, {} B lines, {} cycles",
        c.l1d.size / 1024, c.l1d.ways, c.l1d.line, c.l1d.latency
    );
    println!(
        "  L2 / L3                  : {} KiB {} cyc / {} KiB {} cyc",
        c.l2.size / 1024, c.l2.latency, c.l3.size / 1024, c.l3.latency
    );
    println!("  Memory latency           : {} cycles", c.mem_latency);
    println!("  Branch predictor         : TAGE (L-TAGE stand-in) + RAS + BTB");
    println!("  Memory dependence        : store sets");
    println!("  Consistency              : TSO (senior stores drain in order)");
    println!();
    println!("Helios storage budget (§IV-B7, §IV-C):");
    let b = helios_storage(&c.sizes(), &FpConfig::default(), true);
    for item in b.items() {
        println!("  {:<28} {:<14} {:>6} bits", item.name, item.structure, item.bits);
    }
    println!(
        "  total: {} bits = {:.2} Kbit = {:.2} KB (paper: ≈83 Kbit / 10.4 KB)",
        b.total_bits(),
        b.total_bits() as f64 / 1024.0,
        b.total_kib()
    );
}
