//! Table II — the simulated processor configuration, plus the Helios
//! storage budget of §IV-B7/§IV-C (4.9 Kbit pipeline support, 72 Kbit
//! predictor, ≈83 Kbit total with flush pointers).

use helios::{PipeConfig, Report, Table};
use helios_core::{helios_storage, FpConfig};

fn main() {
    let c = PipeConfig::default();
    let mut report = Report::new(
        "table2",
        "Table II: processor configuration (Icelake-like, §V-A)",
        Table::new(vec![]),
    );
    report.note(format!("  Fetch/Decode width       : {} µ-ops/cycle (8-wide per §V-A)", c.fetch_width));
    report.note(format!("  Rename/Dispatch width    : {} µ-ops/cycle", c.rename_width));
    report.note(format!("  Commit width             : {} µ-ops/cycle", c.commit_width));
    report.note(format!("  Allocation Queue         : {} entries (§IV-B1)", c.aq_size));
    report.note(format!("  ROB / IQ                 : {} / {} entries", c.rob_size, c.iq_size));
    report.note(format!("  LQ / SQ                  : {} / {} entries", c.lq_size, c.sq_size));
    report.note(format!("  Physical int registers   : {}", c.prf_size));
    report.note(format!("  Ports (ALU/load/store)   : {}/{}/{}", c.alu_ports, c.load_ports, c.store_ports));
    report.note(format!("  Senior store drain       : {} /cycle", c.store_drain_per_cycle));
    report.note(format!(
        "  L1D                      : {} KiB, {}-way, {} B lines, {} cycles",
        c.l1d.size / 1024, c.l1d.ways, c.l1d.line, c.l1d.latency
    ));
    report.note(format!(
        "  L2 / L3                  : {} KiB {} cyc / {} KiB {} cyc",
        c.l2.size / 1024, c.l2.latency, c.l3.size / 1024, c.l3.latency
    ));
    report.note(format!("  Memory latency           : {} cycles", c.mem_latency));
    report.note("  Branch predictor         : TAGE (L-TAGE stand-in) + RAS + BTB");
    report.note("  Memory dependence        : store sets");
    report.note("  Consistency              : TSO (senior stores drain in order)");
    report.note("");
    report.note("Helios storage budget (§IV-B7, §IV-C):");
    let b = helios_storage(&c.sizes(), &FpConfig::default(), true);
    for item in b.items() {
        report.note(format!(
            "  {:<28} {:<14} {:>6} bits",
            item.name, item.structure, item.bits
        ));
    }
    report.note(format!(
        "  total: {} bits = {:.2} Kbit = {:.2} KB (paper: ≈83 Kbit / 10.4 KB)",
        b.total_bits(),
        b.total_bits() as f64 / 1024.0,
        b.total_kib()
    ));
    report.print_and_emit();
}
