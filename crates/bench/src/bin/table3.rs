//! Table III — Helios fusion-predictor coverage, accuracy, and MPKI per
//! application.
//!
//! Coverage counts only pairs that *need* prediction (NCSF plus CSF pairs
//! with different base registers), measured against the OracleFusion
//! equivalent as the denominator.

use helios::{FusionMode, Report, Table};

fn main() {
    let opts = helios_bench::parse_opts();
    let modes = [FusionMode::Helios, FusionMode::OracleFusion];
    let sweep = helios_bench::run_standard_sweep("table3", &opts, &modes);
    let mut t = Table::new(vec![
        "benchmark".into(),
        "coverage %".into(),
        "accuracy %".into(),
        "MPKI".into(),
    ]);
    let (mut cov_sum, mut acc_sum, mut mpki_sum, mut n) = (0.0, 0.0, 0.0, 0.0);
    for w in sweep.workloads() {
        let (Some(h), Some(o)) = (
            sweep.get(w, FusionMode::Helios),
            sweep.get(w, FusionMode::OracleFusion),
        ) else {
            continue; // quarantined cell: row omitted, named in the notes
        };
        // Prediction-needing pairs: NCSF + DBR (oracle upper bound).
        let eligible = (o.fusion.ncsf_pairs + o.fusion.dbr_pairs).max(1);
        let got = h.fusion.ncsf_pairs + h.fusion.dbr_pairs;
        let coverage = (100.0 * got as f64 / eligible as f64).min(100.0);
        let accuracy = h.fusion.accuracy_pct();
        let mpki = h.fusion_mpki();
        if o.fusion.ncsf_pairs + o.fusion.dbr_pairs > 0 {
            cov_sum += coverage;
            acc_sum += accuracy;
            mpki_sum += mpki;
            n += 1.0;
        }
        t.row(vec![
            w.to_string(),
            format!("{coverage:.2}"),
            format!("{accuracy:.2}"),
            format!("{mpki:.4}"),
        ]);
    }
    if n > 0.0 {
        t.row(vec![
            "average (NCSF-active)".into(),
            format!("{:.2}", cov_sum / n),
            format!("{:.2}", acc_sum / n),
            format!("{:.4}", mpki_sum / n),
        ]);
    }
    let mut report = Report::new(
        "table3",
        "Table III: Helios fusion predictor coverage / accuracy / MPKI",
        t,
    );
    report.note("paper averages: coverage 68.2%, accuracy 99.7%, MPKI 0.142");
    helios_bench::finalize_sweep_report(report, &sweep);
}
