//! Trace-corpus tooling over the content-addressed [`TraceStore`], plus the
//! classic disassembled µ-op dump.
//!
//! ```text
//! trace record --store DIR [WORKLOAD...]   record workloads (default: all)
//! trace info   --store DIR [--json]        corpus summary (helios-report-v1)
//! trace ls     --store DIR [--json]        per-entry listing (helios-report-v1)
//! trace verify --store DIR                 deep-verify every file; exit 1 on corruption
//! trace gc     --store DIR                 reclaim corrupt/stale/abandoned files
//! trace bench  --store DIR                 codec benchmark -> results/BENCH_trace.json
//! trace dump   WORKLOAD [skip] [count] [--konata OUT] [--mode M] [--limit N]
//! ```
//!
//! `--store DIR` falls back to `$HELIOS_TRACE_DIR`. An unrecognized first
//! argument keeps the pre-subcommand CLI working: it is treated as a
//! workload name for `dump`.

use helios::{FusionMode, ObsOpts, Report, SimRequest, Table, TraceStore};
use helios_emu::{codec, BlockReplay, Trace};
use helios_isa::disassemble;
use std::io::Read;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// v1 on-disk cost of a trace: 34-byte header, 47 bytes per µ-op, 8 per
/// output word (the fixed layout the retired HTRC v1 serializer wrote).
fn v1_bytes(uops: u64, outputs: u64) -> u64 {
    34 + 47 * uops + 8 * outputs
}

fn usage() -> ! {
    eprintln!(
        "usage: trace <record|info|ls|verify|gc|bench> --store DIR [args]\n\
         \x20      trace dump WORKLOAD [skip] [count] [--konata OUT] [--mode M] [--limit N]\n\
         --store defaults to $HELIOS_TRACE_DIR"
    );
    std::process::exit(helios::exit::USAGE);
}

/// Pulls `--store DIR` (or `$HELIOS_TRACE_DIR`) out of `args` and opens it.
fn open_store(args: &mut Vec<String>) -> TraceStore {
    let dir = match args.iter().position(|a| a == "--store") {
        Some(i) => {
            if i + 1 >= args.len() {
                eprintln!("error: --store requires a directory");
                std::process::exit(helios::exit::USAGE);
            }
            let dir = PathBuf::from(&args[i + 1]);
            args.drain(i..=i + 1);
            dir
        }
        None => match std::env::var_os("HELIOS_TRACE_DIR") {
            Some(d) => PathBuf::from(d),
            None => {
                eprintln!("error: no --store and no $HELIOS_TRACE_DIR");
                std::process::exit(helios::exit::USAGE);
            }
        },
    };
    TraceStore::open(&dir).unwrap_or_else(|e| {
        eprintln!("error: cannot open trace store {}: {e}", dir.display());
        std::process::exit(helios::exit::USAGE);
    })
}

fn take_flag(args: &mut Vec<String>, flag: &str) -> bool {
    match args.iter().position(|a| a == flag) {
        Some(i) => {
            args.remove(i);
            true
        }
        None => false,
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let cmd = args.remove(0);
    match cmd.as_str() {
        "record" => cmd_record(args),
        "info" => cmd_info(args),
        "ls" => cmd_ls(args),
        "verify" => cmd_verify(args),
        "gc" => cmd_gc(args),
        "bench" => cmd_bench(args),
        "rss-probe" => cmd_rss_probe(args),
        "dump" => cmd_dump(args),
        "--help" | "-h" | "help" => usage(),
        // Pre-subcommand CLI: `trace crc32 --konata out` etc.
        _ => {
            args.insert(0, cmd);
            cmd_dump(args);
        }
    }
}

// --- record ----------------------------------------------------------------

fn cmd_record(mut args: Vec<String>) {
    let store = open_store(&mut args);
    let workloads: Vec<_> = if args.is_empty() {
        helios::all_workloads()
    } else {
        args.iter()
            .map(|n| {
                helios::workload(n).unwrap_or_else(|| {
                    eprintln!("unknown workload `{n}`");
                    std::process::exit(helios::exit::USAGE);
                })
            })
            .collect()
    };
    let before = store.stats();
    for w in &workloads {
        match w.stored(&store) {
            Ok(t) => eprintln!("  {}: {} µ-ops", w.name, t.len()),
            Err(e) => {
                eprintln!("error: recording {}: {e}", w.name);
                std::process::exit(helios::exit::FAILED);
            }
        }
    }
    let d = store.stats().since(&before);
    println!(
        "recorded {} workload(s) into {}: {} recorded, {} hits, {} migrated, {} quarantined",
        workloads.len(),
        store.dir().display(),
        d.recorded,
        d.hits,
        d.migrated,
        d.quarantined
    );
}

// --- info / ls -------------------------------------------------------------

/// Bytes of legacy `.htrc` files still in the store (not yet migrated).
fn legacy_bytes(dir: &Path) -> (u64, u64) {
    let (mut files, mut bytes) = (0u64, 0u64);
    if let Ok(rd) = std::fs::read_dir(dir) {
        for entry in rd.flatten() {
            let name = entry.file_name().to_string_lossy().into_owned();
            if name.ends_with(".htrc") {
                files += 1;
                bytes += entry.metadata().map(|m| m.len()).unwrap_or(0);
            }
        }
    }
    (files, bytes)
}

fn emit(report: Report, json: bool) {
    if json {
        print!("{}", report.to_json());
    } else {
        report.print();
    }
}

fn cmd_info(mut args: Vec<String>) {
    let json = take_flag(&mut args, "--json");
    let store = open_store(&mut args);
    let entries = store.entries().unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(helios::exit::FAILED);
    });
    let uops: u64 = entries.iter().map(|e| e.uops).sum();
    let bytes: u64 = entries.iter().map(|e| e.bytes).sum();
    let v1_equiv: u64 = entries
        .iter()
        .map(|e| v1_bytes(e.uops, 0)) // outputs are not in the cheap header scan
        .sum();
    let (legacy_files, legacy) = legacy_bytes(store.dir());
    let bpu = if uops == 0 { 0.0 } else { bytes as f64 / uops as f64 };
    let ratio = if v1_equiv == 0 { 0.0 } else { bytes as f64 / v1_equiv as f64 };

    let mut t = Table::new(vec!["metric".into(), "value".into()]);
    t.row(vec!["entries (HTRC2)".into(), entries.len().to_string()]);
    t.row(vec!["entries (v1 legacy)".into(), legacy_files.to_string()]);
    t.row(vec!["µ-ops".into(), uops.to_string()]);
    t.row(vec!["corpus bytes".into(), bytes.to_string()]);
    t.row(vec!["legacy bytes".into(), legacy.to_string()]);
    t.row(vec!["bytes/µ-op".into(), format!("{bpu:.3}")]);
    t.row(vec!["v2/v1 size ratio".into(), format!("{ratio:.3}")]);
    let mut r = Report::new(
        "trace_info",
        format!("Trace store: {}", store.dir().display()),
        t,
    );
    r.note(format!(
        "v1 equivalent: {v1_equiv} bytes (47 B/µ-op fixed layout)"
    ));
    emit(r, json);
}

fn cmd_ls(mut args: Vec<String>) {
    let json = take_flag(&mut args, "--json");
    let store = open_store(&mut args);
    let entries = store.entries().unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(helios::exit::FAILED);
    });
    let mut t = Table::new(vec![
        "workload".into(),
        "file".into(),
        "µ-ops".into(),
        "bytes".into(),
        "B/µ-op".into(),
        "checksum".into(),
    ]);
    for e in &entries {
        let file = e
            .path
            .file_name()
            .map(|f| f.to_string_lossy().into_owned())
            .unwrap_or_default();
        let bpu = if e.uops == 0 { 0.0 } else { e.bytes as f64 / e.uops as f64 };
        t.row(vec![
            e.name.clone(),
            file,
            e.uops.to_string(),
            e.bytes.to_string(),
            format!("{bpu:.3}"),
            format!("{:016x}", e.stamp.checksum),
        ]);
    }
    let n = entries.len();
    let mut r = Report::new(
        "trace_ls",
        format!("Trace store: {}", store.dir().display()),
        t,
    );
    r.note(format!("{n} entr{}", if n == 1 { "y" } else { "ies" }));
    emit(r, json);
}

// --- verify / gc -----------------------------------------------------------

fn cmd_verify(mut args: Vec<String>) {
    let store = open_store(&mut args);
    let report = store.verify().unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(helios::exit::FAILED);
    });
    for e in &report.ok {
        println!("ok   {} ({}, {} µ-ops)", e.path.display(), e.name, e.uops);
    }
    for (path, why) in &report.bad {
        println!("BAD  {}: {why}", path.display());
    }
    println!("verified {} ok, {} bad", report.ok.len(), report.bad.len());
    if !report.bad.is_empty() {
        std::process::exit(helios::exit::FAILED);
    }
}

fn cmd_gc(mut args: Vec<String>) {
    let store = open_store(&mut args);
    let report = store.gc().unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(helios::exit::FAILED);
    });
    println!(
        "gc {}: removed {} file(s), reclaimed {} bytes",
        store.dir().display(),
        report.removed,
        report.bytes_reclaimed
    );
}

// --- bench -----------------------------------------------------------------

/// Peak RSS of this process so far, in kilobytes (`VmHWM` from
/// `/proc/self/status`; 0 where unavailable).
fn peak_rss_kb() -> u64 {
    let mut s = String::new();
    if std::fs::File::open("/proc/self/status")
        .and_then(|mut f| f.read_to_string(&mut s))
        .is_err()
    {
        return 0;
    }
    s.lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|rest| rest.trim().trim_end_matches(" kB").trim().parse().ok())
        .unwrap_or(0)
}

/// Hidden helper: runs one full sweep in a child process and prints its
/// peak RSS, so `bench` can compare streaming-from-store against
/// materialized in-memory traces (VmHWM is monotonic, so the two
/// configurations need separate processes).
fn cmd_rss_probe(mut args: Vec<String>) {
    let materialize = take_flag(&mut args, "--materialize");
    let store = open_store(&mut args);
    let ws = helios::all_workloads();
    let modes = [FusionMode::NoFusion, FusionMode::Helios];
    let opts = helios::SweepOptions {
        jobs: 4,
        trace_store: (!materialize).then(|| store.clone()),
        ..helios::SweepOptions::default()
    };
    let sweep = helios::run_sweep_opts(&ws, &modes, &opts).unwrap_or_else(|e| {
        eprintln!("error: rss probe sweep: {e}");
        std::process::exit(helios::exit::FAILED);
    });
    if !sweep.is_complete() {
        eprintln!("error: rss probe sweep incomplete");
        std::process::exit(helios::exit::FAILED);
    }
    println!("{}", peak_rss_kb());
}

/// Re-invokes this binary as `trace rss-probe`, returning the child's peak
/// RSS in kB.
fn probe_rss(store_dir: &Path, materialize: bool) -> u64 {
    let exe = match std::env::current_exe() {
        Ok(p) => p,
        Err(_) => return 0,
    };
    let mut cmd = std::process::Command::new(exe);
    cmd.arg("rss-probe").arg("--store").arg(store_dir);
    if materialize {
        cmd.arg("--materialize");
    }
    cmd.stderr(std::process::Stdio::null());
    match cmd.output() {
        Ok(out) if out.status.success() => String::from_utf8_lossy(&out.stdout)
            .trim()
            .parse()
            .unwrap_or(0),
        _ => 0,
    }
}

fn cmd_bench(mut args: Vec<String>) {
    let store = open_store(&mut args);
    let stable = std::env::var("HELIOS_BENCH_STABLE").is_ok_and(|v| v == "1");
    let ws = helios::all_workloads();

    // Per-workload size table (drives the EXPERIMENTS.md v1-vs-v2 table) and
    // encode throughput: every trace is captured in memory once, costed in
    // both formats, and pushed through the v2 encoder against a sink.
    let mut table = Table::new(vec![
        "workload".into(),
        "µ-ops".into(),
        "v1 bytes".into(),
        "v2 bytes".into(),
        "v2 B/µ-op".into(),
        "ratio".into(),
    ]);
    let (mut total_uops, mut total_v1, mut total_v2) = (0u64, 0u64, 0u64);
    let mut encode_secs = 0.0f64;
    for w in &ws {
        let mem = Trace::record(w.program.clone(), w.fuel).unwrap_or_else(|e| {
            eprintln!("error: recording {}: {e}", w.name);
            std::process::exit(helios::exit::FAILED);
        });
        let uops: Vec<_> = mem.replay().collect();
        let start = Instant::now();
        let v2 = codec::encode_v2(
            &uops,
            mem.output(),
            w.name,
            helios_emu::DEFAULT_BLOCK_UOPS,
            &mut std::io::sink(),
        )
        .unwrap_or_else(|e| {
            eprintln!("error: encoding {}: {e}", w.name);
            std::process::exit(helios::exit::FAILED);
        });
        encode_secs += start.elapsed().as_secs_f64();
        let v1 = v1_bytes(mem.len(), mem.output().len() as u64);
        total_uops += mem.len();
        total_v1 += v1;
        total_v2 += v2;
        table.row(vec![
            w.name.to_string(),
            mem.len().to_string(),
            v1.to_string(),
            v2.to_string(),
            format!("{:.3}", v2 as f64 / mem.len().max(1) as f64),
            format!("{:.3}", v2 as f64 / v1 as f64),
        ]);
        // Make sure the store holds the corpus for the decode pass below.
        if let Err(e) = w.stored(&store) {
            eprintln!("error: storing {}: {e}", w.name);
            std::process::exit(helios::exit::FAILED);
        }
    }
    table.row(vec![
        "total".into(),
        total_uops.to_string(),
        total_v1.to_string(),
        total_v2.to_string(),
        format!("{:.3}", total_v2 as f64 / total_uops.max(1) as f64),
        format!("{:.3}", total_v2 as f64 / total_v1.max(1) as f64),
    ]);

    // Decode throughput: stream every store file block-at-a-time.
    let entries = store.entries().unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(helios::exit::FAILED);
    });
    let corpus_bytes: u64 = entries.iter().map(|e| e.bytes).sum();
    let start = Instant::now();
    let mut decoded = 0u64;
    for e in &entries {
        let replay = BlockReplay::open(&e.path).unwrap_or_else(|err| {
            eprintln!("error: opening {}: {err}", e.path.display());
            std::process::exit(helios::exit::FAILED);
        });
        decoded += replay.count() as u64;
    }
    let decode_secs = start.elapsed().as_secs_f64();

    // Peak sweep RSS, streaming vs materialized, in separate child
    // processes (VmHWM never goes down).
    let rss_streaming_kb = probe_rss(store.dir(), false);
    let rss_materialized_kb = probe_rss(store.dir(), true);

    let zero_if_stable = |x: f64| if stable { 0.0 } else { x };
    let encode_mups = zero_if_stable(total_uops as f64 / encode_secs.max(1e-9) / 1e6);
    let decode_mups = zero_if_stable(decoded as f64 / decode_secs.max(1e-9) / 1e6);
    let rss_mb = |kb: u64| zero_if_stable(kb as f64 / 1024.0);

    let bytes_per_uop = total_v2 as f64 / total_uops.max(1) as f64;
    let mut report = Report::new(
        "trace_bench",
        format!("HTRC2 codec benchmark ({} workloads)", ws.len()),
        table,
    );
    report.note(format!(
        "corpus: {corpus_bytes} bytes on disk, {bytes_per_uop:.3} B/µ-op \
         (v1 fixed layout: 47 B/µ-op)"
    ));
    report.note(format!(
        "throughput: encode {encode_mups:.1} Mµops/s, decode {decode_mups:.1} Mµops/s"
    ));
    report.note(format!(
        "sweep peak RSS: {:.1} MB streaming vs {:.1} MB materialized",
        rss_mb(rss_streaming_kb),
        rss_mb(rss_materialized_kb)
    ));
    report.print();

    let json = format!(
        "{{\n  \"benchmark\": \"trace_store\",\n  \"workloads\": {},\n  \"uops\": {},\n  \"corpus_bytes\": {},\n  \"bytes_per_uop\": {:.3},\n  \"v1_bytes\": {},\n  \"v2_vs_v1_ratio\": {:.4},\n  \"encode_mups_per_sec\": {:.2},\n  \"decode_mups_per_sec\": {:.2},\n  \"sweep_peak_rss_kb_streaming\": {},\n  \"sweep_peak_rss_kb_materialized\": {}\n}}\n",
        ws.len(),
        total_uops,
        corpus_bytes,
        bytes_per_uop,
        total_v1,
        total_v2 as f64 / total_v1.max(1) as f64,
        encode_mups,
        decode_mups,
        if stable { 0 } else { rss_streaming_kb },
        if stable { 0 } else { rss_materialized_kb },
    );
    let dir = helios::results_dir();
    let path = dir.join("BENCH_trace.json");
    if let Err(e) = std::fs::create_dir_all(&dir).and_then(|()| std::fs::write(&path, &json)) {
        eprintln!("warning: could not write {}: {e}", path.display());
    } else {
        eprintln!("wrote {}", path.display());
    }
}

// --- dump (the classic disassembled µ-op view) -----------------------------

fn cmd_dump(args: Vec<String>) {
    let mut positional: Vec<String> = Vec::new();
    let mut konata: Option<String> = None;
    let mut mode = FusionMode::Helios;
    let mut limit: Option<u64> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--konata" => {
                i += 1;
                let Some(path) = args.get(i) else {
                    eprintln!("error: --konata requires an output path");
                    std::process::exit(helios::exit::USAGE);
                };
                konata = Some(path.clone());
            }
            "--mode" => {
                i += 1;
                let name = args.get(i).map(String::as_str).unwrap_or("");
                let Some(m) = FusionMode::ALL.iter().find(|m| m.name() == name) else {
                    let names: Vec<&str> = FusionMode::ALL.iter().map(|m| m.name()).collect();
                    eprintln!("error: --mode must be one of: {}", names.join(", "));
                    std::process::exit(helios::exit::USAGE);
                };
                mode = *m;
            }
            "--limit" => {
                i += 1;
                limit = args.get(i).and_then(|s| s.parse().ok());
                if limit.is_none() {
                    eprintln!("error: --limit requires a µ-op count");
                    std::process::exit(helios::exit::USAGE);
                }
            }
            other => positional.push(other.to_string()),
        }
        i += 1;
    }

    let name = positional.first().map(String::as_str).unwrap_or("crc32");
    let skip: u64 = positional.get(1).and_then(|s| s.parse().ok()).unwrap_or(0);
    let count: u64 = positional.get(2).and_then(|s| s.parse().ok()).unwrap_or(40);

    let Some(w) = helios::workload(name) else {
        eprintln!("unknown workload `{name}`; see `helios::all_workloads()`");
        std::process::exit(helios::exit::FAILED);
    };

    if let Some(path) = konata {
        let mut obs = ObsOpts::timeline();
        obs.timeline_limit = limit;
        let run = SimRequest::mode(&w, mode).observing(obs).run();
        let observer = run.observer.expect("timeline observer was attached");
        let mut out = std::io::BufWriter::new(
            std::fs::File::create(&path).unwrap_or_else(|e| {
                eprintln!("error: cannot create {path}: {e}");
                std::process::exit(helios::exit::FAILED);
            }),
        );
        observer.write_konata(&mut out).unwrap_or_else(|e| {
            eprintln!("error: writing {path}: {e}");
            std::process::exit(helios::exit::FAILED);
        });
        eprintln!(
            "wrote {path}: {} µ-op records, {} commits, {} cycles ({}, {})",
            observer.records().len(),
            observer.commit_events(),
            run.stats.cycles,
            w.name,
            mode.name(),
        );
        return;
    }

    println!("{}: retired µ-ops {skip}..{}", w.name, skip + count);
    for r in w.stream().skip(skip as usize).take(count as usize) {
        let mem = match r.mem {
            Some(m) => format!(
                " [{}{:#x}+{}]",
                if m.is_store { "st " } else { "ld " },
                m.addr,
                m.size
            ),
            None => String::new(),
        };
        let ctrl = if r.control_taken() {
            format!(" -> {:#x}", r.next_pc)
        } else {
            String::new()
        };
        println!(
            "{:>8}  {:#010x}  {:<28}{}{}",
            r.seq,
            r.pc,
            disassemble(&r.inst),
            mem,
            ctrl
        );
    }
}
