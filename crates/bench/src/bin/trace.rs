//! Trace dump: disassembled retired-µ-op stream of a workload, with
//! effective addresses and branch outcomes — the debugging view of what the
//! pipeline consumes.
//!
//! ```text
//! cargo run --release -p helios-bench --bin trace -- <workload> [skip] [count]
//! ```

use helios_isa::disassemble;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let name = args.get(1).map(String::as_str).unwrap_or("crc32");
    let skip: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(0);
    let count: u64 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(40);

    let Some(w) = helios::workload(name) else {
        eprintln!("unknown workload `{name}`; see `helios::all_workloads()`");
        std::process::exit(1);
    };
    println!("{}: retired µ-ops {skip}..{}", w.name, skip + count);
    for r in w.stream().skip(skip as usize).take(count as usize) {
        let mem = match r.mem {
            Some(m) => format!(
                " [{}{:#x}+{}]",
                if m.is_store { "st " } else { "ld " },
                m.addr,
                m.size
            ),
            None => String::new(),
        };
        let ctrl = if r.control_taken() {
            format!(" -> {:#x}", r.next_pc)
        } else {
            String::new()
        };
        println!(
            "{:>8}  {:#010x}  {:<28}{}{}",
            r.seq,
            r.pc,
            disassemble(&r.inst),
            mem,
            ctrl
        );
    }
}
