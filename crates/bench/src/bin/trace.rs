//! Trace dump: disassembled retired-µ-op stream of a workload, with
//! effective addresses and branch outcomes — the debugging view of what the
//! pipeline consumes. With `--konata`, additionally simulates the workload
//! with the per-µ-op timeline observer and writes a pipeline trace loadable
//! by the Konata viewer (<https://github.com/shioyadan/Konata>).
//!
//! ```text
//! cargo run --release -p helios-bench --bin trace -- <workload> [skip] [count]
//! cargo run --release -p helios-bench --bin trace -- <workload> \
//!     --konata out.kanata [--mode Helios] [--limit N]
//! ```

use helios::{FusionMode, ObsOpts, SimRequest};
use helios_isa::disassemble;

fn main() {
    let mut positional: Vec<String> = Vec::new();
    let mut konata: Option<String> = None;
    let mut mode = FusionMode::Helios;
    let mut limit: Option<u64> = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--konata" => {
                i += 1;
                let Some(path) = args.get(i) else {
                    eprintln!("error: --konata requires an output path");
                    std::process::exit(2);
                };
                konata = Some(path.clone());
            }
            "--mode" => {
                i += 1;
                let name = args.get(i).map(String::as_str).unwrap_or("");
                let Some(m) = FusionMode::ALL.iter().find(|m| m.name() == name) else {
                    let names: Vec<&str> = FusionMode::ALL.iter().map(|m| m.name()).collect();
                    eprintln!("error: --mode must be one of: {}", names.join(", "));
                    std::process::exit(2);
                };
                mode = *m;
            }
            "--limit" => {
                i += 1;
                limit = args.get(i).and_then(|s| s.parse().ok());
                if limit.is_none() {
                    eprintln!("error: --limit requires a µ-op count");
                    std::process::exit(2);
                }
            }
            other => positional.push(other.to_string()),
        }
        i += 1;
    }

    let name = positional.first().map(String::as_str).unwrap_or("crc32");
    let skip: u64 = positional.get(1).and_then(|s| s.parse().ok()).unwrap_or(0);
    let count: u64 = positional.get(2).and_then(|s| s.parse().ok()).unwrap_or(40);

    let Some(w) = helios::workload(name) else {
        eprintln!("unknown workload `{name}`; see `helios::all_workloads()`");
        std::process::exit(1);
    };

    if let Some(path) = konata {
        let mut obs = ObsOpts::timeline();
        obs.timeline_limit = limit;
        let run = SimRequest::mode(&w, mode).observing(obs).run();
        let observer = run.observer.expect("timeline observer was attached");
        let mut out = std::io::BufWriter::new(
            std::fs::File::create(&path).unwrap_or_else(|e| {
                eprintln!("error: cannot create {path}: {e}");
                std::process::exit(1);
            }),
        );
        observer.write_konata(&mut out).unwrap_or_else(|e| {
            eprintln!("error: writing {path}: {e}");
            std::process::exit(1);
        });
        eprintln!(
            "wrote {path}: {} µ-op records, {} commits, {} cycles ({}, {})",
            observer.records().len(),
            observer.commit_events(),
            run.stats.cycles,
            w.name,
            mode.name(),
        );
        return;
    }

    println!("{}: retired µ-ops {skip}..{}", w.name, skip + count);
    for r in w.stream().skip(skip as usize).take(count as usize) {
        let mem = match r.mem {
            Some(m) => format!(
                " [{}{:#x}+{}]",
                if m.is_store { "st " } else { "ld " },
                m.addr,
                m.size
            ),
            None => String::new(),
        };
        let ctrl = if r.control_taken() {
            format!(" -> {:#x}", r.next_pc)
        } else {
            String::new()
        };
        println!(
            "{:>8}  {:#010x}  {:<28}{}{}",
            r.seq,
            r.pc,
            disassemble(&r.inst),
            mem,
            ctrl
        );
    }
}
