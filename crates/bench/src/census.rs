//! Trace-level fusion-opportunity census — the limit studies behind the
//! paper's §III motivation figures (2, 4, 5).
//!
//! Unlike the pipeline model, the census walks the retired trace directly
//! with perfect knowledge, greedily pairing µ-ops under the stated
//! constraints. This mirrors how a characterization study would instrument
//! a functional simulator.

use helios::Workload;
use helios_core::{classify_contiguity, is_asymmetric, match_idiom, Contiguity};
use helios_emu::Retired;
use helios_isa::{Inst, Reg};

/// Outcome of the census over one workload.
#[derive(Clone, Debug, Default)]
pub struct Census {
    /// Total dynamic µ-ops.
    pub uops: u64,
    /// Total dynamic memory µ-ops.
    pub mem_uops: u64,
    /// Consecutive Table-I memory pairs (load pair + store pair).
    pub csf_mem_pairs: u64,
    /// Consecutive non-memory idiom pairs.
    pub csf_other_pairs: u64,
    /// Consecutive memory pairs by dynamic contiguity class.
    pub csf_contiguous: u64,
    pub csf_overlapping: u64,
    pub csf_same_line: u64,
    pub csf_next_line: u64,
    /// Additional non-consecutive memory pairs (≤64 µ-ops, same 64-B span).
    pub ncsf_pairs: u64,
    /// NCSF pairs with different access sizes.
    pub ncsf_asymmetric: u64,
    /// Pairs (CSF or NCSF) whose nucleii use different base registers.
    pub dbr_pairs: u64,
}

impl Census {
    /// Memory-pair µ-ops as % of dynamic µ-ops (Fig. 2 "Memory").
    pub fn mem_pct(&self) -> f64 {
        pct(2 * self.csf_mem_pairs, self.uops)
    }

    /// Other-idiom µ-ops as % of dynamic µ-ops (Fig. 2 "Others").
    pub fn other_pct(&self) -> f64 {
        pct(2 * self.csf_other_pairs, self.uops)
    }

    /// NCSF µ-ops as % of dynamic µ-ops (Fig. 5 addition).
    pub fn ncsf_pct(&self) -> f64 {
        pct(2 * self.ncsf_pairs, self.uops)
    }

    /// DBR µ-ops as % of dynamic µ-ops (Fig. 5 DBR series).
    pub fn dbr_pct(&self) -> f64 {
        pct(2 * self.dbr_pairs, self.uops)
    }
}

fn pct(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        100.0 * num as f64 / den as f64
    }
}

const LINE: u64 = 64;
const MAX_DIST: u64 = 64;

/// Runs the census over one workload's full trace.
pub fn census(w: &Workload) -> Census {
    let trace: Vec<Retired> = w.stream().collect();
    let mut c = Census {
        uops: trace.len() as u64,
        ..Census::default()
    };
    let mut paired = vec![false; trace.len()];

    // Pass 1: greedy consecutive pairing on Table I idioms.
    let mut i = 0;
    while i + 1 < trace.len() {
        let (a, b) = (&trace[i], &trace[i + 1]);
        if a.inst.is_mem() {
            c.mem_uops += 1;
        }
        if !paired[i] && !paired[i + 1] {
            if let Some(idiom) = match_idiom(&a.inst, &b.inst, true, true) {
                paired[i] = true;
                paired[i + 1] = true;
                if idiom.is_memory_pair() {
                    c.csf_mem_pairs += 1;
                    // The emulator records an access for every memory inst.
                    let (Some(ma), Some(mb)) = (a.mem, b.mem) else {
                        continue;
                    };
                    match classify_contiguity(&ma, &mb, LINE) {
                        Contiguity::Contiguous => c.csf_contiguous += 1,
                        Contiguity::Overlapping => c.csf_overlapping += 1,
                        Contiguity::SameLine => c.csf_same_line += 1,
                        Contiguity::NextLine => c.csf_next_line += 1,
                        Contiguity::TooFar => {}
                    }
                } else {
                    c.csf_other_pairs += 1;
                }
            } else if a.inst.is_mem() && b.inst.is_mem() {
                // Consecutive same-kind memory µ-ops that the static idiom
                // cannot take (different base, gap) but that land in one
                // fusion region: count as CSF-class potential via the NCS
                // machinery (distance 1). Handled by pass 2.
            }
        }
        i += 1;
    }
    if let Some(last) = trace.last() {
        if last.inst.is_mem() {
            c.mem_uops += 1;
        }
    }

    // Pass 2: non-consecutive (and consecutive-DBR) pairing with future
    // knowledge, respecting store-ordering, serialization, deadlocks, and
    // call boundaries — the §III-D limit.
    let n = trace.len();
    for head in 0..n {
        if paired[head] || !trace[head].inst.is_mem() {
            continue;
        }
        let h = &trace[head];
        let Some(hm) = h.mem else { continue };
        let is_store = h.inst.is_store();
        let mut tainted = [false; 32];
        if let Some(rd) = h.inst.rd() {
            tainted[rd.index()] = true;
        }
        let mut blocked = false;
        for tail in head + 1..n.min(head + 1 + MAX_DIST as usize) {
            if blocked {
                break;
            }
            let t = &trace[tail];
            // Catalyst constraints accumulate as we scan.
            if t.inst.is_serializing() {
                break;
            }
            if is_call_or_ret(&t.inst) {
                break;
            }
            if !paired[tail] && t.inst.is_mem() && t.inst.is_store() == is_store {
                let Some(tm) = t.mem else { continue };
                let deadlock = t.inst.sources().any(|s| tainted[s.index()]);
                let valid_dests = match (h.inst.rd(), t.inst.rd()) {
                    (Some(a), Some(b)) => a != b,
                    _ => true,
                };
                if !deadlock
                    && valid_dests
                    && classify_contiguity(&hm, &tm, LINE).fusible()
                    && !(is_store && h.inst.mem_base() != t.inst.mem_base())
                {
                    paired[head] = true;
                    paired[tail] = true;
                    c.ncsf_pairs += 1;
                    if is_asymmetric(&hm, &tm) {
                        c.ncsf_asymmetric += 1;
                    }
                    if h.inst.mem_base() != t.inst.mem_base() {
                        c.dbr_pairs += 1;
                    }
                    break;
                }
            }
            // Taint propagation for deadlock detection.
            let reads_taint = t.inst.sources().any(|s| tainted[s.index()]);
            if let Some(rd) = t.inst.rd() {
                tainted[rd.index()] = reads_taint;
            }
            if is_store && t.inst.is_store() {
                blocked = true; // store-store ordering
            }
        }
    }
    c
}

fn is_call_or_ret(inst: &Inst) -> bool {
    matches!(inst, Inst::Jal { rd, .. } | Inst::Jalr { rd, .. } if *rd == Reg::RA)
        || matches!(inst, Inst::Jalr { rd, rs1, .. } if *rd == Reg::ZERO && *rs1 == Reg::RA)
}
