//! Shared helpers for the figure/table regeneration binaries.
//!
//! Every binary accepts:
//! * `--quick` — run a representative 8-workload subset instead of all 32;
//! * `--only <name>[,<name>...]` — run specific workloads;
//! * `--jobs <N>` — sweep worker threads (default: all cores).

pub mod census;

use helios::Workload;

/// The representative subset used by `--quick` (chosen to cover the paper's
/// behavioural extremes: SQ-bound xz_1, ALU-idiom-heavy bitcount/susan/xz_2,
/// pointer-chasing mcf, pair-dense fft/dijkstra, hashy perlbench).
pub const QUICK_SET: [&str; 8] = [
    "600.perlbench_1",
    "605.mcf",
    "657.xz_1",
    "657.xz_2",
    "bitcount",
    "dijkstra",
    "fft",
    "susan",
];

/// Parsed common CLI options.
pub struct SweepOpts {
    /// Workloads selected by `--quick` / `--only` (default: all 32).
    pub workloads: Vec<Workload>,
    /// Sweep worker threads (`--jobs`, default: all cores).
    pub jobs: usize,
    /// Binary-specific flags requested via [`parse_opts_with`], in
    /// declaration order: `None` when absent, `Some("")` for a present
    /// boolean flag, `Some(value)` for a present valued flag.
    pub extra: Vec<Option<String>>,
}

/// A binary-specific flag [`parse_opts_with`] should accept on top of the
/// common `--quick` / `--only` / `--jobs` set.
pub enum ExtraFlag {
    /// A boolean switch, e.g. `--obs`.
    Bool(&'static str),
    /// A flag taking one value, e.g. `--konata <path>`.
    Value(&'static str),
}

/// Parses the common CLI arguments.
///
/// Exits with an error (status 2) on malformed flags or unrecognized
/// `--only` names — a typo'd name silently filtering the sweep to nothing
/// would make every figure print NaN geomeans.
pub fn parse_opts() -> SweepOpts {
    parse_opts_with(&[])
}

/// [`parse_opts`], additionally accepting the given binary-specific flags
/// (reported back through [`SweepOpts::extra`]).
pub fn parse_opts_with(known: &[ExtraFlag]) -> SweepOpts {
    let args: Vec<String> = std::env::args().collect();
    let mut only: Option<Vec<String>> = None;
    let mut quick = false;
    let mut jobs = helios::default_jobs();
    let mut extra: Vec<Option<String>> = known.iter().map(|_| None).collect();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => quick = true,
            "--only" => {
                i += 1;
                let Some(list) = args.get(i) else {
                    eprintln!("error: --only requires a comma-separated list of workload names");
                    std::process::exit(2);
                };
                only = Some(list.split(',').map(str::to_string).collect());
            }
            "--jobs" => {
                i += 1;
                jobs = match args.get(i).map(|s| s.parse::<usize>()) {
                    Some(Ok(n)) if n >= 1 => n,
                    _ => {
                        eprintln!("error: --jobs requires a positive integer");
                        std::process::exit(2);
                    }
                };
            }
            other => {
                let known_at = known.iter().position(|f| match f {
                    ExtraFlag::Bool(n) | ExtraFlag::Value(n) => *n == other,
                });
                match known_at.map(|k| (&known[k], k)) {
                    Some((ExtraFlag::Bool(_), k)) => extra[k] = Some(String::new()),
                    Some((ExtraFlag::Value(name), k)) => {
                        i += 1;
                        let Some(v) = args.get(i) else {
                            eprintln!("error: {name} requires a value");
                            std::process::exit(2);
                        };
                        extra[k] = Some(v.clone());
                    }
                    None => eprintln!("warning: ignoring unknown argument `{other}`"),
                }
            }
        }
        i += 1;
    }
    let all = helios::all_workloads();
    if let Some(names) = &only {
        let unknown: Vec<&String> = names
            .iter()
            .filter(|n| !all.iter().any(|w| &w.name == n))
            .collect();
        if !unknown.is_empty() {
            let valid: Vec<&str> = all.iter().map(|w| w.name).collect();
            eprintln!(
                "error: unrecognized workload name(s): {}",
                unknown
                    .iter()
                    .map(|s| s.as_str())
                    .collect::<Vec<_>>()
                    .join(", ")
            );
            eprintln!("valid workloads: {}", valid.join(", "));
            std::process::exit(2);
        }
    }
    let workloads = match (only, quick) {
        (Some(names), _) => all
            .into_iter()
            .filter(|w| names.iter().any(|n| n == w.name))
            .collect(),
        (None, true) => all
            .into_iter()
            .filter(|w| QUICK_SET.contains(&w.name))
            .collect(),
        (None, false) => all,
    };
    SweepOpts {
        workloads,
        jobs,
        extra,
    }
}

/// Parses the common CLI arguments and returns the selected workloads.
/// (Use [`parse_opts`] when the binary also needs `--jobs`.)
pub fn select_workloads() -> Vec<Workload> {
    parse_opts().workloads
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_set_names_exist() {
        let all = helios::all_workloads();
        for n in QUICK_SET {
            assert!(all.iter().any(|w| w.name == n), "{n} not registered");
        }
    }
}
