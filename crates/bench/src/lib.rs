//! Shared helpers for the figure/table regeneration binaries.
//!
//! Every binary accepts:
//! * `--quick` — run a representative 8-workload subset instead of all 32;
//! * `--only <name>[,<name>...]` — run specific workloads;
//! * `--jobs <N>` — sweep worker threads (default: all cores);
//! * `--resume` — restore finished cells from the checkpoint journal;
//! * `--cell-timeout <secs>` — wall-clock budget per sweep cell;
//! * `--retries <N>` — attempts per cell before quarantining (default 2);
//! * `--server <url>` — run the sweep on a `sweepd` daemon (see
//!   [`server`]) instead of simulating locally; output is byte-identical;
//! * `--profile` — per-stage cycle-attribution profiling (sets
//!   `HELIOS_PROFILE=1`; writes `results/profile.json` and prints a summary
//!   to stderr, leaving stdout untouched).
//!
//! Environment knobs (testing/CI):
//! * `HELIOS_SWEEP_CHAOS` — deterministic cell fault injection spec
//!   (see `helios::CellChaos::parse`);
//! * `HELIOS_SWEEP_STOP_AFTER` — stop claiming cells after N simulations
//!   (a deterministic stand-in for `kill -9` in resume tests);
//! * `HELIOS_TRACE_DIR` — content-addressed [`helios::TraceStore`]
//!   directory: traces are recorded once ever, verified on every open, and
//!   replayed block-at-a-time by sweep cells;
//! * `HELIOS_BENCH_STABLE` — zero wall-clock-derived fields in
//!   `BENCH_sweep.json` so CI can diff it across runs.

pub mod census;
pub mod server;

use helios::{CellChaos, Report, Sweep, SweepOptions, SweepPolicy, Table, Workload};
use std::time::Duration;

/// The representative subset used by `--quick` (chosen to cover the paper's
/// behavioural extremes: SQ-bound xz_1, ALU-idiom-heavy bitcount/susan/xz_2,
/// pointer-chasing mcf, pair-dense fft/dijkstra, hashy perlbench).
pub const QUICK_SET: [&str; 8] = [
    "600.perlbench_1",
    "605.mcf",
    "657.xz_1",
    "657.xz_2",
    "bitcount",
    "dijkstra",
    "fft",
    "susan",
];

/// Parsed common CLI options.
pub struct SweepOpts {
    /// Workloads selected by `--quick` / `--only` (default: all 32).
    pub workloads: Vec<Workload>,
    /// Sweep worker threads (`--jobs`, default: all cores).
    pub jobs: usize,
    /// Restore finished cells from the checkpoint journal (`--resume`).
    pub resume: bool,
    /// Wall-clock budget per sweep cell (`--cell-timeout <secs>`).
    pub cell_timeout: Option<Duration>,
    /// Attempts per cell before quarantining (`--retries <N>`).
    pub retries: Option<u32>,
    /// Run the sweep on a remote `sweepd` daemon (`--server <url>`).
    pub server: Option<String>,
    /// Binary-specific flags requested via [`parse_opts_with`], in
    /// declaration order: `None` when absent, `Some("")` for a present
    /// boolean flag, `Some(value)` for a present valued flag.
    pub extra: Vec<Option<String>>,
}

/// A binary-specific flag [`parse_opts_with`] should accept on top of the
/// common `--quick` / `--only` / `--jobs` set.
pub enum ExtraFlag {
    /// A boolean switch, e.g. `--obs`.
    Bool(&'static str),
    /// A flag taking one value, e.g. `--konata <path>`.
    Value(&'static str),
}

/// Parses the common CLI arguments.
///
/// Exits with an error (status 2) on malformed flags or unrecognized
/// `--only` names — a typo'd name silently filtering the sweep to nothing
/// would make every figure print NaN geomeans.
pub fn parse_opts() -> SweepOpts {
    parse_opts_with(&[])
}

/// [`parse_opts`], additionally accepting the given binary-specific flags
/// (reported back through [`SweepOpts::extra`]).
pub fn parse_opts_with(known: &[ExtraFlag]) -> SweepOpts {
    let args: Vec<String> = std::env::args().collect();
    let mut only: Option<Vec<String>> = None;
    let mut quick = false;
    let mut jobs = helios::default_jobs();
    let mut resume = false;
    let mut cell_timeout = None;
    let mut retries = None;
    let mut server = None;
    let mut extra: Vec<Option<String>> = known.iter().map(|_| None).collect();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => quick = true,
            "--resume" => resume = true,
            // Must be set before any worker thread builds a pipeline; flag
            // parsing happens first thing in main, so it is.
            "--profile" => std::env::set_var("HELIOS_PROFILE", "1"),
            "--cell-timeout" => {
                i += 1;
                cell_timeout = match args.get(i).map(|s| s.parse::<u64>()) {
                    Some(Ok(secs)) if secs >= 1 => Some(Duration::from_secs(secs)),
                    _ => {
                        eprintln!("error: --cell-timeout requires a positive integer (seconds)");
                        std::process::exit(helios::exit::USAGE);
                    }
                };
            }
            "--retries" => {
                i += 1;
                retries = match args.get(i).map(|s| s.parse::<u32>()) {
                    Some(Ok(n)) if n >= 1 => Some(n),
                    _ => {
                        eprintln!("error: --retries requires a positive integer");
                        std::process::exit(helios::exit::USAGE);
                    }
                };
            }
            "--server" => {
                i += 1;
                server = match args.get(i) {
                    Some(url) => Some(url.clone()),
                    None => {
                        eprintln!("error: --server requires a URL (e.g. http://127.0.0.1:7777)");
                        std::process::exit(helios::exit::USAGE);
                    }
                };
            }
            "--only" => {
                i += 1;
                let Some(list) = args.get(i) else {
                    eprintln!("error: --only requires a comma-separated list of workload names");
                    std::process::exit(2);
                };
                only = Some(list.split(',').map(str::to_string).collect());
            }
            "--jobs" => {
                i += 1;
                jobs = match args.get(i).map(|s| s.parse::<usize>()) {
                    Some(Ok(n)) if n >= 1 => n,
                    _ => {
                        eprintln!("error: --jobs requires a positive integer");
                        std::process::exit(2);
                    }
                };
            }
            other => {
                let known_at = known.iter().position(|f| match f {
                    ExtraFlag::Bool(n) | ExtraFlag::Value(n) => *n == other,
                });
                match known_at.map(|k| (&known[k], k)) {
                    Some((ExtraFlag::Bool(_), k)) => extra[k] = Some(String::new()),
                    Some((ExtraFlag::Value(name), k)) => {
                        i += 1;
                        let Some(v) = args.get(i) else {
                            eprintln!("error: {name} requires a value");
                            std::process::exit(2);
                        };
                        extra[k] = Some(v.clone());
                    }
                    None => eprintln!("warning: ignoring unknown argument `{other}`"),
                }
            }
        }
        i += 1;
    }
    let all = helios::all_workloads();
    if let Some(names) = &only {
        let unknown: Vec<&String> = names
            .iter()
            .filter(|n| !all.iter().any(|w| &w.name == n))
            .collect();
        if !unknown.is_empty() {
            let valid: Vec<&str> = all.iter().map(|w| w.name).collect();
            eprintln!(
                "error: unrecognized workload name(s): {}",
                unknown
                    .iter()
                    .map(|s| s.as_str())
                    .collect::<Vec<_>>()
                    .join(", ")
            );
            eprintln!("valid workloads: {}", valid.join(", "));
            std::process::exit(2);
        }
    }
    let workloads = match (only, quick) {
        (Some(names), _) => all
            .into_iter()
            .filter(|w| names.iter().any(|n| n == w.name))
            .collect(),
        (None, true) => all
            .into_iter()
            .filter(|w| QUICK_SET.contains(&w.name))
            .collect(),
        (None, false) => all,
    };
    SweepOpts {
        workloads,
        jobs,
        resume,
        cell_timeout,
        retries,
        server,
        extra,
    }
}

/// Builds the resilient-executor options for a figure binary: the CLI
/// policy knobs, a checkpoint journal at `results/<id>.ckpt.jsonl`, the
/// SIGINT handler, and the CI/test environment knobs (`HELIOS_SWEEP_CHAOS`,
/// `HELIOS_SWEEP_STOP_AFTER`, `HELIOS_TRACE_DIR`).
///
/// Exits with [`helios::exit::USAGE`] on a malformed environment spec —
/// silently ignoring a typo'd chaos spec would make a CI resilience gate
/// pass vacuously.
pub fn sweep_options(id: &str, opts: &SweepOpts) -> SweepOptions {
    let chaos = std::env::var("HELIOS_SWEEP_CHAOS").ok().map(|spec| {
        CellChaos::parse(&spec).unwrap_or_else(|e| {
            eprintln!("error: HELIOS_SWEEP_CHAOS: {e}");
            std::process::exit(helios::exit::USAGE);
        })
    });
    let stop_after = std::env::var("HELIOS_SWEEP_STOP_AFTER").ok().map(|v| {
        v.parse::<usize>().unwrap_or_else(|_| {
            eprintln!("error: HELIOS_SWEEP_STOP_AFTER must be a non-negative integer");
            std::process::exit(helios::exit::USAGE);
        })
    });
    SweepOptions {
        jobs: opts.jobs,
        policy: SweepPolicy {
            max_attempts: opts.retries.unwrap_or(SweepPolicy::default().max_attempts),
            cell_timeout: opts.cell_timeout,
            ..SweepPolicy::default()
        },
        checkpoint: Some(helios::Checkpoint {
            path: helios::results_dir().join(format!("{id}.ckpt.jsonl")),
            resume: opts.resume,
        }),
        chaos,
        stop_after,
        trace_store: std::env::var_os("HELIOS_TRACE_DIR").map(|dir| {
            helios::TraceStore::open(&dir).unwrap_or_else(|e| {
                eprintln!("error: HELIOS_TRACE_DIR {}: {e}", dir.to_string_lossy());
                std::process::exit(helios::exit::USAGE);
            })
        }),
        handle_interrupt: true,
    }
}

/// Runs the figure's sweep through the resilient executor with the standard
/// wiring from [`sweep_options`]. On interruption (SIGINT or
/// `HELIOS_SWEEP_STOP_AFTER`) the process exits with
/// [`helios::exit::INTERRUPTED`] — finished cells are durable in the
/// journal, so the user reruns with `--resume` rather than reading a
/// report with silently missing rows.
pub fn run_standard_sweep(id: &str, opts: &SweepOpts, modes: &[helios::FusionMode]) -> Sweep {
    if let Some(url) = &opts.server {
        // Thin-client mode: the daemon simulates (or answers from its
        // result cache); the rebuilt sweep feeds the unchanged report
        // path, so stdout and the JSON artifact stay byte-identical to a
        // local run. Checkpoints/resume stay local-only — the daemon's
        // cache subsumes them.
        let sweep = server::client::remote_sweep(url, &opts.workloads, modes).unwrap_or_else(|e| {
            eprintln!("error: --server {url}: {e}");
            std::process::exit(helios::exit::FAILED);
        });
        return sweep;
    }
    let sweep_opts = sweep_options(id, opts);
    let sweep = helios::run_sweep_opts(&opts.workloads, modes, &sweep_opts).unwrap_or_else(|e| {
        eprintln!("error: sweep setup failed: {e}");
        std::process::exit(helios::exit::FAILED);
    });
    if sweep.interrupted() {
        std::process::exit(helios::exit::INTERRUPTED);
    }
    sweep
}

/// Annotates a report with every quarantined cell: a stdout warning note
/// plus a machine-readable `cell_status` entry in the JSON artifact. A
/// clean sweep adds nothing, keeping the report byte-identical to the
/// pre-resilience output.
pub fn annotate_failures(report: &mut Report, sweep: &Sweep) {
    for f in sweep.failures() {
        let cell = format!("{}/{}", f.workload, f.mode.name());
        report.note(format!("warning: cell {cell} {}", f.outcome.describe()));
        report.cell_status(cell, f.outcome.describe());
    }
}

/// The standard ending of a figure binary: annotate quarantined cells,
/// print + emit the report, and exit with the sweep's status code
/// ([`helios::exit::COMPLETE`] / [`PARTIAL`](helios::exit::PARTIAL) /
/// [`FAILED`](helios::exit::FAILED)).
pub fn finalize_sweep_report(mut report: Report, sweep: &Sweep) -> ! {
    annotate_failures(&mut report, sweep);
    report.print_and_emit();
    emit_profile_report();
    std::process::exit(sweep.exit_code());
}

/// With `--profile` (or `HELIOS_PROFILE=1`): writes the aggregated per-stage
/// cycle-attribution table to `results/profile.{json,csv}` and prints a
/// summary to *stderr*. Without it: does nothing, so figure stdout stays
/// byte-identical.
pub fn emit_profile_report() {
    use helios_uarch::profile;
    if !profile::enabled() {
        return;
    }
    let Some(snap) = profile::take_global() else {
        eprintln!("warning: --profile set but no profiled cycles were recorded");
        return;
    };
    let total_ns = snap.total_ns().max(1);
    let mut table = Table::new(
        ["stage", "pct", "ms", "ns_per_cycle", "runs", "skips"]
            .map(str::to_string)
            .to_vec(),
    );
    eprintln!(
        "profile: {} simulated cycles, {:.1} ms attributed",
        snap.cycles,
        total_ns as f64 / 1e6
    );
    for s in &snap.stages {
        let pct = 100.0 * s.ns as f64 / total_ns as f64;
        table.row(vec![
            s.stage.to_string(),
            format!("{pct:.1}"),
            format!("{:.1}", s.ns as f64 / 1e6),
            format!("{:.1}", s.ns as f64 / snap.cycles.max(1) as f64),
            s.runs.to_string(),
            s.skips.to_string(),
        ]);
        eprintln!(
            "  {:>16}  {:5.1}%  {:9.1} ms  runs {:>12}  skips {:>12}",
            s.stage,
            pct,
            s.ns as f64 / 1e6,
            s.runs,
            s.skips
        );
    }
    let mut report = Report::new(
        "profile",
        "Per-stage cycle-attribution profile (HELIOS_PROFILE)",
        table,
    );
    report.note(format!("cycles profiled: {}", snap.cycles));
    if let Err(e) = report.emit() {
        eprintln!("warning: could not write profile report: {e}");
    }
}

/// Parses the common CLI arguments and returns the selected workloads.
/// (Use [`parse_opts`] when the binary also needs `--jobs`.)
pub fn select_workloads() -> Vec<Workload> {
    let opts = parse_opts();
    if opts.server.is_some() {
        // Census binaries (fig02/04/05/table1/ablation) analyse traces
        // rather than sweeping configs; there is nothing to offload.
        eprintln!("note: --server ignored: this binary censuses traces locally");
    }
    opts.workloads
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_set_names_exist() {
        let all = helios::all_workloads();
        for n in QUICK_SET {
            assert!(all.iter().any(|w| w.name == n), "{n} not registered");
        }
    }
}
