//! Shared helpers for the figure/table regeneration binaries.
//!
//! Every binary accepts:
//! * `--quick` — run a representative 8-workload subset instead of all 32;
//! * `--only <name>[,<name>...]` — run specific workloads.

pub mod census;

use helios::Workload;

/// The representative subset used by `--quick` (chosen to cover the paper's
/// behavioural extremes: SQ-bound xz_1, ALU-idiom-heavy bitcount/susan/xz_2,
/// pointer-chasing mcf, pair-dense fft/dijkstra, hashy perlbench).
pub const QUICK_SET: [&str; 8] = [
    "600.perlbench_1",
    "605.mcf",
    "657.xz_1",
    "657.xz_2",
    "bitcount",
    "dijkstra",
    "fft",
    "susan",
];

/// Parses the common CLI arguments and returns the selected workloads.
pub fn select_workloads() -> Vec<Workload> {
    let args: Vec<String> = std::env::args().collect();
    let mut only: Option<Vec<String>> = None;
    let mut quick = false;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => quick = true,
            "--only" => {
                i += 1;
                let Some(list) = args.get(i) else {
                    eprintln!("error: --only requires a comma-separated list of workload names");
                    std::process::exit(2);
                };
                only = Some(list.split(',').map(str::to_string).collect());
            }
            other => {
                eprintln!("warning: ignoring unknown argument `{other}`");
            }
        }
        i += 1;
    }
    let all = helios::all_workloads();
    match (only, quick) {
        (Some(names), _) => all
            .into_iter()
            .filter(|w| names.iter().any(|n| n == w.name))
            .collect(),
        (None, true) => all
            .into_iter()
            .filter(|w| QUICK_SET.contains(&w.name))
            .collect(),
        (None, false) => all,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_set_names_exist() {
        let all = helios::all_workloads();
        for n in QUICK_SET {
            assert!(all.iter().any(|w| w.name == n), "{n} not registered");
        }
    }
}
