//! The daemon's persistent result cache: one simulated cell per line.
//!
//! A cell's identity is `(trace digest, config digest, ISA version)`:
//!
//! - the **trace digest** is [`TraceStore::digest`] over the workload's
//!   program — recording is strict, so the program *is* the trace;
//! - the **config digest** is [`PipeConfig::digest`], which exhaustively
//!   covers every field (including the fusion mode), so any config change
//!   keys a different cell;
//! - the **ISA version** guards against semantics changes that keep the
//!   program bytes identical.
//!
//! Storage is the same shape as the `helios-ckpt-v1` sweep journal: an
//! append-only JSONL file, one self-describing object per line, fsynced per
//! append so a crashed daemon loses at most the line being written. Lines
//! that fail to parse, carry a foreign schema, or were written under a
//! different ISA version are skipped on load (counted, not fatal) — the
//! cost of a dropped line is one re-simulation, never a wrong result.
//!
//! Only successful cells are cached. Failures and timeouts are
//! environmental (watchdog budgets, chaos injection, host load) and must
//! stay retryable.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};

use helios::{Json, SimStats};
use helios_isa::ISA_VERSION;

/// Schema tag on every cache line.
const SCHEMA: &str = "helios-cache-v1";

/// Cache identity of one sweep cell.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct CellKey {
    /// [`helios::TraceStore::digest`] of the workload's program.
    pub trace: u64,
    /// [`PipeConfig::digest`](helios::PipeConfig) of the full configuration.
    pub cfg: u64,
}

/// An in-memory index over the append-only cache journal.
pub struct ResultCache {
    path: PathBuf,
    entries: HashMap<CellKey, SimStats>,
    /// Lines skipped on load: malformed, foreign schema, or stale ISA.
    skipped: usize,
}

fn hex16(v: u64) -> String {
    format!("{v:016x}")
}

fn parse_hex16(s: &str) -> Option<u64> {
    (s.len() == 16).then(|| u64::from_str_radix(s, 16).ok()).flatten()
}

impl ResultCache {
    /// Opens (or creates) the cache journal at `path` and indexes every
    /// valid line. Later lines win over earlier ones for the same key, so
    /// re-appends after a digest-scheme migration behave as updates.
    pub fn open(path: &Path) -> Result<ResultCache, String> {
        let mut cache = ResultCache {
            path: path.to_path_buf(),
            entries: HashMap::new(),
            skipped: 0,
        };
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)
                .map_err(|e| format!("create {}: {e}", parent.display()))?;
        }
        match File::open(path) {
            Ok(f) => {
                for line in BufReader::new(f).lines() {
                    let line = line.map_err(|e| format!("read {}: {e}", path.display()))?;
                    if line.trim().is_empty() {
                        continue;
                    }
                    match Self::parse_line(&line) {
                        Some((key, stats)) => {
                            cache.entries.insert(key, stats);
                        }
                        None => cache.skipped += 1,
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(format!("open {}: {e}", path.display())),
        }
        Ok(cache)
    }

    fn parse_line(line: &str) -> Option<(CellKey, SimStats)> {
        let doc = Json::parse(line).ok()?;
        if doc.get("schema")?.as_str()? != SCHEMA {
            return None;
        }
        if doc.get("isa")?.as_u64()? != u64::from(ISA_VERSION) {
            return None;
        }
        let key = CellKey {
            trace: parse_hex16(doc.get("trace")?.as_str()?)?,
            cfg: parse_hex16(doc.get("cfg")?.as_str()?)?,
        };
        let stats = doc.get("stats")?.as_object()?;
        let kv: Option<Vec<(&str, u64)>> = stats
            .iter()
            .map(|(k, v)| v.as_u64().map(|n| (k.as_str(), n)))
            .collect();
        SimStats::from_kv(kv?).ok().map(|s| (key, s))
    }

    /// Cached stats for `key`, if any.
    pub fn get(&self, key: CellKey) -> Option<&SimStats> {
        self.entries.get(&key)
    }

    /// Number of cached cells.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no cells.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lines skipped on load (malformed / foreign schema / stale ISA).
    pub fn skipped(&self) -> usize {
        self.skipped
    }

    /// Records a successful cell: updates the index and appends one fsynced
    /// line to the journal. The `workload` and `mode` names ride along for
    /// human debugging only; identity lives entirely in `key`.
    pub fn put(
        &mut self,
        key: CellKey,
        workload: &str,
        mode: &str,
        stats: &SimStats,
    ) -> Result<(), String> {
        let line = Json::Obj(vec![
            ("schema".to_string(), Json::Str(SCHEMA.to_string())),
            ("isa".to_string(), Json::Num(f64::from(ISA_VERSION))),
            ("trace".to_string(), Json::Str(hex16(key.trace))),
            ("cfg".to_string(), Json::Str(hex16(key.cfg))),
            ("workload".to_string(), Json::Str(workload.to_string())),
            ("mode".to_string(), Json::Str(mode.to_string())),
            (
                "stats".to_string(),
                Json::Obj(
                    stats
                        .to_kv()
                        .into_iter()
                        .map(|(k, v)| (k, Json::Num(v as f64)))
                        .collect(),
                ),
            ),
        ])
        .to_string();
        let mut f = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)
            .map_err(|e| format!("open {}: {e}", self.path.display()))?;
        writeln!(f, "{line}").map_err(|e| format!("append {}: {e}", self.path.display()))?;
        f.sync_data()
            .map_err(|e| format!("sync {}: {e}", self.path.display()))?;
        self.entries.insert(key, stats.clone());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "helios-cache-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        dir.join("results.jsonl")
    }

    fn stats(cycles: u64) -> SimStats {
        SimStats {
            cycles,
            instructions: cycles / 2,
            ..SimStats::default()
        }
    }

    #[test]
    fn round_trips_through_the_journal() {
        let path = scratch("rt");
        let key = CellKey { trace: 0xdead_beef_0000_0001, cfg: 0x1234 };
        {
            let mut cache = ResultCache::open(&path).unwrap();
            assert!(cache.is_empty());
            cache.put(key, "fft", "Helios", &stats(1000)).unwrap();
            assert_eq!(cache.get(key).unwrap().cycles, 1000);
        }
        let cache = ResultCache::open(&path).unwrap();
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.skipped(), 0);
        assert_eq!(cache.get(key).unwrap(), &stats(1000));
        assert!(cache.get(CellKey { trace: 1, cfg: 2 }).is_none());
    }

    #[test]
    fn later_lines_win_and_bad_lines_are_skipped_not_fatal() {
        let path = scratch("skew");
        let key = CellKey { trace: 7, cfg: 9 };
        let mut cache = ResultCache::open(&path).unwrap();
        cache.put(key, "w", "NoFusion", &stats(10)).unwrap();
        cache.put(key, "w", "NoFusion", &stats(20)).unwrap();
        // Corrupt tail + foreign schema + stale ISA, all skipped on load.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        writeln!(f, "{{ not json").unwrap();
        writeln!(f, "{{\"schema\":\"other-v1\"}}").unwrap();
        writeln!(
            f,
            "{{\"schema\":\"{SCHEMA}\",\"isa\":999,\"trace\":\"{}\",\"cfg\":\"{}\",\"stats\":{{}}}}",
            hex16(1),
            hex16(2)
        )
        .unwrap();
        drop(f);
        let cache = ResultCache::open(&path).unwrap();
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.get(key).unwrap().cycles, 20);
        assert_eq!(cache.skipped(), 3);
    }
}
