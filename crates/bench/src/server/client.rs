//! The `--server` thin client: ships a sweep grid to a running `sweepd`
//! and rebuilds a local [`Sweep`] from the streamed response.
//!
//! The returned sweep is indistinguishable from one produced by the local
//! executor — same [`RunResult`]s, same workload ordering, same
//! [`CellReport`] failure vocabulary — so every downstream consumer
//! (report assembly, geomeans, exit codes) works unchanged and the figure
//! output stays byte-identical to a local run.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

use helios::{
    workload, CellOutcome, CellReport, FusionMode, Json, RunResult, SimStats, Sweep, Workload,
};

use super::{EVENT_SCHEMA, REQUEST_SCHEMA};

/// What the daemon did for one sweep, as reported in its `done` event.
pub struct RemoteSummary {
    /// Cells answered from the persistent result cache.
    pub cache_hits: u64,
    /// Cells simulated fresh for this request.
    pub simulated: u64,
}

/// Extracts `host:port` from an `http://` URL (the only scheme `sweepd`
/// speaks), tolerating a trailing path.
fn authority(url: &str) -> Result<&str, String> {
    let rest = url
        .strip_prefix("http://")
        .ok_or_else(|| format!("`{url}`: expected an http:// URL"))?;
    let authority = rest.split('/').next().unwrap_or(rest);
    if authority.is_empty() {
        return Err(format!("`{url}`: missing host"));
    }
    Ok(authority)
}

fn request_body(workloads: &[Workload], modes: &[FusionMode]) -> String {
    Json::Obj(vec![
        ("schema".to_string(), Json::Str(REQUEST_SCHEMA.to_string())),
        (
            "workloads".to_string(),
            Json::Arr(
                workloads
                    .iter()
                    .map(|w| Json::Str(w.name.to_string()))
                    .collect(),
            ),
        ),
        (
            "modes".to_string(),
            Json::Arr(modes.iter().map(|m| Json::Str(m.name().to_string())).collect()),
        ),
    ])
    .to_string()
}

/// One event line from the response stream, checked for schema.
fn parse_event(line: &str) -> Result<Json, String> {
    let doc = Json::parse(line).map_err(|e| format!("malformed event line: {e}"))?;
    match doc.get("schema").and_then(Json::as_str) {
        Some(EVENT_SCHEMA) => Ok(doc),
        Some(other) => Err(format!("foreign event schema `{other}`")),
        None => Err("event line missing `schema`".to_string()),
    }
}

/// The static registry name for a wire workload name — results must carry
/// `&'static str` names like the local executor's.
fn static_name(name: &str) -> Result<&'static str, String> {
    workload(name)
        .map(|w| w.name)
        .ok_or_else(|| format!("server reported unknown workload `{name}`"))
}

fn parse_cell(cell: &Json) -> Result<RunResult, String> {
    let name = cell
        .get("workload")
        .and_then(Json::as_str)
        .ok_or("cell missing `workload`")?;
    let mode = cell
        .get("mode")
        .and_then(Json::as_str)
        .and_then(FusionMode::parse)
        .ok_or("cell missing a known `mode`")?;
    let kv = cell
        .get("stats")
        .and_then(Json::as_object)
        .ok_or("cell missing `stats`")?;
    let pairs: Option<Vec<(&str, u64)>> = kv
        .iter()
        .map(|(k, v)| v.as_u64().map(|n| (k.as_str(), n)))
        .collect();
    let stats = SimStats::from_kv(pairs.ok_or("non-integer stat value")?)
        .map_err(|e| format!("{name}/{}: {e}", mode.name()))?;
    Ok(RunResult {
        workload: static_name(name)?,
        mode,
        stats,
    })
}

fn parse_failure(f: &Json) -> Result<CellReport, String> {
    let name = f
        .get("workload")
        .and_then(Json::as_str)
        .ok_or("failure missing `workload`")?;
    let mode = f
        .get("mode")
        .and_then(Json::as_str)
        .and_then(FusionMode::parse)
        .ok_or("failure missing a known `mode`")?;
    let outcome = match f.get("kind").and_then(Json::as_str) {
        Some("timed_out") => CellOutcome::TimedOut {
            limit_ms: f.get("limit_ms").and_then(Json::as_u64).unwrap_or(0),
            attempts: 1,
        },
        Some("failed") => CellOutcome::Failed {
            error: f
                .get("error")
                .and_then(Json::as_str)
                .unwrap_or("unknown server-side failure")
                .to_string(),
            attempts: 1,
        },
        other => return Err(format!("failure with unknown kind {other:?}")),
    };
    Ok(CellReport {
        workload: static_name(name)?,
        mode,
        outcome,
    })
}

/// Runs the grid on a remote `sweepd` and rebuilds the [`Sweep`], also
/// returning the daemon's cache summary.
///
/// # Errors
///
/// Connection failures, protocol violations, and truncated streams (the
/// daemon stopping mid-sweep) all surface as `Err`; a successful return
/// means every requested cell is accounted for, as a result or a failure.
pub fn remote_sweep_with_summary(
    url: &str,
    workloads: &[Workload],
    modes: &[FusionMode],
) -> Result<(Sweep, RemoteSummary), String> {
    let authority = authority(url)?;
    let stream =
        TcpStream::connect(authority).map_err(|e| format!("connect {authority}: {e}"))?;
    let body = request_body(workloads, modes);
    let mut writer = stream.try_clone().map_err(|e| format!("clone stream: {e}"))?;
    write!(
        writer,
        "POST /v1/sweep HTTP/1.1\r\nHost: {authority}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .map_err(|e| format!("send request: {e}"))?;
    writer.flush().map_err(|e| format!("send request: {e}"))?;

    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .map_err(|e| format!("read status line: {e}"))?;
    let status = line
        .split_whitespace()
        .nth(1)
        .ok_or_else(|| format!("malformed status line `{}`", line.trim_end()))?
        .to_string();
    let ok = status == "200";
    // Drain headers (EOF-delimited body follows the blank line).
    loop {
        line.clear();
        reader
            .read_line(&mut line)
            .map_err(|e| format!("read headers: {e}"))?;
        if line == "\r\n" || line == "\n" || line.is_empty() {
            break;
        }
    }
    if !ok {
        let mut body = String::new();
        std::io::Read::read_to_string(&mut reader, &mut body).ok();
        let detail = Json::parse(&body)
            .ok()
            .and_then(|d| d.get("error").and_then(Json::as_str).map(str::to_string))
            .unwrap_or(body);
        return Err(format!("server rejected the sweep ({status}): {detail}"));
    }

    let total = workloads.len() * modes.len();
    let progress = helios::Progress::new(total);
    let mut done_event = None;
    for line in (&mut reader).lines() {
        let line = line.map_err(|e| format!("read stream: {e}"))?;
        if line.trim().is_empty() {
            continue;
        }
        let event = parse_event(&line)?;
        match event.get("event").and_then(Json::as_str) {
            Some("progress") => {
                let w = event.get("workload").and_then(Json::as_str).unwrap_or("?");
                let m = event.get("mode").and_then(Json::as_str).unwrap_or("?");
                let src = event.get("source").and_then(Json::as_str).unwrap_or("?");
                progress.item_done(w, &format!("{m} [{src}]"));
            }
            Some("done") => {
                done_event = Some(event);
                break;
            }
            other => return Err(format!("unknown event {other:?}")),
        }
    }
    let done = done_event
        .ok_or("server stream ended without a done event (daemon stopped mid-sweep?)")?;
    progress.finish("remote sweep");

    let results = done
        .get("cells")
        .and_then(Json::as_array)
        .ok_or("done event missing `cells`")?
        .iter()
        .map(parse_cell)
        .collect::<Result<Vec<_>, _>>()?;
    let failures = done
        .get("failures")
        .and_then(Json::as_array)
        .ok_or("done event missing `failures`")?
        .iter()
        .map(parse_failure)
        .collect::<Result<Vec<_>, _>>()?;
    if results.len() + failures.len() != total {
        return Err(format!(
            "server accounted for {} of {total} cells",
            results.len() + failures.len()
        ));
    }
    let summary = RemoteSummary {
        cache_hits: done.get("cache_hits").and_then(Json::as_u64).unwrap_or(0),
        simulated: done.get("simulated").and_then(Json::as_u64).unwrap_or(0),
    };
    // Same ordering contract as the local executor (`run_sweep_opts`).
    let order: Vec<&'static str> = workloads.iter().map(|w| w.name).collect();
    Ok((Sweep::assemble(results, order, failures), summary))
}

/// [`remote_sweep_with_summary`], reporting the cache summary on stderr —
/// the standard path for figure binaries, which reserve stdout for the
/// report.
pub fn remote_sweep(
    url: &str,
    workloads: &[Workload],
    modes: &[FusionMode],
) -> Result<Sweep, String> {
    let (sweep, summary) = remote_sweep_with_summary(url, workloads, modes)?;
    eprintln!(
        "server cache: {} hits, {} simulated",
        summary.cache_hits, summary.simulated
    );
    Ok(sweep)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn authority_extraction() {
        assert_eq!(authority("http://127.0.0.1:8080").unwrap(), "127.0.0.1:8080");
        assert_eq!(authority("http://host:1/v1/sweep").unwrap(), "host:1");
        assert!(authority("https://host").is_err());
        assert!(authority("host:80").is_err());
        assert!(authority("http:///path").is_err());
    }

    #[test]
    fn request_bodies_are_valid_requests() {
        let w = vec![helios::workload("fft").unwrap()];
        let body = request_body(&w, &[FusionMode::Helios, FusionMode::NoFusion]);
        let parsed = super::super::parse_sweep_request(body.as_bytes()).unwrap();
        assert_eq!(parsed.workloads.len(), 1);
        assert_eq!(parsed.workloads[0].name, "fft");
        assert_eq!(
            parsed.modes,
            vec![FusionMode::Helios, FusionMode::NoFusion]
        );
    }
}
