//! A deliberately small HTTP/1.1 layer for `sweepd` — just enough protocol
//! for a request/streaming-response RPC between the figure binaries and the
//! daemon, over `std::net` alone.
//!
//! Scope (and non-goals): one request per connection (`Connection: close`),
//! `Content-Length`-framed request bodies, EOF-delimited response bodies
//! (so progress can stream as JSONL without chunked encoding), no TLS, no
//! keep-alive, no percent-decoding. Limits on the request line, header
//! count, and body size keep a confused or hostile peer from ballooning the
//! daemon's memory.

use std::io::{self, BufRead, Write};

/// Longest accepted request line or header line, in bytes.
const MAX_LINE: usize = 8 * 1024;
/// Most headers accepted per request.
const MAX_HEADERS: usize = 64;
/// Largest accepted request body (a full 32-workload × 6-mode grid request
/// is under 2 KiB; 1 MiB is "someone pointed the wrong tool at this port").
const MAX_BODY: usize = 1024 * 1024;

/// A parsed request: method, path, lower-cased headers, raw body.
#[derive(Debug)]
pub struct Request {
    /// `GET`, `POST`, …
    pub method: String,
    /// The request target, e.g. `/v1/sweep`.
    pub path: String,
    /// Headers with lower-cased names, in arrival order.
    pub headers: Vec<(String, String)>,
    /// The body, exactly `Content-Length` bytes (empty if absent).
    pub body: Vec<u8>,
}

impl Request {
    /// First header with the given lower-case name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

/// Reads one line up to CRLF (or bare LF), without the terminator.
fn read_line(r: &mut impl BufRead) -> io::Result<String> {
    let mut buf = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match r.read(&mut byte)? {
            0 => {
                if buf.is_empty() {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "connection closed before a full request line",
                    ));
                }
                break;
            }
            _ => {
                if byte[0] == b'\n' {
                    break;
                }
                if byte[0] != b'\r' {
                    buf.push(byte[0]);
                }
                if buf.len() > MAX_LINE {
                    return Err(bad("request line or header too long"));
                }
            }
        }
    }
    String::from_utf8(buf).map_err(|_| bad("request is not UTF-8"))
}

/// Reads and parses one request from the stream.
///
/// # Errors
///
/// `InvalidData` on anything that is not a well-formed bounded HTTP/1.1
/// request; plain I/O errors propagate.
pub fn read_request(r: &mut impl BufRead) -> io::Result<Request> {
    let line = read_line(r)?;
    let mut parts = line.split_whitespace();
    let (method, path, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v)) => (m.to_string(), p.to_string(), v),
        _ => return Err(bad("malformed request line")),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(bad("unsupported HTTP version"));
    }
    let mut headers = Vec::new();
    loop {
        let line = read_line(r)?;
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(bad("too many headers"));
        }
        let (name, value) = line.split_once(':').ok_or_else(|| bad("malformed header"))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    let mut req = Request {
        method,
        path,
        headers,
        body: Vec::new(),
    };
    if let Some(len) = req.header("content-length") {
        let len: usize = len.parse().map_err(|_| bad("bad Content-Length"))?;
        if len > MAX_BODY {
            return Err(bad("request body too large"));
        }
        let mut body = vec![0u8; len];
        r.read_exact(&mut body)?;
        req.body = body;
    }
    Ok(req)
}

/// Writes a response head for an EOF-delimited streaming body (the JSONL
/// progress stream): no `Content-Length`, `Connection: close` marks the
/// body's end when the socket closes.
pub fn write_stream_head(w: &mut impl Write, content_type: &str) -> io::Result<()> {
    write!(
        w,
        "HTTP/1.1 200 OK\r\nContent-Type: {content_type}\r\nCache-Control: no-store\r\nConnection: close\r\n\r\n"
    )
}

/// Writes a complete response with a known body.
pub fn write_response(
    w: &mut impl Write,
    status: u16,
    reason: &str,
    content_type: &str,
    body: &[u8],
) -> io::Result<()> {
    write!(
        w,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )?;
    w.write_all(body)
}

/// Writes a JSON error response: `{"error": "<msg>"}`.
pub fn write_error(w: &mut impl Write, status: u16, reason: &str, msg: &str) -> io::Result<()> {
    let body = helios::Json::Obj(vec![("error".to_string(), helios::Json::Str(msg.to_string()))]);
    write_response(w, status, reason, "application/json", body.to_string().as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_post_with_body() {
        let raw = b"POST /v1/sweep HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nbody";
        let req = read_request(&mut &raw[..]).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/sweep");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.body, b"body");
    }

    #[test]
    fn rejects_malformed_requests() {
        for raw in [
            &b"GARBAGE\r\n\r\n"[..],
            &b"GET / SPDY/3\r\n\r\n"[..],
            &b"GET / HTTP/1.1\r\nbroken header\r\n\r\n"[..],
            &b"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n"[..],
            &b"POST / HTTP/1.1\r\nContent-Length: 99999999999\r\n\r\n"[..],
        ] {
            assert!(read_request(&mut &raw[..]).is_err(), "{raw:?}");
        }
    }

    #[test]
    fn truncated_body_is_an_error_not_a_hang() {
        let raw = b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort";
        assert!(read_request(&mut &raw[..]).is_err());
    }

    #[test]
    fn response_heads_are_well_formed() {
        let mut out = Vec::new();
        write_response(&mut out, 404, "Not Found", "application/json", b"{}").unwrap();
        let s = String::from_utf8(out).unwrap();
        assert!(s.starts_with("HTTP/1.1 404 Not Found\r\n"));
        assert!(s.contains("Content-Length: 2\r\n"));
        assert!(s.ends_with("\r\n\r\n{}"));

        let mut out = Vec::new();
        write_stream_head(&mut out, "application/x-ndjson").unwrap();
        let s = String::from_utf8(out).unwrap();
        assert!(s.contains("Connection: close"));
        assert!(!s.contains("Content-Length"));
    }
}
