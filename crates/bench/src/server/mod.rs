//! `sweepd` — the sweep-as-a-service daemon behind `--server` (DESIGN.md
//! §17).
//!
//! One long-lived process owns the expensive shared state — a
//! content-addressed [`TraceStore`] and a persistent [`ResultCache`] keyed
//! by `(trace digest, config digest, ISA version)` — and serves sweep
//! requests from the figure binaries over a hand-rolled HTTP/1.1 endpoint
//! (`std::net` only, like everything else in this workspace):
//!
//! * `GET /v1/health` — liveness + cache occupancy, JSON;
//! * `GET /v1/cache` — cache summary, JSON;
//! * `POST /v1/sweep` — a `helios-sweep-req-v1` grid request; the response
//!   streams `helios-sweepd-v1` JSONL: one `progress` event per finished
//!   cell, then a final `done` event carrying every cell's stats and every
//!   quarantined cell's outcome.
//!
//! Cells already in the cache are answered without simulating; fresh cells
//! run through the same [`SimRequest`] entrypoint the local executor uses
//! and are appended to the cache on success. Failures and timeouts are
//! reported with the local executor's [`CellOutcome`] vocabulary and are
//! never cached — they must stay retryable.
//!
//! **Fairness.** Jobs from concurrent clients are not FIFO: a worker
//! claims its next cell from jobs in round-robin order, so a late `--quick`
//! client makes progress while a 32-workload grid is in flight, instead of
//! queueing behind all 192 of its cells.
//!
//! **Failure semantics.** A client disconnect cancels its job: the next
//! event send fails, the job's remaining cells are dropped from the queue,
//! and in-flight cells finish (and still populate the cache) but go
//! nowhere. Daemon shutdown (SIGINT or [`Server::stop`]) stops accepting,
//! lets in-flight cells finish, and exits cleanly — the cache journal is
//! fsynced per append, so nothing already reported is ever lost.

pub mod cache;
pub mod client;
pub mod http;

use std::collections::VecDeque;
use std::io::{BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use helios::{
    workload, FusionMode, Json, PipeConfig, SimError, SimRequest, SimStats, TraceStore, Workload,
};

use cache::{CellKey, ResultCache};

/// Schema tag on every streamed response line.
pub const EVENT_SCHEMA: &str = "helios-sweepd-v1";
/// Schema tag expected on `POST /v1/sweep` bodies.
pub const REQUEST_SCHEMA: &str = "helios-sweep-req-v1";

/// How often the accept loop polls the stop flag between connections.
const ACCEPT_POLL: Duration = Duration::from_millis(25);

/// Daemon configuration (CLI flags of `sweepd`).
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port (see
    /// [`Server::local_addr`]).
    pub addr: String,
    /// Simulation worker threads.
    pub jobs: usize,
    /// Directory holding the daemon's state: `results.jsonl` (the result
    /// cache journal) and `traces/` (the trace store).
    pub cache_dir: PathBuf,
    /// Wall-clock budget per cell (`None` = unbounded; the watchdog and
    /// cycle budget still bound runaway cells in simulated time).
    pub cell_timeout: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            jobs: helios::default_jobs(),
            cache_dir: helios::results_dir().join("sweepd"),
            cell_timeout: None,
        }
    }
}

/// One cell finishing, reported from a worker to the job's connection
/// handler.
struct CellEvent {
    workload: &'static str,
    mode: FusionMode,
    kind: CellDone,
}

enum CellDone {
    /// Simulated (or cache-answered) successfully.
    Ok { stats: Box<SimStats>, cached: bool },
    /// Failed (panic, deadlock, blown cycle budget, recording error).
    Failed { error: String },
    /// Blew the per-cell wall-clock budget.
    TimedOut { limit_ms: u64 },
}

/// A queued sweep job: the cells still to claim plus the channel back to
/// its connection handler.
struct Job {
    id: u64,
    cells: VecDeque<(Arc<Workload>, FusionMode)>,
    tx: mpsc::Sender<CellEvent>,
    cancelled: Arc<AtomicBool>,
}

/// Worker-facing queue state: active jobs plus the round-robin cursor.
struct Sched {
    jobs: Vec<Job>,
    /// Index of the job the next claim starts from — advanced past each
    /// claim so concurrent clients interleave cell-by-cell.
    rr: usize,
}

struct Shared {
    sched: Mutex<Sched>,
    work_ready: Condvar,
    cache: Mutex<ResultCache>,
    store: TraceStore,
    cell_timeout: Option<Duration>,
    stop: AtomicBool,
    next_job: AtomicU64,
    sweeps_served: AtomicU64,
    cells_simulated: AtomicU64,
    cells_cached: AtomicU64,
}

/// One claimed cell plus the handles needed to report and cancel it.
struct Claim {
    workload: Arc<Workload>,
    mode: FusionMode,
    tx: mpsc::Sender<CellEvent>,
    cancelled: Arc<AtomicBool>,
}

impl Shared {
    /// Claims the next cell, round-robin across active jobs. Blocks until
    /// work arrives or the daemon stops; `None` means "shut down".
    fn claim(&self) -> Option<Claim> {
        let mut sched = self.sched.lock().expect("scheduler lock poisoned");
        loop {
            if self.stop.load(Ordering::Relaxed) {
                return None;
            }
            let n = sched.jobs.len();
            for step in 0..n {
                let i = (sched.rr + step) % n;
                if sched.jobs[i].cells.is_empty() {
                    continue;
                }
                let (workload, mode) = sched.jobs[i].cells.pop_front().expect("non-empty");
                let tx = sched.jobs[i].tx.clone();
                let cancelled = sched.jobs[i].cancelled.clone();
                if sched.jobs[i].cells.is_empty() {
                    sched.jobs.remove(i);
                    sched.rr = if sched.jobs.is_empty() { 0 } else { i % sched.jobs.len() };
                } else {
                    sched.rr = (i + 1) % n;
                }
                return Some(Claim {
                    workload,
                    mode,
                    tx,
                    cancelled,
                });
            }
            sched = self
                .work_ready
                .wait_timeout(sched, Duration::from_millis(100))
                .expect("scheduler lock poisoned")
                .0;
        }
    }

    /// Drops a cancelled job's unclaimed cells from the queue.
    fn abort_job(&self, id: u64) {
        let mut sched = self.sched.lock().expect("scheduler lock poisoned");
        sched.jobs.retain(|j| j.id != id);
        if sched.rr >= sched.jobs.len() {
            sched.rr = 0;
        }
    }

    /// Runs one cell: cache lookup first, then record/replay + simulate.
    fn run_cell(&self, w: &Workload, mode: FusionMode) -> CellDone {
        let cfg = PipeConfig::with_fusion(mode);
        let key = CellKey {
            trace: TraceStore::digest(&w.program),
            cfg: cfg.digest(),
        };
        if let Some(stats) = self.cache.lock().expect("cache lock poisoned").get(key) {
            self.cells_cached.fetch_add(1, Ordering::Relaxed);
            return CellDone::Ok {
                stats: Box::new(stats.clone()),
                cached: true,
            };
        }
        let trace = match w.stored(&self.store) {
            Ok(t) => t,
            Err(e) => {
                return CellDone::Failed {
                    error: format!("trace store: {e}"),
                }
            }
        };
        let deadline = self.cell_timeout.map(|d| Instant::now() + d);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            SimRequest::new(w, cfg)
                .replaying(&trace)
                .with_deadline(deadline)
                .try_run()
        }));
        match outcome {
            Ok(Ok(run)) => {
                self.cells_simulated.fetch_add(1, Ordering::Relaxed);
                let mut cache = self.cache.lock().expect("cache lock poisoned");
                if let Err(e) = cache.put(key, w.name, mode.name(), &run.stats) {
                    // A cache write failure costs a future re-simulation,
                    // never a wrong answer — warn and serve the result.
                    eprintln!("warning: sweepd: {e}");
                }
                CellDone::Ok {
                    stats: Box::new(run.stats),
                    cached: false,
                }
            }
            Ok(Err(SimError::WallClockTimeout { limit_ms, .. })) => {
                CellDone::TimedOut { limit_ms }
            }
            Ok(Err(e)) => CellDone::Failed {
                error: e.to_string(),
            },
            Err(payload) => CellDone::Failed {
                error: format!("panic: {}", helios::panic_message(&*payload)),
            },
        }
    }
}

fn worker_loop(shared: Arc<Shared>) {
    while let Some(claim) = shared.claim() {
        if claim.cancelled.load(Ordering::Relaxed) {
            continue;
        }
        let kind = shared.run_cell(&claim.workload, claim.mode);
        // A failed send means the handler is gone (client disconnect after
        // abort_job raced the claim); the result is already in the cache.
        let _ = claim.tx.send(CellEvent {
            workload: claim.workload.name,
            mode: claim.mode,
            kind,
        });
    }
}

/// The daemon: a bound listener plus its worker pool. Dropping the server
/// stops the workers and joins them.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds the listener, opens (or creates) the cache journal and trace
    /// store under `config.cache_dir`, and starts the worker pool.
    pub fn bind(config: &ServerConfig) -> Result<Server, String> {
        let listener = TcpListener::bind(&config.addr)
            .map_err(|e| format!("bind {}: {e}", config.addr))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| format!("set_nonblocking: {e}"))?;
        let cache = ResultCache::open(&config.cache_dir.join("results.jsonl"))?;
        if cache.skipped() > 0 {
            eprintln!(
                "warning: sweepd: skipped {} stale/malformed cache line(s)",
                cache.skipped()
            );
        }
        let store = TraceStore::open(config.cache_dir.join("traces"))
            .map_err(|e| format!("trace store: {e}"))?;
        let shared = Arc::new(Shared {
            sched: Mutex::new(Sched {
                jobs: Vec::new(),
                rr: 0,
            }),
            work_ready: Condvar::new(),
            cache: Mutex::new(cache),
            store,
            cell_timeout: config.cell_timeout,
            stop: AtomicBool::new(false),
            next_job: AtomicU64::new(0),
            sweeps_served: AtomicU64::new(0),
            cells_simulated: AtomicU64::new(0),
            cells_cached: AtomicU64::new(0),
        });
        let workers = (0..config.jobs.max(1))
            .map(|i| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("sweepd-worker-{i}"))
                    .spawn(move || worker_loop(shared))
                    .expect("spawn worker")
            })
            .collect();
        Ok(Server {
            listener,
            shared,
            workers,
        })
    }

    /// The bound address (reports the kernel-chosen port when the config
    /// asked for port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.listener.local_addr().expect("bound listener has an address")
    }

    /// Asks the accept loop and workers to stop. In-flight cells finish.
    pub fn stop(&self) {
        self.shared.stop.store(true, Ordering::Relaxed);
        self.shared.work_ready.notify_all();
    }

    /// Serves connections until [`Server::stop`] is called or the process
    /// is interrupted (`helios::sweep_interrupted`). Each connection gets
    /// its own handler thread; worker threads do the simulating.
    pub fn run(&self) {
        loop {
            if self.shared.stop.load(Ordering::Relaxed) || helios::sweep_interrupted() {
                self.stop();
                return;
            }
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let shared = self.shared.clone();
                    std::thread::Builder::new()
                        .name("sweepd-conn".to_string())
                        .spawn(move || handle_connection(&shared, stream))
                        .expect("spawn connection handler");
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(ACCEPT_POLL);
                }
                Err(e) => {
                    eprintln!("warning: sweepd: accept: {e}");
                    std::thread::sleep(ACCEPT_POLL);
                }
            }
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// A validated `POST /v1/sweep` body.
struct SweepRequest {
    workloads: Vec<Arc<Workload>>,
    modes: Vec<FusionMode>,
}

fn parse_sweep_request(body: &[u8]) -> Result<SweepRequest, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
    let doc = Json::parse(text).map_err(|e| format!("body is not JSON: {e}"))?;
    match doc.get("schema").and_then(Json::as_str) {
        Some(REQUEST_SCHEMA) => {}
        Some(other) => return Err(format!("unsupported request schema `{other}`")),
        None => return Err("missing `schema`".to_string()),
    }
    let names = doc
        .get("workloads")
        .and_then(Json::as_array)
        .ok_or("missing `workloads` array")?;
    let mut workloads = Vec::with_capacity(names.len());
    for n in names {
        let n = n.as_str().ok_or("non-string workload name")?;
        let w = workload(n).ok_or_else(|| format!("unknown workload `{n}`"))?;
        workloads.push(Arc::new(w));
    }
    let modes = doc
        .get("modes")
        .and_then(Json::as_array)
        .ok_or("missing `modes` array")?
        .iter()
        .map(|m| {
            m.as_str()
                .and_then(FusionMode::parse)
                .ok_or_else(|| format!("unknown fusion mode {m}"))
        })
        .collect::<Result<Vec<_>, _>>()?;
    if workloads.is_empty() || modes.is_empty() {
        return Err("empty grid".to_string());
    }
    Ok(SweepRequest { workloads, modes })
}

fn status_json(shared: &Shared) -> Json {
    let cache = shared.cache.lock().expect("cache lock poisoned");
    Json::Obj(vec![
        ("schema".to_string(), Json::Str(EVENT_SCHEMA.to_string())),
        ("status".to_string(), Json::Str("ok".to_string())),
        ("cached_cells".to_string(), Json::Num(cache.len() as f64)),
        (
            "sweeps_served".to_string(),
            Json::Num(shared.sweeps_served.load(Ordering::Relaxed) as f64),
        ),
        (
            "cells_simulated".to_string(),
            Json::Num(shared.cells_simulated.load(Ordering::Relaxed) as f64),
        ),
        (
            "cells_from_cache".to_string(),
            Json::Num(shared.cells_cached.load(Ordering::Relaxed) as f64),
        ),
    ])
}

fn handle_connection(shared: &Shared, stream: TcpStream) {
    stream
        .set_nonblocking(false)
        .expect("connection sockets are blocking");
    // A peer that stops mid-request must not pin a handler thread forever.
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("set_read_timeout");
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    let mut writer = BufWriter::new(stream);
    let req = match http::read_request(&mut reader) {
        Ok(r) => r,
        Err(e) => {
            let _ = http::write_error(&mut writer, 400, "Bad Request", &e.to_string());
            return;
        }
    };
    let outcome = match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/v1/health") | ("GET", "/v1/cache") => http::write_response(
            &mut writer,
            200,
            "OK",
            "application/json",
            status_json(shared).to_string().as_bytes(),
        ),
        ("POST", "/v1/sweep") => match parse_sweep_request(&req.body) {
            Ok(sweep) => {
                serve_sweep(shared, &mut writer, &sweep);
                Ok(())
            }
            Err(e) => http::write_error(&mut writer, 400, "Bad Request", &e),
        },
        (_, path) => http::write_error(
            &mut writer,
            404,
            "Not Found",
            &format!("no such endpoint `{path}`"),
        ),
    };
    if outcome.is_ok() {
        let _ = writer.flush();
    }
}

/// Streams one sweep: enqueue the grid, relay each cell event as a JSONL
/// `progress` line, then emit the final `done` line with all results.
fn serve_sweep(shared: &Shared, writer: &mut impl Write, req: &SweepRequest) {
    let total = req.workloads.len() * req.modes.len();
    let (tx, rx) = mpsc::channel();
    let cancelled = Arc::new(AtomicBool::new(false));
    let job_id = shared.next_job.fetch_add(1, Ordering::Relaxed);
    {
        let mut cells = VecDeque::with_capacity(total);
        for w in &req.workloads {
            for &mode in &req.modes {
                cells.push_back((w.clone(), mode));
            }
        }
        let mut sched = shared.sched.lock().expect("scheduler lock poisoned");
        sched.jobs.push(Job {
            id: job_id,
            cells,
            tx,
            cancelled: cancelled.clone(),
        });
    }
    shared.work_ready.notify_all();

    if http::write_stream_head(writer, "application/x-ndjson").is_err() {
        cancelled.store(true, Ordering::Relaxed);
        shared.abort_job(job_id);
        return;
    }
    let mut cells: Vec<Json> = Vec::with_capacity(total);
    let mut failures: Vec<Json> = Vec::new();
    let mut cache_hits = 0u64;
    let mut simulated = 0u64;
    for done in 0..total {
        let Ok(event) = rx.recv() else {
            // All workers gone (daemon stopping) — the stream just ends;
            // the client reports the missing `done` event as an error.
            return;
        };
        let source = match &event.kind {
            CellDone::Ok { cached: true, .. } => {
                cache_hits += 1;
                "cache"
            }
            CellDone::Ok { cached: false, .. } => {
                simulated += 1;
                "sim"
            }
            CellDone::Failed { .. } | CellDone::TimedOut { .. } => "error",
        };
        let progress = Json::Obj(vec![
            ("schema".to_string(), Json::Str(EVENT_SCHEMA.to_string())),
            ("event".to_string(), Json::Str("progress".to_string())),
            ("done".to_string(), Json::Num((done + 1) as f64)),
            ("total".to_string(), Json::Num(total as f64)),
            ("workload".to_string(), Json::Str(event.workload.to_string())),
            ("mode".to_string(), Json::Str(event.mode.name().to_string())),
            ("source".to_string(), Json::Str(source.to_string())),
        ]);
        if writeln!(writer, "{progress}").and_then(|()| writer.flush()).is_err() {
            cancelled.store(true, Ordering::Relaxed);
            shared.abort_job(job_id);
            return;
        }
        match event.kind {
            CellDone::Ok { stats, .. } => cells.push(Json::Obj(vec![
                ("workload".to_string(), Json::Str(event.workload.to_string())),
                ("mode".to_string(), Json::Str(event.mode.name().to_string())),
                (
                    "stats".to_string(),
                    Json::Obj(
                        stats
                            .to_kv()
                            .into_iter()
                            .map(|(k, v)| (k, Json::Num(v as f64)))
                            .collect(),
                    ),
                ),
            ])),
            CellDone::Failed { error } => failures.push(Json::Obj(vec![
                ("workload".to_string(), Json::Str(event.workload.to_string())),
                ("mode".to_string(), Json::Str(event.mode.name().to_string())),
                ("kind".to_string(), Json::Str("failed".to_string())),
                ("error".to_string(), Json::Str(error)),
            ])),
            CellDone::TimedOut { limit_ms } => failures.push(Json::Obj(vec![
                ("workload".to_string(), Json::Str(event.workload.to_string())),
                ("mode".to_string(), Json::Str(event.mode.name().to_string())),
                ("kind".to_string(), Json::Str("timed_out".to_string())),
                ("limit_ms".to_string(), Json::Num(limit_ms as f64)),
            ])),
        }
    }
    shared.sweeps_served.fetch_add(1, Ordering::Relaxed);
    let done = Json::Obj(vec![
        ("schema".to_string(), Json::Str(EVENT_SCHEMA.to_string())),
        ("event".to_string(), Json::Str("done".to_string())),
        ("total".to_string(), Json::Num(total as f64)),
        ("cache_hits".to_string(), Json::Num(cache_hits as f64)),
        ("simulated".to_string(), Json::Num(simulated as f64)),
        ("failures".to_string(), Json::Arr(failures)),
        ("cells".to_string(), Json::Arr(cells)),
    ]);
    let _ = writeln!(writer, "{done}").and_then(|()| writer.flush());
}
