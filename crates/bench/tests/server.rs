//! End-to-end tests for `sweepd`: an in-process daemon on an ephemeral
//! port, exercised through the real TCP stack — the thin client, raw
//! sockets, concurrent clients, and cache persistence across restarts.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use helios::{FusionMode, Json, SimRequest, Workload};
use helios_bench::server::client::remote_sweep_with_summary;
use helios_bench::server::{Server, ServerConfig};

/// A fresh scratch directory for one test's daemon state.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("helios-sweepd-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Binds a daemon on an ephemeral port and serves it from a thread until
/// the returned guard is dropped.
struct Daemon {
    server: Arc<Server>,
    url: String,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl Daemon {
    fn start(cache_dir: &Path) -> Daemon {
        let server = Arc::new(
            Server::bind(&ServerConfig {
                addr: "127.0.0.1:0".to_string(),
                jobs: 2,
                cache_dir: cache_dir.to_path_buf(),
                cell_timeout: None,
            })
            .expect("bind ephemeral port"),
        );
        let url = format!("http://{}", server.local_addr());
        let runner = server.clone();
        let thread = std::thread::spawn(move || runner.run());
        Daemon {
            server,
            url,
            thread: Some(thread),
        }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        self.server.stop();
        if let Some(t) = self.thread.take() {
            t.join().expect("accept loop exits cleanly");
        }
    }
}

fn grid() -> (Vec<Workload>, Vec<FusionMode>) {
    let workloads = ["crc32", "bitcount"]
        .iter()
        .map(|n| helios::workload(n).expect("registered"))
        .collect();
    (workloads, vec![FusionMode::NoFusion, FusionMode::Helios])
}

#[test]
fn remote_sweep_matches_local_and_resubmission_hits_the_cache() {
    let dir = scratch("e2e");
    let daemon = Daemon::start(&dir);
    let (workloads, modes) = grid();

    let (sweep, summary) =
        remote_sweep_with_summary(&daemon.url, &workloads, &modes).expect("remote sweep");
    assert_eq!(summary.simulated, 4, "cold cache simulates every cell");
    assert_eq!(summary.cache_hits, 0);
    assert!(sweep.is_complete());
    assert_eq!(sweep.workloads(), vec!["crc32", "bitcount"]);

    // Remote stats are exactly the local executor's stats, cell by cell.
    for w in &workloads {
        for &mode in &modes {
            let local = SimRequest::mode(w, mode).run().stats;
            let remote = sweep.get(w.name, mode).expect("cell present");
            assert_eq!(remote, &local, "{}/{}", w.name, mode.name());
        }
    }

    // Resubmitting the identical grid must re-simulate nothing.
    let (again, summary) =
        remote_sweep_with_summary(&daemon.url, &workloads, &modes).expect("warm resubmission");
    assert_eq!(summary.simulated, 0, "warm cache re-simulates zero cells");
    assert_eq!(summary.cache_hits, 4);
    for w in &workloads {
        for &mode in &modes {
            assert_eq!(again.get(w.name, mode), sweep.get(w.name, mode));
        }
    }
}

#[test]
fn cache_survives_a_daemon_restart() {
    let dir = scratch("restart");
    let (workloads, modes) = grid();
    {
        let daemon = Daemon::start(&dir);
        let (_, summary) =
            remote_sweep_with_summary(&daemon.url, &workloads, &modes).expect("cold sweep");
        assert_eq!(summary.simulated, 4);
    }
    // A fresh daemon over the same state directory answers from disk.
    let daemon = Daemon::start(&dir);
    let (sweep, summary) =
        remote_sweep_with_summary(&daemon.url, &workloads, &modes).expect("warm sweep");
    assert_eq!(summary.simulated, 0, "journal reload kept every cell");
    assert_eq!(summary.cache_hits, 4);
    assert!(sweep.is_complete());
}

#[test]
fn concurrent_clients_both_complete_with_correct_results() {
    let dir = scratch("fair");
    let daemon = Daemon::start(&dir);
    let url = daemon.url.clone();

    let grids: Vec<(Vec<Workload>, Vec<FusionMode>)> = vec![
        (
            vec![helios::workload("crc32").unwrap(), helios::workload("fft").unwrap()],
            vec![FusionMode::NoFusion, FusionMode::Helios],
        ),
        (
            vec![helios::workload("bitcount").unwrap()],
            vec![FusionMode::RiscvFusion, FusionMode::OracleFusion],
        ),
    ];
    std::thread::scope(|s| {
        let handles: Vec<_> = grids
            .iter()
            .map(|(w, m)| {
                let url = url.clone();
                s.spawn(move || remote_sweep_with_summary(&url, w, m).expect("client sweep"))
            })
            .collect();
        for (h, (w, m)) in handles.into_iter().zip(&grids) {
            let (sweep, _) = h.join().expect("client thread");
            assert!(sweep.is_complete());
            for w in w {
                for &mode in m.iter() {
                    let local = SimRequest::mode(w, mode).run().stats;
                    assert_eq!(sweep.get(w.name, mode), Some(&local));
                }
            }
        }
    });
}

/// Speaks raw HTTP to the daemon and checks the stream's shape: every line
/// is one `helios-sweepd-v1` JSON object, `done` counts are monotonically
/// increasing, and the final line is the `done` event.
#[test]
fn streamed_progress_is_well_formed_jsonl() {
    let dir = scratch("jsonl");
    let daemon = Daemon::start(&dir);
    let authority = daemon.url.strip_prefix("http://").unwrap().to_string();

    let body = r#"{"schema":"helios-sweep-req-v1","workloads":["crc32"],"modes":["NoFusion","Helios"]}"#;
    let mut stream = TcpStream::connect(&authority).expect("connect");
    write!(
        stream,
        "POST /v1/sweep HTTP/1.1\r\nHost: {authority}\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .unwrap();
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(line.starts_with("HTTP/1.1 200"), "{line}");
    loop {
        line.clear();
        reader.read_line(&mut line).unwrap();
        if line == "\r\n" || line == "\n" {
            break;
        }
        assert!(!line.is_empty(), "headers ended at EOF");
    }

    let lines: Vec<String> = reader.lines().map(|l| l.unwrap()).collect();
    assert_eq!(lines.len(), 3, "2 progress lines + 1 done line: {lines:?}");
    let mut last_done = 0;
    for (i, l) in lines.iter().enumerate() {
        let doc = Json::parse(l).expect("every line is standalone JSON");
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some("helios-sweepd-v1")
        );
        let event = doc.get("event").and_then(Json::as_str).unwrap();
        if i < lines.len() - 1 {
            assert_eq!(event, "progress");
            let done = doc.get("done").and_then(Json::as_u64).unwrap();
            assert!(done > last_done, "progress counts increase");
            last_done = done;
            assert_eq!(doc.get("total").and_then(Json::as_u64), Some(2));
        } else {
            assert_eq!(event, "done", "stream ends with the done event");
            assert_eq!(doc.get("total").and_then(Json::as_u64), Some(2));
            let cells = doc.get("cells").and_then(Json::as_array).unwrap();
            assert_eq!(cells.len(), 2);
            assert_eq!(
                doc.get("failures").and_then(Json::as_array).map(<[Json]>::len),
                Some(0)
            );
        }
    }
}

#[test]
fn health_endpoint_and_error_paths() {
    let dir = scratch("health");
    let daemon = Daemon::start(&dir);
    let authority = daemon.url.strip_prefix("http://").unwrap().to_string();

    let fetch = |request: String| -> (String, String) {
        let mut stream = TcpStream::connect(&authority).expect("connect");
        stream.write_all(request.as_bytes()).unwrap();
        let mut reader = BufReader::new(stream);
        let mut status = String::new();
        reader.read_line(&mut status).unwrap();
        let mut line = String::new();
        loop {
            line.clear();
            reader.read_line(&mut line).unwrap();
            if line == "\r\n" || line == "\n" || line.is_empty() {
                break;
            }
        }
        let mut body = String::new();
        std::io::Read::read_to_string(&mut reader, &mut body).unwrap();
        (status, body)
    };

    let (status, body) = fetch(format!("GET /v1/health HTTP/1.1\r\nHost: {authority}\r\n\r\n"));
    assert!(status.starts_with("HTTP/1.1 200"), "{status}");
    let doc = Json::parse(&body).expect("health is JSON");
    assert_eq!(doc.get("status").and_then(Json::as_str), Some("ok"));
    assert_eq!(doc.get("cached_cells").and_then(Json::as_u64), Some(0));

    let (status, _) = fetch(format!("GET /nope HTTP/1.1\r\nHost: {authority}\r\n\r\n"));
    assert!(status.starts_with("HTTP/1.1 404"), "{status}");

    let bad = r#"{"schema":"helios-sweep-req-v1","workloads":["not-a-workload"],"modes":["Helios"]}"#;
    let (status, body) = fetch(format!(
        "POST /v1/sweep HTTP/1.1\r\nHost: {authority}\r\nContent-Length: {}\r\n\r\n{bad}",
        bad.len()
    ));
    assert!(status.starts_with("HTTP/1.1 400"), "{status}");
    assert!(body.contains("unknown workload"), "{body}");
}
