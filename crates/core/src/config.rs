//! The five evaluated fusion configurations (paper §V-A) and Helios
//! parameters.

use crate::{FpConfig, UchConfig, UchQueueConfig};

/// A fusion configuration from the paper's evaluation (§V-A).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum FusionMode {
    /// No fusion at all (the IPC baseline of Figs. 3 and 10).
    NoFusion,
    /// Only the non-memory-pair idioms of Table I (Celio et al.'s proposal
    /// without memory pairs).
    RiscvFusion,
    /// Only consecutive, statically contiguous, same-base-register memory
    /// pairs (possibly asymmetric).
    CsfSbr,
    /// All Table I idioms (non-memory + consecutive contiguous memory pairs).
    RiscvFusionPlusPlus,
    /// The paper's contribution: CSF-SBR memory fusion at Decode plus the
    /// UCH-trained fusion predictor for NCSF / NCTF / DBR memory pairs.
    Helios,
    /// Upper bound: fuses every eligible memory pair using oracle (future)
    /// knowledge, plus the non-memory idioms of Table I.
    OracleFusion,
}

impl FusionMode {
    /// All configurations, in the paper's presentation order.
    pub const ALL: [FusionMode; 6] = [
        FusionMode::NoFusion,
        FusionMode::RiscvFusion,
        FusionMode::CsfSbr,
        FusionMode::RiscvFusionPlusPlus,
        FusionMode::Helios,
        FusionMode::OracleFusion,
    ];

    /// Name as used in the paper.
    pub fn name(self) -> &'static str {
        match self {
            FusionMode::NoFusion => "NoFusion",
            FusionMode::RiscvFusion => "RISCVFusion",
            FusionMode::CsfSbr => "CSF-SBR",
            FusionMode::RiscvFusionPlusPlus => "RISCVFusion++",
            FusionMode::Helios => "Helios",
            FusionMode::OracleFusion => "OracleFusion",
        }
    }

    /// The inverse of [`FusionMode::name`]: resolves a paper name (as used
    /// in reports, checkpoint journals, and the sweep server's wire format)
    /// back to the mode. Returns `None` for unknown names.
    pub fn parse(name: &str) -> Option<FusionMode> {
        FusionMode::ALL.into_iter().find(|m| m.name() == name)
    }

    /// Whether Decode fuses consecutive same-base contiguous memory pairs.
    pub fn csf_mem_pairs(self) -> bool {
        matches!(
            self,
            FusionMode::CsfSbr
                | FusionMode::RiscvFusionPlusPlus
                | FusionMode::Helios
                | FusionMode::OracleFusion
        )
    }

    /// Whether Decode fuses the non-memory-pair idioms of Table I.
    pub fn other_idioms(self) -> bool {
        matches!(
            self,
            FusionMode::RiscvFusion | FusionMode::RiscvFusionPlusPlus | FusionMode::OracleFusion
        )
    }

    /// Whether the Helios UCH + fusion-predictor machinery is active.
    pub fn predictive(self) -> bool {
        matches!(self, FusionMode::Helios)
    }

    /// Whether oracle (future-knowledge) memory pairing is active.
    pub fn oracle_mem(self) -> bool {
        matches!(self, FusionMode::OracleFusion)
    }

    /// Whether any fusion is performed.
    pub fn any_fusion(self) -> bool {
        !matches!(self, FusionMode::NoFusion)
    }
}

impl std::fmt::Display for FusionMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Parameters of the Helios machinery (defaults match the paper).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct HeliosParams {
    /// Unfused Committed History configuration.
    pub uch: UchConfig,
    /// Post-commit UCH decoupling queue (paper: 8 entries, 1 port, §IV-A1).
    pub uch_queue: UchQueueConfig,
    /// Fusion predictor configuration.
    pub fp: FpConfig,
    /// Supported NCSF nesting/interleaving depth (paper: 2, §IV-B2).
    pub max_nest: usize,
    /// Cache access granularity — the fusion region size (paper: 64 B).
    pub line_bytes: u64,
    /// Whether store-pair NCSF with different base registers is supported
    /// (paper: no — 0.54% of fused stores, §IV-B).
    pub dbr_store_pairs: bool,
}

impl Default for HeliosParams {
    fn default() -> Self {
        HeliosParams {
            uch: UchConfig::default(),
            uch_queue: UchQueueConfig::default(),
            fp: FpConfig::default(),
            max_nest: 2,
            line_bytes: 64,
            dbr_store_pairs: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capability_matrix() {
        use FusionMode::*;
        assert!(!NoFusion.any_fusion());
        assert!(!NoFusion.csf_mem_pairs() && !NoFusion.other_idioms());
        assert!(RiscvFusion.other_idioms() && !RiscvFusion.csf_mem_pairs());
        assert!(CsfSbr.csf_mem_pairs() && !CsfSbr.other_idioms());
        assert!(RiscvFusionPlusPlus.csf_mem_pairs() && RiscvFusionPlusPlus.other_idioms());
        assert!(Helios.predictive() && Helios.csf_mem_pairs() && !Helios.other_idioms());
        assert!(OracleFusion.oracle_mem() && OracleFusion.other_idioms());
        assert_eq!(FusionMode::ALL.len(), 6);
    }

    #[test]
    fn parse_inverts_name() {
        for m in FusionMode::ALL {
            assert_eq!(FusionMode::parse(m.name()), Some(m));
        }
        assert_eq!(FusionMode::parse("NotAMode"), None);
        assert_eq!(FusionMode::parse("nofusion"), None, "names are exact");
    }

    #[test]
    fn default_params_match_paper() {
        let p = HeliosParams::default();
        assert_eq!(p.max_nest, 2);
        assert_eq!(p.line_bytes, 64);
        assert_eq!(p.uch.load_entries, 6);
        assert_eq!(p.uch_queue.entries, Some(8));
        assert_eq!(p.uch_queue.drain_per_cycle, 1);
        assert_eq!(p.uch.max_distance, 64);
        assert!(!p.dbr_store_pairs);
    }
}
