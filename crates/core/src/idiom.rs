//! RISC-V fusion idioms (paper Table I, after Celio et al. [7]).
//!
//! The memory **pairing** idioms — [`Idiom::LoadPair`] and
//! [`Idiom::StorePair`] — are the bold entries of Table I; the paper shows
//! they are both the most frequent and the most profitable (§III-B).
//! The remaining idioms fuse an ALU µ-op with a dependent ALU or memory µ-op.

use helios_isa::{AluImmOp, AluOp, Inst};
use std::fmt;

/// A fusion idiom from Table I.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Idiom {
    /// `ld rd1, o(rb); ld rd2, o±s(rb)` — **memory pair** (bold).
    LoadPair,
    /// `sd rs1, o(rb); sd rs2, o±s(rb)` — **memory pair** (bold).
    StorePair,
    /// `lui rd, hi; addi[w] rd, rd, lo` — 32-bit load-immediate.
    LuiAddi,
    /// `auipc rd, hi; addi rd, rd, lo` — PC-relative address generation.
    AuipcAddi,
    /// `slli rd, rs, {1,2,3}; add rd, rX, rd` — load effective address.
    SlliAdd,
    /// `slli rd, rs, 32; srli rd, rd, 32` — clear upper word (zero-extend).
    SlliSrli,
    /// `add rd, rs1, rs2; ld rd, 0(rd)` — indexed load.
    IndexedLoad,
    /// `lui rd, hi; ld rd, lo(rd)` (or `auipc` base) — load global.
    LoadGlobal,
}

/// All idioms, in Table I order (memory pairs first).
pub const ALL_IDIOMS: [Idiom; 8] = [
    Idiom::LoadPair,
    Idiom::StorePair,
    Idiom::LuiAddi,
    Idiom::AuipcAddi,
    Idiom::SlliAdd,
    Idiom::SlliSrli,
    Idiom::IndexedLoad,
    Idiom::LoadGlobal,
];

impl Idiom {
    /// This idiom's position in [`ALL_IDIOMS`] (total — no panic path).
    pub const fn index(self) -> usize {
        match self {
            Idiom::LoadPair => 0,
            Idiom::StorePair => 1,
            Idiom::LuiAddi => 2,
            Idiom::AuipcAddi => 3,
            Idiom::SlliAdd => 4,
            Idiom::SlliSrli => 5,
            Idiom::IndexedLoad => 6,
            Idiom::LoadGlobal => 7,
        }
    }

    /// Whether this is one of the bold memory-pairing idioms of Table I.
    ///
    /// Memory pairs save LQ/SQ entries in addition to ROB/IQ entries, and can
    /// halve the number of cache accesses — the paper's Figure 2/3 split.
    #[inline]
    pub fn is_memory_pair(self) -> bool {
        matches!(self, Idiom::LoadPair | Idiom::StorePair)
    }

    /// Human-readable name as used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            Idiom::LoadPair => "load pair",
            Idiom::StorePair => "store pair",
            Idiom::LuiAddi => "lui+addi (load imm32)",
            Idiom::AuipcAddi => "auipc+addi (pc-rel addr)",
            Idiom::SlliAdd => "slli+add (LEA)",
            Idiom::SlliSrli => "slli+srli (clear upper)",
            Idiom::IndexedLoad => "add+ld (indexed load)",
            Idiom::LoadGlobal => "lui/auipc+ld (load global)",
        }
    }
}

impl fmt::Display for Idiom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Statically matches a **memory pairing** idiom on two µ-ops
/// (consecutive in program order: `head` older, `tail` younger).
///
/// Mirrors the decode-time `fuse(op0, op1)` formula of §II-B, with the
/// CSF-SBR relaxation of §V-A: the two accesses must be contiguous through
/// the *same base register* but may be asymmetric (different sizes).
///
/// Rejects dependent loads (`ld x1, 0(x1); ld x5, 0(x1)` — §II-B) and pairs
/// whose destinations collide.
pub fn match_mem_pair(head: &Inst, tail: &Inst) -> Option<Idiom> {
    match (head, tail) {
        (
            Inst::Load {
                rd: rd0,
                rs1: b0,
                offset: o0,
                width: w0,
                ..
            },
            Inst::Load {
                rd: rd1,
                rs1: b1,
                offset: o1,
                width: w1,
                ..
            },
        ) => {
            if b0 != b1 {
                return None;
            }
            // Dependent loads: the head writes the shared base register, or
            // the tail would overwrite it while the head still needs it.
            if rd0 == b0 || rd1 == b0 {
                return None;
            }
            // Distinct destinations (two architectural results).
            if rd0 == rd1 {
                return None;
            }
            statically_contiguous(*o0, w0.bytes(), *o1, w1.bytes()).then_some(Idiom::LoadPair)
        }
        (
            Inst::Store {
                rs1: b0,
                offset: o0,
                width: w0,
                ..
            },
            Inst::Store {
                rs1: b1,
                offset: o1,
                width: w1,
                ..
            },
        ) => {
            if b0 != b1 {
                return None;
            }
            statically_contiguous(*o0, w0.bytes(), *o1, w1.bytes()).then_some(Idiom::StorePair)
        }
        _ => None,
    }
}

/// `|imm0 - imm1| == mem_size` of the lower access: byte-adjacent,
/// non-overlapping.
fn statically_contiguous(o0: i32, s0: u64, o1: i32, s1: u64) -> bool {
    let (lo_off, lo_size, hi_off) = if o0 <= o1 {
        (o0 as i64, s0 as i64, o1 as i64)
    } else {
        (o1 as i64, s1 as i64, o0 as i64)
    };
    lo_off + lo_size == hi_off
}

/// Statically matches a **non-memory-pair** idiom (the non-bold Table I rows)
/// on two consecutive µ-ops.
pub fn match_other_idiom(head: &Inst, tail: &Inst) -> Option<Idiom> {
    match (head, tail) {
        // lui rd, hi ; addi[w] rd, rd, lo
        (
            Inst::Lui { rd: rd0, .. },
            Inst::OpImm {
                op: AluImmOp::Addi | AluImmOp::Addiw,
                rd: rd1,
                rs1,
                ..
            },
        ) if rd0 == rd1 && rs1 == rd0 => Some(Idiom::LuiAddi),
        // auipc rd, hi ; addi rd, rd, lo
        (
            Inst::Auipc { rd: rd0, .. },
            Inst::OpImm {
                op: AluImmOp::Addi,
                rd: rd1,
                rs1,
                ..
            },
        ) if rd0 == rd1 && rs1 == rd0 => Some(Idiom::AuipcAddi),
        // slli rd, rs, 32 ; srli rd, rd, 32
        (
            Inst::OpImm {
                op: AluImmOp::Slli,
                rd: rd0,
                imm: 32,
                ..
            },
            Inst::OpImm {
                op: AluImmOp::Srli,
                rd: rd1,
                rs1,
                imm: 32,
            },
        ) if rd0 == rd1 && rs1 == rd0 => Some(Idiom::SlliSrli),
        // slli rd, rs, {1,2,3} ; add rd, rX, rd  (address scaling)
        (
            Inst::OpImm {
                op: AluImmOp::Slli,
                rd: rd0,
                imm,
                ..
            },
            Inst::Op {
                op: AluOp::Add,
                rd: rd1,
                rs1,
                rs2,
            },
        ) if (1..=3).contains(imm)
            && rd0 == rd1
            && (rs1 == rd0 || rs2 == rd0)
            && !(rs1 == rd0 && rs2 == rd0) =>
        {
            Some(Idiom::SlliAdd)
        }
        // add rd, rs1, rs2 ; ld rd, 0(rd)
        (
            Inst::Op {
                op: AluOp::Add,
                rd: rd0,
                ..
            },
            Inst::Load {
                rd: rd1,
                rs1,
                offset: 0,
                ..
            },
        ) if rs1 == rd0 && rd1 == rd0 => Some(Idiom::IndexedLoad),
        // lui/auipc rd, hi ; ld rd, lo(rd)
        (Inst::Lui { rd: rd0, .. } | Inst::Auipc { rd: rd0, .. }, Inst::Load { rd: rd1, rs1, .. })
            if rs1 == rd0 && rd1 == rd0 =>
        {
            Some(Idiom::LoadGlobal)
        }
        _ => None,
    }
}

/// Matches any Table I idiom, controlled by which categories are enabled.
pub fn match_idiom(head: &Inst, tail: &Inst, mem_pairs: bool, others: bool) -> Option<Idiom> {
    if mem_pairs {
        if let Some(i) = match_mem_pair(head, tail) {
            return Some(i);
        }
    }
    if others {
        if let Some(i) = match_other_idiom(head, tail) {
            return Some(i);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use helios_isa::{MemWidth, Reg};

    fn ld(rd: Reg, offset: i32, rs1: Reg) -> Inst {
        Inst::Load {
            width: MemWidth::D,
            signed: true,
            rd,
            rs1,
            offset,
        }
    }
    fn lw(rd: Reg, offset: i32, rs1: Reg) -> Inst {
        Inst::Load {
            width: MemWidth::W,
            signed: true,
            rd,
            rs1,
            offset,
        }
    }
    fn sd(rs2: Reg, offset: i32, rs1: Reg) -> Inst {
        Inst::Store {
            width: MemWidth::D,
            rs2,
            rs1,
            offset,
        }
    }

    #[test]
    fn load_pair_basic() {
        assert_eq!(
            match_mem_pair(&ld(Reg::A0, 0, Reg::SP), &ld(Reg::A1, 8, Reg::SP)),
            Some(Idiom::LoadPair)
        );
        // Descending offsets also contiguous.
        assert_eq!(
            match_mem_pair(&ld(Reg::A0, 8, Reg::SP), &ld(Reg::A1, 0, Reg::SP)),
            Some(Idiom::LoadPair)
        );
    }

    #[test]
    fn load_pair_asymmetric_allowed() {
        // lw (4B) at 0 then ld (8B) at 4: contiguous, asymmetric.
        assert_eq!(
            match_mem_pair(&lw(Reg::A0, 0, Reg::SP), &ld(Reg::A1, 4, Reg::SP)),
            Some(Idiom::LoadPair)
        );
    }

    #[test]
    fn load_pair_rejects_gap_and_overlap() {
        assert_eq!(
            match_mem_pair(&ld(Reg::A0, 0, Reg::SP), &ld(Reg::A1, 16, Reg::SP)),
            None
        );
        assert_eq!(
            match_mem_pair(&ld(Reg::A0, 0, Reg::SP), &ld(Reg::A1, 4, Reg::SP)),
            None
        );
    }

    #[test]
    fn load_pair_rejects_dependent_loads() {
        // §II-B: ld x1, 0(x1); ld x5, 8(x1) — second depends on first.
        assert_eq!(
            match_mem_pair(&ld(Reg::A0, 0, Reg::A0), &ld(Reg::A1, 8, Reg::A0)),
            None
        );
        // Tail clobbers the base register: still fine architecturally if it's
        // the tail's own dest... but we reject as the fused µ-op would read
        // and write the base simultaneously.
        assert_eq!(
            match_mem_pair(&ld(Reg::A1, 0, Reg::A0), &ld(Reg::A0, 8, Reg::A0)),
            None
        );
    }

    #[test]
    fn load_pair_rejects_different_base() {
        assert_eq!(
            match_mem_pair(&ld(Reg::A0, 0, Reg::SP), &ld(Reg::A1, 8, Reg::S0)),
            None
        );
    }

    #[test]
    fn store_pair_basic() {
        assert_eq!(
            match_mem_pair(&sd(Reg::A0, 0, Reg::SP), &sd(Reg::A1, 8, Reg::SP)),
            Some(Idiom::StorePair)
        );
        // Stores may even use the same data register.
        assert_eq!(
            match_mem_pair(&sd(Reg::A0, 8, Reg::SP), &sd(Reg::A0, 0, Reg::SP)),
            Some(Idiom::StorePair)
        );
    }

    #[test]
    fn mixed_load_store_rejected() {
        assert_eq!(
            match_mem_pair(&ld(Reg::A0, 0, Reg::SP), &sd(Reg::A1, 8, Reg::SP)),
            None
        );
    }

    #[test]
    fn lui_addi_idiom() {
        let head = Inst::Lui {
            rd: Reg::A0,
            imm20: 0x12345,
        };
        let tail = Inst::OpImm {
            op: AluImmOp::Addiw,
            rd: Reg::A0,
            rs1: Reg::A0,
            imm: 0x678,
        };
        assert_eq!(match_other_idiom(&head, &tail), Some(Idiom::LuiAddi));
        // Different destination: no idiom.
        let tail2 = Inst::OpImm {
            op: AluImmOp::Addiw,
            rd: Reg::A1,
            rs1: Reg::A0,
            imm: 0x678,
        };
        assert_eq!(match_other_idiom(&head, &tail2), None);
    }

    #[test]
    fn slli_srli_clear_upper() {
        let head = Inst::OpImm {
            op: AluImmOp::Slli,
            rd: Reg::T0,
            rs1: Reg::A0,
            imm: 32,
        };
        let tail = Inst::OpImm {
            op: AluImmOp::Srli,
            rd: Reg::T0,
            rs1: Reg::T0,
            imm: 32,
        };
        assert_eq!(match_other_idiom(&head, &tail), Some(Idiom::SlliSrli));
        // Wrong shift amount.
        let head2 = Inst::OpImm {
            op: AluImmOp::Slli,
            rd: Reg::T0,
            rs1: Reg::A0,
            imm: 16,
        };
        assert_eq!(match_other_idiom(&head2, &tail), None);
    }

    #[test]
    fn slli_add_lea() {
        let head = Inst::OpImm {
            op: AluImmOp::Slli,
            rd: Reg::T0,
            rs1: Reg::A1,
            imm: 3,
        };
        let tail = Inst::Op {
            op: AluOp::Add,
            rd: Reg::T0,
            rs1: Reg::A0,
            rs2: Reg::T0,
        };
        assert_eq!(match_other_idiom(&head, &tail), Some(Idiom::SlliAdd));
    }

    #[test]
    fn indexed_load() {
        let head = Inst::Op {
            op: AluOp::Add,
            rd: Reg::T0,
            rs1: Reg::A0,
            rs2: Reg::A1,
        };
        let tail = ld(Reg::T0, 0, Reg::T0);
        assert_eq!(match_other_idiom(&head, &tail), Some(Idiom::IndexedLoad));
        // Non-zero offset is not the idiom.
        let tail2 = ld(Reg::T0, 8, Reg::T0);
        assert_eq!(match_other_idiom(&head, &tail2), None);
    }

    #[test]
    fn load_global() {
        let head = Inst::Lui {
            rd: Reg::T1,
            imm20: 0x100,
        };
        let tail = ld(Reg::T1, 0x50, Reg::T1);
        assert_eq!(match_other_idiom(&head, &tail), Some(Idiom::LoadGlobal));
    }

    #[test]
    fn match_idiom_category_gates() {
        let h = ld(Reg::A0, 0, Reg::SP);
        let t = ld(Reg::A1, 8, Reg::SP);
        assert_eq!(match_idiom(&h, &t, true, true), Some(Idiom::LoadPair));
        assert_eq!(match_idiom(&h, &t, false, true), None);
        let h2 = Inst::Lui {
            rd: Reg::A0,
            imm20: 1,
        };
        let t2 = Inst::OpImm {
            op: AluImmOp::Addi,
            rd: Reg::A0,
            rs1: Reg::A0,
            imm: 1,
        };
        assert_eq!(match_idiom(&h2, &t2, true, false), None);
        assert_eq!(match_idiom(&h2, &t2, true, true), Some(Idiom::LuiAddi));
    }

    #[test]
    fn memory_pair_classification() {
        assert!(Idiom::LoadPair.is_memory_pair());
        assert!(Idiom::StorePair.is_memory_pair());
        assert!(!Idiom::LuiAddi.is_memory_pair());
        assert!(!Idiom::IndexedLoad.is_memory_pair());
        assert_eq!(ALL_IDIOMS.iter().filter(|i| i.is_memory_pair()).count(), 2);
    }
}
