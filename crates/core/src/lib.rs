//! # helios-core — the Helios instruction-fusion contribution
//!
//! Reproduction of the fusion machinery from *"Exploring Instruction Fusion
//! Opportunities in General Purpose Processors"* (MICRO 2022):
//!
//! * the fusion **taxonomy** (§II-A): consecutive vs non-consecutive,
//!   contiguity classes, head/tail nucleii and catalysts
//!   ([`classify_contiguity`], [`FusionClass`], [`Contiguity`]);
//! * the Table I **idiom matcher** ([`match_idiom`] and friends);
//! * the **Unfused Committed History** ([`Uch`], §IV-A1) that discovers
//!   fusible pairs at Commit;
//! * the tournament **Fusion Predictor** ([`FusionPredictor`], §IV-A2) that
//!   predicts head-nucleus distances at Decode;
//! * the five evaluated **configurations** ([`FusionMode`], §V-A);
//! * **storage accounting** reproducing the paper's bit budgets
//!   ([`helios_storage`], §IV-B7/§IV-C);
//! * **statistics** shared with the pipeline model ([`FusionStats`]).
//!
//! The cycle-level pipeline that exercises this machinery lives in
//! `helios-uarch`.
//!
//! # Examples
//!
//! ```
//! use helios_core::{FusionPredictor, FpConfig, Uch, UchConfig, UchOutcome};
//!
//! let mut uch = Uch::new(UchConfig::default());
//! let mut fp = FusionPredictor::new(FpConfig::default());
//!
//! // At Commit: a load touches line 0x1c0, ten µ-ops later another load
//! // touches the same line — a fusible pair trains the predictor.
//! uch.observe(false, 0x1c0);
//! for _ in 0..10 { uch.tick(); }
//! if let UchOutcome::Pair { distance } = uch.observe(false, 0x1c0) {
//!     fp.train(0x4_2000, 0, distance);
//! }
//! ```

mod config;
mod idiom;
mod predictor;
mod stats;
mod storage;
mod taxonomy;
mod uch;
mod uch_queue;

pub use config::{FusionMode, HeliosParams};
pub use idiom::{match_idiom, match_mem_pair, match_other_idiom, Idiom, ALL_IDIOMS};
pub use predictor::{Chosen, FpConfig, FusionPredictor, PredMeta};
pub use stats::{FusionStats, RepairCase};
pub use storage::{
    flush_pointer_storage, helios_storage, ncsf_pipeline_storage, PipelineSizes, StorageBudget,
    StorageItem,
};
pub use taxonomy::{classify_contiguity, is_asymmetric, Contiguity, FusionClass, NucleusRole};
pub use uch::{Uch, UchConfig, UchOutcome};
pub use uch_queue::{UchQueue, UchQueueConfig, UchTrainRecord};
