//! The Fusion Predictor (paper §IV-A2).
//!
//! A tournament predictor in the style of the Alpha 21264 [15]: a "local"
//! PC-indexed component, a "global" gshare-like component indexed by
//! PC ⊕ global branch history, and a direct-mapped selector of 2-bit
//! counters choosing between them. Each component is a 512-set × 4-way
//! set-associative table whose entries hold an 8-bit tag, a 6-bit µ-op
//! distance to the head nucleus, a 2-bit confidence counter, and a
//! pseudo-LRU bit (17 bits per entry; 34 Kbit per component; 72 Kbit total
//! with the 4 Kbit selector).
//!
//! Training happens at Commit from UCH pair discoveries; predictions are made
//! at Decode and only honoured at maximum confidence; a fusion misprediction
//! discovered at Execute resets the confidence of the predicting entry.

/// Geometry and policy parameters of the fusion predictor.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FpConfig {
    /// Sets per component (paper: 512).
    pub sets: usize,
    /// Ways per set (paper: 4).
    pub ways: usize,
    /// Selector entries (paper: 2048 direct-mapped 2-bit counters).
    pub selector_entries: usize,
    /// Tag width in bits (paper: 8).
    pub tag_bits: u32,
    /// Distance field width in bits (paper: 6, distances 1..=64).
    pub distance_bits: u32,
    /// Use probabilistic confidence updates (Riley & Zilles [20], §V-B2's
    /// accuracy-for-coverage trade): confidence increments succeed with
    /// probability 1/2, so saturation demands a longer consistent history.
    pub probabilistic_confidence: bool,
}

impl Default for FpConfig {
    fn default() -> Self {
        FpConfig {
            sets: 512,
            ways: 4,
            selector_entries: 2048,
            tag_bits: 8,
            distance_bits: 6,
            probabilistic_confidence: false,
        }
    }
}

impl FpConfig {
    /// Maximum representable distance.
    pub fn max_distance(&self) -> u32 {
        1 << self.distance_bits
    }

    /// Bits per entry: tag + distance + 2-bit confidence + pLRU bit.
    pub fn entry_bits(&self) -> u64 {
        self.tag_bits as u64 + self.distance_bits as u64 + 2 + 1
    }

    /// Total predictor storage in bits (two components + selector).
    ///
    /// With the default (paper) geometry: 2 × 512 × 4 × 17 + 2048 × 2
    /// = 69 632 + 4 096 = 73 728 bits = 72 Kbit (9 KB).
    pub fn storage_bits(&self) -> u64 {
        2 * (self.sets * self.ways) as u64 * self.entry_bits()
            + 2 * self.selector_entries as u64
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct Entry {
    valid: bool,
    tag: u16,
    /// Distance stored as `distance - 1` in hardware; kept plain here.
    distance: u32,
    conf: u8,
    plru: bool,
}

#[derive(Clone, Debug)]
struct Component {
    ways: usize,
    entries: Vec<Entry>,
}

impl Component {
    fn new(sets: usize, ways: usize) -> Component {
        let _ = sets;
        Component {
            ways,
            entries: vec![Entry::default(); sets * ways],
        }
    }

    fn set(&mut self, idx: usize) -> &mut [Entry] {
        &mut self.entries[idx * self.ways..(idx + 1) * self.ways]
    }

    fn lookup(&mut self, idx: usize, tag: u16) -> Option<(u32, u8)> {
        let set = self.set(idx);
        for e in set.iter_mut() {
            if e.valid && e.tag == tag {
                e.plru = true;
                let out = (e.distance, e.conf);
                return Some(out);
            }
        }
        None
    }

    /// UCH-driven training: reinforce or (re)allocate.
    fn train(&mut self, idx: usize, tag: u16, distance: u32, bump: bool) {
        let ways = self.ways;
        let set = self.set(idx);
        for e in set.iter_mut() {
            if e.valid && e.tag == tag {
                if e.distance == distance {
                    if bump {
                        e.conf = (e.conf + 1).min(3);
                    }
                } else {
                    e.distance = distance;
                    e.conf = 1;
                }
                e.plru = true;
                return;
            }
        }
        // Allocate: first invalid way, else bit-pLRU victim.
        let victim = set.iter().position(|e| !e.valid).unwrap_or_else(|| {
            match set.iter().position(|e| !e.plru) {
                Some(v) => v,
                None => {
                    // All referenced: clear pLRU bits (classic bit-PLRU reset)
                    // and pick way 0.
                    for e in set.iter_mut() {
                        e.plru = false;
                    }
                    0
                }
            }
        });
        debug_assert!(victim < ways);
        set[victim] = Entry {
            valid: true,
            tag,
            distance,
            conf: 1,
            plru: true,
        };
    }

    /// Misprediction feedback: reset confidence of the matching entry.
    fn punish(&mut self, idx: usize, tag: u16) {
        for e in self.set(idx) {
            if e.valid && e.tag == tag {
                e.conf = 0;
                return;
            }
        }
    }
}

/// Which component produced a prediction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Chosen {
    Local,
    Global,
}

/// Metadata carried alongside a predicted µ-op down the pipeline so the
/// predictor can be updated at Execute (the paper's dedicated update queue,
/// 29 bits/entry; modeled as unbounded per §IV-A2).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PredMeta {
    /// µ-op PC that made the prediction.
    pub pc: u64,
    /// Global history at prediction time.
    pub ghr: u64,
    /// Component the selector chose.
    pub chosen: Chosen,
    /// Distances each component predicted (None = miss or low confidence).
    pub local: Option<u32>,
    pub global: Option<u32>,
    /// The distance actually used.
    pub distance: u32,
}

/// The tournament fusion predictor.
#[derive(Clone, Debug)]
pub struct FusionPredictor {
    cfg: FpConfig,
    local: Component,
    global: Component,
    selector: Vec<u8>,
    /// xorshift64 state for probabilistic confidence (deterministic seed).
    coin: u64,
}

impl FusionPredictor {
    /// Creates an empty predictor.
    pub fn new(cfg: FpConfig) -> FusionPredictor {
        FusionPredictor {
            local: Component::new(cfg.sets, cfg.ways),
            global: Component::new(cfg.sets, cfg.ways),
            selector: vec![1; cfg.selector_entries], // weakly local
            coin: 0x9e37_79b9_7f4a_7c15,
            cfg,
        }
    }

    /// Deterministic coin flip for probabilistic confidence updates.
    fn flip(&mut self) -> bool {
        let mut x = self.coin;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.coin = x;
        x & 1 == 1
    }

    /// Predictor configuration.
    pub fn config(&self) -> &FpConfig {
        &self.cfg
    }

    #[inline]
    fn local_index(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) & (self.cfg.sets - 1)
    }

    #[inline]
    fn global_index(&self, pc: u64, ghr: u64) -> usize {
        (((pc >> 2) ^ ghr) as usize) & (self.cfg.sets - 1)
    }

    #[inline]
    fn tag(&self, pc: u64) -> u16 {
        // Fold the PC down to `tag_bits` bits (skip the set-index bits so
        // tags discriminate within a set).
        let t = (pc >> 2) ^ (pc >> 11) ^ (pc >> 19);
        (t as u16) & ((1 << self.cfg.tag_bits) - 1)
    }

    #[inline]
    fn selector_index(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) & (self.cfg.selector_entries - 1)
    }

    /// Looks up a prediction for the µ-op at `pc` (Decode-time).
    ///
    /// Returns the distance (in µ-ops) to the head nucleus to fuse with, but
    /// only when the selected component hits with saturated confidence
    /// (§IV-A2 condition 1).
    pub fn predict(&mut self, pc: u64, ghr: u64) -> Option<PredMeta> {
        let tag = self.tag(pc);
        let li = self.local_index(pc);
        let gi = self.global_index(pc, ghr);
        let l = self.local.lookup(li, tag);
        let g = self.global.lookup(gi, tag);
        let use_global = self.selector[self.selector_index(pc)] >= 2;
        let chosen = if use_global {
            Chosen::Global
        } else {
            Chosen::Local
        };
        let picked = if use_global { g } else { l };
        match picked {
            Some((distance, conf)) if conf >= 3 && distance >= 1 => Some(PredMeta {
                pc,
                ghr,
                chosen,
                local: l.map(|(d, _)| d),
                global: g.map(|(d, _)| d),
                distance,
            }),
            _ => None,
        }
    }

    /// Commit-time training from a UCH pair discovery: the µ-op at `pc`
    /// (the tail nucleus) fused with the µ-op `distance` µ-ops earlier.
    pub fn train(&mut self, pc: u64, ghr: u64, distance: u32) {
        if distance == 0 || distance > self.cfg.max_distance() {
            return;
        }
        let tag = self.tag(pc);
        let li = self.local_index(pc);
        let gi = self.global_index(pc, ghr);
        let bump = !self.cfg.probabilistic_confidence || self.flip();
        self.local.train(li, tag, distance, bump);
        self.global.train(gi, tag, distance, bump);
    }

    /// Execute-time resolution of a fusion prediction.
    ///
    /// `correct` is whether the fused pair turned out valid (addresses within
    /// the fusion region, no unfuse). On a misprediction the chosen entry's
    /// confidence resets to 0. The selector trains whenever one component
    /// would have out-performed the other.
    pub fn resolve(&mut self, meta: &PredMeta, correct: bool) {
        let tag = self.tag(meta.pc);
        if !correct {
            match meta.chosen {
                Chosen::Local => {
                    let i = self.local_index(meta.pc);
                    self.local.punish(i, tag);
                }
                Chosen::Global => {
                    let i = self.global_index(meta.pc, meta.ghr);
                    self.global.punish(i, tag);
                }
            }
        }
        // Tournament selector update: when the components disagree, nudge
        // toward the one matching the outcome of the used prediction.
        if meta.local != meta.global {
            let si = self.selector_index(meta.pc);
            let toward_global = match meta.chosen {
                Chosen::Global => correct,
                Chosen::Local => !correct,
            };
            let c = &mut self.selector[si];
            if toward_global {
                *c = (*c + 1).min(3);
            } else {
                *c = c.saturating_sub(1);
            }
        }
    }

    /// Total storage in bits (see [`FpConfig::storage_bits`]).
    pub fn storage_bits(&self) -> u64 {
        self.cfg.storage_bits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp() -> FusionPredictor {
        FusionPredictor::new(FpConfig::default())
    }

    #[test]
    fn needs_three_trainings_to_predict() {
        let mut p = fp();
        let (pc, ghr) = (0x1_0000, 0);
        assert!(p.predict(pc, ghr).is_none());
        p.train(pc, ghr, 5);
        assert!(p.predict(pc, ghr).is_none(), "conf=1");
        p.train(pc, ghr, 5);
        assert!(p.predict(pc, ghr).is_none(), "conf=2");
        p.train(pc, ghr, 5);
        let m = p.predict(pc, ghr).expect("conf=3 predicts");
        assert_eq!(m.distance, 5);
    }

    #[test]
    fn distance_change_resets_confidence() {
        let mut p = fp();
        let (pc, ghr) = (0x1_0000, 0);
        for _ in 0..3 {
            p.train(pc, ghr, 5);
        }
        assert!(p.predict(pc, ghr).is_some());
        p.train(pc, ghr, 9); // new distance → conf back to 1
        assert!(p.predict(pc, ghr).is_none());
        p.train(pc, ghr, 9);
        p.train(pc, ghr, 9);
        assert_eq!(p.predict(pc, ghr).unwrap().distance, 9);
    }

    #[test]
    fn misprediction_resets_confidence() {
        let mut p = fp();
        let (pc, ghr) = (0x2_0000, 0xabc);
        for _ in 0..3 {
            p.train(pc, ghr, 7);
        }
        let m = p.predict(pc, ghr).unwrap();
        p.resolve(&m, false);
        assert!(p.predict(pc, ghr).is_none(), "confidence was reset");
        // Retraining restores it.
        for _ in 0..3 {
            p.train(pc, ghr, 7);
        }
        assert!(p.predict(pc, ghr).is_some());
    }

    #[test]
    fn out_of_range_distances_ignored() {
        let mut p = fp();
        for _ in 0..3 {
            p.train(0x100, 0, 0);
            p.train(0x100, 0, 65);
        }
        assert!(p.predict(0x100, 0).is_none());
    }

    #[test]
    fn capacity_eviction_in_one_set() {
        let mut p = fp();
        // 5 PCs mapping to the same local set (stride = sets * 4 bytes),
        // distinct tags; 4 ways → one eviction.
        let base = 0x4_0000u64;
        let stride = 512 * 4;
        for k in 0..5u64 {
            let pc = base + k * stride;
            for _ in 0..3 {
                p.train(pc, 0, 3);
            }
        }
        let surviving = (0..5u64)
            .filter(|k| p.predict(base + k * stride, 0).is_some())
            .count();
        assert!(surviving >= 4, "at most one way evicted, got {surviving}");
    }

    #[test]
    fn tournament_selector_learns() {
        let mut p = fp();
        let pc = 0x8_0000;
        // Train distance 4 under one history and 12 under another. The
        // global component can disambiguate; the local cannot.
        for _ in 0..3 {
            p.train(pc, 0x1, 4);
            p.train(pc, 0x2, 12);
        }
        // Local entry now flip-flops (last trained wins with conf 1), so the
        // local prediction is weak/wrong. Simulate resolutions that favour
        // the global component.
        for _ in 0..4 {
            if let Some(m) = p.predict(pc, 0x1) {
                let correct = m.distance == 4;
                p.resolve(&m, correct);
            }
            if let Some(m) = p.predict(pc, 0x2) {
                let correct = m.distance == 12;
                p.resolve(&m, correct);
            }
            for _ in 0..3 {
                p.train(pc, 0x1, 4);
                p.train(pc, 0x2, 12);
            }
        }
        let m1 = p.predict(pc, 0x1);
        let m2 = p.predict(pc, 0x2);
        if let (Some(m1), Some(m2)) = (m1, m2) {
            assert_eq!(m1.distance, 4);
            assert_eq!(m2.distance, 12);
            assert_eq!(m1.chosen, Chosen::Global);
        }
    }

    #[test]
    fn probabilistic_confidence_slows_saturation() {
        let cfg = FpConfig {
            probabilistic_confidence: true,
            ..Default::default()
        };
        let mut p = FusionPredictor::new(cfg);
        let (pc, ghr) = (0x3_0000, 0);
        // Three trainings are no longer guaranteed to saturate…
        let mut needed = 0;
        for i in 1..=64 {
            p.train(pc, ghr, 9);
            if p.predict(pc, ghr).is_some() {
                needed = i;
                break;
            }
        }
        assert!(needed > 3, "coin flips must slow saturation (took {needed})");
        // …but a persistent pair still gets predicted eventually.
        assert_eq!(p.predict(pc, ghr).unwrap().distance, 9);
    }

    #[test]
    fn paper_storage_budget() {
        // 72 Kbit = 73 728 bits (9 KB) total.
        assert_eq!(FpConfig::default().storage_bits(), 73_728);
        assert_eq!(FpConfig::default().entry_bits(), 17);
    }
}
