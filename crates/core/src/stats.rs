//! Fusion statistics collected by the pipeline and reported by the
//! experiment harness (the raw material of Figs. 2, 4, 5, 8 and Table III).

use crate::{Contiguity, FusionClass, Idiom};

/// Why a fused µ-op had to be repaired (paper §IV-C cases).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum RepairCase {
    /// Case 1: RaW between catalyst and tail — source fixed in place.
    RawSourceFix,
    /// Case 2: dependency-based deadlock — unfused at Dispatch.
    Deadlock,
    /// Case 3: store in the catalyst of a store pair — unfused.
    StoreInCatalyst,
    /// Case 4: serializing instruction in the catalyst — unfused.
    Serializing,
    /// Case 5: accesses span more than the fusion region — pipeline flush.
    SpanMismatch,
    /// Case 6: tail access faults — pipeline flush.
    TailFault,
    /// Case 7: mispredicted µ-op in the catalyst — pipeline flush.
    CatalystFlush,
}

impl RepairCase {
    /// All cases, in paper order.
    pub const ALL: [RepairCase; 7] = [
        RepairCase::RawSourceFix,
        RepairCase::Deadlock,
        RepairCase::StoreInCatalyst,
        RepairCase::Serializing,
        RepairCase::SpanMismatch,
        RepairCase::TailFault,
        RepairCase::CatalystFlush,
    ];

    /// Whether this case requires a full pipeline flush (vs in-place repair).
    pub fn needs_flush(self) -> bool {
        matches!(
            self,
            RepairCase::SpanMismatch | RepairCase::TailFault | RepairCase::CatalystFlush
        )
    }

    /// This case's position in [`RepairCase::ALL`] (total — no panic path).
    pub const fn index(self) -> usize {
        match self {
            RepairCase::RawSourceFix => 0,
            RepairCase::Deadlock => 1,
            RepairCase::StoreInCatalyst => 2,
            RepairCase::Serializing => 3,
            RepairCase::SpanMismatch => 4,
            RepairCase::TailFault => 5,
            RepairCase::CatalystFlush => 6,
        }
    }
}

/// Aggregated fusion statistics for one simulation.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct FusionStats {
    /// Committed fused pairs that were consecutive.
    pub csf_pairs: u64,
    /// Committed fused pairs that were non-consecutive.
    pub ncsf_pairs: u64,
    /// Committed pairs per idiom (indexed by position in [`ALL_IDIOMS`]).
    pub by_idiom: [u64; 8],
    /// Committed memory pairs per contiguity class.
    pub contiguous: u64,
    pub overlapping: u64,
    pub same_line: u64,
    pub next_line: u64,
    /// Committed memory pairs whose nucleii used different architectural
    /// base registers.
    pub dbr_pairs: u64,
    /// Committed memory pairs with different access sizes.
    pub asymmetric_pairs: u64,
    /// Sum of head→tail distances of committed NCSF pairs (for the mean
    /// catalyst length; paper: 10.5 µ-ops).
    pub ncsf_distance_sum: u64,
    /// Fusion predictions issued (Helios only).
    pub predictions: u64,
    /// Predictions that resulted in a committed fused pair.
    pub predictions_correct: u64,
    /// Predictions that were unfused or flushed.
    pub mispredictions: u64,
    /// Repairs by case.
    pub repairs: [u64; 7],
}

impl FusionStats {
    /// Total committed fused pairs.
    pub fn fused_pairs(&self) -> u64 {
        self.csf_pairs + self.ncsf_pairs
    }

    /// Committed memory pairs (load pair + store pair idioms).
    pub fn memory_pairs(&self) -> u64 {
        self.idiom_count(Idiom::LoadPair) + self.idiom_count(Idiom::StorePair)
    }

    /// Committed non-memory-pair idiom fusions.
    pub fn other_pairs(&self) -> u64 {
        self.fused_pairs() - self.memory_pairs()
    }

    /// Count for one idiom.
    pub fn idiom_count(&self, idiom: Idiom) -> u64 {
        self.by_idiom[idiom.index()]
    }

    /// Records a committed fused pair.
    pub fn record_pair(
        &mut self,
        idiom: Idiom,
        class: FusionClass,
        contiguity: Option<Contiguity>,
        dbr: bool,
        asymmetric: bool,
        distance: u64,
    ) {
        match class {
            FusionClass::Consecutive => self.csf_pairs += 1,
            FusionClass::NonConsecutive => {
                self.ncsf_pairs += 1;
                self.ncsf_distance_sum += distance;
            }
        }
        self.by_idiom[idiom.index()] += 1;
        if let Some(c) = contiguity {
            match c {
                Contiguity::Contiguous => self.contiguous += 1,
                Contiguity::Overlapping => self.overlapping += 1,
                Contiguity::SameLine => self.same_line += 1,
                Contiguity::NextLine => self.next_line += 1,
                Contiguity::TooFar => {}
            }
        }
        if dbr {
            self.dbr_pairs += 1;
        }
        if asymmetric {
            self.asymmetric_pairs += 1;
        }
    }

    /// Records a repair event.
    ///
    /// Case 1 (RaW source fix) keeps the pair fused, so it is *not* a fusion
    /// misprediction; every other case unfuses or flushes and counts as one.
    pub fn record_repair(&mut self, case: RepairCase) {
        self.repairs[case.index()] += 1;
        if case != RepairCase::RawSourceFix {
            self.mispredictions += 1;
        }
    }

    /// Count for one repair case.
    pub fn repair_count(&self, case: RepairCase) -> u64 {
        self.repairs[case.index()]
    }

    /// Mean catalyst distance of committed NCSF pairs.
    pub fn mean_ncsf_distance(&self) -> f64 {
        if self.ncsf_pairs == 0 {
            0.0
        } else {
            self.ncsf_distance_sum as f64 / self.ncsf_pairs as f64
        }
    }

    /// Prediction accuracy in percent (Table III).
    pub fn accuracy_pct(&self) -> f64 {
        let resolved = self.predictions_correct + self.mispredictions;
        if resolved == 0 {
            100.0
        } else {
            100.0 * self.predictions_correct as f64 / resolved as f64
        }
    }

    /// Mispredictions per kilo-instruction (Table III).
    pub fn mpki(&self, instructions: u64) -> f64 {
        if instructions == 0 {
            0.0
        } else {
            1000.0 * self.mispredictions as f64 / instructions as f64
        }
    }

    /// Merges another stats block into this one.
    pub fn merge(&mut self, other: &FusionStats) {
        self.csf_pairs += other.csf_pairs;
        self.ncsf_pairs += other.ncsf_pairs;
        for i in 0..self.by_idiom.len() {
            self.by_idiom[i] += other.by_idiom[i];
        }
        self.contiguous += other.contiguous;
        self.overlapping += other.overlapping;
        self.same_line += other.same_line;
        self.next_line += other.next_line;
        self.dbr_pairs += other.dbr_pairs;
        self.asymmetric_pairs += other.asymmetric_pairs;
        self.ncsf_distance_sum += other.ncsf_distance_sum;
        self.predictions += other.predictions;
        self.predictions_correct += other.predictions_correct;
        self.mispredictions += other.mispredictions;
        for i in 0..self.repairs.len() {
            self.repairs[i] += other.repairs[i];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_query() {
        let mut s = FusionStats::default();
        s.record_pair(
            Idiom::LoadPair,
            FusionClass::NonConsecutive,
            Some(Contiguity::SameLine),
            true,
            true,
            12,
        );
        s.record_pair(
            Idiom::StorePair,
            FusionClass::Consecutive,
            Some(Contiguity::Contiguous),
            false,
            false,
            1,
        );
        s.record_pair(Idiom::LuiAddi, FusionClass::Consecutive, None, false, false, 1);
        assert_eq!(s.fused_pairs(), 3);
        assert_eq!(s.memory_pairs(), 2);
        assert_eq!(s.other_pairs(), 1);
        assert_eq!(s.ncsf_pairs, 1);
        assert_eq!(s.dbr_pairs, 1);
        assert_eq!(s.asymmetric_pairs, 1);
        assert_eq!(s.same_line, 1);
        assert_eq!(s.contiguous, 1);
        assert_eq!(s.mean_ncsf_distance(), 12.0);
    }

    #[test]
    fn index_matches_canonical_order() {
        for (i, &c) in RepairCase::ALL.iter().enumerate() {
            assert_eq!(c.index(), i, "{c:?} out of ALL order");
        }
        for (i, &d) in crate::ALL_IDIOMS.iter().enumerate() {
            assert_eq!(d.index(), i, "{d:?} out of ALL_IDIOMS order");
        }
    }

    #[test]
    fn accuracy_and_mpki() {
        let mut s = FusionStats {
            predictions: 100,
            predictions_correct: 99,
            ..Default::default()
        };
        s.record_repair(RepairCase::SpanMismatch);
        assert!((s.accuracy_pct() - 99.0).abs() < 1e-9);
        assert!((s.mpki(1_000_000) - 0.001).abs() < 1e-12);
        assert_eq!(s.repair_count(RepairCase::SpanMismatch), 1);
        assert!(RepairCase::SpanMismatch.needs_flush());
        assert!(!RepairCase::Deadlock.needs_flush());
    }

    #[test]
    fn merge_adds_everything() {
        let mut a = FusionStats::default();
        a.record_pair(
            Idiom::LoadPair,
            FusionClass::Consecutive,
            Some(Contiguity::Contiguous),
            false,
            false,
            1,
        );
        let mut b = a.clone();
        b.merge(&a);
        assert_eq!(b.fused_pairs(), 2);
        assert_eq!(b.contiguous, 2);
    }

    #[test]
    fn empty_stats_are_benign() {
        let s = FusionStats::default();
        assert_eq!(s.mean_ncsf_distance(), 0.0);
        assert_eq!(s.accuracy_pct(), 100.0);
        assert_eq!(s.mpki(0), 0.0);
    }
}
