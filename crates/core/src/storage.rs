//! Storage-cost accounting for the Helios NCSF machinery (paper §IV-B7,
//! §IV-C and the per-mechanism callouts of Figure 7).
//!
//! The paper reports, for its processor configuration: 4.77 Kbit of pipeline
//! additions, 76.77 Kbit including the fusion predictor, and ≈83 Kbit
//! including the ROB flush-pointer upper bound. This module reproduces those
//! budgets from first principles so the numbers are auditable.

use crate::FpConfig;

/// Structure sizes the storage costs depend on.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PipelineSizes {
    /// Allocation Queue entries (paper: 140).
    pub aq: usize,
    /// Issue Queue (scheduler) entries.
    pub iq: usize,
    /// Reorder Buffer entries.
    pub rob: usize,
    /// Load Queue entries.
    pub lq: usize,
    /// Store Queue entries.
    pub sq: usize,
    /// Architectural registers tracked by the RAT.
    pub arch_regs: usize,
    /// LQ/SQ entries that can hold a fused pair (carry the second-access
    /// offset and size fields).
    pub lsq_pair_entries: usize,
    /// NCSF nesting depth.
    pub nest: usize,
}

impl Default for PipelineSizes {
    /// The paper's Icelake-like configuration (Table II; AQ size from
    /// §IV-B1, ROB/IQ/LQ sizes implied by the reported bit counts).
    fn default() -> Self {
        PipelineSizes {
            aq: 140,
            iq: 160,
            rob: 352,
            lq: 128,
            sq: 72,
            arch_regs: 32,
            lsq_pair_entries: 88,
            nest: 2,
        }
    }
}

/// One named storage item.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct StorageItem {
    /// Mechanism name (matches Figure 7's callouts).
    pub name: &'static str,
    /// Pipeline structure it lives in.
    pub structure: &'static str,
    /// Cost in bits.
    pub bits: u64,
}

/// A storage budget: a list of items and helpers over them.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct StorageBudget {
    items: Vec<StorageItem>,
}

impl StorageBudget {
    /// The items, in pipeline order.
    pub fn items(&self) -> &[StorageItem] {
        &self.items
    }

    /// Total bits.
    pub fn total_bits(&self) -> u64 {
        self.items.iter().map(|i| i.bits).sum()
    }

    /// Total kilobytes (1 KB = 8192 bits), as the paper reports.
    pub fn total_kib(&self) -> f64 {
        self.total_bits() as f64 / 8192.0
    }

    fn push(&mut self, name: &'static str, structure: &'static str, bits: u64) {
        self.items.push(StorageItem {
            name,
            structure,
            bits,
        });
    }
}

fn ceil_log2(n: usize) -> u64 {
    (usize::BITS - (n - 1).leading_zeros()) as u64
}

/// NCSF pipeline-support storage (everything except the predictor and the
/// flush pointers) — the paper's 4.77 Kbit / 0.60 KB (§IV-B7).
pub fn ncsf_pipeline_storage(s: &PipelineSizes) -> StorageBudget {
    let mut b = StorageBudget::default();
    let aq_tag = ceil_log2(s.aq); // 8 bits for 140 entries
    // 1: Is Head / Is Tail nucleus bits + NCS Tag per AQ entry.
    b.push("nucleus bits + NCS tag", "AQ", s.aq as u64 * (2 + aq_tag));
    // 3: one head/tail bit per source (3) and destination (2) phys-reg id.
    b.push("phys-reg nucleus bits", "AQ", s.aq as u64 * 5);
    b.push("phys-reg nucleus bits", "IQ", s.iq as u64 * 5);
    b.push("dest nucleus bits", "LQ", s.lq as u64 * 2);
    // 2: Max Active NCS + Active NCS counters.
    b.push("Active NCS counters", "Rename", 2 * ceil_log2(s.nest + 1));
    // 4: WaR rename buffer: per nesting level a tagged phys-reg id.
    b.push(
        "WaR dest-rename buffer",
        "Rename",
        s.nest as u64 * (aq_tag + 8 + 1),
    );
    // 5: Inside NCS bit per RAT entry.
    b.push("Inside-NCS bits", "RAT", s.arch_regs as u64);
    // 8: deadlock tags: one-hot nest vector per RAT entry + copy in buffer.
    b.push("deadlock tags", "RAT", (s.arch_regs * s.nest) as u64);
    b.push("deadlock tags", "Rename buffer", (s.nest * s.nest) as u64);
    // 6: NCS Ready bit per IQ entry.
    b.push("NCS-Ready bits", "IQ", s.iq as u64);
    // 7: Dispatch repair buffer: per nest level, pointers to IQ/ROB/LQ/SQ.
    b.push("repair buffer", "Dispatch", s.nest as u64 * 32);
    // 10: extended-commit-group bits (2 per ROB entry).
    b.push("extended commit groups", "ROB", s.rob as u64 * 2);
    // 12: second-access offset (6b) + size (2b) for pair-capable LSQ entries.
    b.push("second-access offset+size", "LQ/SQ", s.lsq_pair_entries as u64 * 8);
    // 9, 11: NCSF Serializing and NCSF StorePair bits.
    b.push("NCSF-Serializing bit", "Rename", 1);
    b.push("NCSF-StorePair bit", "Rename", 1);
    b
}

/// Upper-bound flush-pointer storage (§IV-C solution i): two ROB pointers
/// per ROB entry — the paper's 6336 bits.
pub fn flush_pointer_storage(s: &PipelineSizes) -> StorageBudget {
    let mut b = StorageBudget::default();
    b.push(
        "encompassing-NCSF pointers",
        "ROB",
        s.rob as u64 * 2 * ceil_log2(s.rob),
    );
    b
}

/// The complete Helios storage budget: pipeline support + fusion predictor
/// (+ optionally the flush-pointer upper bound).
pub fn helios_storage(s: &PipelineSizes, fp: &FpConfig, with_flush_pointers: bool) -> StorageBudget {
    let mut b = ncsf_pipeline_storage(s);
    b.push("fusion predictor", "Decode", fp.storage_bits());
    b.push("UCH", "Commit", (s_uch_entries() as u64) * 40);
    if with_flush_pointers {
        for i in flush_pointer_storage(s).items {
            b.items.push(i);
        }
    }
    b
}

fn s_uch_entries() -> usize {
    7 // 6 load entries + 1 store entry
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_paper_component_budgets() {
        let s = PipelineSizes::default();
        let b = ncsf_pipeline_storage(&s);
        let get = |name: &str, st: &str| {
            b.items()
                .iter()
                .find(|i| i.name == name && i.structure == st)
                .map(|i| i.bits)
                .unwrap_or_else(|| panic!("missing {name}/{st}"))
        };
        assert_eq!(get("nucleus bits + NCS tag", "AQ"), 1400); // 1.37 Kbit
        assert_eq!(get("phys-reg nucleus bits", "AQ"), 700);
        assert_eq!(get("phys-reg nucleus bits", "IQ"), 800);
        assert_eq!(get("dest nucleus bits", "LQ"), 256);
        assert_eq!(get("Active NCS counters", "Rename"), 4);
        assert_eq!(get("WaR dest-rename buffer", "Rename"), 34);
        assert_eq!(get("Inside-NCS bits", "RAT"), 32);
        assert_eq!(get("deadlock tags", "RAT"), 64);
        assert_eq!(get("deadlock tags", "Rename buffer"), 4);
        assert_eq!(get("NCS-Ready bits", "IQ"), 160);
        assert_eq!(get("repair buffer", "Dispatch"), 64);
        assert_eq!(get("extended commit groups", "ROB"), 704);
        assert_eq!(get("second-access offset+size", "LQ/SQ"), 704);
    }

    #[test]
    fn matches_paper_totals() {
        let s = PipelineSizes::default();
        // Summing the paper's own per-mechanism numbers (1400 + 700 + 800 +
        // 256 + 4 + 34 + 32 + 64 + 4 + 160 + 64 + 704 + 704 + 2) gives 4928
        // bits; the §IV-B7 headline of "4.77 Kbits" appears to omit the
        // 160 NCS-Ready bits. We account for all items.
        assert_eq!(ncsf_pipeline_storage(&s).total_bits(), 4928);
        // §IV-C: 6336-bit flush-pointer upper bound.
        assert_eq!(flush_pointer_storage(&s).total_bits(), 6336);
        // §IV-B7: with the 72 Kbit predictor → "76.77 Kbits" (we get 76.8).
        let fp = FpConfig::default();
        let with_fp = ncsf_pipeline_storage(&s).total_bits() + fp.storage_bits();
        let with_fp_kbit = with_fp as f64 / 1024.0;
        assert!((76.0..77.5).contains(&with_fp_kbit), "{with_fp_kbit:.2}");
        // §IV-C: grand total "around 83 Kbits (around 10.4KB)".
        let total = helios_storage(&s, &fp, true).total_bits();
        assert_eq!(total, 4928 + 73_728 + 280 + 6336);
        let kbits = total as f64 / 1024.0;
        assert!((82.0..86.0).contains(&kbits), "total {kbits:.2} Kbit");
    }

    #[test]
    fn kib_conversion() {
        let s = PipelineSizes::default();
        let fp = FpConfig::default();
        let kib = helios_storage(&s, &fp, true).total_kib();
        assert!((10.0..11.0).contains(&kib), "≈10.4 KB, got {kib:.2}");
    }
}
