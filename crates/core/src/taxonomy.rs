//! Fusion taxonomy (paper §II-A).
//!
//! * **CSF / NCSF** — whether the two fused µ-ops are consecutive in the
//!   dynamic stream.
//! * **CTF / NCTF** — whether the two memory accesses touch contiguous bytes.
//! * **head nucleus** — the older µ-op of a fused pair; **tail nucleus** —
//!   the younger; **catalyst** — the µ-ops in between (NCSF only).

use helios_emu::MemAccess;

/// Consecutivity of a fused pair in the dynamic µ-op stream.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum FusionClass {
    /// ConSecutive Fusion: head and tail are adjacent in program order.
    Consecutive,
    /// Non-ConSecutive Fusion: one or more catalyst µ-ops in between.
    NonConsecutive,
}

/// Spatial relationship of the two memory accesses of a candidate pair,
/// relative to a cache access granularity of `line_bytes` (Fig. 4's
/// categories).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Contiguity {
    /// Byte-adjacent, non-overlapping (what Armv8 `ldp`/`stp` can express).
    Contiguous,
    /// At least one shared byte.
    Overlapping,
    /// Same cache line, with a gap between the accesses.
    SameLine,
    /// Fits in a 64-byte span but crosses a line boundary
    /// (two contiguous cache lines; costs a serialized second access).
    NextLine,
    /// Too far apart to fuse at this granularity.
    TooFar,
}

impl Contiguity {
    /// Whether a pair with this relationship may be fused at all.
    #[inline]
    pub fn fusible(self) -> bool {
        !matches!(self, Contiguity::TooFar)
    }

    /// Whether the fused access can be satisfied with a single cache access
    /// (NextLine pairs need two serialized accesses — §II-B
    /// "Cacheline Crossers").
    #[inline]
    pub fn single_access(self) -> bool {
        matches!(
            self,
            Contiguity::Contiguous | Contiguity::Overlapping | Contiguity::SameLine
        )
    }
}

/// Classifies the spatial relationship of two accesses (order-insensitive).
///
/// `line_bytes` is the cache access granularity (64 B in the paper's
/// evaluation, §III-C).
///
/// # Examples
///
/// ```
/// use helios_core::{classify_contiguity, Contiguity};
/// use helios_emu::MemAccess;
/// let a = MemAccess { addr: 0x100, size: 8, is_store: false };
/// let b = MemAccess { addr: 0x108, size: 8, is_store: false };
/// assert_eq!(classify_contiguity(&a, &b, 64), Contiguity::Contiguous);
/// ```
pub fn classify_contiguity(a: &MemAccess, b: &MemAccess, line_bytes: u64) -> Contiguity {
    let lo = a.addr.min(b.addr);
    let hi = a.last_byte().max(b.last_byte());
    let span = hi - lo + 1;
    if span > line_bytes {
        return Contiguity::TooFar;
    }
    if a.overlaps(b) {
        return Contiguity::Overlapping;
    }
    // Adjacent with no gap?
    let (first, second) = if a.addr <= b.addr { (a, b) } else { (b, a) };
    if first.last_byte() + 1 == second.addr {
        // Contiguous — but if the pair straddles a line it still needs two
        // accesses; the paper counts such pairs by line relationship.
        if lo & !(line_bytes - 1) == hi & !(line_bytes - 1) {
            return Contiguity::Contiguous;
        }
        return Contiguity::NextLine;
    }
    if lo & !(line_bytes - 1) == hi & !(line_bytes - 1) {
        Contiguity::SameLine
    } else {
        Contiguity::NextLine
    }
}

/// Whether the two accesses have different sizes (asymmetric pair, §III-D).
#[inline]
pub fn is_asymmetric(a: &MemAccess, b: &MemAccess) -> bool {
    a.size != b.size
}

/// Role of a µ-op inside a fused pair.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum NucleusRole {
    /// Oldest µ-op of the pair (the fused µ-op replaces it).
    Head,
    /// Youngest µ-op of the pair.
    Tail,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn acc(addr: u64, size: u8) -> MemAccess {
        MemAccess {
            addr,
            size,
            is_store: false,
        }
    }

    #[test]
    fn contiguous_pairs() {
        assert_eq!(
            classify_contiguity(&acc(0x100, 8), &acc(0x108, 8), 64),
            Contiguity::Contiguous
        );
        // Order-insensitive.
        assert_eq!(
            classify_contiguity(&acc(0x108, 8), &acc(0x100, 8), 64),
            Contiguity::Contiguous
        );
        // Asymmetric contiguous.
        assert_eq!(
            classify_contiguity(&acc(0x100, 4), &acc(0x104, 8), 64),
            Contiguity::Contiguous
        );
    }

    #[test]
    fn overlapping_pairs() {
        assert_eq!(
            classify_contiguity(&acc(0x100, 8), &acc(0x104, 8), 64),
            Contiguity::Overlapping
        );
        assert_eq!(
            classify_contiguity(&acc(0x100, 8), &acc(0x100, 8), 64),
            Contiguity::Overlapping
        );
    }

    #[test]
    fn same_line_with_gap() {
        assert_eq!(
            classify_contiguity(&acc(0x100, 8), &acc(0x130, 8), 64),
            Contiguity::SameLine
        );
    }

    #[test]
    fn next_line_within_span() {
        // 0x138..0x140 and 0x140..0x148: adjacent but crossing line 0x140.
        assert_eq!(
            classify_contiguity(&acc(0x138, 8), &acc(0x140, 8), 64),
            Contiguity::NextLine
        );
        // Gap crossing a line boundary, span <= 64.
        assert_eq!(
            classify_contiguity(&acc(0x130, 8), &acc(0x148, 8), 64),
            Contiguity::NextLine
        );
    }

    #[test]
    fn too_far() {
        assert_eq!(
            classify_contiguity(&acc(0x100, 8), &acc(0x148, 8), 64),
            Contiguity::TooFar
        );
        assert_eq!(
            classify_contiguity(&acc(0x100, 8), &acc(0x2100, 8), 64),
            Contiguity::TooFar
        );
    }

    #[test]
    fn fusibility_and_single_access() {
        assert!(Contiguity::Contiguous.fusible());
        assert!(Contiguity::NextLine.fusible());
        assert!(!Contiguity::TooFar.fusible());
        assert!(Contiguity::SameLine.single_access());
        assert!(!Contiguity::NextLine.single_access());
    }

    #[test]
    fn asymmetry() {
        assert!(is_asymmetric(&acc(0, 4), &acc(8, 8)));
        assert!(!is_asymmetric(&acc(0, 8), &acc(8, 8)));
    }

    #[test]
    fn span_exactly_line_size_is_fusible() {
        // 64-byte span: bytes 0x100..0x140.
        assert_eq!(
            classify_contiguity(&acc(0x100, 8), &acc(0x138, 8), 64),
            Contiguity::SameLine
        );
    }
}
