//! Unfused Committed History (paper §IV-A1).
//!
//! The UCH lives at Commit. It remembers the cache lines touched by recently
//! committed, *not-already-fused* memory µ-ops. When a committing µ-op hits a
//! UCH entry of the same kind (load↔load, store↔store), a fusible pair has
//! been discovered and the Fusion Predictor is trained with the µ-op distance
//! between the two.
//!
//! Loads use a small fully-associative history (6 entries in the paper, LRU
//! by commit number); stores keep only the single last unfused committed
//! store, because stores must not fuse across other stores (memory
//! consistency, §IV-B4).

/// Configuration of the UCH.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct UchConfig {
    /// Entries in the load history (paper: 6).
    pub load_entries: usize,
    /// Maximum head→tail distance in µ-ops (paper: 64; CN field is 7 bits).
    pub max_distance: u32,
}

impl Default for UchConfig {
    fn default() -> Self {
        UchConfig {
            load_entries: 6,
            max_distance: 64,
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct Entry {
    valid: bool,
    /// Cache-line address (the paper stores a 32-bit partial tag; we keep the
    /// full line address — aliasing would only add noise).
    tag: u64,
    /// Commit number at insertion (7-bit counter in hardware).
    cn: u32,
}

const INVALID: Entry = Entry {
    valid: false,
    tag: 0,
    cn: 0,
};

/// Result of presenting a committing memory µ-op to the UCH.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum UchOutcome {
    /// A pair was found: the matching (older) entry was `distance` µ-ops ago.
    /// The entry is invalidated (a µ-op fuses with at most one other µ-op).
    Pair { distance: u32 },
    /// No pair; the µ-op was inserted into the history.
    Inserted,
}

/// The Unfused Committed History: load history + single-store history.
#[derive(Clone, Debug)]
pub struct Uch {
    cfg: UchConfig,
    loads: Vec<Entry>,
    store: Entry,
    /// Commit number, incremented once per committed µ-op (of any kind).
    cn: u32,
}

impl Uch {
    /// Creates an empty UCH.
    pub fn new(cfg: UchConfig) -> Uch {
        Uch {
            loads: vec![INVALID; cfg.load_entries],
            store: INVALID,
            cn: 0,
            cfg,
        }
    }

    /// Advances the commit number. Call once per committed µ-op, *including*
    /// non-memory µ-ops — distances are measured in µ-ops.
    #[inline]
    pub fn tick(&mut self) {
        self.cn = self.cn.wrapping_add(1);
    }

    /// Current commit number (for tests/inspection).
    pub fn commit_number(&self) -> u32 {
        self.cn
    }

    /// Presents a committing, unfused memory µ-op accessing cache line
    /// `line_addr`. Returns the training outcome.
    pub fn observe(&mut self, is_store: bool, line_addr: u64) -> UchOutcome {
        if is_store {
            self.observe_store(line_addr)
        } else {
            self.observe_load(line_addr)
        }
    }

    fn distance_to(&self, e: &Entry) -> u32 {
        self.cn.wrapping_sub(e.cn)
    }

    fn observe_load(&mut self, line: u64) -> UchOutcome {
        // Search for a same-line entry within range.
        let mut hit = None;
        for (i, e) in self.loads.iter().enumerate() {
            if e.valid && e.tag == line {
                hit = Some(i);
                break;
            }
        }
        if let Some(i) = hit {
            let d = self.distance_to(&self.loads[i]);
            self.loads[i].valid = false;
            if (1..=self.cfg.max_distance).contains(&d) {
                return UchOutcome::Pair { distance: d };
            }
            // Stale match (CN wrapped / too far): treat as a miss and insert.
        }
        self.insert_load(line);
        UchOutcome::Inserted
    }

    fn insert_load(&mut self, line: u64) {
        // Prefer invalidated entries, then LRU (oldest CN, i.e. max distance).
        let victim = self
            .loads
            .iter()
            .position(|e| !e.valid)
            .unwrap_or_else(|| {
                let mut v = 0;
                let mut best = 0;
                for (i, e) in self.loads.iter().enumerate() {
                    let d = self.distance_to(e);
                    if d >= best {
                        best = d;
                        v = i;
                    }
                }
                v
            });
        self.loads[victim] = Entry {
            valid: true,
            tag: line,
            cn: self.cn,
        };
    }

    fn observe_store(&mut self, line: u64) -> UchOutcome {
        if self.store.valid && self.store.tag == line {
            let d = self.distance_to(&self.store);
            self.store.valid = false;
            if (1..=self.cfg.max_distance).contains(&d) {
                return UchOutcome::Pair { distance: d };
            }
        }
        // The single entry always tracks the *last* unfused committed store,
        // so store pairs can only form with the immediately preceding store.
        self.store = Entry {
            valid: true,
            tag: line,
            cn: self.cn,
        };
        UchOutcome::Inserted
    }

    /// Clears all history (pipeline flush is *not* required to do this in the
    /// paper — UCH is commit-side — but tests and resets use it).
    pub fn clear(&mut self) {
        self.loads.fill(INVALID);
        self.store = INVALID;
    }

    /// Storage cost in bits: entries × (valid + 32-bit tag + 7-bit CN).
    ///
    /// The paper reports 280 bits for the 6-entry load UCH plus the 1-entry
    /// store UCH ("just 280 bits", §IV-A1): 7 entries × 40 bits.
    pub fn storage_bits(&self) -> u64 {
        ((self.cfg.load_entries as u64) + 1) * (1 + 32 + 7)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uch() -> Uch {
        Uch::new(UchConfig::default())
    }

    #[test]
    fn load_pair_found_at_distance() {
        let mut u = uch();
        assert_eq!(u.observe(false, 0x100), UchOutcome::Inserted);
        // 9 intervening µ-ops.
        for _ in 0..10 {
            u.tick();
        }
        assert_eq!(u.observe(false, 0x100), UchOutcome::Pair { distance: 10 });
    }

    #[test]
    fn matched_entry_is_invalidated() {
        let mut u = uch();
        u.observe(false, 0x100);
        u.tick();
        assert_eq!(u.observe(false, 0x100), UchOutcome::Pair { distance: 1 });
        u.tick();
        // The old entry is gone; this re-inserts.
        assert_eq!(u.observe(false, 0x100), UchOutcome::Inserted);
    }

    #[test]
    fn distance_beyond_max_is_not_a_pair() {
        let mut u = uch();
        u.observe(false, 0x100);
        for _ in 0..65 {
            u.tick();
        }
        assert_eq!(u.observe(false, 0x100), UchOutcome::Inserted);
    }

    #[test]
    fn lru_replacement_keeps_recent_lines() {
        let mut u = uch();
        for i in 0..7u64 {
            u.observe(false, 0x1000 + i * 0x40);
            u.tick();
        }
        // 0x1000 (oldest) was evicted by the 7th insert, so it misses and is
        // re-inserted, evicting the now-oldest 0x1040.
        assert_eq!(u.observe(false, 0x1000), UchOutcome::Inserted);
        u.tick();
        // 0x1080 (inserted third) is still resident and pairs.
        assert!(matches!(
            u.observe(false, 0x1080),
            UchOutcome::Pair { .. }
        ));
    }

    #[test]
    fn stores_only_pair_with_previous_store() {
        let mut u = uch();
        u.observe(true, 0x200);
        u.tick();
        // A different-line store replaces the entry...
        assert_eq!(u.observe(true, 0x400), UchOutcome::Inserted);
        u.tick();
        // ...so the original line no longer pairs.
        assert_eq!(u.observe(true, 0x200), UchOutcome::Inserted);
        u.tick();
        // But back-to-back same-line stores do.
        assert_eq!(u.observe(true, 0x200), UchOutcome::Pair { distance: 1 });
    }

    #[test]
    fn loads_and_stores_do_not_cross_match() {
        let mut u = uch();
        u.observe(false, 0x300);
        u.tick();
        assert_eq!(u.observe(true, 0x300), UchOutcome::Inserted);
    }

    #[test]
    fn paper_storage_budget() {
        assert_eq!(uch().storage_bits(), 280);
    }

    #[test]
    fn cn_wraparound_is_safe() {
        let mut u = uch();
        // Distances stay correct across the 2^32 CN wrap because the
        // comparison uses `wrapping_sub`; exercising the wrap itself would
        // take 2^32 ticks, so check the distance arithmetic on a short
        // window instead.
        u.observe(false, 0x500);
        u.tick();
        u.tick();
        assert_eq!(u.observe(false, 0x500), UchOutcome::Pair { distance: 2 });
    }
}
