//! Post-commit UCH decoupling queue (paper §IV-A1, note to Figure 6).
//!
//! UCH training is off the critical path: committing memory µ-ops are
//! inserted into a small queue (at most `insert_per_cycle` per cycle); if
//! the queue is full they are simply dropped and "get a chance to train at a
//! later time". The queue drains at the UCH's port rate. The paper finds an
//! 8-entry queue with a single search-and-update port loses nothing — this
//! module lets that claim be measured (see the `ablation` binary).

use crate::{Uch, UchOutcome};

/// A queued training record: one committed, unfused memory µ-op.
#[derive(Clone, Copy, Debug)]
pub struct UchTrainRecord {
    /// PC of the µ-op (used to train the fusion predictor on a pair hit).
    pub pc: u64,
    /// Global branch history at its commit.
    pub ghr: u64,
    /// Original-sequence position (keeps UCH distances exact).
    pub seq: u64,
    /// Accessed cache-line address.
    pub line: u64,
    /// Whether the µ-op is a store.
    pub is_store: bool,
}

/// Configuration of the decoupling queue.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct UchQueueConfig {
    /// Queue capacity (paper: 8). `None` models an ideal, unbounded queue.
    pub entries: Option<usize>,
    /// µ-ops drained into the UCH per cycle (paper: 1 port).
    pub drain_per_cycle: usize,
}

impl Default for UchQueueConfig {
    fn default() -> Self {
        UchQueueConfig {
            entries: Some(8),
            drain_per_cycle: 1,
        }
    }
}

/// The decoupling queue plus drop/drain statistics.
#[derive(Clone, Debug)]
pub struct UchQueue {
    cfg: UchQueueConfig,
    queue: std::collections::VecDeque<UchTrainRecord>,
    /// Training records dropped because the queue was full.
    pub dropped: u64,
    /// Records drained into the UCH.
    pub drained: u64,
}

impl UchQueue {
    /// Creates an empty queue.
    pub fn new(cfg: UchQueueConfig) -> UchQueue {
        UchQueue {
            cfg,
            queue: std::collections::VecDeque::new(),
            dropped: 0,
            drained: 0,
        }
    }

    /// Offers a committing µ-op's training record; drops it if full.
    /// Returns whether the record was accepted.
    pub fn offer(&mut self, rec: UchTrainRecord) -> bool {
        if let Some(cap) = self.cfg.entries {
            if self.queue.len() >= cap {
                self.dropped += 1;
                return false;
            }
        }
        self.queue.push_back(rec);
        true
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Drains up to the per-cycle port limit into the UCH, invoking
    /// `on_pair(pc, ghr, distance)` for each discovered pair.
    ///
    /// The UCH commit number is synchronised to each record's original
    /// sequence position, so distances remain exact even when training lags
    /// commit.
    pub fn drain_cycle(
        &mut self,
        uch: &mut Uch,
        uch_seq: &mut u64,
        mut on_pair: impl FnMut(u64, u64, u32),
    ) {
        for _ in 0..self.cfg.drain_per_cycle {
            let Some(rec) = self.queue.pop_front() else { break };
            while *uch_seq < rec.seq {
                uch.tick();
                *uch_seq += 1;
            }
            if let UchOutcome::Pair { distance } = uch.observe(rec.is_store, rec.line) {
                on_pair(rec.pc, rec.ghr, distance);
            }
            self.drained += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::UchConfig;

    fn rec(seq: u64, line: u64) -> UchTrainRecord {
        UchTrainRecord {
            pc: 0x1000 + seq * 4,
            ghr: 0,
            seq,
            line,
            is_store: false,
        }
    }

    #[test]
    fn bounded_queue_drops_when_full() {
        let mut q = UchQueue::new(UchQueueConfig {
            entries: Some(2),
            drain_per_cycle: 1,
        });
        assert!(q.offer(rec(0, 0x40)));
        assert!(q.offer(rec(1, 0x80)));
        assert!(!q.offer(rec(2, 0xc0)), "third insert must drop");
        assert_eq!(q.dropped, 1);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn unbounded_queue_never_drops() {
        let mut q = UchQueue::new(UchQueueConfig {
            entries: None,
            drain_per_cycle: 1,
        });
        for i in 0..1000 {
            assert!(q.offer(rec(i, 0x40 * i)));
        }
        assert_eq!(q.dropped, 0);
    }

    #[test]
    fn drain_respects_port_limit_and_finds_pairs() {
        let mut q = UchQueue::new(UchQueueConfig {
            entries: Some(8),
            drain_per_cycle: 1,
        });
        let mut uch = Uch::new(UchConfig::default());
        let mut uch_seq = 0u64;
        // Two same-line loads 5 µ-ops apart.
        q.offer(rec(3, 0x1c0));
        q.offer(rec(8, 0x1c0));
        let mut pairs = Vec::new();
        q.drain_cycle(&mut uch, &mut uch_seq, |pc, _, d| pairs.push((pc, d)));
        assert!(pairs.is_empty(), "one drain per cycle");
        q.drain_cycle(&mut uch, &mut uch_seq, |pc, _, d| pairs.push((pc, d)));
        assert_eq!(pairs, vec![(0x1000 + 8 * 4, 5)]);
        assert_eq!(q.drained, 2);
    }

    #[test]
    fn lagging_drain_keeps_distances_exact() {
        let mut q = UchQueue::new(UchQueueConfig {
            entries: Some(8),
            drain_per_cycle: 2,
        });
        let mut uch = Uch::new(UchConfig::default());
        let mut uch_seq = 0u64;
        q.offer(rec(100, 0x40));
        q.offer(rec(110, 0x40));
        let mut pairs = Vec::new();
        // Drained long after "commit" — distance must still be 10.
        q.drain_cycle(&mut uch, &mut uch_seq, |_, _, d| pairs.push(d));
        assert_eq!(pairs, vec![10]);
    }
}
