//! Property tests for the fusion machinery: contiguity-classification
//! algebra, UCH distance reporting, and fusion-predictor invariants.

use helios_core::{
    classify_contiguity, Contiguity, FpConfig, FusionPredictor, Uch, UchConfig, UchOutcome,
};
use helios_emu::MemAccess;
use proptest::prelude::*;

fn access() -> impl Strategy<Value = MemAccess> {
    (0u64..0x1_0000, prop_oneof![Just(1u8), Just(2), Just(4), Just(8)]).prop_map(|(addr, size)| {
        MemAccess {
            addr,
            size,
            is_store: false,
        }
    })
}

proptest! {
    /// Classification is symmetric in its two accesses.
    #[test]
    fn contiguity_symmetric(a in access(), b in access()) {
        prop_assert_eq!(
            classify_contiguity(&a, &b, 64),
            classify_contiguity(&b, &a, 64)
        );
    }

    /// Fusible ⇔ the union span fits within the 64-byte region.
    #[test]
    fn fusible_iff_span_fits(a in access(), b in access()) {
        let lo = a.addr.min(b.addr);
        let hi = a.last_byte().max(b.last_byte());
        let fits = hi - lo + 1 <= 64;
        prop_assert_eq!(classify_contiguity(&a, &b, 64).fusible(), fits);
    }

    /// The four fusible classes are mutually exclusive and well-defined:
    /// overlap ⇒ Overlapping; adjacency without overlap ⇒ Contiguous or
    /// NextLine; single_access ⇒ the pair sits within one line.
    #[test]
    fn class_definitions(a in access(), b in access()) {
        let c = classify_contiguity(&a, &b, 64);
        let overlap = a.overlaps(&b);
        match c {
            Contiguity::Overlapping => prop_assert!(overlap),
            Contiguity::Contiguous | Contiguity::SameLine => {
                prop_assert!(!overlap || c == Contiguity::Overlapping);
                // Single access ⇒ same 64B line for both.
                prop_assert_eq!(a.line(64).max(b.line(64)),
                                a.line(64).min(b.line(64)));
            }
            Contiguity::NextLine => {
                let same_line = a.line(64) == b.line(64)
                    && !a.crosses_line(64) && !b.crosses_line(64);
                prop_assert!(!same_line, "NextLine must actually cross a boundary");
            }
            Contiguity::TooFar => {}
        }
    }

    /// UCH reports exactly the inserted gap for same-line re-references
    /// within range, for any gap and line.
    #[test]
    fn uch_distance_exact(gap in 1u32..=64, line in (0u64..1000).prop_map(|l| l * 64)) {
        let mut u = Uch::new(UchConfig::default());
        prop_assert_eq!(u.observe(false, line), UchOutcome::Inserted);
        for _ in 0..gap {
            u.tick();
        }
        prop_assert_eq!(u.observe(false, line), UchOutcome::Pair { distance: gap });
    }

    /// Distances beyond the maximum never produce pairs.
    #[test]
    fn uch_never_pairs_beyond_max(extra in 1u32..1000) {
        let mut u = Uch::new(UchConfig::default());
        u.observe(false, 0x1c0);
        for _ in 0..(64 + extra) {
            u.tick();
        }
        prop_assert_eq!(u.observe(false, 0x1c0), UchOutcome::Inserted);
    }

    /// The predictor only ever returns distances it was trained with, in
    /// the valid 1..=64 range, and only after confidence saturates.
    #[test]
    fn fp_predicts_only_trained_distances(
        pcs in proptest::collection::vec((0u64..1u64 << 20, 1u32..=64), 1..32)
    ) {
        let mut fp = FusionPredictor::new(FpConfig::default());
        for &(pc, d) in &pcs {
            for _ in 0..3 {
                fp.train(pc * 4, 0, d);
            }
        }
        for &(pc, _) in &pcs {
            if let Some(meta) = fp.predict(pc * 4, 0) {
                prop_assert!((1..=64).contains(&meta.distance));
                // The distance must be one that was trained for a PC mapping
                // to the same entry (aliasing may substitute another trained
                // distance, but never an untrained value).
                prop_assert!(pcs.iter().any(|&(_, d)| d == meta.distance));
            }
        }
    }

    /// A misprediction silences the entry until retrained.
    #[test]
    fn fp_misprediction_resets(pc in 0u64..1u64 << 30, d in 1u32..=64) {
        let pc = pc * 4;
        let mut fp = FusionPredictor::new(FpConfig::default());
        for _ in 0..3 {
            fp.train(pc, 0, d);
        }
        let Some(meta) = fp.predict(pc, 0) else {
            return Err(TestCaseError::fail("trained entry must predict"));
        };
        fp.resolve(&meta, false);
        prop_assert!(fp.predict(pc, 0).is_none());
    }
}
