//! Randomized tests for the fusion machinery: contiguity-classification
//! algebra, UCH distance reporting, and fusion-predictor invariants.
//! Driven by a seeded deterministic generator (helios-prng).

use helios_core::{
    classify_contiguity, Contiguity, FpConfig, FusionPredictor, Uch, UchConfig, UchOutcome,
};
use helios_emu::MemAccess;
use helios_prng::{Rng, SeedableRng, StdRng};

fn access(rng: &mut StdRng) -> MemAccess {
    MemAccess {
        addr: rng.gen_range(0..0x1_0000u64),
        size: [1u8, 2, 4, 8][rng.gen_range(0..4usize)],
        is_store: false,
    }
}

/// Classification is symmetric in its two accesses.
#[test]
fn contiguity_symmetric() {
    let mut rng = StdRng::seed_from_u64(0xc0e_0001);
    for _ in 0..5_000 {
        let (a, b) = (access(&mut rng), access(&mut rng));
        assert_eq!(
            classify_contiguity(&a, &b, 64),
            classify_contiguity(&b, &a, 64),
            "asymmetric for {a:?} / {b:?}"
        );
    }
}

/// Fusible ⇔ the union span fits within the 64-byte region.
#[test]
fn fusible_iff_span_fits() {
    let mut rng = StdRng::seed_from_u64(0xc0e_0002);
    for _ in 0..5_000 {
        let (a, b) = (access(&mut rng), access(&mut rng));
        let lo = a.addr.min(b.addr);
        let hi = a.last_byte().max(b.last_byte());
        let fits = hi - lo < 64;
        assert_eq!(
            classify_contiguity(&a, &b, 64).fusible(),
            fits,
            "span rule broken for {a:?} / {b:?}"
        );
    }
}

/// The four fusible classes are mutually exclusive and well-defined:
/// overlap ⇒ Overlapping; adjacency without overlap ⇒ Contiguous or
/// NextLine; single_access ⇒ the pair sits within one line.
#[test]
fn class_definitions() {
    let mut rng = StdRng::seed_from_u64(0xc0e_0003);
    for _ in 0..5_000 {
        let (a, b) = (access(&mut rng), access(&mut rng));
        let c = classify_contiguity(&a, &b, 64);
        let overlap = a.overlaps(&b);
        match c {
            Contiguity::Overlapping => assert!(overlap, "{a:?} / {b:?}"),
            Contiguity::Contiguous | Contiguity::SameLine => {
                assert!(!overlap || c == Contiguity::Overlapping);
                // Single access ⇒ same 64B line for both.
                assert_eq!(
                    a.line(64).max(b.line(64)),
                    a.line(64).min(b.line(64)),
                    "{a:?} / {b:?}"
                );
            }
            Contiguity::NextLine => {
                let same_line =
                    a.line(64) == b.line(64) && !a.crosses_line(64) && !b.crosses_line(64);
                assert!(!same_line, "NextLine must actually cross a boundary");
            }
            Contiguity::TooFar => {}
        }
    }
}

/// UCH reports exactly the inserted gap for same-line re-references
/// within range, for any gap and line.
#[test]
fn uch_distance_exact() {
    let mut rng = StdRng::seed_from_u64(0xc0e_0004);
    for _ in 0..500 {
        let gap = rng.gen_range(1..=64u32);
        let line = rng.gen_range(0..1000u64) * 64;
        let mut u = Uch::new(UchConfig::default());
        assert_eq!(u.observe(false, line), UchOutcome::Inserted);
        for _ in 0..gap {
            u.tick();
        }
        assert_eq!(
            u.observe(false, line),
            UchOutcome::Pair { distance: gap },
            "gap {gap} line {line:#x}"
        );
    }
}

/// Distances beyond the maximum never produce pairs.
#[test]
fn uch_never_pairs_beyond_max() {
    let mut rng = StdRng::seed_from_u64(0xc0e_0005);
    for _ in 0..200 {
        let extra = rng.gen_range(1..1000u32);
        let mut u = Uch::new(UchConfig::default());
        u.observe(false, 0x1c0);
        for _ in 0..(64 + extra) {
            u.tick();
        }
        assert_eq!(u.observe(false, 0x1c0), UchOutcome::Inserted, "extra {extra}");
    }
}

/// The predictor only ever returns distances it was trained with, in
/// the valid 1..=64 range, and only after confidence saturates.
#[test]
fn fp_predicts_only_trained_distances() {
    let mut rng = StdRng::seed_from_u64(0xc0e_0006);
    for _ in 0..100 {
        let n = rng.gen_range(1..32usize);
        let pcs: Vec<(u64, u32)> = (0..n)
            .map(|_| (rng.gen_range(0..1u64 << 20), rng.gen_range(1..=64u32)))
            .collect();
        let mut fp = FusionPredictor::new(FpConfig::default());
        for &(pc, d) in &pcs {
            for _ in 0..3 {
                fp.train(pc * 4, 0, d);
            }
        }
        for &(pc, _) in &pcs {
            if let Some(meta) = fp.predict(pc * 4, 0) {
                assert!((1..=64).contains(&meta.distance));
                // The distance must be one that was trained for a PC mapping
                // to the same entry (aliasing may substitute another trained
                // distance, but never an untrained value).
                assert!(pcs.iter().any(|&(_, d)| d == meta.distance));
            }
        }
    }
}

/// A misprediction silences the entry until retrained.
#[test]
fn fp_misprediction_resets() {
    let mut rng = StdRng::seed_from_u64(0xc0e_0007);
    for _ in 0..500 {
        let pc = rng.gen_range(0..1u64 << 30) * 4;
        let d = rng.gen_range(1..=64u32);
        let mut fp = FusionPredictor::new(FpConfig::default());
        for _ in 0..3 {
            fp.train(pc, 0, d);
        }
        let meta = fp.predict(pc, 0).expect("trained entry must predict");
        fp.resolve(&meta, false);
        assert!(fp.predict(pc, 0).is_none(), "pc {pc:#x} d {d}");
    }
}
