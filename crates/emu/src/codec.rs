//! HTRC2: the compact, columnar, block-framed on-disk trace encoding.
//!
//! The v1 layout (`record.rs`) serialized every [`Retired`] field raw —
//! 47 bytes per dynamic µ-op on disk, ~88 in memory — which capped the
//! trace corpus at a few hundred megabytes and forced sweep replay to
//! materialize whole traces. HTRC2 exploits the fact that a retired-µ-op
//! trace is *almost entirely derivable* from ISA semantics:
//!
//! * **`pc` chains**: every µ-op's `pc` equals the previous µ-op's
//!   `next_pc`, so only each block's start PC is stored.
//! * **`inst` is a function of `pc`**: code is not self-modifying, so a
//!   per-block dictionary of (pc → instruction word) replaces a 4-byte
//!   word per µ-op with nothing at all per µ-op.
//! * **`next_pc` is usually `pc + 4`**: one bit per µ-op (a deviation
//!   bitmap) plus a zigzag-varint target delta for the exceptions.
//! * **`mem` shape is the instruction's**: size and direction come from
//!   the load/store width, so only the effective address is stored, as a
//!   zigzag-varint delta from the previous access.
//! * **`rd_value` replays**: given a register-file snapshot at block
//!   start, ALU/LUI/AUIPC/JAL(R) destination values are recomputed by the
//!   same `AluOp::eval` semantics the emulator used; only *loaded* values
//!   (which depend on memory) are stored, delta-encoded.
//! * **`seq` is dense**: only each block's first sequence number is kept.
//!
//! Blocks of [`DEFAULT_BLOCK_UOPS`] µ-ops are framed independently — each
//! carries its own register snapshot, length, and FNV-1a checksum over the
//! encoded bytes — so [`BlockReplay`] streams a file block-at-a-time
//! (O(block) peak memory instead of O(trace)) and any flipped bit in any
//! block is detected before a single µ-op from it is replayed.
//!
//! Traces not produced by the emulator (e.g. a hand-built µ-op sequence
//! that violates pc chaining or carries a load value on a non-load) are
//! rejected at encode time with [`TraceIoError::Unencodable`] rather than
//! silently mis-encoded; every trace the emulator can produce round-trips
//! exactly.

use crate::record::{content_stamp, Fnv, TraceIoError, TraceStamp, TRACE_MAGIC};
use crate::{MemAccess, Retired};
use helios_isa::{decode, encode, Inst, Reg, DEFAULT_STACK_TOP, ISA_VERSION};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

/// µ-ops per block unless the encoder is told otherwise: large enough to
/// amortize the per-block register snapshot and dictionary to noise,
/// small enough that a streaming replay holds ~5 MB, not a whole trace.
pub const DEFAULT_BLOCK_UOPS: u32 = 64 * 1024;

/// On-disk format version written by [`encode_v2`] (v1 is `record.rs`).
pub(crate) const V2_FORMAT_VERSION: u16 = 2;

// --- varint / zigzag ------------------------------------------------------

fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(b);
            return;
        }
        buf.push(b | 0x80);
    }
}

fn get_varint(bytes: &[u8], pos: &mut usize) -> Result<u64, TraceIoError> {
    let mut v = 0u64;
    for shift in 0..10 {
        let b = *bytes.get(*pos).ok_or(TraceIoError::Truncated)?;
        *pos += 1;
        v |= ((b & 0x7f) as u64) << (7 * shift);
        if b & 0x80 == 0 {
            return Ok(v);
        }
    }
    Err(TraceIoError::Truncated)
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Encodes `b - a` (wrapping) so the decoder can reconstruct `b` from `a`.
fn put_delta(buf: &mut Vec<u8>, a: u64, b: u64) {
    put_varint(buf, zigzag(b.wrapping_sub(a) as i64));
}

fn get_delta(bytes: &[u8], pos: &mut usize, a: u64) -> Result<u64, TraceIoError> {
    Ok(a.wrapping_add(unzigzag(get_varint(bytes, pos)?) as u64))
}

// --- derivation: what a µ-op's fields must look like ----------------------

/// What the destination value of `inst` at `pc` must be, given the
/// architectural register file — mirroring `Cpu::step` exactly.
enum DerivedRd {
    /// The instruction writes no destination.
    None,
    /// The value is computable without memory (stored nowhere).
    Value(Reg, u64),
    /// A load: the value depends on memory and is stored in the stream.
    Load(Reg),
}

fn derive_rd(inst: &Inst, pc: u64, regs: &[u64; 32]) -> DerivedRd {
    let r = |reg: Reg| regs[reg.index()];
    match *inst {
        Inst::Lui { rd, imm20 } => DerivedRd::Value(rd, ((imm20 as i64) << 12) as u64),
        Inst::Auipc { rd, imm20 } => {
            DerivedRd::Value(rd, pc.wrapping_add(((imm20 as i64) << 12) as u64))
        }
        Inst::Jal { rd, .. } | Inst::Jalr { rd, .. } => DerivedRd::Value(rd, pc.wrapping_add(4)),
        Inst::Load { rd, .. } => DerivedRd::Load(rd),
        Inst::OpImm { op, rd, rs1, imm } => DerivedRd::Value(rd, op.eval(r(rs1), imm)),
        Inst::Op { op, rd, rs1, rs2 } => DerivedRd::Value(rd, op.eval(r(rs1), r(rs2))),
        Inst::Branch { .. } | Inst::Store { .. } | Inst::Fence | Inst::Ecall | Inst::Ebreak => {
            DerivedRd::None
        }
    }
}

/// The memory-access shape `inst` mandates: `Some((size, is_store))` for
/// loads/stores, `None` otherwise.
fn mem_shape(inst: &Inst) -> Option<(u8, bool)> {
    match *inst {
        Inst::Load { width, .. } => Some((width.bytes() as u8, false)),
        Inst::Store { width, .. } => Some((width.bytes() as u8, true)),
        _ => None,
    }
}

fn unencodable(seq: u64, why: impl Into<String>) -> TraceIoError {
    TraceIoError::Unencodable {
        seq,
        detail: why.into(),
    }
}

// --- header ---------------------------------------------------------------

/// Parsed HTRC2 file header: everything about a trace that is knowable
/// without decoding a block. A [`Trace`](crate::Trace) handle backed by a
/// store file carries exactly this plus the path.
#[derive(Clone, Debug)]
pub struct Htrc2Header {
    /// Semantic integrity stamp (same content hash as the v1 format, so a
    /// re-encoded v1 trace keeps its identity).
    pub stamp: TraceStamp,
    /// Total retired µ-ops in the trace.
    pub uops: u64,
    /// µ-ops per block the encoder used (last block may be shorter).
    pub block_uops: u32,
    /// Number of blocks that follow the header.
    pub blocks: u32,
    /// Workload name recorded at encode time (for `trace ls`).
    pub name: String,
    /// The program's `write`-ecall outputs (workload checksums).
    pub output: Vec<u64>,
    /// Size of the encoded header in bytes (blocks start here).
    pub header_bytes: u64,
}

/// Serializes the v2 header (everything before the first block).
fn encode_header(h: &Htrc2Header) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64 + h.name.len() + 8 * h.output.len());
    buf.extend_from_slice(TRACE_MAGIC);
    buf.extend_from_slice(&V2_FORMAT_VERSION.to_le_bytes());
    buf.extend_from_slice(&h.stamp.isa_version.to_le_bytes());
    buf.extend_from_slice(&h.stamp.checksum.to_le_bytes());
    buf.extend_from_slice(&h.uops.to_le_bytes());
    buf.extend_from_slice(&h.block_uops.to_le_bytes());
    buf.extend_from_slice(&h.blocks.to_le_bytes());
    put_varint(&mut buf, h.name.len() as u64);
    buf.extend_from_slice(h.name.as_bytes());
    put_varint(&mut buf, h.output.len() as u64);
    for &o in &h.output {
        buf.extend_from_slice(&o.to_le_bytes());
    }
    let mut fnv = Fnv::new();
    for &b in &buf {
        fnv.u8(b);
    }
    buf.extend_from_slice(&fnv.finish().to_le_bytes());
    buf
}

/// Reads and verifies a v2 header from `r`.
///
/// # Errors
///
/// [`TraceIoError::BadMagic`] / [`TraceIoError::FormatVersion`] for files
/// that are not HTRC2 (a v1 file reports `FormatVersion { found: 1 }`),
/// [`TraceIoError::StaleIsa`] for traces recorded under older emulator
/// semantics, [`TraceIoError::ChecksumMismatch`] for a corrupted header,
/// [`TraceIoError::Truncated`] / [`TraceIoError::Io`] for short or
/// unreadable files.
pub fn read_header<R: Read>(r: &mut R) -> Result<Htrc2Header, TraceIoError> {
    let mut fixed = [0u8; 30];
    r.read_exact(&mut fixed).map_err(TraceIoError::from)?;
    if &fixed[0..4] != TRACE_MAGIC {
        return Err(TraceIoError::BadMagic([
            fixed[0], fixed[1], fixed[2], fixed[3],
        ]));
    }
    let version = u16::from_le_bytes([fixed[4], fixed[5]]);
    if version != V2_FORMAT_VERSION {
        return Err(TraceIoError::FormatVersion {
            found: version,
            want: V2_FORMAT_VERSION,
        });
    }
    let isa_version = u32::from_le_bytes(fixed[6..10].try_into().unwrap());
    let checksum = u64::from_le_bytes(fixed[10..18].try_into().unwrap());
    let uops = u64::from_le_bytes(fixed[18..26].try_into().unwrap());
    let block_uops = u32::from_le_bytes(fixed[26..30].try_into().unwrap());
    let mut rest = [0u8; 4];
    r.read_exact(&mut rest).map_err(TraceIoError::from)?;
    let blocks = u32::from_le_bytes(rest);
    // Variable tail: name, outputs. Bounded reads so a corrupt length
    // cannot trigger a huge allocation.
    let mut tail = Vec::new();
    let name_len = read_bounded_varint(r, &mut tail)?;
    if name_len > 4096 {
        return Err(TraceIoError::Truncated);
    }
    let mut name_bytes = vec![0u8; name_len as usize];
    r.read_exact(&mut name_bytes).map_err(TraceIoError::from)?;
    tail.extend_from_slice(&name_bytes);
    let name = String::from_utf8(name_bytes).map_err(|_| TraceIoError::Truncated)?;
    let mut tail2 = Vec::new();
    let output_count = read_bounded_varint(r, &mut tail2)?;
    tail.extend_from_slice(&tail2);
    if output_count > 1 << 24 {
        return Err(TraceIoError::Truncated);
    }
    let mut output = Vec::with_capacity(output_count as usize);
    for _ in 0..output_count {
        let mut b = [0u8; 8];
        r.read_exact(&mut b).map_err(TraceIoError::from)?;
        tail.extend_from_slice(&b);
        output.push(u64::from_le_bytes(b));
    }
    let mut stored = [0u8; 8];
    r.read_exact(&mut stored).map_err(TraceIoError::from)?;
    let mut fnv = Fnv::new();
    for &b in fixed.iter().chain(rest.iter()).chain(tail.iter()) {
        fnv.u8(b);
    }
    let actual = fnv.finish();
    let stored = u64::from_le_bytes(stored);
    if actual != stored {
        return Err(TraceIoError::ChecksumMismatch {
            stored,
            actual,
        });
    }
    if isa_version != ISA_VERSION {
        return Err(TraceIoError::StaleIsa {
            found: isa_version,
            want: ISA_VERSION,
        });
    }
    let header_bytes = 30 + 4 + tail.len() as u64 + 8;
    Ok(Htrc2Header {
        stamp: TraceStamp {
            isa_version,
            checksum,
        },
        uops,
        block_uops,
        blocks,
        name,
        output,
        header_bytes,
    })
}

/// Reads one varint byte-at-a-time from a `Read` (header parsing only; the
/// bytes consumed are appended to `seen` for checksumming).
fn read_bounded_varint<R: Read>(r: &mut R, seen: &mut Vec<u8>) -> Result<u64, TraceIoError> {
    let mut v = 0u64;
    for shift in 0..10 {
        let mut b = [0u8; 1];
        r.read_exact(&mut b).map_err(TraceIoError::from)?;
        seen.push(b[0]);
        v |= ((b[0] & 0x7f) as u64) << (7 * shift);
        if b[0] & 0x80 == 0 {
            return Ok(v);
        }
    }
    Err(TraceIoError::Truncated)
}

// --- encoding -------------------------------------------------------------

/// Serializes a retired-µ-op trace to `w` in the HTRC2 format, returning
/// the number of bytes written. `name` is carried in the header for
/// `trace ls`; `block_uops` is [`DEFAULT_BLOCK_UOPS`] everywhere except
/// tests that want to exercise multi-block framing cheaply.
///
/// # Errors
///
/// [`TraceIoError::Unencodable`] if the trace violates the derivation
/// invariants every emulator-produced trace satisfies (dense `seq`, pc
/// chaining, memory shape matching the instruction, destination values
/// matching ISA semantics); I/O errors from `w`.
pub fn encode_v2<W: Write>(
    uops: &[Retired],
    output: &[u64],
    name: &str,
    block_uops: u32,
    w: &mut W,
) -> Result<u64, TraceIoError> {
    let block_uops = block_uops.max(1);
    let blocks = uops.len().div_ceil(block_uops as usize);
    if blocks > u32::MAX as usize {
        return Err(unencodable(0, "trace too long for u32 block count"));
    }
    let header = Htrc2Header {
        stamp: content_stamp(uops, output),
        uops: uops.len() as u64,
        block_uops,
        blocks: blocks as u32,
        name: name.to_string(),
        output: output.to_vec(),
        header_bytes: 0, // filled by encode_header's length below
    };
    let head = encode_header(&header);
    w.write_all(&head).map_err(TraceIoError::from)?;
    let mut written = head.len() as u64;

    // The register model must start exactly as `Cpu::new` leaves the
    // machine, or the first read of an uninitialised-looking register
    // (sp, typically) spuriously fails semantic validation.
    let mut regs = [0u64; 32];
    regs[Reg::SP.index()] = DEFAULT_STACK_TOP;
    for chunk in uops.chunks(block_uops as usize) {
        let payload = encode_block(chunk, &mut regs)?;
        let mut fnv = Fnv::new();
        for &b in &payload {
            fnv.u8(b);
        }
        w.write_all(&(payload.len() as u32).to_le_bytes())
            .map_err(TraceIoError::from)?;
        w.write_all(&payload).map_err(TraceIoError::from)?;
        w.write_all(&fnv.finish().to_le_bytes())
            .map_err(TraceIoError::from)?;
        written += 4 + payload.len() as u64 + 8;
    }
    Ok(written)
}

/// Encodes one block, advancing `regs` (the architectural register file
/// after the block's last µ-op) for the next block's snapshot.
fn encode_block(chunk: &[Retired], regs: &mut [u64; 32]) -> Result<Vec<u8>, TraceIoError> {
    let first = &chunk[0];
    // Streams.
    let mut dict: std::collections::BTreeMap<u64, u32> = std::collections::BTreeMap::new();
    let mut bitmap = vec![0u8; chunk.len().div_ceil(8)];
    let mut targets = Vec::new();
    let mut addrs = Vec::new();
    let mut loads = Vec::new();
    let mut prev_addr = 0u64;
    let mut prev_load = 0u64;
    let mut expect_pc = first.pc;
    let mut expect_seq = first.seq;

    let snapshot = *regs;
    for (i, u) in chunk.iter().enumerate() {
        if u.seq != expect_seq {
            return Err(unencodable(u.seq, "sequence numbers are not dense"));
        }
        if u.pc != expect_pc {
            return Err(unencodable(
                u.seq,
                format!("pc {:#x} does not chain from previous next_pc {expect_pc:#x}", u.pc),
            ));
        }
        let word = encode(&u.inst);
        match dict.get(&u.pc) {
            None => {
                dict.insert(u.pc, word);
            }
            Some(&w) if w == word => {}
            Some(_) => {
                return Err(unencodable(u.seq, "two different instructions at one pc"));
            }
        }
        if u.next_pc != u.pc.wrapping_add(4) {
            bitmap[i / 8] |= 1 << (i % 8);
            put_delta(&mut targets, u.pc.wrapping_add(4), u.next_pc);
        }
        match (mem_shape(&u.inst), u.mem) {
            (None, None) => {}
            (Some((size, is_store)), Some(m)) if m.size == size && m.is_store == is_store => {
                put_delta(&mut addrs, prev_addr, m.addr);
                prev_addr = m.addr;
            }
            _ => {
                return Err(unencodable(
                    u.seq,
                    "memory access does not match the instruction's shape",
                ));
            }
        }
        match (derive_rd(&u.inst, u.pc, regs), u.rd_value) {
            (DerivedRd::None, None) => {}
            (DerivedRd::Value(rd, v), Some(actual)) if v == actual => {
                if !rd.is_zero() {
                    regs[rd.index()] = v;
                }
            }
            (DerivedRd::Load(rd), Some(v)) => {
                put_delta(&mut loads, prev_load, v);
                prev_load = v;
                if !rd.is_zero() {
                    regs[rd.index()] = v;
                }
            }
            _ => {
                return Err(unencodable(
                    u.seq,
                    "destination value does not match ISA semantics",
                ));
            }
        }
        expect_pc = u.next_pc;
        expect_seq = u.seq + 1;
    }

    // Assemble the payload.
    let mut payload = Vec::with_capacity(
        64 + 256 + dict.len() * 9 + bitmap.len() + targets.len() + addrs.len() + loads.len(),
    );
    payload.extend_from_slice(&(chunk.len() as u32).to_le_bytes());
    payload.extend_from_slice(&first.seq.to_le_bytes());
    payload.extend_from_slice(&first.pc.to_le_bytes());
    for v in snapshot {
        payload.extend_from_slice(&v.to_le_bytes());
    }
    // Dictionary: count, then (pc-delta varint, word u32 LE) sorted by pc.
    let mut dict_stream = Vec::with_capacity(dict.len() * 9);
    put_varint(&mut dict_stream, dict.len() as u64);
    let mut prev_pc = 0u64;
    for (&pc, &word) in &dict {
        put_varint(&mut dict_stream, pc.wrapping_sub(prev_pc));
        dict_stream.extend_from_slice(&word.to_le_bytes());
        prev_pc = pc;
    }
    for stream in [&dict_stream, &bitmap, &targets, &addrs, &loads] {
        put_varint(&mut payload, stream.len() as u64);
        payload.extend_from_slice(stream);
    }
    Ok(payload)
}

// --- decoding -------------------------------------------------------------

/// Decodes one block payload (already checksum-verified), advancing `regs`.
fn decode_block(payload: &[u8], regs: &mut [u64; 32]) -> Result<Vec<Retired>, TraceIoError> {
    let mut pos = 0usize;
    let fixed = payload.get(0..20 + 256).ok_or(TraceIoError::Truncated)?;
    let count = u32::from_le_bytes(fixed[0..4].try_into().unwrap()) as usize;
    let first_seq = u64::from_le_bytes(fixed[4..12].try_into().unwrap());
    let start_pc = u64::from_le_bytes(fixed[12..20].try_into().unwrap());
    let mut snapshot = [0u64; 32];
    for (i, s) in snapshot.iter_mut().enumerate() {
        *s = u64::from_le_bytes(fixed[20 + i * 8..28 + i * 8].try_into().unwrap());
    }
    *regs = snapshot;
    pos += 20 + 256;
    if count > (1 << 28) {
        return Err(TraceIoError::Truncated);
    }

    let mut streams = [&payload[0..0]; 5];
    for s in streams.iter_mut() {
        let len = get_varint(payload, &mut pos)? as usize;
        *s = payload
            .get(pos..pos.checked_add(len).ok_or(TraceIoError::Truncated)?)
            .ok_or(TraceIoError::Truncated)?;
        pos += len;
    }
    let [dict_stream, bitmap, targets, addrs, loads] = streams;

    // Dictionary: pc → decoded Inst, sorted by pc for binary search.
    let mut dpos = 0usize;
    let entries = get_varint(dict_stream, &mut dpos)? as usize;
    if entries > count.max(1) {
        return Err(TraceIoError::Truncated);
    }
    let mut dict: Vec<(u64, Inst)> = Vec::with_capacity(entries);
    let mut prev_pc = 0u64;
    for _ in 0..entries {
        let pc = prev_pc.wrapping_add(get_varint(dict_stream, &mut dpos)?);
        let wb = dict_stream
            .get(dpos..dpos + 4)
            .ok_or(TraceIoError::Truncated)?;
        dpos += 4;
        let word = u32::from_le_bytes(wb.try_into().unwrap());
        let inst = decode(word).map_err(|e| TraceIoError::Decode {
            seq: first_seq,
            detail: e.to_string(),
        })?;
        dict.push((pc, inst));
        prev_pc = pc;
    }

    if bitmap.len() != count.div_ceil(8) {
        return Err(TraceIoError::Truncated);
    }

    let (mut tpos, mut apos, mut lpos) = (0usize, 0usize, 0usize);
    let (mut prev_addr, mut prev_load) = (0u64, 0u64);
    let mut pc = start_pc;
    let mut out = Vec::with_capacity(count);
    for i in 0..count {
        let inst = match dict.binary_search_by_key(&pc, |&(p, _)| p) {
            Ok(d) => dict[d].1,
            Err(_) => return Err(TraceIoError::Truncated),
        };
        let next_pc = if bitmap[i / 8] & (1 << (i % 8)) != 0 {
            get_delta(targets, &mut tpos, pc.wrapping_add(4))?
        } else {
            pc.wrapping_add(4)
        };
        let mem = match mem_shape(&inst) {
            Some((size, is_store)) => {
                let addr = get_delta(addrs, &mut apos, prev_addr)?;
                prev_addr = addr;
                Some(MemAccess {
                    addr,
                    size,
                    is_store,
                })
            }
            None => None,
        };
        let rd_value = match derive_rd(&inst, pc, regs) {
            DerivedRd::None => None,
            DerivedRd::Value(rd, v) => {
                if !rd.is_zero() {
                    regs[rd.index()] = v;
                }
                Some(v)
            }
            DerivedRd::Load(rd) => {
                let v = get_delta(loads, &mut lpos, prev_load)?;
                prev_load = v;
                if !rd.is_zero() {
                    regs[rd.index()] = v;
                }
                Some(v)
            }
        };
        out.push(Retired {
            seq: first_seq + i as u64,
            pc,
            inst,
            next_pc,
            mem,
            rd_value,
        });
        pc = next_pc;
    }
    // Every stream must be fully consumed: leftovers mean the payload is
    // not what the encoder wrote (and the checksum collided, or a bug).
    if tpos != targets.len() || apos != addrs.len() || lpos != loads.len() {
        return Err(TraceIoError::Truncated);
    }
    Ok(out)
}

/// Reads one `len | payload | checksum` block frame from `r`, verifying
/// the checksum. Returns the raw payload.
fn read_block_frame<R: Read>(r: &mut R) -> Result<Vec<u8>, TraceIoError> {
    let mut lenb = [0u8; 4];
    r.read_exact(&mut lenb).map_err(TraceIoError::from)?;
    let len = u32::from_le_bytes(lenb) as usize;
    // A block of DEFAULT_BLOCK_UOPS µ-ops is a few MB even in the worst
    // case; an absurd length is a corrupt frame, not an allocation request.
    if len > (1 << 30) {
        return Err(TraceIoError::Truncated);
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload).map_err(TraceIoError::from)?;
    let mut sumb = [0u8; 8];
    r.read_exact(&mut sumb).map_err(TraceIoError::from)?;
    let stored = u64::from_le_bytes(sumb);
    let mut fnv = Fnv::new();
    for &b in &payload {
        fnv.u8(b);
    }
    let actual = fnv.finish();
    if actual != stored {
        return Err(TraceIoError::ChecksumMismatch { stored, actual });
    }
    Ok(payload)
}

/// Fully decodes an HTRC2 stream: header plus every block, verifying all
/// checksums and that the µ-op count matches the header. Used by deep
/// verification and tests; sweep replay streams via [`BlockReplay`]
/// instead of materializing.
///
/// # Errors
///
/// Any [`TraceIoError`]; see [`read_header`].
pub fn decode_all<R: Read>(r: &mut R) -> Result<(Htrc2Header, Vec<Retired>), TraceIoError> {
    let header = read_header(r)?;
    let mut regs = [0u64; 32];
    let mut uops = Vec::with_capacity(header.uops.min(1 << 28) as usize);
    for _ in 0..header.blocks {
        let payload = read_block_frame(r)?;
        uops.extend(decode_block(&payload, &mut regs)?);
    }
    if uops.len() as u64 != header.uops {
        return Err(TraceIoError::Truncated);
    }
    let actual = content_stamp(&uops, &header.output).checksum;
    if actual != header.stamp.checksum {
        return Err(TraceIoError::ChecksumMismatch {
            stored: header.stamp.checksum,
            actual,
        });
    }
    Ok((header, uops))
}

/// Verifies an HTRC2 file's framing integrity without decoding µ-ops:
/// header checksum, every block frame checksum, and end-of-file exactly
/// after the last block. Any flipped byte anywhere in the file fails.
/// O(file size) I/O, O(block) memory.
///
/// # Errors
///
/// Any [`TraceIoError`]; `Truncated` for trailing garbage.
pub fn verify_file(path: &Path) -> Result<Htrc2Header, TraceIoError> {
    let mut r = io::BufReader::new(std::fs::File::open(path)?);
    let header = read_header(&mut r)?;
    for _ in 0..header.blocks {
        read_block_frame(&mut r)?;
    }
    let mut probe = [0u8; 1];
    match r.read(&mut probe) {
        Ok(0) => Ok(header),
        Ok(_) => Err(TraceIoError::Truncated),
        Err(e) => Err(TraceIoError::Io(e.to_string())),
    }
}

// --- streaming replay -----------------------------------------------------

/// A streaming µ-op source over an HTRC2 file: decodes one block at a time,
/// so a sweep cell replaying a 100 MB trace holds ~5 MB, not the whole
/// recording. Implements `Iterator<Item = Retired>` (and therefore
/// [`UopSource`](crate::UopSource)).
///
/// The file's framing should be verified before replay (the store does this
/// on every open); corruption that appears *mid-replay* — the file changed
/// under us — panics with the path and the block error, which a resilient
/// sweep quarantines like any other cell fault.
#[derive(Debug)]
pub struct BlockReplay {
    r: io::BufReader<std::fs::File>,
    path: PathBuf,
    blocks_left: u32,
    total: u64,
    consumed: u64,
    regs: [u64; 32],
    buf: Vec<Retired>,
    pos: usize,
}

impl BlockReplay {
    /// Opens `path`, reads the header, and positions at the first block.
    ///
    /// # Errors
    ///
    /// Any [`TraceIoError`] from opening or header verification.
    pub fn open(path: &Path) -> Result<BlockReplay, TraceIoError> {
        let mut r = io::BufReader::new(std::fs::File::open(path)?);
        let header = read_header(&mut r)?;
        Ok(BlockReplay {
            r,
            path: path.to_path_buf(),
            blocks_left: header.blocks,
            total: header.uops,
            consumed: 0,
            regs: [0u64; 32],
            buf: Vec::new(),
            pos: 0,
        })
    }

    /// Total µ-ops in the underlying trace.
    pub fn len_total(&self) -> u64 {
        self.total
    }

    fn refill(&mut self) -> bool {
        if self.blocks_left == 0 {
            return false;
        }
        let next = read_block_frame(&mut self.r)
            .and_then(|payload| decode_block(&payload, &mut self.regs));
        match next {
            Ok(uops) => {
                self.blocks_left -= 1;
                self.buf = uops;
                self.pos = 0;
                !self.buf.is_empty()
            }
            Err(e) => panic!(
                "trace {} corrupted mid-replay (block {} of stream): {e}",
                self.path.display(),
                self.blocks_left
            ),
        }
    }
}

impl Iterator for BlockReplay {
    type Item = Retired;

    #[inline]
    fn next(&mut self) -> Option<Retired> {
        if self.pos >= self.buf.len() && !self.refill() {
            return None;
        }
        let u = self.buf[self.pos];
        self.pos += 1;
        self.consumed += 1;
        Some(u)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = (self.total - self.consumed) as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for BlockReplay {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RecordedTrace;
    use helios_isa::parse_asm;

    /// Exercises every stream: loads, stores, taken/not-taken branches,
    /// rd-writing and rd-less µ-ops, jumps, and outputs.
    const RICH: &str = "li a1, 0x1000\n\
                        li a0, 5\n\
                        top: sd a0, 0(a1)\n\
                        ld a2, 0(a1)\n\
                        addi a0, a0, -1\n\
                        bnez a0, top\n\
                        li a7, 64\n\
                        ecall\n\
                        ebreak";

    fn rich_trace() -> RecordedTrace {
        RecordedTrace::capture(parse_asm(RICH).unwrap(), 1000).unwrap()
    }

    fn encode_to_vec(t: &RecordedTrace, block: u32) -> Vec<u8> {
        let mut buf = Vec::new();
        encode_v2(t.uops(), t.output(), "rich", block, &mut buf).unwrap();
        buf
    }

    #[test]
    fn varint_zigzag_round_trip() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(get_varint(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len());
        }
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn round_trips_single_and_multi_block() {
        let t = rich_trace();
        for block in [1u32, 2, 7, DEFAULT_BLOCK_UOPS] {
            let buf = encode_to_vec(&t, block);
            let (header, uops) = decode_all(&mut buf.as_slice()).unwrap();
            assert_eq!(uops, t.uops(), "block size {block}");
            assert_eq!(header.output, t.output());
            assert_eq!(header.stamp, t.stamp());
            assert_eq!(header.name, "rich");
        }
    }

    #[test]
    fn multi_block_framing_is_exact() {
        let t = rich_trace();
        let buf = encode_to_vec(&t, 7);
        let (header, _) = decode_all(&mut buf.as_slice()).unwrap();
        assert_eq!(header.blocks as usize, t.len().div_ceil(7));
        assert_eq!(header.block_uops, 7);
    }

    #[test]
    fn any_flipped_byte_is_detected() {
        let t = rich_trace();
        let clean = encode_to_vec(&t, 8);
        for off in 0..clean.len() {
            let mut bad = clean.clone();
            bad[off] ^= 0x40;
            assert!(
                decode_all(&mut bad.as_slice()).is_err(),
                "flip at byte {off} decoded successfully"
            );
        }
    }

    #[test]
    fn truncation_is_detected_at_every_length() {
        let t = rich_trace();
        let clean = encode_to_vec(&t, 8);
        for len in 0..clean.len() {
            assert!(
                decode_all(&mut &clean[..len]).is_err(),
                "prefix of {len} bytes decoded successfully"
            );
        }
        // Trailing garbage fails verify_file (decode_all reads a stream and
        // cannot see past the last block; the file-level check can).
        let dir = std::env::temp_dir().join(format!("helios-codec-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("t.htrc2");
        let mut padded = clean.clone();
        padded.push(0);
        std::fs::write(&p, &padded).unwrap();
        assert!(matches!(verify_file(&p), Err(TraceIoError::Truncated)));
        std::fs::write(&p, &clean).unwrap();
        assert!(verify_file(&p).is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn non_emulator_traces_are_rejected_not_miscoded() {
        let t = rich_trace();
        let mut broken = t.uops().to_vec();
        // Violate pc chaining.
        broken[3].pc ^= 8;
        let mut buf = Vec::new();
        let err = encode_v2(&broken, &[], "x", 64, &mut buf).unwrap_err();
        assert!(matches!(err, TraceIoError::Unencodable { .. }), "{err}");

        // Violate memory shape: a load with no access record.
        let mut broken = t.uops().to_vec();
        let li = broken.iter().position(|u| u.mem.is_some()).unwrap();
        broken[li].mem = None;
        let mut buf = Vec::new();
        assert!(matches!(
            encode_v2(&broken, &[], "x", 64, &mut buf),
            Err(TraceIoError::Unencodable { .. })
        ));

        // Violate value semantics: an ALU result that isn't eval's.
        let mut broken = t.uops().to_vec();
        let ai = broken
            .iter()
            .position(|u| matches!(u.inst, Inst::OpImm { .. }) && u.rd_value.is_some())
            .unwrap();
        broken[ai].rd_value = Some(broken[ai].rd_value.unwrap() ^ 1);
        let mut buf = Vec::new();
        assert!(matches!(
            encode_v2(&broken, &[], "x", 64, &mut buf),
            Err(TraceIoError::Unencodable { .. })
        ));
    }

    #[test]
    fn block_replay_streams_identically() {
        let t = rich_trace();
        let dir = std::env::temp_dir().join(format!("helios-codec-br-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("t.htrc2");
        let mut f = std::io::BufWriter::new(std::fs::File::create(&p).unwrap());
        encode_v2(t.uops(), t.output(), "rich", 8, &mut f).unwrap();
        use std::io::Write as _;
        f.flush().unwrap();
        drop(f);
        let replay = BlockReplay::open(&p).unwrap();
        assert_eq!(replay.len(), t.len());
        let streamed: Vec<Retired> = replay.collect();
        assert_eq!(streamed.as_slice(), t.uops());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn v1_files_report_format_version() {
        let t = rich_trace();
        let mut v1 = Vec::new();
        t.save_v1(&mut v1).unwrap();
        assert!(matches!(
            read_header(&mut v1.as_slice()),
            Err(TraceIoError::FormatVersion { found: 1, want: 2 })
        ));
    }

    #[test]
    fn empty_trace_round_trips() {
        let mut buf = Vec::new();
        encode_v2(&[], &[7], "empty", 64, &mut buf).unwrap();
        let (header, uops) = decode_all(&mut buf.as_slice()).unwrap();
        assert!(uops.is_empty());
        assert_eq!(header.output, vec![7]);
    }
}
