//! The functional RV64IM emulator (this reproduction's Spike substitute).

use crate::{MemAccess, Memory, Retired};
use helios_isa::{Inst, Program, Reg, DEFAULT_STACK_TOP};
use std::fmt;

/// Error conditions that abort emulation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum EmuError {
    /// PC left the program's code region.
    FetchFault { pc: u64 },
    /// The instruction budget was exhausted before the program halted.
    OutOfFuel { executed: u64 },
}

impl fmt::Display for EmuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EmuError::FetchFault { pc } => write!(f, "fetch fault at pc {pc:#x}"),
            EmuError::OutOfFuel { executed } => {
                write!(f, "instruction budget exhausted after {executed} µ-ops")
            }
        }
    }
}

impl std::error::Error for EmuError {}

/// Functional emulator state: architectural registers, PC, and memory.
///
/// Executes a [`Program`] one instruction at a time, producing a [`Retired`]
/// record per step. `ebreak` halts the program; `ecall` implements a minimal
/// environment (`a7 == 93` exits, `a7 == 64` appends `a0` to an output log
/// that workloads use for self-validation); `fence` is a no-op functionally.
#[derive(Clone, Debug)]
pub struct Cpu {
    regs: [u64; 32],
    pc: u64,
    mem: Memory,
    program: Program,
    retired: u64,
    halted: bool,
    output: Vec<u64>,
}

impl Cpu {
    /// Loads a program: copies its data image into memory and points the PC
    /// at the entry, with `sp` initialised to the default stack top.
    pub fn new(program: Program) -> Cpu {
        let mut mem = Memory::new();
        for (addr, bytes) in &program.data {
            mem.write_bytes(*addr, bytes);
        }
        let mut regs = [0u64; 32];
        regs[Reg::SP.index()] = DEFAULT_STACK_TOP;
        Cpu {
            regs,
            pc: program.entry,
            mem,
            program,
            retired: 0,
            halted: false,
            output: Vec::new(),
        }
    }

    /// Current PC.
    pub fn pc(&self) -> u64 {
        self.pc
    }

    /// Whether the program has halted (`ebreak` or exit `ecall`).
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Number of retired µ-ops so far.
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Reads an architectural register.
    #[inline]
    pub fn reg(&self, r: Reg) -> u64 {
        self.regs[r.index()]
    }

    /// Writes an architectural register (`x0` writes are discarded).
    #[inline]
    pub fn set_reg(&mut self, r: Reg, v: u64) {
        if !r.is_zero() {
            self.regs[r.index()] = v;
        }
    }

    /// The memory behind this CPU.
    pub fn mem(&self) -> &Memory {
        &self.mem
    }

    /// Mutable access to memory (for test setup).
    pub fn mem_mut(&mut self) -> &mut Memory {
        &mut self.mem
    }

    /// Values the program reported through the `write` ecall, in order.
    pub fn output(&self) -> &[u64] {
        &self.output
    }

    /// Executes one instruction.
    ///
    /// Returns `Ok(None)` if already halted.
    ///
    /// # Errors
    ///
    /// [`EmuError::FetchFault`] if the PC leaves the code region.
    pub fn step(&mut self) -> Result<Option<Retired>, EmuError> {
        if self.halted {
            return Ok(None);
        }
        let pc = self.pc;
        let inst = *self
            .program
            .fetch(pc)
            .ok_or(EmuError::FetchFault { pc })?;

        let mut next_pc = pc.wrapping_add(4);
        let mut mem_access = None;
        let mut rd_value = None;

        match inst {
            Inst::Lui { rd, imm20 } => {
                let v = ((imm20 as i64) << 12) as u64;
                self.set_reg(rd, v);
                rd_value = Some(v);
            }
            Inst::Auipc { rd, imm20 } => {
                let v = pc.wrapping_add(((imm20 as i64) << 12) as u64);
                self.set_reg(rd, v);
                rd_value = Some(v);
            }
            Inst::Jal { rd, offset } => {
                self.set_reg(rd, pc.wrapping_add(4));
                rd_value = Some(pc.wrapping_add(4));
                next_pc = pc.wrapping_add(offset as i64 as u64);
            }
            Inst::Jalr { rd, rs1, offset } => {
                let target = self
                    .reg(rs1)
                    .wrapping_add(offset as i64 as u64)
                    & !1;
                self.set_reg(rd, pc.wrapping_add(4));
                rd_value = Some(pc.wrapping_add(4));
                next_pc = target;
            }
            Inst::Branch {
                kind,
                rs1,
                rs2,
                offset,
            } => {
                if kind.taken(self.reg(rs1), self.reg(rs2)) {
                    next_pc = pc.wrapping_add(offset as i64 as u64);
                }
            }
            Inst::Load {
                width,
                signed,
                rd,
                rs1,
                offset,
            } => {
                let addr = self.reg(rs1).wrapping_add(offset as i64 as u64);
                let size = width.bytes();
                let raw = self.mem.read(addr, size);
                let v = if signed && size < 8 {
                    let shift = 64 - 8 * size;
                    (((raw << shift) as i64) >> shift) as u64
                } else {
                    raw
                };
                self.set_reg(rd, v);
                rd_value = Some(v);
                mem_access = Some(MemAccess {
                    addr,
                    size: size as u8,
                    is_store: false,
                });
            }
            Inst::Store {
                width,
                rs2,
                rs1,
                offset,
            } => {
                let addr = self.reg(rs1).wrapping_add(offset as i64 as u64);
                let size = width.bytes();
                self.mem.write(addr, size, self.reg(rs2));
                mem_access = Some(MemAccess {
                    addr,
                    size: size as u8,
                    is_store: true,
                });
            }
            Inst::OpImm { op, rd, rs1, imm } => {
                let v = op.eval(self.reg(rs1), imm);
                self.set_reg(rd, v);
                rd_value = Some(v);
            }
            Inst::Op { op, rd, rs1, rs2 } => {
                let v = op.eval(self.reg(rs1), self.reg(rs2));
                self.set_reg(rd, v);
                rd_value = Some(v);
            }
            Inst::Fence => {}
            Inst::Ecall => {
                // Minimal environment: exit(93), write-value(64).
                match self.reg(Reg::A7) {
                    93 => self.halted = true,
                    64 => self.output.push(self.reg(Reg::A0)),
                    _ => {}
                }
            }
            Inst::Ebreak => {
                self.halted = true;
            }
        }

        let seq = self.retired;
        self.retired += 1;
        if !self.halted {
            self.pc = next_pc;
        }
        Ok(Some(Retired {
            seq,
            pc,
            inst,
            next_pc,
            mem: mem_access,
            rd_value,
        }))
    }

    /// Runs until halt or until `max_insts` µ-ops retire.
    ///
    /// # Errors
    ///
    /// Propagates fetch faults; returns [`EmuError::OutOfFuel`] if the budget
    /// is hit before the program halts.
    pub fn run(&mut self, max_insts: u64) -> Result<u64, EmuError> {
        let start = self.retired;
        while !self.halted {
            if self.retired - start >= max_insts {
                return Err(EmuError::OutOfFuel {
                    executed: self.retired - start,
                });
            }
            self.step()?;
        }
        Ok(self.retired - start)
    }
}

/// Streaming iterator adapter over a [`Cpu`]: yields retired µ-ops until the
/// program halts, faults, or the fuel budget runs out.
///
/// `Clone` snapshots the full CPU state, giving an independent replay of the
/// remaining trace — e.g. the oracle for a lockstep commit checker.
#[derive(Clone, Debug)]
pub struct RetireStream {
    cpu: Cpu,
    fuel: u64,
    error: Option<EmuError>,
}

impl RetireStream {
    /// Creates a stream that will retire at most `fuel` µ-ops.
    pub fn new(program: Program, fuel: u64) -> RetireStream {
        RetireStream {
            cpu: Cpu::new(program),
            fuel,
            error: None,
        }
    }

    /// Error encountered, if the stream terminated abnormally.
    pub fn error(&self) -> Option<&EmuError> {
        self.error.as_ref()
    }

    /// The underlying CPU (e.g. to inspect output after draining).
    pub fn cpu(&self) -> &Cpu {
        &self.cpu
    }
}

impl Iterator for RetireStream {
    type Item = Retired;

    fn next(&mut self) -> Option<Retired> {
        if self.fuel == 0 {
            return None;
        }
        self.fuel -= 1;
        match self.cpu.step() {
            Ok(r) => r,
            Err(e) => {
                self.error = Some(e);
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use helios_isa::{parse_asm, Asm};

    fn run(src: &str) -> Cpu {
        let prog = parse_asm(src).expect("asm");
        let mut cpu = Cpu::new(prog);
        cpu.run(1_000_000).expect("run");
        cpu
    }

    #[test]
    fn arithmetic_loop() {
        // Sum 1..=10 = 55.
        let cpu = run(r#"
            li a0, 0
            li a1, 10
        top:
            add a0, a0, a1
            addi a1, a1, -1
            bnez a1, top
            ebreak
        "#);
        assert_eq!(cpu.reg(Reg::A0), 55);
    }

    #[test]
    fn memory_store_load() {
        let cpu = run(r#"
            li t0, 0x3000
            li t1, 0x123456789abcdef0
            sd t1, 0(t0)
            lw a0, 0(t0)        # low 32 bits sign-extended
            lwu a1, 4(t0)       # high 32 bits zero-extended
            lbu a2, 0(t0)
            lh a3, 6(t0)
            ebreak
        "#);
        assert_eq!(cpu.reg(Reg::A0), 0x9abcdef0u32 as i32 as i64 as u64);
        assert_eq!(cpu.reg(Reg::A1), 0x12345678);
        assert_eq!(cpu.reg(Reg::A2), 0xf0);
        assert_eq!(cpu.reg(Reg::A3), 0x1234);
    }

    #[test]
    fn load_sign_and_zero_extension() {
        // The sign-extension shift (64 - 8*size) must replicate bit
        // (8*size - 1) of the loaded value for every sub-dword width.
        let cpu = run(r#"
            li t0, 0x3000
            li t1, -2             # 0xfffffffffffffffe
            sd t1, 0(t0)
            lb a0, 0(t0)          # 0xfe  -> -2
            lbu a1, 0(t0)         # 0xfe  -> 254
            lh a2, 0(t0)          # 0xfffe -> -2
            lhu a3, 0(t0)         # 0xfffe -> 65534
            lw a4, 0(t0)          # -2
            lwu a5, 0(t0)         # 0xfffffffe
            ld t2, 0(t0)          # -2
            ebreak
        "#);
        assert_eq!(cpu.reg(Reg::A0) as i64, -2);
        assert_eq!(cpu.reg(Reg::A1), 0xfe);
        assert_eq!(cpu.reg(Reg::A2) as i64, -2);
        assert_eq!(cpu.reg(Reg::A3), 0xfffe);
        assert_eq!(cpu.reg(Reg::A4) as i64, -2);
        assert_eq!(cpu.reg(Reg::A5), 0xffff_fffe);
        assert_eq!(cpu.reg(Reg::T2) as i64, -2);
        // A positive value with the width's top bit clear is unchanged.
        let cpu = run("li t0, 0x3000\nli t1, 0x7f\nsd t1, 0(t0)\nlb a0, 0(t0)\nebreak");
        assert_eq!(cpu.reg(Reg::A0), 0x7f);
    }

    #[test]
    fn misaligned_and_page_crossing_access() {
        // Sparse memory supports misaligned and page-crossing accesses;
        // the fuzzer generates both.
        let cpu = run(r#"
            li t0, 0x3ffd          # 3 bytes below a 4 KiB page boundary
            li t1, 0x1122334455667788
            sd t1, 0(t0)           # crosses into the next page
            ld a0, 0(t0)
            lw a1, 1(t0)           # misaligned within the dword
            ebreak
        "#);
        assert_eq!(cpu.reg(Reg::A0), 0x1122334455667788);
        assert_eq!(cpu.reg(Reg::A1), 0x44556677, "bytes 1..5, little-endian");
    }

    #[test]
    fn jalr_reads_rs1_before_writing_rd() {
        // jalr t0, 12(t0): the target must use the OLD t0, even though rd
        // and rs1 alias.
        let mut a = Asm::new();
        a.auipc(Reg::T0, 0); // t0 = base
        a.inst(helios_isa::Inst::Jalr {
            rd: Reg::T0,
            rs1: Reg::T0,
            offset: 12,
        }); // jumps to base+12, t0 = base+8
        a.li(Reg::A0, 111); // skipped
        a.halt(); // base + 12
        let prog = a.assemble().unwrap();
        let base = prog.entry;
        let mut cpu = Cpu::new(prog);
        cpu.run(100).unwrap();
        assert_eq!(cpu.reg(Reg::A0), 0, "li was jumped over");
        assert_eq!(cpu.reg(Reg::T0), base + 8, "rd gets pc+4 of the jalr");
    }

    #[test]
    fn jalr_clears_target_bit_zero() {
        // t1 = auipc_pc + 13 (odd); jalr masks bit 0, landing on the
        // ebreak at auipc_pc + 12 instead of fetch-faulting.
        let cpu = run(r#"
            li t0, 13
            auipc t1, 0
            add t1, t1, t0
            jalr t1
            ebreak
        "#);
        assert!(cpu.halted());
        assert_eq!(cpu.retired(), 5);
    }

    #[test]
    fn division_edge_cases_through_programs() {
        let cpu = run(r#"
            li a0, 7
            li a1, 0
            div a2, a0, a1         # -> -1
            rem a3, a0, a1         # -> 7
            li a4, -9223372036854775808
            li a5, -1
            div t0, a4, a5         # overflow -> i64::MIN
            rem t1, a4, a5         # -> 0
            divw t2, a0, a1        # -> -1 (sign-extended)
            ebreak
        "#);
        assert_eq!(cpu.reg(Reg::A2), u64::MAX);
        assert_eq!(cpu.reg(Reg::A3), 7);
        assert_eq!(cpu.reg(Reg::T0), i64::MIN as u64);
        assert_eq!(cpu.reg(Reg::T1), 0);
        assert_eq!(cpu.reg(Reg::T2), u64::MAX);
    }

    #[test]
    fn unknown_ecall_numbers_are_no_ops() {
        let cpu = run("li a7, 1234\necall\nli a0, 5\nebreak");
        assert!(cpu.halted());
        assert_eq!(cpu.reg(Reg::A0), 5);
        assert!(cpu.output().is_empty());
    }

    #[test]
    fn call_and_return() {
        let cpu = run(r#"
            li a0, 5
            call double
            call double
            ebreak
        double:
            add a0, a0, a0
            ret
        "#);
        assert_eq!(cpu.reg(Reg::A0), 20);
    }

    #[test]
    fn ecall_write_and_exit() {
        let cpu = run(r#"
            li a0, 42
            li a7, 64
            ecall
            li a7, 93
            ecall
        "#);
        assert!(cpu.halted());
        assert_eq!(cpu.output(), &[42]);
    }

    #[test]
    fn fetch_fault_reported() {
        let prog = parse_asm("nop\nnop").unwrap();
        let mut cpu = Cpu::new(prog);
        let e = cpu.run(100).unwrap_err();
        assert!(matches!(e, EmuError::FetchFault { .. }));
    }

    #[test]
    fn out_of_fuel() {
        let prog = parse_asm("top: j top").unwrap();
        let mut cpu = Cpu::new(prog);
        assert!(matches!(cpu.run(10), Err(EmuError::OutOfFuel { .. })));
    }

    #[test]
    fn retired_records_memory_and_control() {
        let mut a = Asm::new();
        let buf = a.words64(&[7]);
        a.la(Reg::A1, buf);
        a.ld(Reg::A0, 0, Reg::A1);
        a.halt();
        let mut cpu = Cpu::new(a.assemble().unwrap());
        let mut last_mem = None;
        while let Ok(Some(r)) = cpu.step() {
            if let Some(m) = r.mem {
                last_mem = Some(m);
            }
            if cpu.halted() {
                break;
            }
        }
        let m = last_mem.expect("saw a load");
        assert_eq!(m.addr, buf);
        assert_eq!(m.size, 8);
        assert!(!m.is_store);
        assert_eq!(cpu.reg(Reg::A0), 7);
    }

    #[test]
    fn stream_iterator_drains() {
        let prog = parse_asm("li a0, 3\ntop: addi a0, a0, -1\nbnez a0, top\nebreak").unwrap();
        let stream = RetireStream::new(prog, 1000);
        let v: Vec<_> = stream.collect();
        // li(1) + 3*(addi+bnez) + ebreak = 8
        assert_eq!(v.len(), 8);
        assert_eq!(v.last().unwrap().inst, helios_isa::Inst::Ebreak);
        // seq numbers are dense.
        for (i, r) in v.iter().enumerate() {
            assert_eq!(r.seq, i as u64);
        }
    }
}
