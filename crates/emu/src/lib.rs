//! # helios-emu — functional RV64IM emulator
//!
//! The Spike substitute of the Helios reproduction (MICRO 2022). Executes
//! programs assembled by `helios-isa` and produces the in-order retired-µ-op
//! stream ([`Retired`]) that drives the `helios-uarch` cycle-level model —
//! mirroring how the paper couples a modified Spike to its in-house timing
//! simulator (§V-A).
//!
//! # Examples
//!
//! ```
//! use helios_emu::Cpu;
//! use helios_isa::{parse_asm, Reg};
//!
//! let prog = parse_asm("li a0, 21\nadd a0, a0, a0\nebreak")?;
//! let mut cpu = Cpu::new(prog);
//! cpu.run(1000)?;
//! assert_eq!(cpu.reg(Reg::A0), 42);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod codec;
mod cpu;
mod mem;
mod record;
mod store;
mod trace;

pub use codec::{BlockReplay, Htrc2Header, DEFAULT_BLOCK_UOPS};
pub use cpu::{Cpu, EmuError, RetireStream};
pub use mem::Memory;
pub use record::{RecordedTrace, TraceIoError, TraceReplay, TraceStamp};
pub use store::{
    DiskTrace, GcReport, Replay, StoreEntry, StoreError, StoreStats, Trace, TraceStore,
    VerifyReport,
};
pub use trace::{MemAccess, Retired, UopSource};
