//! Sparse, page-granular byte-addressable memory.

use std::collections::HashMap;

const PAGE_SHIFT: u64 = 12;
const PAGE_SIZE: usize = 1 << PAGE_SHIFT;

/// A sparse 64-bit address space backed by 4 KiB pages allocated on demand.
///
/// Reads from never-written memory return zeroes, matching a zero-initialised
/// BSS. All accesses are little-endian and may be misaligned (RV64 cores,
/// including the one modeled here, handle misaligned accesses in hardware).
#[derive(Clone, Debug, Default)]
pub struct Memory {
    pages: HashMap<u64, Box<[u8; PAGE_SIZE]>>,
}

impl Memory {
    /// Creates an empty address space.
    pub fn new() -> Memory {
        Memory::default()
    }

    /// Number of resident pages.
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    #[inline]
    fn page(&self, addr: u64) -> Option<&[u8; PAGE_SIZE]> {
        self.pages.get(&(addr >> PAGE_SHIFT)).map(|b| &**b)
    }

    #[inline]
    fn page_mut(&mut self, addr: u64) -> &mut [u8; PAGE_SIZE] {
        self.pages
            .entry(addr >> PAGE_SHIFT)
            .or_insert_with(|| Box::new([0u8; PAGE_SIZE]))
    }

    /// Reads a single byte.
    #[inline]
    pub fn read_u8(&self, addr: u64) -> u8 {
        match self.page(addr) {
            Some(p) => p[(addr as usize) & (PAGE_SIZE - 1)],
            None => 0,
        }
    }

    /// Writes a single byte.
    #[inline]
    pub fn write_u8(&mut self, addr: u64, value: u8) {
        let off = (addr as usize) & (PAGE_SIZE - 1);
        self.page_mut(addr)[off] = value;
    }

    /// Reads `N <= 8` bytes little-endian. Crossing page boundaries is fine.
    #[inline]
    pub fn read(&self, addr: u64, size: u64) -> u64 {
        debug_assert!(size <= 8);
        let off = (addr as usize) & (PAGE_SIZE - 1);
        // Fast path: within one page.
        if off + size as usize <= PAGE_SIZE {
            match self.page(addr) {
                Some(p) => {
                    let mut buf = [0u8; 8];
                    buf[..size as usize].copy_from_slice(&p[off..off + size as usize]);
                    u64::from_le_bytes(buf)
                }
                None => 0,
            }
        } else {
            let mut v = 0u64;
            for i in 0..size {
                v |= (self.read_u8(addr.wrapping_add(i)) as u64) << (8 * i);
            }
            v
        }
    }

    /// Writes `N <= 8` bytes little-endian. Crossing page boundaries is fine.
    #[inline]
    pub fn write(&mut self, addr: u64, size: u64, value: u64) {
        debug_assert!(size <= 8);
        let off = (addr as usize) & (PAGE_SIZE - 1);
        if off + size as usize <= PAGE_SIZE {
            let bytes = value.to_le_bytes();
            self.page_mut(addr)[off..off + size as usize].copy_from_slice(&bytes[..size as usize]);
        } else {
            for i in 0..size {
                self.write_u8(addr.wrapping_add(i), (value >> (8 * i)) as u8);
            }
        }
    }

    /// Copies a byte slice into memory at `addr`.
    pub fn write_bytes(&mut self, addr: u64, bytes: &[u8]) {
        for (i, &b) in bytes.iter().enumerate() {
            self.write_u8(addr.wrapping_add(i as u64), b);
        }
    }

    /// Reads `len` bytes starting at `addr`.
    pub fn read_bytes(&self, addr: u64, len: usize) -> Vec<u8> {
        (0..len)
            .map(|i| self.read_u8(addr.wrapping_add(i as u64)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_initialised() {
        let m = Memory::new();
        assert_eq!(m.read(0x1234, 8), 0);
        assert_eq!(m.resident_pages(), 0);
    }

    #[test]
    fn rw_roundtrip_all_sizes() {
        let mut m = Memory::new();
        for size in [1u64, 2, 4, 8] {
            let v = 0x1122_3344_5566_7788u64 & (u64::MAX >> (64 - 8 * size));
            m.write(0x2000, size, v);
            assert_eq!(m.read(0x2000, size), v, "size {size}");
        }
    }

    #[test]
    fn page_crossing_access() {
        let mut m = Memory::new();
        let addr = 0x2000 - 3; // crosses into next page
        m.write(addr, 8, 0xdead_beef_cafe_f00d);
        assert_eq!(m.read(addr, 8), 0xdead_beef_cafe_f00d);
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn little_endian_layout() {
        let mut m = Memory::new();
        m.write(0x100, 4, 0x0403_0201);
        assert_eq!(m.read_u8(0x100), 1);
        assert_eq!(m.read_u8(0x103), 4);
    }

    #[test]
    fn bytes_roundtrip() {
        let mut m = Memory::new();
        m.write_bytes(0xfff, &[9, 8, 7]);
        assert_eq!(m.read_bytes(0xfff, 3), vec![9, 8, 7]);
    }
}
