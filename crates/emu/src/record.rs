//! Record-once/replay-many traces.
//!
//! A full fusion sweep simulates every workload under six configurations,
//! but the functional execution is identical in all of them — only the
//! timing model changes. [`RecordedTrace`] runs the emulator once and keeps
//! the retired-µ-op sequence in an `Arc<[Retired]>`, so every configuration
//! (and every worker thread) replays the same shared recording instead of
//! re-executing the program.
//!
//! Recording is strict about fuel: a program that fails to halt within its
//! budget yields [`EmuError::OutOfFuel`], never a silently truncated trace.
//! (A live `RetireStream` simply stops at the budget; a recording that did
//! the same would make every downstream figure quietly wrong.)

use crate::{Cpu, EmuError, MemAccess, Retired};
use helios_isa::{Program, ISA_VERSION};
use std::fmt;
use std::io::{self, Read, Write};
use std::path::Path;
use std::sync::Arc;

/// An immutable, shareable recording of a program's retired-µ-op trace.
///
/// Cloning is cheap (two `Arc` bumps); [`RecordedTrace::replay`] hands out
/// any number of independent iterators over the same buffer, each usable as
/// a pipeline [`UopSource`](crate::UopSource). The *in-memory* recording
/// owns `size_of::<Retired>()` (~90) bytes per dynamic µ-op — tens of MiB
/// for a ~1 M µ-op kernel — which is why the on-disk HTRC2 format
/// ([`crate::codec`]) stores ~1–2 bytes per µ-op and sweep cells replay
/// block-at-a-time via [`crate::BlockReplay`] instead of materializing one
/// of these per job.
#[derive(Clone, Debug)]
pub struct RecordedTrace {
    uops: Arc<[Retired]>,
    output: Arc<[u64]>,
}

impl RecordedTrace {
    /// Executes `program` to completion and records every retired µ-op.
    ///
    /// # Errors
    ///
    /// Propagates fetch faults, and returns [`EmuError::OutOfFuel`] if the
    /// program does not halt within `fuel` µ-ops — a starved recording is an
    /// error, never a truncated trace.
    pub(crate) fn capture(program: Program, fuel: u64) -> Result<RecordedTrace, EmuError> {
        let mut cpu = Cpu::new(program);
        let mut uops = Vec::new();
        while !cpu.halted() {
            if cpu.retired() >= fuel {
                return Err(EmuError::OutOfFuel {
                    executed: cpu.retired(),
                });
            }
            match cpu.step()? {
                Some(r) => uops.push(r),
                None => break,
            }
        }
        Ok(RecordedTrace {
            uops: uops.into(),
            output: cpu.output().to_vec().into(),
        })
    }

    /// Number of retired µ-ops in the recording.
    pub fn len(&self) -> usize {
        self.uops.len()
    }

    /// Whether the recording is empty.
    pub fn is_empty(&self) -> bool {
        self.uops.is_empty()
    }

    /// The recorded µ-ops, in program order.
    pub fn uops(&self) -> &[Retired] {
        &self.uops
    }

    /// Values the program reported through the `write` ecall, in order
    /// (workload checksums).
    pub fn output(&self) -> &[u64] {
        &self.output
    }

    /// A fresh replay iterator over the shared buffer.
    pub fn replay(&self) -> TraceReplay {
        TraceReplay {
            uops: Arc::clone(&self.uops),
            pos: 0,
        }
    }

    /// The integrity stamp a serialized copy of this recording would carry:
    /// the current [`ISA_VERSION`] plus an FNV-1a checksum over the full
    /// semantic content (every µ-op field and every output word).
    pub fn stamp(&self) -> TraceStamp {
        content_stamp(&self.uops, &self.output)
    }

    /// Serializes the recording to `w` in the `HTRC` v1 binary format: a
    /// header carrying a magic, the format version, the [`TraceStamp`] (ISA
    /// version and content checksum) and element counts, followed by the
    /// µ-ops and the output words — 47 bytes per µ-op, raw. `load_v1`
    /// refuses anything whose stamp does not verify, so a cached trace can
    /// never silently go stale. Nothing writes v1 in production anymore —
    /// the writer survives only for tests that fabricate legacy corpora to
    /// exercise the store's read-and-migrate path.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn save_v1<W: Write>(&self, w: &mut W) -> io::Result<()> {
        let stamp = self.stamp();
        w.write_all(TRACE_MAGIC)?;
        w.write_all(&TRACE_FORMAT_VERSION.to_le_bytes())?;
        w.write_all(&stamp.isa_version.to_le_bytes())?;
        w.write_all(&stamp.checksum.to_le_bytes())?;
        w.write_all(&(self.uops.len() as u64).to_le_bytes())?;
        w.write_all(&(self.output.len() as u64).to_le_bytes())?;
        for r in self.uops.iter() {
            w.write_all(&r.seq.to_le_bytes())?;
            w.write_all(&r.pc.to_le_bytes())?;
            w.write_all(&helios_isa::encode(&r.inst).to_le_bytes())?;
            w.write_all(&r.next_pc.to_le_bytes())?;
            match r.mem {
                None => w.write_all(&[0, 0, 0, 0, 0, 0, 0, 0, 0, 0])?,
                Some(m) => {
                    w.write_all(&[if m.is_store { 2 } else { 1 }])?;
                    w.write_all(&m.addr.to_le_bytes())?;
                    w.write_all(&[m.size])?;
                }
            }
            match r.rd_value {
                None => w.write_all(&[0, 0, 0, 0, 0, 0, 0, 0, 0])?,
                Some(v) => {
                    w.write_all(&[1])?;
                    w.write_all(&v.to_le_bytes())?;
                }
            }
        }
        for &o in self.output.iter() {
            w.write_all(&o.to_le_bytes())?;
        }
        Ok(())
    }

    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn save_v1_file(&self, path: &Path) -> io::Result<()> {
        let mut f = io::BufWriter::new(std::fs::File::create(path)?);
        self.save_v1(&mut f)?;
        f.flush()
    }

    /// Deserializes a recording previously written in the v1 layout,
    /// verifying the header and the integrity stamp.
    ///
    /// # Errors
    ///
    /// [`TraceIoError`] distinguishes every way a cached trace can be unfit
    /// for use: wrong file type ([`TraceIoError::BadMagic`]), written by a
    /// different serializer revision ([`TraceIoError::FormatVersion`]),
    /// recorded under older ISA semantics ([`TraceIoError::StaleIsa`]),
    /// bit rot or torn writes ([`TraceIoError::ChecksumMismatch`],
    /// [`TraceIoError::Truncated`]), an undecodable instruction word
    /// ([`TraceIoError::Decode`]), or a plain I/O failure. Callers treat all
    /// of them the same way: discard the cached file and re-record.
    pub(crate) fn load_v1<R: Read>(r: &mut R) -> Result<RecordedTrace, TraceIoError> {
        let mut magic = [0u8; 4];
        read_exact(r, &mut magic)?;
        if &magic != TRACE_MAGIC {
            return Err(TraceIoError::BadMagic(magic));
        }
        let format = u16::from_le_bytes(read_array(r)?);
        if format != TRACE_FORMAT_VERSION {
            return Err(TraceIoError::FormatVersion {
                found: format,
                want: TRACE_FORMAT_VERSION,
            });
        }
        let isa_version = u32::from_le_bytes(read_array(r)?);
        if isa_version != ISA_VERSION {
            return Err(TraceIoError::StaleIsa {
                found: isa_version,
                want: ISA_VERSION,
            });
        }
        let checksum = u64::from_le_bytes(read_array(r)?);
        let uop_count = u64::from_le_bytes(read_array(r)?);
        let output_count = u64::from_le_bytes(read_array(r)?);
        // An absurd count means a corrupt header; fail before allocating.
        const MAX_ELEMS: u64 = 1 << 32;
        if uop_count > MAX_ELEMS || output_count > MAX_ELEMS {
            return Err(TraceIoError::Truncated);
        }
        let mut uops = Vec::with_capacity(uop_count as usize);
        for _ in 0..uop_count {
            let seq = u64::from_le_bytes(read_array(r)?);
            let pc = u64::from_le_bytes(read_array(r)?);
            let word = u32::from_le_bytes(read_array(r)?);
            let inst = helios_isa::decode(word).map_err(|e| TraceIoError::Decode {
                seq,
                detail: e.to_string(),
            })?;
            let next_pc = u64::from_le_bytes(read_array(r)?);
            let mem = {
                let kind = read_array::<1>(r)?[0];
                let addr = u64::from_le_bytes(read_array(r)?);
                let size = read_array::<1>(r)?[0];
                match kind {
                    // Padding must be zero, so every corrupted byte is
                    // detectable (checksums only cover semantic content).
                    0 if addr == 0 && size == 0 => None,
                    1 | 2 => Some(MemAccess {
                        addr,
                        size,
                        is_store: kind == 2,
                    }),
                    _ => return Err(TraceIoError::Truncated),
                }
            };
            let rd_value = {
                let kind = read_array::<1>(r)?[0];
                let v = u64::from_le_bytes(read_array(r)?);
                match kind {
                    0 if v == 0 => None,
                    1 => Some(v),
                    _ => return Err(TraceIoError::Truncated),
                }
            };
            uops.push(Retired {
                seq,
                pc,
                inst,
                next_pc,
                mem,
                rd_value,
            });
        }
        let mut output = Vec::with_capacity(output_count as usize);
        for _ in 0..output_count {
            output.push(u64::from_le_bytes(read_array(r)?));
        }
        let trace = RecordedTrace {
            uops: uops.into(),
            output: output.into(),
        };
        let actual = trace.stamp().checksum;
        if actual != checksum {
            return Err(TraceIoError::ChecksumMismatch {
                stored: checksum,
                actual,
            });
        }
        Ok(trace)
    }

    pub(crate) fn load_v1_file(path: &Path) -> Result<RecordedTrace, TraceIoError> {
        let mut f = io::BufReader::new(std::fs::File::open(path)?);
        let trace = RecordedTrace::load_v1(&mut f)?;
        // Trailing garbage means the file is not what `save` wrote.
        let mut probe = [0u8; 1];
        match f.read(&mut probe) {
            Ok(0) => Ok(trace),
            Ok(_) => Err(TraceIoError::Truncated),
            Err(e) => Err(TraceIoError::Io(e.to_string())),
        }
    }
}

/// Magic bytes opening every serialized trace, v1 or v2 ("Helios TRaCe").
pub(crate) const TRACE_MAGIC: &[u8; 4] = b"HTRC";

/// The raw v1 layout this module reads and migrates; new files are written
/// by [`crate::codec`] at [`crate::codec::V2_FORMAT_VERSION`].
const TRACE_FORMAT_VERSION: u16 = 1;

/// The semantic content hash carried by every serialized trace, v1 and v2
/// alike: FNV-1a over every µ-op field and every output word, so a
/// re-encoded trace keeps its identity across formats.
pub(crate) fn content_stamp(uops: &[Retired], output: &[u64]) -> TraceStamp {
    let mut h = Fnv::new();
    h.u64(uops.len() as u64);
    for r in uops {
        h.u64(r.seq);
        h.u64(r.pc);
        h.u32(helios_isa::encode(&r.inst));
        h.u64(r.next_pc);
        match r.mem {
            None => h.u8(0),
            Some(m) => {
                h.u8(if m.is_store { 2 } else { 1 });
                h.u64(m.addr);
                h.u8(m.size);
            }
        }
        match r.rd_value {
            None => h.u8(0),
            Some(v) => {
                h.u8(1);
                h.u64(v);
            }
        }
    }
    h.u64(output.len() as u64);
    for &o in output {
        h.u64(o);
    }
    TraceStamp {
        isa_version: ISA_VERSION,
        checksum: h.finish(),
    }
}

/// Integrity stamp carried by a serialized [`RecordedTrace`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TraceStamp {
    /// [`ISA_VERSION`] at recording time: a cached trace is only as good as
    /// the emulator semantics that produced it.
    pub isa_version: u32,
    /// FNV-1a over the full semantic content.
    pub checksum: u64,
}

/// Why a serialized trace could not be loaded. Every variant means the same
/// thing to a sweep driver — discard the cached file and re-record — but the
/// distinction is logged so cache problems are diagnosable.
#[derive(Clone, Debug)]
pub enum TraceIoError {
    /// The file does not start with the `HTRC` magic.
    BadMagic([u8; 4]),
    /// Written by a different serializer format revision.
    FormatVersion { found: u16, want: u16 },
    /// Recorded under different ISA semantics ([`ISA_VERSION`] mismatch).
    StaleIsa { found: u32, want: u32 },
    /// Content does not match the stored checksum (bit rot, torn write).
    ChecksumMismatch { stored: u64, actual: u64 },
    /// The file ended early or contains an impossible field value.
    Truncated,
    /// An instruction word failed to decode.
    Decode { seq: u64, detail: String },
    /// The µ-op sequence violates the derivation invariants the compact
    /// HTRC2 encoding relies on (dense `seq`, pc chaining, memory shape and
    /// destination values matching ISA semantics). Every emulator-produced
    /// trace encodes; a hand-built or tampered one is rejected rather than
    /// mis-encoded.
    Unencodable { seq: u64, detail: String },
    /// An underlying I/O failure.
    Io(String),
}

impl fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceIoError::BadMagic(m) => write!(f, "not a trace file (magic {m:02x?})"),
            TraceIoError::FormatVersion { found, want } => {
                write!(f, "trace format v{found}, this build reads v{want}")
            }
            TraceIoError::StaleIsa { found, want } => write!(
                f,
                "trace recorded under ISA version {found}, current is {want}"
            ),
            TraceIoError::ChecksumMismatch { stored, actual } => write!(
                f,
                "trace checksum mismatch: stored {stored:#018x}, content hashes to {actual:#018x}"
            ),
            TraceIoError::Truncated => write!(f, "trace file truncated or corrupt"),
            TraceIoError::Decode { seq, detail } => {
                write!(f, "undecodable instruction at seq {seq}: {detail}")
            }
            TraceIoError::Unencodable { seq, detail } => {
                write!(f, "trace not encodable at seq {seq}: {detail}")
            }
            TraceIoError::Io(e) => write!(f, "trace i/o error: {e}"),
        }
    }
}

impl std::error::Error for TraceIoError {}

impl From<io::Error> for TraceIoError {
    fn from(e: io::Error) -> TraceIoError {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            TraceIoError::Truncated
        } else {
            TraceIoError::Io(e.to_string())
        }
    }
}

/// FNV-1a, field-delimited by construction (every variable-length run is
/// preceded by its length). Shared by the v1 stamp, the v2 block framing,
/// and the store's content addressing.
pub(crate) struct Fnv(u64);

impl Fnv {
    pub(crate) fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    #[inline]
    pub(crate) fn u8(&mut self, b: u8) {
        self.0 ^= b as u64;
        self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
    }
    #[inline]
    pub(crate) fn u32(&mut self, v: u32) {
        for b in v.to_le_bytes() {
            self.u8(b);
        }
    }
    #[inline]
    pub(crate) fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.u8(b);
        }
    }
    pub(crate) fn finish(self) -> u64 {
        self.0
    }
}

fn read_exact<R: Read>(r: &mut R, buf: &mut [u8]) -> Result<(), TraceIoError> {
    r.read_exact(buf).map_err(TraceIoError::from)
}

fn read_array<const N: usize>(r: &mut impl Read) -> Result<[u8; N], TraceIoError> {
    let mut buf = [0u8; N];
    read_exact(r, &mut buf)?;
    Ok(buf)
}

/// An independent cursor over a [`RecordedTrace`]'s shared buffer.
#[derive(Clone, Debug)]
pub struct TraceReplay {
    uops: Arc<[Retired]>,
    pos: usize,
}

impl Iterator for TraceReplay {
    type Item = Retired;

    #[inline]
    fn next(&mut self) -> Option<Retired> {
        let r = self.uops.get(self.pos).copied()?;
        self.pos += 1;
        Some(r)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.uops.len() - self.pos;
        (n, Some(n))
    }
}

impl ExactSizeIterator for TraceReplay {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RetireStream;
    use helios_isa::parse_asm;

    const LOOP: &str = "li a0, 3\ntop: addi a0, a0, -1\nbnez a0, top\nebreak";

    #[test]
    fn recording_matches_live_stream() {
        let prog = parse_asm(LOOP).unwrap();
        let rec = RecordedTrace::capture(prog.clone(), 1000).unwrap();
        let live: Vec<_> = RetireStream::new(prog, 1000).collect();
        assert_eq!(rec.uops(), live.as_slice());
    }

    #[test]
    fn replays_are_independent() {
        let prog = parse_asm(LOOP).unwrap();
        let rec = RecordedTrace::capture(prog, 1000).unwrap();
        let mut a = rec.replay();
        let b = rec.replay();
        a.next();
        a.next();
        assert_eq!(b.len(), rec.len(), "b unaffected by a's progress");
        assert_eq!(a.next().unwrap().seq, 2);
    }

    #[test]
    fn starved_fuel_fails_loudly() {
        let prog = parse_asm("top: j top").unwrap();
        let err = RecordedTrace::capture(prog, 100).unwrap_err();
        assert!(matches!(err, EmuError::OutOfFuel { .. }));
    }

    #[test]
    fn output_is_captured() {
        let prog = parse_asm("li a0, 42\nli a7, 64\necall\nebreak").unwrap();
        let rec = RecordedTrace::capture(prog, 100).unwrap();
        assert_eq!(rec.output(), &[42]);
    }

    /// A kernel exercising every serialized field shape: loads, stores,
    /// taken/not-taken branches, rd-writing and rd-less µ-ops, and outputs.
    const RICH: &str = "li a1, 0x1000\n\
                        li a0, 5\n\
                        top: sd a0, 0(a1)\n\
                        ld a2, 0(a1)\n\
                        addi a0, a0, -1\n\
                        bnez a0, top\n\
                        li a7, 64\n\
                        ecall\n\
                        ebreak";

    #[test]
    fn save_load_round_trips() {
        let prog = parse_asm(RICH).unwrap();
        let rec = RecordedTrace::capture(prog, 1000).unwrap();
        let mut buf = Vec::new();
        rec.save_v1(&mut buf).unwrap();
        let back = RecordedTrace::load_v1(&mut buf.as_slice()).unwrap();
        assert_eq!(back.uops(), rec.uops());
        assert_eq!(back.output(), rec.output());
        assert_eq!(back.stamp(), rec.stamp());
    }

    #[test]
    fn any_flipped_byte_is_detected() {
        let prog = parse_asm(RICH).unwrap();
        let rec = RecordedTrace::capture(prog, 1000).unwrap();
        let mut clean = Vec::new();
        rec.save_v1(&mut clean).unwrap();
        // Flip one byte at a spread of offsets covering header, µ-ops, and
        // outputs; every corruption must be rejected, never silently loaded.
        for off in (0..clean.len()).step_by(7) {
            let mut bad = clean.clone();
            bad[off] ^= 0x40;
            assert!(
                RecordedTrace::load_v1(&mut bad.as_slice()).is_err(),
                "flip at byte {off} loaded successfully"
            );
        }
    }

    #[test]
    fn header_mismatches_are_distinguished() {
        let prog = parse_asm(LOOP).unwrap();
        let rec = RecordedTrace::capture(prog, 1000).unwrap();
        let mut clean = Vec::new();
        rec.save_v1(&mut clean).unwrap();

        let mut bad = clean.clone();
        bad[0] = b'X';
        assert!(matches!(
            RecordedTrace::load_v1(&mut bad.as_slice()),
            Err(TraceIoError::BadMagic(_))
        ));

        let mut bad = clean.clone();
        bad[4] = 0xEE; // format version (u16 LE at offset 4)
        assert!(matches!(
            RecordedTrace::load_v1(&mut bad.as_slice()),
            Err(TraceIoError::FormatVersion { .. })
        ));

        let mut bad = clean.clone();
        bad[6] ^= 0x01; // ISA version (u32 LE at offset 6)
        assert!(matches!(
            RecordedTrace::load_v1(&mut bad.as_slice()),
            Err(TraceIoError::StaleIsa { .. })
        ));

        let mut bad = clean.clone();
        bad[10] ^= 0x01; // checksum (u64 LE at offset 10)
        assert!(matches!(
            RecordedTrace::load_v1(&mut bad.as_slice()),
            Err(TraceIoError::ChecksumMismatch { .. })
        ));

        let short = &clean[..clean.len() - 3];
        assert!(matches!(
            RecordedTrace::load_v1(&mut &short[..]),
            Err(TraceIoError::Truncated)
        ));
    }

    #[test]
    fn file_round_trip_rejects_trailing_garbage() {
        let dir = std::env::temp_dir().join(format!("helios-rec-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.htrc");
        let prog = parse_asm(LOOP).unwrap();
        let rec = RecordedTrace::capture(prog, 1000).unwrap();
        rec.save_v1_file(&path).unwrap();
        let back = RecordedTrace::load_v1_file(&path).unwrap();
        assert_eq!(back.uops(), rec.uops());
        // Appended bytes mean the file is not what `save` wrote.
        let mut raw = std::fs::read(&path).unwrap();
        raw.push(0);
        std::fs::write(&path, &raw).unwrap();
        assert!(matches!(
            RecordedTrace::load_v1_file(&path),
            Err(TraceIoError::Truncated)
        ));
        assert!(matches!(
            RecordedTrace::load_v1_file(&dir.join("missing.htrc")),
            Err(TraceIoError::Io(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }
}
