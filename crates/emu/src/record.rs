//! Record-once/replay-many traces.
//!
//! A full fusion sweep simulates every workload under six configurations,
//! but the functional execution is identical in all of them — only the
//! timing model changes. [`RecordedTrace`] runs the emulator once and keeps
//! the retired-µ-op sequence in an `Arc<[Retired]>`, so every configuration
//! (and every worker thread) replays the same shared recording instead of
//! re-executing the program.
//!
//! Recording is strict about fuel: a program that fails to halt within its
//! budget yields [`EmuError::OutOfFuel`], never a silently truncated trace.
//! (A live `RetireStream` simply stops at the budget; a recording that did
//! the same would make every downstream figure quietly wrong.)

use crate::{Cpu, EmuError, Retired};
use helios_isa::Program;
use std::sync::Arc;

/// An immutable, shareable recording of a program's retired-µ-op trace.
///
/// Cloning is cheap (two `Arc` bumps); [`RecordedTrace::replay`] hands out
/// any number of independent iterators over the same buffer, each usable as
/// a pipeline [`UopSource`](crate::UopSource). The recording owns
/// `size_of::<Retired>()` (~90) bytes per dynamic µ-op — tens of MiB for a
/// ~1 M µ-op kernel — so sweep drivers should record on demand and drop each
/// trace once its last consumer finishes rather than holding a whole suite's
/// recordings alive at once.
#[derive(Clone, Debug)]
pub struct RecordedTrace {
    uops: Arc<[Retired]>,
    output: Arc<[u64]>,
}

impl RecordedTrace {
    /// Executes `program` to completion and records every retired µ-op.
    ///
    /// # Errors
    ///
    /// Propagates fetch faults, and returns [`EmuError::OutOfFuel`] if the
    /// program does not halt within `fuel` µ-ops — a starved recording is an
    /// error, never a truncated trace.
    pub fn record(program: Program, fuel: u64) -> Result<RecordedTrace, EmuError> {
        let mut cpu = Cpu::new(program);
        let mut uops = Vec::new();
        while !cpu.halted() {
            if cpu.retired() >= fuel {
                return Err(EmuError::OutOfFuel {
                    executed: cpu.retired(),
                });
            }
            match cpu.step()? {
                Some(r) => uops.push(r),
                None => break,
            }
        }
        Ok(RecordedTrace {
            uops: uops.into(),
            output: cpu.output().to_vec().into(),
        })
    }

    /// Number of retired µ-ops in the recording.
    pub fn len(&self) -> usize {
        self.uops.len()
    }

    /// Whether the recording is empty.
    pub fn is_empty(&self) -> bool {
        self.uops.is_empty()
    }

    /// The recorded µ-ops, in program order.
    pub fn uops(&self) -> &[Retired] {
        &self.uops
    }

    /// Values the program reported through the `write` ecall, in order
    /// (workload checksums).
    pub fn output(&self) -> &[u64] {
        &self.output
    }

    /// A fresh replay iterator over the shared buffer.
    pub fn replay(&self) -> TraceReplay {
        TraceReplay {
            uops: Arc::clone(&self.uops),
            pos: 0,
        }
    }
}

/// An independent cursor over a [`RecordedTrace`]'s shared buffer.
#[derive(Clone, Debug)]
pub struct TraceReplay {
    uops: Arc<[Retired]>,
    pos: usize,
}

impl Iterator for TraceReplay {
    type Item = Retired;

    #[inline]
    fn next(&mut self) -> Option<Retired> {
        let r = self.uops.get(self.pos).copied()?;
        self.pos += 1;
        Some(r)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.uops.len() - self.pos;
        (n, Some(n))
    }
}

impl ExactSizeIterator for TraceReplay {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RetireStream;
    use helios_isa::parse_asm;

    const LOOP: &str = "li a0, 3\ntop: addi a0, a0, -1\nbnez a0, top\nebreak";

    #[test]
    fn recording_matches_live_stream() {
        let prog = parse_asm(LOOP).unwrap();
        let rec = RecordedTrace::record(prog.clone(), 1000).unwrap();
        let live: Vec<_> = RetireStream::new(prog, 1000).collect();
        assert_eq!(rec.uops(), live.as_slice());
    }

    #[test]
    fn replays_are_independent() {
        let prog = parse_asm(LOOP).unwrap();
        let rec = RecordedTrace::record(prog, 1000).unwrap();
        let mut a = rec.replay();
        let b = rec.replay();
        a.next();
        a.next();
        assert_eq!(b.len(), rec.len(), "b unaffected by a's progress");
        assert_eq!(a.next().unwrap().seq, 2);
    }

    #[test]
    fn starved_fuel_fails_loudly() {
        let prog = parse_asm("top: j top").unwrap();
        let err = RecordedTrace::record(prog, 100).unwrap_err();
        assert!(matches!(err, EmuError::OutOfFuel { .. }));
    }

    #[test]
    fn output_is_captured() {
        let prog = parse_asm("li a0, 42\nli a7, 64\necall\nebreak").unwrap();
        let rec = RecordedTrace::record(prog, 100).unwrap();
        assert_eq!(rec.output(), &[42]);
    }
}
