//! The content-addressed trace corpus: record once *ever*, share across
//! threads, processes, sweeps, and machines.
//!
//! A [`TraceStore`] is a directory of HTRC2 files keyed by the FNV-1a
//! digest of (program text, [`ISA_VERSION`]): two workloads with the same
//! program share one file, and bumping the ISA version changes every key,
//! so a stale corpus is simply never *found* rather than found-and-rejected.
//! [`TraceStore::get_or_record`] is the one entrypoint:
//!
//! * **Hit** — the keyed file exists and its framing verifies (header plus
//!   every block checksum); the caller gets a [`Trace`] that replays
//!   straight off disk, block-at-a-time.
//! * **Miss** — the caller takes the per-key lock file, records the
//!   program, encodes to a temp file, and atomically renames it into
//!   place. Concurrent workers (threads *or* processes) wanting the same
//!   key wait on the lock and then hit; a workload is never recorded
//!   twice.
//! * **Corrupt** — a file that fails verification is quarantined (renamed
//!   to `*.corrupt`) and re-recorded, exactly like the sweep cache's
//!   discard-and-re-record policy. `trace gc` reclaims quarantine.
//! * **Legacy** — a raw v1 `<name>.htrc` file left by an older build is
//!   validated against the program and re-encoded into the store once;
//!   after migration the v1 file is removed.
//!
//! [`Trace`] / [`Replay`] unify the two ways a µ-op sequence can live —
//! in memory ([`RecordedTrace`]) or on disk (streamed [`BlockReplay`]) —
//! behind `Trace::{replay, stamp, len}`, so consumers no longer care which
//! they were handed.

use crate::codec::{self, BlockReplay, Htrc2Header, DEFAULT_BLOCK_UOPS};
use crate::record::Fnv;
use crate::{EmuError, RecordedTrace, TraceIoError, TraceReplay, TraceStamp};
use helios_isa::{Program, ISA_VERSION};
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant, SystemTime};

/// A µ-op trace, wherever it lives: recorded in memory or resident in a
/// [`TraceStore`] file. Cloning is cheap (an `Arc` bump) and every clone
/// hands out independent [`Replay`] cursors.
#[derive(Clone, Debug)]
pub enum Trace {
    /// An in-memory recording (no store involved).
    Memory(RecordedTrace),
    /// An on-disk HTRC2 file, replayed block-at-a-time.
    Disk(Arc<DiskTrace>),
}

/// A verified HTRC2 file a [`Trace`] replays from.
#[derive(Debug)]
pub struct DiskTrace {
    path: PathBuf,
    header: Htrc2Header,
}

impl DiskTrace {
    /// Where the trace lives.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Trace {
    /// Executes `program` to completion and records every retired µ-op in
    /// memory. For anything run more than once, prefer
    /// [`TraceStore::get_or_record`], which persists the recording.
    ///
    /// # Errors
    ///
    /// Propagates fetch faults, and returns [`EmuError::OutOfFuel`] if the
    /// program does not halt within `fuel` µ-ops — a starved recording is
    /// an error, never a truncated trace.
    pub fn record(program: Program, fuel: u64) -> Result<Trace, EmuError> {
        Ok(Trace::Memory(RecordedTrace::capture(program, fuel)?))
    }

    /// A fresh, independent replay cursor (a pipeline
    /// [`UopSource`](crate::UopSource)).
    ///
    /// # Panics
    ///
    /// For a disk trace whose file was removed or corrupted *after*
    /// [`TraceStore::get_or_record`] verified it — the file changed under
    /// us, which a resilient sweep quarantines like any other cell fault.
    pub fn replay(&self) -> Replay {
        match self {
            Trace::Memory(t) => Replay::Memory(t.replay()),
            Trace::Disk(d) => Replay::Disk(Box::new(
                BlockReplay::open(&d.path).unwrap_or_else(|e| {
                    panic!("trace {} unreadable at replay: {e}", d.path.display())
                }),
            )),
        }
    }

    /// The trace's semantic integrity stamp ([`ISA_VERSION`] + FNV content
    /// checksum) — identical for the same recording whether it lives in
    /// memory, in a v1 file, or in an HTRC2 file.
    pub fn stamp(&self) -> TraceStamp {
        match self {
            Trace::Memory(t) => t.stamp(),
            Trace::Disk(d) => d.header.stamp,
        }
    }

    /// Number of retired µ-ops.
    pub fn len(&self) -> u64 {
        match self {
            Trace::Memory(t) => t.len() as u64,
            Trace::Disk(d) => d.header.uops,
        }
    }

    /// Whether the trace has no µ-ops.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Values the program reported through the `write` ecall, in order
    /// (workload checksums).
    pub fn output(&self) -> &[u64] {
        match self {
            Trace::Memory(t) => t.output(),
            Trace::Disk(d) => &d.header.output,
        }
    }
}

/// An independent replay cursor over a [`Trace`]: an
/// `Iterator<Item = Retired>` (hence a [`UopSource`](crate::UopSource)),
/// either walking a shared in-memory buffer or streaming an HTRC2 file
/// block-at-a-time with O(block) peak memory.
#[derive(Debug)]
pub enum Replay {
    /// Cursor over a shared in-memory recording.
    Memory(TraceReplay),
    /// Streaming block-decoder over an HTRC2 file (boxed: it owns a block
    /// buffer and register state, far larger than the memory cursor).
    Disk(Box<BlockReplay>),
}

impl Iterator for Replay {
    type Item = crate::Retired;

    #[inline]
    fn next(&mut self) -> Option<crate::Retired> {
        match self {
            Replay::Memory(r) => r.next(),
            Replay::Disk(r) => r.next(),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match self {
            Replay::Memory(r) => r.size_hint(),
            Replay::Disk(r) => r.size_hint(),
        }
    }
}

impl ExactSizeIterator for Replay {}

/// Why a [`TraceStore`] operation failed. Unlike [`TraceIoError`], these
/// are *store*-level failures — an unusable directory, an unrecordable
/// program, a writer that never released its lock. Corrupt *files* never
/// surface here; they are quarantined and re-recorded internally.
#[derive(Debug)]
pub enum StoreError {
    /// The store directory could not be created, read, or written.
    Io(String),
    /// The program itself failed to record (e.g. out of fuel). Retrying
    /// cannot help, so the error is returned rather than retried.
    Record(EmuError),
    /// A freshly recorded trace failed to encode — an emulator/codec
    /// invariant bug, surfaced loudly instead of degrading to re-recording.
    Encode(TraceIoError),
    /// Another writer held the recording lock past the store's timeout and
    /// its lock looked live (fresh mtime), so it was not stolen.
    LockTimeout {
        /// The lock file that never cleared.
        path: PathBuf,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "trace store i/o: {e}"),
            StoreError::Record(e) => write!(f, "{e}"),
            StoreError::Encode(e) => write!(f, "encoding recorded trace: {e}"),
            StoreError::LockTimeout { path } => write!(
                f,
                "timed out waiting for recording lock {} (another writer alive but stuck?)",
                path.display()
            ),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> StoreError {
        StoreError::Io(e.to_string())
    }
}

/// Monotonic counters a store accumulates over its lifetime (shared by all
/// clones of the handle). The sweep engine prints the per-sweep deltas as
/// the `trace store: N recorded, M hits, …` stderr summary CI greps.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Traces recorded live and written to the store.
    pub recorded: u64,
    /// Lookups satisfied by an existing verified file.
    pub hits: u64,
    /// Legacy v1 files re-encoded into HTRC2.
    pub migrated: u64,
    /// Corrupt or stale entries renamed to `*.corrupt` (then re-recorded).
    pub quarantined: u64,
}

impl StoreStats {
    /// Counter-wise difference (`self - earlier`), for per-sweep deltas.
    pub fn since(&self, earlier: &StoreStats) -> StoreStats {
        StoreStats {
            recorded: self.recorded - earlier.recorded,
            hits: self.hits - earlier.hits,
            migrated: self.migrated - earlier.migrated,
            quarantined: self.quarantined - earlier.quarantined,
        }
    }
}

/// One verified entry of the corpus, as reported by [`TraceStore::entries`]
/// and [`TraceStore::verify`].
#[derive(Clone, Debug)]
pub struct StoreEntry {
    /// The HTRC2 file.
    pub path: PathBuf,
    /// File size in bytes.
    pub bytes: u64,
    /// Workload name recorded in the header.
    pub name: String,
    /// Dynamic µ-ops in the trace.
    pub uops: u64,
    /// The semantic integrity stamp.
    pub stamp: TraceStamp,
}

/// What [`TraceStore::verify`] found: the verified corpus plus every file
/// that failed (with the failure), including unreadable legacy v1 files.
#[derive(Clone, Debug, Default)]
pub struct VerifyReport {
    /// Entries whose header and every block checksum verified.
    pub ok: Vec<StoreEntry>,
    /// Files that failed verification, with the reason.
    pub bad: Vec<(PathBuf, String)>,
}

/// What [`TraceStore::gc`] reclaimed.
#[derive(Clone, Copy, Debug, Default)]
pub struct GcReport {
    /// Files deleted (quarantine, temp litter, stale locks, corrupt or
    /// stale-ISA entries).
    pub removed: usize,
    /// Bytes those files occupied.
    pub bytes_reclaimed: u64,
}

struct StoreInner {
    dir: PathBuf,
    block_uops: u32,
    lock_timeout: Duration,
    recorded: AtomicU64,
    hits: AtomicU64,
    migrated: AtomicU64,
    quarantined: AtomicU64,
}

/// Handle to a content-addressed trace corpus directory. Cloning shares
/// the counters; handles are `Send + Sync` and safe to use from concurrent
/// sweep workers and concurrent *processes* (single-writer recording is
/// enforced with per-key lock files).
#[derive(Clone)]
pub struct TraceStore {
    inner: Arc<StoreInner>,
}

impl fmt::Debug for TraceStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TraceStore")
            .field("dir", &self.inner.dir)
            .field("stats", &self.stats())
            .finish()
    }
}

/// How long a waiter watches someone else's recording lock before declaring
/// it abandoned (crash mid-recording) and stealing it. Recording the
/// longest workload takes well under a second; two minutes is "the holder
/// is dead", not "the holder is slow".
const DEFAULT_LOCK_TIMEOUT: Duration = Duration::from_secs(120);

/// Poll interval while waiting on another writer's lock.
const LOCK_POLL: Duration = Duration::from_millis(25);

impl TraceStore {
    /// Opens (creating if needed) the store directory.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] if the directory cannot be created.
    pub fn open(dir: impl AsRef<Path>) -> Result<TraceStore, StoreError> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        Ok(TraceStore {
            inner: Arc::new(StoreInner {
                dir,
                block_uops: DEFAULT_BLOCK_UOPS,
                lock_timeout: DEFAULT_LOCK_TIMEOUT,
                recorded: AtomicU64::new(0),
                hits: AtomicU64::new(0),
                migrated: AtomicU64::new(0),
                quarantined: AtomicU64::new(0),
            }),
        })
    }

    /// [`TraceStore::open`] with a non-default block size and lock timeout
    /// (tests exercise multi-block framing and lock stealing cheaply).
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] if the directory cannot be created.
    pub fn open_tuned(
        dir: impl AsRef<Path>,
        block_uops: u32,
        lock_timeout: Duration,
    ) -> Result<TraceStore, StoreError> {
        let mut s = TraceStore::open(dir)?;
        let inner = Arc::get_mut(&mut s.inner).expect("freshly created handle is unshared");
        inner.block_uops = block_uops.max(1);
        inner.lock_timeout = lock_timeout;
        Ok(s)
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.inner.dir
    }

    /// The content address of `program` under the current emulator
    /// semantics: FNV-1a over [`ISA_VERSION`], the code image (base, entry,
    /// encoded words), and the initial data segments. Recording is strict
    /// (same program ⇒ same trace), so the program *is* the trace identity;
    /// fuel only bounds recording and does not participate.
    pub fn digest(program: &Program) -> u64 {
        let mut h = Fnv::new();
        h.u32(ISA_VERSION);
        h.u64(program.base);
        h.u64(program.entry);
        let words = program.words();
        h.u64(words.len() as u64);
        for w in words {
            h.u32(w);
        }
        h.u64(program.data.len() as u64);
        for (addr, bytes) in &program.data {
            h.u64(*addr);
            h.u64(bytes.len() as u64);
            for &b in bytes {
                h.u8(b);
            }
        }
        h.finish()
    }

    /// Lifetime counters (recorded / hits / migrated / quarantined).
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            recorded: self.inner.recorded.load(Ordering::Relaxed),
            hits: self.inner.hits.load(Ordering::Relaxed),
            migrated: self.inner.migrated.load(Ordering::Relaxed),
            quarantined: self.inner.quarantined.load(Ordering::Relaxed),
        }
    }

    fn keyed_path(&self, digest: u64) -> PathBuf {
        self.inner.dir.join(format!("{digest:016x}.htrc2"))
    }

    /// The trace for `program`, recording it if the store does not already
    /// hold it. `name` labels the entry (header metadata and the legacy v1
    /// filename to migrate from); identity is the program digest alone.
    ///
    /// Concurrency: the first caller per key records under a lock file;
    /// every other thread or process waits and then hits. A lock whose
    /// holder died (stale mtime) is stolen after the store's timeout.
    ///
    /// # Errors
    ///
    /// [`StoreError::Record`] if the program fails to execute,
    /// [`StoreError::Io`] / [`StoreError::LockTimeout`] for directory-level
    /// problems. Corrupt files are quarantined and re-recorded, never
    /// returned as errors.
    pub fn get_or_record(
        &self,
        name: &str,
        program: &Program,
        fuel: u64,
    ) -> Result<Trace, StoreError> {
        let digest = TraceStore::digest(program);
        let path = self.keyed_path(digest);
        loop {
            if path.exists() {
                match codec::verify_file(&path) {
                    Ok(header) => {
                        self.inner.hits.fetch_add(1, Ordering::Relaxed);
                        return Ok(Trace::Disk(Arc::new(DiskTrace { path, header })));
                    }
                    Err(e) => self.quarantine(&path, &e)?,
                }
            }
            match self.try_lock(digest)? {
                Some(guard) => {
                    // Double-check: another writer may have finished between
                    // our existence check and taking the lock.
                    if path.exists() {
                        drop(guard);
                        continue;
                    }
                    let trace = self.record_locked(name, program, fuel, &path)?;
                    drop(guard);
                    return Ok(trace);
                }
                None => {
                    // Someone else is recording this key; loop back and
                    // re-check for the finished file.
                    std::thread::sleep(LOCK_POLL);
                }
            }
        }
    }

    /// Records (or migrates) the keyed trace while holding its lock.
    fn record_locked(
        &self,
        name: &str,
        program: &Program,
        fuel: u64,
        path: &Path,
    ) -> Result<Trace, StoreError> {
        // Legacy migration: a raw v1 file from an older build, named by
        // workload, is re-encoded once instead of re-emulated.
        let v1_path = self.inner.dir.join(format!("{name}.htrc"));
        let rec = match self.migratable_v1(&v1_path, program)? {
            Some(rec) => {
                self.inner.migrated.fetch_add(1, Ordering::Relaxed);
                rec
            }
            None => {
                let rec = RecordedTrace::capture(program.clone(), fuel)
                    .map_err(StoreError::Record)?;
                self.inner.recorded.fetch_add(1, Ordering::Relaxed);
                rec
            }
        };
        let tmp = self
            .inner
            .dir
            .join(format!("{name}.{}.tmp", std::process::id()));
        let result: Result<(), StoreError> = (|| {
            let mut f = io::BufWriter::new(std::fs::File::create(&tmp)?);
            codec::encode_v2(
                rec.uops(),
                rec.output(),
                name,
                self.inner.block_uops,
                &mut f,
            )
            .map_err(|e| match e {
                TraceIoError::Io(io) => StoreError::Io(io),
                other => StoreError::Encode(other),
            })?;
            use std::io::Write as _;
            f.flush()?;
            std::fs::rename(&tmp, path)?;
            Ok(())
        })();
        if result.is_err() {
            std::fs::remove_file(&tmp).ok();
        }
        result?;
        // v1 content now lives in the store; drop the legacy file.
        std::fs::remove_file(&v1_path).ok();
        let header = codec::verify_file(path).map_err(|e| {
            StoreError::Io(format!("just-written {} fails verification: {e}", path.display()))
        })?;
        Ok(Trace::Disk(Arc::new(DiskTrace {
            path: path.to_path_buf(),
            header,
        })))
    }

    /// Loads and validates a legacy v1 file for `program`. `Ok(None)` means
    /// "no usable v1 file" (absent, corrupt — then quarantined — or
    /// recorded from a different program).
    fn migratable_v1(
        &self,
        v1_path: &Path,
        program: &Program,
    ) -> Result<Option<RecordedTrace>, StoreError> {
        if !v1_path.exists() {
            return Ok(None);
        }
        let rec = match RecordedTrace::load_v1_file(v1_path) {
            Ok(rec) => rec,
            Err(e) => {
                self.quarantine(v1_path, &e)?;
                return Ok(None);
            }
        };
        // The v1 filename is only a workload name; prove the content is
        // this program's execution before adopting it under the digest key.
        let uops = rec.uops();
        let consistent = uops.first().is_none_or(|f| f.pc == program.entry)
            && uops.iter().enumerate().all(|(i, u)| {
                u.seq == i as u64
                    && program.fetch(u.pc) == Some(&u.inst)
                    && (i == 0 || uops[i - 1].next_pc == u.pc)
            });
        if !consistent {
            self.quarantine(v1_path, &"recorded from a different program")?;
            return Ok(None);
        }
        Ok(Some(rec))
    }

    /// Renames a failed file to `<file>.corrupt` so it is preserved for
    /// diagnosis, out of the store's way, and reclaimable by `gc`.
    fn quarantine(&self, path: &Path, why: &dyn fmt::Display) -> Result<(), StoreError> {
        let mut to = path.as_os_str().to_os_string();
        to.push(".corrupt");
        eprintln!(
            "\rwarning: trace store: quarantining {} ({why})",
            path.display()
        );
        std::fs::rename(path, &to)?;
        self.inner.quarantined.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Tries to take the per-key recording lock. `Ok(None)` = someone else
    /// holds a live lock. A lock older than the store timeout is presumed
    /// abandoned by a crashed writer and stolen.
    fn try_lock(&self, digest: u64) -> Result<Option<LockGuard>, StoreError> {
        let path = self.inner.dir.join(format!("{digest:016x}.lock"));
        let deadline = Instant::now() + self.inner.lock_timeout;
        loop {
            match std::fs::OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(&path)
            {
                Ok(_) => return Ok(Some(LockGuard { path })),
                Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
                    let stale = std::fs::metadata(&path)
                        .and_then(|m| m.modified())
                        .map(|mtime| {
                            SystemTime::now()
                                .duration_since(mtime)
                                .unwrap_or_default()
                                > self.inner.lock_timeout
                        })
                        // Metadata failing usually means the lock was just
                        // released; retry the create.
                        .unwrap_or(true);
                    if stale {
                        // Steal atomically: rename-to-tombstone first, so
                        // exactly one of the waiters that observed the stale
                        // mtime claims it. Losers fall through and re-check —
                        // they find either the winner's *fresh* lock (live,
                        // so they wait) or no lock (and `create_new` above
                        // still picks a single writer). A remove-based steal
                        // would let the loser delete a lock the winner had
                        // already re-created, double-recording the key.
                        if self.steal_lock(&path) {
                            eprintln!(
                                "\rwarning: trace store: stealing stale recording lock {}",
                                path.display()
                            );
                        }
                        continue;
                    }
                    if Instant::now() >= deadline {
                        return Err(StoreError::LockTimeout { path });
                    }
                    return Ok(None);
                }
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// Atomically claims a stale lock: renames it to a unique tombstone
    /// (the commit point — at most one racing waiter's rename succeeds),
    /// then deletes the tombstone. Returns whether this caller won. A
    /// crash between the rename and the delete leaves only tombstone
    /// litter for [`TraceStore::gc`]; the key itself is already unlocked.
    fn steal_lock(&self, path: &Path) -> bool {
        static STEAL_SEQ: AtomicU64 = AtomicU64::new(0);
        let seq = STEAL_SEQ.fetch_add(1, Ordering::Relaxed);
        let mut tomb = path.as_os_str().to_os_string();
        tomb.push(format!(".steal.{}.{seq}", std::process::id()));
        if std::fs::rename(path, &tomb).is_err() {
            // Lost the race: another waiter renamed it first, or the owner
            // released the lock between our mtime check and the rename.
            return false;
        }
        std::fs::remove_file(&tomb).ok();
        true
    }

    /// Headers of every HTRC2 entry in the store (no block verification —
    /// cheap; `trace ls`). Legacy v1 files and quarantine are not listed.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] if the directory cannot be read.
    pub fn entries(&self) -> Result<Vec<StoreEntry>, StoreError> {
        let mut out = Vec::new();
        for (path, meta) in self.files_with_ext("htrc2")? {
            let mut f = io::BufReader::new(std::fs::File::open(&path)?);
            if let Ok(h) = codec::read_header(&mut f) {
                out.push(StoreEntry {
                    path,
                    bytes: meta.len(),
                    name: h.name,
                    uops: h.uops,
                    stamp: h.stamp,
                });
            }
        }
        out.sort_by(|a, b| a.name.cmp(&b.name).then_with(|| a.path.cmp(&b.path)));
        Ok(out)
    }

    /// Deep-verifies every file in the store: HTRC2 headers and all block
    /// checksums, plus legacy v1 files via their full stamp check. Nothing
    /// is modified — corrupt entries are *reported*, and quarantined only
    /// when next looked up (or reclaimed by [`TraceStore::gc`]).
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] if the directory cannot be read.
    pub fn verify(&self) -> Result<VerifyReport, StoreError> {
        let mut report = VerifyReport::default();
        for (path, meta) in self.files_with_ext("htrc2")? {
            match codec::verify_file(&path) {
                Ok(h) => report.ok.push(StoreEntry {
                    path,
                    bytes: meta.len(),
                    name: h.name,
                    uops: h.uops,
                    stamp: h.stamp,
                }),
                Err(e) => report.bad.push((path, e.to_string())),
            }
        }
        for (path, meta) in self.files_with_ext("htrc")? {
            match RecordedTrace::load_v1_file(&path) {
                Ok(rec) => report.ok.push(StoreEntry {
                    name: path
                        .file_stem()
                        .map(|s| s.to_string_lossy().into_owned())
                        .unwrap_or_default(),
                    bytes: meta.len(),
                    uops: rec.len() as u64,
                    stamp: rec.stamp(),
                    path,
                }),
                Err(e) => report.bad.push((path, e.to_string())),
            }
        }
        report
            .ok
            .sort_by(|a, b| a.name.cmp(&b.name).then_with(|| a.path.cmp(&b.path)));
        report.bad.sort();
        Ok(report)
    }

    /// Reclaims everything that is not a verifiable trace: quarantined
    /// `*.corrupt` files, abandoned `*.tmp` litter, stale lock files,
    /// steal tombstones left by a waiter that crashed mid-steal, and
    /// any trace file (v1 or v2) that no longer verifies. Healthy entries
    /// are untouched.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] if the directory cannot be read.
    pub fn gc(&self) -> Result<GcReport, StoreError> {
        let mut report = GcReport::default();
        let remove = |path: &Path, bytes: u64, report: &mut GcReport| {
            if std::fs::remove_file(path).is_ok() {
                report.removed += 1;
                report.bytes_reclaimed += bytes;
            }
        };
        for entry in std::fs::read_dir(&self.inner.dir)? {
            let entry = entry?;
            let path = entry.path();
            let Ok(meta) = entry.metadata() else { continue };
            if !meta.is_file() {
                continue;
            }
            let name = entry.file_name().to_string_lossy().into_owned();
            if name.ends_with(".corrupt") || name.contains(".tmp") {
                remove(&path, meta.len(), &mut report);
            } else if name.contains(".lock.steal.") {
                // A tombstone is dead by construction: the steal winner
                // deletes it immediately, so one on disk means a crash
                // between the rename and the delete.
                remove(&path, meta.len(), &mut report);
            } else if name.ends_with(".lock") {
                let stale = meta.modified().map_or(true, |mtime| {
                    SystemTime::now().duration_since(mtime).unwrap_or_default()
                        > self.inner.lock_timeout
                });
                if stale {
                    remove(&path, meta.len(), &mut report);
                }
            } else if name.ends_with(".htrc2") {
                if codec::verify_file(&path).is_err() {
                    remove(&path, meta.len(), &mut report);
                }
            } else if name.ends_with(".htrc") && RecordedTrace::load_v1_file(&path).is_err() {
                remove(&path, meta.len(), &mut report);
            }
        }
        Ok(report)
    }

    fn files_with_ext(&self, ext: &str) -> Result<Vec<(PathBuf, std::fs::Metadata)>, StoreError> {
        let mut out = Vec::new();
        for entry in std::fs::read_dir(&self.inner.dir)? {
            let entry = entry?;
            let path = entry.path();
            if path.extension().is_some_and(|e| e == ext) {
                if let Ok(meta) = entry.metadata() {
                    if meta.is_file() {
                        out.push((path, meta));
                    }
                }
            }
        }
        Ok(out)
    }
}

/// Deletes the lock file on drop, releasing the key to other writers.
struct LockGuard {
    path: PathBuf,
}

impl Drop for LockGuard {
    fn drop(&mut self) {
        std::fs::remove_file(&self.path).ok();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use helios_isa::parse_asm;

    const RICH: &str = "li a1, 0x1000\n\
                        li a0, 5\n\
                        top: sd a0, 0(a1)\n\
                        ld a2, 0(a1)\n\
                        addi a0, a0, -1\n\
                        bnez a0, top\n\
                        li a7, 64\n\
                        ecall\n\
                        ebreak";

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "helios-store-{tag}-{}",
            std::process::id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn records_once_then_hits() {
        let dir = scratch("hit");
        let store = TraceStore::open(&dir).unwrap();
        let prog = parse_asm(RICH).unwrap();
        let a = store.get_or_record("rich", &prog, 1000).unwrap();
        assert_eq!(
            store.stats(),
            StoreStats {
                recorded: 1,
                ..StoreStats::default()
            }
        );
        let b = store.get_or_record("rich", &prog, 1000).unwrap();
        assert_eq!(store.stats().hits, 1, "second lookup is a pure hit");
        assert_eq!(a.stamp(), b.stamp());
        let direct = Trace::record(prog, 1000).unwrap();
        assert_eq!(a.stamp(), direct.stamp(), "disk and memory stamps agree");
        let x: Vec<_> = a.replay().collect();
        let y: Vec<_> = direct.replay().collect();
        assert_eq!(x, y);
        assert_eq!(a.len(), x.len() as u64);
        assert_eq!(a.output(), direct.output());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn same_program_shares_one_entry_across_names() {
        let dir = scratch("alias");
        let store = TraceStore::open(&dir).unwrap();
        let prog = parse_asm(RICH).unwrap();
        store.get_or_record("first", &prog, 1000).unwrap();
        store.get_or_record("second", &prog, 1000).unwrap();
        assert_eq!(store.stats().recorded, 1, "content-addressed: one file");
        assert_eq!(store.entries().unwrap().len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_entry_is_quarantined_and_rerecorded() {
        let dir = scratch("corrupt");
        let store = TraceStore::open(&dir).unwrap();
        let prog = parse_asm(RICH).unwrap();
        store.get_or_record("rich", &prog, 1000).unwrap();
        let path = store.keyed_path(TraceStore::digest(&prog));
        let mut raw = std::fs::read(&path).unwrap();
        let mid = raw.len() / 2;
        raw[mid] ^= 0x40;
        std::fs::write(&path, &raw).unwrap();
        let t = store.get_or_record("rich", &prog, 1000).unwrap();
        assert_eq!(t.len(), Trace::record(prog, 1000).unwrap().len());
        let s = store.stats();
        assert_eq!((s.quarantined, s.recorded), (1, 2));
        assert!(path.with_extension("htrc2.corrupt").exists());
        let gc = store.gc().unwrap();
        assert_eq!(gc.removed, 1, "gc reclaims the quarantined file");
        assert!(path.exists(), "healthy entry untouched by gc");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn v1_file_is_migrated_not_rerecorded() {
        let dir = scratch("migrate");
        let store = TraceStore::open(&dir).unwrap();
        let prog = parse_asm(RICH).unwrap();
        let rec = RecordedTrace::capture(prog.clone(), 1000).unwrap();
        let v1 = dir.join("rich.htrc");
        rec.save_v1_file(&v1).unwrap();
        let t = store.get_or_record("rich", &prog, 1000).unwrap();
        let s = store.stats();
        assert_eq!((s.migrated, s.recorded), (1, 0), "re-encoded, not re-run");
        assert!(!v1.exists(), "legacy file consumed by migration");
        assert_eq!(t.stamp(), rec.stamp(), "identity survives re-encoding");
        let replayed: Vec<_> = t.replay().collect();
        assert_eq!(replayed.as_slice(), rec.uops());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn v1_file_from_wrong_program_is_rejected() {
        let dir = scratch("wrongv1");
        let store = TraceStore::open(&dir).unwrap();
        let other = parse_asm("li a0, 1\nebreak").unwrap();
        RecordedTrace::capture(other, 100)
            .unwrap()
            .save_v1_file(&dir.join("rich.htrc"))
            .unwrap();
        let prog = parse_asm(RICH).unwrap();
        store.get_or_record("rich", &prog, 1000).unwrap();
        let s = store.stats();
        assert_eq!((s.migrated, s.recorded, s.quarantined), (0, 1, 1));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn concurrent_get_or_record_records_exactly_once() {
        let dir = scratch("race");
        let store = TraceStore::open(&dir).unwrap();
        let prog = parse_asm(RICH).unwrap();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let store = store.clone();
                let prog = prog.clone();
                s.spawn(move || {
                    let t = store.get_or_record("rich", &prog, 1000).unwrap();
                    assert!(!t.is_empty());
                });
            }
        });
        let s = store.stats();
        assert_eq!(s.recorded, 1, "single-writer: {s:?}");
        assert_eq!(s.hits, 7, "everyone else hits: {s:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn concurrent_stale_lock_steal_records_exactly_once() {
        // Two waiters that both observe a dead owner's stale lock must not
        // both claim it: with a remove-based steal the slower waiter could
        // delete the winner's *fresh* lock and the key would be recorded
        // twice. Plant a dead-owner lock, age it past the store timeout,
        // then race 8 threads at the key.
        let dir = scratch("steal-race");
        let timeout = Duration::from_millis(500);
        let store = TraceStore::open_tuned(&dir, DEFAULT_BLOCK_UOPS, timeout).unwrap();
        let prog = parse_asm(RICH).unwrap();
        std::fs::write(
            dir.join(format!("{:016x}.lock", TraceStore::digest(&prog))),
            b"",
        )
        .unwrap();
        std::thread::sleep(timeout + Duration::from_millis(100));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let store = store.clone();
                let prog = prog.clone();
                s.spawn(move || {
                    let t = store.get_or_record("rich", &prog, 1000).unwrap();
                    assert!(!t.is_empty());
                });
            }
        });
        let s = store.stats();
        assert_eq!(s.recorded, 1, "exactly one steal winner records: {s:?}");
        assert_eq!(s.hits, 7, "every other waiter hits: {s:?}");
        let litter: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .filter(|n| n.contains(".steal.") || n.ends_with(".lock"))
            .collect();
        assert!(litter.is_empty(), "no lock or tombstone litter: {litter:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn gc_reclaims_steal_tombstones() {
        let dir = scratch("tombstone");
        let store = TraceStore::open(&dir).unwrap();
        std::fs::write(dir.join("00000000deadbeef.lock.steal.1.0"), b"").unwrap();
        let gc = store.gc().unwrap();
        assert_eq!(gc.removed, 1, "crash-abandoned tombstone reclaimed");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stale_lock_is_stolen() {
        let dir = scratch("stale");
        let store =
            TraceStore::open_tuned(&dir, DEFAULT_BLOCK_UOPS, Duration::from_millis(0)).unwrap();
        let prog = parse_asm(RICH).unwrap();
        // A lock file with no living owner (mtime in the past, timeout 0).
        std::fs::write(
            dir.join(format!("{:016x}.lock", TraceStore::digest(&prog))),
            b"",
        )
        .unwrap();
        let t = store.get_or_record("rich", &prog, 1000).unwrap();
        assert!(!t.is_empty());
        assert_eq!(store.stats().recorded, 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
