//! Retired-µ-op records: the interface between the functional emulator and
//! the cycle-level timing model.
//!
//! The paper couples a modified Spike to an in-house timing model by
//! injecting executed instructions into the pipeline (§V-A). [`Retired`]
//! is this reproduction's equivalent of that injection record: it carries
//! the oracle next-PC (branch outcome) and oracle effective address, which
//! the timing model uses to verify its branch and fusion predictions.

use helios_isa::Inst;

/// A source of retired µ-ops driving the timing model.
///
/// The pipeline is generic over this trait rather than over a concrete
/// emulator type, so the same model can be fed by a live [`Cpu`]
/// execution (`RetireStream`), a shared in-memory recording
/// ([`RecordedTrace`](crate::RecordedTrace) — record once, replay under
/// every fusion configuration), or a synthetic test generator.
///
/// Implementations must yield µ-ops in program order with dense `seq`
/// numbers starting at 0, and must be fused (return `None` forever once
/// exhausted).
///
/// Every `Iterator<Item = Retired>` is a `UopSource` via the blanket impl.
pub trait UopSource {
    /// The next retired µ-op in program order, or `None` at end of trace.
    fn next_uop(&mut self) -> Option<Retired>;
}

impl<I: Iterator<Item = Retired>> UopSource for I {
    #[inline]
    fn next_uop(&mut self) -> Option<Retired> {
        self.next()
    }
}

/// A memory access performed by a retired µ-op.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MemAccess {
    /// Effective (virtual = physical in this model) address of the first byte.
    pub addr: u64,
    /// Access size in bytes (1, 2, 4, or 8).
    pub size: u8,
    /// `true` for stores.
    pub is_store: bool,
}

impl MemAccess {
    /// Address of the last byte accessed.
    #[inline]
    pub fn last_byte(&self) -> u64 {
        self.addr + self.size as u64 - 1
    }

    /// Cache line address (for `line_bytes` sized lines, a power of two).
    #[inline]
    pub fn line(&self, line_bytes: u64) -> u64 {
        debug_assert!(line_bytes.is_power_of_two());
        self.addr & !(line_bytes - 1)
    }

    /// Whether the access straddles a cache line boundary.
    #[inline]
    pub fn crosses_line(&self, line_bytes: u64) -> bool {
        self.line(line_bytes) != (self.last_byte() & !(line_bytes - 1))
    }

    /// Whether two accesses overlap in at least one byte.
    #[inline]
    pub fn overlaps(&self, other: &MemAccess) -> bool {
        self.addr <= other.last_byte() && other.addr <= self.last_byte()
    }
}

/// One architecturally retired µ-op, in program order.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Retired {
    /// Dynamic µ-op sequence number (0-based).
    pub seq: u64,
    /// PC of this µ-op.
    pub pc: u64,
    /// The instruction.
    pub inst: Inst,
    /// PC of the next retired µ-op (encodes taken/not-taken and targets).
    pub next_pc: u64,
    /// Memory access, for loads and stores.
    pub mem: Option<MemAccess>,
    /// Value written to the destination register, if any.
    pub rd_value: Option<u64>,
}

impl Retired {
    /// Whether the µ-op redirected control flow (taken branch or jump).
    #[inline]
    pub fn control_taken(&self) -> bool {
        self.next_pc != self.pc + 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlap_and_lines() {
        let a = MemAccess {
            addr: 0x100,
            size: 8,
            is_store: false,
        };
        let b = MemAccess {
            addr: 0x107,
            size: 1,
            is_store: false,
        };
        let c = MemAccess {
            addr: 0x108,
            size: 8,
            is_store: false,
        };
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
        assert_eq!(a.line(64), 0x100);
        assert!(!a.crosses_line(64));
        let d = MemAccess {
            addr: 0x13c,
            size: 8,
            is_store: false,
        };
        assert!(d.crosses_line(64));
    }

    #[test]
    fn control_taken() {
        let r = Retired {
            seq: 0,
            pc: 0x1000,
            inst: Inst::NOP,
            next_pc: 0x1004,
            mem: None,
            rd_value: None,
        };
        assert!(!r.control_taken());
        let r = Retired { next_pc: 0x2000, ..r };
        assert!(r.control_taken());
    }
}
