//! Randomized tests for the emulator: memory semantics and load
//! sign-extension against a reference model, driven by a seeded
//! deterministic generator (helios-prng).

use helios_emu::{Cpu, Memory};
use helios_isa::{Asm, Reg};
use helios_prng::{Rng, SeedableRng, StdRng};

/// Memory write→read round trip for every size, anywhere (including
/// page boundaries).
#[test]
fn memory_roundtrip() {
    let mut rng = StdRng::seed_from_u64(0xe40_0001);
    for _ in 0..2_000 {
        let addr = rng.gen_range(0..1u64 << 40);
        let value: u64 = rng.gen();
        let size = [1u64, 2, 4, 8][rng.gen_range(0..4usize)];
        let mut m = Memory::new();
        let masked = if size == 8 {
            value
        } else {
            value & ((1 << (8 * size)) - 1)
        };
        m.write(addr, size, value);
        assert_eq!(m.read(addr, size), masked, "addr {addr:#x} size {size}");
    }
}

/// Writes to one location never disturb a disjoint location.
#[test]
fn memory_disjoint_writes() {
    let mut rng = StdRng::seed_from_u64(0xe40_0002);
    let mut tried = 0;
    while tried < 1_000 {
        let a = rng.gen_range(0..1u64 << 20);
        let b = rng.gen_range(0..1u64 << 20);
        if a.abs_diff(b) < 8 {
            continue;
        }
        tried += 1;
        let (va, vb): (u64, u64) = (rng.gen(), rng.gen());
        let mut m = Memory::new();
        m.write(a, 8, va);
        m.write(b, 8, vb);
        assert_eq!(m.read(a, 8), va);
        assert_eq!(m.read(b, 8), vb);
    }
}

/// Byte-wise and word-wise views agree (little-endian).
#[test]
fn memory_byte_view() {
    let mut rng = StdRng::seed_from_u64(0xe40_0003);
    for _ in 0..1_000 {
        let addr = rng.gen_range(0..1u64 << 20);
        let value: u64 = rng.gen();
        let mut m = Memory::new();
        m.write(addr, 8, value);
        for i in 0..8 {
            assert_eq!(m.read_u8(addr + i), (value >> (8 * i)) as u8);
        }
    }
}

/// Each load flavour sign/zero-extends exactly like the reference.
#[test]
fn load_extension_semantics() {
    let mut rng = StdRng::seed_from_u64(0xe40_0004);
    // Mix random values with boundary patterns that stress the sign bit.
    let mut values: Vec<u64> = (0..100).map(|_| rng.gen()).collect();
    values.extend([0, u64::MAX, 0x7f, 0x80, 0x7fff, 0x8000, 0x7fff_ffff, 0x8000_0000]);
    for value in values {
        let mut a = Asm::new();
        let buf = a.words64(&[value]);
        a.la(Reg::S0, buf);
        a.lb(Reg::A0, 0, Reg::S0);
        a.lbu(Reg::A1, 0, Reg::S0);
        a.lh(Reg::A2, 0, Reg::S0);
        a.lhu(Reg::A3, 0, Reg::S0);
        a.lw(Reg::A4, 0, Reg::S0);
        a.lwu(Reg::A5, 0, Reg::S0);
        a.ld(Reg::A6, 0, Reg::S0);
        a.halt();
        let mut cpu = Cpu::new(a.assemble().unwrap());
        cpu.run(100).unwrap();
        assert_eq!(cpu.reg(Reg::A0), value as u8 as i8 as i64 as u64);
        assert_eq!(cpu.reg(Reg::A1), value as u8 as u64);
        assert_eq!(cpu.reg(Reg::A2), value as u16 as i16 as i64 as u64);
        assert_eq!(cpu.reg(Reg::A3), value as u16 as u64);
        assert_eq!(cpu.reg(Reg::A4), value as u32 as i32 as i64 as u64);
        assert_eq!(cpu.reg(Reg::A5), value as u32 as u64);
        assert_eq!(cpu.reg(Reg::A6), value);
    }
}

/// ALU register ops match Rust's wrapping semantics.
#[test]
fn alu_matches_rust() {
    let mut rng = StdRng::seed_from_u64(0xe40_0005);
    for _ in 0..200 {
        let (a_val, b_val): (u64, u64) = (rng.gen(), rng.gen());
        let mut a = Asm::new();
        a.li(Reg::A0, a_val as i64);
        a.li(Reg::A1, b_val as i64);
        a.add(Reg::T0, Reg::A0, Reg::A1);
        a.sub(Reg::T1, Reg::A0, Reg::A1);
        a.mul(Reg::T2, Reg::A0, Reg::A1);
        a.xor(Reg::T3, Reg::A0, Reg::A1);
        a.sltu(Reg::T4, Reg::A0, Reg::A1);
        a.halt();
        let mut cpu = Cpu::new(a.assemble().unwrap());
        cpu.run(100).unwrap();
        assert_eq!(cpu.reg(Reg::A0), a_val, "li must load the exact value");
        assert_eq!(cpu.reg(Reg::T0), a_val.wrapping_add(b_val));
        assert_eq!(cpu.reg(Reg::T1), a_val.wrapping_sub(b_val));
        assert_eq!(cpu.reg(Reg::T2), a_val.wrapping_mul(b_val));
        assert_eq!(cpu.reg(Reg::T3), a_val ^ b_val);
        assert_eq!(cpu.reg(Reg::T4), (a_val < b_val) as u64);
    }
}

/// Retired sequence numbers are dense and in order for any program.
#[test]
fn retire_stream_is_dense() {
    let mut rng = StdRng::seed_from_u64(0xe40_0006);
    for _ in 0..50 {
        let n = rng.gen_range(1..200u64);
        let mut a = Asm::new();
        a.li(Reg::A0, n as i64);
        let top = a.here();
        a.addi(Reg::A0, Reg::A0, -1);
        a.bnez(Reg::A0, top);
        a.halt();
        let stream = helios_emu::RetireStream::new(a.assemble().unwrap(), 1_000_000);
        for (i, r) in stream.enumerate() {
            assert_eq!(r.seq, i as u64);
        }
    }
}
