//! Property tests for the emulator: memory semantics and load
//! sign-extension against a reference model.

use helios_emu::{Cpu, Memory};
use helios_isa::{Asm, Reg};
use proptest::prelude::*;

proptest! {
    /// Memory write→read round trip for every size, anywhere (including
    /// page boundaries).
    #[test]
    fn memory_roundtrip(addr in 0u64..1u64 << 40, value in any::<u64>(),
                        size in prop_oneof![Just(1u64), Just(2), Just(4), Just(8)]) {
        let mut m = Memory::new();
        let masked = if size == 8 { value } else { value & ((1 << (8 * size)) - 1) };
        m.write(addr, size, value);
        prop_assert_eq!(m.read(addr, size), masked);
    }

    /// Writes to one location never disturb a disjoint location.
    #[test]
    fn memory_disjoint_writes(a in 0u64..1u64 << 20, b in 0u64..1u64 << 20,
                              va in any::<u64>(), vb in any::<u64>()) {
        prop_assume!(a.abs_diff(b) >= 8);
        let mut m = Memory::new();
        m.write(a, 8, va);
        m.write(b, 8, vb);
        prop_assert_eq!(m.read(a, 8), va);
        prop_assert_eq!(m.read(b, 8), vb);
    }

    /// Byte-wise and word-wise views agree (little-endian).
    #[test]
    fn memory_byte_view(addr in 0u64..1u64 << 20, value in any::<u64>()) {
        let mut m = Memory::new();
        m.write(addr, 8, value);
        for i in 0..8 {
            prop_assert_eq!(m.read_u8(addr + i), (value >> (8 * i)) as u8);
        }
    }

    /// Each load flavour sign/zero-extends exactly like the reference.
    #[test]
    fn load_extension_semantics(value in any::<u64>()) {
        let mut a = Asm::new();
        let buf = a.words64(&[value]);
        a.la(Reg::S0, buf);
        a.lb(Reg::A0, 0, Reg::S0);
        a.lbu(Reg::A1, 0, Reg::S0);
        a.lh(Reg::A2, 0, Reg::S0);
        a.lhu(Reg::A3, 0, Reg::S0);
        a.lw(Reg::A4, 0, Reg::S0);
        a.lwu(Reg::A5, 0, Reg::S0);
        a.ld(Reg::A6, 0, Reg::S0);
        a.halt();
        let mut cpu = Cpu::new(a.assemble().unwrap());
        cpu.run(100).unwrap();
        prop_assert_eq!(cpu.reg(Reg::A0), value as u8 as i8 as i64 as u64);
        prop_assert_eq!(cpu.reg(Reg::A1), value as u8 as u64);
        prop_assert_eq!(cpu.reg(Reg::A2), value as u16 as i16 as i64 as u64);
        prop_assert_eq!(cpu.reg(Reg::A3), value as u16 as u64);
        prop_assert_eq!(cpu.reg(Reg::A4), value as u32 as i32 as i64 as u64);
        prop_assert_eq!(cpu.reg(Reg::A5), value as u32 as u64);
        prop_assert_eq!(cpu.reg(Reg::A6), value);
    }

    /// ALU register ops match Rust's wrapping semantics.
    #[test]
    fn alu_matches_rust(a_val in any::<u64>(), b_val in any::<u64>()) {
        let mut a = Asm::new();
        a.li(Reg::A0, a_val as i64);
        a.li(Reg::A1, b_val as i64);
        a.add(Reg::T0, Reg::A0, Reg::A1);
        a.sub(Reg::T1, Reg::A0, Reg::A1);
        a.mul(Reg::T2, Reg::A0, Reg::A1);
        a.xor(Reg::T3, Reg::A0, Reg::A1);
        a.sltu(Reg::T4, Reg::A0, Reg::A1);
        a.halt();
        let mut cpu = Cpu::new(a.assemble().unwrap());
        cpu.run(100).unwrap();
        prop_assert_eq!(cpu.reg(Reg::A0), a_val, "li must load the exact value");
        prop_assert_eq!(cpu.reg(Reg::T0), a_val.wrapping_add(b_val));
        prop_assert_eq!(cpu.reg(Reg::T1), a_val.wrapping_sub(b_val));
        prop_assert_eq!(cpu.reg(Reg::T2), a_val.wrapping_mul(b_val));
        prop_assert_eq!(cpu.reg(Reg::T3), a_val ^ b_val);
        prop_assert_eq!(cpu.reg(Reg::T4), (a_val < b_val) as u64);
    }

    /// Retired sequence numbers are dense and in order for any program.
    #[test]
    fn retire_stream_is_dense(n in 1u64..200) {
        let mut a = Asm::new();
        a.li(Reg::A0, n as i64);
        let top = a.here();
        a.addi(Reg::A0, Reg::A0, -1);
        a.bnez(Reg::A0, top);
        a.halt();
        let stream = helios_emu::RetireStream::new(a.assemble().unwrap(), 1_000_000);
        for (i, r) in stream.enumerate() {
            prop_assert_eq!(r.seq, i as u64);
        }
    }
}
