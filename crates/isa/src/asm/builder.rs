//! Programmatic assembler with labels, pseudo-instructions, and a static
//! data segment.
//!
//! The assembler is how this repository's workloads are written: it plays the
//! role GCC played in the paper, emitting the idiomatic RV64 sequences
//! (`lui+addi` constants, stack save/restore runs, `slli+add` addressing) that
//! the fusion machinery targets.

use super::Program;
use crate::{AluImmOp, AluOp, BranchKind, Inst, MemWidth, Reg};
use std::fmt;

/// A code label. Create with [`Asm::new_label`], place with [`Asm::bind`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Label(usize);

/// Error produced when a program cannot be assembled.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum AsmError {
    /// A label was referenced but never bound.
    UnboundLabel(Label),
    /// A branch target is outside the ±4 KiB B-type range.
    BranchOutOfRange { at: usize, offset: i64 },
    /// A jump target is outside the ±1 MiB J-type range.
    JumpOutOfRange { at: usize, offset: i64 },
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UnboundLabel(l) => write!(f, "label {l:?} was never bound"),
            AsmError::BranchOutOfRange { at, offset } => {
                write!(f, "branch at instruction {at} has out-of-range offset {offset}")
            }
            AsmError::JumpOutOfRange { at, offset } => {
                write!(f, "jump at instruction {at} has out-of-range offset {offset}")
            }
        }
    }
}

impl std::error::Error for AsmError {}

enum Entry {
    Fixed(Inst),
    Branch {
        kind: BranchKind,
        rs1: Reg,
        rs2: Reg,
        target: Label,
    },
    Jal {
        rd: Reg,
        target: Label,
    },
}

/// Incremental program builder.
///
/// Every emitted entry is exactly one instruction, so label offsets are
/// resolved in a single pass at [`Asm::assemble`] time. Pseudo-instructions
/// (`li`, `mv`, ...) expand eagerly into their real sequences.
///
/// # Examples
///
/// ```
/// use helios_isa::{Asm, Reg};
/// let mut a = Asm::new();
/// let done = a.new_label();
/// a.li(Reg::A0, 10);
/// let top = a.here();
/// a.addi(Reg::A0, Reg::A0, -1);
/// a.beqz(Reg::A0, done);
/// a.j(top);
/// a.bind(done);
/// a.halt();
/// let prog = a.assemble()?;
/// assert!(prog.len() > 4);
/// # Ok::<(), helios_isa::AsmError>(())
/// ```
pub struct Asm {
    entries: Vec<Entry>,
    labels: Vec<Option<usize>>,
    base: u64,
    data_base: u64,
    data_cursor: u64,
    data: Vec<(u64, Vec<u8>)>,
}

/// Default address of the first instruction.
pub const DEFAULT_CODE_BASE: u64 = 0x0001_0000;
/// Default start of the static data region.
pub const DEFAULT_DATA_BASE: u64 = 0x0100_0000;
/// Default initial stack pointer (grows down).
pub const DEFAULT_STACK_TOP: u64 = 0x7fff_f000;

impl Asm {
    /// Creates an assembler with the default code/data layout.
    pub fn new() -> Asm {
        Asm::with_bases(DEFAULT_CODE_BASE, DEFAULT_DATA_BASE)
    }

    /// Creates an assembler with explicit code and data base addresses.
    pub fn with_bases(code_base: u64, data_base: u64) -> Asm {
        assert!(code_base.is_multiple_of(4), "code base must be 4-byte aligned");
        Asm {
            entries: Vec::new(),
            labels: Vec::new(),
            base: code_base,
            data_base,
            data_cursor: data_base,
            data: Vec::new(),
        }
    }

    /// Creates a fresh, unbound label.
    pub fn new_label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the current position.
    ///
    /// # Panics
    ///
    /// Panics if the label was already bound.
    pub fn bind(&mut self, label: Label) {
        let slot = &mut self.labels[label.0];
        assert!(slot.is_none(), "label bound twice");
        *slot = Some(self.entries.len());
    }

    /// Creates a label already bound to the current position.
    pub fn here(&mut self) -> Label {
        let l = self.new_label();
        self.bind(l);
        l
    }

    /// Number of instructions emitted so far.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no instructions have been emitted.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Start address of the static data region.
    pub fn data_base(&self) -> u64 {
        self.data_base
    }

    /// Emits a raw instruction.
    pub fn inst(&mut self, inst: Inst) -> &mut Self {
        self.entries.push(Entry::Fixed(inst));
        self
    }

    // ---- data segment ------------------------------------------------

    /// Reserves `len` zeroed bytes in the data segment, aligned to `align`,
    /// and returns their address.
    pub fn zeros(&mut self, len: u64, align: u64) -> u64 {
        self.bytes_aligned(vec![0u8; len as usize], align)
    }

    /// Places `bytes` in the data segment aligned to `align`; returns the address.
    pub fn bytes_aligned(&mut self, bytes: Vec<u8>, align: u64) -> u64 {
        assert!(align.is_power_of_two());
        let addr = (self.data_cursor + align - 1) & !(align - 1);
        self.data_cursor = addr + bytes.len() as u64;
        self.data.push((addr, bytes));
        addr
    }

    /// Places a little-endian `u64` array in the data segment; returns its address.
    pub fn words64(&mut self, words: &[u64]) -> u64 {
        let bytes = words.iter().flat_map(|w| w.to_le_bytes()).collect();
        self.bytes_aligned(bytes, 8)
    }

    /// Places a little-endian `u32` array in the data segment; returns its address.
    pub fn words32(&mut self, words: &[u32]) -> u64 {
        let bytes = words.iter().flat_map(|w| w.to_le_bytes()).collect();
        self.bytes_aligned(bytes, 8)
    }

    // ---- ALU ----------------------------------------------------------

    /// `op rd, rs1, imm`
    pub fn op_imm(&mut self, op: AluImmOp, rd: Reg, rs1: Reg, imm: i32) -> &mut Self {
        self.inst(Inst::OpImm { op, rd, rs1, imm })
    }

    /// `op rd, rs1, rs2`
    pub fn op(&mut self, op: AluOp, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.inst(Inst::Op { op, rd, rs1, rs2 })
    }

    pub fn addi(&mut self, rd: Reg, rs1: Reg, imm: i32) -> &mut Self {
        self.op_imm(AluImmOp::Addi, rd, rs1, imm)
    }
    pub fn addiw(&mut self, rd: Reg, rs1: Reg, imm: i32) -> &mut Self {
        self.op_imm(AluImmOp::Addiw, rd, rs1, imm)
    }
    pub fn andi(&mut self, rd: Reg, rs1: Reg, imm: i32) -> &mut Self {
        self.op_imm(AluImmOp::Andi, rd, rs1, imm)
    }
    pub fn ori(&mut self, rd: Reg, rs1: Reg, imm: i32) -> &mut Self {
        self.op_imm(AluImmOp::Ori, rd, rs1, imm)
    }
    pub fn xori(&mut self, rd: Reg, rs1: Reg, imm: i32) -> &mut Self {
        self.op_imm(AluImmOp::Xori, rd, rs1, imm)
    }
    pub fn slti(&mut self, rd: Reg, rs1: Reg, imm: i32) -> &mut Self {
        self.op_imm(AluImmOp::Slti, rd, rs1, imm)
    }
    pub fn sltiu(&mut self, rd: Reg, rs1: Reg, imm: i32) -> &mut Self {
        self.op_imm(AluImmOp::Sltiu, rd, rs1, imm)
    }
    pub fn slli(&mut self, rd: Reg, rs1: Reg, shamt: i32) -> &mut Self {
        self.op_imm(AluImmOp::Slli, rd, rs1, shamt)
    }
    pub fn srli(&mut self, rd: Reg, rs1: Reg, shamt: i32) -> &mut Self {
        self.op_imm(AluImmOp::Srli, rd, rs1, shamt)
    }
    pub fn srai(&mut self, rd: Reg, rs1: Reg, shamt: i32) -> &mut Self {
        self.op_imm(AluImmOp::Srai, rd, rs1, shamt)
    }
    pub fn slliw(&mut self, rd: Reg, rs1: Reg, shamt: i32) -> &mut Self {
        self.op_imm(AluImmOp::Slliw, rd, rs1, shamt)
    }
    pub fn srliw(&mut self, rd: Reg, rs1: Reg, shamt: i32) -> &mut Self {
        self.op_imm(AluImmOp::Srliw, rd, rs1, shamt)
    }
    pub fn sraiw(&mut self, rd: Reg, rs1: Reg, shamt: i32) -> &mut Self {
        self.op_imm(AluImmOp::Sraiw, rd, rs1, shamt)
    }

    pub fn add(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.op(AluOp::Add, rd, rs1, rs2)
    }
    pub fn addw(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.op(AluOp::Addw, rd, rs1, rs2)
    }
    pub fn sub(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.op(AluOp::Sub, rd, rs1, rs2)
    }
    pub fn subw(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.op(AluOp::Subw, rd, rs1, rs2)
    }
    pub fn and(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.op(AluOp::And, rd, rs1, rs2)
    }
    pub fn or(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.op(AluOp::Or, rd, rs1, rs2)
    }
    pub fn xor(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.op(AluOp::Xor, rd, rs1, rs2)
    }
    pub fn sll(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.op(AluOp::Sll, rd, rs1, rs2)
    }
    pub fn srl(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.op(AluOp::Srl, rd, rs1, rs2)
    }
    pub fn sra(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.op(AluOp::Sra, rd, rs1, rs2)
    }
    pub fn slt(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.op(AluOp::Slt, rd, rs1, rs2)
    }
    pub fn sltu(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.op(AluOp::Sltu, rd, rs1, rs2)
    }
    pub fn mul(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.op(AluOp::Mul, rd, rs1, rs2)
    }
    pub fn mulw(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.op(AluOp::Mulw, rd, rs1, rs2)
    }
    pub fn div(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.op(AluOp::Div, rd, rs1, rs2)
    }
    pub fn divu(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.op(AluOp::Divu, rd, rs1, rs2)
    }
    pub fn rem(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.op(AluOp::Rem, rd, rs1, rs2)
    }
    pub fn remu(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.op(AluOp::Remu, rd, rs1, rs2)
    }

    pub fn lui(&mut self, rd: Reg, imm20: i32) -> &mut Self {
        self.inst(Inst::Lui { rd, imm20 })
    }
    pub fn auipc(&mut self, rd: Reg, imm20: i32) -> &mut Self {
        self.inst(Inst::Auipc { rd, imm20 })
    }

    // ---- memory --------------------------------------------------------

    pub fn load(&mut self, width: MemWidth, signed: bool, rd: Reg, offset: i32, rs1: Reg) -> &mut Self {
        self.inst(Inst::Load {
            width,
            signed,
            rd,
            rs1,
            offset,
        })
    }
    pub fn store(&mut self, width: MemWidth, rs2: Reg, offset: i32, rs1: Reg) -> &mut Self {
        self.inst(Inst::Store {
            width,
            rs2,
            rs1,
            offset,
        })
    }

    pub fn ld(&mut self, rd: Reg, offset: i32, rs1: Reg) -> &mut Self {
        self.load(MemWidth::D, true, rd, offset, rs1)
    }
    pub fn lw(&mut self, rd: Reg, offset: i32, rs1: Reg) -> &mut Self {
        self.load(MemWidth::W, true, rd, offset, rs1)
    }
    pub fn lwu(&mut self, rd: Reg, offset: i32, rs1: Reg) -> &mut Self {
        self.load(MemWidth::W, false, rd, offset, rs1)
    }
    pub fn lh(&mut self, rd: Reg, offset: i32, rs1: Reg) -> &mut Self {
        self.load(MemWidth::H, true, rd, offset, rs1)
    }
    pub fn lhu(&mut self, rd: Reg, offset: i32, rs1: Reg) -> &mut Self {
        self.load(MemWidth::H, false, rd, offset, rs1)
    }
    pub fn lb(&mut self, rd: Reg, offset: i32, rs1: Reg) -> &mut Self {
        self.load(MemWidth::B, true, rd, offset, rs1)
    }
    pub fn lbu(&mut self, rd: Reg, offset: i32, rs1: Reg) -> &mut Self {
        self.load(MemWidth::B, false, rd, offset, rs1)
    }
    pub fn sd(&mut self, rs2: Reg, offset: i32, rs1: Reg) -> &mut Self {
        self.store(MemWidth::D, rs2, offset, rs1)
    }
    pub fn sw(&mut self, rs2: Reg, offset: i32, rs1: Reg) -> &mut Self {
        self.store(MemWidth::W, rs2, offset, rs1)
    }
    pub fn sh(&mut self, rs2: Reg, offset: i32, rs1: Reg) -> &mut Self {
        self.store(MemWidth::H, rs2, offset, rs1)
    }
    pub fn sb(&mut self, rs2: Reg, offset: i32, rs1: Reg) -> &mut Self {
        self.store(MemWidth::B, rs2, offset, rs1)
    }

    // ---- control flow ---------------------------------------------------

    pub fn branch(&mut self, kind: BranchKind, rs1: Reg, rs2: Reg, target: Label) -> &mut Self {
        self.entries.push(Entry::Branch {
            kind,
            rs1,
            rs2,
            target,
        });
        self
    }

    pub fn beq(&mut self, rs1: Reg, rs2: Reg, target: Label) -> &mut Self {
        self.branch(BranchKind::Eq, rs1, rs2, target)
    }
    pub fn bne(&mut self, rs1: Reg, rs2: Reg, target: Label) -> &mut Self {
        self.branch(BranchKind::Ne, rs1, rs2, target)
    }
    pub fn blt(&mut self, rs1: Reg, rs2: Reg, target: Label) -> &mut Self {
        self.branch(BranchKind::Lt, rs1, rs2, target)
    }
    pub fn bge(&mut self, rs1: Reg, rs2: Reg, target: Label) -> &mut Self {
        self.branch(BranchKind::Ge, rs1, rs2, target)
    }
    pub fn bltu(&mut self, rs1: Reg, rs2: Reg, target: Label) -> &mut Self {
        self.branch(BranchKind::Ltu, rs1, rs2, target)
    }
    pub fn bgeu(&mut self, rs1: Reg, rs2: Reg, target: Label) -> &mut Self {
        self.branch(BranchKind::Geu, rs1, rs2, target)
    }
    pub fn beqz(&mut self, rs1: Reg, target: Label) -> &mut Self {
        self.beq(rs1, Reg::ZERO, target)
    }
    pub fn bnez(&mut self, rs1: Reg, target: Label) -> &mut Self {
        self.bne(rs1, Reg::ZERO, target)
    }
    pub fn bltz(&mut self, rs1: Reg, target: Label) -> &mut Self {
        self.blt(rs1, Reg::ZERO, target)
    }
    pub fn bgez(&mut self, rs1: Reg, target: Label) -> &mut Self {
        self.bge(rs1, Reg::ZERO, target)
    }
    pub fn bgtz(&mut self, rs1: Reg, target: Label) -> &mut Self {
        self.blt(Reg::ZERO, rs1, target)
    }
    pub fn blez(&mut self, rs1: Reg, target: Label) -> &mut Self {
        self.bge(Reg::ZERO, rs1, target)
    }

    /// `jal rd, target`
    pub fn jal(&mut self, rd: Reg, target: Label) -> &mut Self {
        self.entries.push(Entry::Jal { rd, target });
        self
    }

    /// Unconditional jump (`jal x0, target`).
    pub fn j(&mut self, target: Label) -> &mut Self {
        self.jal(Reg::ZERO, target)
    }

    /// Function call (`jal ra, target`).
    pub fn call(&mut self, target: Label) -> &mut Self {
        self.jal(Reg::RA, target)
    }

    /// Function return (`jalr x0, 0(ra)`).
    pub fn ret(&mut self) -> &mut Self {
        self.inst(Inst::Jalr {
            rd: Reg::ZERO,
            rs1: Reg::RA,
            offset: 0,
        })
    }

    /// Indirect jump (`jalr x0, 0(rs1)`).
    pub fn jr(&mut self, rs1: Reg) -> &mut Self {
        self.inst(Inst::Jalr {
            rd: Reg::ZERO,
            rs1,
            offset: 0,
        })
    }

    /// Indirect call (`jalr ra, 0(rs1)`).
    pub fn jalr_ra(&mut self, rs1: Reg) -> &mut Self {
        self.inst(Inst::Jalr {
            rd: Reg::RA,
            rs1,
            offset: 0,
        })
    }

    // ---- pseudo ----------------------------------------------------------

    /// `nop`
    pub fn nop(&mut self) -> &mut Self {
        self.inst(Inst::NOP)
    }

    /// `mv rd, rs` (`addi rd, rs, 0`).
    pub fn mv(&mut self, rd: Reg, rs: Reg) -> &mut Self {
        self.addi(rd, rs, 0)
    }

    /// `neg rd, rs` (`sub rd, x0, rs`).
    pub fn neg(&mut self, rd: Reg, rs: Reg) -> &mut Self {
        self.sub(rd, Reg::ZERO, rs)
    }

    /// `not rd, rs` (`xori rd, rs, -1`).
    pub fn not(&mut self, rd: Reg, rs: Reg) -> &mut Self {
        self.xori(rd, rs, -1)
    }

    /// `seqz rd, rs` (`sltiu rd, rs, 1`).
    pub fn seqz(&mut self, rd: Reg, rs: Reg) -> &mut Self {
        self.sltiu(rd, rs, 1)
    }

    /// `snez rd, rs` (`sltu rd, x0, rs`).
    pub fn snez(&mut self, rd: Reg, rs: Reg) -> &mut Self {
        self.sltu(rd, Reg::ZERO, rs)
    }

    /// Loads an arbitrary 64-bit constant, expanding into the canonical
    /// `lui`/`addi`(/`slli`/`addi`...) sequence a compiler would emit.
    pub fn li(&mut self, rd: Reg, value: i64) -> &mut Self {
        self.li_inner(rd, value);
        self
    }

    fn li_inner(&mut self, rd: Reg, value: i64) {
        if (-2048..=2047).contains(&value) {
            self.addi(rd, Reg::ZERO, value as i32);
            return;
        }
        if value == value as i32 as i64 {
            // 32-bit signed: lui + addiw.
            let v = value as i32;
            let lo = (v << 20) >> 20; // low 12 bits, sign extended
            let hi = (v.wrapping_sub(lo)) >> 12;
            self.lui(rd, hi);
            if lo != 0 {
                self.addiw(rd, rd, lo);
            }
            return;
        }
        // General 64-bit: build upper part, shift, or in lower chunks.
        let upper = value >> 32;
        let lower = value & 0xffff_ffff;
        self.li_inner(rd, upper);
        self.slli(rd, rd, 12);
        self.addi_chunk(rd, (lower >> 20) as i32 & 0xfff);
        self.slli(rd, rd, 12);
        self.addi_chunk(rd, (lower >> 8) as i32 & 0xfff);
        self.slli(rd, rd, 8);
        self.addi_chunk(rd, lower as i32 & 0xff);
    }

    fn addi_chunk(&mut self, rd: Reg, chunk: i32) {
        debug_assert!((0..4096).contains(&chunk));
        if chunk >= 2048 {
            // Split into several adds to stay within the signed 12-bit
            // range. The remainder can still be 2048 (chunk 4095), so
            // recurse rather than assume one split suffices.
            self.addi(rd, rd, 2047);
            self.addi_chunk(rd, chunk - 2047);
        } else if chunk != 0 {
            self.addi(rd, rd, chunk);
        }
    }

    /// Loads the address of a data-segment allocation (absolute `li`).
    pub fn la(&mut self, rd: Reg, addr: u64) -> &mut Self {
        self.li(rd, addr as i64)
    }

    /// Memory fence.
    pub fn fence(&mut self) -> &mut Self {
        self.inst(Inst::Fence)
    }

    /// Environment call.
    pub fn ecall(&mut self) -> &mut Self {
        self.inst(Inst::Ecall)
    }

    /// Terminates the program (the emulator stops at `ebreak`).
    pub fn halt(&mut self) -> &mut Self {
        self.inst(Inst::Ebreak)
    }

    // ---- assembly ---------------------------------------------------------

    /// Resolves all labels and produces the final [`Program`].
    ///
    /// # Errors
    ///
    /// Fails if a referenced label was never bound or an offset exceeds its
    /// encodable range.
    pub fn assemble(self) -> Result<Program, AsmError> {
        let resolve = |l: Label| self.labels[l.0].ok_or(AsmError::UnboundLabel(l));
        let mut insts = Vec::with_capacity(self.entries.len());
        for (idx, e) in self.entries.iter().enumerate() {
            let inst = match *e {
                Entry::Fixed(i) => i,
                Entry::Branch {
                    kind,
                    rs1,
                    rs2,
                    target,
                } => {
                    let dst = resolve(target)?;
                    let offset = (dst as i64 - idx as i64) * 4;
                    if !(-4096..=4094).contains(&offset) {
                        return Err(AsmError::BranchOutOfRange { at: idx, offset });
                    }
                    Inst::Branch {
                        kind,
                        rs1,
                        rs2,
                        offset: offset as i32,
                    }
                }
                Entry::Jal { rd, target } => {
                    let dst = resolve(target)?;
                    let offset = (dst as i64 - idx as i64) * 4;
                    if !(-(1 << 20)..(1 << 20)).contains(&offset) {
                        return Err(AsmError::JumpOutOfRange { at: idx, offset });
                    }
                    Inst::Jal {
                        rd,
                        offset: offset as i32,
                    }
                }
            };
            insts.push(inst);
        }
        Ok(Program {
            base: self.base,
            insts,
            data: self.data,
            entry: self.base,
        })
    }
}

impl Default for Asm {
    fn default() -> Self {
        Asm::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn branch_resolution_forward_and_backward() {
        let mut a = Asm::new();
        let top = a.here();
        let out = a.new_label();
        a.beqz(Reg::A0, out); // idx 0 -> idx 2: +8
        a.j(top); // idx 1 -> idx 0: -4
        a.bind(out);
        a.halt();
        let p = a.assemble().unwrap();
        assert_eq!(
            p.insts[0],
            Inst::Branch {
                kind: BranchKind::Eq,
                rs1: Reg::A0,
                rs2: Reg::ZERO,
                offset: 8
            }
        );
        assert_eq!(
            p.insts[1],
            Inst::Jal {
                rd: Reg::ZERO,
                offset: -4
            }
        );
    }

    #[test]
    fn unbound_label_errors() {
        let mut a = Asm::new();
        let l = a.new_label();
        a.j(l);
        assert!(matches!(a.assemble(), Err(AsmError::UnboundLabel(_))));
    }

    #[test]
    fn branch_out_of_range_errors() {
        let mut a = Asm::new();
        let top = a.here();
        for _ in 0..2000 {
            a.nop();
        }
        a.beqz(Reg::A0, top);
        a.halt();
        assert!(matches!(
            a.assemble(),
            Err(AsmError::BranchOutOfRange { .. })
        ));
    }

    #[test]
    fn li_immediates_stay_encodable() {
        // Regression (found by the fuzzer's roundtrip oracle): a middle
        // chunk of 4095 used to expand to `addi rd, rd, 2048`, which the
        // I-type field wraps to -2048. Every instruction an `li` emits
        // must roundtrip through encode/decode, and the expansion must
        // still compute the requested value.
        for v in [
            i64::MAX,
            i64::MIN,
            i64::MIN + 1,
            -1,
            0xffff_ffff,
            0x0fff_7fff_0fff_7fff,
            0xfff0_00ff_u32 as i64,
            -2048,
            2048,
            0x7ff8_0000_0000_07ff,
        ] {
            let mut a = Asm::new();
            a.li(Reg::A0, v);
            let p = a.assemble().unwrap();
            let mut x: i64 = 0;
            for inst in &p.insts {
                let w = crate::encode(inst);
                assert_eq!(crate::decode(w).unwrap(), *inst, "li {v:#x}: {inst:?}");
                x = match inst {
                    Inst::Lui { imm20, .. } => (*imm20 as i64) << 12,
                    Inst::OpImm {
                        op: AluImmOp::Addi,
                        imm,
                        ..
                    } => x.wrapping_add(*imm as i64),
                    Inst::OpImm {
                        op: AluImmOp::Addiw,
                        imm,
                        ..
                    } => x.wrapping_add(*imm as i64) as i32 as i64,
                    Inst::OpImm {
                        op: AluImmOp::Slli,
                        imm,
                        ..
                    } => x << imm,
                    other => panic!("unexpected inst in li expansion: {other:?}"),
                };
            }
            assert_eq!(x, v, "li {v:#x} computes the wrong value");
        }
    }

    #[test]
    fn li_small_is_single_addi() {
        let mut a = Asm::new();
        a.li(Reg::A0, 42);
        let p = a.assemble().unwrap();
        assert_eq!(p.insts.len(), 1);
    }

    #[test]
    fn li_32bit_is_lui_addiw() {
        let mut a = Asm::new();
        a.li(Reg::A0, 0x12345678);
        let p = a.assemble().unwrap();
        assert_eq!(p.insts.len(), 2);
        assert!(matches!(p.insts[0], Inst::Lui { .. }));
        assert!(matches!(
            p.insts[1],
            Inst::OpImm {
                op: AluImmOp::Addiw,
                ..
            }
        ));
    }

    #[test]
    fn data_alignment() {
        let mut a = Asm::new();
        let x = a.bytes_aligned(vec![1, 2, 3], 1);
        let y = a.words64(&[7]);
        // Alignment 1 imposes no constraint on `x`; the 64-bit words that
        // follow must still land 8-byte aligned.
        assert_eq!(y % 8, 0);
        assert!(y >= x + 3);
    }
}
