//! Assembler: programmatic builder, text parser, and assembled programs.

mod builder;
mod parser;
mod program;

pub use builder::{Asm, AsmError, Label, DEFAULT_CODE_BASE, DEFAULT_DATA_BASE, DEFAULT_STACK_TOP};
pub use parser::{parse_asm, ParseError};
pub use program::Program;
