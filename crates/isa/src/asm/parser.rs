//! A small text assembler for the RV64IM subset.
//!
//! Supports labels, all real instructions of the subset, and the common
//! pseudo-instructions (`li`, `mv`, `j`, `call`, `ret`, `nop`, `beqz`,
//! `bnez`, `neg`, `not`, `seqz`, `snez`). Comments start with `#` or `//`.
//!
//! This exists so that tests, examples, and users can write kernels as plain
//! text instead of going through the builder API.

use super::{Asm, Label, Program};
use crate::{AluImmOp, AluOp, BranchKind, MemWidth, Reg};
use std::collections::HashMap;
use std::fmt;

/// Error produced while parsing assembly text.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// Explanation of the failure.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

/// Parses assembly text into a [`Program`].
///
/// # Errors
///
/// Returns [`ParseError`] (with a line number) on any syntax problem, and a
/// generic error if label resolution fails afterwards.
///
/// # Examples
///
/// ```
/// use helios_isa::parse_asm;
/// let prog = parse_asm(r#"
///     li a0, 5
/// loop:
///     addi a0, a0, -1
///     bnez a0, loop
///     ebreak
/// "#)?;
/// assert_eq!(prog.len(), 4);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn parse_asm(text: &str) -> Result<Program, Box<dyn std::error::Error>> {
    let mut asm = Asm::new();
    let mut labels: HashMap<String, Label> = HashMap::new();
    let mut get_label = |asm: &mut Asm, name: &str| -> Label {
        if let Some(&l) = labels.get(name) {
            l
        } else {
            let l = asm.new_label();
            labels.insert(name.to_string(), l);
            l
        }
    };

    for (lineno, raw) in text.lines().enumerate() {
        let lineno = lineno + 1;
        let line = raw.split('#').next().unwrap_or("");
        let line = line.split("//").next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut rest = line;
        // A line may carry one label followed by an optional instruction.
        if let Some(colon) = rest.find(':') {
            let (name, tail) = rest.split_at(colon);
            let name = name.trim();
            if name.chars().all(|c| c.is_alphanumeric() || c == '_' || c == '.') && !name.is_empty()
            {
                let l = get_label(&mut asm, name);
                asm.bind(l);
                rest = tail[1..].trim();
                if rest.is_empty() {
                    continue;
                }
            }
        }
        parse_inst(&mut asm, rest, lineno, &mut |a, n| get_label(a, n))?;
    }
    Ok(asm.assemble()?)
}

fn parse_reg(tok: &str, line: usize) -> Result<Reg, ParseError> {
    Reg::parse(tok).ok_or_else(|| err(line, format!("unknown register `{tok}`")))
}

fn parse_int(tok: &str, line: usize) -> Result<i64, ParseError> {
    let tok = tok.trim();
    let (neg, t) = match tok.strip_prefix('-') {
        Some(t) => (true, t),
        None => (false, tok),
    };
    // Parse through i128 so the full i64 domain is expressible: `-v` of a
    // magnitude parsed as i64 cannot represent i64::MIN, and hex constants
    // with bit 63 set (0x8000…) overflow a direct i64 parse.
    let v = if let Some(hex) = t.strip_prefix("0x") {
        i128::from_str_radix(hex, 16)
    } else {
        t.parse::<i128>()
    }
    .map_err(|_| err(line, format!("bad integer `{tok}`")))?;
    let v = if neg { -v } else { v };
    if (i64::MIN as i128..=u64::MAX as i128).contains(&v) {
        Ok(v as i64)
    } else {
        Err(err(line, format!("integer `{tok}` out of 64-bit range")))
    }
}

/// Splits `"8(sp)"` into (offset, reg).
fn parse_mem_operand(tok: &str, line: usize) -> Result<(i32, Reg), ParseError> {
    let open = tok
        .find('(')
        .ok_or_else(|| err(line, format!("expected offset(reg), got `{tok}`")))?;
    let close = tok
        .rfind(')')
        .ok_or_else(|| err(line, format!("missing `)` in `{tok}`")))?;
    let off = if tok[..open].trim().is_empty() {
        0
    } else {
        parse_int(&tok[..open], line)?
    };
    let reg = parse_reg(tok[open + 1..close].trim(), line)?;
    Ok((off as i32, reg))
}

fn parse_inst(
    asm: &mut Asm,
    line_text: &str,
    line: usize,
    get_label: &mut dyn FnMut(&mut Asm, &str) -> Label,
) -> Result<(), ParseError> {
    let (mnemonic, operands) = match line_text.find(char::is_whitespace) {
        Some(i) => (&line_text[..i], line_text[i..].trim()),
        None => (line_text, ""),
    };
    let ops: Vec<&str> = if operands.is_empty() {
        Vec::new()
    } else {
        operands.split(',').map(str::trim).collect()
    };
    let need = |n: usize| -> Result<(), ParseError> {
        if ops.len() == n {
            Ok(())
        } else {
            Err(err(
                line,
                format!("`{mnemonic}` expects {n} operands, got {}", ops.len()),
            ))
        }
    };

    macro_rules! r {
        ($i:expr) => {
            parse_reg(ops[$i], line)?
        };
    }
    macro_rules! imm {
        ($i:expr) => {
            parse_int(ops[$i], line)? as i32
        };
    }
    macro_rules! lbl {
        ($i:expr) => {
            get_label(asm, ops[$i])
        };
    }

    let alu_imm: Option<AluImmOp> = match mnemonic {
        "addi" => Some(AluImmOp::Addi),
        "slti" => Some(AluImmOp::Slti),
        "sltiu" => Some(AluImmOp::Sltiu),
        "xori" => Some(AluImmOp::Xori),
        "ori" => Some(AluImmOp::Ori),
        "andi" => Some(AluImmOp::Andi),
        "slli" => Some(AluImmOp::Slli),
        "srli" => Some(AluImmOp::Srli),
        "srai" => Some(AluImmOp::Srai),
        "addiw" => Some(AluImmOp::Addiw),
        "slliw" => Some(AluImmOp::Slliw),
        "srliw" => Some(AluImmOp::Srliw),
        "sraiw" => Some(AluImmOp::Sraiw),
        _ => None,
    };
    if let Some(op) = alu_imm {
        need(3)?;
        asm.op_imm(op, r!(0), r!(1), imm!(2));
        return Ok(());
    }

    let alu: Option<AluOp> = match mnemonic {
        "add" => Some(AluOp::Add),
        "sub" => Some(AluOp::Sub),
        "sll" => Some(AluOp::Sll),
        "slt" => Some(AluOp::Slt),
        "sltu" => Some(AluOp::Sltu),
        "xor" => Some(AluOp::Xor),
        "srl" => Some(AluOp::Srl),
        "sra" => Some(AluOp::Sra),
        "or" => Some(AluOp::Or),
        "and" => Some(AluOp::And),
        "addw" => Some(AluOp::Addw),
        "subw" => Some(AluOp::Subw),
        "sllw" => Some(AluOp::Sllw),
        "srlw" => Some(AluOp::Srlw),
        "sraw" => Some(AluOp::Sraw),
        "mul" => Some(AluOp::Mul),
        "mulh" => Some(AluOp::Mulh),
        "mulhsu" => Some(AluOp::Mulhsu),
        "mulhu" => Some(AluOp::Mulhu),
        "div" => Some(AluOp::Div),
        "divu" => Some(AluOp::Divu),
        "rem" => Some(AluOp::Rem),
        "remu" => Some(AluOp::Remu),
        "mulw" => Some(AluOp::Mulw),
        "divw" => Some(AluOp::Divw),
        "divuw" => Some(AluOp::Divuw),
        "remw" => Some(AluOp::Remw),
        "remuw" => Some(AluOp::Remuw),
        _ => None,
    };
    if let Some(op) = alu {
        need(3)?;
        asm.op(op, r!(0), r!(1), r!(2));
        return Ok(());
    }

    let load: Option<(MemWidth, bool)> = match mnemonic {
        "lb" => Some((MemWidth::B, true)),
        "lh" => Some((MemWidth::H, true)),
        "lw" => Some((MemWidth::W, true)),
        "ld" => Some((MemWidth::D, true)),
        "lbu" => Some((MemWidth::B, false)),
        "lhu" => Some((MemWidth::H, false)),
        "lwu" => Some((MemWidth::W, false)),
        _ => None,
    };
    if let Some((w, s)) = load {
        need(2)?;
        let (off, base) = parse_mem_operand(ops[1], line)?;
        asm.load(w, s, r!(0), off, base);
        return Ok(());
    }

    let store: Option<MemWidth> = match mnemonic {
        "sb" => Some(MemWidth::B),
        "sh" => Some(MemWidth::H),
        "sw" => Some(MemWidth::W),
        "sd" => Some(MemWidth::D),
        _ => None,
    };
    if let Some(w) = store {
        need(2)?;
        let (off, base) = parse_mem_operand(ops[1], line)?;
        asm.store(w, r!(0), off, base);
        return Ok(());
    }

    let branch: Option<BranchKind> = match mnemonic {
        "beq" => Some(BranchKind::Eq),
        "bne" => Some(BranchKind::Ne),
        "blt" => Some(BranchKind::Lt),
        "bge" => Some(BranchKind::Ge),
        "bltu" => Some(BranchKind::Ltu),
        "bgeu" => Some(BranchKind::Geu),
        _ => None,
    };
    if let Some(kind) = branch {
        need(3)?;
        let (a, b) = (r!(0), r!(1));
        let l = lbl!(2);
        asm.branch(kind, a, b, l);
        return Ok(());
    }

    match mnemonic {
        "lui" => {
            need(2)?;
            asm.lui(r!(0), imm!(1));
        }
        "auipc" => {
            need(2)?;
            asm.auipc(r!(0), imm!(1));
        }
        "jal" => match ops.len() {
            1 => {
                let l = lbl!(0);
                asm.jal(Reg::RA, l);
            }
            2 => {
                let rd = r!(0);
                let l = lbl!(1);
                asm.jal(rd, l);
            }
            n => return Err(err(line, format!("`jal` expects 1 or 2 operands, got {n}"))),
        },
        "jalr" => {
            need(1)?;
            asm.jalr_ra(r!(0));
        }
        "j" => {
            need(1)?;
            let l = lbl!(0);
            asm.j(l);
        }
        "jr" => {
            need(1)?;
            asm.jr(r!(0));
        }
        "call" => {
            need(1)?;
            let l = lbl!(0);
            asm.call(l);
        }
        "ret" => {
            need(0)?;
            asm.ret();
        }
        "li" => {
            need(2)?;
            asm.li(r!(0), parse_int(ops[1], line)?);
        }
        "mv" => {
            need(2)?;
            asm.mv(r!(0), r!(1));
        }
        "neg" => {
            need(2)?;
            asm.neg(r!(0), r!(1));
        }
        "not" => {
            need(2)?;
            asm.not(r!(0), r!(1));
        }
        "seqz" => {
            need(2)?;
            asm.seqz(r!(0), r!(1));
        }
        "snez" => {
            need(2)?;
            asm.snez(r!(0), r!(1));
        }
        "beqz" => {
            need(2)?;
            let a = r!(0);
            let l = lbl!(1);
            asm.beqz(a, l);
        }
        "bnez" => {
            need(2)?;
            let a = r!(0);
            let l = lbl!(1);
            asm.bnez(a, l);
        }
        "bltz" => {
            need(2)?;
            let a = r!(0);
            let l = lbl!(1);
            asm.bltz(a, l);
        }
        "bgez" => {
            need(2)?;
            let a = r!(0);
            let l = lbl!(1);
            asm.bgez(a, l);
        }
        "nop" => {
            need(0)?;
            asm.nop();
        }
        "fence" => {
            need(0)?;
            asm.fence();
        }
        "ecall" => {
            need(0)?;
            asm.ecall();
        }
        "ebreak" => {
            need(0)?;
            asm.halt();
        }
        other => return Err(err(line, format!("unknown mnemonic `{other}`"))),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Inst;

    #[test]
    fn parses_loop() {
        let p = parse_asm(
            r#"
            li a0, 3        # counter
        top:
            addi a0, a0, -1
            bnez a0, top
            ebreak
        "#,
        )
        .unwrap();
        assert_eq!(p.len(), 4);
        assert!(matches!(p.insts[3], Inst::Ebreak));
    }

    #[test]
    fn parses_memory_operands() {
        let p = parse_asm("ld a0, 16(sp)\nsd a0, -8(s0)\nlw t0, (a1)\nebreak").unwrap();
        assert_eq!(
            p.insts[0],
            Inst::Load {
                width: MemWidth::D,
                signed: true,
                rd: Reg::A0,
                rs1: Reg::SP,
                offset: 16
            }
        );
        assert_eq!(
            p.insts[1],
            Inst::Store {
                width: MemWidth::D,
                rs2: Reg::A0,
                rs1: Reg::S0,
                offset: -8
            }
        );
        assert_eq!(p.insts[2].mem_offset(), Some(0));
    }

    #[test]
    fn error_has_line_number() {
        let e = parse_asm("nop\nbogus a0\n").unwrap_err();
        let msg = e.to_string();
        assert!(msg.contains("line 2"), "got: {msg}");
    }

    #[test]
    fn forward_label_reference() {
        let p = parse_asm("beqz a0, end\nnop\nend: ebreak").unwrap();
        assert_eq!(
            p.insts[0],
            Inst::Branch {
                kind: BranchKind::Eq,
                rs1: Reg::A0,
                rs2: Reg::ZERO,
                offset: 8
            }
        );
    }

    #[test]
    fn full_i64_domain_li() {
        // i64::MIN, u64-domain hex, and plain negatives all parse; the
        // fuzz corpus format relies on `li` round-tripping any i64.
        let p = parse_asm(
            "li a0, -9223372036854775808\nli a1, 0xffffffffffffffff\nli a2, -1\nebreak",
        )
        .unwrap();
        let mut cpu_like = Vec::new();
        for i in &p.insts {
            cpu_like.push(*i);
        }
        assert!(!cpu_like.is_empty());
        let e = parse_asm("li a0, 0x10000000000000000\nebreak").unwrap_err();
        assert!(e.to_string().contains("out of 64-bit range"), "{e}");
    }

    #[test]
    fn hex_immediates() {
        let p = parse_asm("addi a0, zero, 0x7f\nebreak").unwrap();
        assert_eq!(
            p.insts[0],
            Inst::OpImm {
                op: AluImmOp::Addi,
                rd: Reg::A0,
                rs1: Reg::ZERO,
                imm: 0x7f
            }
        );
    }
}
