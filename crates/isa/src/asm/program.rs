//! Assembled programs: code, initial data image, entry point.

use crate::{encode, Inst};

/// An assembled program ready to be loaded into the emulator.
///
/// Code is a contiguous run of 4-byte instructions starting at [`Program::base`];
/// `data` holds initial memory images (address, bytes) for statically
/// allocated buffers created through the assembler.
#[derive(Clone, Debug, Default)]
pub struct Program {
    /// Address of `insts[0]`.
    pub base: u64,
    /// The instructions, in layout order.
    pub insts: Vec<Inst>,
    /// Initial data segments: `(address, bytes)`.
    pub data: Vec<(u64, Vec<u8>)>,
    /// Initial PC (may differ from `base` if entry is mid-program).
    pub entry: u64,
}

impl Program {
    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// The instruction at `pc`, if `pc` is in range and 4-byte aligned.
    #[inline]
    pub fn fetch(&self, pc: u64) -> Option<&Inst> {
        if pc < self.base || !pc.is_multiple_of(4) {
            return None;
        }
        self.insts.get(((pc - self.base) / 4) as usize)
    }

    /// Encodes all instructions into raw 32-bit words (the binary image).
    pub fn words(&self) -> Vec<u32> {
        self.insts.iter().map(encode).collect()
    }

    /// Total bytes of initial data.
    pub fn data_bytes(&self) -> usize {
        self.data.iter().map(|(_, b)| b.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AluImmOp, Reg};

    fn prog() -> Program {
        Program {
            base: 0x1000,
            insts: vec![
                Inst::NOP,
                Inst::OpImm {
                    op: AluImmOp::Addi,
                    rd: Reg::A0,
                    rs1: Reg::ZERO,
                    imm: 7,
                },
            ],
            data: vec![(0x8000, vec![1, 2, 3])],
            entry: 0x1000,
        }
    }

    #[test]
    fn fetch_bounds() {
        let p = prog();
        assert_eq!(p.fetch(0x1000), Some(&Inst::NOP));
        assert!(p.fetch(0x1004).is_some());
        assert_eq!(p.fetch(0x1008), None);
        assert_eq!(p.fetch(0x0ffc), None);
        assert_eq!(p.fetch(0x1002), None, "unaligned");
    }

    #[test]
    fn words_roundtrip() {
        let p = prog();
        for (w, i) in p.words().iter().zip(&p.insts) {
            assert_eq!(crate::decode(*w).unwrap(), *i);
        }
        assert_eq!(p.data_bytes(), 3);
    }
}
