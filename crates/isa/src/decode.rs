//! Decoding of raw 32-bit RISC-V words back into [`Inst`].

use crate::{AluImmOp, AluOp, BranchKind, Inst, MemWidth, Reg};
use std::fmt;

/// Error returned when a 32-bit word is not a supported RV64IM instruction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DecodeError {
    /// The raw word that failed to decode.
    pub word: u32,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot decode instruction word {:#010x}", self.word)
    }
}

impl std::error::Error for DecodeError {}

#[inline]
fn reg_at(word: u32, lsb: u32) -> Reg {
    Reg::new(((word >> lsb) & 0x1f) as u8)
}

#[inline]
fn i_imm(word: u32) -> i32 {
    (word as i32) >> 20
}

#[inline]
fn s_imm(word: u32) -> i32 {
    (((word >> 7) & 0x1f) | (((word as i32 >> 25) as u32) << 5)) as i32
}

#[inline]
fn b_imm(word: u32) -> i32 {
    let imm = (((word >> 8) & 0xf) << 1)
        | (((word >> 25) & 0x3f) << 5)
        | (((word >> 7) & 1) << 11)
        | ((word >> 31) << 12);
    ((imm << 19) as i32) >> 19
}

#[inline]
fn u_imm20(word: u32) -> i32 {
    (word as i32) >> 12
}

#[inline]
fn j_imm(word: u32) -> i32 {
    let imm = (((word >> 21) & 0x3ff) << 1)
        | (((word >> 20) & 1) << 11)
        | (((word >> 12) & 0xff) << 12)
        | ((word >> 31) << 20);
    ((imm << 11) as i32) >> 11
}

/// Decodes a 32-bit word into an [`Inst`].
///
/// # Errors
///
/// Returns [`DecodeError`] for words that are not valid RV64IM encodings
/// (unknown opcodes, reserved funct combinations, unsupported extensions).
pub fn decode(word: u32) -> Result<Inst, DecodeError> {
    let err = || DecodeError { word };
    let opcode = word & 0x7f;
    let rd = reg_at(word, 7);
    let rs1 = reg_at(word, 15);
    let rs2 = reg_at(word, 20);
    let f3 = (word >> 12) & 0x7;
    let f7 = word >> 25;

    let inst = match opcode {
        0b0110111 => Inst::Lui {
            rd,
            imm20: u_imm20(word),
        },
        0b0010111 => Inst::Auipc {
            rd,
            imm20: u_imm20(word),
        },
        0b1101111 => Inst::Jal {
            rd,
            offset: j_imm(word),
        },
        0b1100111 => {
            if f3 != 0 {
                return Err(err());
            }
            Inst::Jalr {
                rd,
                rs1,
                offset: i_imm(word),
            }
        }
        0b1100011 => {
            let kind = match f3 {
                0b000 => BranchKind::Eq,
                0b001 => BranchKind::Ne,
                0b100 => BranchKind::Lt,
                0b101 => BranchKind::Ge,
                0b110 => BranchKind::Ltu,
                0b111 => BranchKind::Geu,
                _ => return Err(err()),
            };
            Inst::Branch {
                kind,
                rs1,
                rs2,
                offset: b_imm(word),
            }
        }
        0b0000011 => {
            let (width, signed) = match f3 {
                0b000 => (MemWidth::B, true),
                0b001 => (MemWidth::H, true),
                0b010 => (MemWidth::W, true),
                0b011 => (MemWidth::D, true),
                0b100 => (MemWidth::B, false),
                0b101 => (MemWidth::H, false),
                0b110 => (MemWidth::W, false),
                _ => return Err(err()),
            };
            Inst::Load {
                width,
                signed,
                rd,
                rs1,
                offset: i_imm(word),
            }
        }
        0b0100011 => {
            let width = match f3 {
                0b000 => MemWidth::B,
                0b001 => MemWidth::H,
                0b010 => MemWidth::W,
                0b011 => MemWidth::D,
                _ => return Err(err()),
            };
            Inst::Store {
                width,
                rs2,
                rs1,
                offset: s_imm(word),
            }
        }
        0b0010011 => {
            let op = match f3 {
                0b000 => AluImmOp::Addi,
                0b010 => AluImmOp::Slti,
                0b011 => AluImmOp::Sltiu,
                0b100 => AluImmOp::Xori,
                0b110 => AluImmOp::Ori,
                0b111 => AluImmOp::Andi,
                0b001 => {
                    if f7 >> 1 != 0 {
                        return Err(err());
                    }
                    return Ok(Inst::OpImm {
                        op: AluImmOp::Slli,
                        rd,
                        rs1,
                        imm: ((word >> 20) & 0x3f) as i32,
                    });
                }
                0b101 => {
                    let op = match f7 >> 1 {
                        0b000000 => AluImmOp::Srli,
                        0b010000 => AluImmOp::Srai,
                        _ => return Err(err()),
                    };
                    return Ok(Inst::OpImm {
                        op,
                        rd,
                        rs1,
                        imm: ((word >> 20) & 0x3f) as i32,
                    });
                }
                _ => unreachable!(),
            };
            Inst::OpImm {
                op,
                rd,
                rs1,
                imm: i_imm(word),
            }
        }
        0b0011011 => match f3 {
            0b000 => Inst::OpImm {
                op: AluImmOp::Addiw,
                rd,
                rs1,
                imm: i_imm(word),
            },
            0b001 if f7 == 0 => Inst::OpImm {
                op: AluImmOp::Slliw,
                rd,
                rs1,
                imm: ((word >> 20) & 0x1f) as i32,
            },
            0b101 if f7 == 0 => Inst::OpImm {
                op: AluImmOp::Srliw,
                rd,
                rs1,
                imm: ((word >> 20) & 0x1f) as i32,
            },
            0b101 if f7 == 0b0100000 => Inst::OpImm {
                op: AluImmOp::Sraiw,
                rd,
                rs1,
                imm: ((word >> 20) & 0x1f) as i32,
            },
            _ => return Err(err()),
        },
        0b0110011 => {
            let op = match (f7, f3) {
                (0b0000000, 0b000) => AluOp::Add,
                (0b0100000, 0b000) => AluOp::Sub,
                (0b0000000, 0b001) => AluOp::Sll,
                (0b0000000, 0b010) => AluOp::Slt,
                (0b0000000, 0b011) => AluOp::Sltu,
                (0b0000000, 0b100) => AluOp::Xor,
                (0b0000000, 0b101) => AluOp::Srl,
                (0b0100000, 0b101) => AluOp::Sra,
                (0b0000000, 0b110) => AluOp::Or,
                (0b0000000, 0b111) => AluOp::And,
                (0b0000001, 0b000) => AluOp::Mul,
                (0b0000001, 0b001) => AluOp::Mulh,
                (0b0000001, 0b010) => AluOp::Mulhsu,
                (0b0000001, 0b011) => AluOp::Mulhu,
                (0b0000001, 0b100) => AluOp::Div,
                (0b0000001, 0b101) => AluOp::Divu,
                (0b0000001, 0b110) => AluOp::Rem,
                (0b0000001, 0b111) => AluOp::Remu,
                _ => return Err(err()),
            };
            Inst::Op { op, rd, rs1, rs2 }
        }
        0b0111011 => {
            let op = match (f7, f3) {
                (0b0000000, 0b000) => AluOp::Addw,
                (0b0100000, 0b000) => AluOp::Subw,
                (0b0000000, 0b001) => AluOp::Sllw,
                (0b0000000, 0b101) => AluOp::Srlw,
                (0b0100000, 0b101) => AluOp::Sraw,
                (0b0000001, 0b000) => AluOp::Mulw,
                (0b0000001, 0b100) => AluOp::Divw,
                (0b0000001, 0b101) => AluOp::Divuw,
                (0b0000001, 0b110) => AluOp::Remw,
                (0b0000001, 0b111) => AluOp::Remuw,
                _ => return Err(err()),
            };
            Inst::Op { op, rd, rs1, rs2 }
        }
        0b0001111 => Inst::Fence,
        0b1110011 => match word >> 20 {
            0 => Inst::Ecall,
            1 => Inst::Ebreak,
            _ => return Err(err()),
        },
        _ => return Err(err()),
    };
    Ok(inst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode;

    #[test]
    fn decode_known_words() {
        assert_eq!(
            decode(0x00150513).unwrap(),
            Inst::OpImm {
                op: AluImmOp::Addi,
                rd: Reg::A0,
                rs1: Reg::A0,
                imm: 1
            }
        );
        assert_eq!(
            decode(0xfe010113).unwrap(),
            Inst::OpImm {
                op: AluImmOp::Addi,
                rd: Reg::SP,
                rs1: Reg::SP,
                imm: -32
            }
        );
        assert_eq!(decode(0x00000073).unwrap(), Inst::Ecall);
        assert_eq!(decode(0x00100073).unwrap(), Inst::Ebreak);
    }

    #[test]
    fn reject_garbage() {
        assert!(decode(0x0000_0000).is_err());
        assert!(decode(0xffff_ffff).is_err());
        // Compressed instruction (low bits != 11) patterns are invalid here.
        assert!(decode(0x0000_0001).is_err());
    }

    #[test]
    fn negative_branch_offset_roundtrip() {
        let b = Inst::Branch {
            kind: BranchKind::Ne,
            rs1: Reg::A0,
            rs2: Reg::ZERO,
            offset: -16,
        };
        assert_eq!(decode(encode(&b)).unwrap(), b);
    }

    #[test]
    fn negative_jal_offset_roundtrip() {
        let j = Inst::Jal {
            rd: Reg::ZERO,
            offset: -1048576,
        };
        assert_eq!(decode(encode(&j)).unwrap(), j);
    }
}
