//! Decoding of raw 32-bit RISC-V words back into [`Inst`].

use crate::{AluImmOp, AluOp, BranchKind, Inst, MemWidth, Reg};
use std::fmt;

/// Error returned when a 32-bit word is not a supported RV64IM instruction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DecodeError {
    /// The raw word that failed to decode.
    pub word: u32,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot decode instruction word {:#010x}", self.word)
    }
}

impl std::error::Error for DecodeError {}

#[inline]
fn reg_at(word: u32, lsb: u32) -> Reg {
    Reg::new(((word >> lsb) & 0x1f) as u8)
}

#[inline]
fn i_imm(word: u32) -> i32 {
    (word as i32) >> 20
}

#[inline]
fn s_imm(word: u32) -> i32 {
    (((word >> 7) & 0x1f) | (((word as i32 >> 25) as u32) << 5)) as i32
}

#[inline]
fn b_imm(word: u32) -> i32 {
    let imm = (((word >> 8) & 0xf) << 1)
        | (((word >> 25) & 0x3f) << 5)
        | (((word >> 7) & 1) << 11)
        | ((word >> 31) << 12);
    ((imm << 19) as i32) >> 19
}

#[inline]
fn u_imm20(word: u32) -> i32 {
    (word as i32) >> 12
}

#[inline]
fn j_imm(word: u32) -> i32 {
    let imm = (((word >> 21) & 0x3ff) << 1)
        | (((word >> 20) & 1) << 11)
        | (((word >> 12) & 0xff) << 12)
        | ((word >> 31) << 20);
    ((imm << 11) as i32) >> 11
}

/// Decodes a 32-bit word into an [`Inst`].
///
/// # Errors
///
/// Returns [`DecodeError`] for words that are not valid RV64IM encodings
/// (unknown opcodes, reserved funct combinations, unsupported extensions).
pub fn decode(word: u32) -> Result<Inst, DecodeError> {
    let err = || DecodeError { word };
    let opcode = word & 0x7f;
    let rd = reg_at(word, 7);
    let rs1 = reg_at(word, 15);
    let rs2 = reg_at(word, 20);
    let f3 = (word >> 12) & 0x7;
    let f7 = word >> 25;

    let inst = match opcode {
        0b0110111 => Inst::Lui {
            rd,
            imm20: u_imm20(word),
        },
        0b0010111 => Inst::Auipc {
            rd,
            imm20: u_imm20(word),
        },
        0b1101111 => Inst::Jal {
            rd,
            offset: j_imm(word),
        },
        0b1100111 => {
            if f3 != 0 {
                return Err(err());
            }
            Inst::Jalr {
                rd,
                rs1,
                offset: i_imm(word),
            }
        }
        0b1100011 => {
            let kind = match f3 {
                0b000 => BranchKind::Eq,
                0b001 => BranchKind::Ne,
                0b100 => BranchKind::Lt,
                0b101 => BranchKind::Ge,
                0b110 => BranchKind::Ltu,
                0b111 => BranchKind::Geu,
                _ => return Err(err()),
            };
            Inst::Branch {
                kind,
                rs1,
                rs2,
                offset: b_imm(word),
            }
        }
        0b0000011 => {
            let (width, signed) = match f3 {
                0b000 => (MemWidth::B, true),
                0b001 => (MemWidth::H, true),
                0b010 => (MemWidth::W, true),
                0b011 => (MemWidth::D, true),
                0b100 => (MemWidth::B, false),
                0b101 => (MemWidth::H, false),
                0b110 => (MemWidth::W, false),
                _ => return Err(err()),
            };
            Inst::Load {
                width,
                signed,
                rd,
                rs1,
                offset: i_imm(word),
            }
        }
        0b0100011 => {
            let width = match f3 {
                0b000 => MemWidth::B,
                0b001 => MemWidth::H,
                0b010 => MemWidth::W,
                0b011 => MemWidth::D,
                _ => return Err(err()),
            };
            Inst::Store {
                width,
                rs2,
                rs1,
                offset: s_imm(word),
            }
        }
        0b0010011 => {
            let op = match f3 {
                0b000 => AluImmOp::Addi,
                0b010 => AluImmOp::Slti,
                0b011 => AluImmOp::Sltiu,
                0b100 => AluImmOp::Xori,
                0b110 => AluImmOp::Ori,
                0b111 => AluImmOp::Andi,
                0b001 => {
                    if f7 >> 1 != 0 {
                        return Err(err());
                    }
                    return Ok(Inst::OpImm {
                        op: AluImmOp::Slli,
                        rd,
                        rs1,
                        imm: ((word >> 20) & 0x3f) as i32,
                    });
                }
                0b101 => {
                    let op = match f7 >> 1 {
                        0b000000 => AluImmOp::Srli,
                        0b010000 => AluImmOp::Srai,
                        _ => return Err(err()),
                    };
                    return Ok(Inst::OpImm {
                        op,
                        rd,
                        rs1,
                        imm: ((word >> 20) & 0x3f) as i32,
                    });
                }
                // All eight funct3 values are handled above; keep the
                // wildcard as an error (not a panic) so decode stays total
                // even if an arm is edited away.
                _ => return Err(err()),
            };
            Inst::OpImm {
                op,
                rd,
                rs1,
                imm: i_imm(word),
            }
        }
        0b0011011 => match f3 {
            0b000 => Inst::OpImm {
                op: AluImmOp::Addiw,
                rd,
                rs1,
                imm: i_imm(word),
            },
            0b001 if f7 == 0 => Inst::OpImm {
                op: AluImmOp::Slliw,
                rd,
                rs1,
                imm: ((word >> 20) & 0x1f) as i32,
            },
            0b101 if f7 == 0 => Inst::OpImm {
                op: AluImmOp::Srliw,
                rd,
                rs1,
                imm: ((word >> 20) & 0x1f) as i32,
            },
            0b101 if f7 == 0b0100000 => Inst::OpImm {
                op: AluImmOp::Sraiw,
                rd,
                rs1,
                imm: ((word >> 20) & 0x1f) as i32,
            },
            _ => return Err(err()),
        },
        0b0110011 => {
            let op = match (f7, f3) {
                (0b0000000, 0b000) => AluOp::Add,
                (0b0100000, 0b000) => AluOp::Sub,
                (0b0000000, 0b001) => AluOp::Sll,
                (0b0000000, 0b010) => AluOp::Slt,
                (0b0000000, 0b011) => AluOp::Sltu,
                (0b0000000, 0b100) => AluOp::Xor,
                (0b0000000, 0b101) => AluOp::Srl,
                (0b0100000, 0b101) => AluOp::Sra,
                (0b0000000, 0b110) => AluOp::Or,
                (0b0000000, 0b111) => AluOp::And,
                (0b0000001, 0b000) => AluOp::Mul,
                (0b0000001, 0b001) => AluOp::Mulh,
                (0b0000001, 0b010) => AluOp::Mulhsu,
                (0b0000001, 0b011) => AluOp::Mulhu,
                (0b0000001, 0b100) => AluOp::Div,
                (0b0000001, 0b101) => AluOp::Divu,
                (0b0000001, 0b110) => AluOp::Rem,
                (0b0000001, 0b111) => AluOp::Remu,
                _ => return Err(err()),
            };
            Inst::Op { op, rd, rs1, rs2 }
        }
        0b0111011 => {
            let op = match (f7, f3) {
                (0b0000000, 0b000) => AluOp::Addw,
                (0b0100000, 0b000) => AluOp::Subw,
                (0b0000000, 0b001) => AluOp::Sllw,
                (0b0000000, 0b101) => AluOp::Srlw,
                (0b0100000, 0b101) => AluOp::Sraw,
                (0b0000001, 0b000) => AluOp::Mulw,
                (0b0000001, 0b100) => AluOp::Divw,
                (0b0000001, 0b101) => AluOp::Divuw,
                (0b0000001, 0b110) => AluOp::Remw,
                (0b0000001, 0b111) => AluOp::Remuw,
                _ => return Err(err()),
            };
            Inst::Op { op, rd, rs1, rs2 }
        }
        // Only the canonical full-barrier `fence` word (pred = succ = iorw,
        // rd/rs1/funct3 zero) is modelled; accepting arbitrary pred/succ/rd
        // bits here would decode words that `encode` cannot reproduce,
        // breaking `encode(decode(w)) == w`.
        0b0001111 => {
            if word != 0x0ff0_000f {
                return Err(err());
            }
            Inst::Fence
        }
        // `ecall`/`ebreak` are fully-specified words; every other SYSTEM
        // encoding (CSR ops, wfi, mret, non-zero rd/rs1/funct3 bits) is
        // unsupported and must not alias onto them.
        0b1110011 => match word {
            0x0000_0073 => Inst::Ecall,
            0x0010_0073 => Inst::Ebreak,
            _ => return Err(err()),
        },
        _ => return Err(err()),
    };
    Ok(inst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode;

    #[test]
    fn decode_known_words() {
        assert_eq!(
            decode(0x00150513).unwrap(),
            Inst::OpImm {
                op: AluImmOp::Addi,
                rd: Reg::A0,
                rs1: Reg::A0,
                imm: 1
            }
        );
        assert_eq!(
            decode(0xfe010113).unwrap(),
            Inst::OpImm {
                op: AluImmOp::Addi,
                rd: Reg::SP,
                rs1: Reg::SP,
                imm: -32
            }
        );
        assert_eq!(decode(0x00000073).unwrap(), Inst::Ecall);
        assert_eq!(decode(0x00100073).unwrap(), Inst::Ebreak);
    }

    #[test]
    fn reject_garbage() {
        assert!(decode(0x0000_0000).is_err());
        assert!(decode(0xffff_ffff).is_err());
        // Compressed instruction (low bits != 11) patterns are invalid here.
        assert!(decode(0x0000_0001).is_err());
    }

    #[test]
    fn negative_branch_offset_roundtrip() {
        let b = Inst::Branch {
            kind: BranchKind::Ne,
            rs1: Reg::A0,
            rs2: Reg::ZERO,
            offset: -16,
        };
        assert_eq!(decode(encode(&b)).unwrap(), b);
    }

    #[test]
    fn negative_jal_offset_roundtrip() {
        let j = Inst::Jal {
            rd: Reg::ZERO,
            offset: -1048576,
        };
        assert_eq!(decode(encode(&j)).unwrap(), j);
    }

    #[test]
    fn fence_and_system_require_canonical_words() {
        // The canonical words decode...
        assert_eq!(decode(0x0ff0_000f).unwrap(), Inst::Fence);
        assert_eq!(decode(0x0000_0073).unwrap(), Inst::Ecall);
        assert_eq!(decode(0x0010_0073).unwrap(), Inst::Ebreak);
        // ...and roundtrip exactly.
        assert_eq!(encode(&Inst::Fence), 0x0ff0_000f);
        // Found by the fuzzer's word oracle: these used to decode to
        // Fence/Ecall/Ebreak but re-encode to different words.
        assert!(decode(0x0100_000f).is_err(), "fence with pred=w only");
        assert!(decode(0x0000_000f).is_err(), "fence with empty pred/succ");
        assert!(decode(0x0ff0_008f).is_err(), "fence with rd != 0");
        assert!(decode(0x0000_02f3).is_err(), "ecall with rd != 0");
        assert!(decode(0x0010_0173).is_err(), "ebreak with rd != 0");
        assert!(decode(0x0000_9073).is_err(), "csrrw (SYSTEM, f3 != 0)");
        assert!(decode(0x0020_0073).is_err(), "uret/reserved imm");
    }

    #[test]
    fn reserved_op_imm_funct_bits_are_errors() {
        // srli/srai with garbage in funct7[6:1], slli with funct7[6:1] != 0.
        assert!(decode(0x4a05_1513).is_err(), "slli with stray high bits");
        assert!(decode(0x0a05_5513).is_err(), "sr?i with reserved funct7");
        // slliw/srliw/sraiw with funct7 not in {0, 0b0100000}.
        assert!(decode(0x0205_151b).is_err());
        assert!(decode(0x0a05_551b).is_err());
    }

    /// Oracle 1 of the differential fuzzer, in-crate and bounded: `decode`
    /// is total (never panics) over structured and random words, and every
    /// accepted word re-encodes to itself bit-for-bit.
    #[test]
    fn decode_is_total_and_accepted_words_roundtrip() {
        use helios_prng::{Rng, SeedableRng, StdRng};

        let mut accepted = 0u64;
        let mut check = |word: u32| {
            if let Ok(inst) = decode(word) {
                accepted += 1;
                assert_eq!(
                    encode(&inst),
                    word,
                    "decode/encode mismatch: {word:#010x} -> {inst:?} -> {:#010x}",
                    encode(&inst)
                );
                assert_eq!(decode(encode(&inst)).unwrap(), inst);
            }
        };

        // Structured sweep: every (opcode, funct3, funct7) triple with a few
        // register/immediate fills, hitting every match arm's boundary.
        for opcode in 0..128u32 {
            for f3 in 0..8u32 {
                for f7 in 0..128u32 {
                    let mixed = (0b01011 << 7) | (0b00101 << 15) | (0b01010 << 20);
                    for fill in [0u32, mixed, 0x1f << 7, 0x1f << 15] {
                        check(opcode | (f3 << 12) | (f7 << 25) | fill);
                    }
                }
            }
        }

        // Random sweep, seeded for reproducibility.
        let mut rng = StdRng::seed_from_u64(0xf022_0001);
        for _ in 0..2_000_000 {
            check(rng.gen::<u32>());
        }
        assert!(accepted > 0, "sweep never hit a valid encoding");
    }
}
