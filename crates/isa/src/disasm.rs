//! Textual disassembly of [`Inst`] values.

use crate::Inst;

/// Renders an instruction in conventional RISC-V assembly syntax.
///
/// Branch and jump offsets are printed as relative byte offsets
/// (`beq a0, a1, +8`), since a lone instruction has no label context.
///
/// # Examples
///
/// ```
/// use helios_isa::{disassemble, Inst, Reg, MemWidth};
/// let ld = Inst::Load { width: MemWidth::D, signed: true, rd: Reg::A0, rs1: Reg::SP, offset: 16 };
/// assert_eq!(disassemble(&ld), "ld a0, 16(sp)");
/// ```
pub fn disassemble(inst: &Inst) -> String {
    match *inst {
        Inst::Lui { rd, imm20 } => format!("lui {rd}, {:#x}", imm20 as u32 & 0xfffff),
        Inst::Auipc { rd, imm20 } => format!("auipc {rd}, {:#x}", imm20 as u32 & 0xfffff),
        Inst::Jal { rd, offset } => format!("jal {rd}, {offset:+}"),
        Inst::Jalr { rd, rs1, offset } => format!("jalr {rd}, {offset}({rs1})"),
        Inst::Branch {
            kind,
            rs1,
            rs2,
            offset,
        } => format!("{} {rs1}, {rs2}, {offset:+}", kind.mnemonic()),
        Inst::Load {
            width,
            signed,
            rd,
            rs1,
            offset,
        } => {
            let m = match (width, signed) {
                (crate::MemWidth::B, true) => "lb",
                (crate::MemWidth::H, true) => "lh",
                (crate::MemWidth::W, true) => "lw",
                (crate::MemWidth::D, _) => "ld",
                (crate::MemWidth::B, false) => "lbu",
                (crate::MemWidth::H, false) => "lhu",
                (crate::MemWidth::W, false) => "lwu",
            };
            format!("{m} {rd}, {offset}({rs1})")
        }
        Inst::Store {
            width,
            rs2,
            rs1,
            offset,
        } => {
            let m = match width {
                crate::MemWidth::B => "sb",
                crate::MemWidth::H => "sh",
                crate::MemWidth::W => "sw",
                crate::MemWidth::D => "sd",
            };
            format!("{m} {rs2}, {offset}({rs1})")
        }
        Inst::OpImm { op, rd, rs1, imm } => format!("{} {rd}, {rs1}, {imm}", op.mnemonic()),
        Inst::Op { op, rd, rs1, rs2 } => format!("{} {rd}, {rs1}, {rs2}", op.mnemonic()),
        Inst::Fence => "fence".to_string(),
        Inst::Ecall => "ecall".to_string(),
        Inst::Ebreak => "ebreak".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AluImmOp, AluOp, BranchKind, MemWidth, Reg};

    #[test]
    fn formats() {
        assert_eq!(
            disassemble(&Inst::OpImm {
                op: AluImmOp::Addi,
                rd: Reg::SP,
                rs1: Reg::SP,
                imm: -32
            }),
            "addi sp, sp, -32"
        );
        assert_eq!(
            disassemble(&Inst::Op {
                op: AluOp::Mul,
                rd: Reg::A0,
                rs1: Reg::A1,
                rs2: Reg::A2
            }),
            "mul a0, a1, a2"
        );
        assert_eq!(
            disassemble(&Inst::Branch {
                kind: BranchKind::Ltu,
                rs1: Reg::T0,
                rs2: Reg::T1,
                offset: -64
            }),
            "bltu t0, t1, -64"
        );
        assert_eq!(
            disassemble(&Inst::Store {
                width: MemWidth::W,
                rs2: Reg::A0,
                rs1: Reg::S1,
                offset: 4
            }),
            "sw a0, 4(s1)"
        );
        assert_eq!(disassemble(&Inst::Fence), "fence");
    }
}
