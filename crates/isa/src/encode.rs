//! Encoding of [`Inst`] into the standard 32-bit RISC-V instruction format.

use crate::{AluImmOp, AluOp, BranchKind, Inst, MemWidth, Reg};

const OPC_LUI: u32 = 0b0110111;
const OPC_AUIPC: u32 = 0b0010111;
const OPC_JAL: u32 = 0b1101111;
const OPC_JALR: u32 = 0b1100111;
const OPC_BRANCH: u32 = 0b1100011;
const OPC_LOAD: u32 = 0b0000011;
const OPC_STORE: u32 = 0b0100011;
const OPC_OP_IMM: u32 = 0b0010011;
const OPC_OP_IMM32: u32 = 0b0011011;
const OPC_OP: u32 = 0b0110011;
const OPC_OP32: u32 = 0b0111011;
const OPC_MISC_MEM: u32 = 0b0001111;
const OPC_SYSTEM: u32 = 0b1110011;

#[inline]
fn rd(r: Reg) -> u32 {
    (r.index() as u32) << 7
}
#[inline]
fn rs1(r: Reg) -> u32 {
    (r.index() as u32) << 15
}
#[inline]
fn rs2(r: Reg) -> u32 {
    (r.index() as u32) << 20
}
#[inline]
fn funct3(f: u32) -> u32 {
    f << 12
}
#[inline]
fn funct7(f: u32) -> u32 {
    f << 25
}

fn i_type(op: u32, f3: u32, d: Reg, s1: Reg, imm: i32) -> u32 {
    debug_assert!((-2048..=2047).contains(&imm), "I-imm out of range: {imm}");
    op | rd(d) | funct3(f3) | rs1(s1) | ((imm as u32 & 0xfff) << 20)
}

fn s_type(op: u32, f3: u32, s1: Reg, s2: Reg, imm: i32) -> u32 {
    debug_assert!((-2048..=2047).contains(&imm), "S-imm out of range: {imm}");
    let imm = imm as u32 & 0xfff;
    op | ((imm & 0x1f) << 7) | funct3(f3) | rs1(s1) | rs2(s2) | ((imm >> 5) << 25)
}

fn b_type(op: u32, f3: u32, s1: Reg, s2: Reg, imm: i32) -> u32 {
    debug_assert!(
        (-4096..=4095).contains(&imm) && imm % 2 == 0,
        "B-imm out of range or odd: {imm}"
    );
    let imm = imm as u32 & 0x1fff;
    op | (((imm >> 11) & 1) << 7)
        | (((imm >> 1) & 0xf) << 8)
        | funct3(f3)
        | rs1(s1)
        | rs2(s2)
        | (((imm >> 5) & 0x3f) << 25)
        | (((imm >> 12) & 1) << 31)
}

fn u_type(op: u32, d: Reg, imm20: i32) -> u32 {
    debug_assert!(
        (-(1 << 19)..(1 << 19)).contains(&imm20),
        "U-imm20 out of range: {imm20}"
    );
    op | rd(d) | ((imm20 as u32 & 0xfffff) << 12)
}

fn j_type(op: u32, d: Reg, imm: i32) -> u32 {
    debug_assert!(
        (-(1 << 20)..(1 << 20)).contains(&imm) && imm % 2 == 0,
        "J-imm out of range or odd: {imm}"
    );
    let imm = imm as u32 & 0x1f_ffff;
    op | rd(d)
        | (((imm >> 12) & 0xff) << 12)
        | (((imm >> 11) & 1) << 20)
        | (((imm >> 1) & 0x3ff) << 21)
        | (((imm >> 20) & 1) << 31)
}

fn load_funct3(width: MemWidth, signed: bool) -> u32 {
    match (width, signed) {
        (MemWidth::B, true) => 0b000,
        (MemWidth::H, true) => 0b001,
        (MemWidth::W, true) => 0b010,
        (MemWidth::D, _) => 0b011,
        (MemWidth::B, false) => 0b100,
        (MemWidth::H, false) => 0b101,
        (MemWidth::W, false) => 0b110,
    }
}

fn branch_funct3(kind: BranchKind) -> u32 {
    match kind {
        BranchKind::Eq => 0b000,
        BranchKind::Ne => 0b001,
        BranchKind::Lt => 0b100,
        BranchKind::Ge => 0b101,
        BranchKind::Ltu => 0b110,
        BranchKind::Geu => 0b111,
    }
}

/// Encodes an instruction into its 32-bit RISC-V representation.
///
/// # Panics
///
/// Debug builds assert that immediates fit their encodable ranges; the
/// assembler guarantees this for programs it produces.
///
/// # Examples
///
/// ```
/// use helios_isa::{encode, decode, Inst, Reg, MemWidth};
/// let ld = Inst::Load { width: MemWidth::D, signed: true, rd: Reg::A0, rs1: Reg::SP, offset: 16 };
/// assert_eq!(decode(encode(&ld))?, ld);
/// # Ok::<(), helios_isa::DecodeError>(())
/// ```
pub fn encode(inst: &Inst) -> u32 {
    match *inst {
        Inst::Lui { rd: d, imm20 } => u_type(OPC_LUI, d, imm20),
        Inst::Auipc { rd: d, imm20 } => u_type(OPC_AUIPC, d, imm20),
        Inst::Jal { rd: d, offset } => j_type(OPC_JAL, d, offset),
        Inst::Jalr {
            rd: d,
            rs1: s1,
            offset,
        } => i_type(OPC_JALR, 0, d, s1, offset),
        Inst::Branch {
            kind,
            rs1: s1,
            rs2: s2,
            offset,
        } => b_type(OPC_BRANCH, branch_funct3(kind), s1, s2, offset),
        Inst::Load {
            width,
            signed,
            rd: d,
            rs1: s1,
            offset,
        } => i_type(OPC_LOAD, load_funct3(width, signed), d, s1, offset),
        Inst::Store {
            width,
            rs2: s2,
            rs1: s1,
            offset,
        } => s_type(OPC_STORE, width.log2(), s1, s2, offset),
        Inst::OpImm {
            op,
            rd: d,
            rs1: s1,
            imm,
        } => encode_op_imm(op, d, s1, imm),
        Inst::Op {
            op,
            rd: d,
            rs1: s1,
            rs2: s2,
        } => encode_op(op, d, s1, s2),
        Inst::Fence => OPC_MISC_MEM | (0b0000_1111_1111 << 20),
        Inst::Ecall => OPC_SYSTEM,
        Inst::Ebreak => OPC_SYSTEM | (1 << 20),
    }
}

fn encode_op_imm(op: AluImmOp, d: Reg, s1: Reg, imm: i32) -> u32 {
    use AluImmOp::*;
    match op {
        Addi => i_type(OPC_OP_IMM, 0b000, d, s1, imm),
        Slti => i_type(OPC_OP_IMM, 0b010, d, s1, imm),
        Sltiu => i_type(OPC_OP_IMM, 0b011, d, s1, imm),
        Xori => i_type(OPC_OP_IMM, 0b100, d, s1, imm),
        Ori => i_type(OPC_OP_IMM, 0b110, d, s1, imm),
        Andi => i_type(OPC_OP_IMM, 0b111, d, s1, imm),
        Slli => {
            debug_assert!((0..64).contains(&imm));
            OPC_OP_IMM | rd(d) | funct3(0b001) | rs1(s1) | ((imm as u32) << 20)
        }
        Srli => {
            debug_assert!((0..64).contains(&imm));
            OPC_OP_IMM | rd(d) | funct3(0b101) | rs1(s1) | ((imm as u32) << 20)
        }
        Srai => {
            debug_assert!((0..64).contains(&imm));
            OPC_OP_IMM | rd(d) | funct3(0b101) | rs1(s1) | ((imm as u32) << 20) | (0b010000 << 26)
        }
        Addiw => i_type(OPC_OP_IMM32, 0b000, d, s1, imm),
        Slliw => {
            debug_assert!((0..32).contains(&imm));
            OPC_OP_IMM32 | rd(d) | funct3(0b001) | rs1(s1) | ((imm as u32) << 20)
        }
        Srliw => {
            debug_assert!((0..32).contains(&imm));
            OPC_OP_IMM32 | rd(d) | funct3(0b101) | rs1(s1) | ((imm as u32) << 20)
        }
        Sraiw => {
            debug_assert!((0..32).contains(&imm));
            OPC_OP_IMM32 | rd(d) | funct3(0b101) | rs1(s1) | ((imm as u32) << 20) | funct7(0b0100000)
        }
    }
}

fn encode_op(op: AluOp, d: Reg, s1: Reg, s2: Reg) -> u32 {
    use AluOp::*;
    let (opc, f3, f7) = match op {
        Add => (OPC_OP, 0b000, 0b0000000),
        Sub => (OPC_OP, 0b000, 0b0100000),
        Sll => (OPC_OP, 0b001, 0b0000000),
        Slt => (OPC_OP, 0b010, 0b0000000),
        Sltu => (OPC_OP, 0b011, 0b0000000),
        Xor => (OPC_OP, 0b100, 0b0000000),
        Srl => (OPC_OP, 0b101, 0b0000000),
        Sra => (OPC_OP, 0b101, 0b0100000),
        Or => (OPC_OP, 0b110, 0b0000000),
        And => (OPC_OP, 0b111, 0b0000000),
        Addw => (OPC_OP32, 0b000, 0b0000000),
        Subw => (OPC_OP32, 0b000, 0b0100000),
        Sllw => (OPC_OP32, 0b001, 0b0000000),
        Srlw => (OPC_OP32, 0b101, 0b0000000),
        Sraw => (OPC_OP32, 0b101, 0b0100000),
        Mul => (OPC_OP, 0b000, 0b0000001),
        Mulh => (OPC_OP, 0b001, 0b0000001),
        Mulhsu => (OPC_OP, 0b010, 0b0000001),
        Mulhu => (OPC_OP, 0b011, 0b0000001),
        Div => (OPC_OP, 0b100, 0b0000001),
        Divu => (OPC_OP, 0b101, 0b0000001),
        Rem => (OPC_OP, 0b110, 0b0000001),
        Remu => (OPC_OP, 0b111, 0b0000001),
        Mulw => (OPC_OP32, 0b000, 0b0000001),
        Divw => (OPC_OP32, 0b100, 0b0000001),
        Divuw => (OPC_OP32, 0b101, 0b0000001),
        Remw => (OPC_OP32, 0b110, 0b0000001),
        Remuw => (OPC_OP32, 0b111, 0b0000001),
    };
    opc | rd(d) | funct3(f3) | rs1(s1) | rs2(s2) | funct7(f7)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_encodings() {
        // Cross-checked against the RISC-V spec / GNU as output.
        // addi a0, a0, 1  => 0x00150513
        assert_eq!(
            encode(&Inst::OpImm {
                op: AluImmOp::Addi,
                rd: Reg::A0,
                rs1: Reg::A0,
                imm: 1
            }),
            0x00150513
        );
        // ld a1, 8(sp) => 0x00813583
        assert_eq!(
            encode(&Inst::Load {
                width: MemWidth::D,
                signed: true,
                rd: Reg::A1,
                rs1: Reg::SP,
                offset: 8
            }),
            0x00813583
        );
        // sd s0, 16(sp) => 0x00813823
        assert_eq!(
            encode(&Inst::Store {
                width: MemWidth::D,
                rs2: Reg::S0,
                rs1: Reg::SP,
                offset: 16
            }),
            0x00813823
        );
        // beq a0, a1, +8 => 0x00b50463
        assert_eq!(
            encode(&Inst::Branch {
                kind: BranchKind::Eq,
                rs1: Reg::A0,
                rs2: Reg::A1,
                offset: 8
            }),
            0x00b50463
        );
        // lui t0, 0x12345 => 0x123452b7
        assert_eq!(
            encode(&Inst::Lui {
                rd: Reg::T0,
                imm20: 0x12345
            }),
            0x123452b7
        );
        // jal ra, +0 => 0x000000ef
        assert_eq!(
            encode(&Inst::Jal {
                rd: Reg::RA,
                offset: 0
            }),
            0x000000ef
        );
        // ecall => 0x00000073
        assert_eq!(encode(&Inst::Ecall), 0x00000073);
    }

    #[test]
    fn negative_immediates() {
        // addi sp, sp, -32 => 0xfe010113
        assert_eq!(
            encode(&Inst::OpImm {
                op: AluImmOp::Addi,
                rd: Reg::SP,
                rs1: Reg::SP,
                imm: -32
            }),
            0xfe010113
        );
    }
}
