//! The RV64IM instruction model.
//!
//! Instructions are represented as a structured enum rather than raw bits so
//! that the emulator, the fusion idiom matcher, and the pipeline model can
//! pattern-match on them directly. [`crate::encode`] and [`crate::decode`]
//! convert to and from the standard 32-bit RISC-V encoding.

use crate::Reg;
use std::fmt;

/// Width of a memory access in bytes.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum MemWidth {
    /// 1 byte (`lb`/`lbu`/`sb`).
    B,
    /// 2 bytes (`lh`/`lhu`/`sh`).
    H,
    /// 4 bytes (`lw`/`lwu`/`sw`).
    W,
    /// 8 bytes (`ld`/`sd`).
    D,
}

impl MemWidth {
    /// Number of bytes accessed.
    #[inline]
    pub fn bytes(self) -> u64 {
        match self {
            MemWidth::B => 1,
            MemWidth::H => 2,
            MemWidth::W => 4,
            MemWidth::D => 8,
        }
    }

    /// log2 of the access size.
    #[inline]
    pub fn log2(self) -> u32 {
        match self {
            MemWidth::B => 0,
            MemWidth::H => 1,
            MemWidth::W => 2,
            MemWidth::D => 3,
        }
    }
}

/// Conditional branch comparisons.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BranchKind {
    Eq,
    Ne,
    Lt,
    Ge,
    Ltu,
    Geu,
}

impl BranchKind {
    /// Evaluates the branch condition on two 64-bit register values.
    #[inline]
    pub fn taken(self, a: u64, b: u64) -> bool {
        match self {
            BranchKind::Eq => a == b,
            BranchKind::Ne => a != b,
            BranchKind::Lt => (a as i64) < (b as i64),
            BranchKind::Ge => (a as i64) >= (b as i64),
            BranchKind::Ltu => a < b,
            BranchKind::Geu => a >= b,
        }
    }

    /// Assembly mnemonic suffix (`"eq"` for `beq`, ...).
    pub fn mnemonic(self) -> &'static str {
        match self {
            BranchKind::Eq => "beq",
            BranchKind::Ne => "bne",
            BranchKind::Lt => "blt",
            BranchKind::Ge => "bge",
            BranchKind::Ltu => "bltu",
            BranchKind::Geu => "bgeu",
        }
    }
}

/// Register-immediate ALU operations (I-type), including the RV64 `*w`
/// 32-bit variants.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AluImmOp {
    Addi,
    Slti,
    Sltiu,
    Xori,
    Ori,
    Andi,
    Slli,
    Srli,
    Srai,
    /// 32-bit add immediate, sign-extends the 32-bit result.
    Addiw,
    Slliw,
    Srliw,
    Sraiw,
}

impl AluImmOp {
    /// Whether this is one of the `*w` operations on the low 32 bits.
    pub fn is_word(self) -> bool {
        matches!(
            self,
            AluImmOp::Addiw | AluImmOp::Slliw | AluImmOp::Srliw | AluImmOp::Sraiw
        )
    }

    /// Whether this is a shift (immediate is a shamt, not a 12-bit value).
    pub fn is_shift(self) -> bool {
        matches!(
            self,
            AluImmOp::Slli
                | AluImmOp::Srli
                | AluImmOp::Srai
                | AluImmOp::Slliw
                | AluImmOp::Srliw
                | AluImmOp::Sraiw
        )
    }

    /// Assembly mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            AluImmOp::Addi => "addi",
            AluImmOp::Slti => "slti",
            AluImmOp::Sltiu => "sltiu",
            AluImmOp::Xori => "xori",
            AluImmOp::Ori => "ori",
            AluImmOp::Andi => "andi",
            AluImmOp::Slli => "slli",
            AluImmOp::Srli => "srli",
            AluImmOp::Srai => "srai",
            AluImmOp::Addiw => "addiw",
            AluImmOp::Slliw => "slliw",
            AluImmOp::Srliw => "srliw",
            AluImmOp::Sraiw => "sraiw",
        }
    }

    /// Evaluates the operation.
    #[inline]
    pub fn eval(self, a: u64, imm: i32) -> u64 {
        let i = imm as i64 as u64;
        match self {
            AluImmOp::Addi => a.wrapping_add(i),
            AluImmOp::Slti => ((a as i64) < (i as i64)) as u64,
            AluImmOp::Sltiu => (a < i) as u64,
            AluImmOp::Xori => a ^ i,
            AluImmOp::Ori => a | i,
            AluImmOp::Andi => a & i,
            AluImmOp::Slli => a << (imm as u32 & 63),
            AluImmOp::Srli => a >> (imm as u32 & 63),
            AluImmOp::Srai => ((a as i64) >> (imm as u32 & 63)) as u64,
            AluImmOp::Addiw => (a as i32).wrapping_add(imm) as i64 as u64,
            AluImmOp::Slliw => ((a as i32) << (imm as u32 & 31)) as i64 as u64,
            AluImmOp::Srliw => (((a as u32) >> (imm as u32 & 31)) as i32) as i64 as u64,
            AluImmOp::Sraiw => ((a as i32) >> (imm as u32 & 31)) as i64 as u64,
        }
    }
}

/// Register-register ALU operations (R-type), including RV64 `*w` variants
/// and the M extension (multiply/divide).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AluOp {
    Add,
    Sub,
    Sll,
    Slt,
    Sltu,
    Xor,
    Srl,
    Sra,
    Or,
    And,
    Addw,
    Subw,
    Sllw,
    Srlw,
    Sraw,
    // M extension
    Mul,
    Mulh,
    Mulhsu,
    Mulhu,
    Div,
    Divu,
    Rem,
    Remu,
    Mulw,
    Divw,
    Divuw,
    Remw,
    Remuw,
}

impl AluOp {
    /// Whether this operation belongs to the M extension.
    pub fn is_muldiv(self) -> bool {
        matches!(
            self,
            AluOp::Mul
                | AluOp::Mulh
                | AluOp::Mulhsu
                | AluOp::Mulhu
                | AluOp::Div
                | AluOp::Divu
                | AluOp::Rem
                | AluOp::Remu
                | AluOp::Mulw
                | AluOp::Divw
                | AluOp::Divuw
                | AluOp::Remw
                | AluOp::Remuw
        )
    }

    /// Whether this is a divide/remainder (long latency, unpipelined).
    pub fn is_div(self) -> bool {
        matches!(
            self,
            AluOp::Div
                | AluOp::Divu
                | AluOp::Rem
                | AluOp::Remu
                | AluOp::Divw
                | AluOp::Divuw
                | AluOp::Remw
                | AluOp::Remuw
        )
    }

    /// Assembly mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::Sll => "sll",
            AluOp::Slt => "slt",
            AluOp::Sltu => "sltu",
            AluOp::Xor => "xor",
            AluOp::Srl => "srl",
            AluOp::Sra => "sra",
            AluOp::Or => "or",
            AluOp::And => "and",
            AluOp::Addw => "addw",
            AluOp::Subw => "subw",
            AluOp::Sllw => "sllw",
            AluOp::Srlw => "srlw",
            AluOp::Sraw => "sraw",
            AluOp::Mul => "mul",
            AluOp::Mulh => "mulh",
            AluOp::Mulhsu => "mulhsu",
            AluOp::Mulhu => "mulhu",
            AluOp::Div => "div",
            AluOp::Divu => "divu",
            AluOp::Rem => "rem",
            AluOp::Remu => "remu",
            AluOp::Mulw => "mulw",
            AluOp::Divw => "divw",
            AluOp::Divuw => "divuw",
            AluOp::Remw => "remw",
            AluOp::Remuw => "remuw",
        }
    }

    /// Evaluates the operation.
    #[inline]
    pub fn eval(self, a: u64, b: u64) -> u64 {
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::Sll => a << (b & 63),
            AluOp::Slt => ((a as i64) < (b as i64)) as u64,
            AluOp::Sltu => (a < b) as u64,
            AluOp::Xor => a ^ b,
            AluOp::Srl => a >> (b & 63),
            AluOp::Sra => ((a as i64) >> (b & 63)) as u64,
            AluOp::Or => a | b,
            AluOp::And => a & b,
            AluOp::Addw => (a as i32).wrapping_add(b as i32) as i64 as u64,
            AluOp::Subw => (a as i32).wrapping_sub(b as i32) as i64 as u64,
            AluOp::Sllw => ((a as i32) << (b as u32 & 31)) as i64 as u64,
            AluOp::Srlw => (((a as u32) >> (b as u32 & 31)) as i32) as i64 as u64,
            AluOp::Sraw => ((a as i32) >> (b as u32 & 31)) as i64 as u64,
            AluOp::Mul => a.wrapping_mul(b),
            AluOp::Mulh => (((a as i64 as i128) * (b as i64 as i128)) >> 64) as u64,
            AluOp::Mulhsu => (((a as i64 as i128) * (b as u128 as i128)) >> 64) as u64,
            AluOp::Mulhu => (((a as u128) * (b as u128)) >> 64) as u64,
            AluOp::Div => {
                if b == 0 {
                    u64::MAX
                } else if a as i64 == i64::MIN && b as i64 == -1 {
                    a
                } else {
                    ((a as i64) / (b as i64)) as u64
                }
            }
            AluOp::Divu => a.checked_div(b).unwrap_or(u64::MAX),
            AluOp::Rem => {
                if b == 0 {
                    a
                } else if a as i64 == i64::MIN && b as i64 == -1 {
                    0
                } else {
                    ((a as i64) % (b as i64)) as u64
                }
            }
            AluOp::Remu => {
                if b == 0 {
                    a
                } else {
                    a % b
                }
            }
            AluOp::Mulw => (a as i32).wrapping_mul(b as i32) as i64 as u64,
            AluOp::Divw => {
                let (a, b) = (a as i32, b as i32);
                if b == 0 {
                    u64::MAX
                } else if a == i32::MIN && b == -1 {
                    a as i64 as u64
                } else {
                    (a / b) as i64 as u64
                }
            }
            AluOp::Divuw => {
                let (a, b) = (a as u32, b as u32);
                match a.checked_div(b) {
                    Some(q) => q as i32 as i64 as u64,
                    None => u64::MAX,
                }
            }
            AluOp::Remw => {
                let (a, b) = (a as i32, b as i32);
                if b == 0 {
                    a as i64 as u64
                } else if a == i32::MIN && b == -1 {
                    0
                } else {
                    (a % b) as i64 as u64
                }
            }
            AluOp::Remuw => {
                let (a, b) = (a as u32, b as u32);
                if b == 0 {
                    a as i32 as i64 as u64
                } else {
                    (a % b) as i32 as i64 as u64
                }
            }
        }
    }
}

/// A single RV64IM architectural instruction.
///
/// In this reproduction, as in the paper (§IV footnote 2), every RISC-V
/// instruction — including loads and stores — translates to exactly one µ-op,
/// so `Inst` doubles as the µ-op type before fusion.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Inst {
    /// `lui rd, imm20` — load upper immediate.
    Lui { rd: Reg, imm20: i32 },
    /// `auipc rd, imm20` — add upper immediate to PC.
    Auipc { rd: Reg, imm20: i32 },
    /// `jal rd, offset` — jump and link.
    Jal { rd: Reg, offset: i32 },
    /// `jalr rd, offset(rs1)` — indirect jump and link.
    Jalr { rd: Reg, rs1: Reg, offset: i32 },
    /// Conditional branch `bXX rs1, rs2, offset`.
    Branch {
        kind: BranchKind,
        rs1: Reg,
        rs2: Reg,
        offset: i32,
    },
    /// Load `l{b,h,w,d}[u] rd, offset(rs1)`.
    Load {
        width: MemWidth,
        signed: bool,
        rd: Reg,
        rs1: Reg,
        offset: i32,
    },
    /// Store `s{b,h,w,d} rs2, offset(rs1)`.
    Store {
        width: MemWidth,
        rs2: Reg,
        rs1: Reg,
        offset: i32,
    },
    /// Register-immediate ALU operation.
    OpImm {
        op: AluImmOp,
        rd: Reg,
        rs1: Reg,
        imm: i32,
    },
    /// Register-register ALU operation.
    Op {
        op: AluOp,
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    /// `fence` — memory ordering fence (serializing in this model).
    Fence,
    /// `ecall` — environment call (serializing).
    Ecall,
    /// `ebreak` — breakpoint (serializing).
    Ebreak,
}

impl Inst {
    /// Canonical no-op (`addi x0, x0, 0`).
    pub const NOP: Inst = Inst::OpImm {
        op: AluImmOp::Addi,
        rd: Reg::ZERO,
        rs1: Reg::ZERO,
        imm: 0,
    };

    /// Destination register, if the instruction writes one.
    ///
    /// Writes to `x0` are reported as `None` since they are architecturally
    /// discarded (and consume no rename resources in the pipeline model).
    pub fn rd(&self) -> Option<Reg> {
        let rd = match *self {
            Inst::Lui { rd, .. }
            | Inst::Auipc { rd, .. }
            | Inst::Jal { rd, .. }
            | Inst::Jalr { rd, .. }
            | Inst::Load { rd, .. }
            | Inst::OpImm { rd, .. }
            | Inst::Op { rd, .. } => rd,
            _ => return None,
        };
        (!rd.is_zero()).then_some(rd)
    }

    /// First source register, if any (reads of `x0` are still reported).
    pub fn rs1(&self) -> Option<Reg> {
        match *self {
            Inst::Jalr { rs1, .. }
            | Inst::Branch { rs1, .. }
            | Inst::Load { rs1, .. }
            | Inst::Store { rs1, .. }
            | Inst::OpImm { rs1, .. }
            | Inst::Op { rs1, .. } => Some(rs1),
            _ => None,
        }
    }

    /// Second source register, if any.
    pub fn rs2(&self) -> Option<Reg> {
        match *self {
            Inst::Branch { rs2, .. } | Inst::Store { rs2, .. } | Inst::Op { rs2, .. } => Some(rs2),
            _ => None,
        }
    }

    /// Source registers excluding `x0` (which never creates a dependency).
    pub fn sources(&self) -> impl Iterator<Item = Reg> {
        self.rs1()
            .into_iter()
            .chain(self.rs2())
            .filter(|r| !r.is_zero())
    }

    /// Whether this is a load.
    #[inline]
    pub fn is_load(&self) -> bool {
        matches!(self, Inst::Load { .. })
    }

    /// Whether this is a store.
    #[inline]
    pub fn is_store(&self) -> bool {
        matches!(self, Inst::Store { .. })
    }

    /// Whether this is any memory access.
    #[inline]
    pub fn is_mem(&self) -> bool {
        self.is_load() || self.is_store()
    }

    /// Memory access width for loads and stores.
    #[inline]
    pub fn mem_width(&self) -> Option<MemWidth> {
        match *self {
            Inst::Load { width, .. } | Inst::Store { width, .. } => Some(width),
            _ => None,
        }
    }

    /// Memory offset for loads and stores.
    #[inline]
    pub fn mem_offset(&self) -> Option<i32> {
        match *self {
            Inst::Load { offset, .. } | Inst::Store { offset, .. } => Some(offset),
            _ => None,
        }
    }

    /// Base register for loads and stores.
    #[inline]
    pub fn mem_base(&self) -> Option<Reg> {
        match *self {
            Inst::Load { rs1, .. } | Inst::Store { rs1, .. } => Some(rs1),
            _ => None,
        }
    }

    /// Whether this instruction changes control flow (branches and jumps).
    #[inline]
    pub fn is_control(&self) -> bool {
        matches!(
            self,
            Inst::Jal { .. } | Inst::Jalr { .. } | Inst::Branch { .. }
        )
    }

    /// Whether this is a conditional branch.
    #[inline]
    pub fn is_cond_branch(&self) -> bool {
        matches!(self, Inst::Branch { .. })
    }

    /// Whether this instruction is an indirect jump.
    #[inline]
    pub fn is_indirect(&self) -> bool {
        matches!(self, Inst::Jalr { .. })
    }

    /// Whether this instruction serializes the pipeline (fences and
    /// environment calls; the paper's "serializing instruction" in §IV-B2).
    #[inline]
    pub fn is_serializing(&self) -> bool {
        matches!(self, Inst::Fence | Inst::Ecall | Inst::Ebreak)
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&crate::disasm::disassemble(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rd_filters_x0() {
        let i = Inst::OpImm {
            op: AluImmOp::Addi,
            rd: Reg::ZERO,
            rs1: Reg::A0,
            imm: 1,
        };
        assert_eq!(i.rd(), None);
        let i = Inst::OpImm {
            op: AluImmOp::Addi,
            rd: Reg::A1,
            rs1: Reg::A0,
            imm: 1,
        };
        assert_eq!(i.rd(), Some(Reg::A1));
    }

    #[test]
    fn sources_filter_x0() {
        let i = Inst::Op {
            op: AluOp::Add,
            rd: Reg::A0,
            rs1: Reg::ZERO,
            rs2: Reg::A2,
        };
        let srcs: Vec<_> = i.sources().collect();
        assert_eq!(srcs, vec![Reg::A2]);
    }

    #[test]
    fn mem_classification() {
        let ld = Inst::Load {
            width: MemWidth::D,
            signed: true,
            rd: Reg::A0,
            rs1: Reg::SP,
            offset: 16,
        };
        assert!(ld.is_load() && ld.is_mem() && !ld.is_store());
        assert_eq!(ld.mem_width(), Some(MemWidth::D));
        assert_eq!(ld.mem_offset(), Some(16));
        assert_eq!(ld.mem_base(), Some(Reg::SP));
        assert!(!ld.is_serializing());
        assert!(Inst::Fence.is_serializing());
    }

    #[test]
    fn branch_eval() {
        assert!(BranchKind::Lt.taken(u64::MAX, 0)); // -1 < 0 signed
        assert!(!BranchKind::Ltu.taken(u64::MAX, 0));
        assert!(BranchKind::Geu.taken(u64::MAX, 0));
        assert!(BranchKind::Eq.taken(3, 3));
        assert!(BranchKind::Ne.taken(3, 4));
        assert!(BranchKind::Ge.taken(0, 0));
    }

    #[test]
    fn alu_word_ops_sign_extend() {
        assert_eq!(
            AluOp::Addw.eval(0x7fff_ffff, 1),
            0xffff_ffff_8000_0000u64,
            "addw overflow wraps into the sign bit and sign-extends"
        );
        assert_eq!(AluImmOp::Addiw.eval(0xffff_ffff, 1), 0);
        assert_eq!(AluImmOp::Srliw.eval(0x8000_0000, 31), 1);
        assert_eq!(
            AluImmOp::Sraiw.eval(0x8000_0000, 31),
            0xffff_ffff_ffff_ffffu64
        );
    }

    #[test]
    fn division_by_zero_semantics() {
        // RISC-V defines div-by-zero as all-ones / dividend, no traps.
        assert_eq!(AluOp::Div.eval(42, 0), u64::MAX);
        assert_eq!(AluOp::Divu.eval(42, 0), u64::MAX);
        assert_eq!(AluOp::Rem.eval(42, 0), 42);
        assert_eq!(AluOp::Remu.eval(42, 0), 42);
        // Overflow case.
        assert_eq!(AluOp::Div.eval(i64::MIN as u64, -1i64 as u64), i64::MIN as u64);
        assert_eq!(AluOp::Rem.eval(i64::MIN as u64, -1i64 as u64), 0);
    }

    #[test]
    fn shift_shamt_masking() {
        // RV64 register shifts use rs2[5:0]; the *w variants use rs2[4:0].
        let x = 0x0123_4567_89ab_cdefu64;
        assert_eq!(AluOp::Sll.eval(x, 64), x, "sll masks shamt to 6 bits");
        assert_eq!(AluOp::Srl.eval(x, 64), x);
        assert_eq!(AluOp::Sra.eval(x, 64), x);
        assert_eq!(AluOp::Sll.eval(1, 127), 1 << 63);
        assert_eq!(AluOp::Sllw.eval(x, 32), (x as i32) as i64 as u64, "sllw masks shamt to 5 bits");
        assert_eq!(AluOp::Srlw.eval(x, 32), (x as u32) as i32 as i64 as u64);
        assert_eq!(AluOp::Sraw.eval(x, 32), (x as i32) as i64 as u64);
        assert_eq!(AluOp::Sraw.eval(0x8000_0000, 35), 0xffff_ffff_f000_0000u64, "shamt 35 & 31 = 3");
        // Immediate shifts likewise; Srliw operates on the low 32 bits only.
        assert_eq!(AluImmOp::Srli.eval(0x8000_0000_0000_0000, 63), 1);
        assert_eq!(AluImmOp::Srai.eval(0x8000_0000_0000_0000, 63), u64::MAX);
        assert_eq!(AluImmOp::Slliw.eval(1, 31), 0xffff_ffff_8000_0000u64, "slliw result sign-extends");
        assert_eq!(AluImmOp::Srliw.eval(0xffff_ffff_8000_0000u64, 0), 0xffff_ffff_8000_0000u64, "srliw 0 still sign-extends the low word");
    }

    #[test]
    fn slt_variants_signedness() {
        assert_eq!(AluOp::Slt.eval(u64::MAX, 0), 1, "-1 < 0 signed");
        assert_eq!(AluOp::Sltu.eval(u64::MAX, 0), 0);
        assert_eq!(AluOp::Sltu.eval(0, 1), 1);
        assert_eq!(AluOp::Sltu.eval(1, 1), 0);
        // sltiu compares against the sign-extended immediate as unsigned:
        // sltiu rd, rs, -1 is "not equal to 2^64-1", i.e. true for anything
        // but u64::MAX.
        assert_eq!(AluImmOp::Sltiu.eval(5, -1), 1);
        assert_eq!(AluImmOp::Sltiu.eval(u64::MAX, -1), 0);
        assert_eq!(AluImmOp::Slti.eval(u64::MAX, 0), 1);
    }

    #[test]
    fn word_division_edge_cases() {
        // Division by zero: quotient all-ones (sign-extended for *w),
        // remainder the dividend (sign-extended low word for *w).
        assert_eq!(AluOp::Divw.eval(42, 0), u64::MAX);
        assert_eq!(AluOp::Divuw.eval(42, 0), u64::MAX);
        assert_eq!(AluOp::Remw.eval(0x8000_0001u64, 0), 0xffff_ffff_8000_0001u64);
        assert_eq!(AluOp::Remuw.eval(0x8000_0001u64, 0), 0xffff_ffff_8000_0001u64);
        // Signed overflow: i32::MIN / -1 = i32::MIN, remainder 0.
        let min_w = i32::MIN as u32 as u64;
        let neg1 = u64::MAX;
        assert_eq!(AluOp::Divw.eval(min_w, neg1), i32::MIN as i64 as u64);
        assert_eq!(AluOp::Remw.eval(min_w, neg1), 0);
        // The *w ops only read the low 32 bits of their operands, and
        // divuw/remuw still sign-extend their 32-bit unsigned results.
        assert_eq!(AluOp::Divw.eval(0xdead_beef_0000_000au64, 5), 2);
        assert_eq!(AluOp::Divuw.eval(0xffff_fffeu64, 1), 0xffff_ffff_ffff_fffeu64);
        assert_eq!(AluOp::Remuw.eval(0xffff_ffffu64, 0x1_0000_0000u64), u64::MAX, "divisor low word is 0");
    }

    #[test]
    fn mulh_variants() {
        assert_eq!(AluOp::Mulhu.eval(u64::MAX, 2), 1);
        assert_eq!(AluOp::Mulh.eval(-1i64 as u64, 2), u64::MAX); // -1*2 >> 64 = -1
        assert_eq!(AluOp::Mulhsu.eval(-1i64 as u64, 2), u64::MAX);
    }
}
