//! # helios-isa — RV64IM instruction set model
//!
//! The ISA substrate for the Helios instruction-fusion reproduction
//! (MICRO 2022). Provides:
//!
//! * a structured instruction model ([`Inst`]) the rest of the stack
//!   pattern-matches on,
//! * binary [`encode`]/[`decode`] against the standard RISC-V formats,
//! * a programmatic assembler ([`Asm`]) and text assembler ([`parse_asm`])
//!   used to author the benchmark kernels,
//! * a disassembler ([`disassemble`]).
//!
//! The paper targets RV64G; this model implements the RV64IM integer subset
//! plus `fence`/`ecall`/`ebreak`, which covers every fusion idiom studied
//! (all idioms are integer ALU + memory sequences — see `helios-core`).
//!
//! # Examples
//!
//! ```
//! use helios_isa::{Asm, Reg};
//!
//! let mut a = Asm::new();
//! let buf = a.words64(&[1, 2, 3, 4]);
//! a.la(Reg::A1, buf);
//! a.ld(Reg::A2, 0, Reg::A1);   // these two loads form a load-pair idiom:
//! a.ld(Reg::A3, 8, Reg::A1);   // same base register, contiguous offsets
//! a.halt();
//! let prog = a.assemble()?;
//! assert!(prog.fetch(prog.entry).is_some());
//! # Ok::<(), helios_isa::AsmError>(())
//! ```

mod asm;
mod decode;
mod disasm;
mod encode;
mod inst;
mod reg;

/// Version stamp of the ISA model's *semantics*: bump whenever a change to
/// decoding, encoding, or instruction behaviour could make a previously
/// recorded µ-op trace disagree with a fresh emulation of the same program.
/// On-disk trace artifacts (`helios-emu`'s `TraceStore` files) embed this
/// stamp so a stale trace is detected and re-recorded instead of silently
/// feeding outdated behaviour into a sweep.
pub const ISA_VERSION: u32 = 1;

pub use asm::{
    parse_asm, Asm, AsmError, Label, ParseError, Program, DEFAULT_CODE_BASE, DEFAULT_DATA_BASE,
    DEFAULT_STACK_TOP,
};
pub use decode::{decode, DecodeError};
pub use disasm::disassemble;
pub use encode::encode;
pub use inst::{AluImmOp, AluOp, BranchKind, Inst, MemWidth};
pub use reg::Reg;
