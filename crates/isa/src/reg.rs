//! Architectural integer registers of RV64.

use std::fmt;

/// An RV64 integer architectural register, `x0` through `x31`.
///
/// `x0` is hard-wired to zero: writes to it are discarded and reads always
/// return 0. The emulator and the rename stage both rely on this invariant.
///
/// # Examples
///
/// ```
/// use helios_isa::Reg;
/// let sp = Reg::SP;
/// assert_eq!(sp.index(), 2);
/// assert_eq!(sp.to_string(), "sp");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

impl Reg {
    /// Hard-wired zero register.
    pub const ZERO: Reg = Reg(0);
    /// Return address.
    pub const RA: Reg = Reg(1);
    /// Stack pointer.
    pub const SP: Reg = Reg(2);
    /// Global pointer.
    pub const GP: Reg = Reg(3);
    /// Thread pointer.
    pub const TP: Reg = Reg(4);
    /// Temporaries `t0`-`t2`.
    pub const T0: Reg = Reg(5);
    pub const T1: Reg = Reg(6);
    pub const T2: Reg = Reg(7);
    /// Saved register / frame pointer.
    pub const S0: Reg = Reg(8);
    pub const FP: Reg = Reg(8);
    pub const S1: Reg = Reg(9);
    /// Argument / return registers `a0`-`a7`.
    pub const A0: Reg = Reg(10);
    pub const A1: Reg = Reg(11);
    pub const A2: Reg = Reg(12);
    pub const A3: Reg = Reg(13);
    pub const A4: Reg = Reg(14);
    pub const A5: Reg = Reg(15);
    pub const A6: Reg = Reg(16);
    pub const A7: Reg = Reg(17);
    /// Saved registers `s2`-`s11`.
    pub const S2: Reg = Reg(18);
    pub const S3: Reg = Reg(19);
    pub const S4: Reg = Reg(20);
    pub const S5: Reg = Reg(21);
    pub const S6: Reg = Reg(22);
    pub const S7: Reg = Reg(23);
    pub const S8: Reg = Reg(24);
    pub const S9: Reg = Reg(25);
    pub const S10: Reg = Reg(26);
    pub const S11: Reg = Reg(27);
    /// Temporaries `t3`-`t6`.
    pub const T3: Reg = Reg(28);
    pub const T4: Reg = Reg(29);
    pub const T5: Reg = Reg(30);
    pub const T6: Reg = Reg(31);

    /// Creates a register from its index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`.
    #[inline]
    pub fn new(index: u8) -> Reg {
        assert!(index < 32, "register index {index} out of range");
        Reg(index)
    }

    /// Creates a register from its index, returning `None` if out of range.
    #[inline]
    pub fn try_new(index: u8) -> Option<Reg> {
        (index < 32).then_some(Reg(index))
    }

    /// The register's index, `0..32`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Whether this is the hard-wired zero register `x0`.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// ABI mnemonic (`"sp"`, `"a0"`, ...).
    pub fn abi_name(self) -> &'static str {
        const NAMES: [&str; 32] = [
            "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1", "a0", "a1", "a2", "a3",
            "a4", "a5", "a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11",
            "t3", "t4", "t5", "t6",
        ];
        NAMES[self.index()]
    }

    /// Parses either an `xN` numeric name or an ABI name.
    ///
    /// ```
    /// use helios_isa::Reg;
    /// assert_eq!(Reg::parse("x2"), Some(Reg::SP));
    /// assert_eq!(Reg::parse("sp"), Some(Reg::SP));
    /// assert_eq!(Reg::parse("fp"), Some(Reg::S0));
    /// assert_eq!(Reg::parse("x32"), None);
    /// ```
    pub fn parse(s: &str) -> Option<Reg> {
        if let Some(num) = s.strip_prefix('x') {
            if let Ok(n) = num.parse::<u8>() {
                return Reg::try_new(n);
            }
        }
        if s == "fp" {
            return Some(Reg::FP);
        }
        (0..32u8).map(Reg).find(|r| r.abi_name() == s)
    }

    /// Iterator over all 32 registers in index order.
    pub fn all() -> impl Iterator<Item = Reg> {
        (0..32u8).map(Reg)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.abi_name())
    }
}

impl fmt::Debug for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}/{}", self.0, self.abi_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abi_names_roundtrip() {
        for r in Reg::all() {
            assert_eq!(Reg::parse(r.abi_name()), Some(r));
            assert_eq!(Reg::parse(&format!("x{}", r.index())), Some(r));
        }
    }

    #[test]
    fn zero_is_zero() {
        assert!(Reg::ZERO.is_zero());
        assert!(!Reg::RA.is_zero());
    }

    #[test]
    #[should_panic]
    fn out_of_range_panics() {
        let _ = Reg::new(32);
    }

    #[test]
    fn try_new_bounds() {
        assert_eq!(Reg::try_new(31), Some(Reg::T6));
        assert_eq!(Reg::try_new(32), None);
    }

    #[test]
    fn fp_aliases_s0() {
        assert_eq!(Reg::FP, Reg::S0);
        assert_eq!(Reg::parse("fp"), Some(Reg::S0));
    }
}
