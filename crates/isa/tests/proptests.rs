//! Property tests for the ISA layer: every representable instruction must
//! survive an encode→decode round trip, and the decoder must never panic on
//! arbitrary words.

use helios_isa::{decode, disassemble, encode, AluImmOp, AluOp, BranchKind, Inst, MemWidth, Reg};
use proptest::prelude::*;

fn reg() -> impl Strategy<Value = Reg> {
    (0u8..32).prop_map(Reg::new)
}

fn mem_width() -> impl Strategy<Value = MemWidth> {
    prop_oneof![
        Just(MemWidth::B),
        Just(MemWidth::H),
        Just(MemWidth::W),
        Just(MemWidth::D)
    ]
}

fn alu_imm_op() -> impl Strategy<Value = AluImmOp> {
    prop_oneof![
        Just(AluImmOp::Addi),
        Just(AluImmOp::Slti),
        Just(AluImmOp::Sltiu),
        Just(AluImmOp::Xori),
        Just(AluImmOp::Ori),
        Just(AluImmOp::Andi),
        Just(AluImmOp::Addiw),
    ]
}

fn shift_op() -> impl Strategy<Value = (AluImmOp, i32)> {
    prop_oneof![
        ((Just(AluImmOp::Slli)), 0i32..64),
        ((Just(AluImmOp::Srli)), 0i32..64),
        ((Just(AluImmOp::Srai)), 0i32..64),
        ((Just(AluImmOp::Slliw)), 0i32..32),
        ((Just(AluImmOp::Srliw)), 0i32..32),
        ((Just(AluImmOp::Sraiw)), 0i32..32),
    ]
}

fn alu_op() -> impl Strategy<Value = AluOp> {
    prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::Sll),
        Just(AluOp::Slt),
        Just(AluOp::Sltu),
        Just(AluOp::Xor),
        Just(AluOp::Srl),
        Just(AluOp::Sra),
        Just(AluOp::Or),
        Just(AluOp::And),
        Just(AluOp::Addw),
        Just(AluOp::Subw),
        Just(AluOp::Mul),
        Just(AluOp::Mulh),
        Just(AluOp::Div),
        Just(AluOp::Divu),
        Just(AluOp::Rem),
        Just(AluOp::Remu),
        Just(AluOp::Mulw),
        Just(AluOp::Divw),
        Just(AluOp::Remw),
    ]
}

fn branch_kind() -> impl Strategy<Value = BranchKind> {
    prop_oneof![
        Just(BranchKind::Eq),
        Just(BranchKind::Ne),
        Just(BranchKind::Lt),
        Just(BranchKind::Ge),
        Just(BranchKind::Ltu),
        Just(BranchKind::Geu),
    ]
}

fn inst() -> impl Strategy<Value = Inst> {
    prop_oneof![
        (reg(), -(1 << 19)..(1 << 19)).prop_map(|(rd, imm20)| Inst::Lui { rd, imm20 }),
        (reg(), -(1 << 19)..(1 << 19)).prop_map(|(rd, imm20)| Inst::Auipc { rd, imm20 }),
        (reg(), (-(1 << 19)..(1 << 19)).prop_map(|o: i32| o * 2))
            .prop_map(|(rd, offset)| Inst::Jal { rd, offset }),
        (reg(), reg(), -2048i32..2048).prop_map(|(rd, rs1, offset)| Inst::Jalr {
            rd,
            rs1,
            offset
        }),
        (branch_kind(), reg(), reg(), (-2048i32..2048).prop_map(|o| o * 2)).prop_map(
            |(kind, rs1, rs2, offset)| Inst::Branch {
                kind,
                rs1,
                rs2,
                offset
            }
        ),
        (mem_width(), any::<bool>(), reg(), reg(), -2048i32..2048).prop_map(
            |(width, signed, rd, rs1, offset)| Inst::Load {
                width,
                // ld has no unsigned variant in RV64.
                signed: signed || width == MemWidth::D,
                rd,
                rs1,
                offset
            }
        ),
        (mem_width(), reg(), reg(), -2048i32..2048).prop_map(|(width, rs2, rs1, offset)| {
            Inst::Store {
                width,
                rs2,
                rs1,
                offset,
            }
        }),
        (alu_imm_op(), reg(), reg(), -2048i32..2048)
            .prop_map(|(op, rd, rs1, imm)| Inst::OpImm { op, rd, rs1, imm }),
        (shift_op(), reg(), reg()).prop_map(|((op, imm), rd, rs1)| Inst::OpImm {
            op,
            rd,
            rs1,
            imm
        }),
        (alu_op(), reg(), reg(), reg()).prop_map(|(op, rd, rs1, rs2)| Inst::Op {
            op,
            rd,
            rs1,
            rs2
        }),
        Just(Inst::Fence),
        Just(Inst::Ecall),
        Just(Inst::Ebreak),
    ]
}

proptest! {
    /// Every instruction survives encode → decode unchanged.
    #[test]
    fn encode_decode_roundtrip(i in inst()) {
        let word = encode(&i);
        let back = decode(word).expect("encoded word must decode");
        prop_assert_eq!(back, i);
    }

    /// The decoder never panics on arbitrary 32-bit words, and decoding is
    /// idempotent: re-encoding an accepted word decodes to the same
    /// instruction. (Exact word identity does not hold for `fence`, whose
    /// ordering fields we canonicalize away.)
    #[test]
    fn decode_total_and_idempotent(word in any::<u32>()) {
        if let Ok(i) = decode(word) {
            let reencoded = encode(&i);
            prop_assert_eq!(decode(reencoded).expect("canonical form decodes"), i);
        }
    }

    /// Disassembly is never empty and round trips don't crash.
    #[test]
    fn disassembly_nonempty(i in inst()) {
        prop_assert!(!disassemble(&i).is_empty());
    }

    /// `sources()` never yields x0 and `rd()` never reports x0.
    #[test]
    fn x0_is_invisible(i in inst()) {
        prop_assert!(i.sources().all(|r| !r.is_zero()));
        prop_assert!(i.rd().map_or(true, |r| !r.is_zero()));
    }
}
