//! Randomized property tests for the ISA layer: every representable
//! instruction must survive an encode→decode round trip, and the decoder
//! must never panic on arbitrary words. Driven by a seeded deterministic
//! generator (helios-prng) so failures replay exactly.

use helios_isa::{decode, disassemble, encode, AluImmOp, AluOp, BranchKind, Inst, MemWidth, Reg};
use helios_prng::{Rng, SeedableRng, StdRng};

const CASES: usize = 2_000;

fn reg(rng: &mut StdRng) -> Reg {
    Reg::new(rng.gen_range(0..32u8))
}

fn mem_width(rng: &mut StdRng) -> MemWidth {
    match rng.gen_range(0..4u8) {
        0 => MemWidth::B,
        1 => MemWidth::H,
        2 => MemWidth::W,
        _ => MemWidth::D,
    }
}

fn alu_imm_op(rng: &mut StdRng) -> AluImmOp {
    [
        AluImmOp::Addi,
        AluImmOp::Slti,
        AluImmOp::Sltiu,
        AluImmOp::Xori,
        AluImmOp::Ori,
        AluImmOp::Andi,
        AluImmOp::Addiw,
    ][rng.gen_range(0..7usize)]
}

fn shift_op(rng: &mut StdRng) -> (AluImmOp, i32) {
    match rng.gen_range(0..6u8) {
        0 => (AluImmOp::Slli, rng.gen_range(0..64i32)),
        1 => (AluImmOp::Srli, rng.gen_range(0..64i32)),
        2 => (AluImmOp::Srai, rng.gen_range(0..64i32)),
        3 => (AluImmOp::Slliw, rng.gen_range(0..32i32)),
        4 => (AluImmOp::Srliw, rng.gen_range(0..32i32)),
        _ => (AluImmOp::Sraiw, rng.gen_range(0..32i32)),
    }
}

fn alu_op(rng: &mut StdRng) -> AluOp {
    [
        AluOp::Add,
        AluOp::Sub,
        AluOp::Sll,
        AluOp::Slt,
        AluOp::Sltu,
        AluOp::Xor,
        AluOp::Srl,
        AluOp::Sra,
        AluOp::Or,
        AluOp::And,
        AluOp::Addw,
        AluOp::Subw,
        AluOp::Mul,
        AluOp::Mulh,
        AluOp::Div,
        AluOp::Divu,
        AluOp::Rem,
        AluOp::Remu,
        AluOp::Mulw,
        AluOp::Divw,
        AluOp::Remw,
    ][rng.gen_range(0..21usize)]
}

fn branch_kind(rng: &mut StdRng) -> BranchKind {
    [
        BranchKind::Eq,
        BranchKind::Ne,
        BranchKind::Lt,
        BranchKind::Ge,
        BranchKind::Ltu,
        BranchKind::Geu,
    ][rng.gen_range(0..6usize)]
}

fn inst(rng: &mut StdRng) -> Inst {
    match rng.gen_range(0..13u8) {
        0 => Inst::Lui {
            rd: reg(rng),
            imm20: rng.gen_range(-(1 << 19)..(1i32 << 19)),
        },
        1 => Inst::Auipc {
            rd: reg(rng),
            imm20: rng.gen_range(-(1 << 19)..(1i32 << 19)),
        },
        2 => Inst::Jal {
            rd: reg(rng),
            offset: rng.gen_range(-(1 << 19)..(1i32 << 19)) * 2,
        },
        3 => Inst::Jalr {
            rd: reg(rng),
            rs1: reg(rng),
            offset: rng.gen_range(-2048..2048i32),
        },
        4 => Inst::Branch {
            kind: branch_kind(rng),
            rs1: reg(rng),
            rs2: reg(rng),
            offset: rng.gen_range(-2048..2048i32) * 2,
        },
        5 => {
            let width = mem_width(rng);
            Inst::Load {
                width,
                // ld has no unsigned variant in RV64.
                signed: rng.gen::<bool>() || width == MemWidth::D,
                rd: reg(rng),
                rs1: reg(rng),
                offset: rng.gen_range(-2048..2048i32),
            }
        }
        6 => Inst::Store {
            width: mem_width(rng),
            rs2: reg(rng),
            rs1: reg(rng),
            offset: rng.gen_range(-2048..2048i32),
        },
        7 => Inst::OpImm {
            op: alu_imm_op(rng),
            rd: reg(rng),
            rs1: reg(rng),
            imm: rng.gen_range(-2048..2048i32),
        },
        8 => {
            let (op, imm) = shift_op(rng);
            Inst::OpImm {
                op,
                rd: reg(rng),
                rs1: reg(rng),
                imm,
            }
        }
        9 => Inst::Op {
            op: alu_op(rng),
            rd: reg(rng),
            rs1: reg(rng),
            rs2: reg(rng),
        },
        10 => Inst::Fence,
        11 => Inst::Ecall,
        _ => Inst::Ebreak,
    }
}

/// Every instruction survives encode → decode unchanged.
#[test]
fn encode_decode_roundtrip() {
    let mut rng = StdRng::seed_from_u64(0x15a_0001);
    for _ in 0..CASES {
        let i = inst(&mut rng);
        let word = encode(&i);
        let back = decode(word).expect("encoded word must decode");
        assert_eq!(back, i, "roundtrip failed for {i:?} (word {word:#010x})");
    }
}

/// The decoder never panics on arbitrary 32-bit words, and decoding is
/// idempotent: re-encoding an accepted word decodes to the same
/// instruction. (Exact word identity does not hold for `fence`, whose
/// ordering fields we canonicalize away.)
#[test]
fn decode_total_and_idempotent() {
    let mut rng = StdRng::seed_from_u64(0x15a_0002);
    for _ in 0..20_000 {
        let word: u32 = rng.gen();
        if let Ok(i) = decode(word) {
            let reencoded = encode(&i);
            assert_eq!(decode(reencoded).expect("canonical form decodes"), i);
        }
    }
}

/// Disassembly is never empty and round trips don't crash.
#[test]
fn disassembly_nonempty() {
    let mut rng = StdRng::seed_from_u64(0x15a_0003);
    for _ in 0..CASES {
        let i = inst(&mut rng);
        assert!(!disassemble(&i).is_empty(), "empty disassembly for {i:?}");
    }
}

/// `sources()` never yields x0 and `rd()` never reports x0.
#[test]
fn x0_is_invisible() {
    let mut rng = StdRng::seed_from_u64(0x15a_0004);
    for _ in 0..CASES {
        let i = inst(&mut rng);
        assert!(i.sources().all(|r| !r.is_zero()), "x0 source in {i:?}");
        assert!(i.rd().is_none_or(|r| !r.is_zero()), "x0 dest in {i:?}");
    }
}
