//! # helios-prng — deterministic pseudo-random numbers, no dependencies
//!
//! A minimal, self-contained PRNG used everywhere the workspace needs
//! reproducible randomness: workload data generation, randomized tests, and
//! the fault-injection harness. The API mirrors the subset of the `rand`
//! crate the workspace uses (`StdRng::seed_from_u64`, `Rng::gen`,
//! `Rng::gen_range`, `Rng::gen_bool`, `SliceRandom::shuffle`) so call sites
//! read identically, but the implementation is ~150 lines of std-only code:
//! xoshiro256** seeded through splitmix64.
//!
//! Determinism is a hard requirement here — every workload embeds data
//! generated at build time *and* a checksum computed from the same data, and
//! the fault-injection soak harness must replay failures exactly — so the
//! generator is fully specified by its seed and will never change behaviour
//! behind a version bump.
//!
//! # Examples
//!
//! ```
//! use helios_prng::{Rng, SeedableRng, SliceRandom, StdRng};
//!
//! let mut rng = StdRng::seed_from_u64(42);
//! let x: u64 = rng.gen();
//! let d = rng.gen_range(1..7u64);
//! assert!((1..7).contains(&d));
//! let mut v = vec![1, 2, 3, 4];
//! v.shuffle(&mut rng);
//! let _ = x;
//! // Same seed, same stream.
//! let mut rng2 = StdRng::seed_from_u64(42);
//! assert_eq!(rng2.gen::<u64>(), x);
//! ```

use std::ops::{Range, RangeInclusive};

/// xoshiro256** state (<https://prng.di.unimi.it/>), seeded via splitmix64.
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

/// Seeding constructor, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> StdRng {
        // splitmix64 expansion, as recommended by the xoshiro authors.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        };
        StdRng {
            s: [next(), next(), next(), next()],
        }
    }
}

impl StdRng {
    /// The next 64 raw bits of the stream.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// A type a generator can produce uniformly over its full domain.
pub trait RandValue {
    fn from_rng(rng: &mut StdRng) -> Self;
}

macro_rules! impl_rand_value {
    ($($t:ty),*) => {$(
        impl RandValue for $t {
            #[inline]
            fn from_rng(rng: &mut StdRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_rand_value!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl RandValue for bool {
    #[inline]
    fn from_rng(rng: &mut StdRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// A range a generator can sample uniformly, mirroring
/// `rand::distributions::uniform::SampleRange`.
pub trait RandRange {
    type Output;
    fn sample(self, rng: &mut StdRng) -> Self::Output;
}

macro_rules! impl_rand_range_uint {
    ($($t:ty),*) => {$(
        impl RandRange for Range<$t> {
            type Output = $t;
            #[inline]
            fn sample(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "gen_range on an empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl RandRange for RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample(self, rng: &mut StdRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on an empty range");
                let span = (hi - lo) as u64 + 1;
                if span == 0 {
                    // Full-domain u64 inclusive range.
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
impl_rand_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_rand_range_int {
    ($($t:ty),*) => {$(
        impl RandRange for Range<$t> {
            type Output = $t;
            #[inline]
            fn sample(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "gen_range on an empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add((rng.next_u64() % span) as i64) as $t
            }
        }
        impl RandRange for RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample(self, rng: &mut StdRng) -> $t {
                let (lo, hi) = (*self.start() as i64, *self.end() as i64);
                assert!(lo <= hi, "gen_range on an empty range");
                let span = hi.wrapping_sub(lo) as u64 + 1;
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % span) as i64) as $t
            }
        }
    )*};
}
impl_rand_range_int!(i8, i16, i32, i64, isize);

/// The generator interface, mirroring the used subset of `rand::Rng`.
pub trait Rng {
    fn raw(&mut self) -> &mut StdRng;

    /// A uniform value over the type's full domain.
    #[inline]
    fn gen<T: RandValue>(&mut self) -> T {
        T::from_rng(self.raw())
    }

    /// A uniform value in `range` (half-open or inclusive).
    #[inline]
    fn gen_range<R: RandRange>(&mut self, range: R) -> R::Output {
        range.sample(self.raw())
    }

    /// `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        // 53-bit mantissa comparison: exact for the p values in use.
        ((self.raw().next_u64() >> 11) as f64) < p * (1u64 << 53) as f64
    }
}

impl Rng for StdRng {
    #[inline]
    fn raw(&mut self) -> &mut StdRng {
        self
    }
}

/// Slice helpers, mirroring the used subset of `rand::seq::SliceRandom`.
pub trait SliceRandom {
    type Item;
    /// Uniform Fisher–Yates shuffle in place.
    fn shuffle(&mut self, rng: &mut StdRng);
    /// A uniformly chosen element, `None` when empty.
    fn choose<'a>(&'a self, rng: &mut StdRng) -> Option<&'a Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle(&mut self, rng: &mut StdRng) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<'a>(&'a self, rng: &mut StdRng) -> Option<&'a T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64(), "different seeds diverge");
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            assert!((1..1000u64).contains(&rng.gen_range(1..1000u64)));
            assert!((-128..128i16).contains(&rng.gen_range(-128..128i16)));
            assert!((0..3u8).contains(&rng.gen_range(0..3u8)));
            assert!(rng.gen_range(b'a'..=b'z').is_ascii_lowercase());
            assert!((2..4usize).contains(&rng.gen_range(2..4usize)));
            assert!((-4096..4096i64).contains(&rng.gen_range(-4096i64..4096)));
        }
    }

    #[test]
    fn range_endpoints_reachable() {
        let mut rng = StdRng::seed_from_u64(3);
        let (mut lo_seen, mut hi_seen) = (false, false);
        for _ in 0..1000 {
            match rng.gen_range(0..4u8) {
                0 => lo_seen = true,
                3 => hi_seen = true,
                _ => {}
            }
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.93)).count();
        assert!((9000..9600).contains(&hits), "got {hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..64).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<_>>());
        assert_ne!(v, sorted, "64 elements virtually never shuffle to identity");
    }

    #[test]
    fn choose_covers_and_handles_empty() {
        let mut rng = StdRng::seed_from_u64(9);
        let v = [10, 20, 30];
        for _ in 0..10 {
            assert!(v.contains(v.as_slice().choose(&mut rng).unwrap()));
        }
        let empty: [u32; 0] = [];
        assert!(empty.as_slice().choose(&mut rng).is_none());
    }

    #[test]
    fn full_domain_values_vary() {
        let mut rng = StdRng::seed_from_u64(13);
        let vals: Vec<u64> = (0..32).map(|_| rng.gen()).collect();
        let mut uniq = vals.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), vals.len(), "64-bit collisions are ~impossible");
        // Small types hit both halves of their domain.
        let bytes: Vec<u8> = (0..256).map(|_| rng.gen()).collect();
        assert!(bytes.iter().any(|&b| b < 64) && bytes.iter().any(|&b| b >= 192));
    }
}
