//! Frontend control-flow prediction: TAGE direction predictor, last-target
//! BTB for indirect jumps, and a return address stack.

mod tage;

pub use tage::Tage;

use helios_isa::{Inst, Reg};
use std::collections::HashMap;

/// What the frontend learned about one fetched control instruction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BranchOutcome {
    /// Whether the prediction matched the oracle outcome.
    pub mispredicted: bool,
    /// Whether this was a conditional branch.
    pub conditional: bool,
    /// Whether this was an indirect jump (jalr).
    pub indirect: bool,
}

/// The combined frontend predictor.
///
/// Operated trace-driven: each control µ-op is predicted and immediately
/// updated with the oracle outcome (the trace is the correct path); a
/// misprediction is charged as a frontend redirect stall by the pipeline.
#[derive(Clone, Debug, Default)]
pub struct BranchPredictor {
    tage: Tage,
    btb: HashMap<u64, u64>,
    ras: Vec<u64>,
    ghr: u64,
}

impl BranchPredictor {
    /// Creates an empty predictor.
    pub fn new() -> BranchPredictor {
        BranchPredictor::default()
    }

    /// Current global branch-direction history (shared with the fusion
    /// predictor's gshare component, §IV-A2).
    #[inline]
    pub fn ghr(&self) -> u64 {
        self.ghr
    }

    /// Processes a fetched control µ-op with its oracle outcome.
    ///
    /// Returns `None` for non-control µ-ops.
    pub fn process(&mut self, pc: u64, inst: &Inst, taken: bool, target: u64) -> Option<BranchOutcome> {
        match *inst {
            Inst::Branch { .. } => {
                let pred = self.tage.predict(pc, self.ghr);
                self.tage.update(pc, self.ghr, taken);
                self.ghr = (self.ghr << 1) | taken as u64;
                Some(BranchOutcome {
                    mispredicted: pred != taken,
                    conditional: true,
                    indirect: false,
                })
            }
            Inst::Jal { rd, .. } => {
                if rd == Reg::RA {
                    self.ras.push(pc + 4);
                    if self.ras.len() > 64 {
                        self.ras.remove(0);
                    }
                }
                // Direct jumps: decoded target, never mispredicts here.
                Some(BranchOutcome {
                    mispredicted: false,
                    conditional: false,
                    indirect: false,
                })
            }
            Inst::Jalr { rd, rs1, .. } => {
                let is_return = rd == Reg::ZERO && rs1 == Reg::RA;
                let predicted = if is_return {
                    self.ras.pop()
                } else {
                    self.btb.get(&pc).copied()
                };
                if rd == Reg::RA {
                    self.ras.push(pc + 4);
                    if self.ras.len() > 64 {
                        self.ras.remove(0);
                    }
                }
                let mispredicted = predicted != Some(target);
                if !is_return {
                    self.btb.insert(pc, target);
                }
                Some(BranchOutcome {
                    mispredicted,
                    conditional: false,
                    indirect: true,
                })
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use helios_isa::BranchKind;

    fn branch() -> Inst {
        Inst::Branch {
            kind: BranchKind::Eq,
            rs1: Reg::A0,
            rs2: Reg::A1,
            offset: 16,
        }
    }

    #[test]
    fn conditional_learns() {
        let mut bp = BranchPredictor::new();
        let mut misses = 0;
        for _ in 0..100 {
            let o = bp.process(0x1000, &branch(), true, 0x1010).unwrap();
            misses += o.mispredicted as u32;
        }
        assert!(misses < 5, "always-taken learned, {misses} misses");
    }

    #[test]
    fn call_return_pairs_hit_ras() {
        let mut bp = BranchPredictor::new();
        let call = Inst::Jal {
            rd: Reg::RA,
            offset: 0x100,
        };
        let ret = Inst::Jalr {
            rd: Reg::ZERO,
            rs1: Reg::RA,
            offset: 0,
        };
        for i in 0..10u64 {
            let call_pc = 0x2000 + i * 64;
            bp.process(call_pc, &call, true, call_pc + 0x100);
            let o = bp.process(0x5000, &ret, true, call_pc + 4).unwrap();
            assert!(!o.mispredicted, "return {i} predicted by RAS");
        }
    }

    #[test]
    fn indirect_last_target() {
        let mut bp = BranchPredictor::new();
        let ind = Inst::Jalr {
            rd: Reg::ZERO,
            rs1: Reg::T0,
            offset: 0,
        };
        // First encounter: miss.
        assert!(bp.process(0x3000, &ind, true, 0x4000).unwrap().mispredicted);
        // Stable target: hit.
        assert!(!bp.process(0x3000, &ind, true, 0x4000).unwrap().mispredicted);
        // Target change: miss once, then hit.
        assert!(bp.process(0x3000, &ind, true, 0x5000).unwrap().mispredicted);
        assert!(!bp.process(0x3000, &ind, true, 0x5000).unwrap().mispredicted);
    }

    #[test]
    fn non_control_returns_none() {
        let mut bp = BranchPredictor::new();
        assert!(bp.process(0x100, &Inst::NOP, false, 0x104).is_none());
    }

    #[test]
    fn ghr_tracks_directions() {
        let mut bp = BranchPredictor::new();
        bp.process(0x1000, &branch(), true, 0);
        bp.process(0x1000, &branch(), false, 0);
        bp.process(0x1000, &branch(), true, 0);
        assert_eq!(bp.ghr() & 0b111, 0b101);
    }
}
