//! A TAGE-style conditional branch predictor (stand-in for the paper's
//! L-TAGE [25], per DESIGN.md substitution #3).
//!
//! Bimodal base predictor plus `N` partially-tagged components indexed with
//! geometrically increasing global-history lengths. Implements provider /
//! alternate prediction, useful counters, and allocation on mispredictions —
//! the parts of L-TAGE that matter for misprediction *rates*; the loop
//! predictor and the full folded-history machinery are omitted.

/// Number of tagged components.
const COMPONENTS: usize = 7;
/// History lengths per component (geometric-ish, capped at 64 bits of GHR).
const HIST_LEN: [u32; COMPONENTS] = [3, 6, 12, 21, 34, 48, 64];
/// log2 entries per tagged component (sized toward the paper's 256-Kbit
/// L-TAGE budget).
const TAGGED_BITS: usize = 12;
/// log2 entries of the bimodal table.
const BIMODAL_BITS: usize = 15;
/// Tag width.
const TAG_BITS: u32 = 11;

/// A tagged-table hit: (component, index).
type Hit = (usize, usize);

#[derive(Clone, Copy, Debug, Default)]
struct TaggedEntry {
    tag: u16,
    ctr: i8, // -4..=3, taken if >= 0
    useful: u8,
}

/// The TAGE predictor.
#[derive(Clone, Debug)]
pub struct Tage {
    bimodal: Vec<i8>, // -2..=1, taken if >= 0
    tagged: Vec<Vec<TaggedEntry>>,
    /// Allocation tie-breaker (reset period for useful bits).
    tick: u64,
}

fn mix(pc: u64, hist: u64, len: u32, salt: u64) -> u64 {
    let h = if len >= 64 { hist } else { hist & ((1u64 << len) - 1) };
    let mut x = (pc >> 2) ^ h ^ (h >> 17) ^ salt.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    x ^= x >> 33;
    x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
    x ^= x >> 29;
    x
}

impl Tage {
    /// Creates an empty predictor (weakly not-taken).
    pub fn new() -> Tage {
        Tage {
            bimodal: vec![-1; 1 << BIMODAL_BITS],
            tagged: vec![vec![TaggedEntry::default(); 1 << TAGGED_BITS]; COMPONENTS],
            tick: 0,
        }
    }

    fn bimodal_index(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) & ((1 << BIMODAL_BITS) - 1)
    }

    fn index(&self, comp: usize, pc: u64, hist: u64) -> usize {
        (mix(pc, hist, HIST_LEN[comp], comp as u64) as usize) & ((1 << TAGGED_BITS) - 1)
    }

    fn tag(&self, comp: usize, pc: u64, hist: u64) -> u16 {
        ((mix(pc, hist, HIST_LEN[comp], 0x5bd1_e995 ^ comp as u64) >> 13) as u16)
            & ((1 << TAG_BITS) - 1)
    }

    /// Predicts the direction of the conditional branch at `pc` under global
    /// history `hist`.
    pub fn predict(&self, pc: u64, hist: u64) -> bool {
        let (provider, _alt) = self.find(pc, hist);
        match provider {
            Some((c, i)) => self.tagged[c][i].ctr >= 0,
            None => self.bimodal[self.bimodal_index(pc)] >= 0,
        }
    }

    /// (provider component+index, alternate component+index) hits.
    fn find(&self, pc: u64, hist: u64) -> (Option<Hit>, Option<Hit>) {
        let mut provider = None;
        let mut alt = None;
        for c in (0..COMPONENTS).rev() {
            let i = self.index(c, pc, hist);
            let e = &self.tagged[c][i];
            if e.tag == self.tag(c, pc, hist) {
                if provider.is_none() {
                    provider = Some((c, i));
                } else {
                    alt = Some((c, i));
                    break;
                }
            }
        }
        (provider, alt)
    }

    /// Updates the predictor with the actual outcome. Returns whether the
    /// prediction (before update) was correct.
    pub fn update(&mut self, pc: u64, hist: u64, taken: bool) -> bool {
        self.tick += 1;
        let (provider, alt) = self.find(pc, hist);
        let pred = match provider {
            Some((c, i)) => self.tagged[c][i].ctr >= 0,
            None => self.bimodal[self.bimodal_index(pc)] >= 0,
        };
        let correct = pred == taken;

        match provider {
            Some((c, i)) => {
                let alt_pred = match alt {
                    Some((ac, ai)) => self.tagged[ac][ai].ctr >= 0,
                    None => self.bimodal[self.bimodal_index(pc)] >= 0,
                };
                {
                    let e = &mut self.tagged[c][i];
                    e.ctr = (e.ctr + if taken { 1 } else { -1 }).clamp(-4, 3);
                    if pred != alt_pred {
                        if correct {
                            e.useful = (e.useful + 1).min(3);
                        } else {
                            e.useful = e.useful.saturating_sub(1);
                        }
                    }
                }
                if !correct && c < COMPONENTS - 1 {
                    self.allocate(c + 1, pc, hist, taken);
                }
            }
            None => {
                let bi = self.bimodal_index(pc);
                let b = &mut self.bimodal[bi];
                *b = (*b + if taken { 1 } else { -1 }).clamp(-2, 1);
                if !correct {
                    self.allocate(0, pc, hist, taken);
                }
            }
        }

        // Periodic useful-counter decay (L-TAGE uses a global reset).
        if self.tick.is_multiple_of(1 << 18) {
            for t in &mut self.tagged {
                for e in t.iter_mut() {
                    e.useful >>= 1;
                }
            }
        }
        correct
    }

    /// Allocates a new entry in a component >= `from` with useful == 0.
    fn allocate(&mut self, from: usize, pc: u64, hist: u64, taken: bool) {
        for c in from..COMPONENTS {
            let i = self.index(c, pc, hist);
            if self.tagged[c][i].useful == 0 {
                self.tagged[c][i] = TaggedEntry {
                    tag: self.tag(c, pc, hist),
                    ctr: if taken { 0 } else { -1 },
                    useful: 0,
                };
                return;
            }
        }
        // No room: age the candidates.
        for c in from..COMPONENTS {
            let i = self.index(c, pc, hist);
            self.tagged[c][i].useful = self.tagged[c][i].useful.saturating_sub(1);
        }
    }
}

impl Default for Tage {
    fn default() -> Self {
        Tage::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Runs `pattern` repeatedly through the predictor, returning accuracy
    /// over the last half (after warmup).
    fn accuracy(pattern: &[bool], reps: usize) -> f64 {
        let mut t = Tage::new();
        let mut hist = 0u64;
        let pc = 0x40_0000;
        let total = pattern.len() * reps;
        let mut correct = 0usize;
        let mut seen = 0usize;
        for r in 0..reps {
            for &taken in pattern {
                let ok = t.update(pc, hist, taken);
                hist = (hist << 1) | taken as u64;
                if r >= reps / 2 {
                    seen += 1;
                    if ok {
                        correct += 1;
                    }
                }
            }
        }
        let _ = total;
        correct as f64 / seen as f64
    }

    #[test]
    fn learns_biased_branches() {
        assert!(accuracy(&[true], 200) > 0.99);
        assert!(accuracy(&[false], 200) > 0.99);
    }

    #[test]
    fn learns_short_periodic_patterns() {
        // T T N repeated — bimodal alone can't get this right.
        let acc = accuracy(&[true, true, false], 400);
        assert!(acc > 0.95, "periodic accuracy {acc}");
    }

    #[test]
    fn learns_loop_exit_pattern() {
        // 7 taken then 1 not-taken (8-iteration loop).
        let mut p = vec![true; 7];
        p.push(false);
        let acc = accuracy(&p, 300);
        assert!(acc > 0.95, "loop accuracy {acc}");
    }

    #[test]
    fn random_is_not_catastrophic() {
        // Alternating pattern is perfectly predictable with history.
        let acc = accuracy(&[true, false], 400);
        assert!(acc > 0.95, "alternating accuracy {acc}");
    }

    #[test]
    fn distinct_pcs_do_not_interfere_much() {
        let mut t = Tage::new();
        let mut hist = 0u64;
        let mut correct = 0;
        let n = 2000;
        for i in 0..n {
            // pc A always taken, pc B never taken.
            let ok_a = t.update(0x1000, hist, true);
            hist = (hist << 1) | 1;
            let ok_b = t.update(0x2000, hist, false);
            hist <<= 1;
            if i > n / 2 {
                correct += ok_a as u32 + ok_b as u32;
            }
        }
        let acc = correct as f64 / (n as f64 - n as f64 / 2.0 - 1.0) / 2.0;
        assert!(acc > 0.98, "interference accuracy {acc}");
    }
}
