//! Three-level data-cache hierarchy returning access latencies.

use super::Cache;
use crate::PipeConfig;
use std::collections::HashMap;

/// Result of a hierarchy access.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MemResult {
    /// Total latency in cycles for this access.
    pub latency: u64,
    /// Deepest level that missed (0 = L1 hit, 1 = L1 miss/L2 hit, ...).
    pub miss_level: u8,
}

/// L1D + L2 + L3 + memory, inclusive-allocating on the access path, with
/// MSHR-style in-flight fill tracking: a second access to a line whose fill
/// is still in flight waits for the fill rather than hitting instantly.
#[derive(Clone, Debug)]
pub struct Hierarchy {
    l1: Cache,
    l2: Cache,
    l3: Cache,
    l1_latency: u64,
    l2_latency: u64,
    l3_latency: u64,
    mem_latency: u64,
    line_shift: u32,
    /// line address → cycle its in-flight fill completes.
    fills: HashMap<u64, u64>,
}

impl Hierarchy {
    /// Builds the hierarchy from the pipeline configuration.
    pub fn new(cfg: &PipeConfig) -> Hierarchy {
        Hierarchy {
            l1: Cache::new(&cfg.l1d),
            l2: Cache::new(&cfg.l2),
            l3: Cache::new(&cfg.l3),
            l1_latency: cfg.l1d.latency,
            l2_latency: cfg.l2.latency,
            l3_latency: cfg.l3.latency,
            mem_latency: cfg.mem_latency,
            line_shift: cfg.l1d.line.trailing_zeros(),
            fills: HashMap::new(),
        }
    }

    /// Performs a demand access to the line containing `addr` at `now`.
    pub fn access(&mut self, addr: u64, write: bool, now: u64) -> MemResult {
        let line = addr >> self.line_shift;
        if self.l1.access(addr, write) {
            // Hit in the tag array — but the fill may still be in flight.
            if let Some(&ready) = self.fills.get(&line) {
                if ready > now {
                    return MemResult {
                        latency: (ready - now).max(self.l1_latency),
                        miss_level: 0,
                    };
                }
                self.fills.remove(&line);
            }
            return MemResult {
                latency: self.l1_latency,
                miss_level: 0,
            };
        }
        let (latency, miss_level) = if self.l2.access(addr, write) {
            (self.l2_latency, 1)
        } else if self.l3.access(addr, write) {
            (self.l3_latency, 2)
        } else {
            (self.mem_latency, 3)
        };
        if self.fills.len() > 4096 {
            self.fills.retain(|_, &mut r| r > now);
        }
        self.fills.insert(line, now + latency);
        MemResult { latency, miss_level }
    }

    /// L1 line size in bytes.
    pub fn line_bytes(&self) -> u64 {
        self.l1.line_bytes()
    }

    /// (L1 misses, L2 misses, L3 misses) so far.
    pub fn miss_counts(&self) -> (u64, u64, u64) {
        (self.l1.misses(), self.l2.misses(), self.l3.misses())
    }

    /// Total L1 accesses so far.
    pub fn l1_accesses(&self) -> u64 {
        self.l1.hits() + self.l1.misses()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_ladder() {
        let cfg = PipeConfig::default();
        let mut h = Hierarchy::new(&cfg);
        let first = h.access(0x10000, false, 0);
        assert_eq!(first.miss_level, 3);
        assert_eq!(first.latency, cfg.mem_latency);
        // After the fill completes, it's an L1 hit.
        let second = h.access(0x10000, false, cfg.mem_latency + 1);
        assert_eq!(second.miss_level, 0);
        assert_eq!(second.latency, cfg.l1d.latency);
    }

    #[test]
    fn inflight_fill_delays_second_access() {
        let cfg = PipeConfig::default();
        let mut h = Hierarchy::new(&cfg);
        let first = h.access(0x20000, false, 100);
        assert_eq!(first.latency, cfg.mem_latency);
        // Ten cycles later the line is still in flight: the second access
        // waits out the remaining fill time instead of hitting instantly.
        let second = h.access(0x20010, false, 110);
        assert_eq!(second.miss_level, 0);
        assert_eq!(second.latency, cfg.mem_latency - 10);
        // Once filled, normal hit latency.
        let third = h.access(0x20020, false, 100 + cfg.mem_latency);
        assert_eq!(third.latency, cfg.l1d.latency);
    }

    #[test]
    fn l2_hit_after_l1_eviction() {
        let cfg = PipeConfig::default();
        let mut h = Hierarchy::new(&cfg);
        // Fill enough lines mapping to one L1 set to evict, but stay in L2.
        // L1: 48K/12way/64B = 64 sets → stride 4096 aliases to the same set.
        for i in 0..13u64 {
            h.access(0x10_0000 + i * 4096, false, 1_000_000 + i);
        }
        let r = h.access(0x10_0000, false, 2_000_000);
        assert_eq!(r.miss_level, 1, "L1 evicted but L2 retains");
        assert_eq!(r.latency, cfg.l2.latency);
    }
}
