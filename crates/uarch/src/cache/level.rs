//! A set-associative cache model with true-LRU replacement.

use crate::CacheParams;

/// One set-associative cache level.
///
/// Tracks tags only (the simulator is timing-directed; data comes from the
/// functional emulator). Write-back, write-allocate.
#[derive(Clone, Debug)]
pub struct Cache {
    sets: usize,
    ways: usize,
    line_shift: u32,
    /// `tags[set * ways + way]`: (valid, tag, lru_stamp, dirty).
    tags: Vec<Line>,
    stamp: u64,
    hits: u64,
    misses: u64,
}

#[derive(Clone, Copy, Debug, Default)]
struct Line {
    valid: bool,
    dirty: bool,
    tag: u64,
    stamp: u64,
}

impl Cache {
    /// Builds a cache from its parameters.
    ///
    /// # Panics
    ///
    /// Panics if geometry is not a power-of-two set count.
    pub fn new(p: &CacheParams) -> Cache {
        let sets = p.size / (p.ways * p.line);
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        assert!(p.line.is_power_of_two());
        Cache {
            sets,
            ways: p.ways,
            line_shift: p.line.trailing_zeros(),
            tags: vec![Line::default(); sets * p.ways],
            stamp: 0,
            hits: 0,
            misses: 0,
        }
    }

    #[inline]
    fn index(&self, addr: u64) -> (usize, u64) {
        let line = addr >> self.line_shift;
        ((line as usize) & (self.sets - 1), line >> self.sets.trailing_zeros())
    }

    /// Looks up `addr`; on miss, allocates the line (evicting LRU).
    /// Returns `true` on hit.
    pub fn access(&mut self, addr: u64, write: bool) -> bool {
        self.stamp += 1;
        let (set, tag) = self.index(addr);
        let base = set * self.ways;
        for w in 0..self.ways {
            let l = &mut self.tags[base + w];
            if l.valid && l.tag == tag {
                l.stamp = self.stamp;
                l.dirty |= write;
                self.hits += 1;
                return true;
            }
        }
        self.misses += 1;
        // Allocate: invalid way or LRU.
        let mut victim = 0;
        let mut best = u64::MAX;
        for w in 0..self.ways {
            let l = &self.tags[base + w];
            if !l.valid {
                victim = w;
                break;
            }
            if l.stamp < best {
                best = l.stamp;
                victim = w;
            }
        }
        self.tags[base + victim] = Line {
            valid: true,
            dirty: write,
            tag,
            stamp: self.stamp,
        };
        false
    }

    /// Probes without allocating or updating LRU. Returns `true` on hit.
    pub fn probe(&self, addr: u64) -> bool {
        let (set, tag) = self.index(addr);
        let base = set * self.ways;
        (0..self.ways).any(|w| {
            let l = &self.tags[base + w];
            l.valid && l.tag == tag
        })
    }

    /// Hit count so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Miss count so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Line size in bytes.
    pub fn line_bytes(&self) -> u64 {
        1 << self.line_shift
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        // 4 sets × 2 ways × 64 B = 512 B.
        Cache::new(&CacheParams {
            size: 512,
            ways: 2,
            line: 64,
            latency: 1,
        })
    }

    #[test]
    fn miss_then_hit() {
        let mut c = small();
        assert!(!c.access(0x1000, false));
        assert!(c.access(0x1000, false));
        assert!(c.access(0x103f, false), "same line");
        assert!(!c.access(0x1040, false), "next line");
        assert_eq!(c.misses(), 2);
        assert_eq!(c.hits(), 2);
    }

    #[test]
    fn lru_eviction() {
        let mut c = small();
        // Three lines mapping to the same set (stride = sets*line = 256).
        c.access(0x0000, false);
        c.access(0x0100, false);
        c.access(0x0000, false); // touch to make 0x0100 LRU
        c.access(0x0200, false); // evicts 0x0100
        assert!(c.probe(0x0000));
        assert!(!c.probe(0x0100));
        assert!(c.probe(0x0200));
    }

    #[test]
    fn probe_does_not_allocate() {
        let mut c = small();
        assert!(!c.probe(0x4000));
        assert!(!c.access(0x4000, false));
    }
}
