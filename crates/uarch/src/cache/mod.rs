//! Data-cache models.

mod cache;
mod hierarchy;

pub use cache::Cache;
pub use hierarchy::{Hierarchy, MemResult};
