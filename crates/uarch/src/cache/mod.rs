//! Data-cache models.

mod hierarchy;
mod level;

pub use level::Cache;
pub use hierarchy::{Hierarchy, MemResult};
