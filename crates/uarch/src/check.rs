//! Lockstep oracle checker: continuously validates the pipeline's committed
//! µ-op stream against the functional emulator's retired trace, plus the
//! structural invariants the fusion machinery must preserve.
//!
//! A cycle model with in-flight fusion, unfuse repairs, and flush recovery
//! can corrupt its own commit stream in ways that surface (if ever) as
//! slightly-wrong statistics thousands of cycles later. The checker turns
//! those into an immediate [`SimError::InvariantViolation`] carrying a
//! diagnostic snapshot:
//!
//! * **Commit order**: committed sequence numbers are strictly monotonic and
//!   every trace sequence number commits exactly once — either directly or
//!   as the absorbed tail of a fused pair (atomic extended-group commit,
//!   §IV-B3).
//! * **Lockstep identity**: each committed µ-op's `pc`/`inst` match the
//!   emulator's retired record for the same sequence number.
//! * **Unfuse accounting**: `active_pending_ncsf` equals the actual count of
//!   renamed pending NCSF'd µ-ops in the ROB.
//! * **Register file**: free list + in-flight allocations = PRF capacity.
//! * **Occupancy**: ROB/IQ/LQ/SQ/AQ never exceed `PipeConfig` sizes.
//!
//! The checker is opt-in (`Pipeline::attach_checker`) and is driven from
//! `try_run`; the expensive whole-structure scans run every
//! [`SCAN_PERIOD`] cycles, the O(1) checks every cycle.

use crate::error::{InvariantReport, SimError};
use crate::pipeline::Pipeline;
use helios_emu::{Retired, UopSource};
use helios_isa::Inst;
use std::collections::HashMap;

/// Cycles between full-structure invariant scans (ROB/AQ walks).
const SCAN_PERIOD: u64 = 256;

/// One committed µ-op as seen by the commit stage: the head identity plus
/// the absorbed tail, if the µ-op retired as a fused pair.
#[derive(Clone, Copy, Debug)]
pub(crate) struct CommitRecord {
    pub seq: u64,
    pub pc: u64,
    pub inst: Inst,
    /// `(tail_seq, tail_pc, tail_inst)` of an absorbed tail nucleus.
    pub tail: Option<(u64, u64, Inst)>,
}

/// Replays the emulator's retired trace in lockstep with the commit stage.
pub struct OracleChecker {
    oracle: Box<dyn Iterator<Item = Retired>>,
    /// Next trace sequence number the commit stream must account for.
    next_seq: u64,
    /// Tails absorbed by already-committed fused heads, keyed by seq; they
    /// account for their trace records when commit order reaches them.
    absorbed: HashMap<u64, (u64, Inst)>,
}

impl OracleChecker {
    /// Wraps a replay of the same trace the pipeline consumes (e.g. a clone
    /// of the `RetireStream` handed to `Pipeline::new`).
    pub fn new(oracle: impl Iterator<Item = Retired> + 'static) -> OracleChecker {
        OracleChecker {
            oracle: Box::new(oracle),
            next_seq: 0,
            absorbed: HashMap::new(),
        }
    }

    /// The next oracle record, which must exist while commits keep arriving.
    fn oracle_next(&mut self) -> Result<Retired, String> {
        let r = self
            .oracle
            .next()
            .ok_or_else(|| "commit stream longer than the oracle trace".to_string())?;
        if r.seq != self.next_seq {
            return Err(format!(
                "oracle trace not dense: expected seq {}, got {}",
                self.next_seq, r.seq
            ));
        }
        Ok(r)
    }

    /// Accounts for every trace record in `[next_seq, upto)` using the
    /// absorbed-tail set (these seqs were skipped by the in-order commit
    /// pointer, so they must have retired early inside an extended group).
    fn drain_absorbed_below(&mut self, upto: u64) -> Result<(), String> {
        while self.next_seq < upto {
            let r = self.oracle_next()?;
            let Some((pc, inst)) = self.absorbed.remove(&r.seq) else {
                return Err(format!(
                    "seq {} (pc {:#x}) never committed: commit order skipped it \
                     and no fused head absorbed it",
                    r.seq, r.pc
                ));
            };
            if pc != r.pc || inst != r.inst {
                return Err(format!(
                    "absorbed tail seq {} mismatches the trace: pipeline \
                     ({pc:#x}, {inst:?}) vs oracle ({:#x}, {:?})",
                    r.seq, r.pc, r.inst
                ));
            }
            self.next_seq += 1;
        }
        Ok(())
    }

    /// Verifies one commit record against the oracle.
    fn advance(&mut self, c: &CommitRecord) -> Result<(), String> {
        if c.seq < self.next_seq {
            return Err(format!(
                "commit order regression: seq {} committed after the commit \
                 pointer reached {} (double commit?)",
                c.seq, self.next_seq
            ));
        }
        self.drain_absorbed_below(c.seq)?;
        if self.absorbed.contains_key(&c.seq) {
            return Err(format!(
                "seq {} committed directly but already retired as the \
                 absorbed tail of an earlier fused head (double commit)",
                c.seq
            ));
        }
        let r = self.oracle_next()?;
        if c.pc != r.pc || c.inst != r.inst {
            return Err(format!(
                "lockstep mismatch at seq {}: pipeline committed ({:#x}, {:?}) \
                 but the emulator retired ({:#x}, {:?})",
                c.seq, c.pc, c.inst, r.pc, r.inst
            ));
        }
        self.next_seq += 1;
        if let Some((tseq, tpc, tinst)) = c.tail {
            if tseq < self.next_seq {
                return Err(format!(
                    "fused head seq {} absorbed tail seq {tseq}, which already \
                     committed (double commit)",
                    c.seq
                ));
            }
            if self.absorbed.insert(tseq, (tpc, tinst)).is_some() {
                return Err(format!(
                    "tail seq {tseq} absorbed by two different fused heads"
                ));
            }
        }
        Ok(())
    }

    /// End-of-run check: every absorbed tail must be consumed and the oracle
    /// trace exhausted.
    fn finish(&mut self) -> Result<(), String> {
        // Any remaining oracle records must be covered by absorbed tails.
        for r in self.oracle.by_ref() {
            let Some((pc, inst)) = self.absorbed.remove(&r.seq) else {
                return Err(format!(
                    "trace seq {} (pc {:#x}) never committed",
                    r.seq, r.pc
                ));
            };
            if pc != r.pc || inst != r.inst {
                return Err(format!(
                    "absorbed tail seq {} mismatches the trace at end of run",
                    r.seq
                ));
            }
        }
        if !self.absorbed.is_empty() {
            let mut seqs: Vec<u64> = self.absorbed.keys().copied().collect();
            seqs.sort_unstable();
            return Err(format!(
                "absorbed tails {seqs:?} have no corresponding trace records \
                 (committed beyond the trace?)"
            ));
        }
        Ok(())
    }
}

impl<I: UopSource> Pipeline<I> {
    /// Attaches a lockstep oracle checker that replays `oracle` — an
    /// independent iteration of the same retired trace the pipeline
    /// consumes — and validates every commit against it. Violations surface
    /// as `SimError::InvariantViolation` from [`Pipeline::try_run`].
    pub fn attach_checker(&mut self, oracle: impl Iterator<Item = Retired> + 'static) {
        self.checker = Some(OracleChecker::new(oracle));
    }

    /// Whether a checker is attached (commit records are being collected).
    pub(crate) fn checking(&self) -> bool {
        self.checker.is_some()
    }

    /// Runs the checker over this cycle's commit records plus the structural
    /// invariants. Returns the first violation found.
    pub(crate) fn verify_cycle(&mut self) -> Option<SimError> {
        self.checker.as_ref()?;
        let records = std::mem::take(&mut self.commit_log);
        let mut checker = self.checker.take().expect("guarded above");
        let mut failure: Option<String> = None;
        for c in &records {
            if let Err(what) = checker.advance(c) {
                failure = Some(what);
                break;
            }
            self.stats.oracle_checked += 1;
        }
        self.checker = Some(checker);
        if failure.is_none() {
            failure = self.structural_violation();
        }
        failure.map(|what| self.invariant_error(what))
    }

    /// End-of-run oracle drain; call once the pipeline has fully drained.
    pub(crate) fn verify_finish(&mut self) -> Option<SimError> {
        let mut checker = self.checker.take()?;
        let result = checker.finish();
        self.checker = Some(checker);
        result.err().map(|what| self.invariant_error(what))
    }

    /// O(1) occupancy checks every cycle; full accounting scans every
    /// `SCAN_PERIOD` cycles.
    fn structural_violation(&self) -> Option<String> {
        let s = &self.cfg;
        if self.rob.len() > s.rob_size {
            return Some(format!("ROB over capacity: {} > {}", self.rob.len(), s.rob_size));
        }
        if self.iq_len > s.iq_size {
            return Some(format!("IQ over capacity: {} > {}", self.iq_len, s.iq_size));
        }
        if self.lq.len() > s.lq_size {
            return Some(format!("LQ over capacity: {} > {}", self.lq.len(), s.lq_size));
        }
        if self.sq.len() > s.sq_size {
            return Some(format!("SQ over capacity: {} > {}", self.sq.len(), s.sq_size));
        }
        if self.aq.len() > s.aq_size {
            return Some(format!("AQ over capacity: {} > {}", self.aq.len(), s.aq_size));
        }
        if !self.now.is_multiple_of(SCAN_PERIOD) {
            return None;
        }
        self.accounting_violation()
    }

    /// Whole-structure scans: pending-NCSF census and register-file
    /// conservation. Also used by the end-of-run check.
    pub(crate) fn accounting_violation(&self) -> Option<String> {
        // `active_pending_ncsf` counts *renamed* pending heads: incremented
        // when a pending head leaves the AQ for the ROB, decremented at its
        // tail marker's rename (validation or unfuse) — so the ROB is the
        // census domain; AQ heads have not been counted yet.
        let pending = self
            .rob
            .iter()
            .filter(|e| e.uop.is_pending_ncsf())
            .count();
        if pending != self.active_pending_ncsf {
            return Some(format!(
                "unfuse accounting drift: active_pending_ncsf = {} but the \
                 ROB scan finds {pending} pending NCSF µ-ops",
                self.active_pending_ncsf
            ));
        }
        let allocated: usize = self.rob.iter().map(|e| e.phys_allocated).sum();
        let capacity = self.cfg.free_phys_regs();
        if self.free_phys + allocated != capacity {
            return Some(format!(
                "register free-list drift: free {} + allocated {allocated} != \
                 PRF capacity {capacity}",
                self.free_phys
            ));
        }
        None
    }

    fn invariant_error(&self, what: String) -> SimError {
        SimError::InvariantViolation(Box::new(InvariantReport {
            cycle: self.now,
            committed: self.stats.instructions,
            what,
            snapshot: format!(
                "rob {} aq {} iq {} lq {} sq {} free_phys {} pending_ncsf {} \
                 committed_upto {} atomic_commit_floor {}",
                self.rob.len(),
                self.aq.len(),
                self.iq_len,
                self.lq.len(),
                self.sq.len(),
                self.free_phys,
                self.active_pending_ncsf,
                self.committed_upto,
                self.atomic_commit_floor,
            ),
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use helios_emu::MemAccess;

    fn retired(seq: u64) -> Retired {
        Retired {
            seq,
            pc: 0x1000 + seq * 4,
            inst: Inst::NOP,
            next_pc: 0x1004 + seq * 4,
            mem: None::<MemAccess>,
            rd_value: None,
        }
    }

    fn commit(seq: u64) -> CommitRecord {
        CommitRecord {
            seq,
            pc: 0x1000 + seq * 4,
            inst: Inst::NOP,
            tail: None,
        }
    }

    #[test]
    fn accepts_plain_in_order_commits() {
        let mut c = OracleChecker::new((0..5).map(retired));
        for seq in 0..5 {
            c.advance(&commit(seq)).unwrap();
        }
        c.finish().unwrap();
    }

    #[test]
    fn accepts_absorbed_tails_out_of_order() {
        // Head 0 absorbs tail 3; commits arrive as 0(+3), 1, 2, 4.
        let mut c = OracleChecker::new((0..5).map(retired));
        let mut head = commit(0);
        head.tail = Some((3, 0x1000 + 3 * 4, Inst::NOP));
        c.advance(&head).unwrap();
        c.advance(&commit(1)).unwrap();
        c.advance(&commit(2)).unwrap();
        c.advance(&commit(4)).unwrap();
        c.finish().unwrap();
    }

    #[test]
    fn rejects_double_commit() {
        let mut c = OracleChecker::new((0..5).map(retired));
        c.advance(&commit(0)).unwrap();
        c.advance(&commit(1)).unwrap();
        let err = c.advance(&commit(1)).unwrap_err();
        assert!(err.contains("regression"), "{err}");
    }

    #[test]
    fn rejects_recommitted_absorbed_tail() {
        // Head 0 absorbs tail 2; seq 2 later also commits directly — the
        // double-commit class of bug the atomic-commit floor prevents.
        let mut c = OracleChecker::new((0..5).map(retired));
        let mut head = commit(0);
        head.tail = Some((2, 0x1000 + 2 * 4, Inst::NOP));
        c.advance(&head).unwrap();
        c.advance(&commit(1)).unwrap();
        let err = c.advance(&commit(2)).unwrap_err();
        assert!(err.contains("seq 2"), "{err}");
    }

    #[test]
    fn rejects_skipped_seq() {
        let mut c = OracleChecker::new((0..5).map(retired));
        c.advance(&commit(0)).unwrap();
        let err = c.advance(&commit(2)).unwrap_err();
        assert!(err.contains("never committed"), "{err}");
    }

    #[test]
    fn rejects_pc_mismatch() {
        let mut c = OracleChecker::new((0..5).map(retired));
        let mut bad = commit(0);
        bad.pc = 0xdead;
        let err = c.advance(&bad).unwrap_err();
        assert!(err.contains("lockstep mismatch"), "{err}");
    }

    #[test]
    fn rejects_unconsumed_tail_at_finish() {
        let mut c = OracleChecker::new((0..2).map(retired));
        let mut head = commit(0);
        head.tail = Some((7, 0x1000 + 7 * 4, Inst::NOP));
        c.advance(&head).unwrap();
        c.advance(&commit(1)).unwrap();
        let err = c.finish().unwrap_err();
        assert!(err.contains("[7]"), "{err}");
    }
}
