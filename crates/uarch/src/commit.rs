//! Commit: in-order retirement, extended commit groups for NCSF pairs
//! (§IV-B3), UCH training and fusion-predictor resolution (§IV-A), senior
//! store promotion, and statistics.

use crate::pipeline::Pipeline;
use helios_core::UchTrainRecord;
use helios_emu::UopSource;

impl<I: UopSource> Pipeline<I> {
    /// One cycle of Commit.
    pub(crate) fn stage_commit(&mut self) {
        let mut budget = self.cfg.commit_width;
        // µ-ops at or past a scheduled flush point must not retire; they are
        // about to be squashed and re-fetched.
        let flush_fence = self.pending_flushes.iter().map(|f| f.restart).min();
        while budget > 0 {
            let Some(front) = self.rob.front() else { break };
            if flush_fence.is_some_and(|r| front.uop.seq >= r) {
                break;
            }
            if !self.ready_bit(front.uop.seq) || front.uop.is_pending_ncsf() {
                break;
            }
            // Extended commit group (§IV-B3): an NCSF'd µ-op retires only
            // when its whole nucleii+catalyst group is ready to retire.
            if let Some(f) = &front.uop.fused {
                if f.pred.is_some() {
                    let tail_seq = f.tail_seq;
                    let group_ready = self
                        .rob
                        .iter()
                        .skip(1)
                        .take_while(|e| e.uop.seq < tail_seq)
                        .all(|e| self.ready_bit(e.uop.seq));
                    if !group_ready {
                        break;
                    }
                }
            }

            // `front` above proved the ROB is non-empty.
            let Some(e) = self.rob.pop_front() else { break };
            self.rob_abs_base += 1;
            budget -= 1;
            let u = e.uop;
            // The absorbed tail retires with its head; no later flush may
            // restart at or below it (it would re-fetch a retired µ-op).
            if let Some(f) = &u.fused {
                self.atomic_commit_floor = self.atomic_commit_floor.max(f.tail_seq + 1);
            }
            if self.checking() {
                self.commit_log.push(crate::check::CommitRecord {
                    seq: u.seq,
                    pc: u.pc,
                    inst: u.inst,
                    tail: u.fused.map(|f| (f.tail_seq, f.tail_pc, f.tail_inst)),
                });
            }

            if self.obs.is_some() {
                let (now, tail) = (self.now, u.fused.map(|f| f.tail_seq));
                if let Some(o) = self.obs.as_deref_mut() {
                    o.committed(u.seq, tail, now);
                }
            }

            // --- Instruction counts. ---
            self.stats.uops += 1;
            self.stats.instructions += u.inst_count();
            let tail_inst = u.fused.map(|f| f.tail_inst);
            for inst in std::iter::once(u.inst).chain(tail_inst) {
                if inst.is_load() {
                    self.stats.loads += 1;
                    self.stats.mem_instructions += 1;
                } else if inst.is_store() {
                    self.stats.stores += 1;
                    self.stats.mem_instructions += 1;
                }
            }

            // --- Branch statistics. ---
            if e.conditional {
                self.stats.branches += 1;
                if e.mispredicted {
                    self.stats.branch_mispredicts += 1;
                }
                let taken = u.next_pc != u.pc + 4;
                self.commit_ghr = (self.commit_ghr << 1) | taken as u64;
            } else if e.indirect {
                self.stats.indirects += 1;
                if e.mispredicted {
                    self.stats.indirect_mispredicts += 1;
                }
            }

            // --- Fusion statistics + predictor resolution. ---
            if let Some(f) = &u.fused {
                self.stats.fusion.record_pair(
                    f.idiom,
                    f.class,
                    f.contiguity,
                    f.dbr,
                    f.asymmetric,
                    f.tail_seq - u.seq,
                );
                if let Some(meta) = f.pred {
                    self.stats.fusion.predictions_correct += 1;
                    self.fp.resolve(&meta, true);
                }
            }

            // --- UCH training (Helios only, §IV-A1). ---
            // Eligible (unfused) memory µ-ops enter the post-commit
            // decoupling queue; a full queue simply drops the record ("it
            // will get a chance to train at a later time"). The queue drains
            // into the UCH once per cycle in `Pipeline::cycle`.
            if self.cfg.fusion.predictive() && u.fused.is_none() {
                if let Some(acc) = u.mem {
                    self.uch_queue.offer(UchTrainRecord {
                        pc: u.pc,
                        ghr: self.commit_ghr,
                        seq: u.seq,
                        line: acc.line(self.cfg.helios.line_bytes),
                        is_store: acc.is_store,
                    });
                }
            }

            // --- Resource release. ---
            self.free_phys += e.phys_allocated;
            self.committed_upto = u.seq + 1;
            while self.lq.front().is_some_and(|l| l.seq == u.seq) {
                self.lq.pop_front();
            }
            // At most one SQ entry per µ-op (a fused store pair shares one);
            // only stores have one at all, so gate the search on the class.
            if u.sq_accesses().0.is_some() {
                if let Some(si) = self.sq_index(u.seq) {
                    self.sq[si].senior = true;
                }
            }
        }

        if self.tail_undos.len() > 64 {
            let upto = self.committed_upto;
            self.tail_undos.retain(|t| t.tail_seq >= upto);
        }
        self.window.release_below(self.committed_upto);
    }
}
