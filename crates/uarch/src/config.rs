//! Pipeline configuration (paper Table II: Icelake-like out-of-order core
//! with an 8-wide frontend so the Allocation Queue actually fills, §V-A).

use helios_core::{FusionMode, HeliosParams, PipelineSizes};

/// Cache level parameters.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CacheParams {
    /// Total size in bytes.
    pub size: usize,
    /// Associativity.
    pub ways: usize,
    /// Line size in bytes.
    pub line: usize,
    /// Access latency in cycles (hit latency at this level).
    pub latency: u64,
}

/// Full processor configuration.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct PipeConfig {
    /// Fusion configuration under evaluation.
    pub fusion: FusionMode,
    /// Helios machinery parameters.
    pub helios: HeliosParams,

    // Widths (µ-ops per cycle).
    pub fetch_width: usize,
    pub rename_width: usize,
    pub dispatch_width: usize,
    pub commit_width: usize,

    // Structure capacities.
    pub aq_size: usize,
    pub rob_size: usize,
    pub iq_size: usize,
    pub lq_size: usize,
    pub sq_size: usize,
    /// Physical integer registers (beyond the 32 architectural mappings).
    pub prf_size: usize,

    // Execution resources.
    pub alu_ports: usize,
    pub load_ports: usize,
    pub store_ports: usize,
    /// Stores drained from the senior SQ to the L1D per cycle.
    pub store_drain_per_cycle: usize,

    // Latencies (cycles).
    pub alu_latency: u64,
    pub mul_latency: u64,
    pub div_latency: u64,
    pub branch_redirect_penalty: u64,
    /// Extra latency when a (possibly fused) access crosses a cache line
    /// (§II-B "Cacheline Crossers": a single cycle on modern cores).
    pub line_cross_penalty: u64,

    // Memory hierarchy.
    pub l1d: CacheParams,
    pub l2: CacheParams,
    pub l3: CacheParams,
    pub mem_latency: u64,

    /// Commit-progress watchdog: cycles without a single commit before
    /// `Pipeline::try_run` gives up with `SimError::Deadlock`. Must exceed
    /// the worst legitimate commit gap (a full-ROB chain of memory misses).
    pub watchdog_cycles: u64,
}

impl Default for PipeConfig {
    fn default() -> Self {
        PipeConfig {
            fusion: FusionMode::NoFusion,
            helios: HeliosParams::default(),
            fetch_width: 8,
            rename_width: 5,
            dispatch_width: 5,
            commit_width: 8,
            aq_size: 140,
            rob_size: 352,
            iq_size: 160,
            lq_size: 128,
            sq_size: 72,
            prf_size: 280,
            alu_ports: 4,
            load_ports: 2,
            store_ports: 2,
            store_drain_per_cycle: 1,
            alu_latency: 1,
            mul_latency: 3,
            div_latency: 18,
            branch_redirect_penalty: 14,
            line_cross_penalty: 1,
            l1d: CacheParams {
                size: 48 * 1024,
                ways: 12,
                line: 64,
                latency: 5,
            },
            l2: CacheParams {
                size: 512 * 1024,
                ways: 8,
                line: 64,
                latency: 14,
            },
            l3: CacheParams {
                size: 2 * 1024 * 1024,
                ways: 16,
                line: 64,
                latency: 40,
            },
            mem_latency: 200,
            watchdog_cycles: 100_000,
        }
    }
}

impl PipeConfig {
    /// A configuration for the given fusion mode, otherwise default.
    pub fn with_fusion(fusion: FusionMode) -> PipeConfig {
        PipeConfig {
            fusion,
            ..PipeConfig::default()
        }
    }

    /// The structure sizes relevant to Helios storage accounting.
    pub fn sizes(&self) -> PipelineSizes {
        PipelineSizes {
            aq: self.aq_size,
            iq: self.iq_size,
            rob: self.rob_size,
            lq: self.lq_size,
            sq: self.sq_size,
            arch_regs: 32,
            lsq_pair_entries: 88,
            nest: self.helios.max_nest,
        }
    }

    /// Number of physical registers available for renaming.
    pub fn free_phys_regs(&self) -> usize {
        self.prf_size.saturating_sub(32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_icelake_like() {
        let c = PipeConfig::default();
        assert_eq!(c.fetch_width, 8, "8-wide frontend per §V-A");
        assert_eq!(c.rename_width, 5, "Icelake allocation width");
        assert_eq!(c.aq_size, 140, "AQ size per §IV-B1");
        assert_eq!(c.rob_size, 352);
        assert_eq!(c.l1d.line, 64);
        assert_eq!(c.free_phys_regs(), 248);
        assert_eq!(c.sizes().aq, 140);
    }

    #[test]
    fn with_fusion_sets_mode() {
        let c = PipeConfig::with_fusion(FusionMode::Helios);
        assert_eq!(c.fusion, FusionMode::Helios);
        assert_eq!(c.rob_size, PipeConfig::default().rob_size);
    }
}
