//! Pipeline configuration (paper Table II: Icelake-like out-of-order core
//! with an 8-wide frontend so the Allocation Queue actually fills, §V-A).

use helios_core::{FpConfig, FusionMode, HeliosParams, PipelineSizes, UchConfig, UchQueueConfig};

/// Cache level parameters.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CacheParams {
    /// Total size in bytes.
    pub size: usize,
    /// Associativity.
    pub ways: usize,
    /// Line size in bytes.
    pub line: usize,
    /// Access latency in cycles (hit latency at this level).
    pub latency: u64,
}

/// Full processor configuration.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct PipeConfig {
    /// Fusion configuration under evaluation.
    pub fusion: FusionMode,
    /// Helios machinery parameters.
    pub helios: HeliosParams,

    // Widths (µ-ops per cycle).
    pub fetch_width: usize,
    pub rename_width: usize,
    pub dispatch_width: usize,
    pub commit_width: usize,

    // Structure capacities.
    pub aq_size: usize,
    pub rob_size: usize,
    pub iq_size: usize,
    pub lq_size: usize,
    pub sq_size: usize,
    /// Physical integer registers (beyond the 32 architectural mappings).
    pub prf_size: usize,

    // Execution resources.
    pub alu_ports: usize,
    pub load_ports: usize,
    pub store_ports: usize,
    /// Stores drained from the senior SQ to the L1D per cycle.
    pub store_drain_per_cycle: usize,

    // Latencies (cycles).
    pub alu_latency: u64,
    pub mul_latency: u64,
    pub div_latency: u64,
    pub branch_redirect_penalty: u64,
    /// Extra latency when a (possibly fused) access crosses a cache line
    /// (§II-B "Cacheline Crossers": a single cycle on modern cores).
    pub line_cross_penalty: u64,

    // Memory hierarchy.
    pub l1d: CacheParams,
    pub l2: CacheParams,
    pub l3: CacheParams,
    pub mem_latency: u64,

    /// Commit-progress watchdog: cycles without a single commit before
    /// `Pipeline::try_run` gives up with `SimError::Deadlock`. Must exceed
    /// the worst legitimate commit gap (a full-ROB chain of memory misses).
    pub watchdog_cycles: u64,
}

impl Default for PipeConfig {
    fn default() -> Self {
        PipeConfig {
            fusion: FusionMode::NoFusion,
            helios: HeliosParams::default(),
            fetch_width: 8,
            rename_width: 5,
            dispatch_width: 5,
            commit_width: 8,
            aq_size: 140,
            rob_size: 352,
            iq_size: 160,
            lq_size: 128,
            sq_size: 72,
            prf_size: 280,
            alu_ports: 4,
            load_ports: 2,
            store_ports: 2,
            store_drain_per_cycle: 1,
            alu_latency: 1,
            mul_latency: 3,
            div_latency: 18,
            branch_redirect_penalty: 14,
            line_cross_penalty: 1,
            l1d: CacheParams {
                size: 48 * 1024,
                ways: 12,
                line: 64,
                latency: 5,
            },
            l2: CacheParams {
                size: 512 * 1024,
                ways: 8,
                line: 64,
                latency: 14,
            },
            l3: CacheParams {
                size: 2 * 1024 * 1024,
                ways: 16,
                line: 64,
                latency: 40,
            },
            mem_latency: 200,
            watchdog_cycles: 100_000,
        }
    }
}

/// Why a [`PipeConfigBuilder`] rejected a configuration.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ConfigError {
    /// A structure capacity (AQ/ROB/IQ/LQ/SQ) is zero — the pipeline could
    /// never dispatch a µ-op.
    ZeroCapacity(&'static str),
    /// A per-cycle width (fetch/rename/dispatch/commit) is zero — the
    /// pipeline could never move a µ-op.
    ZeroWidth(&'static str),
    /// Too few physical registers to cover the 32 architectural mappings
    /// plus at least one rename.
    PrfTooSmall { prf_size: usize },
    /// The commit-progress watchdog window is shorter than one commit
    /// group — every run would be reported as deadlocked.
    WatchdogTooSmall { watchdog_cycles: u64, commit_width: usize },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::ZeroCapacity(s) => write!(f, "{s} capacity must be at least 1"),
            ConfigError::ZeroWidth(s) => write!(f, "{s} width must be at least 1"),
            ConfigError::PrfTooSmall { prf_size } => write!(
                f,
                "prf_size {prf_size} leaves no physical registers beyond the 32 architectural mappings"
            ),
            ConfigError::WatchdogTooSmall {
                watchdog_cycles,
                commit_width,
            } => write!(
                f,
                "watchdog_cycles {watchdog_cycles} is below the commit width {commit_width}: \
                 every run would be reported as deadlocked"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Validating builder for [`PipeConfig`].
///
/// Starts from the Table II defaults; [`PipeConfigBuilder::build`] rejects
/// configurations the pipeline cannot run (zero-capacity structures, zero
/// widths, a starved PRF, or a watchdog window below the commit width)
/// instead of letting them surface later as a watchdog "deadlock".
///
/// # Examples
///
/// ```
/// use helios_core::FusionMode;
/// use helios_uarch::PipeConfig;
///
/// let cfg = PipeConfig::builder()
///     .fusion(FusionMode::Helios)
///     .rob_size(64)
///     .build()?;
/// assert_eq!(cfg.rob_size, 64);
/// assert!(PipeConfig::builder().sq_size(0).build().is_err());
/// # Ok::<(), helios_uarch::ConfigError>(())
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct PipeConfigBuilder {
    cfg: PipeConfig,
}

impl PipeConfigBuilder {
    /// Sets the fusion mode under evaluation.
    pub fn fusion(mut self, fusion: FusionMode) -> Self {
        self.cfg.fusion = fusion;
        self
    }

    /// Sets the reorder-buffer capacity.
    pub fn rob_size(mut self, n: usize) -> Self {
        self.cfg.rob_size = n;
        self
    }

    /// Sets the issue-queue capacity.
    pub fn iq_size(mut self, n: usize) -> Self {
        self.cfg.iq_size = n;
        self
    }

    /// Sets the load-queue capacity.
    pub fn lq_size(mut self, n: usize) -> Self {
        self.cfg.lq_size = n;
        self
    }

    /// Sets the store-queue capacity.
    pub fn sq_size(mut self, n: usize) -> Self {
        self.cfg.sq_size = n;
        self
    }

    /// Sets the allocation-queue capacity.
    pub fn aq_size(mut self, n: usize) -> Self {
        self.cfg.aq_size = n;
        self
    }

    /// Sets the physical integer register file size.
    pub fn prf_size(mut self, n: usize) -> Self {
        self.cfg.prf_size = n;
        self
    }

    /// Sets the commit-progress watchdog window.
    pub fn watchdog_cycles(mut self, n: u64) -> Self {
        self.cfg.watchdog_cycles = n;
        self
    }

    /// Escape hatch for fields without a dedicated setter (latencies, port
    /// counts, cache geometry, `helios` sub-parameters). The closure edits
    /// the draft in place; [`PipeConfigBuilder::build`] still validates the
    /// result.
    pub fn tweak(mut self, f: impl FnOnce(&mut PipeConfig)) -> Self {
        f(&mut self.cfg);
        self
    }

    /// Validates and returns the configuration.
    pub fn build(self) -> Result<PipeConfig, ConfigError> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

impl PipeConfig {
    /// A validating builder starting from the Table II defaults.
    pub fn builder() -> PipeConfigBuilder {
        PipeConfigBuilder::default()
    }

    /// Checks the structural invariants the pipeline needs to make progress.
    /// [`PipeConfigBuilder::build`] applies this automatically.
    pub fn validate(&self) -> Result<(), ConfigError> {
        for (n, what) in [
            (self.aq_size, "AQ"),
            (self.rob_size, "ROB"),
            (self.iq_size, "IQ"),
            (self.lq_size, "LQ"),
            (self.sq_size, "SQ"),
        ] {
            if n == 0 {
                return Err(ConfigError::ZeroCapacity(what));
            }
        }
        for (n, what) in [
            (self.fetch_width, "fetch"),
            (self.rename_width, "rename"),
            (self.dispatch_width, "dispatch"),
            (self.commit_width, "commit"),
        ] {
            if n == 0 {
                return Err(ConfigError::ZeroWidth(what));
            }
        }
        if self.free_phys_regs() == 0 {
            return Err(ConfigError::PrfTooSmall {
                prf_size: self.prf_size,
            });
        }
        if self.watchdog_cycles < self.commit_width as u64 {
            return Err(ConfigError::WatchdogTooSmall {
                watchdog_cycles: self.watchdog_cycles,
                commit_width: self.commit_width,
            });
        }
        Ok(())
    }

    /// A configuration for the given fusion mode, otherwise default.
    pub fn with_fusion(fusion: FusionMode) -> PipeConfig {
        PipeConfig {
            fusion,
            ..PipeConfig::default()
        }
    }

    /// The structure sizes relevant to Helios storage accounting.
    pub fn sizes(&self) -> PipelineSizes {
        PipelineSizes {
            aq: self.aq_size,
            iq: self.iq_size,
            rob: self.rob_size,
            lq: self.lq_size,
            sq: self.sq_size,
            arch_regs: 32,
            lsq_pair_entries: 88,
            nest: self.helios.max_nest,
        }
    }

    /// Number of physical registers available for renaming.
    pub fn free_phys_regs(&self) -> usize {
        self.prf_size.saturating_sub(32)
    }

    /// A stable 64-bit digest of the *complete* configuration, used to key
    /// sweep checkpoint-journal entries and result caches by
    /// `(workload, config)` so a resumed or cached cell is only reused for
    /// an identical configuration.
    ///
    /// FNV-1a over every field, enumerated through exhaustive destructuring
    /// (the same compile-enforced idiom as `SimStats::to_kv`): adding a
    /// field to [`PipeConfig`], [`HeliosParams`], or any nested
    /// sub-structure without extending this function refuses to compile, so
    /// a new knob can never silently alias two distinct configs. The
    /// previous implementation hashed the derived `Debug` rendering, which
    /// covered fields transitively but would have gone quietly stale the
    /// day a sub-structure gained a hand-written `Debug`. A digest change
    /// across builds is always safe — the affected cell is simply
    /// re-simulated.
    pub fn digest(&self) -> u64 {
        struct Fnv(u64);
        impl Fnv {
            fn u64(&mut self, v: u64) {
                for b in v.to_le_bytes() {
                    self.0 ^= b as u64;
                    self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
                }
            }
            fn usize(&mut self, v: usize) {
                self.u64(v as u64);
            }
            fn opt(&mut self, v: Option<usize>) {
                // Tagged so `None` and `Some(0)` hash differently.
                match v {
                    None => self.u64(0),
                    Some(n) => {
                        self.u64(1);
                        self.usize(n);
                    }
                }
            }
            fn str(&mut self, s: &str) {
                self.u64(s.len() as u64);
                for b in s.bytes() {
                    self.0 ^= b as u64;
                    self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
                }
            }
            fn cache(&mut self, c: CacheParams) {
                let CacheParams {
                    size,
                    ways,
                    line,
                    latency,
                } = c;
                self.usize(size);
                self.usize(ways);
                self.usize(line);
                self.u64(latency);
            }
        }
        let PipeConfig {
            fusion,
            helios,
            fetch_width,
            rename_width,
            dispatch_width,
            commit_width,
            aq_size,
            rob_size,
            iq_size,
            lq_size,
            sq_size,
            prf_size,
            alu_ports,
            load_ports,
            store_ports,
            store_drain_per_cycle,
            alu_latency,
            mul_latency,
            div_latency,
            branch_redirect_penalty,
            line_cross_penalty,
            l1d,
            l2,
            l3,
            mem_latency,
            watchdog_cycles,
        } = *self;
        let HeliosParams {
            uch,
            uch_queue,
            fp,
            max_nest,
            line_bytes,
            dbr_store_pairs,
        } = helios;
        let UchConfig {
            load_entries,
            max_distance,
        } = uch;
        let UchQueueConfig {
            entries: uch_queue_entries,
            drain_per_cycle: uch_queue_drain,
        } = uch_queue;
        let FpConfig {
            sets: fp_sets,
            ways: fp_ways,
            selector_entries: fp_selector_entries,
            tag_bits: fp_tag_bits,
            distance_bits: fp_distance_bits,
            probabilistic_confidence: fp_probabilistic,
        } = fp;
        let mut h = Fnv(0xcbf2_9ce4_8422_2325);
        h.str(fusion.name());
        h.usize(load_entries);
        h.u64(max_distance as u64);
        h.opt(uch_queue_entries);
        h.usize(uch_queue_drain);
        h.usize(fp_sets);
        h.usize(fp_ways);
        h.usize(fp_selector_entries);
        h.u64(fp_tag_bits as u64);
        h.u64(fp_distance_bits as u64);
        h.u64(fp_probabilistic as u64);
        h.usize(max_nest);
        h.u64(line_bytes);
        h.u64(dbr_store_pairs as u64);
        h.usize(fetch_width);
        h.usize(rename_width);
        h.usize(dispatch_width);
        h.usize(commit_width);
        h.usize(aq_size);
        h.usize(rob_size);
        h.usize(iq_size);
        h.usize(lq_size);
        h.usize(sq_size);
        h.usize(prf_size);
        h.usize(alu_ports);
        h.usize(load_ports);
        h.usize(store_ports);
        h.usize(store_drain_per_cycle);
        h.u64(alu_latency);
        h.u64(mul_latency);
        h.u64(div_latency);
        h.u64(branch_redirect_penalty);
        h.u64(line_cross_penalty);
        h.cache(l1d);
        h.cache(l2);
        h.cache(l3);
        h.u64(mem_latency);
        h.u64(watchdog_cycles);
        h.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_icelake_like() {
        let c = PipeConfig::default();
        assert_eq!(c.fetch_width, 8, "8-wide frontend per §V-A");
        assert_eq!(c.rename_width, 5, "Icelake allocation width");
        assert_eq!(c.aq_size, 140, "AQ size per §IV-B1");
        assert_eq!(c.rob_size, 352);
        assert_eq!(c.l1d.line, 64);
        assert_eq!(c.free_phys_regs(), 248);
        assert_eq!(c.sizes().aq, 140);
    }

    #[test]
    fn with_fusion_sets_mode() {
        let c = PipeConfig::with_fusion(FusionMode::Helios);
        assert_eq!(c.fusion, FusionMode::Helios);
        assert_eq!(c.rob_size, PipeConfig::default().rob_size);
    }

    #[test]
    fn builder_accepts_valid_and_rejects_degenerate() {
        let c = PipeConfig::builder()
            .fusion(FusionMode::Helios)
            .rob_size(64)
            .iq_size(20)
            .lq_size(16)
            .sq_size(12)
            .prf_size(48)
            .build()
            .unwrap();
        assert_eq!(c.fusion, FusionMode::Helios);
        assert_eq!(c.rob_size, 64);

        assert_eq!(
            PipeConfig::builder().rob_size(0).build(),
            Err(ConfigError::ZeroCapacity("ROB"))
        );
        assert_eq!(
            PipeConfig::builder().iq_size(0).build(),
            Err(ConfigError::ZeroCapacity("IQ"))
        );
        assert_eq!(
            PipeConfig::builder().lq_size(0).build(),
            Err(ConfigError::ZeroCapacity("LQ"))
        );
        assert_eq!(
            PipeConfig::builder().sq_size(0).build(),
            Err(ConfigError::ZeroCapacity("SQ"))
        );
        assert!(matches!(
            PipeConfig::builder().prf_size(32).build(),
            Err(ConfigError::PrfTooSmall { prf_size: 32 })
        ));
        assert!(matches!(
            PipeConfig::builder().watchdog_cycles(4).build(),
            Err(ConfigError::WatchdogTooSmall { .. })
        ));
    }

    #[test]
    fn digest_separates_configs_and_is_stable() {
        let a = PipeConfig::default();
        let b = PipeConfig::default();
        assert_eq!(a.digest(), b.digest(), "identical configs share a digest");
        assert_ne!(
            PipeConfig::with_fusion(FusionMode::Helios).digest(),
            PipeConfig::with_fusion(FusionMode::NoFusion).digest(),
            "fusion mode is part of the digest"
        );
        let tweaked = PipeConfig::builder().rob_size(64).build().unwrap();
        assert_ne!(a.digest(), tweaked.digest(), "structure sizes are covered");
    }

    #[test]
    fn digest_covers_nested_sub_structures() {
        // The exhaustive destructuring must reach every leaf, not just the
        // top-level fields: a knob buried three levels down (e.g. the fusion
        // predictor's set count) still has to separate two configs.
        let base = PipeConfig::default();
        let cases: &[fn(&mut PipeConfig)] = &[
            |c| c.helios.uch.load_entries += 1,
            |c| c.helios.uch.max_distance += 1,
            |c| c.helios.uch_queue.entries = None,
            |c| c.helios.uch_queue.drain_per_cycle += 1,
            |c| c.helios.fp.sets *= 2,
            |c| c.helios.fp.probabilistic_confidence = true,
            |c| c.helios.max_nest += 1,
            |c| c.helios.dbr_store_pairs = true,
            |c| c.l2.latency += 1,
            |c| c.l3.ways /= 2,
            |c| c.line_cross_penalty += 1,
            |c| c.watchdog_cycles += 1,
        ];
        for (i, tweak) in cases.iter().enumerate() {
            let mut t = base;
            tweak(&mut t);
            assert_ne!(base.digest(), t.digest(), "tweak #{i} not covered");
        }
        // `None` and `Some(0)` are different ideal/degenerate queues.
        let mut unbounded = base;
        unbounded.helios.uch_queue.entries = None;
        let mut zero = base;
        zero.helios.uch_queue.entries = Some(0);
        assert_ne!(unbounded.digest(), zero.digest());
    }

    #[test]
    fn builder_tweak_is_still_validated() {
        let c = PipeConfig::builder()
            .tweak(|c| c.alu_ports = 8)
            .build()
            .unwrap();
        assert_eq!(c.alu_ports, 8);
        assert!(PipeConfig::builder()
            .tweak(|c| c.fetch_width = 0)
            .build()
            .is_err());
    }
}
