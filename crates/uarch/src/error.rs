//! Structured simulation errors.
//!
//! A cycle model that `panic!`s in its main loop cannot back a long-running
//! service, and one that silently truncates on a cycle budget hides bugs.
//! `Pipeline::try_run` reports every abnormal outcome through [`SimError`]:
//! a watchdog-detected deadlock (with a pipeline snapshot), an exhausted
//! cycle budget, or a violated internal invariant caught by the lockstep
//! oracle checker. All variants are plain data — `std`-only, cloneable, and
//! printable — so callers can log, retry, or fail a whole batch gracefully.

use std::fmt;

/// Why a simulation run could not complete normally.
#[derive(Clone, Debug)]
pub enum SimError {
    /// Commit made no progress for the configured watchdog window
    /// (`PipeConfig::watchdog_cycles`). Always a simulator bug, never a
    /// workload property: the report carries the stuck pipeline state.
    /// Boxed so the `Ok` path of `try_run` is not taxed by a fat variant.
    Deadlock(Box<DeadlockReport>),
    /// The trace did not drain within the caller's cycle budget.
    CycleLimit {
        /// The budget that was exhausted.
        max_cycles: u64,
        /// Instructions committed before giving up.
        committed: u64,
    },
    /// The run's wall-clock deadline (`Pipeline::try_run_deadline`) passed
    /// before the trace drained. Unlike [`SimError::Deadlock`] this is not
    /// necessarily a simulator bug — a loaded host or an oversized cell can
    /// blow a per-cell budget — so sweep executors treat it as a retryable,
    /// quarantinable outcome rather than a fatal one.
    WallClockTimeout {
        /// The wall-clock budget that elapsed, in milliseconds.
        limit_ms: u64,
        /// Simulated cycles reached before giving up.
        cycles: u64,
        /// Instructions committed before giving up.
        committed: u64,
    },
    /// An internal invariant failed (lockstep oracle mismatch, resource
    /// accounting drift, occupancy overflow, …).
    InvariantViolation(Box<InvariantReport>),
}

/// Snapshot of a deadlocked pipeline, taken when the commit-progress
/// watchdog fires.
#[derive(Clone, Debug)]
pub struct DeadlockReport {
    /// Cycle at which the watchdog fired.
    pub cycle: u64,
    /// Instructions committed so far.
    pub committed: u64,
    /// Cycle of the last successful commit.
    pub last_commit_cycle: u64,
    /// Occupancies at the time of the report.
    pub rob: usize,
    pub aq: usize,
    pub iq: usize,
    /// Pending (not yet validated) NCSF pairs in flight.
    pub pending_ncsf: usize,
    /// Human-readable description of the ROB head, if any.
    pub rob_front: Option<String>,
    /// Human-readable descriptions of the oldest IQ entries.
    pub iq_head: Vec<String>,
    /// Scheduled-but-unapplied flushes, formatted.
    pub flushes: String,
}

/// Diagnostic for a failed internal invariant.
#[derive(Clone, Debug)]
pub struct InvariantReport {
    /// Cycle at which the violation was detected.
    pub cycle: u64,
    /// Instructions committed so far.
    pub committed: u64,
    /// Which invariant failed.
    pub what: String,
    /// State snapshot relevant to the violation.
    pub snapshot: String,
}

impl fmt::Display for DeadlockReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "pipeline deadlock at cycle {} (committed {}, last commit at cycle {}, \
             rob {}, aq {}, iq {}, pending_ncsf {}, flushes {})",
            self.cycle,
            self.committed,
            self.last_commit_cycle,
            self.rob,
            self.aq,
            self.iq,
            self.pending_ncsf,
            self.flushes,
        )?;
        match &self.rob_front {
            Some(front) => writeln!(f, "rob front: {front}")?,
            None => writeln!(f, "rob front: <empty>")?,
        }
        write!(f, "iq head:")?;
        if self.iq_head.is_empty() {
            write!(f, " <empty>")?;
        }
        for e in &self.iq_head {
            write!(f, "\n  {e}")?;
        }
        Ok(())
    }
}

impl fmt::Display for InvariantReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invariant violated at cycle {} (committed {}): {}\n{}",
            self.cycle, self.committed, self.what, self.snapshot
        )
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Deadlock(r) => r.fmt(f),
            SimError::CycleLimit {
                max_cycles,
                committed,
            } => write!(
                f,
                "cycle limit exhausted: {committed} instructions committed \
                 within {max_cycles} cycles"
            ),
            SimError::WallClockTimeout {
                limit_ms,
                cycles,
                committed,
            } => write!(
                f,
                "wall-clock timeout: {limit_ms} ms elapsed after {cycles} \
                 simulated cycles ({committed} instructions committed)"
            ),
            SimError::InvariantViolation(r) => r.fmt(f),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let d = SimError::Deadlock(Box::new(DeadlockReport {
            cycle: 123_456,
            committed: 99,
            last_commit_cycle: 23_456,
            rob: 352,
            aq: 140,
            iq: 160,
            pending_ncsf: 2,
            rob_front: Some("seq 100 ld complete_at None".into()),
            iq_head: vec!["seq 101 waiting".into()],
            flushes: "[]".into(),
        }));
        let s = d.to_string();
        assert!(s.contains("deadlock at cycle 123456"));
        assert!(s.contains("rob front: seq 100"));
        assert!(s.contains("seq 101 waiting"));

        let c = SimError::CycleLimit {
            max_cycles: 10,
            committed: 3,
        };
        assert!(c.to_string().contains("3 instructions"));

        let t = SimError::WallClockTimeout {
            limit_ms: 5000,
            cycles: 123,
            committed: 45,
        };
        let s = t.to_string();
        assert!(s.contains("5000 ms") && s.contains("123") && s.contains("45"));

        let i = SimError::InvariantViolation(Box::new(InvariantReport {
            cycle: 7,
            committed: 5,
            what: "free list drift".into(),
            snapshot: "free 10 allocated 3 expected 248".into(),
        }));
        let s = i.to_string();
        assert!(s.contains("cycle 7") && s.contains("free list drift"));

        // The error type is usable behind `dyn Error`.
        let e: Box<dyn std::error::Error> = Box::new(c);
        assert!(!e.to_string().is_empty());
    }
}
