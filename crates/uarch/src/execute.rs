//! Issue + Execute: wakeup/select over the IQ, functional-unit ports, load
//! execution with store-to-load forwarding and fused-pair cache access,
//! store address generation, and senior-store draining (TSO).

use crate::pipeline::{FlushKind, PendingFlush, Pipeline, StoreCheck};
use crate::FuClass;
use helios_core::{classify_contiguity, Contiguity, Idiom, RepairCase};
use helios_emu::{MemAccess, UopSource};

impl<I: UopSource> Pipeline<I> {
    /// One cycle of Issue/Execute: select ready µ-ops oldest-first within
    /// port constraints and start their execution.
    ///
    /// Fully event-driven: the loop walks only `iq_ready` — the sorted list
    /// of entries whose active phase has zero outstanding producers
    /// (maintained by `wake_consumers` as completions fire) — so a cycle's
    /// cost scales with the handful of issuable µ-ops, not the IQ depth.
    /// Blocked entries are never visited, let alone re-polled.
    ///
    /// The cursor re-finds its position by value each step because the list
    /// mutates mid-loop: issued entries leave it, and a zero-latency
    /// completion can wake consumers into it. Woken consumers land *after*
    /// the cursor in the common producer-older case and *before* it for a
    /// tail-contributed younger producer — exactly matching the old full
    /// scan, which visited dependents of a zero-latency producer later in
    /// the same pass but never re-visited earlier positions.
    pub(crate) fn stage_issue(&mut self) {
        let mut alu = self.cfg.alu_ports;
        let mut loads = self.cfg.load_ports;
        let mut stores = self.cfg.store_ports;
        let now = self.now;
        let mut cursor: Option<(u64, u32)> = None;

        loop {
            if alu == 0 && loads == 0 && stores == 0 {
                break;
            }
            let idx = match cursor {
                None => 0,
                Some(c) => match self.iq_ready.binary_search(&c) {
                    Ok(i) => i + 1, // still listed (port-blocked or STA'd)
                    Err(i) => i,    // issued and removed; successor slid here
                },
            };
            let Some(&(seq, slot)) = self.iq_ready.get(idx) else {
                break;
            };
            cursor = Some((seq, slot));

            let (fu, sta_pending, memdep) = {
                let e = self.iq_slots[slot as usize]
                    .as_ref()
                    .expect("ready-listed IQ entry is live");
                debug_assert_eq!(e.seq, seq);
                debug_assert!(e.wakeup_ready());
                let sta = e.fu == FuClass::Store && !e.sta_done;
                let md = (e.fu == FuClass::Load).then_some(e.memdep_wait).flatten();
                (e.fu, sta, md)
            };
            let port_ok = match fu {
                FuClass::Load => loads > 0,
                FuClass::Store => stores > 0,
                FuClass::Div => alu > 0 && self.div_busy_until <= now,
                _ => alu > 0,
            };
            if !port_ok {
                continue; // stays listed; retried next cycle
            }
            // Store-set dependence: wait until the predicted-conflicting
            // store's address is known. Polled only for *ready* loads, as
            // store drain/squash can satisfy it without any wakeup event.
            if let Some(d) = memdep {
                if !self.store_addr_known(d, now) {
                    continue;
                }
            }

            if sta_pending {
                // STA: compute the address(es), expose them to loads and
                // the violation scan; the entry stays in the IQ for STD.
                stores -= 1;
                let complete = now + self.cfg.alu_latency;
                if let Some(si) = self.sq_index(seq) {
                    let s = &mut self.sq[si];
                    s.addr_known_at = Some(complete);
                    let pc = s.pc;
                    self.store_sets.store_executed(pc, seq);
                }
                self.store_checks.push(StoreCheck {
                    at_cycle: complete,
                    store_seq: seq,
                });
                let e = self.iq_slots[slot as usize]
                    .as_mut()
                    .expect("ready-listed IQ entry is live");
                e.sta_done = true;
                if e.pending_data > 0 {
                    // The active phase is now STD and its producers are
                    // outstanding: leave the ready list until they complete.
                    self.iq_ready_remove(seq, slot);
                }
                continue;
            }
            let latency = self.execute(seq, fu);
            let complete = now + latency;
            match fu {
                FuClass::Load => loads -= 1,
                FuClass::Store => stores -= 1,
                FuClass::Div => {
                    alu -= 1;
                    self.div_busy_until = complete;
                }
                _ => alu -= 1,
            }
            self.record_completion(seq, complete);
            if let Some(o) = self.obs.as_deref_mut() {
                o.issued(seq, now, complete);
            }
            // Issued: release the IQ slot and leave the ready list.
            self.iq_slots[slot as usize] = None;
            self.iq_free.push(slot);
            self.iq_len -= 1;
            self.iq_ready_remove(seq, slot);
            if let Some(ri) = self.rob_index(seq) {
                self.rob[ri].iq_slot = Self::NO_IQ_SLOT;
            }
        }
    }

    /// Computes the execution latency of µ-op `seq` and performs its memory
    /// side effects (cache accesses, STLF, fused-pair span check).
    fn execute(&mut self, seq: u64, fu: FuClass) -> u64 {
        match fu {
            FuClass::Alu => self.cfg.alu_latency,
            FuClass::Branch => self.cfg.alu_latency,
            FuClass::Mul => self.cfg.mul_latency,
            FuClass::Div => self.cfg.div_latency,
            FuClass::Store => self.cfg.alu_latency,
            FuClass::Load => self.execute_load(seq),
        }
    }

    /// Executes a load (or fused load pair / ALU+load idiom).
    fn execute_load(&mut self, seq: u64) -> u64 {
        let Some(ri) = self.rob_index(seq) else {
            return self.cfg.l1d.latency;
        };
        let u = self.rob[ri].uop;
        let (Some(acc), acc2) = u.lq_accesses() else {
            return self.cfg.l1d.latency;
        };
        let line = self.cfg.helios.line_bytes;

        let mut latency = self.load_access_latency(seq, &acc);

        // ALU+load fused idioms pay the internal address-generation cycle.
        if let Some(f) = &u.fused {
            if matches!(f.idiom, Idiom::IndexedLoad | Idiom::LoadGlobal) {
                latency += 1;
            }
        }

        // Fused load pair: classify the dynamic pair and verify the span
        // (§IV-C case 5: flush + unfuse when it exceeds the fusion region).
        if let Some(a2) = acc2 {
            let c = classify_contiguity(&acc, &a2, line);
            if let Some(f) = self.rob[ri].uop.fused.as_mut() {
                f.contiguity = Some(c);
            }
            if c == Contiguity::TooFar {
                // §IV-C case 5: the accesses span more than the fusion
                // region. The misprediction is uncovered here at Execute
                // (predictor confidence resets now, §IV-A2); the pipeline
                // flushes from the fused µ-op when the access completes, and
                // the whole group is re-fetched unfused.
                self.stats.fusion.record_repair(RepairCase::SpanMismatch);
                if let Some(f) = self.rob[ri].uop.fused.as_mut() {
                    if let Some(meta) = f.pred.take() {
                        self.fp.resolve(&meta, false);
                    }
                }
                self.schedule_flush(PendingFlush {
                    at_cycle: self.now + latency,
                    restart: seq,
                    kind: FlushKind::FusionSpan,
                });
            } else if !c.single_access() {
                // Second serialized access to the next line (§II-B).
                self.mem.access(a2.addr, false, self.now);
                latency += self.cfg.line_cross_penalty;
            }
        }

        if let Some(li) = self.lq_index(seq) {
            self.lq[li].issue_cycle = Some(self.now);
        }
        latency
    }

    /// Base latency of a single load access: STLF against older SQ entries,
    /// then the cache hierarchy.
    fn load_access_latency(&mut self, seq: u64, acc: &MemAccess) -> u64 {
        // Youngest older store with a known address that overlaps.
        for s in self.sq.iter().rev() {
            if s.seq >= seq {
                continue;
            }
            let known = s.addr_known_at.is_some_and(|t| t <= self.now) || s.senior;
            if !known {
                // Unknown address: the load speculates; a violation, if any,
                // is detected when the store executes (store-set training).
                continue;
            }
            let covered_by =
                |a: &MemAccess| a.addr <= acc.addr && a.last_byte() >= acc.last_byte();
            // Either half of a fused store pair can forward (§II-B STLDF
            // handles the full byte-vector of the entry).
            let covers = covered_by(&s.acc) || s.acc2.as_ref().is_some_and(covered_by);
            let overlaps = s.acc.overlaps(acc)
                || s.acc2.is_some_and(|a2| a2.overlaps(acc));
            if covers {
                // Forward only once the store's data exists (STD executed or
                // the store is already senior).
                let data_ready = s.senior || self.ready_bit(s.seq);
                self.stats.stlf_forwards += 1;
                if data_ready {
                    return self.cfg.l1d.latency;
                }
                // Data not produced yet: the load forwards after a short
                // replay (still a store-to-load forward, just delayed).
                return self.cfg.l1d.latency + 4;
            }
            if overlaps {
                // Partial overlap: forwarding impossible; charge a replay
                // penalty on top of the cache access.
                let res = self.mem.access(acc.addr, false, self.now);
                return res.latency + 10;
            }
        }
        let res = self.mem.access(acc.addr, false, self.now);
        let mut lat = res.latency;
        if acc.crosses_line(self.cfg.helios.line_bytes) {
            self.mem.access(acc.last_byte(), false, self.now);
            lat += self.cfg.line_cross_penalty;
        }
        lat
    }

    /// Drains senior stores from the SQ head into the L1D (post-commit,
    /// in order — TSO). The drain port is occupied one cycle per cache
    /// access (two for line-crossing or non-single-access fused pairs);
    /// miss *fills* are handled by the line-fill buffers in the background
    /// (they delay subsequent demand loads via the hierarchy's in-flight
    /// tracking, not the drain port). A fused store pair therefore drains
    /// with a single access — the §III-C bandwidth benefit.
    pub(crate) fn stage_drain_stores(&mut self) {
        let mut budget = self.cfg.store_drain_per_cycle;
        while budget > 0 {
            let now = self.now;
            let line = self.cfg.helios.line_bytes;
            let Some(front) = self.sq.front_mut() else { break };
            if !front.senior {
                break;
            }
            match front.draining_until {
                Some(t) if t <= now => {
                    self.sq.pop_front();
                    budget -= 1;
                }
                Some(_) => break,
                None => {
                    let acc = front.acc;
                    let acc2 = front.acc2;
                    self.mem.access(acc.addr, true, now);
                    let mut port_cycles = 1u64;
                    if acc.crosses_line(line) {
                        self.mem.access(acc.last_byte(), true, now);
                        port_cycles += 1;
                    }
                    if let Some(a2) = acc2 {
                        let c = classify_contiguity(&acc, &a2, line);
                        if !c.single_access() {
                            self.mem.access(a2.addr, true, now);
                            port_cycles += 1;
                        }
                    }
                    if port_cycles == 1 {
                        self.sq.pop_front();
                        budget -= 1;
                    } else {
                        let Some(front) = self.sq.front_mut() else { break };
                        front.draining_until = Some(now + port_cycles - 1);
                        break;
                    }
                }
            }
        }
    }
}
