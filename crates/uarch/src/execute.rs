//! Issue + Execute: wakeup/select over the IQ, functional-unit ports, load
//! execution with store-to-load forwarding and fused-pair cache access,
//! store address generation, and senior-store draining (TSO).

use crate::pipeline::{FlushKind, PendingFlush, Pipeline, StoreCheck};
use crate::FuClass;
use helios_core::{classify_contiguity, Contiguity, Idiom, RepairCase};
use helios_emu::{MemAccess, UopSource};

impl<I: UopSource> Pipeline<I> {
    /// One cycle of Issue/Execute: select ready µ-ops oldest-first within
    /// port constraints and start their execution.
    pub(crate) fn stage_issue(&mut self) {
        let mut alu = self.cfg.alu_ports;
        let mut loads = self.cfg.load_ports;
        let mut stores = self.cfg.store_ports;
        let now = self.now;
        // Reused across cycles: stage_issue runs every cycle and must not
        // allocate in steady state.
        let mut issued = std::mem::take(&mut self.scratch_issued);
        issued.clear();

        for i in 0..self.iq.len() {
            if alu == 0 && loads == 0 && stores == 0 {
                break;
            }
            let e = &self.iq[i];
            if !e.ncs_ready {
                continue;
            }
            let port_ok = match e.fu {
                FuClass::Load => loads > 0,
                FuClass::Store => stores > 0,
                FuClass::Div => alu > 0 && self.div_busy_until <= now,
                _ => alu > 0,
            };
            if !port_ok {
                continue;
            }
            // Phase selection: STA waits on address sources, STD on data.
            let sta_pending = e.fu == FuClass::Store && !e.sta_done;
            let waiting_on = if e.fu == FuClass::Store && e.sta_done {
                &e.data_srcs
            } else {
                &e.srcs
            };
            if !waiting_on.iter().all(|&p| self.producer_ready(p, now)) {
                continue;
            }
            if e.fu == FuClass::Load {
                if let Some(d) = e.memdep_wait {
                    if !self.store_addr_known(d, now) {
                        continue;
                    }
                }
            }

            let seq = e.seq;
            let fu = e.fu;
            if sta_pending {
                // STA: compute the address(es), expose them to loads and the
                // violation scan; the entry stays in the IQ for STD.
                stores -= 1;
                let complete = now + self.cfg.alu_latency;
                if let Some(s) = self.sq.iter_mut().find(|s| s.seq == seq) {
                    s.addr_known_at = Some(complete);
                    let pc = s.pc;
                    self.store_sets.store_executed(pc, seq);
                }
                self.store_checks.push(StoreCheck {
                    at_cycle: complete,
                    store_seq: seq,
                });
                if let Some(iqe) = self.iq.iter_mut().find(|x| x.seq == seq) {
                    iqe.sta_done = true;
                }
                continue;
            }
            let latency = self.execute(seq, fu);
            let complete = now + latency;
            match fu {
                FuClass::Load => loads -= 1,
                FuClass::Store => stores -= 1,
                FuClass::Div => {
                    alu -= 1;
                    self.div_busy_until = complete;
                }
                _ => alu -= 1,
            }
            self.board.set(seq, complete, self.committed_upto);
            if let Some(ri) = self.rob_index(seq) {
                self.rob[ri].issued = true;
                self.rob[ri].complete_at = Some(complete);
            }
            if let Some(o) = self.obs.as_deref_mut() {
                o.issued(seq, now, complete);
            }
            issued.push(seq);
        }

        if !issued.is_empty() {
            self.iq.retain(|e| !issued.contains(&e.seq));
        }
        self.scratch_issued = issued;
    }

    /// Computes the execution latency of µ-op `seq` and performs its memory
    /// side effects (cache accesses, STLF, fused-pair span check).
    fn execute(&mut self, seq: u64, fu: FuClass) -> u64 {
        match fu {
            FuClass::Alu => self.cfg.alu_latency,
            FuClass::Branch => self.cfg.alu_latency,
            FuClass::Mul => self.cfg.mul_latency,
            FuClass::Div => self.cfg.div_latency,
            FuClass::Store => self.cfg.alu_latency,
            FuClass::Load => self.execute_load(seq),
        }
    }

    /// Executes a load (or fused load pair / ALU+load idiom).
    fn execute_load(&mut self, seq: u64) -> u64 {
        let Some(ri) = self.rob_index(seq) else {
            return self.cfg.l1d.latency;
        };
        let u = self.rob[ri].uop;
        let (Some(acc), acc2) = u.lq_accesses() else {
            return self.cfg.l1d.latency;
        };
        let line = self.cfg.helios.line_bytes;

        let mut latency = self.load_access_latency(seq, &acc);

        // ALU+load fused idioms pay the internal address-generation cycle.
        if let Some(f) = &u.fused {
            if matches!(f.idiom, Idiom::IndexedLoad | Idiom::LoadGlobal) {
                latency += 1;
            }
        }

        // Fused load pair: classify the dynamic pair and verify the span
        // (§IV-C case 5: flush + unfuse when it exceeds the fusion region).
        if let Some(a2) = acc2 {
            let c = classify_contiguity(&acc, &a2, line);
            if let Some(f) = self.rob[ri].uop.fused.as_mut() {
                f.contiguity = Some(c);
            }
            if c == Contiguity::TooFar {
                // §IV-C case 5: the accesses span more than the fusion
                // region. The misprediction is uncovered here at Execute
                // (predictor confidence resets now, §IV-A2); the pipeline
                // flushes from the fused µ-op when the access completes, and
                // the whole group is re-fetched unfused.
                self.stats.fusion.record_repair(RepairCase::SpanMismatch);
                if let Some(f) = self.rob[ri].uop.fused.as_mut() {
                    if let Some(meta) = f.pred.take() {
                        self.fp.resolve(&meta, false);
                    }
                }
                self.schedule_flush(PendingFlush {
                    at_cycle: self.now + latency,
                    restart: seq,
                    kind: FlushKind::FusionSpan,
                });
            } else if !c.single_access() {
                // Second serialized access to the next line (§II-B).
                self.mem.access(a2.addr, false, self.now);
                latency += self.cfg.line_cross_penalty;
            }
        }

        if let Some(l) = self.lq.iter_mut().find(|l| l.seq == seq) {
            l.issue_cycle = Some(self.now);
        }
        latency
    }

    /// Base latency of a single load access: STLF against older SQ entries,
    /// then the cache hierarchy.
    fn load_access_latency(&mut self, seq: u64, acc: &MemAccess) -> u64 {
        // Youngest older store with a known address that overlaps.
        for s in self.sq.iter().rev() {
            if s.seq >= seq {
                continue;
            }
            let known = s.addr_known_at.is_some_and(|t| t <= self.now) || s.senior;
            if !known {
                // Unknown address: the load speculates; a violation, if any,
                // is detected when the store executes (store-set training).
                continue;
            }
            let covered_by =
                |a: &MemAccess| a.addr <= acc.addr && a.last_byte() >= acc.last_byte();
            // Either half of a fused store pair can forward (§II-B STLDF
            // handles the full byte-vector of the entry).
            let covers = covered_by(&s.acc) || s.acc2.as_ref().is_some_and(covered_by);
            let overlaps = s.acc.overlaps(acc)
                || s.acc2.is_some_and(|a2| a2.overlaps(acc));
            if covers {
                // Forward only once the store's data exists (STD executed or
                // the store is already senior).
                let data_ready = s.senior || self.board.get(s.seq).is_some_and(|c| c <= self.now);
                self.stats.stlf_forwards += 1;
                if data_ready {
                    return self.cfg.l1d.latency;
                }
                // Data not produced yet: the load forwards after a short
                // replay (still a store-to-load forward, just delayed).
                return self.cfg.l1d.latency + 4;
            }
            if overlaps {
                // Partial overlap: forwarding impossible; charge a replay
                // penalty on top of the cache access.
                let res = self.mem.access(acc.addr, false, self.now);
                return res.latency + 10;
            }
        }
        let res = self.mem.access(acc.addr, false, self.now);
        let mut lat = res.latency;
        if acc.crosses_line(self.cfg.helios.line_bytes) {
            self.mem.access(acc.last_byte(), false, self.now);
            lat += self.cfg.line_cross_penalty;
        }
        lat
    }

    /// Drains senior stores from the SQ head into the L1D (post-commit,
    /// in order — TSO). The drain port is occupied one cycle per cache
    /// access (two for line-crossing or non-single-access fused pairs);
    /// miss *fills* are handled by the line-fill buffers in the background
    /// (they delay subsequent demand loads via the hierarchy's in-flight
    /// tracking, not the drain port). A fused store pair therefore drains
    /// with a single access — the §III-C bandwidth benefit.
    pub(crate) fn stage_drain_stores(&mut self) {
        let mut budget = self.cfg.store_drain_per_cycle;
        while budget > 0 {
            let now = self.now;
            let line = self.cfg.helios.line_bytes;
            let Some(front) = self.sq.front_mut() else { break };
            if !front.senior {
                break;
            }
            match front.draining_until {
                Some(t) if t <= now => {
                    self.sq.pop_front();
                    budget -= 1;
                }
                Some(_) => break,
                None => {
                    let acc = front.acc;
                    let acc2 = front.acc2;
                    self.mem.access(acc.addr, true, now);
                    let mut port_cycles = 1u64;
                    if acc.crosses_line(line) {
                        self.mem.access(acc.last_byte(), true, now);
                        port_cycles += 1;
                    }
                    if let Some(a2) = acc2 {
                        let c = classify_contiguity(&acc, &a2, line);
                        if !c.single_access() {
                            self.mem.access(a2.addr, true, now);
                            port_cycles += 1;
                        }
                    }
                    if port_cycles == 1 {
                        self.sq.pop_front();
                        budget -= 1;
                    } else {
                        let Some(front) = self.sq.front_mut() else { break };
                        front.draining_until = Some(now + port_cycles - 1);
                        break;
                    }
                }
            }
        }
    }
}
