//! Deterministic fault injection for the Helios repair paths.
//!
//! The fusion machinery's correctness story rests on its repair cases
//! (§IV-C): whatever the predictor or the catalyst scan got wrong, the
//! pipeline must recover to the architectural instruction stream. Those
//! paths are rare under normal workloads, so this module manufactures the
//! conditions that exercise them:
//!
//! * **Prediction suppression** (`suppress_prediction`) — randomly drops
//!   fusion-predictor hits, modelling a flipped predictor decision. The
//!   affected pairs execute unfused; downstream training/repair bookkeeping
//!   must stay consistent.
//! * **Hazard corruption** (`corrupt_hazards`) — randomly sets catalyst
//!   hazard bits on freshly-marked pairs, forcing the in-place repairs
//!   (RawSourceFix / Deadlock / Serializing / StoreInCatalyst) to fire for
//!   pairs that did not need them.
//! * **UCH eviction** (`uch_evict_period`) — periodically clears the UCH
//!   mid-flight, modelling capacity pressure on the contiguity history.
//! * **Spurious flushes** (`spurious_flush_period`) — periodically squashes
//!   from a random in-flight sequence number, driving the flush repairs
//!   (CatalystFlush) and the atomic-commit-floor clamping.
//!
//! Injection is fully deterministic from [`FaultConfig::seed`], so a failing
//! soak run reproduces exactly. Faults only perturb *microarchitectural*
//! decisions — the trace-driven model still consumes the emulator's
//! architectural stream — so a lockstep [`crate::OracleChecker`] remains
//! valid (and is the point: faults + checker = repair-path verification).

use crate::pipeline::{FlushKind, Pipeline};
use crate::uop::CatalystHazards;
use helios_emu::UopSource;
use helios_prng::{Rng, SeedableRng, StdRng};

/// What to inject, and how often. All mechanisms default to *off*; enable
/// them individually or use the presets.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct FaultConfig {
    /// PRNG seed; identical configs replay identical fault sequences.
    pub seed: u64,
    /// Probability that a fusion-predictor hit is dropped.
    pub suppress_prediction: f64,
    /// Probability that a freshly-marked pair gets a random catalyst hazard
    /// bit forced on.
    pub corrupt_hazards: f64,
    /// Clear the UCH every this many cycles (0 = off).
    pub uch_evict_period: u64,
    /// Flush from a random in-flight sequence number every this many cycles
    /// (0 = off).
    pub spurious_flush_period: u64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            seed: 0,
            suppress_prediction: 0.0,
            corrupt_hazards: 0.0,
            uch_evict_period: 0,
            spurious_flush_period: 0,
        }
    }
}

impl FaultConfig {
    /// Drop half of all fusion predictions.
    pub fn suppress(seed: u64) -> FaultConfig {
        FaultConfig {
            seed,
            suppress_prediction: 0.5,
            ..FaultConfig::default()
        }
    }

    /// Force a random hazard bit on half of all predicted pairs.
    pub fn corrupt(seed: u64) -> FaultConfig {
        FaultConfig {
            seed,
            corrupt_hazards: 0.5,
            ..FaultConfig::default()
        }
    }

    /// Clear the UCH every 1024 cycles.
    pub fn evict(seed: u64) -> FaultConfig {
        FaultConfig {
            seed,
            uch_evict_period: 1024,
            ..FaultConfig::default()
        }
    }

    /// Flush from a random in-flight µ-op every 2048 cycles.
    pub fn flush(seed: u64) -> FaultConfig {
        FaultConfig {
            seed,
            spurious_flush_period: 2048,
            ..FaultConfig::default()
        }
    }

    /// Everything at once.
    pub fn chaos(seed: u64) -> FaultConfig {
        FaultConfig {
            seed,
            suppress_prediction: 0.25,
            corrupt_hazards: 0.25,
            uch_evict_period: 1024,
            spurious_flush_period: 2048,
        }
    }

    /// The named fault modes exercised by the soak harness.
    pub fn modes(seed: u64) -> Vec<(&'static str, FaultConfig)> {
        vec![
            ("suppress", FaultConfig::suppress(seed)),
            ("corrupt", FaultConfig::corrupt(seed)),
            ("evict", FaultConfig::evict(seed)),
            ("flush", FaultConfig::flush(seed)),
            ("chaos", FaultConfig::chaos(seed)),
        ]
    }
}

/// A fault injected into one *sweep cell* (a whole `(workload, config)`
/// simulation) by [`CellChaos`] — the sweep-level analogue of the
/// µ-architectural faults above, used to verify that the resilient sweep
/// executor isolates a bad cell instead of aborting the campaign.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CellFault {
    /// The cell panics before simulating (models an unhandled model bug).
    Panic,
    /// The cell's wall-clock deadline is forced to be already expired
    /// (models a hung or pathologically slow cell), so the real
    /// `try_run_deadline` timeout path fires.
    Timeout,
}

impl CellFault {
    fn parse(s: &str) -> Result<CellFault, String> {
        match s {
            "panic" => Ok(CellFault::Panic),
            "timeout" => Ok(CellFault::Timeout),
            other => Err(format!("unknown cell fault `{other}` (want panic|timeout)")),
        }
    }
}

/// Deterministic sweep-cell fault selection: either an explicit list of
/// `(workload, mode)` cells, or a seeded random subset. The decision for a
/// cell depends only on `(seed, workload, mode)` — never on execution order
/// or worker count — so a chaos sweep is reproducible and a checker can
/// recompute exactly which cells were sabotaged.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct CellChaos {
    /// Explicit `(workload, mode-name, fault)` triples.
    explicit: Vec<(String, String, CellFault)>,
    /// Seed for the rate-based subset (used when `explicit` is empty).
    seed: u64,
    /// Probability a cell panics.
    panic_rate: f64,
    /// Probability a cell times out (evaluated after the panic roll).
    timeout_rate: f64,
}

impl CellChaos {
    /// Explicit sabotage of the named cells.
    pub fn cells(cells: Vec<(String, String, CellFault)>) -> CellChaos {
        CellChaos {
            explicit: cells,
            ..CellChaos::default()
        }
    }

    /// Seeded random sabotage: each cell independently panics with
    /// probability `panic_rate`, else times out with `timeout_rate`.
    pub fn seeded(seed: u64, panic_rate: f64, timeout_rate: f64) -> CellChaos {
        CellChaos {
            explicit: Vec::new(),
            seed,
            panic_rate,
            timeout_rate,
        }
    }

    /// Parses a chaos spec (the `HELIOS_SWEEP_CHAOS` format):
    ///
    /// * explicit — `workload/mode=panic` triples, comma-separated, e.g.
    ///   `bitcount/Helios=panic,fft/NoFusion=timeout`;
    /// * seeded — `seed=7,panic=0.1,timeout=0.05` (omitted rates are 0).
    ///
    /// # Errors
    ///
    /// A human-readable description of the malformed item.
    pub fn parse(spec: &str) -> Result<CellChaos, String> {
        let items: Vec<&str> = spec.split(',').map(str::trim).filter(|s| !s.is_empty()).collect();
        if items.is_empty() {
            return Err("empty chaos spec".into());
        }
        let seeded = items
            .iter()
            .all(|i| ["seed=", "panic=", "timeout="].iter().any(|p| i.starts_with(p)));
        if seeded {
            let mut c = CellChaos::seeded(0, 0.0, 0.0);
            for item in items {
                let (k, v) = item.split_once('=').expect("checked above");
                match k {
                    "seed" => c.seed = v.parse().map_err(|_| format!("bad seed `{v}`"))?,
                    "panic" => c.panic_rate = parse_rate(v)?,
                    "timeout" => c.timeout_rate = parse_rate(v)?,
                    _ => unreachable!(),
                }
            }
            return Ok(c);
        }
        let mut cells = Vec::new();
        for item in items {
            let (cell, fault) = item
                .split_once('=')
                .ok_or_else(|| format!("expected `workload/mode=fault`, got `{item}`"))?;
            let (workload, mode) = cell
                .split_once('/')
                .ok_or_else(|| format!("expected `workload/mode`, got `{cell}`"))?;
            cells.push((workload.to_string(), mode.to_string(), CellFault::parse(fault)?));
        }
        Ok(CellChaos::cells(cells))
    }

    /// The fault (if any) this chaos configuration injects into the
    /// `(workload, mode)` cell. Pure function of the configuration and the
    /// cell identity.
    pub fn fault_for(&self, workload: &str, mode: &str) -> Option<CellFault> {
        if !self.explicit.is_empty() {
            return self
                .explicit
                .iter()
                .find(|(w, m, _)| w == workload && m == mode)
                .map(|&(_, _, f)| f);
        }
        if self.panic_rate <= 0.0 && self.timeout_rate <= 0.0 {
            return None;
        }
        // Cell-identity hash (FNV-1a) → per-cell PRNG, so the decision is
        // independent of sweep order and worker count.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ self.seed;
        for b in workload.bytes().chain([0u8]).chain(mode.bytes()) {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        let mut rng = StdRng::seed_from_u64(h);
        if self.panic_rate > 0.0 && rng.gen_bool(self.panic_rate) {
            return Some(CellFault::Panic);
        }
        if self.timeout_rate > 0.0 && rng.gen_bool(self.timeout_rate) {
            return Some(CellFault::Timeout);
        }
        None
    }
}

fn parse_rate(v: &str) -> Result<f64, String> {
    let r: f64 = v.parse().map_err(|_| format!("bad rate `{v}`"))?;
    if (0.0..=1.0).contains(&r) {
        Ok(r)
    } else {
        Err(format!("rate `{v}` outside [0, 1]"))
    }
}

/// Seeded injector attached to a [`Pipeline`] via
/// [`Pipeline::attach_faults`].
pub struct FaultInjector {
    cfg: FaultConfig,
    rng: StdRng,
}

impl FaultInjector {
    pub fn new(cfg: FaultConfig) -> FaultInjector {
        FaultInjector {
            rng: StdRng::seed_from_u64(cfg.seed ^ 0xfa_017_1a1),
            cfg,
        }
    }

    /// Whether to drop this fusion-predictor hit.
    pub(crate) fn suppress_prediction(&mut self) -> bool {
        self.cfg.suppress_prediction > 0.0 && self.rng.gen_bool(self.cfg.suppress_prediction)
    }

    /// Maybe force a random catalyst hazard bit on. Returns whether a fault
    /// was injected.
    pub(crate) fn corrupt_hazards(&mut self, hz: &mut CatalystHazards) -> bool {
        if self.cfg.corrupt_hazards <= 0.0 || !self.rng.gen_bool(self.cfg.corrupt_hazards) {
            return false;
        }
        // `call` stays honest: it aborts marking entirely rather than
        // driving a repair, so corrupting it would test nothing.
        match self.rng.gen_range(0..4u32) {
            0 => hz.deadlock = true,
            1 => hz.serializing = true,
            2 => hz.store_in_catalyst = true,
            _ => hz.raw_dep = true,
        }
        true
    }

    fn period_due(period: u64, now: u64) -> bool {
        period != 0 && now.is_multiple_of(period)
    }

    pub(crate) fn uch_evict_due(&self, now: u64) -> bool {
        Self::period_due(self.cfg.uch_evict_period, now)
    }

    pub(crate) fn spurious_flush_due(&self, now: u64) -> bool {
        Self::period_due(self.cfg.spurious_flush_period, now)
    }

    /// A random restart point in `[lo, hi)`.
    pub(crate) fn pick_restart(&mut self, lo: u64, hi: u64) -> u64 {
        self.rng.gen_range(lo..hi)
    }
}

impl<I: UopSource> Pipeline<I> {
    /// Attaches a deterministic fault injector. Faults perturb only
    /// microarchitectural decisions (fusion marking, UCH contents, flush
    /// timing); the committed instruction stream must remain identical, so
    /// an attached [`crate::OracleChecker`] stays valid under injection.
    pub fn attach_faults(&mut self, cfg: FaultConfig) {
        self.fault = Some(FaultInjector::new(cfg));
    }

    /// End-of-cycle fault hook: periodic UCH eviction and spurious flushes.
    pub(crate) fn apply_cycle_faults(&mut self) {
        let Some(mut inj) = self.fault.take() else {
            return;
        };
        if inj.uch_evict_due(self.now) {
            self.uch.clear();
            self.stats.injected_faults += 1;
        }
        if inj.spurious_flush_due(self.now) {
            let lo = self.committed_upto.max(self.atomic_commit_floor);
            let hi = self.window.cursor();
            if lo < hi {
                let restart = inj.pick_restart(lo, hi);
                if self.flush_from(restart, FlushKind::MemOrder) {
                    self.stats.injected_faults += 1;
                }
            }
        }
        self.fault = Some(inj);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_chaos_parses_explicit_and_seeded_specs() {
        let c = CellChaos::parse("bitcount/Helios=panic, fft/NoFusion=timeout").unwrap();
        assert_eq!(c.fault_for("bitcount", "Helios"), Some(CellFault::Panic));
        assert_eq!(c.fault_for("fft", "NoFusion"), Some(CellFault::Timeout));
        assert_eq!(c.fault_for("bitcount", "NoFusion"), None);
        assert_eq!(c.fault_for("susan", "Helios"), None);

        let s = CellChaos::parse("seed=7,panic=0.5,timeout=0.25").unwrap();
        let cells: Vec<(String, String)> = (0..64)
            .map(|i| (format!("w{i}"), format!("m{}", i % 3)))
            .collect();
        let hit = |chaos: &CellChaos| -> Vec<Option<CellFault>> {
            cells.iter().map(|(w, m)| chaos.fault_for(w, m)).collect()
        };
        let first = hit(&s);
        // Order-independent and repeatable: re-querying in reverse agrees.
        let mut rev: Vec<Option<CellFault>> =
            cells.iter().rev().map(|(w, m)| s.fault_for(w, m)).collect();
        rev.reverse();
        assert_eq!(first, rev);
        let panics = first.iter().filter(|f| **f == Some(CellFault::Panic)).count();
        let timeouts = first.iter().filter(|f| **f == Some(CellFault::Timeout)).count();
        assert!(panics > 10, "p=0.5 over 64 cells panicked only {panics}");
        assert!(timeouts > 1, "p=0.25 of the remainder timed out only {timeouts}");
        // A different seed picks a different subset.
        let other = CellChaos::parse("seed=8,panic=0.5,timeout=0.25").unwrap();
        assert_ne!(first, hit(&other));

        // Malformed specs are rejected with a reason, not a panic.
        assert!(CellChaos::parse("").is_err());
        assert!(CellChaos::parse("bitcount=panic").is_err());
        assert!(CellChaos::parse("a/b=explode").is_err());
        assert!(CellChaos::parse("seed=x").is_err());
        assert!(CellChaos::parse("panic=1.5").is_err());
    }

    #[test]
    fn injector_is_deterministic() {
        let mut a = FaultInjector::new(FaultConfig::chaos(7));
        let mut b = FaultInjector::new(FaultConfig::chaos(7));
        for _ in 0..256 {
            assert_eq!(a.suppress_prediction(), b.suppress_prediction());
            let mut ha = CatalystHazards::default();
            let mut hb = CatalystHazards::default();
            assert_eq!(a.corrupt_hazards(&mut ha), b.corrupt_hazards(&mut hb));
            assert_eq!(ha, hb);
        }
        assert_eq!(a.pick_restart(10, 1000), b.pick_restart(10, 1000));
    }

    #[test]
    fn corruption_never_touches_call() {
        let mut inj = FaultInjector::new(FaultConfig::corrupt(3));
        let mut flipped = 0;
        for _ in 0..512 {
            let mut hz = CatalystHazards::default();
            if inj.corrupt_hazards(&mut hz) {
                flipped += 1;
                assert!(!hz.call);
                assert!(hz.deadlock || hz.serializing || hz.store_in_catalyst || hz.raw_dep);
            }
        }
        assert!(flipped > 100, "p=0.5 over 512 trials flipped only {flipped}");
    }

    #[test]
    fn periods_fire_on_schedule() {
        let inj = FaultInjector::new(FaultConfig::evict(0));
        assert!(inj.uch_evict_due(1024));
        assert!(inj.uch_evict_due(2048));
        assert!(!inj.uch_evict_due(1025));
        assert!(!inj.spurious_flush_due(2048), "flush mode is off");
        let off = FaultInjector::new(FaultConfig::default());
        assert!(!off.uch_evict_due(0) || off.cfg.uch_evict_period != 0);
    }

    #[test]
    fn modes_cover_every_mechanism() {
        let modes = FaultConfig::modes(1);
        assert!(modes.len() >= 4, "soak needs at least 4 fault modes");
        assert!(modes.iter().any(|(_, c)| c.suppress_prediction > 0.0));
        assert!(modes.iter().any(|(_, c)| c.corrupt_hazards > 0.0));
        assert!(modes.iter().any(|(_, c)| c.uch_evict_period > 0));
        assert!(modes.iter().any(|(_, c)| c.spurious_flush_period > 0));
    }
}
