//! Fetch + Decode: branch prediction, consecutive (decode-time) fusion,
//! Helios predictive pair marking, and oracle pairing.

use crate::pipeline::Pipeline;
use crate::uop::{AqEntry, CatalystHazards, DynUop, Fused};
use helios_core::{classify_contiguity, is_asymmetric, match_idiom, FusionClass, Idiom};
use helios_emu::{Retired, UopSource};
use helios_isa::Inst;

impl<I: UopSource> Pipeline<I> {
    /// One cycle of the frontend: fetch up to `fetch_width` µ-ops from the
    /// trace window, predict control flow, fuse/mark, and insert into the AQ.
    pub(crate) fn stage_fetch_decode(&mut self) {
        // Redirect handling: resolve an outstanding mispredicted control µ-op.
        if let Some(seq) = self.redirect_wait {
            match self.board.get(seq) {
                Some(done) => {
                    self.resume_at = self
                        .resume_at
                        .max(done + self.cfg.branch_redirect_penalty);
                    self.redirect_wait = None;
                }
                None => {
                    self.stats.fetch_stall_redirect += 1;
                    return;
                }
            }
        }
        if self.now < self.resume_at {
            self.stats.fetch_stall_redirect += 1;
            return;
        }

        let mut budget = self.cfg.fetch_width;
        while budget > 0 && self.aq.len() < self.cfg.aq_size {
            let Some(r) = self.window.fetch() else { break };
            budget -= 1;
            if self.obs.is_some() {
                let now = self.now;
                if let Some(o) = self.obs.as_deref_mut() {
                    o.fetched(r.seq, r.pc, r.inst, now);
                }
            }

            // Branch prediction against the oracle outcome.
            let taken = r.control_taken();
            let outcome = self.bp.process(r.pc, &r.inst, taken, r.next_pc);
            let mut mispredicted = false;
            let (mut conditional, mut indirect) = (false, false);
            if let Some(o) = outcome {
                mispredicted = o.mispredicted;
                conditional = o.conditional;
                indirect = o.indirect;
            }

            self.decode_one(&r, mispredicted, conditional, indirect);

            if mispredicted {
                // Fetch stalls until this µ-op resolves (§V trace-driven
                // model: the wrong path is charged as frontend idle time).
                self.redirect_wait = Some(r.seq);
                break;
            }
            // Correctly-predicted taken branches do not break the fetch
            // stream: the decoupled frontend (BTB + FTQ) keeps feeding the
            // 8-wide decoder so the Allocation Queue fills (§V-A).
        }
    }

    /// Decodes one µ-op: attempts consecutive fusion, then predictive or
    /// oracle pairing, then inserts into the AQ.
    fn decode_one(&mut self, r: &Retired, mispredicted: bool, conditional: bool, indirect: bool) {
        let mode = self.cfg.fusion;

        // --- Consecutive fusion within the fusion window (§II-B). ---
        if mode.csf_mem_pairs() || mode.other_idioms() {
            if let Some(AqEntry::Uop(prev)) = self.aq.back() {
                if prev.seq + 1 == r.seq && prev.fused.is_none() {
                    if let Some(idiom) = match_idiom(
                        &prev.inst,
                        &r.inst,
                        mode.csf_mem_pairs(),
                        mode.other_idioms(),
                    ) {
                        let prev_mem = prev.mem;
                        let head_seq = prev.seq;
                        let Some(AqEntry::Uop(prev)) = self.aq.back_mut() else {
                            unreachable!()
                        };
                        prev.fused = Some(Fused {
                            idiom,
                            class: FusionClass::Consecutive,
                            tail_seq: r.seq,
                            tail_pc: r.pc,
                            tail_inst: r.inst,
                            tail_mem: r.mem,
                            contiguity: None,
                            dbr: false,
                            asymmetric: match (prev_mem, r.mem) {
                                (Some(a), Some(b)) => is_asymmetric(&a, &b),
                                _ => false,
                            },
                            pred: None,
                            pending: false,
                            hazards: CatalystHazards::default(),
                        });
                        if let Some(o) = self.obs.as_deref_mut() {
                            o.fused(head_seq, r.seq);
                        }
                        // The tail nucleus disappears from the pipeline.
                        return;
                    }
                }
            }
        }

        // --- Helios predictive marking (§IV-A). ---
        if mode.predictive() && r.inst.is_mem() && self.try_predictive_mark(r) {
            return;
        }

        // --- Oracle pairing (upper bound, §V-A). ---
        if mode.oracle_mem() && r.inst.is_mem() && self.try_oracle_pair(r) {
            return;
        }

        let mut u = DynUop::new(r);
        u.mispredicted = mispredicted;
        u.conditional = conditional;
        u.indirect = indirect;
        self.aq.push_back(AqEntry::Uop(u));
    }

    /// Attempts to mark an NCSF/NCTF/DBR pair from a fusion-predictor hit.
    /// Returns `true` if `r` became a tail nucleus (a Tail marker was pushed).
    fn try_predictive_mark(&mut self, r: &Retired) -> bool {
        let Some(meta) = self.fp.predict(r.pc, self.bp.ghr()) else {
            return false;
        };
        // Fault injection: a suppressed hit models a flipped predictor
        // decision — the pair proceeds unfused.
        if let Some(inj) = self.fault.as_mut() {
            if inj.suppress_prediction() {
                self.stats.injected_faults += 1;
                return false;
            }
        }
        let Some(head_seq) = r.seq.checked_sub(meta.distance as u64) else {
            return false;
        };
        // Condition 3: head still in the Allocation Queue.
        let Some(head_idx) = self.aq_index(head_seq) else {
            return false;
        };
        let AqEntry::Uop(head) = &self.aq[head_idx] else {
            return false;
        };
        // Condition 2: valid idiom — same kind, head unfused.
        if head.fused.is_some() {
            return false;
        }
        let (idiom, dbr) = match (&head.inst, &r.inst) {
            (Inst::Load { rs1: b0, rd: rd0, .. }, Inst::Load { rs1: b1, rd: rd1, .. }) => {
                if rd0 == rd1 || head.inst.rd() == Some(*b1) {
                    // Destination collision, or the tail's address depends on
                    // the head ("dependent loads", §II-B) — invalid idiom.
                    return false;
                }
                (Idiom::LoadPair, b0 != b1)
            }
            (Inst::Store { rs1: b0, .. }, Inst::Store { rs1: b1, .. }) => {
                if b0 != b1 && !self.cfg.helios.dbr_store_pairs {
                    return false; // DBR store pairs unsupported (§IV-B).
                }
                (Idiom::StorePair, b0 != b1)
            }
            _ => return false,
        };

        let mut hazards = self.scan_catalyst(head_idx, &r.inst, idiom == Idiom::StorePair);
        // Fault injection: forced hazard bits drive the in-place repairs
        // (cases 1–4) for pairs that did not need them.
        if let Some(inj) = self.fault.as_mut() {
            if inj.corrupt_hazards(&mut hazards) {
                self.stats.injected_faults += 1;
            }
        }
        if hazards.call {
            return false;
        }
        let head_mem = head.mem;
        let class = if meta.distance == 1 {
            FusionClass::Consecutive
        } else {
            FusionClass::NonConsecutive
        };

        let AqEntry::Uop(head) = &mut self.aq[head_idx] else {
            unreachable!()
        };
        head.fused = Some(Fused {
            idiom,
            class,
            tail_seq: r.seq,
            tail_pc: r.pc,
            tail_inst: r.inst,
            tail_mem: r.mem,
            contiguity: None,
            dbr,
            asymmetric: match (head_mem, r.mem) {
                (Some(a), Some(b)) => is_asymmetric(&a, &b),
                _ => false,
            },
            pred: Some(meta),
            pending: true,
            hazards,
        });
        self.aq.push_back(AqEntry::Tail {
            seq: r.seq,
            pc: r.pc,
            head_seq,
        });
        self.stats.fusion.predictions += 1;
        if let Some(o) = self.obs.as_deref_mut() {
            o.fused(head_seq, r.seq);
        }
        true
    }

    /// Oracle pairing: scan the AQ backward for the closest eligible head.
    /// Returns `true` if `r` was absorbed into a fused head.
    fn try_oracle_pair(&mut self, r: &Retired) -> bool {
        // The emulator records an access for every memory inst; a missing
        // one just means no pairing opportunity.
        let Some(r_mem) = r.mem else { return false };
        let line = self.cfg.helios.line_bytes;
        let max_d = self.cfg.helios.uch.max_distance as u64;
        let is_store = r.inst.is_store();

        for head_idx in (0..self.aq.len()).rev() {
            let AqEntry::Uop(head) = &self.aq[head_idx] else {
                continue;
            };
            if r.seq - head.seq > max_d {
                break;
            }
            if head.fused.is_some() || !head.inst.is_mem() || head.inst.is_store() != is_store {
                continue;
            }
            let Some(head_mem) = head.mem else { continue };
            if !classify_contiguity(&head_mem, &r_mem, line).fusible() {
                continue;
            }
            // Idiom validity mirrors the Helios checks.
            let (idiom, dbr) = match (&head.inst, &r.inst) {
                (Inst::Load { rs1: b0, rd: rd0, .. }, Inst::Load { rs1: b1, rd: rd1, .. }) => {
                    if rd0 == rd1 {
                        continue;
                    }
                    (Idiom::LoadPair, b0 != b1)
                }
                (Inst::Store { rs1: b0, .. }, Inst::Store { rs1: b1, .. }) => {
                    if b0 != b1 {
                        continue; // SBR store pairs only.
                    }
                    (Idiom::StorePair, false)
                }
                _ => continue,
            };
            let hazards = self.scan_catalyst(head_idx, &r.inst, is_store);
            if hazards.deadlock || hazards.serializing || hazards.call {
                continue;
            }
            if is_store && hazards.store_in_catalyst {
                continue;
            }
            let head_seq = head.seq;
            let distance = r.seq - head.seq;
            let class = if distance == 1 {
                FusionClass::Consecutive
            } else {
                FusionClass::NonConsecutive
            };
            let AqEntry::Uop(head) = &mut self.aq[head_idx] else {
                unreachable!()
            };
            head.fused = Some(Fused {
                idiom,
                class,
                tail_seq: r.seq,
                tail_pc: r.pc,
                tail_inst: r.inst,
                tail_mem: r.mem,
                contiguity: Some(classify_contiguity(&head_mem, &r_mem, line)),
                dbr,
                asymmetric: is_asymmetric(&head_mem, &r_mem),
                pred: None,
                pending: false,
                hazards,
            });
            // Oracle absorbs the tail immediately (upper bound: no
            // validation latency, no Tail marker).
            if let Some(o) = self.obs.as_deref_mut() {
                o.fused(head_seq, r.seq);
            }
            return true;
        }
        false
    }

    /// Finds the AQ index holding µ-op `seq`.
    fn aq_index(&self, seq: u64) -> Option<usize> {
        // AQ is seq-ordered; binary search over the (small) deque.
        let (a, b) = self.aq.as_slices();
        if let Ok(i) = a.binary_search_by_key(&seq, |e| e.seq()) {
            return Some(i);
        }
        if let Ok(i) = b.binary_search_by_key(&seq, |e| e.seq()) {
            return Some(a.len() + i);
        }
        None
    }

    /// Scans the catalyst (AQ entries after `head_idx`) for the hazards of
    /// §IV-B: transitive head→tail dependencies (deadlock), catalyst stores
    /// (for store pairs), serializing µ-ops, and catalyst writes to tail
    /// sources (RaW).
    fn scan_catalyst(
        &self,
        head_idx: usize,
        tail_inst: &Inst,
        _store_pair: bool,
    ) -> CatalystHazards {
        let mut hz = CatalystHazards::default();
        let mut tainted = [false; 32]; // depends on a head destination
        let mut written = [false; 32]; // written by the catalyst
        let AqEntry::Uop(head) = &self.aq[head_idx] else {
            return hz;
        };
        for d in head.dests() {
            tainted[d.index()] = true;
        }
        // Memory-carried taint. The memory-dependence predictor can
        // serialize a catalyst load behind the head store (or behind a
        // catalyst store whose operands depend on the head): that load's
        // STA-resolution wait is then gated on the fused pair issuing,
        // exactly like a register dependence. A tail source fed by such a
        // load closes a head→tail wait cycle the register-only scan cannot
        // see, deadlocking the pair at Issue (fuzzer-found). Treat loads
        // issued under tainted memory as tainted.
        let mut mem_tainted = head.inst.is_store();
        for e in self.aq.iter().skip(head_idx + 1) {
            let AqEntry::Uop(u) = e else { continue };
            let writes_mem =
                u.inst.is_store() || u.fused.as_ref().is_some_and(|f| f.tail_inst.is_store());
            let reads_mem = (u.inst.is_mem() && !u.inst.is_store())
                || u
                    .fused
                    .as_ref()
                    .is_some_and(|f| f.tail_inst.is_mem() && !f.tail_inst.is_store());
            if writes_mem {
                hz.store_in_catalyst = true;
            }
            if u.inst.is_serializing() {
                hz.serializing = true;
            }
            if matches!(u.inst, Inst::Jal { rd, .. } | Inst::Jalr { rd, .. }
                if rd == helios_isa::Reg::RA)
                || matches!(u.inst, Inst::Jalr { rd, rs1, .. }
                    if rd == helios_isa::Reg::ZERO && rs1 == helios_isa::Reg::RA)
            {
                hz.call = true;
            }
            let reads_taint = u.sources().any(|s| tainted[s.index()]);
            if writes_mem && reads_taint {
                mem_tainted = true;
            }
            let loads_taint = reads_mem && mem_tainted;
            for d in u.dests() {
                written[d.index()] = true;
                // Overwritten with an untainted value clears the taint.
                tainted[d.index()] = reads_taint || loads_taint;
            }
        }
        for s in tail_inst.sources() {
            if tainted[s.index()] {
                hz.deadlock = true;
            }
            if written[s.index()] {
                hz.raw_dep = true;
            }
        }
        hz
    }
}
