//! # helios-uarch — cycle-level out-of-order pipeline model
//!
//! The timing substrate of the Helios reproduction (MICRO 2022): a
//! trace-driven model of the paper's Icelake-like seven-stage out-of-order
//! core (Table II) with the complete Helios fusion machinery wired in.
//!
//! Functional execution happens in `helios-emu`; this crate replays the
//! retired-µ-op stream through Fetch → Decode(+fusion) → Allocation Queue →
//! Rename → Dispatch → Issue/Execute → Commit with:
//!
//! * ROB / IQ / LQ / SQ / PRF resources and per-resource stall accounting
//!   (Fig. 9),
//! * a TAGE branch predictor, return-address stack, and last-target BTB,
//! * store-set memory-dependence prediction with violation flushes,
//! * a three-level data-cache hierarchy and TSO senior-store draining,
//! * decode-time consecutive fusion, the Helios UCH + fusion predictor
//!   (NCSF / NCTF / DBR pairs, §IV), and an oracle-fusion upper bound.
//!
//! # Examples
//!
//! ```
//! use helios_emu::RetireStream;
//! use helios_isa::parse_asm;
//! use helios_core::FusionMode;
//! use helios_uarch::{PipeConfig, Pipeline};
//!
//! let prog = parse_asm(r#"
//!     li a0, 100
//! top:
//!     addi a0, a0, -1
//!     bnez a0, top
//!     ebreak
//! "#)?;
//! let stream = RetireStream::new(prog, 1_000_000);
//! let mut pipe = Pipeline::new(PipeConfig::with_fusion(FusionMode::NoFusion), stream);
//! let stats = pipe.try_run(10_000_000)?;
//! assert!(stats.ipc() > 0.5);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod bpred;
mod cache;
mod check;
mod commit;
mod config;
mod error;
mod execute;
mod fault;
mod frontend;
mod memdep;
pub mod obs;
mod pipeline;
pub mod profile;
mod rename;
mod stats;
mod uop;
mod window;

pub use bpred::{BranchOutcome, BranchPredictor, Tage};
pub use cache::{Cache, Hierarchy, MemResult};
pub use check::OracleChecker;
pub use config::{CacheParams, ConfigError, PipeConfig, PipeConfigBuilder};
pub use error::{DeadlockReport, InvariantReport, SimError};
pub use fault::{CellChaos, CellFault, FaultConfig, FaultInjector};
pub use memdep::StoreSets;
pub use obs::{Histogram, ObsOpts, Observer, StatEntry, StatValue, StatsRegistry, Unit, UopRec};
pub use pipeline::Pipeline;
pub use stats::{DispatchStall, SimStats};
pub use uop::{AqEntry, CatalystHazards, DynUop, FuClass, Fused};
pub use window::TraceWindow;

pub use helios_emu::UopSource;
