//! Store-set memory dependence predictor (Chrysos & Emer [8], the paper's
//! Table II memory-dependence predictor).
//!
//! Loads that previously violated memory ordering against a store are placed
//! in the same *store set*; at dispatch, such a load must wait for the last
//! in-flight store of its set to execute before issuing.

const SSIT_ENTRIES: usize = 2048;
const LFST_ENTRIES: usize = 128;

/// The store-set predictor: SSIT (PC → store-set id) + LFST
/// (store-set id → last fetched in-flight store).
#[derive(Clone, Debug)]
pub struct StoreSets {
    ssit: Vec<Option<u16>>,
    lfst: Vec<Option<u64>>,
    next_id: u16,
}

impl StoreSets {
    /// Creates an empty predictor.
    pub fn new() -> StoreSets {
        StoreSets {
            ssit: vec![None; SSIT_ENTRIES],
            lfst: vec![None; LFST_ENTRIES],
            next_id: 0,
        }
    }

    #[inline]
    fn ssit_index(pc: u64) -> usize {
        (((pc >> 2) ^ (pc >> 13)) as usize) & (SSIT_ENTRIES - 1)
    }

    #[inline]
    fn set_slot(id: u16) -> usize {
        id as usize & (LFST_ENTRIES - 1)
    }

    /// A store at `pc` (dynamic sequence `seq`) is dispatched: record it as
    /// the last fetched store of its set, if it has one.
    pub fn store_dispatched(&mut self, pc: u64, seq: u64) {
        if let Some(id) = self.ssit[Self::ssit_index(pc)] {
            self.lfst[Self::set_slot(id)] = Some(seq);
        }
    }

    /// A store executes (its address is known): clear the LFST if it still
    /// points at this store.
    pub fn store_executed(&mut self, pc: u64, seq: u64) {
        if let Some(id) = self.ssit[Self::ssit_index(pc)] {
            let slot = Self::set_slot(id);
            if self.lfst[slot] == Some(seq) {
                self.lfst[slot] = None;
            }
        }
    }

    /// At load dispatch: the sequence number of the store this load must
    /// wait for, if its store set has an in-flight store.
    pub fn load_dependency(&self, pc: u64) -> Option<u64> {
        let id = self.ssit[Self::ssit_index(pc)]?;
        self.lfst[Self::set_slot(id)]
    }

    /// Trains the predictor after a memory-order violation between a load
    /// and an older store (classic store-set merge rules).
    pub fn train_violation(&mut self, load_pc: u64, store_pc: u64) {
        let li = Self::ssit_index(load_pc);
        let si = Self::ssit_index(store_pc);
        match (self.ssit[li], self.ssit[si]) {
            (None, None) => {
                let id = self.next_id;
                self.next_id = self.next_id.wrapping_add(1);
                self.ssit[li] = Some(id);
                self.ssit[si] = Some(id);
            }
            (Some(id), None) => self.ssit[si] = Some(id),
            (None, Some(id)) => self.ssit[li] = Some(id),
            (Some(a), Some(b)) => {
                // Merge: both adopt the smaller id.
                let id = a.min(b);
                self.ssit[li] = Some(id);
                self.ssit[si] = Some(id);
            }
        }
    }

    /// Clears in-flight state (pipeline flush). The SSIT training persists.
    pub fn flush_inflight(&mut self) {
        self.lfst.fill(None);
    }
}

impl Default for StoreSets {
    fn default() -> Self {
        StoreSets::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untrained_loads_are_free() {
        let mut s = StoreSets::new();
        s.store_dispatched(0x100, 1);
        assert_eq!(s.load_dependency(0x200), None);
    }

    #[test]
    fn violation_creates_dependency() {
        let mut s = StoreSets::new();
        s.train_violation(0x200, 0x100);
        s.store_dispatched(0x100, 7);
        assert_eq!(s.load_dependency(0x200), Some(7));
        s.store_executed(0x100, 7);
        assert_eq!(s.load_dependency(0x200), None);
    }

    #[test]
    fn newer_store_supersedes() {
        let mut s = StoreSets::new();
        s.train_violation(0x200, 0x100);
        s.store_dispatched(0x100, 7);
        s.store_dispatched(0x100, 9);
        assert_eq!(s.load_dependency(0x200), Some(9));
        // Executing the old instance must not clear the newer one.
        s.store_executed(0x100, 7);
        assert_eq!(s.load_dependency(0x200), Some(9));
    }

    #[test]
    fn merge_rules() {
        let mut s = StoreSets::new();
        s.train_violation(0x200, 0x100); // set A: load 0x200, store 0x100
        s.train_violation(0x300, 0x500); // set B: load 0x300, store 0x500
        s.train_violation(0x200, 0x500); // merge
        s.store_dispatched(0x500, 42);
        assert_eq!(s.load_dependency(0x200), Some(42));
    }

    #[test]
    fn flush_clears_inflight_only() {
        let mut s = StoreSets::new();
        s.train_violation(0x200, 0x100);
        s.store_dispatched(0x100, 3);
        s.flush_inflight();
        assert_eq!(s.load_dependency(0x200), None);
        // Training survives: a new dispatch re-arms.
        s.store_dispatched(0x100, 8);
        assert_eq!(s.load_dependency(0x200), Some(8));
    }
}
