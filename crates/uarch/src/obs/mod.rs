//! Observability: the self-describing stats registry and the opt-in
//! per-µ-op event trace (DESIGN.md §12).

pub mod registry;
pub mod trace;

pub use registry::{Histogram, StatEntry, StatValue, StatsRegistry, Unit};
pub use trace::{ObsOpts, Observer, UopRec};
