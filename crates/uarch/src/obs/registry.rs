//! Self-describing statistics registry.
//!
//! Every counter and histogram a simulation produces is exported into a
//! [`StatsRegistry`] entry carrying its name, description, and unit — the
//! gem5-style model where the stats *are* the schema. [`crate::SimStats`]
//! stays a plain hot-path struct; [`crate::SimStats::export`] turns it into
//! a registry view after the run, and the registry renders losslessly to
//! JSON or CSV.

use std::fmt;

/// Measurement unit of a registry entry.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Unit {
    /// Simulated clock cycles.
    Cycles,
    /// Architectural instructions.
    Instructions,
    /// µ-ops.
    Uops,
    /// Fused pairs.
    Pairs,
    /// Generic event count.
    Events,
    /// Occupied structure entries.
    Entries,
    /// Percentage (0–100).
    Percent,
    /// Dimensionless ratio.
    Ratio,
    /// Mispredictions per kilo-instruction.
    Mpki,
}

impl Unit {
    /// Stable short name used in JSON/CSV emission and schema snapshots.
    pub fn name(self) -> &'static str {
        match self {
            Unit::Cycles => "cycles",
            Unit::Instructions => "insts",
            Unit::Uops => "uops",
            Unit::Pairs => "pairs",
            Unit::Events => "events",
            Unit::Entries => "entries",
            Unit::Percent => "percent",
            Unit::Ratio => "ratio",
            Unit::Mpki => "mpki",
        }
    }
}

impl fmt::Display for Unit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A log2-bucketed histogram of `u64` samples.
///
/// Bucket 0 holds the value 0; bucket `i ≥ 1` holds values in
/// `[2^(i-1), 2^i)`. Exact count / sum / min / max are tracked alongside, so
/// means are exact even though the distribution is bucketed.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Histogram {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: [0; 65],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Index of the bucket holding `v`.
    #[inline]
    fn bucket_of(v: u64) -> usize {
        (u64::BITS - v.leading_zeros()) as usize
    }

    /// Lower bound (inclusive) of bucket `i`.
    pub fn bucket_lo(i: usize) -> u64 {
        if i == 0 {
            0
        } else {
            1u64 << (i - 1)
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.buckets[Self::bucket_of(v)] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Exact mean of the samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest sample (`None` when empty).
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample (`None` when empty).
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Non-empty buckets as `(lower_bound, count)`, ascending.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (Self::bucket_lo(i), c))
    }
}

/// The value of one registry entry.
// Histograms dominate the size; registries hold dozens of entries at most,
// so the indirection of boxing would cost more than the padding saves.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, PartialEq, Debug)]
pub enum StatValue {
    /// An exact event count.
    Count(u64),
    /// A derived floating-point metric.
    Gauge(f64),
    /// A sample distribution.
    Hist(Histogram),
}

/// One self-describing statistic.
#[derive(Clone, PartialEq, Debug)]
pub struct StatEntry {
    /// Stable dotted name (e.g. `fusion.csf_pairs`).
    pub name: &'static str,
    /// One-line human description.
    pub desc: &'static str,
    /// Measurement unit.
    pub unit: Unit,
    /// The value.
    pub value: StatValue,
}

/// An ordered collection of self-describing statistics.
///
/// Entries keep insertion order so text dumps and JSON artifacts are stable
/// across runs; names must be unique (debug-asserted).
#[derive(Clone, PartialEq, Debug, Default)]
pub struct StatsRegistry {
    entries: Vec<StatEntry>,
}

impl StatsRegistry {
    /// An empty registry.
    pub fn new() -> StatsRegistry {
        StatsRegistry::default()
    }

    /// Adds an exact counter.
    pub fn counter(&mut self, name: &'static str, desc: &'static str, unit: Unit, v: u64) {
        self.push(StatEntry {
            name,
            desc,
            unit,
            value: StatValue::Count(v),
        });
    }

    /// Adds a derived floating-point metric.
    pub fn gauge(&mut self, name: &'static str, desc: &'static str, unit: Unit, v: f64) {
        self.push(StatEntry {
            name,
            desc,
            unit,
            value: StatValue::Gauge(v),
        });
    }

    /// Adds a histogram.
    pub fn hist(&mut self, name: &'static str, desc: &'static str, unit: Unit, h: Histogram) {
        self.push(StatEntry {
            name,
            desc,
            unit,
            value: StatValue::Hist(h),
        });
    }

    fn push(&mut self, e: StatEntry) {
        debug_assert!(
            !self.entries.iter().any(|x| x.name == e.name),
            "duplicate stat name {}",
            e.name
        );
        self.entries.push(e);
    }

    /// All entries, in registration order.
    pub fn entries(&self) -> &[StatEntry] {
        &self.entries
    }

    /// Looks up an entry by name.
    pub fn get(&self, name: &str) -> Option<&StatEntry> {
        self.entries.iter().find(|e| e.name == name)
    }

    /// The exact value of counter `name` (`None` if absent or not a counter).
    pub fn count(&self, name: &str) -> Option<u64> {
        match self.get(name)?.value {
            StatValue::Count(v) => Some(v),
            _ => None,
        }
    }

    /// `(name, unit)` pairs in registration order — the schema the snapshot
    /// test pins.
    pub fn schema(&self) -> Vec<(&'static str, &'static str)> {
        self.entries
            .iter()
            .map(|e| (e.name, e.unit.name()))
            .collect()
    }

    /// Lossless JSON document: every entry with name, description, unit, and
    /// value. Counters emit as exact integers; gauges use shortest-roundtrip
    /// formatting with non-finite values mapped to `null`; histograms emit
    /// count/sum/min/max plus non-empty `[lower_bound, count]` buckets.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(4096);
        s.push_str("{\n  \"schema\": \"helios-stats-v1\",\n  \"stats\": [\n");
        for (i, e) in self.entries.iter().enumerate() {
            s.push_str("    {\"name\": ");
            json_string(&mut s, e.name);
            s.push_str(", \"unit\": ");
            json_string(&mut s, e.unit.name());
            s.push_str(", \"desc\": ");
            json_string(&mut s, e.desc);
            match &e.value {
                StatValue::Count(v) => {
                    s.push_str(", \"value\": ");
                    s.push_str(&v.to_string());
                }
                StatValue::Gauge(v) => {
                    s.push_str(", \"value\": ");
                    push_json_f64(&mut s, *v);
                }
                StatValue::Hist(h) => {
                    s.push_str(&format!(
                        ", \"hist\": {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"buckets\": [",
                        h.count(),
                        h.sum(),
                        h.min().unwrap_or(0),
                        h.max().unwrap_or(0),
                    ));
                    for (j, (lo, c)) in h.buckets().enumerate() {
                        if j > 0 {
                            s.push_str(", ");
                        }
                        s.push_str(&format!("[{lo}, {c}]"));
                    }
                    s.push_str("]}");
                }
            }
            s.push('}');
            if i + 1 < self.entries.len() {
                s.push(',');
            }
            s.push('\n');
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Lossless CSV: `name,unit,value` rows; histograms flatten into
    /// `name.count` / `name.sum` / `name.min` / `name.max` and one
    /// `name.le_<bound>` row per non-empty bucket.
    pub fn to_csv(&self) -> String {
        let mut s = String::from("name,unit,value\n");
        for e in &self.entries {
            match &e.value {
                StatValue::Count(v) => {
                    s.push_str(&format!("{},{},{}\n", e.name, e.unit.name(), v));
                }
                StatValue::Gauge(v) => {
                    s.push_str(&format!("{},{},{}\n", e.name, e.unit.name(), FmtF64(*v)));
                }
                StatValue::Hist(h) => {
                    let u = e.unit.name();
                    s.push_str(&format!("{}.count,{},{}\n", e.name, u, h.count()));
                    s.push_str(&format!("{}.sum,{},{}\n", e.name, u, h.sum()));
                    s.push_str(&format!("{}.min,{},{}\n", e.name, u, h.min().unwrap_or(0)));
                    s.push_str(&format!("{}.max,{},{}\n", e.name, u, h.max().unwrap_or(0)));
                    for (lo, c) in h.buckets() {
                        s.push_str(&format!("{}.bucket_{},{},{}\n", e.name, lo, u, c));
                    }
                }
            }
        }
        s
    }

    /// Human-readable text dump: one aligned `name value unit` line per
    /// entry; histograms render as count/mean/max.
    pub fn to_text(&self) -> String {
        let width = self
            .entries
            .iter()
            .map(|e| e.name.len())
            .max()
            .unwrap_or(0);
        let mut s = String::new();
        for e in &self.entries {
            let rendered = match &e.value {
                StatValue::Count(v) => v.to_string(),
                StatValue::Gauge(v) => format!("{v:.4}"),
                StatValue::Hist(h) => format!(
                    "count {} mean {:.1} max {}",
                    h.count(),
                    h.mean(),
                    h.max().unwrap_or(0)
                ),
            };
            s.push_str(&format!(
                "{:<width$}  {:>14}  {}\n",
                e.name,
                rendered,
                e.unit.name()
            ));
        }
        s
    }
}

/// Escapes `v` as a JSON string into `s`.
fn json_string(s: &mut String, v: &str) {
    s.push('"');
    for c in v.chars() {
        match c {
            '"' => s.push_str("\\\""),
            '\\' => s.push_str("\\\\"),
            '\n' => s.push_str("\\n"),
            c if (c as u32) < 0x20 => s.push_str(&format!("\\u{:04x}", c as u32)),
            c => s.push(c),
        }
    }
    s.push('"');
}

/// Writes `v` as a JSON number (`null` when not finite — JSON has no NaN).
fn push_json_f64(s: &mut String, v: f64) {
    if v.is_finite() {
        s.push_str(&FmtF64(v).to_string());
    } else {
        s.push_str("null");
    }
}

/// Shortest-roundtrip `f64` formatting that always stays a valid JSON
/// number (Rust's `{}` prints integers without a fractional part).
struct FmtF64(f64);

impl fmt::Display for FmtF64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = format!("{}", self.0);
        if s.contains('.') || s.contains('e') || s.contains("inf") || s.contains("NaN") {
            f.write_str(&s)
        } else {
            write!(f, "{s}.0")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_moments() {
        let mut h = Histogram::new();
        for v in [0, 1, 1, 2, 3, 4, 7, 8, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 9);
        assert_eq!(h.sum(), 1026);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(1000));
        let buckets: Vec<(u64, u64)> = h.buckets().collect();
        // 0 → bucket 0; 1 → [1,2); 2,3 → [2,4); 4,7 → [4,8); 8 → [8,16);
        // 1000 → [512,1024).
        assert_eq!(
            buckets,
            vec![(0, 1), (1, 2), (2, 2), (4, 2), (8, 1), (512, 1)]
        );
        assert!((h.mean() - 1026.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn registry_lookup_and_schema() {
        let mut r = StatsRegistry::new();
        r.counter("cycles", "total cycles", Unit::Cycles, 100);
        r.gauge("ipc", "instructions per cycle", Unit::Ratio, 1.5);
        assert_eq!(r.count("cycles"), Some(100));
        assert_eq!(r.count("ipc"), None);
        assert_eq!(
            r.schema(),
            vec![("cycles", "cycles"), ("ipc", "ratio")]
        );
    }

    #[test]
    fn json_is_lossless_for_counts_and_maps_nan_to_null() {
        let mut r = StatsRegistry::new();
        r.counter("big", "a large exact count", Unit::Events, 9_007_199_254_740_993);
        r.gauge("nan", "undefined ratio", Unit::Ratio, f64::NAN);
        let j = r.to_json();
        assert!(j.contains("9007199254740993"), "{j}");
        assert!(j.contains("null"), "{j}");
        assert!(!j.contains("NaN"), "{j}");
    }

    #[test]
    fn csv_flattens_histograms() {
        let mut r = StatsRegistry::new();
        let mut h = Histogram::new();
        h.record(5);
        h.record(6);
        r.hist("lat", "latency", Unit::Cycles, h);
        let csv = r.to_csv();
        assert!(csv.contains("lat.count,cycles,2"));
        assert!(csv.contains("lat.bucket_4,cycles,2"));
    }
}
