//! Opt-in per-µ-op event tracing.
//!
//! An [`Observer`] attached via [`crate::Pipeline::attach_observer`] receives
//! one callback per pipeline event (fetch, rename/dispatch, issue, commit,
//! fuse, unfuse, squash) plus a per-cycle occupancy sample. It maintains:
//!
//! * event counters that reconcile exactly against [`crate::SimStats`]
//!   (commit events == `stats.uops`, fused-commit events ==
//!   `stats.fusion.fused_pairs()`),
//! * fetch-to-commit latency and ROB/IQ/LQ/SQ occupancy histograms,
//! * (with [`ObsOpts::timeline`]) a per-fetch-instance record stream that
//!   renders to the Konata pipeline-viewer format via
//!   [`Observer::write_konata`].
//!
//! With no observer attached the pipeline pays a single `Option` branch per
//! event site — the zero-cost-when-off contract checked by the wall-clock
//! acceptance gate.

use super::registry::{Histogram, StatsRegistry, Unit};
use helios_isa::{disassemble, Inst};
use std::collections::BTreeMap;
use std::io::{self, Write};

/// Sentinel for "cycle not reached".
const NONE: u64 = u64::MAX;

/// Observer configuration.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ObsOpts {
    /// Master switch; `false` means [`crate::Pipeline::attach_observer`] is
    /// a no-op (used by `SimRequest` so callers can thread one struct).
    pub enabled: bool,
    /// Record a per-fetch-instance timeline (required for Konata output).
    /// Costs memory proportional to fetched µ-ops; counters and histograms
    /// are collected either way.
    pub timeline: bool,
    /// Stop creating new timeline records after this many fetch instances
    /// (`None` = unlimited). Counters and histograms are unaffected.
    pub timeline_limit: Option<u64>,
}

impl ObsOpts {
    /// Observability off (the default).
    pub fn off() -> ObsOpts {
        ObsOpts::default()
    }

    /// Counters + histograms only.
    pub fn metrics() -> ObsOpts {
        ObsOpts {
            enabled: true,
            timeline: false,
            timeline_limit: None,
        }
    }

    /// Counters + histograms + full per-µ-op timeline.
    pub fn timeline() -> ObsOpts {
        ObsOpts {
            enabled: true,
            timeline: true,
            timeline_limit: None,
        }
    }
}

/// Timeline record of one fetch instance of a µ-op. A µ-op re-fetched after
/// a flush gets a fresh record; the squashed one keeps its history.
#[derive(Clone, Debug)]
pub struct UopRec {
    /// Trace sequence number.
    pub seq: u64,
    pub pc: u64,
    pub inst: Inst,
    /// Cycle fetched into the AQ.
    pub fetch: u64,
    /// Cycle renamed/dispatched (`u64::MAX` if never reached).
    pub rename: u64,
    /// Cycle issued to a functional unit.
    pub issue: u64,
    /// Cycle execution completed.
    pub complete: u64,
    /// Cycle retired.
    pub commit: u64,
    /// Cycle squashed by a flush.
    pub squash: u64,
    /// Head sequence number if this instance was absorbed as a fusion tail.
    pub tail_of: Option<u64>,
}

impl UopRec {
    /// Whether this instance retired (directly or inside a fused pair).
    pub fn retired(&self) -> bool {
        self.commit != NONE
    }
}

/// In-flight bookkeeping for one fetch instance.
#[derive(Clone, Copy, Debug)]
struct Live {
    fetch: u64,
    /// Index into `recs` (`u32::MAX` when the timeline is off or capped).
    rec: u32,
    /// Fusion head this µ-op is currently absorbed into.
    head: Option<u64>,
}

const NO_REC: u32 = u32::MAX;

/// Per-µ-op event trace and derived metrics. See the module docs.
#[derive(Clone, Debug)]
pub struct Observer {
    opts: ObsOpts,
    /// Timeline records, in fetch order.
    recs: Vec<UopRec>,
    /// In-flight instances by sequence number.
    live: BTreeMap<u64, Live>,

    // Event counters.
    fetches: u64,
    renames: u64,
    issues: u64,
    commits: u64,
    fused_commits: u64,
    fuses: u64,
    unfuses: u64,
    squashes: u64,

    // Histograms.
    fetch_to_commit: Histogram,
    occ_rob: Histogram,
    occ_iq: Histogram,
    occ_lq: Histogram,
    occ_sq: Histogram,
}

impl Observer {
    pub(crate) fn new(opts: ObsOpts) -> Observer {
        Observer {
            opts,
            recs: Vec::new(),
            live: BTreeMap::new(),
            fetches: 0,
            renames: 0,
            issues: 0,
            commits: 0,
            fused_commits: 0,
            fuses: 0,
            unfuses: 0,
            squashes: 0,
            fetch_to_commit: Histogram::new(),
            occ_rob: Histogram::new(),
            occ_iq: Histogram::new(),
            occ_lq: Histogram::new(),
            occ_sq: Histogram::new(),
        }
    }

    /// The configuration this observer was attached with.
    pub fn opts(&self) -> ObsOpts {
        self.opts
    }

    // ---- event sinks (called from the pipeline stages) ------------------

    #[inline]
    pub(crate) fn fetched(&mut self, seq: u64, pc: u64, inst: Inst, now: u64) {
        self.fetches += 1;
        let rec = if self.opts.timeline
            && self
                .opts
                .timeline_limit
                .is_none_or(|cap| (self.recs.len() as u64) < cap)
        {
            self.recs.push(UopRec {
                seq,
                pc,
                inst,
                fetch: now,
                rename: NONE,
                issue: NONE,
                complete: NONE,
                commit: NONE,
                squash: NONE,
                tail_of: None,
            });
            (self.recs.len() - 1) as u32
        } else {
            NO_REC
        };
        self.live.insert(
            seq,
            Live {
                fetch: now,
                rec,
                head: None,
            },
        );
    }

    /// `tail` was absorbed into fused head `head` (decode fusion, predictive
    /// marking, or oracle pairing).
    #[inline]
    pub(crate) fn fused(&mut self, head: u64, tail: u64) {
        self.fuses += 1;
        if let Some(l) = self.live.get_mut(&tail) {
            l.head = Some(head);
            let rec = l.rec;
            if let Some(r) = self.rec_mut(rec) {
                r.tail_of = Some(head);
            }
        }
    }

    /// A fused pair headed by `head` was unfused (in-place repair); `tail`
    /// re-enters the pipeline by re-dispatch or re-fetch.
    #[inline]
    pub(crate) fn unfused(&mut self, head: u64, tail: u64) {
        let _ = head;
        self.unfuses += 1;
        if let Some(l) = self.live.get_mut(&tail) {
            l.head = None;
        }
    }

    /// `seq` passed Rename/Dispatch (also covers a tail that re-dispatches
    /// as its own µ-op after an unfuse — its absorbed state clears here).
    #[inline]
    pub(crate) fn renamed(&mut self, seq: u64, now: u64) {
        self.renames += 1;
        if let Some(l) = self.live.get_mut(&seq) {
            l.head = None;
            let rec = l.rec;
            if let Some(r) = self.rec_mut(rec) {
                r.rename = now;
                r.tail_of = None;
            }
        }
    }

    /// A tail-nucleus marker for `seq` passed Rename (validating its head);
    /// the instance stays absorbed.
    #[inline]
    pub(crate) fn tail_renamed(&mut self, seq: u64, now: u64) {
        if let Some(l) = self.live.get(&seq) {
            let rec = l.rec;
            if let Some(r) = self.rec_mut(rec) {
                r.rename = now;
            }
        }
    }

    /// `seq` issued at `now`, completing execution at `complete`.
    #[inline]
    pub(crate) fn issued(&mut self, seq: u64, now: u64, complete: u64) {
        self.issues += 1;
        if let Some(l) = self.live.get(&seq) {
            let rec = l.rec;
            if let Some(r) = self.rec_mut(rec) {
                r.issue = now;
                r.complete = complete;
            }
        }
    }

    /// Head `seq` retired at `now`; `tail` retired with it if the pair was
    /// fused at commit.
    #[inline]
    pub(crate) fn committed(&mut self, seq: u64, tail: Option<u64>, now: u64) {
        self.commits += 1;
        if let Some(l) = self.live.remove(&seq) {
            self.fetch_to_commit.record(now.saturating_sub(l.fetch));
            if let Some(r) = self.rec_mut(l.rec) {
                r.commit = now;
            }
        }
        if let Some(t) = tail {
            self.fused_commits += 1;
            if let Some(l) = self.live.remove(&t) {
                if let Some(r) = self.rec_mut(l.rec) {
                    r.commit = now;
                }
            }
        }
    }

    /// Everything with `seq >= restart` was squashed at `now`.
    pub(crate) fn squashed(&mut self, restart: u64, now: u64) {
        let dead = self.live.split_off(&restart);
        for (_, l) in dead {
            self.squashes += 1;
            if let Some(r) = self.rec_mut(l.rec) {
                r.squash = now;
            }
        }
    }

    /// End-of-cycle structure occupancy sample.
    #[inline]
    pub(crate) fn sample_occupancy(&mut self, rob: usize, iq: usize, lq: usize, sq: usize) {
        self.occ_rob.record(rob as u64);
        self.occ_iq.record(iq as u64);
        self.occ_lq.record(lq as u64);
        self.occ_sq.record(sq as u64);
    }

    fn rec_mut(&mut self, rec: u32) -> Option<&mut UopRec> {
        if rec == NO_REC {
            None
        } else {
            self.recs.get_mut(rec as usize)
        }
    }

    // ---- read side ------------------------------------------------------

    /// Timeline records in fetch order (empty unless [`ObsOpts::timeline`]).
    pub fn records(&self) -> &[UopRec] {
        &self.recs
    }

    /// Commit events observed (== `SimStats::uops` after a clean run).
    pub fn commit_events(&self) -> u64 {
        self.commits
    }

    /// Fused-pair commit events (== `FusionStats::fused_pairs()`).
    pub fn fused_commit_events(&self) -> u64 {
        self.fused_commits
    }

    /// Fuse events observed at decode/marking time.
    pub fn fuse_events(&self) -> u64 {
        self.fuses
    }

    /// The fetch-to-commit latency distribution (committed heads).
    pub fn fetch_to_commit(&self) -> &Histogram {
        &self.fetch_to_commit
    }

    /// Exports the observer's counters and histograms into `reg` under the
    /// `obs.` prefix.
    pub fn export(&self, reg: &mut StatsRegistry) {
        reg.counter("obs.fetch_events", "µ-ops fetched into the AQ", Unit::Uops, self.fetches);
        reg.counter(
            "obs.rename_events",
            "µ-ops renamed and dispatched",
            Unit::Uops,
            self.renames,
        );
        reg.counter("obs.issue_events", "µ-ops issued to functional units", Unit::Uops, self.issues);
        reg.counter(
            "obs.commit_events",
            "µ-ops retired (reconciles with uops)",
            Unit::Uops,
            self.commits,
        );
        reg.counter(
            "obs.fused_commit_events",
            "fused pairs retired (reconciles with fusion.fused_pairs)",
            Unit::Pairs,
            self.fused_commits,
        );
        reg.counter("obs.fuse_events", "pairs fused at decode/marking", Unit::Pairs, self.fuses);
        reg.counter("obs.unfuse_events", "in-place unfuse repairs observed", Unit::Events, self.unfuses);
        reg.counter("obs.squash_events", "µ-op instances squashed by flushes", Unit::Uops, self.squashes);
        reg.counter(
            "obs.timeline_records",
            "per-fetch-instance timeline records captured",
            Unit::Uops,
            self.recs.len() as u64,
        );
        reg.hist(
            "obs.fetch_to_commit",
            "fetch-to-commit latency of retired µ-ops",
            Unit::Cycles,
            self.fetch_to_commit.clone(),
        );
        reg.hist("obs.occ_rob", "per-cycle ROB occupancy", Unit::Entries, self.occ_rob.clone());
        reg.hist("obs.occ_iq", "per-cycle IQ occupancy", Unit::Entries, self.occ_iq.clone());
        reg.hist("obs.occ_lq", "per-cycle LQ occupancy", Unit::Entries, self.occ_lq.clone());
        reg.hist("obs.occ_sq", "per-cycle SQ occupancy", Unit::Entries, self.occ_sq.clone());
    }

    /// Streams the timeline in the Konata pipeline-viewer format
    /// (`Kanata 0004`): one lane with stages `F` (fetch→rename), `Ds`
    /// (rename→issue), `Ex` (issue→complete), `Cm` (complete→commit), retire
    /// type 0 at commit and type 1 (flush) at squash. Absorbed fusion tails
    /// show their head's sequence number in the label and retire with it.
    ///
    /// Requires [`ObsOpts::timeline`]; with it off this writes only the
    /// header.
    pub fn write_konata<W: Write>(&self, out: &mut W) -> io::Result<()> {
        // (cycle, tiebreak, line): generation order is per-record
        // monotonic, so a stable sort by cycle keeps E-before-S pairs and
        // label ordering intact.
        let mut events: Vec<(u64, usize, String)> = Vec::with_capacity(self.recs.len() * 6);
        let mut ord = 0usize;
        let mut push = |events: &mut Vec<(u64, usize, String)>, cycle: u64, line: String| {
            events.push((cycle, ord, line));
            ord += 1;
        };
        let last_cycle = self
            .recs
            .iter()
            .flat_map(|r| [r.fetch, r.rename, r.issue, r.complete, r.commit, r.squash])
            .filter(|&c| c != NONE)
            .max()
            .unwrap_or(0);

        let mut retire_id = 0u64;
        for (id, r) in self.recs.iter().enumerate() {
            let label = match r.tail_of {
                Some(h) => format!("{:#x}: {} [tail of {h}]", r.pc, disassemble(&r.inst)),
                None => format!("{:#x}: {}", r.pc, disassemble(&r.inst)),
            };
            push(&mut events, r.fetch, format!("I\t{id}\t{}\t0", r.seq));
            push(&mut events, r.fetch, format!("L\t{id}\t0\t{label}"));
            push(&mut events, r.fetch, format!("S\t{id}\t0\tF"));
            let mut open = "F";
            if r.rename != NONE && r.tail_of.is_none() {
                push(&mut events, r.rename, format!("E\t{id}\t0\tF"));
                push(&mut events, r.rename, format!("S\t{id}\t0\tDs"));
                open = "Ds";
            }
            if r.issue != NONE {
                push(&mut events, r.issue, format!("E\t{id}\t0\t{open}"));
                push(&mut events, r.issue, format!("S\t{id}\t0\tEx"));
                open = "Ex";
                if r.complete != NONE {
                    push(&mut events, r.complete, format!("E\t{id}\t0\tEx"));
                    push(&mut events, r.complete, format!("S\t{id}\t0\tCm"));
                    open = "Cm";
                }
            }
            // Close the record: retire, flush, or still in flight at the end
            // of the run (closed as a flush so the viewer shows no open bar).
            let (end, kind) = if r.commit != NONE {
                (r.commit, 0)
            } else if r.squash != NONE {
                (r.squash, 1)
            } else {
                (last_cycle + 1, 1)
            };
            push(&mut events, end, format!("E\t{id}\t0\t{open}"));
            let rid = if kind == 0 {
                retire_id += 1;
                retire_id
            } else {
                0
            };
            push(&mut events, end, format!("R\t{id}\t{rid}\t{kind}"));
        }

        events.sort_by_key(|&(cycle, ord, _)| (cycle, ord));

        writeln!(out, "Kanata\t0004")?;
        let mut at = events.first().map_or(0, |&(c, _, _)| c);
        writeln!(out, "C=\t{at}")?;
        for (cycle, _, line) in events {
            if cycle > at {
                writeln!(out, "C\t{}", cycle - at)?;
                at = cycle;
            }
            writeln!(out, "{line}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use helios_isa::Inst;

    fn obs(timeline: bool) -> Observer {
        Observer::new(if timeline {
            ObsOpts::timeline()
        } else {
            ObsOpts::metrics()
        })
    }

    #[test]
    fn commit_and_latency_accounting() {
        let mut o = obs(false);
        o.fetched(0, 0x1000, Inst::NOP, 5);
        o.fetched(1, 0x1004, Inst::NOP, 5);
        o.fused(0, 1);
        o.committed(0, Some(1), 25);
        assert_eq!(o.commit_events(), 1);
        assert_eq!(o.fused_commit_events(), 1);
        assert_eq!(o.fetch_to_commit().count(), 1);
        assert_eq!(o.fetch_to_commit().sum(), 20);
        assert!(o.live.is_empty());
    }

    #[test]
    fn squash_marks_only_younger_instances() {
        let mut o = obs(true);
        o.fetched(0, 0x1000, Inst::NOP, 1);
        o.fetched(1, 0x1004, Inst::NOP, 1);
        o.fetched(2, 0x1008, Inst::NOP, 2);
        o.squashed(1, 10);
        assert_eq!(o.squashes, 2);
        assert!(o.live.contains_key(&0));
        assert_eq!(o.records()[1].squash, 10);
        assert_eq!(o.records()[0].squash, NONE);
        // Refetch after the flush creates a fresh record.
        o.fetched(1, 0x1004, Inst::NOP, 20);
        assert_eq!(o.records().len(), 4);
        o.committed(0, None, 21);
        o.committed(1, None, 22);
        o.fetched(2, 0x1008, Inst::NOP, 22);
        o.committed(2, None, 23);
        assert_eq!(o.commit_events(), 3);
    }

    #[test]
    fn konata_output_shape() {
        let mut o = obs(true);
        o.fetched(0, 0x1000, Inst::NOP, 1);
        o.renamed(0, 3);
        o.issued(0, 5, 6);
        o.committed(0, None, 8);
        o.fetched(1, 0x1004, Inst::NOP, 2);
        o.squashed(1, 6);
        let mut buf = Vec::new();
        o.write_konata(&mut buf).unwrap();
        let s = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "Kanata\t0004");
        assert_eq!(lines[1], "C=\t1");
        assert!(s.contains("I\t0\t0\t0"));
        assert!(s.contains("S\t0\t0\tF"));
        assert!(s.contains("S\t0\t0\tDs"));
        assert!(s.contains("S\t0\t0\tEx"));
        assert!(s.contains("S\t0\t0\tCm"));
        assert!(s.contains("R\t0\t1\t0"), "retired: {s}");
        assert!(s.contains("R\t1\t0\t1"), "flushed: {s}");
        // Cycle deltas must be positive and ordered.
        let mut total = 1u64;
        for l in &lines {
            if let Some(d) = l.strip_prefix("C\t") {
                total += d.parse::<u64>().unwrap();
            }
        }
        assert_eq!(total, 8, "events end at the commit cycle");
    }

    #[test]
    fn timeline_limit_caps_records_not_counters() {
        let mut o = Observer::new(ObsOpts {
            enabled: true,
            timeline: true,
            timeline_limit: Some(1),
        });
        o.fetched(0, 0x1000, Inst::NOP, 1);
        o.fetched(1, 0x1004, Inst::NOP, 1);
        assert_eq!(o.records().len(), 1);
        o.committed(0, None, 5);
        o.committed(1, None, 6);
        assert_eq!(o.commit_events(), 2);
    }
}
