//! The cycle-level out-of-order pipeline.
//!
//! A trace-driven model of the seven-stage machine of Table II:
//! Fetch → Decode (+fusion) → Allocation Queue → Rename → Dispatch →
//! Issue/Execute → Commit, with ROB/IQ/LQ/SQ/PRF resources, TAGE branch
//! prediction, store-set memory-dependence prediction, a three-level data
//! cache, TSO store draining, and the complete Helios fusion machinery.
//!
//! Stage implementations live in sibling modules (`frontend`, `rename`,
//! `execute`, `commit`); this module owns the state, the main loop, and
//! flush/repair handling.

use crate::check::{CommitRecord, OracleChecker};
use crate::error::{DeadlockReport, SimError};
use crate::fault::FaultInjector;
use crate::obs::{ObsOpts, Observer, StatsRegistry};
use crate::{
    AqEntry, BranchPredictor, DynUop, Hierarchy, PipeConfig, SimStats, StoreSets, TraceWindow,
};
use helios_core::{FusionPredictor, RepairCase, Uch, UchQueue};
use helios_emu::{MemAccess, UopSource};
use helios_isa::Reg;
use std::collections::VecDeque;

/// Number of sequence slots tracked by the completion board. Must exceed the
/// maximum number of µ-ops in flight (ROB + AQ + widths) by a wide margin.
const BOARD_SLOTS: usize = 8192;

/// Execution-completion scoreboard indexed by trace sequence number.
#[derive(Clone, Debug)]
pub(crate) struct CompletionBoard {
    ring: Vec<(u64, u64)>, // (seq + 1, complete_cycle); 0 = empty
}

impl CompletionBoard {
    fn new() -> CompletionBoard {
        CompletionBoard {
            ring: vec![(0, 0); BOARD_SLOTS],
        }
    }

    /// Records `seq` as completing at `cycle`. `live_floor` is the oldest
    /// sequence number still in flight (`committed_upto`): a slot holding a
    /// *younger* seq is live, and silently overwriting it would corrupt a
    /// different µ-op's wakeup — that means BOARD_SLOTS is too small for the
    /// in-flight window.
    #[inline]
    pub(crate) fn set(&mut self, seq: u64, cycle: u64, live_floor: u64) {
        let slot = &mut self.ring[(seq as usize) % BOARD_SLOTS];
        debug_assert!(
            slot.0 == 0 || slot.0 == seq + 1 || slot.0 - 1 < live_floor,
            "completion board collision: seq {seq} would overwrite live seq {} \
             (live floor {live_floor}); BOARD_SLOTS too small",
            slot.0 - 1,
        );
        *slot = (seq + 1, cycle);
    }

    #[inline]
    pub(crate) fn get(&self, seq: u64) -> Option<u64> {
        let (s, c) = self.ring[(seq as usize) % BOARD_SLOTS];
        (s == seq + 1).then_some(c)
    }

    #[inline]
    pub(crate) fn clear(&mut self, seq: u64) {
        let slot = &mut self.ring[(seq as usize) % BOARD_SLOTS];
        if slot.0 == seq + 1 {
            *slot = (0, 0);
        }
    }
}

/// Reorder-buffer entry (owns the in-flight µ-op).
#[derive(Clone, Debug)]
pub(crate) struct RobEntry {
    pub uop: DynUop,
    pub issued: bool,
    pub complete_at: Option<u64>,
    /// Physical registers allocated (freed at commit or flush).
    pub phys_allocated: usize,
    /// Rename undo log: (dest arch reg, previous RAT mapping).
    pub undo: Vec<(Reg, Option<u64>)>,
    /// Whether this µ-op was fetched with a branch misprediction.
    pub mispredicted: bool,
    pub conditional: bool,
    pub indirect: bool,
}

/// Issue-queue entry.
///
/// Stores split into address generation (STA) and data (STD) µ-phases:
/// `srcs` gates STA (and everything for non-stores), `data_srcs` gates STD.
#[derive(Clone, Debug)]
pub(crate) struct IqEntry {
    pub seq: u64,
    pub fu: crate::FuClass,
    /// Producer sequence numbers this µ-op waits on (address side).
    pub srcs: Vec<u64>,
    /// Store-data producers (STD side; empty for non-stores).
    pub data_srcs: Vec<u64>,
    /// Whether the STA phase has issued.
    pub sta_done: bool,
    /// NCS Ready bit: pending NCSF'd µ-ops may not issue (§IV-B2).
    pub ncs_ready: bool,
    /// Store-set dependence: store sequence to wait for.
    pub memdep_wait: Option<u64>,
}

/// Load-queue entry.
#[derive(Clone, Debug)]
pub(crate) struct LqEntry {
    pub seq: u64,
    pub pc: u64,
    pub acc: MemAccess,
    pub acc2: Option<MemAccess>,
    pub issue_cycle: Option<u64>,
}

/// Store-queue entry. Entries become *senior* at commit and drain to the L1D
/// in order (TSO).
#[derive(Clone, Debug)]
pub(crate) struct SqEntry {
    pub seq: u64,
    pub pc: u64,
    pub acc: MemAccess,
    pub acc2: Option<MemAccess>,
    /// Cycle the store's address generation completed (STLF eligibility).
    pub addr_known_at: Option<u64>,
    pub senior: bool,
    /// In-progress drain completion cycle.
    pub draining_until: Option<u64>,
}

/// A scheduled pipeline flush (applied when `at_cycle` is reached).
#[derive(Clone, Copy, Debug)]
pub(crate) struct PendingFlush {
    pub at_cycle: u64,
    /// First squashed sequence number (fetch restarts here).
    pub restart: u64,
    pub kind: FlushKind,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum FlushKind {
    /// Memory-order violation (store-set trained).
    MemOrder,
    /// Fused pair whose accesses span more than the fusion region (§IV-C
    /// case 5); the head at `restart - 1` is unfused.
    FusionSpan,
}

/// Deferred store-set violation check at store-execution completion.
#[derive(Clone, Copy, Debug)]
pub(crate) struct StoreCheck {
    pub at_cycle: u64,
    pub store_seq: u64,
}

/// Undo record for a tail-nucleus RAT update performed at its Rename.
#[derive(Clone, Copy, Debug)]
pub(crate) struct TailUndo {
    pub tail_seq: u64,
    pub reg: Reg,
    pub prev: Option<u64>,
}

/// The pipeline simulator.
///
/// Drive it with [`Pipeline::run`] (or [`Pipeline::cycle`] for fine-grained
/// control) and read the results from [`Pipeline::stats`].
pub struct Pipeline<I> {
    pub(crate) cfg: PipeConfig,
    pub(crate) window: TraceWindow<I>,
    pub(crate) now: u64,

    // Frontend.
    pub(crate) bp: BranchPredictor,
    /// Unresolved mispredicted control µ-op the frontend waits on.
    pub(crate) redirect_wait: Option<u64>,
    /// Cycle fetch may resume after a redirect or flush.
    pub(crate) resume_at: u64,
    pub(crate) aq: VecDeque<AqEntry>,

    // Fusion machinery.
    pub(crate) fp: FusionPredictor,
    pub(crate) uch: Uch,
    /// Post-commit decoupling queue feeding the UCH (§IV-A1).
    pub(crate) uch_queue: UchQueue,
    /// Original-sequence position the UCH commit number is synced to.
    pub(crate) uch_seq: u64,
    pub(crate) commit_ghr: u64,
    pub(crate) active_pending_ncsf: usize,

    // Rename.
    pub(crate) rat: [Option<u64>; 32],
    pub(crate) free_phys: usize,
    pub(crate) tail_undos: Vec<TailUndo>,

    // Backend.
    pub(crate) rob: VecDeque<RobEntry>,
    pub(crate) iq: Vec<IqEntry>,
    pub(crate) lq: VecDeque<LqEntry>,
    pub(crate) sq: VecDeque<SqEntry>,
    pub(crate) board: CompletionBoard,
    pub(crate) committed_upto: u64,
    /// One past the youngest absorbed tail whose extended commit group has
    /// retired; flush restarts never reach below this (§IV-B3 atomicity).
    pub(crate) atomic_commit_floor: u64,
    pub(crate) div_busy_until: u64,
    pub(crate) store_sets: StoreSets,
    pub(crate) mem: Hierarchy,
    pub(crate) pending_flushes: Vec<PendingFlush>,
    pub(crate) store_checks: Vec<StoreCheck>,
    /// Last cycle Rename/Dispatch moved at least one µ-op (deadlock watchdog).
    pub(crate) last_dispatch_progress: u64,

    // Hardening (opt-in; `None` costs one branch per cycle).
    /// Lockstep oracle checker (`attach_checker`).
    pub(crate) checker: Option<OracleChecker>,
    /// Commit records collected this cycle for the checker.
    pub(crate) commit_log: Vec<CommitRecord>,
    /// Deterministic fault injector (`attach_faults`).
    pub(crate) fault: Option<FaultInjector>,
    /// Per-µ-op event observer (`attach_observer`). `None` costs one branch
    /// per event site — the zero-cost-when-off contract.
    pub(crate) obs: Option<Box<Observer>>,

    // Scratch buffers reused across cycles so the per-cycle and per-flush
    // paths stay allocation-free in steady state.
    pub(crate) scratch_issued: Vec<u64>,
    pub(crate) scratch_checks: Vec<StoreCheck>,
    pub(crate) scratch_undos: Vec<(u64, Reg, Option<u64>)>,
    pub(crate) scratch_repairs: Vec<(usize, RepairCase, Option<helios_core::PredMeta>)>,

    pub(crate) stats: SimStats,
}

impl<I: UopSource> Pipeline<I> {
    /// Builds a pipeline over a retired-µ-op source.
    pub fn new(cfg: PipeConfig, source: I) -> Pipeline<I> {
        Pipeline {
            window: TraceWindow::new(source),
            now: 0,
            bp: BranchPredictor::new(),
            redirect_wait: None,
            resume_at: 0,
            aq: VecDeque::with_capacity(cfg.aq_size),
            fp: FusionPredictor::new(cfg.helios.fp),
            uch: Uch::new(cfg.helios.uch),
            uch_queue: UchQueue::new(cfg.helios.uch_queue),
            uch_seq: 0,
            commit_ghr: 0,
            active_pending_ncsf: 0,
            rat: [None; 32],
            free_phys: cfg.free_phys_regs(),
            tail_undos: Vec::new(),
            rob: VecDeque::with_capacity(cfg.rob_size),
            iq: Vec::with_capacity(cfg.iq_size),
            lq: VecDeque::with_capacity(cfg.lq_size),
            sq: VecDeque::with_capacity(cfg.sq_size),
            board: CompletionBoard::new(),
            committed_upto: 0,
            atomic_commit_floor: 0,
            div_busy_until: 0,
            store_sets: StoreSets::new(),
            mem: Hierarchy::new(&cfg),
            pending_flushes: Vec::new(),
            store_checks: Vec::new(),
            last_dispatch_progress: 0,
            checker: None,
            commit_log: Vec::new(),
            fault: None,
            obs: None,
            scratch_issued: Vec::new(),
            scratch_checks: Vec::new(),
            scratch_undos: Vec::new(),
            scratch_repairs: Vec::new(),
            stats: SimStats::default(),
            cfg,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &PipeConfig {
        &self.cfg
    }

    /// Statistics collected so far.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Attaches a per-µ-op event observer (no-op when `opts.enabled` is
    /// false). Replaces any previously attached observer.
    pub fn attach_observer(&mut self, opts: ObsOpts) {
        self.obs = opts.enabled.then(|| Box::new(Observer::new(opts)));
    }

    /// The attached observer, if any.
    pub fn observer(&self) -> Option<&Observer> {
        self.obs.as_deref()
    }

    /// Detaches and returns the observer, if any.
    pub fn take_observer(&mut self) -> Option<Box<Observer>> {
        self.obs.take()
    }

    /// The self-describing registry view of the statistics collected so far,
    /// including the attached observer's counters and histograms.
    pub fn registry(&self) -> StatsRegistry {
        let mut reg = self.stats.registry();
        if let Some(o) = &self.obs {
            o.export(&mut reg);
        }
        reg
    }

    /// Current cycle.
    pub fn cycle_count(&self) -> u64 {
        self.now
    }

    /// Whether all work has drained.
    pub fn finished(&mut self) -> bool {
        self.window.at_end()
            && self.aq.is_empty()
            && self.rob.is_empty()
            && self.sq.is_empty()
    }

    /// Simulates one cycle.
    pub fn cycle(&mut self) {
        self.now += 1;
        self.stage_commit();
        if self.cfg.fusion.predictive() {
            // Drain the post-commit decoupling queue into the UCH at its
            // port rate, training the fusion predictor on discovered pairs.
            let fp = &mut self.fp;
            self.uch_queue
                .drain_cycle(&mut self.uch, &mut self.uch_seq, |pc, ghr, d| {
                    fp.train(pc, ghr, d)
                });
        }
        self.stage_drain_stores();
        self.process_store_checks();
        self.process_pending_flushes();
        self.stage_issue();
        self.stage_rename_dispatch();
        self.stage_fetch_decode();
        self.break_resource_deadlock();
        if self.fault.is_some() {
            self.apply_cycle_faults();
        }
        if self.obs.is_some() {
            let (rob, iq, lq, sq) = (self.rob.len(), self.iq.len(), self.lq.len(), self.sq.len());
            if let Some(o) = self.obs.as_deref_mut() {
                o.sample_occupancy(rob, iq, lq, sq);
            }
        }
    }

    /// Deadlock breaker: a *pending* NCSF'd µ-op cannot issue until its tail
    /// nucleus reaches Rename, but the tail's progress may itself require
    /// resources (LQ/SQ/IQ entries) that only free once the pending µ-op's
    /// dependants commit. When Dispatch starves for a long window while a
    /// pending head is in flight, unfuse the oldest pending pair in place
    /// (repair case 2 machinery) and revive its tail marker.
    fn break_resource_deadlock(&mut self) {
        const WINDOW: u64 = 64;
        if self.now - self.last_dispatch_progress <= WINDOW {
            return;
        }
        let Some(i) = self
            .rob
            .iter()
            .position(|e| e.uop.is_pending_ncsf())
        else {
            return;
        };
        let fused = self.rob[i].uop.fused;
        if let Some(f) = fused {
            self.revive_tail_marker(&f);
            let pred = f.pred;
            self.unfuse_rob_entry(i, RepairCase::Deadlock);
            if let Some(meta) = pred {
                self.fp.resolve(&meta, false);
            }
            self.active_pending_ncsf = self.active_pending_ncsf.saturating_sub(1);
            self.last_dispatch_progress = self.now;
            self.stats.deadlock_breaks += 1;
        }
    }

    /// Runs until the trace drains or `max_cycles` elapse, reporting every
    /// abnormal outcome as a structured [`SimError`]:
    ///
    /// * [`SimError::Deadlock`] — commit made no progress for
    ///   [`PipeConfig::watchdog_cycles`] consecutive cycles (a simulator
    ///   bug, never a workload property); carries a pipeline snapshot.
    /// * [`SimError::CycleLimit`] — the trace did not drain in budget.
    /// * [`SimError::InvariantViolation`] — a lockstep check failed (only
    ///   with a checker attached via [`Pipeline::attach_checker`]).
    ///
    /// Statistics are finalized on every exit path, so partial results
    /// remain readable from [`Pipeline::stats`] after an error.
    pub fn try_run(&mut self, max_cycles: u64) -> Result<&SimStats, SimError> {
        self.try_run_deadline(max_cycles, None)
    }

    /// How many cycles elapse between wall-clock deadline checks in
    /// [`Pipeline::try_run_deadline`]. A power of two so the check is a
    /// mask; large enough that `Instant::now` never shows up in a profile,
    /// small enough that an expired deadline is noticed within microseconds.
    const DEADLINE_CHECK_PERIOD: u64 = 4096;

    /// [`Pipeline::try_run`] with an optional wall-clock deadline on top of
    /// the cycle budget. The deadline is polled every
    /// [`Self::DEADLINE_CHECK_PERIOD`] cycles (and once before the first
    /// cycle, so an already-expired deadline returns immediately); when it
    /// passes, the run stops with [`SimError::WallClockTimeout`]. Statistics
    /// are finalized on every exit path, exactly as for `try_run`.
    pub fn try_run_deadline(
        &mut self,
        max_cycles: u64,
        deadline: Option<std::time::Instant>,
    ) -> Result<&SimStats, SimError> {
        let started = deadline.map(|_| std::time::Instant::now());
        let mut last_commit = (self.now, self.stats.instructions);
        let mut next_check = self.now;
        while !self.finished() && self.now < max_cycles {
            if let (Some(dl), Some(t0)) = (deadline, started) {
                if self.now >= next_check {
                    next_check = self.now + Self::DEADLINE_CHECK_PERIOD;
                    let now = std::time::Instant::now();
                    if now >= dl {
                        self.finalize_stats();
                        return Err(SimError::WallClockTimeout {
                            limit_ms: dl.saturating_duration_since(t0).as_millis() as u64,
                            cycles: self.now,
                            committed: self.stats.instructions,
                        });
                    }
                }
            }
            self.cycle();
            if let Some(err) = self.verify_cycle() {
                self.finalize_stats();
                return Err(err);
            }
            if self.stats.instructions != last_commit.1 {
                last_commit = (self.now, self.stats.instructions);
            } else if self.now - last_commit.0 >= self.cfg.watchdog_cycles {
                self.finalize_stats();
                return Err(SimError::Deadlock(Box::new(
                    self.deadlock_report(last_commit.0),
                )));
            }
        }
        self.finalize_stats();
        if !self.finished() {
            return Err(SimError::CycleLimit {
                max_cycles,
                committed: self.stats.instructions,
            });
        }
        if let Some(err) = self.verify_finish() {
            return Err(err);
        }
        Ok(&self.stats)
    }

    /// Snapshot of the stuck pipeline for the watchdog report.
    fn deadlock_report(&self, last_commit_cycle: u64) -> DeadlockReport {
        let rob_front = self.rob.front().map(|e| {
            format!(
                "seq {} inst {:?} complete_at {:?} fused {:?}",
                e.uop.seq,
                e.uop.inst,
                e.complete_at,
                e.uop.fused.map(|f| (f.tail_seq, f.pending)),
            )
        });
        let iq_head: Vec<String> = self
            .iq
            .iter()
            .take(4)
            .map(|e| {
                let srcs: Vec<(u64, bool)> = e
                    .srcs
                    .iter()
                    .map(|&p| (p, self.producer_ready(p, self.now)))
                    .collect();
                format!(
                    "seq {} fu {:?} ncs_ready {} srcs {:?} memdep {:?}",
                    e.seq, e.fu, e.ncs_ready, srcs, e.memdep_wait
                )
            })
            .collect();
        DeadlockReport {
            cycle: self.now,
            committed: self.stats.instructions,
            last_commit_cycle,
            rob: self.rob.len(),
            aq: self.aq.len(),
            iq: self.iq.len(),
            pending_ncsf: self.active_pending_ncsf,
            rob_front,
            iq_head,
            flushes: format!("{:?}", self.pending_flushes),
        }
    }

    /// Folds end-of-run counters (cycles, UCH queue, cache misses) into
    /// `stats`. Idempotent; called on every `try_run` exit path.
    fn finalize_stats(&mut self) {
        self.stats.cycles = self.now;
        self.stats.uch_queue_dropped = self.uch_queue.dropped;
        self.stats.uch_queue_drained = self.uch_queue.drained;
        let (l1m, l2m, l3m) = self.mem.miss_counts();
        self.stats.l1d_accesses = self.mem.l1_accesses();
        self.stats.l1d_misses = l1m;
        self.stats.l2_misses = l2m;
        self.stats.l3_misses = l3m;
    }

    // ---- shared helpers -------------------------------------------------

    /// Index of the ROB entry holding `seq`, if present.
    pub(crate) fn rob_index(&self, seq: u64) -> Option<usize> {
        self.rob
            .binary_search_by_key(&seq, |e| e.uop.seq)
            .ok()
    }

    /// Whether the producer `seq` has completed by `cycle`.
    #[inline]
    pub(crate) fn producer_ready(&self, seq: u64, cycle: u64) -> bool {
        seq < self.committed_upto || self.board.get(seq).is_some_and(|c| c <= cycle)
    }

    /// Whether the store `seq`'s address is known by `cycle` (STA done or
    /// the store already left the pipeline).
    pub(crate) fn store_addr_known(&self, seq: u64, cycle: u64) -> bool {
        if seq < self.committed_upto {
            return true;
        }
        match self.sq.iter().find(|s| s.seq == seq) {
            Some(s) => s.senior || s.addr_known_at.is_some_and(|t| t <= cycle),
            None => true, // squashed or drained
        }
    }

    /// Schedules a flush, keeping the list small and coherent.
    pub(crate) fn schedule_flush(&mut self, f: PendingFlush) {
        self.pending_flushes.push(f);
    }

    fn process_pending_flushes(&mut self) {
        loop {
            // Earliest due flush; ties broken toward the oldest restart.
            let due = self
                .pending_flushes
                .iter()
                .enumerate()
                .filter(|(_, f)| f.at_cycle <= self.now)
                .min_by_key(|(_, f)| (f.at_cycle, f.restart))
                .map(|(i, _)| i);
            let Some(i) = due else { break };
            let f = self.pending_flushes.swap_remove(i);
            // Stale? (an earlier flush already squashed past this point)
            if f.restart >= self.window.cursor() {
                continue;
            }
            if !self.flush_from(f.restart, f.kind) {
                continue;
            }
            match f.kind {
                FlushKind::MemOrder => self.stats.memdep_flushes += 1,
                FlushKind::FusionSpan => self.stats.fusion_flushes += 1,
            }
        }
    }

    fn process_store_checks(&mut self) {
        if self.store_checks.is_empty() {
            return;
        }
        // Split due checks into the reusable scratch buffer (order-preserving,
        // like the `partition` this replaces) instead of allocating two fresh
        // vectors every cycle.
        let now = self.now;
        let mut due = std::mem::take(&mut self.scratch_checks);
        due.clear();
        self.store_checks.retain(|c| {
            if c.at_cycle <= now {
                due.push(*c);
                false
            } else {
                true
            }
        });
        for c in &due {
            self.check_violation(c.store_seq);
        }
        self.scratch_checks = due;
    }

    /// Memory-order violation scan when store `store_seq` finishes address
    /// generation: any younger load that already issued and overlaps must be
    /// squashed and re-executed.
    fn check_violation(&mut self, store_seq: u64) {
        let Some(store) = self.sq.iter().find(|s| s.seq == store_seq) else {
            return;
        };
        let (s_acc, s_acc2) = (store.acc, store.acc2);
        let s_done = store.addr_known_at.unwrap_or(self.now);
        let mut victim: Option<(u64, u64)> = None; // (seq, pc)
        for l in &self.lq {
            if l.seq <= store_seq {
                continue;
            }
            let Some(issue) = l.issue_cycle else { continue };
            if issue >= s_done {
                continue; // issued after the store's address was known
            }
            let overlaps = |a: &MemAccess| {
                a.overlaps(&s_acc) || s_acc2.as_ref().is_some_and(|b| a.overlaps(b))
            };
            if (overlaps(&l.acc) || l.acc2.as_ref().is_some_and(overlaps))
                && victim.is_none_or(|(vs, _)| l.seq < vs)
            {
                victim = Some((l.seq, l.pc));
            }
        }
        if let Some((load_seq, load_pc)) = victim {
            let store_pc = self
                .sq
                .iter()
                .find(|s| s.seq == store_seq)
                .map(|s| s.pc)
                .unwrap_or(0);
            self.store_sets.train_violation(load_pc, store_pc);
            if self.flush_from(load_seq, FlushKind::MemOrder) {
                self.stats.memdep_flushes += 1;
            }
        }
    }

    /// Squashes everything with `seq >= restart` and restarts fetch there.
    ///
    /// Returns `false` when the flush was vacuous: extended commit groups
    /// retire atomically (§IV-B3), so once a fused head has committed, its
    /// absorbed tail is architecturally retired even though `committed_upto`
    /// has not yet passed the intervening µ-ops. A restart at or below such
    /// a tail would re-fetch — and double-commit — it, so the restart is
    /// clamped past the youngest committed group first.
    pub(crate) fn flush_from(&mut self, restart: u64, kind: FlushKind) -> bool {
        let restart = restart.max(self.atomic_commit_floor);
        if restart >= self.window.cursor() {
            return false; // nothing at or past the clamped restart in flight
        }
        debug_assert!(restart >= self.committed_upto);
        if self.obs.is_some() {
            let now = self.now;
            if let Some(o) = self.obs.as_deref_mut() {
                o.squashed(restart, now);
            }
        }

        // Collect rename-undo records from squashed ROB entries and from
        // tail-nucleus RAT updates, then apply them youngest-first.
        let mut undos = std::mem::take(&mut self.scratch_undos);
        undos.clear();

        while self.rob.back().is_some_and(|e| e.uop.seq >= restart) {
            let Some(e) = self.rob.pop_back() else { break };
            // Reverse within the entry so that same-register double
            // destinations (e.g. lui+addi pairs) unwind correctly under the
            // stable sort below.
            for &(reg, prev) in e.undo.iter().rev() {
                undos.push((e.uop.seq, reg, prev));
            }
            self.free_phys += e.phys_allocated;
            self.board.clear(e.uop.seq);
        }
        self.tail_undos.retain(|t| {
            if t.tail_seq >= restart {
                undos.push((t.tail_seq, t.reg, t.prev));
                false
            } else {
                true
            }
        });
        undos.sort_by_key(|&(seq, _, _)| std::cmp::Reverse(seq));
        for &(_, reg, prev) in &undos {
            self.rat[reg.index()] = prev;
        }
        self.scratch_undos = undos;

        self.iq.retain(|e| e.seq < restart);
        self.lq.retain(|e| e.seq < restart);
        self.sq.retain(|e| e.senior || e.seq < restart);
        self.aq.retain(|e| e.seq() < restart);

        // Unfuse any surviving fused head whose tail was squashed: the tail
        // will be re-fetched as a normal µ-op (§IV-C cases 5–7).
        let mut repairs = std::mem::take(&mut self.scratch_repairs);
        repairs.clear();
        // (The span-mismatch head itself has seq >= restart and was popped
        // above; survivors losing their tail are catalyst-flush repairs.)
        let _ = kind;
        for (i, e) in self.rob.iter().enumerate() {
            if let Some(f) = &e.uop.fused {
                if f.tail_seq >= restart {
                    repairs.push((i, RepairCase::CatalystFlush, f.pred));
                }
            }
        }
        for &(i, case, pred) in &repairs {
            self.unfuse_rob_entry(i, case);
            if let Some(meta) = pred {
                self.fp.resolve(&meta, false);
            }
        }
        self.scratch_repairs = repairs;
        // Also unfuse AQ heads whose tail marker got squashed.
        for e in self.aq.iter_mut() {
            if let AqEntry::Uop(u) = e {
                if let Some(f) = &u.fused {
                    if f.tail_seq >= restart {
                        let (pred, tail_seq) = (f.pred, f.tail_seq);
                        u.unfuse();
                        self.stats.fusion.record_repair(RepairCase::CatalystFlush);
                        if let Some(o) = self.obs.as_deref_mut() {
                            o.unfused(u.seq, tail_seq);
                        }
                        if let Some(meta) = pred {
                            self.fp.resolve(&meta, false);
                        }
                    }
                }
            }
        }

        // Recompute the nesting census. Only renamed (in-ROB) pending heads
        // count: an AQ head that survived the flush has not incremented the
        // counter yet and will do so at its own Rename — including it here
        // would double-count and falsely saturate the Max Active NCS limit.
        self.active_pending_ncsf = self
            .rob
            .iter()
            .filter(|e| e.uop.is_pending_ncsf())
            .count();

        self.store_sets.flush_inflight();
        self.store_checks.retain(|c| c.store_seq < restart);
        self.pending_flushes.retain(|f| f.restart < restart);

        self.window.rewind(restart);
        self.resume_at = self.now + self.cfg.branch_redirect_penalty;
        if self.redirect_wait.is_some_and(|s| s >= restart) {
            self.redirect_wait = None;
        }
        true
    }

    /// Unfuses the ROB entry at `i` (in-place repair): reverts it to the
    /// plain head µ-op, releases the tail's resources, and records `case`.
    ///
    /// The squashed tail re-enters the pipeline via refetch (flush cases) or
    /// via a fresh dispatch (rename-time unfuse, handled by the caller).
    pub(crate) fn unfuse_rob_entry(&mut self, i: usize, case: RepairCase) {
        let seq = self.rob[i].uop.seq;
        let Some(f) = self.rob[i].uop.unfuse() else {
            return;
        };
        if let Some(o) = self.obs.as_deref_mut() {
            o.unfused(seq, f.tail_seq);
        }
        // Free the tail's destination register if one was allocated.
        if f.tail_inst.rd().is_some() {
            // Head allocation counted head + tail dests.
            if self.rob[i].phys_allocated > 0 {
                let head_dests = self.rob[i].uop.inst.rd().map_or(0, |_| 1);
                if self.rob[i].phys_allocated > head_dests {
                    self.rob[i].phys_allocated -= 1;
                    self.free_phys += 1;
                }
            }
        }
        // The pending pair could not have issued; make the head issuable.
        if let Some(iqe) = self.iq.iter_mut().find(|e| e.seq == seq) {
            iqe.ncs_ready = true;
        }
        // Drop the second access from LQ/SQ.
        if let Some(l) = self.lq.iter_mut().find(|e| e.seq == seq) {
            l.acc2 = None;
        }
        if let Some(s) = self.sq.iter_mut().find(|e| e.seq == seq) {
            s.acc2 = None;
        }
        self.stats.fusion.record_repair(case);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn completion_board_roundtrip_and_clear() {
        let mut b = CompletionBoard::new();
        b.set(5, 100, 0);
        assert_eq!(b.get(5), Some(100));
        assert_eq!(b.get(6), None);
        b.clear(5);
        assert_eq!(b.get(5), None);
        // Re-setting the same seq is always fine.
        b.set(5, 100, 0);
        b.set(5, 120, 0);
        assert_eq!(b.get(5), Some(120));
    }

    #[test]
    fn completion_board_allows_retired_overwrite() {
        let mut b = CompletionBoard::new();
        b.set(3, 10, 0);
        // Same ring slot, but seq 3 has retired (live floor above it): the
        // slot is dead and may be recycled.
        b.set(3 + BOARD_SLOTS as u64, 999, 4);
        assert_eq!(b.get(3 + BOARD_SLOTS as u64), Some(999));
        assert_eq!(b.get(3), None, "old seq no longer matches the slot");
    }

    #[test]
    #[cfg_attr(not(debug_assertions), ignore = "debug_assert only")]
    #[should_panic(expected = "completion board collision")]
    fn completion_board_rejects_live_overwrite() {
        let mut b = CompletionBoard::new();
        b.set(3, 10, 0);
        // Same slot, different seq, and seq 3 is still in flight.
        b.set(3 + BOARD_SLOTS as u64, 999, 0);
    }
}
