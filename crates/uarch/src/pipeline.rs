//! The cycle-level out-of-order pipeline.
//!
//! A trace-driven model of the seven-stage machine of Table II:
//! Fetch → Decode (+fusion) → Allocation Queue → Rename → Dispatch →
//! Issue/Execute → Commit, with ROB/IQ/LQ/SQ/PRF resources, TAGE branch
//! prediction, store-set memory-dependence prediction, a three-level data
//! cache, TSO store draining, and the complete Helios fusion machinery.
//!
//! Stage implementations live in sibling modules (`frontend`, `rename`,
//! `execute`, `commit`); this module owns the state, the main loop, and
//! flush/repair handling.

use crate::check::{CommitRecord, OracleChecker};
use crate::error::{DeadlockReport, SimError};
use crate::fault::FaultInjector;
use crate::obs::{ObsOpts, Observer, StatsRegistry};
use crate::{
    AqEntry, BranchPredictor, DynUop, Hierarchy, PipeConfig, SimStats, StoreSets, TraceWindow,
};
use helios_core::{FusionPredictor, RepairCase, Uch, UchQueue};
use helios_emu::{MemAccess, UopSource};
use helios_isa::Reg;
use std::collections::VecDeque;

/// Number of sequence slots tracked by the completion board. Must exceed the
/// maximum number of µ-ops in flight (ROB + AQ + widths) by a wide margin.
pub(crate) const BOARD_SLOTS: usize = 8192;

/// Execution-completion scoreboard indexed by trace sequence number.
#[derive(Clone, Debug)]
pub(crate) struct CompletionBoard {
    ring: Vec<(u64, u64)>, // (seq + 1, complete_cycle); 0 = empty
}

impl CompletionBoard {
    fn new() -> CompletionBoard {
        CompletionBoard {
            ring: vec![(0, 0); BOARD_SLOTS],
        }
    }

    /// Records `seq` as completing at `cycle`. `live_floor` is the oldest
    /// sequence number still in flight (`committed_upto`): a slot holding a
    /// *younger* seq is live, and silently overwriting it would corrupt a
    /// different µ-op's wakeup — that means BOARD_SLOTS is too small for the
    /// in-flight window.
    #[inline]
    pub(crate) fn set(&mut self, seq: u64, cycle: u64, live_floor: u64) {
        let slot = &mut self.ring[(seq as usize) % BOARD_SLOTS];
        debug_assert!(
            slot.0 == 0 || slot.0 == seq + 1 || slot.0 - 1 < live_floor,
            "completion board collision: seq {seq} would overwrite live seq {} \
             (live floor {live_floor}); BOARD_SLOTS too small",
            slot.0 - 1,
        );
        *slot = (seq + 1, cycle);
    }

    #[inline]
    pub(crate) fn get(&self, seq: u64) -> Option<u64> {
        let (s, c) = self.ring[(seq as usize) % BOARD_SLOTS];
        (s == seq + 1).then_some(c)
    }

    #[inline]
    pub(crate) fn clear(&mut self, seq: u64) {
        let slot = &mut self.ring[(seq as usize) % BOARD_SLOTS];
        if slot.0 == seq + 1 {
            *slot = (0, 0);
        }
    }
}

/// Reorder-buffer entry (owns the in-flight µ-op).
///
/// Per-µ-op *execution* state (issued, completion cycle, readiness) is
/// deliberately not stored here: the hot-path consumers read it from the
/// struct-of-arrays side — the dense ready bitset for the boolean and the
/// [`CompletionBoard`] for the exact cycle — so wakeup and commit never
/// touch these cache-line-sized entries.
#[derive(Clone, Debug)]
pub(crate) struct RobEntry {
    pub uop: DynUop,
    /// This µ-op's IQ slot while it waits to issue (`NO_IQ_SLOT` once
    /// issued); the seq→IQ lookup is `rob_index` + this field, both O(1).
    pub iq_slot: u32,
    /// Physical registers allocated (freed at commit or flush).
    pub phys_allocated: usize,
    /// Rename undo log: (dest arch reg, previous RAT mapping). At most two
    /// records — head and fused-tail destination — stored inline so
    /// dispatch performs no heap allocation; `undo_len` is the live count.
    pub undo: [(Reg, Option<u64>); 2],
    pub undo_len: u8,
    /// Whether this µ-op was fetched with a branch misprediction.
    pub mispredicted: bool,
    pub conditional: bool,
    pub indirect: bool,
}

/// Issue-queue entry, held in a stable slot of `iq_slots`.
///
/// Wakeup is event-driven: instead of source lists that Issue re-polls every
/// cycle, the entry carries *counts* of outstanding (not-yet-complete)
/// producers, decremented by [`Pipeline::wake_consumers`] when a producer's
/// completion fires. Stores split into address generation (STA) and data
/// (STD) µ-phases: `pending_addr` gates STA (and everything for non-stores),
/// `pending_data` gates STD.
#[derive(Clone, Debug)]
pub(crate) struct IqEntry {
    pub seq: u64,
    /// Dispatch token (globally unique, never reused): wakeup registrations
    /// name `(slot, token)` so a registration left by a squashed µ-op cannot
    /// wake the slot's next occupant.
    pub token: u64,
    pub fu: crate::FuClass,
    /// Outstanding address-side producers (STA gate; all sources for
    /// non-stores).
    pub pending_addr: u32,
    /// Outstanding store-data producers (STD gate; 0 for non-stores).
    pub pending_data: u32,
    /// Whether the STA phase has issued.
    pub sta_done: bool,
    /// NCS Ready bit: pending NCSF'd µ-ops may not issue (§IV-B2).
    pub ncs_ready: bool,
    /// Store-set dependence: store sequence to wait for.
    pub memdep_wait: Option<u64>,
}

impl IqEntry {
    /// Whether the entry's *active phase* has all producers complete (and is
    /// NCS Ready): exactly the entries the select loop should look at. A
    /// store's active phase is STA until `sta_done`, then STD; `pending_data`
    /// is deliberately ignored for non-stores (only stores have an STD
    /// phase).
    #[inline]
    pub(crate) fn wakeup_ready(&self) -> bool {
        let pending = if self.fu == crate::FuClass::Store && self.sta_done {
            self.pending_data
        } else {
            self.pending_addr
        };
        self.ncs_ready && pending == 0
    }
}

/// A wakeup registration: when the producer it is filed under completes,
/// decrement one pending count of the IQ entry at `slot` — if `token` still
/// matches (the entry has not been squashed and the slot reoccupied).
#[derive(Clone, Copy, Debug)]
pub(crate) struct Waiter {
    pub token: u64,
    pub slot: u32,
    /// Which count to decrement: STD data side (`true`) or address side.
    pub is_data: bool,
}

/// Load-queue entry.
#[derive(Clone, Debug)]
pub(crate) struct LqEntry {
    pub seq: u64,
    pub pc: u64,
    pub acc: MemAccess,
    pub acc2: Option<MemAccess>,
    pub issue_cycle: Option<u64>,
}

/// Store-queue entry. Entries become *senior* at commit and drain to the L1D
/// in order (TSO).
#[derive(Clone, Debug)]
pub(crate) struct SqEntry {
    pub seq: u64,
    pub pc: u64,
    pub acc: MemAccess,
    pub acc2: Option<MemAccess>,
    /// Cycle the store's address generation completed (STLF eligibility).
    pub addr_known_at: Option<u64>,
    pub senior: bool,
    /// In-progress drain completion cycle.
    pub draining_until: Option<u64>,
}

/// A scheduled pipeline flush (applied when `at_cycle` is reached).
#[derive(Clone, Copy, Debug)]
pub(crate) struct PendingFlush {
    pub at_cycle: u64,
    /// First squashed sequence number (fetch restarts here).
    pub restart: u64,
    pub kind: FlushKind,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum FlushKind {
    /// Memory-order violation (store-set trained).
    MemOrder,
    /// Fused pair whose accesses span more than the fusion region (§IV-C
    /// case 5); the head at `restart - 1` is unfused.
    FusionSpan,
}

/// Deferred store-set violation check at store-execution completion.
#[derive(Clone, Copy, Debug)]
pub(crate) struct StoreCheck {
    pub at_cycle: u64,
    pub store_seq: u64,
}

/// Undo record for a tail-nucleus RAT update performed at its Rename.
#[derive(Clone, Copy, Debug)]
pub(crate) struct TailUndo {
    pub tail_seq: u64,
    pub reg: Reg,
    pub prev: Option<u64>,
}

/// The pipeline simulator.
///
/// Drive it with [`Pipeline::run`] (or [`Pipeline::cycle`] for fine-grained
/// control) and read the results from [`Pipeline::stats`].
pub struct Pipeline<I> {
    pub(crate) cfg: PipeConfig,
    pub(crate) window: TraceWindow<I>,
    pub(crate) now: u64,

    // Frontend.
    pub(crate) bp: BranchPredictor,
    /// Unresolved mispredicted control µ-op the frontend waits on.
    pub(crate) redirect_wait: Option<u64>,
    /// Cycle fetch may resume after a redirect or flush.
    pub(crate) resume_at: u64,
    pub(crate) aq: VecDeque<AqEntry>,

    // Fusion machinery.
    pub(crate) fp: FusionPredictor,
    pub(crate) uch: Uch,
    /// Post-commit decoupling queue feeding the UCH (§IV-A1).
    pub(crate) uch_queue: UchQueue,
    /// Original-sequence position the UCH commit number is synced to.
    pub(crate) uch_seq: u64,
    pub(crate) commit_ghr: u64,
    pub(crate) active_pending_ncsf: usize,

    // Rename.
    pub(crate) rat: [Option<u64>; 32],
    pub(crate) free_phys: usize,
    pub(crate) tail_undos: Vec<TailUndo>,

    // Backend.
    pub(crate) rob: VecDeque<RobEntry>,
    /// Issue queue as a slot map: entries occupy stable slots so removal is
    /// O(1) and nothing re-scans the blocked majority. `iq_ready` (sorted by
    /// `(seq, slot)`) holds exactly the entries whose active phase is
    /// wakeup-ready — the select loop walks only those, oldest first.
    pub(crate) iq_slots: Vec<Option<IqEntry>>,
    /// Free-slot stack for `iq_slots`.
    pub(crate) iq_free: Vec<u32>,
    /// Occupied IQ slots (capacity/occupancy accounting).
    pub(crate) iq_len: usize,
    /// Wakeup-ready IQ entries, sorted ascending by `(seq, slot)`.
    pub(crate) iq_ready: Vec<(u64, u32)>,
    /// Wakeup registrations filed under the producer's board slot
    /// (`seq % BOARD_SLOTS`), drained when that producer's completion fires.
    /// Stale registrations (squashed consumers) are rejected by token.
    pub(crate) iq_waiters: Vec<Vec<Waiter>>,
    /// Next dispatch token (monotonic, never rewound by flushes).
    pub(crate) iq_token: u64,
    pub(crate) lq: VecDeque<LqEntry>,
    pub(crate) sq: VecDeque<SqEntry>,
    pub(crate) board: CompletionBoard,
    /// Dense wakeup bitset over the board's sequence slots: bit set ⇔ the
    /// slot's µ-op has completed by the current cycle. 1 KiB total, so the
    /// per-source readiness test in Issue is a cached word load instead of a
    /// probe into the 128 KiB board ring.
    pub(crate) ready_bits: Vec<u64>,
    /// Pending wakeup events: `Reverse((complete_cycle, seq))`, drained at
    /// the top of each cycle into `ready_bits`. Events are validated against
    /// the board when they fire, so events for squashed µ-ops are inert.
    pub(crate) ready_events: std::collections::BinaryHeap<std::cmp::Reverse<(u64, u64)>>,
    /// seq → absolute ROB position ring (tag = seq + 1), making `rob_index`
    /// a base-offset computation instead of a binary search.
    pub(crate) rob_pos: Vec<(u64, u64)>,
    /// Absolute position of `rob[0]` (advances at commit).
    pub(crate) rob_abs_base: u64,
    /// Absolute position one past `rob.back()` (advances at dispatch,
    /// retreats at flush).
    pub(crate) rob_abs_head: u64,
    pub(crate) committed_upto: u64,
    /// One past the youngest absorbed tail whose extended commit group has
    /// retired; flush restarts never reach below this (§IV-B3 atomicity).
    pub(crate) atomic_commit_floor: u64,
    pub(crate) div_busy_until: u64,
    pub(crate) store_sets: StoreSets,
    pub(crate) mem: Hierarchy,
    pub(crate) pending_flushes: Vec<PendingFlush>,
    pub(crate) store_checks: Vec<StoreCheck>,
    /// Last cycle Rename/Dispatch moved at least one µ-op (deadlock watchdog).
    pub(crate) last_dispatch_progress: u64,

    // Hardening (opt-in; `None` costs one branch per cycle).
    /// Lockstep oracle checker (`attach_checker`).
    pub(crate) checker: Option<OracleChecker>,
    /// Commit records collected this cycle for the checker.
    pub(crate) commit_log: Vec<CommitRecord>,
    /// Deterministic fault injector (`attach_faults`).
    pub(crate) fault: Option<FaultInjector>,
    /// Per-µ-op event observer (`attach_observer`). `None` costs one branch
    /// per event site — the zero-cost-when-off contract.
    pub(crate) obs: Option<Box<Observer>>,
    /// Per-stage wall-clock attribution (`HELIOS_PROFILE=1`). `None` costs
    /// one branch per cycle.
    pub(crate) prof: Option<Box<crate::profile::StageProfile>>,

    // Scratch buffers reused across cycles so the per-cycle and per-flush
    // paths stay allocation-free in steady state.
    pub(crate) scratch_checks: Vec<StoreCheck>,
    pub(crate) scratch_undos: Vec<(u64, Reg, Option<u64>)>,
    pub(crate) scratch_repairs: Vec<(usize, RepairCase, Option<helios_core::PredMeta>)>,

    pub(crate) stats: SimStats,
}

impl<I: UopSource> Pipeline<I> {
    /// Builds a pipeline over a retired-µ-op source.
    pub fn new(cfg: PipeConfig, source: I) -> Pipeline<I> {
        Pipeline {
            window: TraceWindow::new(source),
            now: 0,
            bp: BranchPredictor::new(),
            redirect_wait: None,
            resume_at: 0,
            aq: VecDeque::with_capacity(cfg.aq_size),
            fp: FusionPredictor::new(cfg.helios.fp),
            uch: Uch::new(cfg.helios.uch),
            uch_queue: UchQueue::new(cfg.helios.uch_queue),
            uch_seq: 0,
            commit_ghr: 0,
            active_pending_ncsf: 0,
            rat: [None; 32],
            free_phys: cfg.free_phys_regs(),
            tail_undos: Vec::new(),
            rob: VecDeque::with_capacity(cfg.rob_size),
            iq_slots: (0..cfg.iq_size).map(|_| None).collect(),
            iq_free: (0..cfg.iq_size as u32).rev().collect(),
            iq_len: 0,
            iq_ready: Vec::with_capacity(cfg.iq_size),
            iq_waiters: (0..BOARD_SLOTS).map(|_| Vec::new()).collect(),
            iq_token: 0,
            lq: VecDeque::with_capacity(cfg.lq_size),
            sq: VecDeque::with_capacity(cfg.sq_size),
            board: CompletionBoard::new(),
            ready_bits: vec![0; BOARD_SLOTS / 64],
            ready_events: std::collections::BinaryHeap::with_capacity(cfg.rob_size),
            rob_pos: vec![(0, 0); BOARD_SLOTS],
            rob_abs_base: 0,
            rob_abs_head: 0,
            committed_upto: 0,
            atomic_commit_floor: 0,
            div_busy_until: 0,
            store_sets: StoreSets::new(),
            mem: Hierarchy::new(&cfg),
            pending_flushes: Vec::new(),
            store_checks: Vec::new(),
            last_dispatch_progress: 0,
            checker: None,
            commit_log: Vec::new(),
            fault: None,
            obs: None,
            prof: crate::profile::enabled()
                .then(|| Box::new(crate::profile::StageProfile::new())),
            scratch_checks: Vec::new(),
            scratch_undos: Vec::new(),
            scratch_repairs: Vec::new(),
            stats: SimStats::default(),
            cfg,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &PipeConfig {
        &self.cfg
    }

    /// Statistics collected so far.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Attaches a per-µ-op event observer (no-op when `opts.enabled` is
    /// false). Replaces any previously attached observer.
    pub fn attach_observer(&mut self, opts: ObsOpts) {
        self.obs = opts.enabled.then(|| Box::new(Observer::new(opts)));
    }

    /// The attached observer, if any.
    pub fn observer(&self) -> Option<&Observer> {
        self.obs.as_deref()
    }

    /// Detaches and returns the observer, if any.
    pub fn take_observer(&mut self) -> Option<Box<Observer>> {
        self.obs.take()
    }

    /// The self-describing registry view of the statistics collected so far,
    /// including the attached observer's counters and histograms.
    pub fn registry(&self) -> StatsRegistry {
        let mut reg = self.stats.registry();
        if let Some(o) = &self.obs {
            o.export(&mut reg);
        }
        reg
    }

    /// Current cycle.
    pub fn cycle_count(&self) -> u64 {
        self.now
    }

    /// Whether all work has drained.
    pub fn finished(&mut self) -> bool {
        self.window.at_end()
            && self.aq.is_empty()
            && self.rob.is_empty()
            && self.sq.is_empty()
    }

    /// Simulates one cycle.
    pub fn cycle(&mut self) {
        if self.prof.is_some() {
            self.cycle_impl::<true>();
        } else {
            self.cycle_impl::<false>();
        }
    }

    /// The cycle body, compiled twice: `PROF = false` is the production hot
    /// path (the profiling plumbing folds away to plain calls); `PROF = true`
    /// brackets each stage with monotonic-clock reads for the
    /// `HELIOS_PROFILE=1` attribution table.
    ///
    /// Quiescent stages are skipped, not entered (event-driven skipping).
    /// Each gate below replicates the stage's own first-line early-out —
    /// including its side effects (`last_dispatch_progress` for
    /// Rename/Dispatch) — so skipping is timing- and statistics-neutral by
    /// construction.
    fn cycle_impl<const PROF: bool>(&mut self) {
        use crate::profile::Stage;
        let mut prof = if PROF { self.prof.take() } else { None };
        self.now += 1;
        if let Some(p) = prof.as_deref_mut() {
            p.cycle();
        }

        if self
            .ready_events
            .peek()
            .is_some_and(|&std::cmp::Reverse((c, _))| c <= self.now)
        {
            run_stage(&mut prof, Stage::Wakeup, || self.drain_ready_events());
        } else {
            skip_stage(&mut prof, Stage::Wakeup);
        }
        if self
            .rob
            .front()
            .is_some_and(|e| self.ready_bit(e.uop.seq))
        {
            run_stage(&mut prof, Stage::Commit, || self.stage_commit());
        } else {
            // The ROB front (if any) has not completed: nothing can retire,
            // `committed_upto` cannot advance, and the trace-window release
            // below it is already done.
            skip_stage(&mut prof, Stage::Commit);
        }
        if self.cfg.fusion.predictive() {
            if self.uch_queue.is_empty() {
                skip_stage(&mut prof, Stage::UchDrain);
            } else {
                // Drain the post-commit decoupling queue into the UCH at its
                // port rate, training the fusion predictor on discovered
                // pairs.
                run_stage(&mut prof, Stage::UchDrain, || {
                    let fp = &mut self.fp;
                    self.uch_queue.drain_cycle(
                        &mut self.uch,
                        &mut self.uch_seq,
                        |pc, ghr, d| fp.train(pc, ghr, d),
                    )
                });
            }
        }
        if self.sq.front().is_some_and(|s| s.senior) {
            run_stage(&mut prof, Stage::DrainStores, || self.stage_drain_stores());
        } else {
            skip_stage(&mut prof, Stage::DrainStores);
        }
        if self.store_checks.is_empty() {
            skip_stage(&mut prof, Stage::StoreChecks);
        } else {
            run_stage(&mut prof, Stage::StoreChecks, || self.process_store_checks());
        }
        if self.pending_flushes.is_empty() {
            skip_stage(&mut prof, Stage::Flushes);
        } else {
            run_stage(&mut prof, Stage::Flushes, || self.process_pending_flushes());
        }
        if self.iq_ready.is_empty() {
            // No IQ entry is wakeup-ready: the select loop would walk an
            // empty list. Blocked entries wake via their producers'
            // completion events, never by being re-polled here.
            skip_stage(&mut prof, Stage::Issue);
        } else {
            run_stage(&mut prof, Stage::Issue, || self.stage_issue());
        }
        if self.aq.is_empty() {
            // An empty AQ is Rename/Dispatch progress for the dispatch
            // watchdog, exactly as in `stage_rename_dispatch`.
            self.last_dispatch_progress = self.now;
            skip_stage(&mut prof, Stage::RenameDispatch);
        } else {
            run_stage(&mut prof, Stage::RenameDispatch, || {
                self.stage_rename_dispatch()
            });
        }
        run_stage(&mut prof, Stage::FetchDecode, || self.stage_fetch_decode());
        run_stage(&mut prof, Stage::Misc, || {
            self.break_resource_deadlock();
            if self.fault.is_some() {
                self.apply_cycle_faults();
            }
            if self.obs.is_some() {
                let (rob, iq, lq, sq) =
                    (self.rob.len(), self.iq_len, self.lq.len(), self.sq.len());
                if let Some(o) = self.obs.as_deref_mut() {
                    o.sample_occupancy(rob, iq, lq, sq);
                }
            }
        });
        if PROF {
            self.prof = prof;
        }
    }

    /// Deadlock breaker: a *pending* NCSF'd µ-op cannot issue until its tail
    /// nucleus reaches Rename, but the tail's progress may itself require
    /// resources (LQ/SQ/IQ entries) that only free once the pending µ-op's
    /// dependants commit. When Dispatch starves for a long window while a
    /// pending head is in flight, unfuse the oldest pending pair in place
    /// (repair case 2 machinery) and revive its tail marker.
    fn break_resource_deadlock(&mut self) {
        const WINDOW: u64 = 64;
        if self.now - self.last_dispatch_progress <= WINDOW {
            return;
        }
        let Some(i) = self
            .rob
            .iter()
            .position(|e| e.uop.is_pending_ncsf())
        else {
            return;
        };
        let fused = self.rob[i].uop.fused;
        if let Some(f) = fused {
            self.revive_tail_marker(&f);
            let pred = f.pred;
            self.unfuse_rob_entry(i, RepairCase::Deadlock);
            if let Some(meta) = pred {
                self.fp.resolve(&meta, false);
            }
            self.active_pending_ncsf = self.active_pending_ncsf.saturating_sub(1);
            self.last_dispatch_progress = self.now;
            self.stats.deadlock_breaks += 1;
        }
    }

    /// Runs until the trace drains or `max_cycles` elapse, reporting every
    /// abnormal outcome as a structured [`SimError`]:
    ///
    /// * [`SimError::Deadlock`] — commit made no progress for
    ///   [`PipeConfig::watchdog_cycles`] consecutive cycles (a simulator
    ///   bug, never a workload property); carries a pipeline snapshot.
    /// * [`SimError::CycleLimit`] — the trace did not drain in budget.
    /// * [`SimError::InvariantViolation`] — a lockstep check failed (only
    ///   with a checker attached via [`Pipeline::attach_checker`]).
    ///
    /// Statistics are finalized on every exit path, so partial results
    /// remain readable from [`Pipeline::stats`] after an error.
    pub fn try_run(&mut self, max_cycles: u64) -> Result<&SimStats, SimError> {
        self.try_run_deadline(max_cycles, None)
    }

    /// How many cycles elapse between wall-clock deadline checks in
    /// [`Pipeline::try_run_deadline`]. A power of two so the check is a
    /// mask; large enough that `Instant::now` never shows up in a profile,
    /// small enough that an expired deadline is noticed within microseconds.
    const DEADLINE_CHECK_PERIOD: u64 = 4096;

    /// [`Pipeline::try_run`] with an optional wall-clock deadline on top of
    /// the cycle budget. The deadline is polled every
    /// [`Self::DEADLINE_CHECK_PERIOD`] cycles (and once before the first
    /// cycle, so an already-expired deadline returns immediately); when it
    /// passes, the run stops with [`SimError::WallClockTimeout`]. Statistics
    /// are finalized on every exit path, exactly as for `try_run`.
    pub fn try_run_deadline(
        &mut self,
        max_cycles: u64,
        deadline: Option<std::time::Instant>,
    ) -> Result<&SimStats, SimError> {
        let started = deadline.map(|_| std::time::Instant::now());
        let mut last_commit = (self.now, self.stats.instructions);
        let mut next_check = self.now;
        while !self.finished() && self.now < max_cycles {
            if let (Some(dl), Some(t0)) = (deadline, started) {
                if self.now >= next_check {
                    next_check = self.now + Self::DEADLINE_CHECK_PERIOD;
                    let now = std::time::Instant::now();
                    if now >= dl {
                        self.finalize_stats();
                        return Err(SimError::WallClockTimeout {
                            limit_ms: dl.saturating_duration_since(t0).as_millis() as u64,
                            cycles: self.now,
                            committed: self.stats.instructions,
                        });
                    }
                }
            }
            self.cycle();
            if let Some(err) = self.verify_cycle() {
                self.finalize_stats();
                return Err(err);
            }
            if self.stats.instructions != last_commit.1 {
                last_commit = (self.now, self.stats.instructions);
            } else if self.now - last_commit.0 >= self.cfg.watchdog_cycles {
                self.finalize_stats();
                return Err(SimError::Deadlock(Box::new(
                    self.deadlock_report(last_commit.0),
                )));
            }
        }
        self.finalize_stats();
        if !self.finished() {
            return Err(SimError::CycleLimit {
                max_cycles,
                committed: self.stats.instructions,
            });
        }
        if let Some(err) = self.verify_finish() {
            return Err(err);
        }
        Ok(&self.stats)
    }

    /// Snapshot of the stuck pipeline for the watchdog report.
    fn deadlock_report(&self, last_commit_cycle: u64) -> DeadlockReport {
        let rob_front = self.rob.front().map(|e| {
            format!(
                "seq {} inst {:?} complete_at {:?} fused {:?}",
                e.uop.seq,
                e.uop.inst,
                self.board.get(e.uop.seq),
                e.uop.fused.map(|f| (f.tail_seq, f.pending)),
            )
        });
        let mut iq_entries: Vec<&IqEntry> =
            self.iq_slots.iter().flatten().collect();
        iq_entries.sort_by_key(|e| e.seq);
        let iq_head: Vec<String> = iq_entries
            .iter()
            .take(4)
            .map(|e| {
                format!(
                    "seq {} fu {:?} ncs_ready {} pending_addr {} \
                     pending_data {} sta_done {} memdep {:?}",
                    e.seq,
                    e.fu,
                    e.ncs_ready,
                    e.pending_addr,
                    e.pending_data,
                    e.sta_done,
                    e.memdep_wait
                )
            })
            .collect();
        DeadlockReport {
            cycle: self.now,
            committed: self.stats.instructions,
            last_commit_cycle,
            rob: self.rob.len(),
            aq: self.aq.len(),
            iq: self.iq_len,
            pending_ncsf: self.active_pending_ncsf,
            rob_front,
            iq_head,
            flushes: format!("{:?}", self.pending_flushes),
        }
    }

    /// Folds end-of-run counters (cycles, UCH queue, cache misses) into
    /// `stats`. Idempotent; called on every `try_run` exit path.
    fn finalize_stats(&mut self) {
        self.stats.cycles = self.now;
        self.stats.uch_queue_dropped = self.uch_queue.dropped;
        self.stats.uch_queue_drained = self.uch_queue.drained;
        let (l1m, l2m, l3m) = self.mem.miss_counts();
        self.stats.l1d_accesses = self.mem.l1_accesses();
        self.stats.l1d_misses = l1m;
        self.stats.l2_misses = l2m;
        self.stats.l3_misses = l3m;
        // Fold this run's stage attribution into the process-global profile
        // (once; `take` keeps repeated finalization idempotent).
        if let Some(p) = self.prof.take() {
            crate::profile::global_add(&p);
        }
    }

    // ---- shared helpers -------------------------------------------------

    /// Index of the ROB entry holding `seq`, if present: a base-offset
    /// computation over the seq→absolute-position ring (O(1), no search).
    pub(crate) fn rob_index(&self, seq: u64) -> Option<usize> {
        let (tag, pos) = self.rob_pos[(seq as usize) % BOARD_SLOTS];
        if tag == seq + 1 && pos >= self.rob_abs_base && pos < self.rob_abs_head {
            let i = (pos - self.rob_abs_base) as usize;
            debug_assert_eq!(self.rob[i].uop.seq, seq);
            Some(i)
        } else {
            None
        }
    }

    /// Tests the dense wakeup bit for `seq` (see `ready_bits`).
    #[inline]
    pub(crate) fn ready_bit(&self, seq: u64) -> bool {
        let i = (seq as usize) % BOARD_SLOTS;
        self.ready_bits[i / 64] >> (i % 64) & 1 != 0
    }

    #[inline]
    pub(crate) fn set_ready_bit(&mut self, seq: u64) {
        let i = (seq as usize) % BOARD_SLOTS;
        self.ready_bits[i / 64] |= 1 << (i % 64);
    }

    /// Clears `seq`'s wakeup bit. Called at Dispatch so a stale bit left by
    /// a long-retired (or squashed) µ-op sharing the slot cannot leak into
    /// the new occupant's readiness.
    #[inline]
    pub(crate) fn clear_ready_bit(&mut self, seq: u64) {
        let i = (seq as usize) % BOARD_SLOTS;
        self.ready_bits[i / 64] &= !(1 << (i % 64));
    }

    /// Records `seq` completing execution at `complete`: the board keeps the
    /// exact cycle (redirect resolution, STLF data-readiness), and the
    /// wakeup bit is scheduled — immediately for a zero-latency completion,
    /// via the event heap otherwise.
    #[inline]
    pub(crate) fn record_completion(&mut self, seq: u64, complete: u64) {
        self.board.set(seq, complete, self.committed_upto);
        if complete <= self.now {
            self.set_ready_bit(seq);
            self.wake_consumers(seq);
        } else {
            self.ready_events
                .push(std::cmp::Reverse((complete, seq)));
        }
    }

    /// Drains due wakeup events into the ready bitset. Each event is
    /// validated against the board when it fires: an event whose µ-op was
    /// squashed (board cleared) or re-issued to a different cycle sets
    /// nothing — only the event matching the live completion does.
    pub(crate) fn drain_ready_events(&mut self) {
        while let Some(&std::cmp::Reverse((c, seq))) = self.ready_events.peek() {
            if c > self.now {
                break;
            }
            self.ready_events.pop();
            if self.board.get(seq).is_some_and(|cc| cc <= self.now) {
                self.set_ready_bit(seq);
                self.wake_consumers(seq);
            }
        }
    }

    /// Whether the producer `seq` has completed by `cycle`.
    ///
    /// The hot path answers from the dense wakeup bitset, which is only
    /// synchronized to the current cycle — so `cycle` must be `self.now`
    /// (every caller's actual argument; asserted in debug builds).
    #[inline]
    pub(crate) fn producer_ready(&self, seq: u64, cycle: u64) -> bool {
        debug_assert_eq!(cycle, self.now);
        seq < self.committed_upto || self.ready_bit(seq)
    }

    /// Index of the SQ entry holding `seq`, if present (binary search; the
    /// SQ is seq-sorted).
    pub(crate) fn sq_index(&self, seq: u64) -> Option<usize> {
        let (a, b) = self.sq.as_slices();
        match a.binary_search_by_key(&seq, |s| s.seq) {
            Ok(i) => Some(i),
            Err(_) => b
                .binary_search_by_key(&seq, |s| s.seq)
                .ok()
                .map(|i| a.len() + i),
        }
    }

    /// Index of the LQ entry holding `seq`, if present (binary search; the
    /// LQ is seq-sorted).
    pub(crate) fn lq_index(&self, seq: u64) -> Option<usize> {
        let (a, b) = self.lq.as_slices();
        match a.binary_search_by_key(&seq, |l| l.seq) {
            Ok(i) => Some(i),
            Err(_) => b
                .binary_search_by_key(&seq, |l| l.seq)
                .ok()
                .map(|i| a.len() + i),
        }
    }

    /// Sentinel for [`RobEntry::iq_slot`]: the µ-op has no IQ entry
    /// (already issued).
    pub(crate) const NO_IQ_SLOT: u32 = u32::MAX;

    /// IQ slot of the in-flight µ-op `seq`, if it has not issued yet.
    pub(crate) fn iq_slot_of(&self, seq: u64) -> Option<u32> {
        let ri = self.rob_index(seq)?;
        let slot = self.rob[ri].iq_slot;
        if slot == Self::NO_IQ_SLOT {
            return None;
        }
        debug_assert_eq!(
            self.iq_slots[slot as usize].as_ref().map(|e| e.seq),
            Some(seq)
        );
        Some(slot)
    }

    /// Inserts `(seq, slot)` into the sorted ready list (idempotent).
    pub(crate) fn iq_ready_insert(&mut self, seq: u64, slot: u32) {
        if let Err(i) = self.iq_ready.binary_search(&(seq, slot)) {
            self.iq_ready.insert(i, (seq, slot));
        }
    }

    /// Removes `(seq, slot)` from the sorted ready list if present.
    pub(crate) fn iq_ready_remove(&mut self, seq: u64, slot: u32) {
        if let Ok(i) = self.iq_ready.binary_search(&(seq, slot)) {
            self.iq_ready.remove(i);
        }
    }

    /// Delivers the completion of `producer` to its registered IQ consumers:
    /// each live registration (token match) decrements the named pending
    /// count, and entries whose active phase just became ready enter the
    /// ready list. Registrations are consumed exactly once — the list is
    /// drained — and stale ones (squashed consumers) are inert by token.
    pub(crate) fn wake_consumers(&mut self, producer: u64) {
        let bucket = (producer as usize) % BOARD_SLOTS;
        if self.iq_waiters[bucket].is_empty() {
            return;
        }
        // Take the list to release the borrow; put it back to keep its
        // capacity (steady state stays allocation-free).
        let mut list = std::mem::take(&mut self.iq_waiters[bucket]);
        for w in list.drain(..) {
            let Some(e) = self.iq_slots[w.slot as usize].as_mut() else {
                continue;
            };
            if e.token != w.token {
                continue;
            }
            if w.is_data {
                e.pending_data -= 1;
            } else {
                e.pending_addr -= 1;
            }
            if e.wakeup_ready() {
                let seq = e.seq;
                self.iq_ready_insert(seq, w.slot);
            }
        }
        self.iq_waiters[bucket] = list;
    }

    /// Whether the store `seq`'s address is known by `cycle` (STA done or
    /// the store already left the pipeline).
    pub(crate) fn store_addr_known(&self, seq: u64, cycle: u64) -> bool {
        if seq < self.committed_upto {
            return true;
        }
        match self.sq_index(seq) {
            Some(i) => {
                let s = &self.sq[i];
                s.senior || s.addr_known_at.is_some_and(|t| t <= cycle)
            }
            None => true, // squashed or drained
        }
    }

    /// Schedules a flush, keeping the list small and coherent.
    pub(crate) fn schedule_flush(&mut self, f: PendingFlush) {
        self.pending_flushes.push(f);
    }

    fn process_pending_flushes(&mut self) {
        loop {
            // Earliest due flush; ties broken toward the oldest restart.
            let due = self
                .pending_flushes
                .iter()
                .enumerate()
                .filter(|(_, f)| f.at_cycle <= self.now)
                .min_by_key(|(_, f)| (f.at_cycle, f.restart))
                .map(|(i, _)| i);
            let Some(i) = due else { break };
            let f = self.pending_flushes.swap_remove(i);
            // Stale? (an earlier flush already squashed past this point)
            if f.restart >= self.window.cursor() {
                continue;
            }
            if !self.flush_from(f.restart, f.kind) {
                continue;
            }
            match f.kind {
                FlushKind::MemOrder => self.stats.memdep_flushes += 1,
                FlushKind::FusionSpan => self.stats.fusion_flushes += 1,
            }
        }
    }

    fn process_store_checks(&mut self) {
        if self.store_checks.is_empty() {
            return;
        }
        // Split due checks into the reusable scratch buffer (order-preserving,
        // like the `partition` this replaces) instead of allocating two fresh
        // vectors every cycle.
        let now = self.now;
        let mut due = std::mem::take(&mut self.scratch_checks);
        due.clear();
        self.store_checks.retain(|c| {
            if c.at_cycle <= now {
                due.push(*c);
                false
            } else {
                true
            }
        });
        for c in &due {
            self.check_violation(c.store_seq);
        }
        self.scratch_checks = due;
    }

    /// Memory-order violation scan when store `store_seq` finishes address
    /// generation: any younger load that already issued and overlaps must be
    /// squashed and re-executed.
    fn check_violation(&mut self, store_seq: u64) {
        let Some(si) = self.sq_index(store_seq) else {
            return;
        };
        let store = &self.sq[si];
        let (s_acc, s_acc2) = (store.acc, store.acc2);
        let s_done = store.addr_known_at.unwrap_or(self.now);
        let store_pc = store.pc;
        let mut victim: Option<(u64, u64)> = None; // (seq, pc)
        for l in &self.lq {
            if l.seq <= store_seq {
                continue;
            }
            let Some(issue) = l.issue_cycle else { continue };
            if issue >= s_done {
                continue; // issued after the store's address was known
            }
            let overlaps = |a: &MemAccess| {
                a.overlaps(&s_acc) || s_acc2.as_ref().is_some_and(|b| a.overlaps(b))
            };
            if (overlaps(&l.acc) || l.acc2.as_ref().is_some_and(overlaps))
                && victim.is_none_or(|(vs, _)| l.seq < vs)
            {
                victim = Some((l.seq, l.pc));
            }
        }
        if let Some((load_seq, load_pc)) = victim {
            self.store_sets.train_violation(load_pc, store_pc);
            if self.flush_from(load_seq, FlushKind::MemOrder) {
                self.stats.memdep_flushes += 1;
            }
        }
    }

    /// Squashes everything with `seq >= restart` and restarts fetch there.
    ///
    /// Returns `false` when the flush was vacuous: extended commit groups
    /// retire atomically (§IV-B3), so once a fused head has committed, its
    /// absorbed tail is architecturally retired even though `committed_upto`
    /// has not yet passed the intervening µ-ops. A restart at or below such
    /// a tail would re-fetch — and double-commit — it, so the restart is
    /// clamped past the youngest committed group first.
    pub(crate) fn flush_from(&mut self, restart: u64, kind: FlushKind) -> bool {
        let restart = restart.max(self.atomic_commit_floor);
        if restart >= self.window.cursor() {
            return false; // nothing at or past the clamped restart in flight
        }
        debug_assert!(restart >= self.committed_upto);
        if self.obs.is_some() {
            let now = self.now;
            if let Some(o) = self.obs.as_deref_mut() {
                o.squashed(restart, now);
            }
        }

        // Collect rename-undo records from squashed ROB entries and from
        // tail-nucleus RAT updates, then apply them youngest-first.
        let mut undos = std::mem::take(&mut self.scratch_undos);
        undos.clear();

        while self.rob.back().is_some_and(|e| e.uop.seq >= restart) {
            let Some(e) = self.rob.pop_back() else { break };
            // Reverse within the entry so that same-register double
            // destinations (e.g. lui+addi pairs) unwind correctly under the
            // stable sort below.
            for &(reg, prev) in e.undo[..e.undo_len as usize].iter().rev() {
                undos.push((e.uop.seq, reg, prev));
            }
            self.free_phys += e.phys_allocated;
            self.board.clear(e.uop.seq);
            self.clear_ready_bit(e.uop.seq);
        }
        // Squashed positions are gone; re-dispatched µ-ops re-register.
        self.rob_abs_head = self.rob_abs_base + self.rob.len() as u64;
        self.tail_undos.retain(|t| {
            if t.tail_seq >= restart {
                undos.push((t.tail_seq, t.reg, t.prev));
                false
            } else {
                true
            }
        });
        undos.sort_by_key(|&(seq, _, _)| std::cmp::Reverse(seq));
        for &(_, reg, prev) in &undos {
            self.rat[reg.index()] = prev;
        }
        self.scratch_undos = undos;

        // Squash IQ entries at or past the restart: free their slots and cut
        // the (sorted) ready list's suffix. Wakeup registrations they left
        // behind stay in `iq_waiters` — they are inert, rejected by token.
        for slot in 0..self.iq_slots.len() {
            if self.iq_slots[slot].as_ref().is_some_and(|e| e.seq >= restart) {
                self.iq_slots[slot] = None;
                self.iq_free.push(slot as u32);
                self.iq_len -= 1;
            }
        }
        let cut = self.iq_ready.partition_point(|&(s, _)| s < restart);
        self.iq_ready.truncate(cut);
        self.lq.retain(|e| e.seq < restart);
        self.sq.retain(|e| e.senior || e.seq < restart);
        self.aq.retain(|e| e.seq() < restart);

        // Unfuse any surviving fused head whose tail was squashed: the tail
        // will be re-fetched as a normal µ-op (§IV-C cases 5–7).
        let mut repairs = std::mem::take(&mut self.scratch_repairs);
        repairs.clear();
        // (The span-mismatch head itself has seq >= restart and was popped
        // above; survivors losing their tail are catalyst-flush repairs.)
        let _ = kind;
        for (i, e) in self.rob.iter().enumerate() {
            if let Some(f) = &e.uop.fused {
                if f.tail_seq >= restart {
                    repairs.push((i, RepairCase::CatalystFlush, f.pred));
                }
            }
        }
        for &(i, case, pred) in &repairs {
            self.unfuse_rob_entry(i, case);
            if let Some(meta) = pred {
                self.fp.resolve(&meta, false);
            }
        }
        self.scratch_repairs = repairs;
        // Also unfuse AQ heads whose tail marker got squashed.
        for e in self.aq.iter_mut() {
            if let AqEntry::Uop(u) = e {
                if let Some(f) = &u.fused {
                    if f.tail_seq >= restart {
                        let (pred, tail_seq) = (f.pred, f.tail_seq);
                        u.unfuse();
                        self.stats.fusion.record_repair(RepairCase::CatalystFlush);
                        if let Some(o) = self.obs.as_deref_mut() {
                            o.unfused(u.seq, tail_seq);
                        }
                        if let Some(meta) = pred {
                            self.fp.resolve(&meta, false);
                        }
                    }
                }
            }
        }

        // Recompute the nesting census. Only renamed (in-ROB) pending heads
        // count: an AQ head that survived the flush has not incremented the
        // counter yet and will do so at its own Rename — including it here
        // would double-count and falsely saturate the Max Active NCS limit.
        self.active_pending_ncsf = self
            .rob
            .iter()
            .filter(|e| e.uop.is_pending_ncsf())
            .count();

        self.store_sets.flush_inflight();
        self.store_checks.retain(|c| c.store_seq < restart);
        self.pending_flushes.retain(|f| f.restart < restart);

        self.window.rewind(restart);
        self.resume_at = self.now + self.cfg.branch_redirect_penalty;
        if self.redirect_wait.is_some_and(|s| s >= restart) {
            self.redirect_wait = None;
        }
        true
    }

    /// Unfuses the ROB entry at `i` (in-place repair): reverts it to the
    /// plain head µ-op, releases the tail's resources, and records `case`.
    ///
    /// The squashed tail re-enters the pipeline via refetch (flush cases) or
    /// via a fresh dispatch (rename-time unfuse, handled by the caller).
    pub(crate) fn unfuse_rob_entry(&mut self, i: usize, case: RepairCase) {
        let seq = self.rob[i].uop.seq;
        let Some(f) = self.rob[i].uop.unfuse() else {
            return;
        };
        if let Some(o) = self.obs.as_deref_mut() {
            o.unfused(seq, f.tail_seq);
        }
        // Free the tail's destination register if one was allocated.
        if f.tail_inst.rd().is_some() {
            // Head allocation counted head + tail dests.
            if self.rob[i].phys_allocated > 0 {
                let head_dests = self.rob[i].uop.inst.rd().map_or(0, |_| 1);
                if self.rob[i].phys_allocated > head_dests {
                    self.rob[i].phys_allocated -= 1;
                    self.free_phys += 1;
                }
            }
        }
        // The pending pair could not have issued; make the head issuable.
        if let Some(slot) = self.iq_slot_of(seq) {
            let e = self.iq_slots[slot as usize].as_mut().expect("live IQ slot");
            e.ncs_ready = true;
            if e.wakeup_ready() {
                self.iq_ready_insert(seq, slot);
            }
        }
        // Drop the second access from LQ/SQ.
        if let Some(i) = self.lq_index(seq) {
            self.lq[i].acc2 = None;
        }
        if let Some(i) = self.sq_index(seq) {
            self.sq[i].acc2 = None;
        }
        self.stats.fusion.record_repair(case);
    }
}

/// Runs one pipeline stage, attributing its wall-clock to `stage` when a
/// profiler is attached. A free function so `f` can borrow the whole
/// `Pipeline` while the (taken-out) profiler is updated alongside it.
#[inline(always)]
fn run_stage(
    prof: &mut Option<Box<crate::profile::StageProfile>>,
    stage: crate::profile::Stage,
    f: impl FnOnce(),
) {
    match prof.as_deref_mut() {
        Some(p) => {
            let t0 = std::time::Instant::now();
            f();
            p.add(stage, t0);
        }
        None => f(),
    }
}

/// Records a stage skipped by its quiescence gate (profiled runs only).
#[inline(always)]
fn skip_stage(
    prof: &mut Option<Box<crate::profile::StageProfile>>,
    stage: crate::profile::Stage,
) {
    if let Some(p) = prof.as_deref_mut() {
        p.skip(stage);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn completion_board_roundtrip_and_clear() {
        let mut b = CompletionBoard::new();
        b.set(5, 100, 0);
        assert_eq!(b.get(5), Some(100));
        assert_eq!(b.get(6), None);
        b.clear(5);
        assert_eq!(b.get(5), None);
        // Re-setting the same seq is always fine.
        b.set(5, 100, 0);
        b.set(5, 120, 0);
        assert_eq!(b.get(5), Some(120));
    }

    #[test]
    fn completion_board_allows_retired_overwrite() {
        let mut b = CompletionBoard::new();
        b.set(3, 10, 0);
        // Same ring slot, but seq 3 has retired (live floor above it): the
        // slot is dead and may be recycled.
        b.set(3 + BOARD_SLOTS as u64, 999, 4);
        assert_eq!(b.get(3 + BOARD_SLOTS as u64), Some(999));
        assert_eq!(b.get(3), None, "old seq no longer matches the slot");
    }

    #[test]
    #[cfg_attr(not(debug_assertions), ignore = "debug_assert only")]
    #[should_panic(expected = "completion board collision")]
    fn completion_board_rejects_live_overwrite() {
        let mut b = CompletionBoard::new();
        b.set(3, 10, 0);
        // Same slot, different seq, and seq 3 is still in flight.
        b.set(3 + BOARD_SLOTS as u64, 999, 0);
    }
}
