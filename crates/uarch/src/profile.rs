//! Per-stage cycle-attribution profiling for the pipeline hot path.
//!
//! The 10×-the-cycle-loop work (DESIGN.md §15) needs to know *where* the
//! simulator spends its wall-clock before rewriting anything. This module
//! attributes wall-clock time to each pipeline stage per simulated cycle,
//! and counts how often the event-driven gates in [`crate::Pipeline::cycle`]
//! skipped a quiescent stage outright.
//!
//! Profiling is opt-in via the `HELIOS_PROFILE=1` environment variable
//! (the figure binaries' `--profile` flag sets it): with it unset, the
//! pipeline carries a `None` and the hot path pays one branch per cycle —
//! the same zero-cost-when-off contract as the observer. With it set, each
//! stage is bracketed by monotonic-clock reads; per-pipeline totals are
//! folded into a process-global aggregate when the run finalizes, so a
//! multi-threaded sweep produces one combined attribution table
//! (`results/profile.json`).

use std::sync::Mutex;
use std::sync::OnceLock;
use std::time::Instant;

/// The attributed stages, in per-cycle execution order.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Stage {
    /// Ready-event drain: completions due this cycle set wakeup bits.
    Wakeup,
    /// In-order retirement (`stage_commit`).
    Commit,
    /// Post-commit UCH decoupling-queue drain + predictor training.
    UchDrain,
    /// Senior-store TSO drain (`stage_drain_stores`).
    DrainStores,
    /// Deferred store-set violation checks (`process_store_checks`).
    StoreChecks,
    /// Scheduled pipeline flushes (`process_pending_flushes`).
    Flushes,
    /// Wakeup/select and execution start (`stage_issue`).
    Issue,
    /// Rename + Dispatch over the AQ head (`stage_rename_dispatch`).
    RenameDispatch,
    /// Fetch + Decode + fusion marking (`stage_fetch_decode`).
    FetchDecode,
    /// Everything else in the cycle: deadlock breaker, fault injection,
    /// observer occupancy sampling.
    Misc,
}

/// Number of attributed stages.
pub const STAGE_COUNT: usize = 10;

/// Stage display names, indexed by `Stage as usize`.
pub const STAGE_NAMES: [&str; STAGE_COUNT] = [
    "wakeup",
    "commit",
    "uch_drain",
    "drain_stores",
    "store_checks",
    "flushes",
    "issue",
    "rename_dispatch",
    "fetch_decode",
    "misc",
];

/// Per-pipeline stage accounting (wall-clock ns, entered count, skip count).
#[derive(Clone, Debug, Default)]
pub struct StageProfile {
    ns: [u64; STAGE_COUNT],
    runs: [u64; STAGE_COUNT],
    skips: [u64; STAGE_COUNT],
    cycles: u64,
}

impl StageProfile {
    /// Fresh, zeroed accounting.
    pub fn new() -> StageProfile {
        StageProfile::default()
    }

    /// Starts a cycle.
    #[inline]
    pub fn cycle(&mut self) {
        self.cycles += 1;
    }

    /// Attributes the time since `t0` to `stage`.
    #[inline]
    pub fn add(&mut self, stage: Stage, t0: Instant) {
        let i = stage as usize;
        self.ns[i] += t0.elapsed().as_nanos() as u64;
        self.runs[i] += 1;
    }

    /// Records that `stage` was skipped by its quiescence gate this cycle.
    #[inline]
    pub fn skip(&mut self, stage: Stage) {
        self.skips[stage as usize] += 1;
    }
}

/// Process-global aggregate across every profiled pipeline run.
static GLOBAL: Mutex<StageProfile> = Mutex::new(StageProfile {
    ns: [0; STAGE_COUNT],
    runs: [0; STAGE_COUNT],
    skips: [0; STAGE_COUNT],
    cycles: 0,
});

/// Whether profiling was requested for this process (`HELIOS_PROFILE=1`).
/// Read once; the figure binaries' `--profile` flag sets the variable before
/// any pipeline is built.
pub fn enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| std::env::var("HELIOS_PROFILE").is_ok_and(|v| v == "1"))
}

/// Folds one pipeline's accounting into the process-global aggregate.
pub fn global_add(p: &StageProfile) {
    let mut g = GLOBAL.lock().unwrap();
    for i in 0..STAGE_COUNT {
        g.ns[i] += p.ns[i];
        g.runs[i] += p.runs[i];
        g.skips[i] += p.skips[i];
    }
    g.cycles += p.cycles;
}

/// One stage's aggregated numbers in a [`ProfileSnapshot`].
#[derive(Clone, Debug)]
pub struct StageRow {
    /// Stage name (one of [`STAGE_NAMES`]).
    pub stage: &'static str,
    /// Total wall-clock nanoseconds attributed.
    pub ns: u64,
    /// Cycles in which the stage body ran.
    pub runs: u64,
    /// Cycles in which the quiescence gate skipped the stage.
    pub skips: u64,
}

/// The process-global profile, snapshot for reporting.
#[derive(Clone, Debug)]
pub struct ProfileSnapshot {
    /// Per-stage totals, in execution order.
    pub stages: Vec<StageRow>,
    /// Total simulated cycles profiled.
    pub cycles: u64,
}

impl ProfileSnapshot {
    /// Total attributed nanoseconds across all stages.
    pub fn total_ns(&self) -> u64 {
        self.stages.iter().map(|s| s.ns).sum()
    }
}

/// Takes the process-global aggregate, resetting it. Returns `None` when no
/// profiled cycles were recorded (profiling off or nothing ran).
pub fn take_global() -> Option<ProfileSnapshot> {
    let mut g = GLOBAL.lock().unwrap();
    if g.cycles == 0 {
        return None;
    }
    let snap = ProfileSnapshot {
        stages: (0..STAGE_COUNT)
            .map(|i| StageRow {
                stage: STAGE_NAMES[i],
                ns: g.ns[i],
                runs: g.runs[i],
                skips: g.skips[i],
            })
            .collect(),
        cycles: g.cycles,
    };
    *g = StageProfile::default();
    Some(snap)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_aggregate() {
        let mut p = StageProfile::new();
        p.cycle();
        let t0 = Instant::now();
        p.add(Stage::Issue, t0);
        p.skip(Stage::DrainStores);
        assert_eq!(p.runs[Stage::Issue as usize], 1);
        assert_eq!(p.skips[Stage::DrainStores as usize], 1);
        global_add(&p);
        let snap = take_global().expect("cycles recorded");
        assert_eq!(snap.cycles, 1);
        let issue = snap.stages.iter().find(|s| s.stage == "issue").unwrap();
        assert_eq!(issue.runs, 1);
        // Taking drains the aggregate.
        assert!(take_global().is_none());
    }
}
