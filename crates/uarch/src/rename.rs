//! Rename + Dispatch: RAT updates, physical-register and ROB/IQ/LQ/SQ
//! allocation, and the Helios tail-nucleus validation/repair path (§IV-B/C).

use crate::pipeline::{IqEntry, LqEntry, Pipeline, RobEntry, SqEntry, TailUndo, Waiter};
use crate::uop::{AqEntry, DynUop};
use crate::DispatchStall;
use helios_core::{Idiom, RepairCase};
use helios_emu::{Retired, UopSource};

impl<I: UopSource> Pipeline<I> {
    /// Converts the AQ tail marker of an aborted pair back into a normal
    /// µ-op (the paper's "marked as not fused in the AQ through the NCS
    /// Tag").
    pub(crate) fn revive_tail_marker(&mut self, f: &crate::uop::Fused) {
        for e in self.aq.iter_mut() {
            if let AqEntry::Tail { seq, .. } = e {
                if *seq == f.tail_seq {
                    let mut tail = DynUop::new(&Retired {
                        seq: f.tail_seq,
                        pc: f.tail_pc,
                        inst: f.tail_inst,
                        next_pc: f.tail_pc + 4,
                        mem: f.tail_mem,
                        rd_value: None,
                    });
                    tail.fused = None;
                    *e = AqEntry::Uop(tail);
                    return;
                }
            }
        }
    }
}

/// What blocked an allocation attempt.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum AllocBlock {
    Phys,
    Rob,
    Iq,
    Lq,
    Sq,
}

impl AllocBlock {
    fn dispatch_stall(self) -> Option<DispatchStall> {
        match self {
            AllocBlock::Phys => None,
            AllocBlock::Rob => Some(DispatchStall::Rob),
            AllocBlock::Iq => Some(DispatchStall::Iq),
            AllocBlock::Lq => Some(DispatchStall::Lq),
            AllocBlock::Sq => Some(DispatchStall::Sq),
        }
    }
}

impl<I: UopSource> Pipeline<I> {
    /// One cycle of Rename + Dispatch over the AQ head.
    pub(crate) fn stage_rename_dispatch(&mut self) {
        let mut budget = self.cfg.rename_width as i64;
        let mut progressed = false;
        let mut block: Option<AllocBlock> = None;

        while budget > 0 {
            let Some(front) = self.aq.front() else { break };
            match *front {
                AqEntry::Uop(mut u) => {
                    // Nesting limit (§IV-B2): a pending NCSF head entering
                    // Rename while Max Active NCS is saturated behaves as
                    // unfused; the tail is unmarked in the AQ.
                    if u.is_pending_ncsf()
                        && self.active_pending_ncsf >= self.cfg.helios.max_nest
                    {
                        // is_pending_ncsf() implies `fused` is Some, so the
                        // unfuse always yields the pair metadata.
                        if let Some(f) = u.unfuse() {
                            self.revive_tail_marker(&f);
                            self.stats.ncsf_nest_aborts += 1;
                            if let Some(o) = self.obs.as_deref_mut() {
                                o.unfused(u.seq, f.tail_seq);
                            }
                            if let Some(AqEntry::Uop(front)) = self.aq.front_mut() {
                                front.fused = None;
                            }
                        }
                    }
                    if let Err(b) = self.check_capacity(&u) {
                        block = Some(b);
                        break;
                    }
                    self.aq.pop_front();
                    if u.is_pending_ncsf() {
                        self.active_pending_ncsf += 1;
                    }
                    self.alloc_uop(u);
                    budget -= 1;
                    progressed = true;
                }
                AqEntry::Tail { seq, pc, head_seq } => {
                    match self.process_tail_marker(seq, pc, head_seq) {
                        Ok(extra_slot) => {
                            self.aq.pop_front();
                            budget -= 1 + extra_slot as i64;
                            progressed = true;
                        }
                        Err(b) => {
                            block = Some(b);
                            break;
                        }
                    }
                }
            }
        }

        // A cycle counts as a Rename/Dispatch structural stall (Fig. 9) when
        // the stage ended blocked on a resource with work still waiting —
        // whether or not some younger-stage progress happened first.
        if progressed || self.aq.is_empty() {
            self.last_dispatch_progress = self.now;
        }
        if let Some(b) = block {
            match b.dispatch_stall() {
                Some(d) => self.stats.record_dispatch_stall(d),
                None => self.stats.rename_stall_cycles += 1,
            }
        }
    }

    /// Checks whether `u` can be renamed and dispatched this cycle.
    fn check_capacity(&self, u: &DynUop) -> Result<(), AllocBlock> {
        let dest_count = u.dests().count();
        if self.free_phys < dest_count {
            return Err(AllocBlock::Phys);
        }
        if self.rob.len() >= self.cfg.rob_size {
            return Err(AllocBlock::Rob);
        }
        if self.iq_len >= self.cfg.iq_size {
            return Err(AllocBlock::Iq);
        }
        if u.lq_accesses().0.is_some() && self.lq.len() >= self.cfg.lq_size {
            return Err(AllocBlock::Lq);
        }
        if u.sq_accesses().0.is_some() && self.sq.len() >= self.cfg.sq_size {
            return Err(AllocBlock::Sq);
        }
        Ok(())
    }

    /// Renames and dispatches `u` (capacity already verified).
    fn alloc_uop(&mut self, u: DynUop) {
        let seq = u.seq;
        let pending = u.is_pending_ncsf();
        if self.obs.is_some() {
            let now = self.now;
            if let Some(o) = self.obs.as_deref_mut() {
                o.renamed(seq, now);
            }
        }

        // --- Rename sources. ---
        // For pending NCSF'd µ-ops only the head's sources are captured now;
        // the tail's are captured (possibly corrected, §IV-B2 RaW) when the
        // tail nucleus reaches Rename.
        // Stores split into STA (address: rs1) and STD (data: rs2) phases,
        // so a store's address can be exposed to waiting loads before its
        // data is produced.
        // At most 2 head + 2 tail sources per side; captured into fixed
        // buffers so dispatch allocates nothing.
        let mut srcs = [0u64; 8];
        let mut nsrc = 0usize;
        let mut data_srcs = [0u64; 4];
        let mut ndata = 0usize;
        let head_rd = u.inst.rd();
        let capture =
            |rat: &[Option<u64>; 32], buf: &mut [u64], n: &mut usize, reg: helios_isa::Reg| {
                if let Some(p) = rat[reg.index()] {
                    if p != seq && !buf[..*n].contains(&p) {
                        assert!(*n < buf.len(), "source capture overflow");
                        buf[*n] = p;
                        *n += 1;
                    }
                }
            };
        if let helios_isa::Inst::Store { rs1, rs2, .. } = u.inst {
            if !rs1.is_zero() {
                capture(&self.rat, &mut srcs, &mut nsrc, rs1);
            }
            if !rs2.is_zero() {
                capture(&self.rat, &mut data_srcs, &mut ndata, rs2);
            }
        } else {
            for s in u.inst.sources() {
                capture(&self.rat, &mut srcs, &mut nsrc, s);
            }
        }
        if let Some(f) = &u.fused {
            if !pending {
                if let helios_isa::Inst::Store { rs1, rs2, .. } = f.tail_inst {
                    // Store-pair tail: address source gates STA, data gates
                    // STD. (Stores have no destinations, so no tail source
                    // can be internal to the fused µ-op.)
                    if !rs1.is_zero() {
                        capture(&self.rat, &mut srcs, &mut nsrc, rs1);
                    }
                    if !rs2.is_zero() {
                        capture(&self.rat, &mut data_srcs, &mut ndata, rs2);
                    }
                } else {
                    for s in f.tail_inst.sources() {
                        // Sources fed by the head inside the fused µ-op
                        // (e.g. the address of an indexed load) are internal.
                        if head_rd == Some(s) {
                            continue;
                        }
                        capture(&self.rat, &mut srcs, &mut nsrc, s);
                    }
                }
            }
        }

        // --- Rename destinations. ---
        let mut undo = [(helios_isa::Reg::ZERO, None); 2];
        let mut undo_len = 0u8;
        let mut phys_allocated = 0;
        if let Some(rd) = u.inst.rd() {
            undo[undo_len as usize] = (rd, self.rat[rd.index()]);
            undo_len += 1;
            self.rat[rd.index()] = Some(seq);
            phys_allocated += 1;
        }
        if let Some(f) = &u.fused {
            if let Some(trd) = f.tail_inst.rd() {
                phys_allocated += 1; // renamed together with the head's
                if pending {
                    // WaR protection (§IV-B2): the RAT is not updated for the
                    // tail's destination until the tail nucleus renames.
                } else {
                    undo[undo_len as usize] = (trd, self.rat[trd.index()]);
                    undo_len += 1;
                    self.rat[trd.index()] = Some(seq);
                }
            }
        }
        self.free_phys -= phys_allocated;

        // --- Dispatch to IQ / LQ / SQ / memdep. ---
        let fu = u.fu();
        let mut memdep_wait = None;
        let (lacc, lacc2) = u.lq_accesses();
        if let Some(acc) = lacc {
            if let Some(sseq) = self.store_sets.load_dependency(u.pc) {
                if !self.producer_ready(sseq, self.now) {
                    memdep_wait = Some(sseq);
                }
            }
            self.lq.push_back(LqEntry {
                seq,
                pc: u.pc,
                acc,
                acc2: lacc2,
                issue_cycle: None,
            });
        }
        let (sacc, sacc2) = u.sq_accesses();
        if let Some(acc) = sacc {
            self.store_sets.store_dispatched(u.pc, seq);
            self.sq.push_back(SqEntry {
                seq,
                pc: u.pc,
                acc,
                acc2: sacc2,
                addr_known_at: None,
                senior: false,
                draining_until: None,
            });
        }

        // Take an IQ slot (capacity already verified) and register a wakeup
        // waiter with every producer that has not completed yet; producers
        // already complete are dropped here, so the pending counts start at
        // exactly the number of outstanding completions.
        let slot = self.iq_free.pop().expect("IQ capacity checked");
        let token = self.iq_token;
        self.iq_token += 1;
        let mut pending_addr = 0u32;
        for &p in &srcs[..nsrc] {
            if !self.producer_ready(p, self.now) {
                self.iq_waiters[(p as usize) % crate::pipeline::BOARD_SLOTS]
                    .push(Waiter { token, slot, is_data: false });
                pending_addr += 1;
            }
        }
        let mut pending_data = 0u32;
        for &p in &data_srcs[..ndata] {
            if !self.producer_ready(p, self.now) {
                self.iq_waiters[(p as usize) % crate::pipeline::BOARD_SLOTS]
                    .push(Waiter { token, slot, is_data: true });
                pending_data += 1;
            }
        }
        self.iq_slots[slot as usize] = Some(IqEntry {
            seq,
            token,
            fu,
            pending_addr,
            pending_data,
            sta_done: false,
            ncs_ready: !pending,
            memdep_wait,
        });
        self.iq_len += 1;
        if !pending && pending_addr == 0 {
            self.iq_ready_insert(seq, slot);
        }
        // Register the ROB slot in the seq→position ring and scrub any stale
        // wakeup bit left in this µ-op's slot by a long-retired (or
        // squashed) occupant.
        self.rob_pos[(seq as usize) % crate::pipeline::BOARD_SLOTS] =
            (seq + 1, self.rob_abs_head);
        self.rob_abs_head += 1;
        self.clear_ready_bit(seq);
        self.rob.push_back(RobEntry {
            mispredicted: u.mispredicted,
            conditional: u.conditional,
            indirect: u.indirect,
            uop: u,
            iq_slot: slot,
            phys_allocated,
            undo,
            undo_len,
        });
    }

    /// Processes a tail-nucleus marker at Rename/Dispatch: validate the
    /// pending NCSF'd µ-op, or unfuse it (repair cases 2/3/4).
    ///
    /// Returns `Ok(extra_slot_used)` or the blocking resource.
    fn process_tail_marker(&mut self, seq: u64, pc: u64, head_seq: u64) -> Result<bool, AllocBlock> {
        let Some(hi) = self.rob_index(head_seq) else {
            // The head was unfused by a flush after this marker survived; the
            // marker is stale. (Defensive: normally markers and heads flush
            // together.)
            return Ok(false);
        };
        let Some(f) = self.rob[hi].uop.fused else {
            return Ok(false);
        };
        debug_assert_eq!(f.tail_seq, seq);
        let hz = f.hazards;
        let must_unfuse =
            hz.deadlock || hz.serializing || (f.idiom == Idiom::StorePair && hz.store_in_catalyst);

        if must_unfuse {
            // (counter drops in both branches below)
            // The tail re-dispatches as its own µ-op, occupying a second
            // dispatch slot (§IV-C cases 2/3/4).
            let mut tail = DynUop::new(&Retired {
                seq,
                pc,
                inst: f.tail_inst,
                next_pc: pc + 4,
                mem: f.tail_mem,
                rd_value: None,
            });
            tail.fused = None;
            self.check_capacity(&tail)?;
            let case = if hz.deadlock {
                RepairCase::Deadlock
            } else if hz.serializing {
                RepairCase::Serializing
            } else {
                RepairCase::StoreInCatalyst
            };
            let pred = f.pred;
            self.unfuse_rob_entry(hi, case);
            if let Some(meta) = pred {
                self.fp.resolve(&meta, false);
            }
            self.active_pending_ncsf -= 1;
            self.alloc_uop(tail);
            return Ok(true);
        }

        // Validated (§IV-B2): perform the tail's deferred destination rename
        // and source capture, then set NCS Ready.
        if let Some(trd) = f.tail_inst.rd() {
            self.tail_undos.push(TailUndo {
                tail_seq: seq,
                reg: trd,
                prev: self.rat[trd.index()],
            });
            self.rat[trd.index()] = Some(head_seq);
        }
        let mut extra_srcs = [0u64; 4];
        let mut nsrc = 0usize;
        let mut extra_data = [0u64; 4];
        let mut ndata = 0usize;
        let capture_tail =
            |reg: helios_isa::Reg, buf: &mut [u64], n: &mut usize, rat: &[Option<u64>; 32]| {
                if reg.is_zero() {
                    return;
                }
                if let Some(p) = rat[reg.index()] {
                    if p != head_seq {
                        buf[*n] = p;
                        *n += 1;
                    }
                }
            };
        if let helios_isa::Inst::Store { rs1, rs2, .. } = f.tail_inst {
            capture_tail(rs1, &mut extra_srcs, &mut nsrc, &self.rat);
            capture_tail(rs2, &mut extra_data, &mut ndata, &self.rat);
        } else {
            for s in f.tail_inst.sources() {
                capture_tail(s, &mut extra_srcs, &mut nsrc, &self.rat);
            }
        }
        // The tail's sources join the head's wakeup gates. Note these
        // producers can be *younger* than the head (catalyst µ-ops between
        // the nuclei); a flush can squash such a producer while the head
        // survives, but the registration stays valid — the trace re-fetches
        // the same sequence number, and its (re-)completion delivers the
        // wakeup. A duplicate of an already-registered producer just adds a
        // second registration + count, which the same completion drains.
        if let Some(slot) = self.iq_slot_of(head_seq) {
            let token = self
                .iq_slots[slot as usize]
                .as_ref()
                .expect("live IQ slot")
                .token;
            let mut add_addr = 0u32;
            for &p in &extra_srcs[..nsrc] {
                if !self.producer_ready(p, self.now) {
                    self.iq_waiters[(p as usize) % crate::pipeline::BOARD_SLOTS]
                        .push(Waiter { token, slot, is_data: false });
                    add_addr += 1;
                }
            }
            let mut add_data = 0u32;
            for &p in &extra_data[..ndata] {
                if !self.producer_ready(p, self.now) {
                    self.iq_waiters[(p as usize) % crate::pipeline::BOARD_SLOTS]
                        .push(Waiter { token, slot, is_data: true });
                    add_data += 1;
                }
            }
            let e = self.iq_slots[slot as usize].as_mut().expect("live IQ slot");
            e.pending_addr += add_addr;
            e.pending_data += add_data;
            e.ncs_ready = true;
            if e.wakeup_ready() {
                let seq = e.seq;
                self.iq_ready_insert(seq, slot);
            }
        }
        if let Some(ff) = self.rob[hi].uop.fused.as_mut() {
            ff.pending = false;
        }
        if self.obs.is_some() {
            let now = self.now;
            if let Some(o) = self.obs.as_deref_mut() {
                o.tail_renamed(seq, now);
            }
        }
        if hz.raw_dep {
            self.stats.fusion.record_repair(RepairCase::RawSourceFix);
        }
        self.active_pending_ncsf -= 1;
        Ok(false)
    }
}
