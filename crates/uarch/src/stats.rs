//! Simulation statistics: cycles, IPC, stall breakdowns (Fig. 9), branch and
//! cache behaviour, and the fusion statistics from `helios-core`.
//!
//! `SimStats` stays a plain struct of `u64` fields — the hot path increments
//! them directly — and [`SimStats::export`] projects it into the
//! self-describing [`StatsRegistry`] view after the run.

use crate::obs::{StatsRegistry, Unit};
use helios_core::{FusionStats, Idiom, RepairCase, ALL_IDIOMS};

/// Why Dispatch could not move a µ-op this cycle.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum DispatchStall {
    Rob,
    Iq,
    Lq,
    Sq,
}

/// Aggregate statistics for one simulation run.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct SimStats {
    /// Total simulated cycles.
    pub cycles: u64,
    /// Committed architectural instructions (a fused pair counts as 2).
    pub instructions: u64,
    /// Committed µ-ops (a fused pair counts as 1).
    pub uops: u64,
    /// Committed memory instructions (loads + stores, pre-fusion count).
    pub mem_instructions: u64,
    /// Committed loads / stores (pre-fusion count).
    pub loads: u64,
    pub stores: u64,

    /// Cycles in which Rename made zero progress because no physical
    /// register was available (while work was waiting).
    pub rename_stall_cycles: u64,
    /// Cycles in which Dispatch made zero progress, by blocking resource.
    pub dispatch_stall_rob: u64,
    pub dispatch_stall_iq: u64,
    pub dispatch_stall_lq: u64,
    pub dispatch_stall_sq: u64,
    /// Cycles the frontend was stalled waiting for a mispredicted branch to
    /// resolve.
    pub fetch_stall_redirect: u64,

    /// Conditional branches and mispredictions.
    pub branches: u64,
    pub branch_mispredicts: u64,
    /// Indirect jumps and target mispredictions.
    pub indirects: u64,
    pub indirect_mispredicts: u64,

    /// Memory-order violation flushes (store-set trained).
    pub memdep_flushes: u64,
    /// Predicted pairs abandoned because the Rename nesting limit
    /// (Max Active NCS) was saturated (§IV-B2).
    pub ncsf_nest_aborts: u64,
    /// Fusion-repair flushes (§IV-C cases 5/6) — also counted in `fusion`.
    pub fusion_flushes: u64,

    /// L1D accesses and misses (demand loads + store drains).
    pub l1d_accesses: u64,
    pub l1d_misses: u64,
    pub l2_misses: u64,
    pub l3_misses: u64,
    /// Store-to-load forwards.
    pub stlf_forwards: u64,
    /// UCH decoupling-queue records dropped (queue full) / drained.
    pub uch_queue_dropped: u64,
    pub uch_queue_drained: u64,

    /// Pending NCSF pairs unfused by the resource-deadlock breaker
    /// (repair case 2 machinery) — also counted in `fusion` repairs.
    pub deadlock_breaks: u64,
    /// Faults injected by an attached `FaultInjector`.
    pub injected_faults: u64,
    /// Commit records verified by an attached lockstep `OracleChecker`.
    pub oracle_checked: u64,

    /// Fusion statistics.
    pub fusion: FusionStats,
}

impl SimStats {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Records a dispatch stall cycle attributed to `cause`.
    pub fn record_dispatch_stall(&mut self, cause: DispatchStall) {
        match cause {
            DispatchStall::Rob => self.dispatch_stall_rob += 1,
            DispatchStall::Iq => self.dispatch_stall_iq += 1,
            DispatchStall::Lq => self.dispatch_stall_lq += 1,
            DispatchStall::Sq => self.dispatch_stall_sq += 1,
        }
    }

    /// Total dispatch stall cycles.
    pub fn dispatch_stalls(&self) -> u64 {
        self.dispatch_stall_rob + self.dispatch_stall_iq + self.dispatch_stall_lq
            + self.dispatch_stall_sq
    }

    /// Dispatch + rename structural stalls as a percentage of cycles (Fig 9).
    pub fn stall_pct(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        100.0 * (self.dispatch_stalls() + self.rename_stall_cycles) as f64 / self.cycles as f64
    }

    /// Branch misprediction rate in MPKI.
    pub fn branch_mpki(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            1000.0 * (self.branch_mispredicts + self.indirect_mispredicts) as f64
                / self.instructions as f64
        }
    }

    /// Fusion MPKI (Table III).
    pub fn fusion_mpki(&self) -> f64 {
        self.fusion.mpki(self.instructions)
    }

    /// Fused pairs as % of dynamic instructions (both nucleii counted):
    /// the Fig. 2 metric.
    pub fn fused_pct_of_uops(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            100.0 * (2 * self.fusion.fused_pairs()) as f64 / self.instructions as f64
        }
    }

    /// Fused memory pairs as % of dynamic memory instructions (Fig. 8).
    pub fn fused_pct_of_mem(&self) -> (f64, f64) {
        if self.mem_instructions == 0 {
            return (0.0, 0.0);
        }
        let denom = self.mem_instructions as f64;
        (
            100.0 * (2 * self.fusion.csf_pairs) as f64 / denom,
            100.0 * (2 * self.fusion.ncsf_pairs) as f64 / denom,
        )
    }

    /// Exports every counter plus the derived metrics into `reg` as
    /// self-describing entries. Entry names and units are stable — the
    /// schema snapshot test pins them.
    pub fn export(&self, reg: &mut StatsRegistry) {
        reg.counter("cycles", "total simulated cycles", Unit::Cycles, self.cycles);
        reg.counter(
            "instructions",
            "committed architectural instructions (a fused pair counts as 2)",
            Unit::Instructions,
            self.instructions,
        );
        reg.counter("uops", "committed µ-ops (a fused pair counts as 1)", Unit::Uops, self.uops);
        reg.counter(
            "mem_instructions",
            "committed memory instructions (pre-fusion count)",
            Unit::Instructions,
            self.mem_instructions,
        );
        reg.counter("loads", "committed loads (pre-fusion count)", Unit::Instructions, self.loads);
        reg.counter("stores", "committed stores (pre-fusion count)", Unit::Instructions, self.stores);

        reg.counter(
            "rename_stall_cycles",
            "cycles Rename made zero progress for want of physical registers",
            Unit::Cycles,
            self.rename_stall_cycles,
        );
        reg.counter(
            "dispatch_stall_rob",
            "cycles Dispatch stalled on a full ROB",
            Unit::Cycles,
            self.dispatch_stall_rob,
        );
        reg.counter(
            "dispatch_stall_iq",
            "cycles Dispatch stalled on a full IQ",
            Unit::Cycles,
            self.dispatch_stall_iq,
        );
        reg.counter(
            "dispatch_stall_lq",
            "cycles Dispatch stalled on a full LQ",
            Unit::Cycles,
            self.dispatch_stall_lq,
        );
        reg.counter(
            "dispatch_stall_sq",
            "cycles Dispatch stalled on a full SQ",
            Unit::Cycles,
            self.dispatch_stall_sq,
        );
        reg.counter(
            "fetch_stall_redirect",
            "cycles the frontend waited on a mispredicted branch",
            Unit::Cycles,
            self.fetch_stall_redirect,
        );

        reg.counter("branches", "committed conditional branches", Unit::Instructions, self.branches);
        reg.counter(
            "branch_mispredicts",
            "mispredicted conditional branches",
            Unit::Events,
            self.branch_mispredicts,
        );
        reg.counter("indirects", "committed indirect jumps", Unit::Instructions, self.indirects);
        reg.counter(
            "indirect_mispredicts",
            "mispredicted indirect-jump targets",
            Unit::Events,
            self.indirect_mispredicts,
        );

        reg.counter(
            "memdep_flushes",
            "memory-order violation flushes",
            Unit::Events,
            self.memdep_flushes,
        );
        reg.counter(
            "ncsf_nest_aborts",
            "predicted pairs abandoned at the Max Active NCS limit",
            Unit::Events,
            self.ncsf_nest_aborts,
        );
        reg.counter(
            "fusion_flushes",
            "fusion-repair pipeline flushes (§IV-C cases 5/6)",
            Unit::Events,
            self.fusion_flushes,
        );

        reg.counter("l1d_accesses", "L1D accesses (demand loads + store drains)", Unit::Events, self.l1d_accesses);
        reg.counter("l1d_misses", "L1D misses", Unit::Events, self.l1d_misses);
        reg.counter("l2_misses", "L2 misses", Unit::Events, self.l2_misses);
        reg.counter("l3_misses", "L3 misses", Unit::Events, self.l3_misses);
        reg.counter("stlf_forwards", "store-to-load forwards", Unit::Events, self.stlf_forwards);
        reg.counter(
            "uch_queue_dropped",
            "UCH decoupling-queue records dropped (queue full)",
            Unit::Events,
            self.uch_queue_dropped,
        );
        reg.counter(
            "uch_queue_drained",
            "UCH decoupling-queue records drained",
            Unit::Events,
            self.uch_queue_drained,
        );

        reg.counter(
            "deadlock_breaks",
            "pending pairs unfused by the resource-deadlock breaker",
            Unit::Events,
            self.deadlock_breaks,
        );
        reg.counter("injected_faults", "faults injected by an attached FaultInjector", Unit::Events, self.injected_faults);
        reg.counter(
            "oracle_checked",
            "commit records verified by an attached OracleChecker",
            Unit::Events,
            self.oracle_checked,
        );

        // Fusion statistics (helios-core) under the `fusion.` prefix.
        let f = &self.fusion;
        reg.counter("fusion.csf_pairs", "committed consecutive fused pairs", Unit::Pairs, f.csf_pairs);
        reg.counter("fusion.ncsf_pairs", "committed non-consecutive fused pairs", Unit::Pairs, f.ncsf_pairs);
        for idiom in ALL_IDIOMS {
            reg.counter(
                idiom_stat_name(idiom),
                idiom.name(),
                Unit::Pairs,
                f.by_idiom[idiom.index()],
            );
        }
        reg.counter("fusion.contiguous", "committed memory pairs: contiguous accesses", Unit::Pairs, f.contiguous);
        reg.counter("fusion.overlapping", "committed memory pairs: overlapping accesses", Unit::Pairs, f.overlapping);
        reg.counter("fusion.same_line", "committed memory pairs: same cache line", Unit::Pairs, f.same_line);
        reg.counter("fusion.next_line", "committed memory pairs: adjacent cache line", Unit::Pairs, f.next_line);
        reg.counter("fusion.dbr_pairs", "committed pairs with different base registers", Unit::Pairs, f.dbr_pairs);
        reg.counter("fusion.asymmetric_pairs", "committed pairs with different access sizes", Unit::Pairs, f.asymmetric_pairs);
        reg.counter(
            "fusion.ncsf_distance_sum",
            "sum of head→tail distances of committed NCSF pairs",
            Unit::Uops,
            f.ncsf_distance_sum,
        );
        reg.counter("fusion.predictions", "fusion predictions issued", Unit::Events, f.predictions);
        reg.counter(
            "fusion.predictions_correct",
            "predictions committed as fused pairs",
            Unit::Events,
            f.predictions_correct,
        );
        reg.counter("fusion.mispredictions", "predictions unfused or flushed", Unit::Events, f.mispredictions);
        for case in RepairCase::ALL {
            let (name, desc) = repair_stat_entry(case);
            reg.counter(name, desc, Unit::Events, f.repairs[case.index()]);
        }

        // Derived metrics.
        reg.gauge("ipc", "instructions per cycle", Unit::Ratio, self.ipc());
        reg.gauge(
            "stall_pct",
            "rename + dispatch structural stalls as % of cycles",
            Unit::Percent,
            self.stall_pct(),
        );
        reg.gauge("branch_mpki", "branch mispredictions per kilo-instruction", Unit::Mpki, self.branch_mpki());
        reg.gauge("fusion.mpki", "fusion mispredictions per kilo-instruction", Unit::Mpki, self.fusion_mpki());
        reg.gauge(
            "fusion.fused_pct_of_uops",
            "fused nucleii as % of dynamic instructions",
            Unit::Percent,
            self.fused_pct_of_uops(),
        );
    }

    /// The registry view of these statistics.
    pub fn registry(&self) -> StatsRegistry {
        let mut reg = StatsRegistry::new();
        self.export(&mut reg);
        reg
    }

    /// Lossless flat `name → value` projection of *every* raw counter, in a
    /// stable order — the sweep checkpoint-journal serialization.
    /// [`SimStats::from_kv`] inverts it exactly, so a cell restored from a
    /// journal reproduces byte-identical report output. Derived metrics
    /// (IPC, MPKI, …) are recomputed, never stored.
    ///
    /// The exhaustive destructuring below is deliberate: adding a field to
    /// `SimStats` or `FusionStats` without extending this projection is a
    /// compile error, so the journal format can never silently drop data.
    pub fn to_kv(&self) -> Vec<(String, u64)> {
        let SimStats {
            cycles,
            instructions,
            uops,
            mem_instructions,
            loads,
            stores,
            rename_stall_cycles,
            dispatch_stall_rob,
            dispatch_stall_iq,
            dispatch_stall_lq,
            dispatch_stall_sq,
            fetch_stall_redirect,
            branches,
            branch_mispredicts,
            indirects,
            indirect_mispredicts,
            memdep_flushes,
            ncsf_nest_aborts,
            fusion_flushes,
            l1d_accesses,
            l1d_misses,
            l2_misses,
            l3_misses,
            stlf_forwards,
            uch_queue_dropped,
            uch_queue_drained,
            deadlock_breaks,
            injected_faults,
            oracle_checked,
            fusion,
        } = self;
        let FusionStats {
            csf_pairs,
            ncsf_pairs,
            by_idiom,
            contiguous,
            overlapping,
            same_line,
            next_line,
            dbr_pairs,
            asymmetric_pairs,
            ncsf_distance_sum,
            predictions,
            predictions_correct,
            mispredictions,
            repairs,
        } = fusion;
        let mut kv: Vec<(String, u64)> = [
            ("cycles", *cycles),
            ("instructions", *instructions),
            ("uops", *uops),
            ("mem_instructions", *mem_instructions),
            ("loads", *loads),
            ("stores", *stores),
            ("rename_stall_cycles", *rename_stall_cycles),
            ("dispatch_stall_rob", *dispatch_stall_rob),
            ("dispatch_stall_iq", *dispatch_stall_iq),
            ("dispatch_stall_lq", *dispatch_stall_lq),
            ("dispatch_stall_sq", *dispatch_stall_sq),
            ("fetch_stall_redirect", *fetch_stall_redirect),
            ("branches", *branches),
            ("branch_mispredicts", *branch_mispredicts),
            ("indirects", *indirects),
            ("indirect_mispredicts", *indirect_mispredicts),
            ("memdep_flushes", *memdep_flushes),
            ("ncsf_nest_aborts", *ncsf_nest_aborts),
            ("fusion_flushes", *fusion_flushes),
            ("l1d_accesses", *l1d_accesses),
            ("l1d_misses", *l1d_misses),
            ("l2_misses", *l2_misses),
            ("l3_misses", *l3_misses),
            ("stlf_forwards", *stlf_forwards),
            ("uch_queue_dropped", *uch_queue_dropped),
            ("uch_queue_drained", *uch_queue_drained),
            ("deadlock_breaks", *deadlock_breaks),
            ("injected_faults", *injected_faults),
            ("oracle_checked", *oracle_checked),
            ("fusion.csf_pairs", *csf_pairs),
            ("fusion.ncsf_pairs", *ncsf_pairs),
            ("fusion.contiguous", *contiguous),
            ("fusion.overlapping", *overlapping),
            ("fusion.same_line", *same_line),
            ("fusion.next_line", *next_line),
            ("fusion.dbr_pairs", *dbr_pairs),
            ("fusion.asymmetric_pairs", *asymmetric_pairs),
            ("fusion.ncsf_distance_sum", *ncsf_distance_sum),
            ("fusion.predictions", *predictions),
            ("fusion.predictions_correct", *predictions_correct),
            ("fusion.mispredictions", *mispredictions),
        ]
        .into_iter()
        .map(|(k, v)| (k.to_string(), v))
        .collect();
        for (i, v) in by_idiom.iter().enumerate() {
            kv.push((format!("fusion.by_idiom.{i}"), *v));
        }
        for (i, v) in repairs.iter().enumerate() {
            kv.push((format!("fusion.repairs.{i}"), *v));
        }
        kv
    }

    /// Rebuilds a `SimStats` from a [`SimStats::to_kv`] projection.
    ///
    /// # Errors
    ///
    /// Unknown keys, out-of-range array indices, and incomplete projections
    /// are all errors — a checkpoint journal written by a different stats
    /// schema must be rejected (and its cell re-simulated), never partially
    /// applied.
    pub fn from_kv<'a, I>(kv: I) -> Result<SimStats, String>
    where
        I: IntoIterator<Item = (&'a str, u64)>,
    {
        let mut out = SimStats::default();
        let mut seen = 0usize;
        for (k, v) in kv {
            let slot: &mut u64 = if let Some(i) = k.strip_prefix("fusion.by_idiom.") {
                let i: usize = i.parse().map_err(|_| format!("bad idiom index `{k}`"))?;
                out.fusion
                    .by_idiom
                    .get_mut(i)
                    .ok_or_else(|| format!("idiom index out of range `{k}`"))?
            } else if let Some(i) = k.strip_prefix("fusion.repairs.") {
                let i: usize = i.parse().map_err(|_| format!("bad repair index `{k}`"))?;
                out.fusion
                    .repairs
                    .get_mut(i)
                    .ok_or_else(|| format!("repair index out of range `{k}`"))?
            } else {
                match k {
                    "cycles" => &mut out.cycles,
                    "instructions" => &mut out.instructions,
                    "uops" => &mut out.uops,
                    "mem_instructions" => &mut out.mem_instructions,
                    "loads" => &mut out.loads,
                    "stores" => &mut out.stores,
                    "rename_stall_cycles" => &mut out.rename_stall_cycles,
                    "dispatch_stall_rob" => &mut out.dispatch_stall_rob,
                    "dispatch_stall_iq" => &mut out.dispatch_stall_iq,
                    "dispatch_stall_lq" => &mut out.dispatch_stall_lq,
                    "dispatch_stall_sq" => &mut out.dispatch_stall_sq,
                    "fetch_stall_redirect" => &mut out.fetch_stall_redirect,
                    "branches" => &mut out.branches,
                    "branch_mispredicts" => &mut out.branch_mispredicts,
                    "indirects" => &mut out.indirects,
                    "indirect_mispredicts" => &mut out.indirect_mispredicts,
                    "memdep_flushes" => &mut out.memdep_flushes,
                    "ncsf_nest_aborts" => &mut out.ncsf_nest_aborts,
                    "fusion_flushes" => &mut out.fusion_flushes,
                    "l1d_accesses" => &mut out.l1d_accesses,
                    "l1d_misses" => &mut out.l1d_misses,
                    "l2_misses" => &mut out.l2_misses,
                    "l3_misses" => &mut out.l3_misses,
                    "stlf_forwards" => &mut out.stlf_forwards,
                    "uch_queue_dropped" => &mut out.uch_queue_dropped,
                    "uch_queue_drained" => &mut out.uch_queue_drained,
                    "deadlock_breaks" => &mut out.deadlock_breaks,
                    "injected_faults" => &mut out.injected_faults,
                    "oracle_checked" => &mut out.oracle_checked,
                    "fusion.csf_pairs" => &mut out.fusion.csf_pairs,
                    "fusion.ncsf_pairs" => &mut out.fusion.ncsf_pairs,
                    "fusion.contiguous" => &mut out.fusion.contiguous,
                    "fusion.overlapping" => &mut out.fusion.overlapping,
                    "fusion.same_line" => &mut out.fusion.same_line,
                    "fusion.next_line" => &mut out.fusion.next_line,
                    "fusion.dbr_pairs" => &mut out.fusion.dbr_pairs,
                    "fusion.asymmetric_pairs" => &mut out.fusion.asymmetric_pairs,
                    "fusion.ncsf_distance_sum" => &mut out.fusion.ncsf_distance_sum,
                    "fusion.predictions" => &mut out.fusion.predictions,
                    "fusion.predictions_correct" => &mut out.fusion.predictions_correct,
                    "fusion.mispredictions" => &mut out.fusion.mispredictions,
                    _ => return Err(format!("unknown stats key `{k}`")),
                }
            };
            *slot = v;
            seen += 1;
        }
        let expect = SimStats::default().to_kv().len();
        if seen != expect {
            return Err(format!("incomplete stats projection: {seen} of {expect} keys"));
        }
        Ok(out)
    }
}

/// Stable registry name for an idiom's pair counter.
fn idiom_stat_name(idiom: Idiom) -> &'static str {
    match idiom {
        Idiom::LoadPair => "fusion.idiom.load_pair",
        Idiom::StorePair => "fusion.idiom.store_pair",
        Idiom::LuiAddi => "fusion.idiom.lui_addi",
        Idiom::AuipcAddi => "fusion.idiom.auipc_addi",
        Idiom::SlliAdd => "fusion.idiom.slli_add",
        Idiom::SlliSrli => "fusion.idiom.slli_srli",
        Idiom::IndexedLoad => "fusion.idiom.indexed_load",
        Idiom::LoadGlobal => "fusion.idiom.load_global",
    }
}

/// Stable registry `(name, description)` for a repair case's counter.
fn repair_stat_entry(case: RepairCase) -> (&'static str, &'static str) {
    match case {
        RepairCase::RawSourceFix => (
            "fusion.repair.raw_source_fix",
            "case 1: catalyst RaW source fixed in place",
        ),
        RepairCase::Deadlock => (
            "fusion.repair.deadlock",
            "case 2: dependency deadlock, unfused at Dispatch",
        ),
        RepairCase::StoreInCatalyst => (
            "fusion.repair.store_in_catalyst",
            "case 3: store inside a store pair's catalyst, unfused",
        ),
        RepairCase::Serializing => (
            "fusion.repair.serializing",
            "case 4: serializing instruction in the catalyst, unfused",
        ),
        RepairCase::SpanMismatch => (
            "fusion.repair.span_mismatch",
            "case 5: accesses span past the fusion region, flushed",
        ),
        RepairCase::TailFault => (
            "fusion.repair.tail_fault",
            "case 6: tail access faulted, flushed",
        ),
        RepairCase::CatalystFlush => (
            "fusion.repair.catalyst_flush",
            "case 7: catalyst squashed under the pair, unfused",
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_and_stalls() {
        let mut s = SimStats {
            cycles: 1000,
            instructions: 1500,
            ..SimStats::default()
        };
        assert!((s.ipc() - 1.5).abs() < 1e-12);
        s.record_dispatch_stall(DispatchStall::Sq);
        s.record_dispatch_stall(DispatchStall::Sq);
        s.record_dispatch_stall(DispatchStall::Rob);
        s.rename_stall_cycles = 7;
        assert_eq!(s.dispatch_stalls(), 3);
        assert!((s.stall_pct() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fusion_percentages() {
        let mut s = SimStats {
            instructions: 1000,
            mem_instructions: 400,
            ..SimStats::default()
        };
        s.fusion.csf_pairs = 20;
        s.fusion.ncsf_pairs = 10;
        s.fusion.by_idiom[0] = 30; // load pairs
        assert!((s.fused_pct_of_uops() - 6.0).abs() < 1e-12);
        let (csf, ncsf) = s.fused_pct_of_mem();
        assert!((csf - 10.0).abs() < 1e-12);
        assert!((ncsf - 5.0).abs() < 1e-12);
    }

    #[test]
    fn zero_cycle_safety() {
        let s = SimStats::default();
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.stall_pct(), 0.0);
        assert_eq!(s.branch_mpki(), 0.0);
    }

    #[test]
    fn kv_round_trips_losslessly() {
        // Assign a distinct value per key, rebuild, and require the
        // projection of the rebuilt struct to reproduce the exact
        // assignment — this catches dropped, duplicated, *and* swapped
        // field↔key mappings (to_kv's exhaustive destructure already makes
        // a missing field a compile error).
        let assigned: Vec<(String, u64)> = SimStats::default()
            .to_kv()
            .into_iter()
            .enumerate()
            .map(|(i, (k, _))| (k, 1000 + i as u64))
            .collect();
        assert_eq!(assigned.len(), 29 + 12 + 8 + 7, "expected flat key count");
        let s = SimStats::from_kv(
            assigned.iter().map(|(k, v)| (k.as_str(), *v)).collect::<Vec<_>>(),
        )
        .unwrap();
        assert_eq!(s.to_kv(), assigned);
        assert_eq!(s.cycles, 1000, "first key is cycles");
        assert_eq!(s.fusion.repairs[6], 1000 + 55, "last key is the last repair case");
    }

    #[test]
    fn kv_rejects_drifted_schemas() {
        let s = SimStats::default();
        let mut kv: Vec<(String, u64)> = s.to_kv();
        kv.push(("no_such_counter".into(), 1));
        assert!(SimStats::from_kv(kv.iter().map(|(k, v)| (k.as_str(), *v)).collect::<Vec<_>>())
            .unwrap_err()
            .contains("unknown"));
        let kv = &s.to_kv()[1..];
        assert!(SimStats::from_kv(kv.iter().map(|(k, v)| (k.as_str(), *v)).collect::<Vec<_>>())
            .unwrap_err()
            .contains("incomplete"));
        assert!(SimStats::from_kv([("fusion.by_idiom.99", 1u64)]).is_err());
    }
}
