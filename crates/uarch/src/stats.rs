//! Simulation statistics: cycles, IPC, stall breakdowns (Fig. 9), branch and
//! cache behaviour, and the fusion statistics from `helios-core`.

use helios_core::FusionStats;

/// Why Dispatch could not move a µ-op this cycle.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum DispatchStall {
    Rob,
    Iq,
    Lq,
    Sq,
}

/// Aggregate statistics for one simulation run.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct SimStats {
    /// Total simulated cycles.
    pub cycles: u64,
    /// Committed architectural instructions (a fused pair counts as 2).
    pub instructions: u64,
    /// Committed µ-ops (a fused pair counts as 1).
    pub uops: u64,
    /// Committed memory instructions (loads + stores, pre-fusion count).
    pub mem_instructions: u64,
    /// Committed loads / stores (pre-fusion count).
    pub loads: u64,
    pub stores: u64,

    /// Cycles in which Rename made zero progress because no physical
    /// register was available (while work was waiting).
    pub rename_stall_cycles: u64,
    /// Cycles in which Dispatch made zero progress, by blocking resource.
    pub dispatch_stall_rob: u64,
    pub dispatch_stall_iq: u64,
    pub dispatch_stall_lq: u64,
    pub dispatch_stall_sq: u64,
    /// Cycles the frontend was stalled waiting for a mispredicted branch to
    /// resolve.
    pub fetch_stall_redirect: u64,

    /// Conditional branches and mispredictions.
    pub branches: u64,
    pub branch_mispredicts: u64,
    /// Indirect jumps and target mispredictions.
    pub indirects: u64,
    pub indirect_mispredicts: u64,

    /// Memory-order violation flushes (store-set trained).
    pub memdep_flushes: u64,
    /// Predicted pairs abandoned because the Rename nesting limit
    /// (Max Active NCS) was saturated (§IV-B2).
    pub ncsf_nest_aborts: u64,
    /// Fusion-repair flushes (§IV-C cases 5/6) — also counted in `fusion`.
    pub fusion_flushes: u64,

    /// L1D accesses and misses (demand loads + store drains).
    pub l1d_accesses: u64,
    pub l1d_misses: u64,
    pub l2_misses: u64,
    pub l3_misses: u64,
    /// Store-to-load forwards.
    pub stlf_forwards: u64,
    /// UCH decoupling-queue records dropped (queue full) / drained.
    pub uch_queue_dropped: u64,
    pub uch_queue_drained: u64,

    /// Pending NCSF pairs unfused by the resource-deadlock breaker
    /// (repair case 2 machinery) — also counted in `fusion` repairs.
    pub deadlock_breaks: u64,
    /// Faults injected by an attached `FaultInjector`.
    pub injected_faults: u64,
    /// Commit records verified by an attached lockstep `OracleChecker`.
    pub oracle_checked: u64,

    /// Fusion statistics.
    pub fusion: FusionStats,
}

impl SimStats {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Records a dispatch stall cycle attributed to `cause`.
    pub fn record_dispatch_stall(&mut self, cause: DispatchStall) {
        match cause {
            DispatchStall::Rob => self.dispatch_stall_rob += 1,
            DispatchStall::Iq => self.dispatch_stall_iq += 1,
            DispatchStall::Lq => self.dispatch_stall_lq += 1,
            DispatchStall::Sq => self.dispatch_stall_sq += 1,
        }
    }

    /// Total dispatch stall cycles.
    pub fn dispatch_stalls(&self) -> u64 {
        self.dispatch_stall_rob + self.dispatch_stall_iq + self.dispatch_stall_lq
            + self.dispatch_stall_sq
    }

    /// Dispatch + rename structural stalls as a percentage of cycles (Fig 9).
    pub fn stall_pct(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        100.0 * (self.dispatch_stalls() + self.rename_stall_cycles) as f64 / self.cycles as f64
    }

    /// Branch misprediction rate in MPKI.
    pub fn branch_mpki(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            1000.0 * (self.branch_mispredicts + self.indirect_mispredicts) as f64
                / self.instructions as f64
        }
    }

    /// Fusion MPKI (Table III).
    pub fn fusion_mpki(&self) -> f64 {
        self.fusion.mpki(self.instructions)
    }

    /// Fused pairs as % of dynamic instructions (both nucleii counted):
    /// the Fig. 2 metric.
    pub fn fused_pct_of_uops(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            100.0 * (2 * self.fusion.fused_pairs()) as f64 / self.instructions as f64
        }
    }

    /// Fused memory pairs as % of dynamic memory instructions (Fig. 8).
    pub fn fused_pct_of_mem(&self) -> (f64, f64) {
        if self.mem_instructions == 0 {
            return (0.0, 0.0);
        }
        let denom = self.mem_instructions as f64;
        (
            100.0 * (2 * self.fusion.csf_pairs) as f64 / denom,
            100.0 * (2 * self.fusion.ncsf_pairs) as f64 / denom,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_and_stalls() {
        let mut s = SimStats {
            cycles: 1000,
            instructions: 1500,
            ..SimStats::default()
        };
        assert!((s.ipc() - 1.5).abs() < 1e-12);
        s.record_dispatch_stall(DispatchStall::Sq);
        s.record_dispatch_stall(DispatchStall::Sq);
        s.record_dispatch_stall(DispatchStall::Rob);
        s.rename_stall_cycles = 7;
        assert_eq!(s.dispatch_stalls(), 3);
        assert!((s.stall_pct() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fusion_percentages() {
        let mut s = SimStats {
            instructions: 1000,
            mem_instructions: 400,
            ..SimStats::default()
        };
        s.fusion.csf_pairs = 20;
        s.fusion.ncsf_pairs = 10;
        s.fusion.by_idiom[0] = 30; // load pairs
        assert!((s.fused_pct_of_uops() - 6.0).abs() < 1e-12);
        let (csf, ncsf) = s.fused_pct_of_mem();
        assert!((csf - 10.0).abs() < 1e-12);
        assert!((ncsf - 5.0).abs() < 1e-12);
    }

    #[test]
    fn zero_cycle_safety() {
        let s = SimStats::default();
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.stall_pct(), 0.0);
        assert_eq!(s.branch_mpki(), 0.0);
    }
}
