//! Dynamic µ-op representation inside the pipeline.

use helios_core::{Contiguity, FusionClass, Idiom, PredMeta};
use helios_emu::{MemAccess, Retired};
use helios_isa::{Inst, Reg};

/// Functional-unit class a µ-op issues to.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum FuClass {
    Alu,
    Mul,
    Div,
    Branch,
    Load,
    Store,
}

impl FuClass {
    /// Classifies an instruction.
    pub fn of(inst: &Inst) -> FuClass {
        match inst {
            Inst::Load { .. } => FuClass::Load,
            Inst::Store { .. } => FuClass::Store,
            Inst::Branch { .. } | Inst::Jal { .. } | Inst::Jalr { .. } => FuClass::Branch,
            Inst::Op { op, .. } if op.is_div() => FuClass::Div,
            Inst::Op { op, .. } if op.is_muldiv() => FuClass::Mul,
            _ => FuClass::Alu,
        }
    }
}

/// Validation hazards of a non-consecutive fused pair, pre-computed from the
/// catalyst at marking time but *discovered* by the pipeline at the stage
/// the paper discovers them (Rename for the tail nucleus, Execute for
/// address mismatches) — see §IV-B/IV-C.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct CatalystHazards {
    /// Tail depends (directly or transitively) on a head destination —
    /// dependency deadlock (§IV-B2 "Deadlocks", repair case 2).
    pub deadlock: bool,
    /// Store µ-op inside the catalyst of a store pair (§IV-B4, case 3).
    pub store_in_catalyst: bool,
    /// Serializing instruction inside the catalyst (case 4).
    pub serializing: bool,
    /// Catalyst writes one of the tail's sources (RaW, case 1 — pair stays
    /// fused; the tail fixes the IQ entry in place at Dispatch).
    pub raw_dep: bool,
    /// Subroutine call or return inside the catalyst: the pair would span
    /// stack frames, serializing the head on a far-away base register.
    /// Helios does not form such pairs.
    pub call: bool,
}

/// Fusion state attached to a head-nucleus µ-op.
#[derive(Clone, Copy, Debug)]
pub struct Fused {
    pub idiom: Idiom,
    pub class: FusionClass,
    /// Tail nucleus identity (original trace sequence numbering).
    pub tail_seq: u64,
    pub tail_pc: u64,
    pub tail_inst: Inst,
    pub tail_mem: Option<MemAccess>,
    /// Dynamic contiguity of the two accesses (memory pairs).
    pub contiguity: Option<Contiguity>,
    /// Different architectural base registers.
    pub dbr: bool,
    /// Different access sizes.
    pub asymmetric: bool,
    /// Predictor metadata if this pair was created by the Helios FP.
    pub pred: Option<PredMeta>,
    /// Pending NCSF'd µ-op: tail has not yet validated it (cannot issue).
    pub pending: bool,
    /// Hazards detected when the tail reaches Rename.
    pub hazards: CatalystHazards,
}

/// A µ-op flowing through the pipeline (a head nucleus, possibly fused).
#[derive(Clone, Copy, Debug)]
pub struct DynUop {
    /// Original trace sequence number (identity).
    pub seq: u64,
    pub pc: u64,
    pub inst: Inst,
    pub mem: Option<MemAccess>,
    pub next_pc: u64,
    /// Fusion state; `None` for simple µ-ops.
    pub fused: Option<Fused>,
    /// Frontend branch-prediction outcome for this µ-op.
    pub mispredicted: bool,
    pub conditional: bool,
    pub indirect: bool,
}

impl DynUop {
    /// Wraps a retired trace record.
    pub fn new(r: &Retired) -> DynUop {
        DynUop {
            seq: r.seq,
            pc: r.pc,
            inst: r.inst,
            mem: r.mem,
            next_pc: r.next_pc,
            fused: None,
            mispredicted: false,
            conditional: false,
            indirect: false,
        }
    }

    /// The load-queue accesses of this µ-op: `(first, second)`.
    pub fn lq_accesses(&self) -> (Option<MemAccess>, Option<MemAccess>) {
        match &self.fused {
            Some(f) if f.idiom == Idiom::LoadPair => (self.mem, f.tail_mem),
            Some(f) if matches!(f.idiom, Idiom::IndexedLoad | Idiom::LoadGlobal) => {
                (f.tail_mem, None)
            }
            _ if self.inst.is_load() => (self.mem, None),
            _ => (None, None),
        }
    }

    /// The store-queue accesses of this µ-op: `(first, second)`.
    pub fn sq_accesses(&self) -> (Option<MemAccess>, Option<MemAccess>) {
        match &self.fused {
            Some(f) if f.idiom == Idiom::StorePair => (self.mem, f.tail_mem),
            _ if self.inst.is_store() => (self.mem, None),
            _ => (None, None),
        }
    }

    /// Functional unit for this µ-op (fused pairs issue to the head's unit;
    /// ALU+load idioms issue to the load unit).
    pub fn fu(&self) -> FuClass {
        if let Some(f) = &self.fused {
            if matches!(f.idiom, Idiom::IndexedLoad | Idiom::LoadGlobal) {
                return FuClass::Load;
            }
            if f.idiom == Idiom::LoadPair {
                return FuClass::Load;
            }
            if f.idiom == Idiom::StorePair {
                return FuClass::Store;
            }
        }
        FuClass::of(&self.inst)
    }

    /// Architectural destination registers (0, 1, or 2 for a load pair).
    pub fn dests(&self) -> impl Iterator<Item = Reg> + '_ {
        let head = self.inst.rd();
        let tail = self.fused.as_ref().and_then(|f| f.tail_inst.rd());
        head.into_iter().chain(tail)
    }

    /// Architectural source registers (deduplicated not required; the rename
    /// stage handles repeats).
    pub fn sources(&self) -> impl Iterator<Item = Reg> + '_ {
        let tail = self
            .fused
            .iter()
            .flat_map(|f| f.tail_inst.sources().collect::<Vec<_>>());
        self.inst.sources().chain(tail)
    }

    /// Whether this µ-op is a pending NCSF'd µ-op (not yet validated).
    pub fn is_pending_ncsf(&self) -> bool {
        self.fused.as_ref().is_some_and(|f| f.pending)
    }

    /// Number of architectural instructions this µ-op represents.
    pub fn inst_count(&self) -> u64 {
        if self.fused.is_some() {
            2
        } else {
            1
        }
    }

    /// Removes the fusion state, reverting to the plain head µ-op.
    /// Returns the removed state.
    pub fn unfuse(&mut self) -> Option<Fused> {
        self.fused.take()
    }
}

/// One entry of the Allocation Queue.
#[derive(Clone, Copy, Debug)]
pub enum AqEntry {
    /// A (possibly fused-head) µ-op.
    Uop(DynUop),
    /// A tail nucleus left in the queue after NCS fusion (§IV-B): flows
    /// through Rename/Dispatch to validate or repair its head, consuming
    /// slots but no ROB/IQ/LQ/SQ entries.
    Tail {
        seq: u64,
        pc: u64,
        /// Sequence number of the head-nucleus µ-op it validates.
        head_seq: u64,
    },
}

impl AqEntry {
    /// The trace sequence number of this entry.
    pub fn seq(&self) -> u64 {
        match self {
            AqEntry::Uop(u) => u.seq,
            AqEntry::Tail { seq, .. } => *seq,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use helios_isa::{AluOp, MemWidth};

    fn load(seq: u64, rd: Reg, base: Reg, offset: i32) -> DynUop {
        DynUop {
            seq,
            pc: 0x1000 + seq * 4,
            inst: Inst::Load {
                width: MemWidth::D,
                signed: true,
                rd,
                rs1: base,
                offset,
            },
            mem: Some(MemAccess {
                addr: 0x8000 + offset as u64,
                size: 8,
                is_store: false,
            }),
            next_pc: 0x1004 + seq * 4,
            fused: None,
            mispredicted: false,
            conditional: false,
            indirect: false,
        }
    }

    #[test]
    fn fu_classification() {
        assert_eq!(FuClass::of(&Inst::NOP), FuClass::Alu);
        assert_eq!(
            FuClass::of(&Inst::Op {
                op: AluOp::Mul,
                rd: Reg::A0,
                rs1: Reg::A1,
                rs2: Reg::A2
            }),
            FuClass::Mul
        );
        assert_eq!(
            FuClass::of(&Inst::Op {
                op: AluOp::Div,
                rd: Reg::A0,
                rs1: Reg::A1,
                rs2: Reg::A2
            }),
            FuClass::Div
        );
        assert_eq!(
            FuClass::of(&Inst::Jal {
                rd: Reg::ZERO,
                offset: 8
            }),
            FuClass::Branch
        );
    }

    #[test]
    fn fused_load_pair_has_two_dests_and_counts_two_insts() {
        let mut head = load(0, Reg::A0, Reg::SP, 0);
        let tail = load(1, Reg::A1, Reg::SP, 8);
        head.fused = Some(Fused {
            idiom: Idiom::LoadPair,
            class: FusionClass::Consecutive,
            tail_seq: 1,
            tail_pc: tail.pc,
            tail_inst: tail.inst,
            tail_mem: tail.mem,
            contiguity: None,
            dbr: false,
            asymmetric: false,
            pred: None,
            pending: false,
            hazards: CatalystHazards::default(),
        });
        assert_eq!(head.dests().collect::<Vec<_>>(), vec![Reg::A0, Reg::A1]);
        assert_eq!(head.inst_count(), 2);
        assert_eq!(head.fu(), FuClass::Load);
        assert!(!head.is_pending_ncsf());
        let f = head.unfuse().unwrap();
        assert_eq!(f.tail_seq, 1);
        assert_eq!(head.inst_count(), 1);
    }

    #[test]
    fn sources_include_tail_sources() {
        let mut head = load(0, Reg::A0, Reg::SP, 0);
        let tail = load(1, Reg::A1, Reg::S1, 8);
        head.fused = Some(Fused {
            idiom: Idiom::LoadPair,
            class: FusionClass::NonConsecutive,
            tail_seq: 1,
            tail_pc: tail.pc,
            tail_inst: tail.inst,
            tail_mem: tail.mem,
            contiguity: None,
            dbr: true,
            asymmetric: false,
            pred: None,
            pending: true,
            hazards: CatalystHazards::default(),
        });
        let srcs: Vec<_> = head.sources().collect();
        assert_eq!(srcs, vec![Reg::SP, Reg::S1]);
        assert!(head.is_pending_ncsf());
    }

    #[test]
    fn aq_entry_seq() {
        let u = AqEntry::Uop(load(5, Reg::A0, Reg::SP, 0));
        assert_eq!(u.seq(), 5);
        let t = AqEntry::Tail {
            seq: 9,
            pc: 0,
            head_seq: 5,
        };
        assert_eq!(t.seq(), 9);
    }
}
