//! A rewindable window over the retired-µ-op trace.
//!
//! The pipeline fetches correct-path µ-ops from this window. Because fusion
//! repairs (§IV-C cases 5–7) and memory-order violations squash *correct
//! path* work that must re-enter the pipeline, the window retains every
//! record from the oldest uncommitted µ-op onward and supports rewinding the
//! fetch cursor. It also supports bounded lookahead, which the OracleFusion
//! configuration uses as its future knowledge.

use helios_emu::{Retired, UopSource};
use std::collections::VecDeque;

/// Rewindable, releasable trace window (see module docs).
#[derive(Debug)]
pub struct TraceWindow<I> {
    src: I,
    buf: VecDeque<Retired>,
    /// Sequence number of `buf[0]`.
    base: u64,
    /// Sequence number of the next µ-op to fetch.
    cursor: u64,
    exhausted: bool,
}

impl<I: UopSource> TraceWindow<I> {
    /// Wraps a retired-µ-op source.
    pub fn new(src: I) -> TraceWindow<I> {
        TraceWindow {
            src,
            buf: VecDeque::new(),
            base: 0,
            cursor: 0,
            exhausted: false,
        }
    }

    fn fill_to(&mut self, seq: u64) {
        while !self.exhausted && self.base + self.buf.len() as u64 <= seq {
            match self.src.next_uop() {
                Some(r) => {
                    debug_assert_eq!(r.seq, self.base + self.buf.len() as u64);
                    self.buf.push_back(r);
                }
                None => self.exhausted = true,
            }
        }
    }

    /// The record at absolute sequence number `seq`, if available.
    ///
    /// # Panics
    ///
    /// Panics if `seq` precedes the released region.
    pub fn at(&mut self, seq: u64) -> Option<&Retired> {
        assert!(seq >= self.base, "seq {seq} already released (base {})", self.base);
        self.fill_to(seq);
        self.buf.get((seq - self.base) as usize)
    }

    /// Sequence number the next [`TraceWindow::fetch`] will return.
    pub fn cursor(&self) -> u64 {
        self.cursor
    }

    /// Number of records currently buffered (fetched or prefetched but not
    /// yet released).
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Fetches the next µ-op and advances the cursor.
    pub fn fetch(&mut self) -> Option<Retired> {
        let seq = self.cursor;
        let r = self.at(seq).copied()?;
        self.cursor = seq + 1;
        Some(r)
    }

    /// Peeks `n` µ-ops ahead of the cursor without advancing.
    pub fn peek(&mut self, n: u64) -> Option<&Retired> {
        let seq = self.cursor + n;
        self.at(seq)
    }

    /// Rewinds the cursor to `seq` (µ-ops from `seq` on will be re-fetched).
    ///
    /// # Panics
    ///
    /// Panics if `seq` has already been released or is beyond the cursor.
    pub fn rewind(&mut self, seq: u64) {
        assert!(seq >= self.base && seq <= self.cursor);
        self.cursor = seq;
    }

    /// Releases all records with sequence number `< seq` (they committed and
    /// can never be re-fetched). A single bulk `drain` of the released
    /// prefix, so the cost is O(released) rather than a `pop_front` call per
    /// record.
    pub fn release_below(&mut self, seq: u64) {
        let seq = seq.min(self.cursor);
        if seq > self.base {
            let n = (seq - self.base) as usize;
            self.buf.drain(..n);
            self.base = seq;
        }
    }

    /// Whether the source is exhausted and the cursor is at the end.
    pub fn at_end(&mut self) -> bool {
        self.fill_to(self.cursor);
        self.exhausted && self.cursor >= self.base + self.buf.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use helios_isa::Inst;

    fn mk(n: u64) -> TraceWindow<impl Iterator<Item = Retired>> {
        TraceWindow::new((0..n).map(|seq| Retired {
            seq,
            pc: 0x1000 + seq * 4,
            inst: Inst::NOP,
            next_pc: 0x1004 + seq * 4,
            mem: None,
            rd_value: None,
        }))
    }

    #[test]
    fn fetch_in_order() {
        let mut w = mk(3);
        assert_eq!(w.fetch().unwrap().seq, 0);
        assert_eq!(w.fetch().unwrap().seq, 1);
        assert_eq!(w.fetch().unwrap().seq, 2);
        assert!(w.fetch().is_none());
        assert!(w.at_end());
    }

    #[test]
    fn peek_does_not_advance() {
        let mut w = mk(10);
        assert_eq!(w.peek(3).unwrap().seq, 3);
        assert_eq!(w.fetch().unwrap().seq, 0);
    }

    #[test]
    fn rewind_refetches() {
        let mut w = mk(10);
        for _ in 0..5 {
            w.fetch();
        }
        w.rewind(2);
        assert_eq!(w.fetch().unwrap().seq, 2);
    }

    #[test]
    fn release_frees_prefix() {
        let mut w = mk(10);
        for _ in 0..6 {
            w.fetch();
        }
        w.release_below(4);
        assert_eq!(w.at(4).unwrap().seq, 4);
        assert_eq!(w.fetch().unwrap().seq, 6);
    }

    #[test]
    #[should_panic]
    fn released_access_panics() {
        let mut w = mk(10);
        for _ in 0..6 {
            w.fetch();
        }
        w.release_below(4);
        let _ = w.at(2);
    }

    #[test]
    fn release_never_passes_cursor() {
        let mut w = mk(10);
        for _ in 0..3 {
            w.fetch();
        }
        w.release_below(8); // clamped to cursor (3)
        assert_eq!(w.fetch().unwrap().seq, 3);
    }

    /// Regression test for the bulk-release rewrite: a long run followed by
    /// one big `release_below` drains the whole prefix in a single call
    /// (base jumps straight to the release point, buffered length drops by
    /// exactly the released count), repeated/backward releases are no-ops,
    /// and rewind-to-base still works right after a bulk release.
    #[test]
    fn release_bulk_after_long_run() {
        let n = 10_000u64;
        let mut w = mk(n);
        for _ in 0..n {
            w.fetch();
        }
        assert_eq!(w.buffered(), n as usize);
        w.release_below(9_000);
        assert_eq!(w.buffered(), 1_000);
        assert_eq!(w.at(9_000).unwrap().seq, 9_000);
        // Releasing at or below the current base releases nothing.
        w.release_below(9_000);
        w.release_below(10);
        assert_eq!(w.buffered(), 1_000);
        // The un-released suffix is still re-fetchable.
        w.rewind(9_000);
        assert_eq!(w.fetch().unwrap().seq, 9_000);
    }
}
