//! End-to-end pipeline tests: run small assembled kernels through the cycle
//! model under each fusion configuration and check invariants the paper's
//! machinery must uphold.

use helios_core::FusionMode;
use helios_emu::RetireStream;
use helios_isa::{parse_asm, Asm, Program, Reg};
use helios_uarch::{PipeConfig, Pipeline, SimStats};

fn simulate(prog: Program, mode: FusionMode) -> SimStats {
    let stream = RetireStream::new(prog, 10_000_000);
    let mut pipe = Pipeline::new(PipeConfig::with_fusion(mode), stream);
    pipe.try_run(50_000_000).expect("kernel simulates cleanly");
    pipe.stats().clone()
}

/// A loop that loads adjacent struct fields — a dense load-pair idiom source.
fn load_pair_kernel(iters: i64) -> Program {
    let mut a = Asm::new();
    let buf = a.zeros(4096, 64);
    a.la(Reg::S0, buf);
    a.li(Reg::S1, iters);
    a.li(Reg::S2, 0);
    let top = a.here();
    // Two contiguous, same-base loads (statically fusible)…
    a.ld(Reg::A0, 0, Reg::S0);
    a.ld(Reg::A1, 8, Reg::S0);
    a.add(Reg::S2, Reg::S2, Reg::A0);
    a.add(Reg::S2, Reg::S2, Reg::A1);
    // …and two more at a different offset.
    a.ld(Reg::A2, 16, Reg::S0);
    a.ld(Reg::A3, 24, Reg::S0);
    a.add(Reg::S2, Reg::S2, Reg::A2);
    a.add(Reg::S2, Reg::S2, Reg::A3);
    a.addi(Reg::S1, Reg::S1, -1);
    a.bnez(Reg::S1, top);
    a.halt();
    a.assemble().unwrap()
}

/// A loop with *non-consecutive* same-line loads separated by ALU work:
/// invisible to static fusion, discoverable by the Helios predictor.
fn ncsf_kernel(iters: i64) -> Program {
    let mut a = Asm::new();
    let buf = a.zeros(4096, 64);
    a.la(Reg::S0, buf);
    a.li(Reg::S1, iters);
    a.li(Reg::S2, 0);
    let top = a.here();
    a.ld(Reg::A0, 0, Reg::S0); // head nucleus
    a.add(Reg::S2, Reg::S2, Reg::A0);
    a.xori(Reg::T0, Reg::S2, 0x55);
    a.andi(Reg::T1, Reg::T0, 0xff);
    a.ld(Reg::A1, 32, Reg::S0); // tail nucleus, same 64B line, distance 5
    a.add(Reg::S2, Reg::S2, Reg::A1);
    a.addi(Reg::S1, Reg::S1, -1);
    a.bnez(Reg::S1, top);
    a.halt();
    a.assemble().unwrap()
}

/// Store-heavy loop with adjacent stores (store-pair idioms).
fn store_pair_kernel(iters: i64) -> Program {
    let mut a = Asm::new();
    let buf = a.zeros(8192, 64);
    a.la(Reg::S0, buf);
    a.li(Reg::S1, iters);
    let top = a.here();
    a.sd(Reg::S1, 0, Reg::S0);
    a.sd(Reg::S1, 8, Reg::S0);
    a.sd(Reg::S1, 16, Reg::S0);
    a.sd(Reg::S1, 24, Reg::S0);
    a.addi(Reg::S1, Reg::S1, -1);
    a.bnez(Reg::S1, top);
    a.halt();
    a.assemble().unwrap()
}

#[test]
fn simple_loop_commits_every_instruction() {
    let prog = parse_asm(
        r#"
        li a0, 500
    top:
        addi a0, a0, -1
        bnez a0, top
        ebreak
    "#,
    )
    .unwrap();
    let expected = 1 + 500 * 2 + 1;
    for mode in FusionMode::ALL {
        let s = simulate(prog.clone(), mode);
        assert_eq!(
            s.instructions, expected,
            "{mode}: committed instruction count must match the trace"
        );
        assert!(s.ipc() > 0.3, "{mode}: unreasonably low IPC {}", s.ipc());
    }
}

#[test]
fn instruction_counts_identical_across_configs() {
    let prog = load_pair_kernel(300);
    let baseline = simulate(prog.clone(), FusionMode::NoFusion).instructions;
    for mode in FusionMode::ALL {
        let s = simulate(prog.clone(), mode);
        assert_eq!(
            s.instructions, baseline,
            "{mode}: fusion must not change architectural instruction count"
        );
    }
}

#[test]
fn csf_fuses_static_load_pairs() {
    let prog = load_pair_kernel(300);
    let none = simulate(prog.clone(), FusionMode::NoFusion);
    assert_eq!(none.fusion.fused_pairs(), 0);
    let csf = simulate(prog, FusionMode::CsfSbr);
    // Two load-pair idioms per iteration.
    assert!(
        csf.fusion.csf_pairs >= 500,
        "expected ≥500 CSF pairs, got {}",
        csf.fusion.csf_pairs
    );
    assert_eq!(csf.fusion.ncsf_pairs, 0, "CSF-SBR never fuses distant µ-ops");
    assert!(csf.fusion.memory_pairs() > 0);
    assert_eq!(csf.fusion.other_pairs(), 0, "CSF-SBR has no non-memory idioms");
}

#[test]
fn riscvfusion_fuses_only_non_memory_idioms() {
    // `li` with a 32-bit constant expands to lui+addiw, a fusible idiom.
    let prog = parse_asm(
        r#"
        li s1, 200
    top:
        li a0, 0x12345678
        li a1, 0x7654321
        addi s1, s1, -1
        bnez s1, top
        ebreak
    "#,
    )
    .unwrap();
    let s = simulate(prog, FusionMode::RiscvFusion);
    assert!(
        s.fusion.other_pairs() >= 390,
        "lui+addiw idioms fused: {}",
        s.fusion.other_pairs()
    );
    assert_eq!(s.fusion.memory_pairs(), 0);
}

#[test]
fn helios_learns_ncsf_pairs() {
    let s = simulate(ncsf_kernel(2000), FusionMode::Helios);
    assert!(
        s.fusion.ncsf_pairs > 500,
        "Helios should learn the distance-5 pair after UCH training, got {}",
        s.fusion.ncsf_pairs
    );
    assert!(
        s.fusion.accuracy_pct() > 90.0,
        "stable pattern should predict accurately, got {:.2}%",
        s.fusion.accuracy_pct()
    );
    // CSF-SBR sees nothing here: the pair is non-consecutive.
    let csf = simulate(ncsf_kernel(2000), FusionMode::CsfSbr);
    assert_eq!(csf.fusion.fused_pairs(), 0);
}

#[test]
fn oracle_fuses_at_least_as_much_as_helios() {
    for prog in [load_pair_kernel(500), ncsf_kernel(1500)] {
        let h = simulate(prog.clone(), FusionMode::Helios);
        let o = simulate(prog, FusionMode::OracleFusion);
        assert!(
            o.fusion.fused_pairs() >= h.fusion.fused_pairs() * 9 / 10,
            "oracle ({}) should be ≥ ~Helios ({})",
            o.fusion.fused_pairs(),
            h.fusion.fused_pairs()
        );
    }
}

#[test]
fn store_pairs_fuse_and_relieve_sq_pressure() {
    let prog = store_pair_kernel(2000);
    let none = simulate(prog.clone(), FusionMode::NoFusion);
    let csf = simulate(prog, FusionMode::CsfSbr);
    assert!(csf.fusion.idiom_count(helios_core::Idiom::StorePair) >= 3000);
    assert!(
        csf.ipc() > none.ipc(),
        "store-pair fusion should raise IPC: {} vs {}",
        csf.ipc(),
        none.ipc()
    );
}

#[test]
fn fusion_improves_ipc_on_pair_heavy_code() {
    let prog = load_pair_kernel(1000);
    let none = simulate(prog.clone(), FusionMode::NoFusion);
    let csf = simulate(prog.clone(), FusionMode::CsfSbr);
    let oracle = simulate(prog, FusionMode::OracleFusion);
    assert!(
        csf.ipc() >= none.ipc(),
        "CSF {} vs NoFusion {}",
        csf.ipc(),
        none.ipc()
    );
    assert!(
        oracle.ipc() >= none.ipc(),
        "Oracle {} vs NoFusion {}",
        oracle.ipc(),
        none.ipc()
    );
}

#[test]
fn helios_contiguity_classes_recorded() {
    let s = simulate(ncsf_kernel(1500), FusionMode::Helios);
    // Pairs at offsets 0 and 32 in a 64-aligned buffer: same line, gap.
    assert!(
        s.fusion.same_line > 0,
        "distance-32 pairs are SameLine, got contiguous={} overlap={} same={} next={}",
        s.fusion.contiguous,
        s.fusion.overlapping,
        s.fusion.same_line,
        s.fusion.next_line
    );
}

#[test]
fn deadlocked_pairs_are_unfused_not_hung() {
    // The tail load's base depends on the head load's result through the
    // catalyst: fusing would deadlock (§IV-B2). The pipeline must either
    // not fuse or unfuse — and always terminate with correct counts.
    let mut a = Asm::new();
    let buf = a.zeros(4096, 64);
    // buf[0] holds a pointer to buf (self-referential chase).
    a.la(Reg::T0, buf);
    a.sd(Reg::T0, 0, Reg::T0);
    a.li(Reg::S1, 500);
    let top = a.here();
    a.ld(Reg::A0, 0, Reg::T0); // head: loads a pointer (= buf)
    a.addi(Reg::A1, Reg::A0, 8); // catalyst: derives tail base from head
    a.ld(Reg::A2, 0, Reg::A1); // tail: same line as head, but dependent
    a.addi(Reg::S1, Reg::S1, -1);
    a.bnez(Reg::S1, top);
    a.halt();
    let prog = a.assemble().unwrap();
    for mode in [FusionMode::Helios, FusionMode::OracleFusion] {
        let s = simulate(prog.clone(), mode);
        let expected_min = 500 * 5;
        assert!(
            s.instructions > expected_min,
            "{mode}: completed without deadlock"
        );
    }
}

#[test]
fn serializing_catalyst_blocks_fusion() {
    // Each iteration touches a fresh cache line, so the only same-line pair
    // is the in-iteration one — whose catalyst contains a fence.
    let mut a = Asm::new();
    let buf = a.zeros(800 * 128 + 64, 64);
    a.la(Reg::S0, buf);
    a.li(Reg::S1, 800);
    let top = a.here();
    a.ld(Reg::A0, 0, Reg::S0);
    a.fence();
    a.ld(Reg::A1, 32, Reg::S0);
    a.addi(Reg::S0, Reg::S0, 128);
    a.addi(Reg::S1, Reg::S1, -1);
    a.bnez(Reg::S1, top);
    a.halt();
    let prog = a.assemble().unwrap();
    let o = simulate(prog.clone(), FusionMode::OracleFusion);
    assert_eq!(
        o.fusion.ncsf_pairs, 0,
        "oracle must respect serializing catalysts"
    );
    // Helios may try and must repair via the NCSF-Serializing bit.
    let h = simulate(prog, FusionMode::Helios);
    assert_eq!(
        h.fusion.ncsf_pairs, 0,
        "no NCSF pair may commit across a fence"
    );
}

#[test]
fn stores_never_fuse_across_stores() {
    let mut a = Asm::new();
    let buf = a.zeros(4096, 64);
    let other = a.zeros(4096, 64);
    a.la(Reg::S0, buf);
    a.la(Reg::S2, other);
    a.li(Reg::S1, 800);
    let top = a.here();
    a.sd(Reg::S1, 0, Reg::S0); // head candidate
    a.sd(Reg::S1, 0, Reg::S2); // intervening store (different line)
    a.sd(Reg::S1, 8, Reg::S0); // same line as head, but store in catalyst
    a.sd(Reg::S1, 128, Reg::S2); // blocks cross-iteration pairing too
    a.addi(Reg::S1, Reg::S1, -1);
    a.bnez(Reg::S1, top);
    a.halt();
    let prog = a.assemble().unwrap();
    for mode in [FusionMode::Helios, FusionMode::OracleFusion] {
        let s = simulate(prog.clone(), mode);
        assert_eq!(
            s.fusion.ncsf_pairs, 0,
            "{mode}: store-store ordering must be preserved (§IV-B4)"
        );
    }
}

#[test]
fn dependent_loads_never_fuse() {
    // §II-B: ld x1, 0(x1); ld x5, 8(x1) — consecutive but dependent. A
    // pointer chain with 128-byte-strided nodes keeps cross-iteration pairs
    // out of fusion range, isolating the dependent pair.
    let mut a = Asm::new();
    let nodes = 64u64;
    let buf = a.zeros(nodes * 128, 64);
    for i in 0..nodes {
        let next = buf + ((i + 1) % nodes) * 128;
        // node[i].next = &node[i+1]
        a.la(Reg::T1, buf + i * 128);
        a.la(Reg::T2, next);
        a.sd(Reg::T2, 0, Reg::T1);
    }
    a.la(Reg::T0, buf);
    a.li(Reg::S1, 500);
    let top = a.here();
    a.ld(Reg::T0, 0, Reg::T0);
    a.ld(Reg::A0, 8, Reg::T0);
    a.addi(Reg::S1, Reg::S1, -1);
    a.bnez(Reg::S1, top);
    a.halt();
    let prog = a.assemble().unwrap();
    let setup = 64 * 5; // li is 1 inst here? — measured below via NoFusion
    let baseline = simulate(prog.clone(), FusionMode::NoFusion);
    // CSF-SBR can only see the consecutive pair, which is dependent: the
    // static matcher must reject it, so nothing fuses.
    let csf = simulate(prog.clone(), FusionMode::CsfSbr);
    assert_eq!(csf.fusion.memory_pairs(), 0, "dependent pair must not fuse");
    // Helios/Oracle may legally fuse *cross-iteration* pairs (the tail's
    // base comes from an older-than-head producer), but must never fuse the
    // dependent in-iteration pair — which would deadlock the IQ. Completion
    // with the exact instruction count proves no deadlock occurred.
    for mode in [FusionMode::Helios, FusionMode::OracleFusion] {
        let s = simulate(prog.clone(), mode);
        assert_eq!(s.instructions, baseline.instructions, "{mode}");
    }
    let _ = setup;
}

#[test]
fn stall_accounting_sq_pressure() {
    // A store flood with cold cache lines: the SQ must fill and Dispatch
    // must attribute stalls to it (the 657.xz_1 behaviour of Fig. 9).
    let mut a = Asm::new();
    let buf = a.zeros(1 << 20, 64);
    a.la(Reg::S0, buf);
    a.li(Reg::S1, 4000);
    let top = a.here();
    // Demand ~2.5 stores/cycle at 5-wide against a 1-store/cycle drain port.
    a.sd(Reg::S1, 0, Reg::S0);
    a.sd(Reg::S1, 128, Reg::S0); // distinct line: no pair, two drains
    a.sd(Reg::S1, 256, Reg::S0);
    a.addi(Reg::S0, Reg::S0, 384);
    a.addi(Reg::S1, Reg::S1, -1);
    a.bnez(Reg::S1, top);
    a.halt();
    let s = simulate(a.assemble().unwrap(), FusionMode::NoFusion);
    assert!(
        s.dispatch_stall_sq > s.cycles / 10,
        "store flood should be SQ-bound: {} of {} cycles",
        s.dispatch_stall_sq,
        s.cycles
    );
}

#[test]
fn branch_mispredictions_are_charged() {
    // Data-dependent unpredictable branches (LCG parity).
    let mut a = Asm::new();
    a.li(Reg::S0, 12345);
    a.li(Reg::S1, 3000);
    a.li(Reg::T2, 1103515245);
    a.li(Reg::T3, 12345);
    let top = a.here();
    let skip = a.new_label();
    a.mul(Reg::S0, Reg::S0, Reg::T2);
    a.add(Reg::S0, Reg::S0, Reg::T3);
    a.srli(Reg::T0, Reg::S0, 16);
    a.andi(Reg::T0, Reg::T0, 1);
    a.beqz(Reg::T0, skip);
    a.addi(Reg::A0, Reg::A0, 1);
    a.bind(skip);
    a.addi(Reg::S1, Reg::S1, -1);
    a.bnez(Reg::S1, top);
    a.halt();
    let s = simulate(a.assemble().unwrap(), FusionMode::NoFusion);
    assert!(
        s.branch_mispredicts > 500,
        "random branches must mispredict: {} of {}",
        s.branch_mispredicts,
        s.branches
    );
    assert!(s.fetch_stall_redirect > 0, "redirect stalls charged");
}

#[test]
fn concurrent_pairs_fuse_without_loss() {
    // Four independent same-line NCSF pairs per iteration, padded with
    // enough ALU work that the single-ported UCH decoupling queue keeps up.
    let mut a = Asm::new();
    let buf = a.zeros(8192, 64);
    a.la(Reg::S0, buf);
    a.li(Reg::S1, 1200);
    let top = a.here();
    for k in 0..4 {
        let base = k * 64;
        a.ld(Reg::A0, base, Reg::S0);
        a.xori(Reg::T0, Reg::A0, 1);
        a.andi(Reg::T1, Reg::T0, 0xff);
        a.ld(Reg::A1, base + 32, Reg::S0); // same line as the head, distance 3
        a.add(Reg::S2, Reg::S2, Reg::A1);
        a.slli(Reg::T2, Reg::S2, 1);
        a.srli(Reg::T3, Reg::S2, 2);
        a.or(Reg::T2, Reg::T2, Reg::T3);
    }
    a.addi(Reg::S1, Reg::S1, -1);
    a.bnez(Reg::S1, top);
    a.halt();
    let prog = a.assemble().unwrap();
    let base = simulate(prog.clone(), FusionMode::NoFusion);
    let s = simulate(prog, FusionMode::Helios);
    assert_eq!(s.instructions, base.instructions);
    assert!(s.fusion.ncsf_pairs > 1000, "pairs fuse: {}", s.fusion.ncsf_pairs);
}

#[test]
fn nesting_limit_saturates_on_interleaved_pairs() {
    // Three *interleaved* pairs (h1 h2 h3 t1 t2 t3) exceed the Max-Active-NCS
    // depth of 2: the third head entering Rename while two pairs are pending
    // must behave as unfused (§IV-B2), and nothing may be lost.
    let mut a = Asm::new();
    let buf = a.zeros(8192, 64);
    a.la(Reg::S0, buf);
    a.li(Reg::S1, 1200);
    let top = a.here();
    a.ld(Reg::A0, 0, Reg::S0); // h1
    a.ld(Reg::A1, 64, Reg::S0); // h2
    a.ld(Reg::A2, 128, Reg::S0); // h3
    a.ld(Reg::A3, 32, Reg::S0); // t1 (same line as h1, distance 3)
    a.ld(Reg::A4, 96, Reg::S0); // t2
    a.ld(Reg::A5, 160, Reg::S0); // t3
    for _ in 0..4 {
        a.add(Reg::S2, Reg::S2, Reg::A3);
        a.xori(Reg::S2, Reg::S2, 0x11);
        a.add(Reg::S2, Reg::S2, Reg::A4);
        a.add(Reg::S2, Reg::S2, Reg::A5);
    }
    a.addi(Reg::S1, Reg::S1, -1);
    a.bnez(Reg::S1, top);
    a.halt();
    let prog = a.assemble().unwrap();
    let base = simulate(prog.clone(), FusionMode::NoFusion);
    let s = simulate(prog, FusionMode::Helios);
    assert_eq!(s.instructions, base.instructions);
    assert!(
        s.fusion.ncsf_pairs > 500,
        "the first two interleaved pairs fuse: {}",
        s.fusion.ncsf_pairs
    );
    assert!(
        s.ncsf_nest_aborts > 100,
        "the third concurrent pair must hit the depth-2 limit, got {}",
        s.ncsf_nest_aborts
    );
}

#[test]
fn raw_catalyst_pairs_stay_fused_and_are_counted() {
    // The catalyst writes the tail's base register (§IV-B2 RaW, repair
    // case 1): the pair must stay fused, with the fix counted but not as a
    // misprediction.
    let mut a = Asm::new();
    let buf = a.zeros(4096, 64);
    a.la(Reg::S0, buf);
    a.la(Reg::S3, buf); // same value, different register
    a.li(Reg::S1, 2000);
    let top = a.here();
    a.ld(Reg::A0, 0, Reg::S0); // head
    a.addi(Reg::S4, Reg::S3, 32); // catalyst writes the tail's base (RaW)
    a.ld(Reg::A1, 0, Reg::S4); // tail: same line, different base (DBR)
    a.add(Reg::S2, Reg::S2, Reg::A1);
    a.addi(Reg::S1, Reg::S1, -1);
    a.bnez(Reg::S1, top);
    a.halt();
    let s = simulate(a.assemble().unwrap(), FusionMode::Helios);
    assert!(
        s.fusion.ncsf_pairs > 500,
        "RaW pairs must still fuse, got {}",
        s.fusion.ncsf_pairs
    );
    assert!(s.fusion.dbr_pairs > 500, "these are DBR pairs");
    assert!(
        s.fusion.repair_count(helios_core::RepairCase::RawSourceFix) > 500,
        "case-1 fixes must be recorded"
    );
    assert!(
        s.fusion.accuracy_pct() > 95.0,
        "case 1 is not a misprediction: {:.1}%",
        s.fusion.accuracy_pct()
    );
}

#[test]
fn uch_queue_statistics_are_reported() {
    // In the NCSF kernel, the pair members commit unfused until the
    // predictor warms up — those instances train through the queue.
    let s = simulate(ncsf_kernel(2000), FusionMode::Helios);
    assert!(
        s.uch_queue_drained > 0,
        "unfused memory µ-ops must train through the queue"
    );
    // CSF-fused pairs never enter the queue at all.
    let csf = simulate(load_pair_kernel(500), FusionMode::Helios);
    assert_eq!(
        csf.uch_queue_drained + csf.uch_queue_dropped,
        0,
        "already-fused µ-ops are not eligible for UCH training (§IV-A1)"
    );
}

#[test]
fn stlf_forwards_from_both_halves_of_a_store_pair() {
    // Stores a pair, then reloads both halves: both loads must forward.
    let mut a = Asm::new();
    let buf = a.zeros(4096, 64);
    a.la(Reg::S0, buf);
    a.li(Reg::S1, 1000);
    let top = a.here();
    a.sd(Reg::S1, 0, Reg::S0); // store pair (CSF)
    a.sd(Reg::S1, 8, Reg::S0);
    a.ld(Reg::A0, 0, Reg::S0); // forwarded from the first half
    a.ld(Reg::A1, 8, Reg::S0); // forwarded from the second half
    a.add(Reg::S2, Reg::A0, Reg::A1);
    a.addi(Reg::S1, Reg::S1, -1);
    a.bnez(Reg::S1, top);
    a.halt();
    let s = simulate(a.assemble().unwrap(), FusionMode::CsfSbr);
    assert!(
        s.stlf_forwards >= 900,
        "stack-style reloads must forward: {}",
        s.stlf_forwards
    );
}

#[test]
fn dbr_load_pairs_fuse_under_helios() {
    // Two base registers pointing into the same line: invisible statically
    // (different architectural bases), fused by the predictor (§IV-B5).
    let mut a = Asm::new();
    let buf = a.zeros(4096, 64);
    a.la(Reg::S0, buf);
    a.la(Reg::S3, buf + 32); // second base, same line
    a.li(Reg::S1, 2000);
    let top = a.here();
    a.ld(Reg::A0, 0, Reg::S0);
    a.xori(Reg::T0, Reg::A0, 3);
    a.ld(Reg::A1, 0, Reg::S3); // DBR tail
    a.add(Reg::S2, Reg::S2, Reg::A1);
    a.addi(Reg::S1, Reg::S1, -1);
    a.bnez(Reg::S1, top);
    a.halt();
    let s = simulate(a.assemble().unwrap(), FusionMode::Helios);
    assert!(
        s.fusion.dbr_pairs > 1000,
        "DBR pairs must fuse predictively: {}",
        s.fusion.dbr_pairs
    );
    // CSF-SBR cannot touch them.
    assert_eq!(
        simulate(
            {
                let mut a = Asm::new();
                let buf = a.zeros(4096, 64);
                a.la(Reg::S0, buf);
                a.la(Reg::S3, buf + 32);
                a.li(Reg::S1, 100);
                let top = a.here();
                a.ld(Reg::A0, 0, Reg::S0);
                a.ld(Reg::A1, 0, Reg::S3);
                a.addi(Reg::S1, Reg::S1, -1);
                a.bnez(Reg::S1, top);
                a.halt();
                a.assemble().unwrap()
            },
            FusionMode::CsfSbr
        )
        .fusion
        .fused_pairs(),
        0
    );
}

#[test]
fn asymmetric_pairs_fuse_and_are_counted() {
    // lw (4B) + ld (8B), contiguous through one base: CSF-SBR explicitly
    // allows asymmetric pairs (§V-A).
    let mut a = Asm::new();
    let buf = a.zeros(4096, 64);
    a.la(Reg::S0, buf);
    a.li(Reg::S1, 800);
    let top = a.here();
    a.lw(Reg::A0, 0, Reg::S0);
    a.ld(Reg::A1, 4, Reg::S0);
    a.add(Reg::S2, Reg::A0, Reg::A1);
    a.addi(Reg::S1, Reg::S1, -1);
    a.bnez(Reg::S1, top);
    a.halt();
    let s = simulate(a.assemble().unwrap(), FusionMode::CsfSbr);
    assert!(s.fusion.csf_pairs > 700);
    assert!(
        s.fusion.asymmetric_pairs > 700,
        "asymmetric pairs counted: {}",
        s.fusion.asymmetric_pairs
    );
}

#[test]
fn next_line_pairs_pay_the_serialized_access() {
    // A pair straddling a line boundary fuses but needs two accesses
    // (§II-B "Cacheline Crossers") and is classified NextLine.
    let mut a = Asm::new();
    let buf = a.zeros(4096, 64);
    a.la(Reg::S0, buf + 32); // loads at +24 and +32 → 56..72: crosses 64
    a.li(Reg::S1, 800);
    let top = a.here();
    a.ld(Reg::A0, 24, Reg::S0);
    a.ld(Reg::A1, 32, Reg::S0);
    a.add(Reg::S2, Reg::A0, Reg::A1);
    a.addi(Reg::S1, Reg::S1, -1);
    a.bnez(Reg::S1, top);
    a.halt();
    let s = simulate(a.assemble().unwrap(), FusionMode::CsfSbr);
    assert!(s.fusion.csf_pairs > 700);
    assert!(
        s.fusion.next_line > 700,
        "boundary-straddling pairs are NextLine: cont={} next={}",
        s.fusion.contiguous,
        s.fusion.next_line
    );
}

#[test]
fn tso_senior_stores_drain_in_order() {
    // Store-heavy code must never deadlock or reorder senior drains; the
    // observable invariant here is completion with exact counts under all
    // configurations, plus nonzero drained-store traffic.
    let prog = store_pair_kernel(3000);
    for mode in FusionMode::ALL {
        let s = simulate(prog.clone(), mode);
        assert_eq!(s.stores, 12_000, "{mode}");
        assert!(s.l1d_accesses > 0, "{mode}");
    }
}
