//! MiBench-like kernels: `adpcm`, `basicmath`, `bitcount`, `blowfish`,
//! `crc32`.

use crate::{emit_output, Suite, Workload};
use helios_isa::{Asm, Reg};
use helios_prng::{Rng, SeedableRng, StdRng};

/// ADPCM-style delta encoder: per-sample table-driven step adaptation.
/// Mirrors MiBench `adpcm`: short loads, a small index table, data-dependent
/// branches.
pub fn adpcm() -> Workload {
    let mut rng = StdRng::seed_from_u64(0xadcc);
    let n = 12_000usize;
    let samples: Vec<u16> = (0..n).map(|_| rng.gen::<u16>() & 0x7fff).collect();
    let index_table: Vec<u64> = vec![1, 2, 4, 6, 8, 12, 16, 24];

    // Reference: running predictor with step table.
    let reference = {
        let mut pred = 0u64;
        let mut step = 7u64;
        let mut acc = 0u64;
        for &s in &samples {
            let s = s as u64;
            let diff = s.abs_diff(pred);
            let code = if diff >= step { 4u64 } else { 0 } + (diff & 3);
            step = index_table[(code & 7) as usize].wrapping_mul(step) / 4 + 1;
            pred = s;
            acc = acc.wrapping_add(code).wrapping_add(step);
        }
        acc
    };

    let mut a = Asm::new();
    let sample_addr = {
        let bytes: Vec<u8> = samples.iter().flat_map(|s| s.to_le_bytes()).collect();
        a.bytes_aligned(bytes, 8)
    };
    let table_addr = a.words64(&index_table);

    a.la(Reg::S0, sample_addr);
    a.la(Reg::S1, table_addr);
    a.li(Reg::S2, n as i64);
    a.li(Reg::S3, 0); // pred
    a.li(Reg::S4, 7); // step
    a.li(Reg::S5, 0); // acc
    let top = a.here();
    let ge = a.new_label();
    let join = a.new_label();
    let big = a.new_label();
    let small = a.new_label();
    a.lhu(Reg::T0, 0, Reg::S0); // sample
    a.bgeu(Reg::T0, Reg::S3, ge);
    a.sub(Reg::T1, Reg::S3, Reg::T0); // diff = pred - s
    a.j(join);
    a.bind(ge);
    a.sub(Reg::T1, Reg::T0, Reg::S3); // diff = s - pred
    a.bind(join);
    a.bgeu(Reg::T1, Reg::S4, big);
    a.li(Reg::T2, 0);
    a.j(small);
    a.bind(big);
    a.li(Reg::T2, 4);
    a.bind(small);
    a.andi(Reg::T3, Reg::T1, 3);
    a.add(Reg::T2, Reg::T2, Reg::T3); // code
    a.andi(Reg::T3, Reg::T2, 7);
    a.slli(Reg::T3, Reg::T3, 3);
    a.addi(Reg::S0, Reg::S0, 2) /* advance sample ptr in the gap */;
    a.add(Reg::T3, Reg::S1, Reg::T3); // &index_table[code&7]
    a.ld(Reg::T4, 0, Reg::T3);
    a.mul(Reg::T4, Reg::T4, Reg::S4);
    a.srli(Reg::T4, Reg::T4, 2);
    a.addi(Reg::S4, Reg::T4, 1); // step
    a.mv(Reg::S3, Reg::T0); // pred = s
    a.add(Reg::S5, Reg::S5, Reg::T2);
    a.add(Reg::S5, Reg::S5, Reg::S4);
    a.addi(Reg::S2, Reg::S2, -1);
    a.bnez(Reg::S2, top);
    emit_output(&mut a, Reg::S5);
    a.halt();

    Workload {
        name: "adpcm",
        suite: Suite::MiBenchLike,
        program: a.assemble().expect("adpcm assembles"),
        expected: vec![reference],
        fuel: 3_000_000,
    }
}

/// basicmath-style kernel: integer square roots and GCDs — divide-heavy
/// ALU code with very few memory operations.
pub fn basicmath() -> Workload {
    let mut rng = StdRng::seed_from_u64(0xba51c);
    let n = 3_000usize;
    let values: Vec<u64> = (0..n).map(|_| rng.gen::<u32>() as u64 + 1).collect();

    let isqrt = |v: u64| -> u64 {
        let mut x = v;
        let mut y = x.div_ceil(2);
        while y < x {
            x = y;
            y = (x + v / x) / 2;
        }
        x
    };
    let gcd = |mut a: u64, mut b: u64| -> u64 {
        while b != 0 {
            let t = a % b;
            a = b;
            b = t;
        }
        a
    };
    let reference = {
        let mut acc = 0u64;
        for i in 0..n {
            let v = values[i];
            acc = acc.wrapping_add(isqrt(v));
            acc = acc.wrapping_add(gcd(v, values[(i + 1) % n]));
        }
        acc
    };

    let mut a = Asm::new();
    let vals = a.words64(&values);
    a.la(Reg::S0, vals);
    a.li(Reg::S1, n as i64);
    a.li(Reg::S2, 0); // acc
    a.li(Reg::S5, 0); // index i
    let top = a.here();

    // v = values[i]
    a.slli(Reg::T0, Reg::S5, 3);
    a.add(Reg::T0, Reg::S0, Reg::T0); // slli+add LEA idiom
    a.ld(Reg::S3, 0, Reg::T0);

    // isqrt(v): x = v; y = (x+1)/2; while y < x { x = y; y = (x + v/x)/2 }
    a.mv(Reg::T1, Reg::S3); // x
    a.addi(Reg::T2, Reg::T1, 1);
    a.srli(Reg::T2, Reg::T2, 1); // y
    let sq_top = a.here();
    let sq_done = a.new_label();
    a.bgeu(Reg::T2, Reg::T1, sq_done);
    a.mv(Reg::T1, Reg::T2);
    a.divu(Reg::T3, Reg::S3, Reg::T1);
    a.add(Reg::T2, Reg::T1, Reg::T3);
    a.srli(Reg::T2, Reg::T2, 1);
    a.j(sq_top);
    a.bind(sq_done);
    a.add(Reg::S2, Reg::S2, Reg::T1);

    // gcd(v, values[(i+1) % n])
    a.addi(Reg::T0, Reg::S5, 1);
    a.li(Reg::T4, n as i64);
    a.remu(Reg::T0, Reg::T0, Reg::T4);
    a.slli(Reg::T0, Reg::T0, 3);
    a.add(Reg::T0, Reg::S0, Reg::T0);
    a.ld(Reg::T2, 0, Reg::T0); // b
    a.mv(Reg::T1, Reg::S3); // a
    let gcd_top = a.here();
    let gcd_done = a.new_label();
    a.beqz(Reg::T2, gcd_done);
    a.remu(Reg::T3, Reg::T1, Reg::T2);
    a.mv(Reg::T1, Reg::T2);
    a.mv(Reg::T2, Reg::T3);
    a.j(gcd_top);
    a.bind(gcd_done);
    a.add(Reg::S2, Reg::S2, Reg::T1);

    a.addi(Reg::S5, Reg::S5, 1);
    a.addi(Reg::S1, Reg::S1, -1);
    a.bnez(Reg::S1, top);
    emit_output(&mut a, Reg::S2);
    a.halt();

    Workload {
        name: "basicmath",
        suite: Suite::MiBenchLike,
        program: a.assemble().expect("basicmath assembles"),
        expected: vec![reference],
        fuel: 5_000_000,
    }
}

/// bitcount-style kernel: several bit-twiddling population counts — almost
/// no memory traffic, dense shift/mask idioms (`slli+srli`, `lui+addi`).
/// One of the paper's "Others idioms prevalent" applications (Fig. 2).
pub fn bitcount() -> Workload {
    let mut rng = StdRng::seed_from_u64(0xb17c);
    let n = 8_000usize;
    let values: Vec<u64> = (0..n).map(|_| rng.gen()).collect();

    let reference = {
        let mut acc = 0u64;
        for &v in &values {
            // SWAR popcount on the low 32 bits, then the high 32.
            let pop32 = |x: u64| -> u64 {
                let x = x & 0xffff_ffff;
                let x = x - ((x >> 1) & 0x5555_5555);
                let x = (x & 0x3333_3333) + ((x >> 2) & 0x3333_3333);
                let x = (x + (x >> 4)) & 0x0f0f_0f0f;
                x.wrapping_mul(0x0101_0101) >> 24 & 0xff
            };
            acc = acc.wrapping_add(pop32(v)).wrapping_add(pop32(v >> 32));
        }
        acc
    };

    let mut a = Asm::new();
    let vals = a.words64(&values);
    a.la(Reg::S0, vals);
    a.li(Reg::S1, n as i64);
    a.li(Reg::S2, 0); // acc
    // SWAR constants (lui+addi load-immediate idioms).
    a.li(Reg::S3, 0x5555_5555);
    a.li(Reg::S4, 0x3333_3333);
    a.li(Reg::S5, 0x0f0f_0f0f);
    a.li(Reg::S6, 0x0101_0101);
    let top = a.here();
    a.ld(Reg::T0, 0, Reg::S0);

    for half in 0..2 {
        if half == 0 {
            // Low word: clear upper (slli+srli idiom).
            a.slli(Reg::T1, Reg::T0, 32);
            a.srli(Reg::T1, Reg::T1, 32);
        } else {
            a.srli(Reg::T1, Reg::T0, 32);
        }
        a.srli(Reg::T2, Reg::T1, 1);
        a.and(Reg::T2, Reg::T2, Reg::S3);
        a.sub(Reg::T1, Reg::T1, Reg::T2);
        a.srli(Reg::T2, Reg::T1, 2);
        a.and(Reg::T2, Reg::T2, Reg::S4);
        a.and(Reg::T1, Reg::T1, Reg::S4);
        a.add(Reg::T1, Reg::T1, Reg::T2);
        a.srli(Reg::T2, Reg::T1, 4);
        a.add(Reg::T1, Reg::T1, Reg::T2);
        a.and(Reg::T1, Reg::T1, Reg::S5);
        a.mul(Reg::T1, Reg::T1, Reg::S6);
        a.srli(Reg::T1, Reg::T1, 24);
        a.andi(Reg::T1, Reg::T1, 0xff);
        a.add(Reg::S2, Reg::S2, Reg::T1);
    }

    a.addi(Reg::S0, Reg::S0, 8);
    a.addi(Reg::S1, Reg::S1, -1);
    a.bnez(Reg::S1, top);
    emit_output(&mut a, Reg::S2);
    a.halt();

    Workload {
        name: "bitcount",
        suite: Suite::MiBenchLike,
        program: a.assemble().expect("bitcount assembles"),
        expected: vec![reference],
        fuel: 3_000_000,
    }
}

/// blowfish-style Feistel kernel: four 256-entry S-boxes, byte extraction,
/// xor/add mixing — `slli+add` address idioms plus scattered word loads.
pub fn blowfish() -> Workload {
    let mut rng = StdRng::seed_from_u64(0xb10f);
    let sboxes: Vec<Vec<u64>> = (0..4)
        .map(|_| (0..256).map(|_| rng.gen::<u32>() as u64).collect())
        .collect();
    let blocks = 5_000usize;
    let data: Vec<u64> = (0..blocks).map(|_| rng.gen()).collect();

    let f = |s: &[Vec<u64>], x: u64| -> u64 {
        let a = (x >> 24) & 0xff;
        let b = (x >> 16) & 0xff;
        let c = (x >> 8) & 0xff;
        let d = x & 0xff;
        let h = s[0][a as usize].wrapping_add(s[1][b as usize]);
        (h ^ s[2][c as usize]).wrapping_add(s[3][d as usize]) & 0xffff_ffff
    };
    let reference = {
        let mut acc = 0u64;
        for &blk in &data {
            let mut l = blk >> 32;
            let mut r = blk & 0xffff_ffff;
            for _ in 0..4 {
                l ^= f(&sboxes, r);
                l &= 0xffff_ffff;
                std::mem::swap(&mut l, &mut r);
            }
            acc = acc.wrapping_add((l << 32) | r);
        }
        acc
    };

    let mut a = Asm::new();
    let sb: Vec<u64> = (0..4).map(|i| a.words64(&sboxes[i])).collect();
    let blocks_addr = a.words64(&data);
    a.la(Reg::S0, blocks_addr);
    a.li(Reg::S1, blocks as i64);
    a.li(Reg::S2, 0); // acc
    a.la(Reg::S3, sb[0]);
    a.la(Reg::S4, sb[1]);
    a.la(Reg::S5, sb[2]);
    a.la(Reg::S6, sb[3]);
    a.li(Reg::S7, 0xffff_ffff);
    let top = a.here();
    a.ld(Reg::T0, 0, Reg::S0);
    a.srli(Reg::A2, Reg::T0, 32); // l
    a.and(Reg::A3, Reg::T0, Reg::S7); // r
    for _ in 0..4 {
        // F(r): four byte lookups, software-pipelined so the address shifts
        // and adds of different lookups interleave (as a scheduler would).
        a.srli(Reg::T1, Reg::A3, 24);
        a.srli(Reg::T2, Reg::A3, 16);
        a.andi(Reg::T1, Reg::T1, 0xff);
        a.andi(Reg::T2, Reg::T2, 0xff);
        a.slli(Reg::T1, Reg::T1, 3);
        a.slli(Reg::T2, Reg::T2, 3);
        a.add(Reg::T1, Reg::S3, Reg::T1);
        a.add(Reg::T2, Reg::S4, Reg::T2);
        a.ld(Reg::T1, 0, Reg::T1);
        a.ld(Reg::T2, 0, Reg::T2);
        a.srli(Reg::T4, Reg::A3, 8);
        a.andi(Reg::T5, Reg::A3, 0xff);
        a.andi(Reg::T4, Reg::T4, 0xff);
        a.slli(Reg::T5, Reg::T5, 3);
        a.slli(Reg::T4, Reg::T4, 3);
        a.add(Reg::T5, Reg::S6, Reg::T5);
        a.add(Reg::T4, Reg::S5, Reg::T4);
        a.add(Reg::T1, Reg::T1, Reg::T2);
        a.ld(Reg::T4, 0, Reg::T4);
        a.ld(Reg::T5, 0, Reg::T5);
        a.xor(Reg::T1, Reg::T1, Reg::T4);
        a.add(Reg::T1, Reg::T1, Reg::T5);
        a.and(Reg::T1, Reg::T1, Reg::S7); // F & mask
        a.xor(Reg::A2, Reg::A2, Reg::T1);
        a.and(Reg::A2, Reg::A2, Reg::S7);
        // swap(l, r)
        a.mv(Reg::T3, Reg::A2);
        a.mv(Reg::A2, Reg::A3);
        a.mv(Reg::A3, Reg::T3);
    }
    a.slli(Reg::T0, Reg::A2, 32);
    a.or(Reg::T0, Reg::T0, Reg::A3);
    a.add(Reg::S2, Reg::S2, Reg::T0);
    a.addi(Reg::S0, Reg::S0, 8);
    a.addi(Reg::S1, Reg::S1, -1);
    a.bnez(Reg::S1, top);
    emit_output(&mut a, Reg::S2);
    a.halt();

    Workload {
        name: "blowfish",
        suite: Suite::MiBenchLike,
        program: a.assemble().expect("blowfish assembles"),
        expected: vec![reference],
        fuel: 3_000_000,
    }
}

/// Table-driven CRC-32 over a byte buffer (MiBench `crc32`): byte loads,
/// a 256-entry table, and shift/xor chains.
pub fn crc32() -> Workload {
    let mut rng = StdRng::seed_from_u64(0xc3c);
    let n = 16_000usize;
    let buf: Vec<u8> = (0..n).map(|_| rng.gen()).collect();

    let table: Vec<u32> = (0..256u32)
        .map(|i| {
            let mut c = i;
            for _ in 0..8 {
                c = if c & 1 != 0 { 0xedb8_8320 ^ (c >> 1) } else { c >> 1 };
            }
            c
        })
        .collect();
    let reference = {
        let mut crc = 0xffff_ffffu32;
        for &b in &buf {
            crc = table[((crc ^ b as u32) & 0xff) as usize] ^ (crc >> 8);
        }
        (crc ^ 0xffff_ffff) as u64
    };

    let mut a = Asm::new();
    let table_addr = a.words32(&table);
    let buf_addr = a.bytes_aligned(buf, 8);
    a.la(Reg::S0, table_addr);
    a.la(Reg::S1, buf_addr);
    a.li(Reg::S2, n as i64);
    a.li(Reg::A0, 0xffff_ffff); // crc, zero-extended
    let top = a.here();
    a.lbu(Reg::T0, 0, Reg::S1);
    a.xor(Reg::T0, Reg::A0, Reg::T0);
    a.andi(Reg::T0, Reg::T0, 0xff);
    a.slli(Reg::T0, Reg::T0, 2);
    a.srli(Reg::T2, Reg::A0, 8); // scheduled between shift and add
    a.add(Reg::T0, Reg::S0, Reg::T0);
    a.addi(Reg::S1, Reg::S1, 1);
    a.lwu(Reg::T1, 0, Reg::T0);
    a.xor(Reg::A0, Reg::T2, Reg::T1);
    a.addi(Reg::S2, Reg::S2, -1);
    a.bnez(Reg::S2, top);
    a.not(Reg::A0, Reg::A0);
    a.slli(Reg::A0, Reg::A0, 32); // clear-upper idiom
    a.srli(Reg::A0, Reg::A0, 32);
    emit_output(&mut a, Reg::A0);
    a.halt();

    Workload {
        name: "crc32",
        suite: Suite::MiBenchLike,
        program: a.assemble().expect("crc32 assembles"),
        expected: vec![reference],
        fuel: 3_000_000,
    }
}
