//! MiBench-like kernels: `dijkstra`, `fft`, `gsm_toast`, `gsm_untoast`,
//! `jpeg`.

use crate::{emit_output, Suite, Workload};
use helios_isa::{Asm, Reg};
use helios_prng::{Rng, SeedableRng, StdRng};

const INF: u64 = 0x3fff_ffff;

/// Dijkstra over a dense adjacency matrix (MiBench `dijkstra`). Node records
/// are 32-byte `{dist, _, visited, _}` structs: the min-scan's field loads
/// are same-line but neither contiguous nor consecutive — fusible only by
/// NCTF/NCSF-capable hardware (Helios); relaxation mixes loads, compares,
/// and stores.
pub fn dijkstra() -> Workload {
    let mut rng = StdRng::seed_from_u64(0xd13);
    let v = 72usize;
    let adj: Vec<u32> = (0..v * v).map(|_| rng.gen_range(1..100u32)).collect();

    let reference = {
        let mut dist = vec![INF; v];
        let mut visited = vec![false; v];
        dist[0] = 0;
        for _ in 0..v {
            let mut best = INF + 1;
            let mut bi = 0usize;
            for i in 0..v {
                if !visited[i] && dist[i] < best {
                    best = dist[i];
                    bi = i;
                }
            }
            visited[bi] = true;
            for j in 0..v {
                let cand = dist[bi] + adj[bi * v + j] as u64;
                if cand < dist[j] {
                    dist[j] = cand;
                }
            }
        }
        dist.iter().fold(0u64, |a, &d| a.wrapping_add(d))
    };

    let mut a = Asm::new();
    // Node records: {dist, pad, visited, pad} × v (32 B, so dist and
    // visited sit at offsets 0 and 16 of one line: same-line, not
    // contiguous — fusible only by NCTF-capable hardware).
    let mut nodes = Vec::with_capacity(4 * v);
    for i in 0..v {
        nodes.push(if i == 0 { 0 } else { INF });
        nodes.push(0);
        nodes.push(0);
        nodes.push(0);
    }
    let nodes_addr = a.words64(&nodes);
    let adj_addr = a.words32(&adj);

    a.la(Reg::S0, nodes_addr);
    a.la(Reg::S1, adj_addr);
    a.li(Reg::S2, v as i64);
    a.li(Reg::S3, v as i64); // outer counter
    let outer = a.here();

    // --- find unvisited minimum ---
    a.li(Reg::T0, (INF + 1) as i64); // best
    a.li(Reg::T1, 0); // best index
    a.li(Reg::T2, 0); // i
    a.mv(Reg::T3, Reg::S0); // &node[0]
    let scan = a.here();
    let skip = a.new_label();
    a.ld(Reg::T4, 0, Reg::T3); // dist — head nucleus
    a.addi(Reg::T2, Reg::T2, 1); // catalyst work
    a.ld(Reg::T5, 16, Reg::T3); // visited — same-line NCSF tail
    a.bnez(Reg::T5, skip);
    a.bgeu(Reg::T4, Reg::T0, skip);
    a.mv(Reg::T0, Reg::T4);
    a.addi(Reg::T1, Reg::T2, -1);
    a.bind(skip);
    a.addi(Reg::T3, Reg::T3, 32);
    a.blt(Reg::T2, Reg::S2, scan);

    // --- visit best ---
    a.slli(Reg::T3, Reg::T1, 5);
    a.add(Reg::T3, Reg::S0, Reg::T3);
    a.li(Reg::T6, 1);
    a.sd(Reg::T6, 16, Reg::T3);
    a.ld(Reg::A4, 0, Reg::T3); // dist[best]

    // --- relax row ---
    a.mul(Reg::T4, Reg::T1, Reg::S2);
    a.slli(Reg::T4, Reg::T4, 2);
    a.add(Reg::T4, Reg::S1, Reg::T4); // &adj[best][0]
    a.li(Reg::T2, 0);
    a.mv(Reg::T3, Reg::S0);
    let relax = a.here();
    let no_update = a.new_label();
    a.lwu(Reg::T5, 0, Reg::T4);
    a.add(Reg::T5, Reg::A4, Reg::T5); // cand
    a.ld(Reg::T6, 0, Reg::T3); // dist[j]
    a.bgeu(Reg::T5, Reg::T6, no_update);
    a.sd(Reg::T5, 0, Reg::T3);
    a.bind(no_update);
    a.addi(Reg::T4, Reg::T4, 4);
    a.addi(Reg::T3, Reg::T3, 32);
    a.addi(Reg::T2, Reg::T2, 1);
    a.blt(Reg::T2, Reg::S2, relax);

    a.addi(Reg::S3, Reg::S3, -1);
    a.bnez(Reg::S3, outer);

    // --- checksum = sum of distances ---
    a.li(Reg::A0, 0);
    a.li(Reg::T2, 0);
    a.mv(Reg::T3, Reg::S0);
    let sum = a.here();
    a.ld(Reg::T4, 0, Reg::T3);
    a.add(Reg::A0, Reg::A0, Reg::T4);
    a.addi(Reg::T3, Reg::T3, 32);
    a.addi(Reg::T2, Reg::T2, 1);
    a.blt(Reg::T2, Reg::S2, sum);
    emit_output(&mut a, Reg::A0);
    a.halt();

    Workload {
        name: "dijkstra",
        suite: Suite::MiBenchLike,
        program: a.assemble().expect("dijkstra assembles"),
        expected: vec![reference],
        fuel: 3_000_000,
    }
}

/// Fixed-point butterfly transform over complex records (MiBench `fft`
/// stand-in): every butterfly loads two `{re, im}` pairs and stores two —
/// the densest load-pair/store-pair kernel in the suite.
pub fn fft() -> Workload {
    let mut rng = StdRng::seed_from_u64(0xff7);
    let n = 512usize;
    let stages = 9usize; // log2(n)
    let init: Vec<i64> = (0..2 * n).map(|_| rng.gen_range(-1000..1000i64)).collect();
    let twiddle: Vec<i64> = (0..64).map(|_| rng.gen_range(-256..256i64)).collect();

    let reference = {
        let mut x = init.clone();
        for pass in 0..2 {
            for s in 0..stages {
                let half = 1usize << s;
                let mut i = 0;
                while i < n {
                    for j in 0..half {
                        let p = i + j;
                        let q = p + half;
                        let w = twiddle[(s * 7 + j + pass) & 63];
                        let (ar, ai) = (x[2 * p], x[2 * p + 1]);
                        let (br, bi) = (x[2 * q], x[2 * q + 1]);
                        let tr = br.wrapping_mul(w) >> 8;
                        let ti = bi.wrapping_mul(w) >> 8;
                        x[2 * p] = ar.wrapping_add(tr);
                        x[2 * p + 1] = ai.wrapping_add(ti);
                        x[2 * q] = ar.wrapping_sub(tr);
                        x[2 * q + 1] = ai.wrapping_sub(ti);
                    }
                    i += 2 * half;
                }
            }
        }
        x.iter().fold(0u64, |a, &v| a.wrapping_add(v as u64))
    };

    let mut a = Asm::new();
    let x_addr = {
        let bytes: Vec<u8> = init.iter().flat_map(|v| v.to_le_bytes()).collect();
        a.bytes_aligned(bytes, 64)
    };
    let tw_addr = a.words64(&twiddle.iter().map(|&v| v as u64).collect::<Vec<_>>());

    a.la(Reg::S0, x_addr);
    a.la(Reg::S1, tw_addr);
    a.li(Reg::S2, n as i64);
    a.li(Reg::S11, 0); // pass
    let pass_top = a.here();
    a.li(Reg::S3, 0); // s (stage)
    let stage_top = a.here();
    a.li(Reg::T0, 1);
    a.sll(Reg::S4, Reg::T0, Reg::S3); // half
    a.li(Reg::S5, 0); // i
    let block_top = a.here();
    a.li(Reg::S6, 0); // j
    let bf_top = a.here();
    // p = i + j; q = p + half
    a.add(Reg::T0, Reg::S5, Reg::S6);
    a.slli(Reg::T1, Reg::T0, 4);
    a.add(Reg::T2, Reg::T0, Reg::S4);
    a.add(Reg::T1, Reg::S0, Reg::T1); // &x[p] record
    a.slli(Reg::T2, Reg::T2, 4);
    a.add(Reg::T2, Reg::S0, Reg::T2); // &x[q] record
    // w = twiddle[(s*7 + j + pass) & 63]
    a.slli(Reg::T3, Reg::S3, 3);
    a.sub(Reg::T3, Reg::T3, Reg::S3); // s*7
    a.add(Reg::T3, Reg::T3, Reg::S6);
    a.add(Reg::T3, Reg::T3, Reg::S11);
    a.andi(Reg::T3, Reg::T3, 63);
    a.slli(Reg::T3, Reg::T3, 3);
    a.addi(Reg::S6, Reg::S6, 0) /* gap */;
    a.add(Reg::T3, Reg::S1, Reg::T3);
    a.ld(Reg::T3, 0, Reg::T3);
    // load both complex records (load pairs)
    a.ld(Reg::A2, 0, Reg::T1); // ar
    a.ld(Reg::A3, 8, Reg::T1); // ai
    a.ld(Reg::A4, 0, Reg::T2); // br
    a.ld(Reg::A5, 8, Reg::T2); // bi
    a.mul(Reg::A4, Reg::A4, Reg::T3);
    a.srai(Reg::A4, Reg::A4, 8); // tr
    a.mul(Reg::A5, Reg::A5, Reg::T3);
    a.srai(Reg::A5, Reg::A5, 8); // ti
    a.add(Reg::T4, Reg::A2, Reg::A4);
    a.add(Reg::T5, Reg::A3, Reg::A5);
    a.sd(Reg::T4, 0, Reg::T1); // store pair
    a.sd(Reg::T5, 8, Reg::T1);
    a.sub(Reg::T4, Reg::A2, Reg::A4);
    a.sub(Reg::T5, Reg::A3, Reg::A5);
    a.sd(Reg::T4, 0, Reg::T2); // store pair
    a.sd(Reg::T5, 8, Reg::T2);
    a.addi(Reg::S6, Reg::S6, 1);
    a.blt(Reg::S6, Reg::S4, bf_top);
    a.slli(Reg::T0, Reg::S4, 1);
    a.add(Reg::S5, Reg::S5, Reg::T0);
    a.blt(Reg::S5, Reg::S2, block_top);
    a.addi(Reg::S3, Reg::S3, 1);
    a.li(Reg::T0, stages as i64);
    a.blt(Reg::S3, Reg::T0, stage_top);
    a.addi(Reg::S11, Reg::S11, 1);
    a.li(Reg::T0, 2);
    a.blt(Reg::S11, Reg::T0, pass_top);

    // checksum
    a.li(Reg::A0, 0);
    a.li(Reg::T2, 0);
    a.li(Reg::T6, 2 * n as i64);
    a.mv(Reg::T3, Reg::S0);
    let sum = a.here();
    a.ld(Reg::T4, 0, Reg::T3);
    a.add(Reg::A0, Reg::A0, Reg::T4);
    a.addi(Reg::T3, Reg::T3, 8);
    a.addi(Reg::T2, Reg::T2, 1);
    a.blt(Reg::T2, Reg::T6, sum);
    emit_output(&mut a, Reg::A0);
    a.halt();

    Workload {
        name: "fft",
        suite: Suite::MiBenchLike,
        program: a.assemble().expect("fft assembles"),
        expected: vec![reference],
        fuel: 5_000_000,
    }
}

/// GSM encode-side kernel: windowed dot products over 16-bit samples —
/// contiguous short loads with multiply-accumulate chains.
pub fn gsm_toast() -> Workload {
    let mut rng = StdRng::seed_from_u64(0x95a);
    let frames = 240usize;
    let frame_len = 160usize;
    let samples: Vec<i16> = (0..frames * frame_len)
        .map(|_| rng.gen_range(-4096..4096i16))
        .collect();
    let coeffs: Vec<i16> = (0..8).map(|_| rng.gen_range(-128..128i16)).collect();

    let reference = {
        let mut acc = 0u64;
        for f in 0..frames {
            let mut e = 0i64;
            for i in 0..frame_len {
                let s = samples[f * frame_len + i] as i64;
                let c = coeffs[i & 7] as i64;
                e = e.wrapping_add(s.wrapping_mul(c)) >> 1;
            }
            acc = acc.wrapping_add(e as u64);
        }
        acc
    };

    let mut a = Asm::new();
    let s_addr = {
        let bytes: Vec<u8> = samples.iter().flat_map(|v| v.to_le_bytes()).collect();
        a.bytes_aligned(bytes, 8)
    };
    let c_addr = {
        let bytes: Vec<u8> = coeffs.iter().flat_map(|v| v.to_le_bytes()).collect();
        a.bytes_aligned(bytes, 8)
    };
    a.la(Reg::S0, s_addr);
    a.la(Reg::S1, c_addr);
    a.li(Reg::S2, frames as i64);
    a.li(Reg::S5, 0); // acc
    let frame = a.here();
    a.li(Reg::T0, frame_len as i64);
    a.li(Reg::T1, 0); // e
    a.li(Reg::T2, 0); // i
    let inner = a.here();
    a.lh(Reg::T3, 0, Reg::S0);
    a.andi(Reg::T4, Reg::T2, 7);
    a.slli(Reg::T4, Reg::T4, 1);
    a.addi(Reg::S0, Reg::S0, 2); // scheduled between shift and add
    a.add(Reg::T4, Reg::S1, Reg::T4);
    a.addi(Reg::T2, Reg::T2, 1);
    a.lh(Reg::T4, 0, Reg::T4);
    a.mul(Reg::T3, Reg::T3, Reg::T4);
    a.add(Reg::T1, Reg::T1, Reg::T3);
    a.srai(Reg::T1, Reg::T1, 1);
    a.blt(Reg::T2, Reg::T0, inner);
    a.add(Reg::S5, Reg::S5, Reg::T1);
    a.addi(Reg::S2, Reg::S2, -1);
    a.bnez(Reg::S2, frame);
    emit_output(&mut a, Reg::S5);
    a.halt();

    Workload {
        name: "gsm_toast",
        suite: Suite::MiBenchLike,
        program: a.assemble().expect("gsm_toast assembles"),
        expected: vec![reference],
        fuel: 5_000_000,
    }
}

/// GSM decode-side kernel: short-term synthesis writing reconstructed
/// samples — a balanced load/compute/store stream.
pub fn gsm_untoast() -> Workload {
    let mut rng = StdRng::seed_from_u64(0x95b);
    let n = 24_000usize;
    let codes: Vec<i16> = (0..n).map(|_| rng.gen_range(-512..512i16)).collect();

    let reference = {
        let mut prev = 0i64;
        let mut acc = 0u64;
        for &c in &codes {
            let c = c as i64;
            let v = prev.wrapping_mul(3) / 4 + c * 16;
            prev = v;
            acc = acc.wrapping_add(v as u64);
        }
        acc
    };

    let mut a = Asm::new();
    let c_addr = {
        let bytes: Vec<u8> = codes.iter().flat_map(|v| v.to_le_bytes()).collect();
        a.bytes_aligned(bytes, 8)
    };
    let out_addr = a.zeros((n * 8) as u64, 64);
    a.la(Reg::S0, c_addr);
    a.la(Reg::S1, out_addr);
    a.li(Reg::S2, n as i64);
    a.li(Reg::S3, 0); // prev
    a.li(Reg::S4, 0); // acc
    let top = a.here();
    a.lh(Reg::T0, 0, Reg::S0);
    a.slli(Reg::T1, Reg::S3, 1);
    a.li(Reg::T2, 4);
    a.add(Reg::T1, Reg::T1, Reg::S3); // prev*3
    a.div(Reg::T1, Reg::T1, Reg::T2); // /4 (signed, like the reference)
    a.slli(Reg::T0, Reg::T0, 4);
    a.add(Reg::T1, Reg::T1, Reg::T0); // v
    a.mv(Reg::S3, Reg::T1);
    a.sd(Reg::T1, 0, Reg::S1);
    a.add(Reg::S4, Reg::S4, Reg::T1);
    a.addi(Reg::S0, Reg::S0, 2);
    a.addi(Reg::S1, Reg::S1, 8);
    a.addi(Reg::S2, Reg::S2, -1);
    a.bnez(Reg::S2, top);
    emit_output(&mut a, Reg::S4);
    a.halt();

    Workload {
        name: "gsm_untoast",
        suite: Suite::MiBenchLike,
        program: a.assemble().expect("gsm_untoast assembles"),
        expected: vec![reference],
        fuel: 3_000_000,
    }
}

/// 8×8 integer DCT-like row transform over many blocks (MiBench `jpeg`
/// stand-in): eight contiguous word loads per row (four load-pair idioms),
/// butterfly arithmetic, eight contiguous stores.
pub fn jpeg() -> Workload {
    let mut rng = StdRng::seed_from_u64(0x19e9);
    let blocks = 700usize;
    let data: Vec<i32> = (0..blocks * 64).map(|_| rng.gen_range(-128..128i32)).collect();

    let reference = {
        let mut acc = 0u64;
        for b in 0..blocks {
            let mut blk: Vec<i64> = data[b * 64..(b + 1) * 64].iter().map(|&v| v as i64).collect();
            for r in 0..8 {
                let row = &mut blk[r * 8..(r + 1) * 8];
                let mut s = [0i64; 8];
                for k in 0..4 {
                    s[k] = row[k] + row[7 - k];
                    s[k + 4] = row[k] - row[7 - k];
                }
                row[0] = s[0] + s[3];
                row[1] = s[1] + s[2];
                row[2] = (s[0] - s[3]).wrapping_mul(181) >> 7;
                row[3] = (s[1] - s[2]).wrapping_mul(181) >> 7;
                row[4] = s[4].wrapping_mul(98) >> 7;
                row[5] = s[5].wrapping_mul(139) >> 7;
                row[6] = s[6].wrapping_mul(181) >> 7;
                row[7] = s[7].wrapping_mul(251) >> 7;
            }
            for &v in blk.iter() {
                acc = acc.wrapping_add(v as u64);
            }
        }
        acc
    };

    let mut a = Asm::new();
    let d_addr = {
        let bytes: Vec<u8> = data.iter().flat_map(|v| v.to_le_bytes()).collect();
        a.bytes_aligned(bytes, 64)
    };
    a.la(Reg::S0, d_addr);
    a.li(Reg::S1, (blocks * 8) as i64); // total rows
    a.li(Reg::S2, 0); // acc
    let row_top = a.here();
    // Load the row: 8 contiguous lw (four pair idioms).
    a.lw(Reg::A0, 0, Reg::S0);
    a.lw(Reg::A1, 4, Reg::S0);
    a.lw(Reg::A2, 8, Reg::S0);
    a.lw(Reg::A3, 12, Reg::S0);
    a.lw(Reg::A4, 16, Reg::S0);
    a.lw(Reg::A5, 20, Reg::S0);
    a.lw(Reg::A6, 24, Reg::S0);
    a.lw(Reg::A7, 28, Reg::S0);
    // s0..s3 = v[k] + v[7-k]; s4..s7 = v[k] - v[7-k]
    a.add(Reg::T0, Reg::A0, Reg::A7);
    a.add(Reg::T1, Reg::A1, Reg::A6);
    a.add(Reg::T2, Reg::A2, Reg::A5);
    a.add(Reg::T3, Reg::A3, Reg::A4);
    a.sub(Reg::T4, Reg::A0, Reg::A7);
    a.sub(Reg::T5, Reg::A1, Reg::A6);
    a.sub(Reg::T6, Reg::A2, Reg::A5);
    a.sub(Reg::A0, Reg::A3, Reg::A4); // s7 in A0
    // Outputs.
    a.add(Reg::A1, Reg::T0, Reg::T3); // r0
    a.add(Reg::A2, Reg::T1, Reg::T2); // r1
    a.sub(Reg::A3, Reg::T0, Reg::T3);
    a.li(Reg::A4, 181);
    a.mul(Reg::A3, Reg::A3, Reg::A4);
    a.srai(Reg::A3, Reg::A3, 7); // r2
    a.sub(Reg::A5, Reg::T1, Reg::T2);
    a.mul(Reg::A5, Reg::A5, Reg::A4);
    a.srai(Reg::A5, Reg::A5, 7); // r3
    a.li(Reg::A6, 98);
    a.mul(Reg::T4, Reg::T4, Reg::A6);
    a.srai(Reg::T4, Reg::T4, 7); // r4
    a.li(Reg::A6, 139);
    a.mul(Reg::T5, Reg::T5, Reg::A6);
    a.srai(Reg::T5, Reg::T5, 7); // r5
    a.mul(Reg::T6, Reg::T6, Reg::A4);
    a.srai(Reg::T6, Reg::T6, 7); // r6
    a.li(Reg::A6, 251);
    a.mul(Reg::A0, Reg::A0, Reg::A6);
    a.srai(Reg::A0, Reg::A0, 7); // r7
    // Store the row back (contiguous sw runs).
    a.sw(Reg::A1, 0, Reg::S0);
    a.sw(Reg::A2, 4, Reg::S0);
    a.sw(Reg::A3, 8, Reg::S0);
    a.sw(Reg::A5, 12, Reg::S0);
    a.sw(Reg::T4, 16, Reg::S0);
    a.sw(Reg::T5, 20, Reg::S0);
    a.sw(Reg::T6, 24, Reg::S0);
    a.sw(Reg::A0, 28, Reg::S0);
    // Accumulate the transformed row (sign-extended words).
    for (i, r) in [
        Reg::A1,
        Reg::A2,
        Reg::A3,
        Reg::A5,
        Reg::T4,
        Reg::T5,
        Reg::T6,
        Reg::A0,
    ]
    .iter()
    .enumerate()
    {
        let _ = i;
        // The in-memory values are truncated to 32 bits; accumulate the
        // sign-extended 32-bit value to match the reference exactly.
        a.addiw(Reg::T0, *r, 0);
        a.add(Reg::S2, Reg::S2, Reg::T0);
    }
    a.addi(Reg::S0, Reg::S0, 32);
    a.addi(Reg::S1, Reg::S1, -1);
    a.bnez(Reg::S1, row_top);
    emit_output(&mut a, Reg::S2);
    a.halt();

    Workload {
        name: "jpeg",
        suite: Suite::MiBenchLike,
        program: a.assemble().expect("jpeg assembles"),
        expected: vec![reference],
        fuel: 5_000_000,
    }
}
