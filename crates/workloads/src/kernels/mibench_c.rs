//! MiBench-like kernels: `patricia`, `qsort`, `rijndael`, `rsynth`.

use crate::{emit_output, Suite, Workload};
use helios_isa::{Asm, Reg};
use helios_prng::{Rng, SeedableRng, StdRng};

/// Radix-trie walk (MiBench `patricia`): 32-byte nodes `{bit, left, right,
/// key}` — one lookup touches three fields of the same cache line through
/// the same base register at non-consecutive positions, the canonical NCSF
/// opportunity.
pub fn patricia() -> Workload {
    let mut rng = StdRng::seed_from_u64(0xbada);
    let depth = 11usize;
    let n_nodes = (1usize << (depth + 1)) - 1; // complete binary tree
    let lookups = 3_000usize;
    let keys: Vec<u64> = (0..lookups).map(|_| rng.gen::<u64>() >> 32).collect();
    let leaf_vals: Vec<u64> = (0..1usize << depth).map(|_| rng.gen::<u32>() as u64).collect();

    // Node i children: 2i+1, 2i+2; levels 0..depth-1 internal, level depth
    // leaves. Lookup: at level l test key bit l.
    let reference = {
        let mut acc = 0u64;
        for &k in &keys {
            let mut idx = 0usize;
            for l in 0..depth {
                let bit = (k >> l) & 1;
                idx = 2 * idx + 1 + bit as usize;
            }
            acc = acc.wrapping_add(leaf_vals[idx - ((1 << depth) - 1)]);
        }
        acc
    };

    let mut a = Asm::new();
    let base = a.zeros(0, 64);
    let mut nodes = Vec::with_capacity(n_nodes * 4);
    for i in 0..n_nodes {
        let level = (usize::BITS - (i + 1).leading_zeros() - 1) as usize;
        if level < depth {
            nodes.push(level as u64); // bit index to test
            nodes.push(base + (2 * i + 1) as u64 * 32); // left
            nodes.push(base + (2 * i + 2) as u64 * 32); // right
            nodes.push(0); // key (unused for internal)
        } else {
            nodes.push(u64::MAX); // leaf marker
            nodes.push(0);
            nodes.push(0);
            nodes.push(leaf_vals[i - ((1 << depth) - 1)]);
        }
    }
    let actual = a.words64(&nodes);
    assert_eq!(actual, base, "trie base address pinned");
    let keys_addr = a.words64(&keys);

    a.la(Reg::S0, keys_addr);
    a.li(Reg::S1, lookups as i64);
    a.li(Reg::S2, 0); // acc
    a.li(Reg::S4, base as i64); // root
    let top = a.here();
    a.ld(Reg::A1, 0, Reg::S0); // key
    a.mv(Reg::T0, Reg::S4); // node
    let walk = a.here();
    let leaf = a.new_label();
    let right = a.new_label();
    let next = a.new_label();
    a.ld(Reg::T1, 0, Reg::T0); // bit  — same-line field loads
    a.bltz(Reg::T1, leaf); // u64::MAX marker is negative
    a.srl(Reg::T2, Reg::A1, Reg::T1);
    a.andi(Reg::T2, Reg::T2, 1);
    a.bnez(Reg::T2, right);
    a.ld(Reg::T0, 8, Reg::T0); // left
    a.j(next);
    a.bind(right);
    a.ld(Reg::T0, 16, Reg::T0); // right
    a.bind(next);
    a.j(walk);
    a.bind(leaf);
    a.ld(Reg::T3, 24, Reg::T0); // leaf key
    a.add(Reg::S2, Reg::S2, Reg::T3);
    a.addi(Reg::S0, Reg::S0, 8);
    a.addi(Reg::S1, Reg::S1, -1);
    a.bnez(Reg::S1, top);
    emit_output(&mut a, Reg::S2);
    a.halt();

    Workload {
        name: "patricia",
        suite: Suite::MiBenchLike,
        program: a.assemble().expect("patricia assembles"),
        expected: vec![reference],
        fuel: 5_000_000,
    }
}

/// Iterative Hoare quicksort over u64 (MiBench `qsort`): swap-heavy
/// partitioning plus an explicit range stack whose pushes and pops are
/// store-pair/load-pair idioms.
pub fn qsort() -> Workload {
    let mut rng = StdRng::seed_from_u64(0x9507);
    let n = 3_000usize;
    let data: Vec<u64> = (0..n).map(|_| rng.gen::<u32>() as u64).collect();

    let reference = {
        let mut v = data.clone();
        v.sort_unstable();
        v.iter()
            .enumerate()
            .fold(0u64, |a, (i, &x)| a.wrapping_add(x.wrapping_mul(i as u64 + 1)))
    };

    let mut a = Asm::new();
    let arr = a.words64(&data);
    let stack = a.zeros(4096 * 16, 16);
    a.la(Reg::S0, arr);
    a.la(Reg::S1, stack); // stack pointer (grows up, 16B frames)
    // push (lo=0, hi=n-1)
    a.li(Reg::T0, 0);
    a.li(Reg::T1, (n - 1) as i64);
    a.sd(Reg::T0, 0, Reg::S1); // store pair
    a.sd(Reg::T1, 8, Reg::S1);
    a.addi(Reg::S1, Reg::S1, 16);
    a.la(Reg::S2, stack); // stack base

    let pop = a.here();
    let done = a.new_label();
    a.bgeu(Reg::S2, Reg::S1, done); // empty?
    a.addi(Reg::S1, Reg::S1, -16);
    a.ld(Reg::S3, 0, Reg::S1); // lo   (load pair)
    a.ld(Reg::S4, 8, Reg::S1); // hi
    a.bgeu(Reg::S3, Reg::S4, pop);

    // pivot = arr[(lo+hi)/2]
    a.add(Reg::T0, Reg::S3, Reg::S4);
    a.srli(Reg::T0, Reg::T0, 1);
    a.slli(Reg::T0, Reg::T0, 3);
    a.add(Reg::T0, Reg::S0, Reg::T0);
    a.ld(Reg::S5, 0, Reg::T0); // pivot
    // i = lo - 1; j = hi + 1 (kept as byte pointers)
    a.slli(Reg::S6, Reg::S3, 3);
    a.add(Reg::S6, Reg::S0, Reg::S6);
    a.addi(Reg::S6, Reg::S6, -8); // &arr[lo-1]
    a.slli(Reg::S7, Reg::S4, 3);
    a.add(Reg::S7, Reg::S0, Reg::S7);
    a.addi(Reg::S7, Reg::S7, 8); // &arr[hi+1]

    let part = a.here();
    // do i++ while arr[i] < pivot
    let i_scan = a.here();
    a.addi(Reg::S6, Reg::S6, 8);
    a.ld(Reg::T1, 0, Reg::S6);
    a.bltu(Reg::T1, Reg::S5, i_scan);
    // do j-- while arr[j] > pivot
    let j_scan = a.here();
    a.addi(Reg::S7, Reg::S7, -8);
    a.ld(Reg::T2, 0, Reg::S7);
    a.bltu(Reg::S5, Reg::T2, j_scan);
    let part_done = a.new_label();
    a.bgeu(Reg::S6, Reg::S7, part_done);
    // swap
    a.sd(Reg::T2, 0, Reg::S6);
    a.sd(Reg::T1, 0, Reg::S7);
    a.j(part);
    a.bind(part_done);

    // j index = (S7 - S0) / 8
    a.sub(Reg::T3, Reg::S7, Reg::S0);
    a.srli(Reg::T3, Reg::T3, 3);
    // push (lo, j) and (j+1, hi)
    a.sd(Reg::S3, 0, Reg::S1);
    a.sd(Reg::T3, 8, Reg::S1);
    a.addi(Reg::S1, Reg::S1, 16);
    a.addi(Reg::T3, Reg::T3, 1);
    a.sd(Reg::T3, 0, Reg::S1);
    a.sd(Reg::S4, 8, Reg::S1);
    a.addi(Reg::S1, Reg::S1, 16);
    a.j(pop);
    a.bind(done);

    // checksum = sum arr[i] * (i+1)
    a.li(Reg::A0, 0);
    a.li(Reg::T0, 1);
    a.li(Reg::T1, n as i64);
    a.mv(Reg::T2, Reg::S0);
    let sum = a.here();
    a.ld(Reg::T3, 0, Reg::T2);
    a.mul(Reg::T3, Reg::T3, Reg::T0);
    a.add(Reg::A0, Reg::A0, Reg::T3);
    a.addi(Reg::T2, Reg::T2, 8);
    a.addi(Reg::T0, Reg::T0, 1);
    a.addi(Reg::T1, Reg::T1, -1);
    a.bnez(Reg::T1, sum);
    emit_output(&mut a, Reg::A0);
    a.halt();

    Workload {
        name: "qsort",
        suite: Suite::MiBenchLike,
        program: a.assemble().expect("qsort assembles"),
        expected: vec![reference],
        fuel: 8_000_000,
    }
}

/// AES-style T-table rounds (MiBench `rijndael`): four 1 KiB tables, byte
/// extraction with `slli+add` addressing, xor mixing across a 4-word state.
pub fn rijndael() -> Workload {
    let mut rng = StdRng::seed_from_u64(0xae5);
    let tables: Vec<Vec<u32>> = (0..4)
        .map(|_| (0..256).map(|_| rng.gen()).collect())
        .collect();
    let blocks = 900usize;
    let data: Vec<u64> = (0..blocks * 2).map(|_| rng.gen()).collect();
    let round_keys: Vec<u32> = (0..40).map(|_| rng.gen()).collect();

    let reference = {
        let mut acc = 0u64;
        for b in 0..blocks {
            let mut s = [
                (data[2 * b] & 0xffff_ffff) as u32,
                (data[2 * b] >> 32) as u32,
                (data[2 * b + 1] & 0xffff_ffff) as u32,
                (data[2 * b + 1] >> 32) as u32,
            ];
            for r in 0..10 {
                let mut t = [0u32; 4];
                for i in 0..4 {
                    t[i] = tables[0][(s[i] & 0xff) as usize]
                        ^ tables[1][((s[(i + 1) & 3] >> 8) & 0xff) as usize]
                        ^ tables[2][((s[(i + 2) & 3] >> 16) & 0xff) as usize]
                        ^ tables[3][((s[(i + 3) & 3] >> 24) & 0xff) as usize]
                        ^ round_keys[r * 4 + i];
                }
                s = t;
            }
            acc = acc.wrapping_add(s[0] as u64)
                .wrapping_add((s[1] as u64) << 16)
                .wrapping_add((s[2] as u64) << 32)
                .wrapping_add((s[3] as u64) << 48);
        }
        acc
    };

    let mut a = Asm::new();
    let t_addr: Vec<u64> = (0..4).map(|i| a.words32(&tables[i])).collect();
    let rk_addr = a.words32(&round_keys);
    let d_addr = a.words64(&data);
    let out_addr = a.zeros((blocks * 16 + 64) as u64, 64);
    a.la(Reg::S10, out_addr);

    a.la(Reg::S0, d_addr);
    a.li(Reg::S1, blocks as i64);
    a.li(Reg::S2, 0); // acc
    a.la(Reg::S3, t_addr[0]);
    a.la(Reg::S4, t_addr[1]);
    a.la(Reg::S5, t_addr[2]);
    a.la(Reg::S6, t_addr[3]);
    a.la(Reg::S7, rk_addr);
    let top = a.here();
    // Load state words: s0..s3 in A0..A3 (two contiguous ld = pair idiom,
    // then unpack).
    a.ld(Reg::T0, 0, Reg::S0);
    a.ld(Reg::T1, 8, Reg::S0);
    a.slli(Reg::A0, Reg::T0, 32);
    a.srli(Reg::A0, Reg::A0, 32);
    a.srli(Reg::A1, Reg::T0, 32);
    a.slli(Reg::A2, Reg::T1, 32);
    a.srli(Reg::A2, Reg::A2, 32);
    a.srli(Reg::A3, Reg::T1, 32);
    a.mv(Reg::S8, Reg::S7); // round key cursor
    a.li(Reg::S9, 10); // rounds
    let round = a.here();
    let state = [Reg::A0, Reg::A1, Reg::A2, Reg::A3];
    let out = [Reg::A4, Reg::A5, Reg::A6, Reg::A7];
    for i in 0..4 {
        // t[i] = T0[s[i]&ff] ^ T1[(s[i+1]>>8)&ff] ^ T2[(s[i+2]>>16)&ff]
        //        ^ T3[(s[i+3]>>24)&ff] ^ rk — address arithmetic for the
        // four lookups interleaved (scheduler-style; breaks back-to-back
        // slli+add idiom pairs like real compiled AES).
        a.andi(Reg::T0, state[i], 0xff);
        a.srli(Reg::T1, state[(i + 1) & 3], 8);
        a.slli(Reg::T0, Reg::T0, 2);
        a.andi(Reg::T1, Reg::T1, 0xff);
        a.add(Reg::T0, Reg::S3, Reg::T0);
        a.slli(Reg::T1, Reg::T1, 2);
        a.lwu(Reg::T2, 0, Reg::T0);
        a.add(Reg::T1, Reg::S4, Reg::T1);
        a.srli(Reg::T0, state[(i + 2) & 3], 16);
        a.lwu(Reg::T3, 0, Reg::T1);
        a.andi(Reg::T0, Reg::T0, 0xff);
        a.srli(Reg::T1, state[(i + 3) & 3], 24);
        a.slli(Reg::T0, Reg::T0, 2);
        a.andi(Reg::T1, Reg::T1, 0xff);
        a.add(Reg::T0, Reg::S5, Reg::T0);
        a.slli(Reg::T1, Reg::T1, 2);
        a.xor(Reg::T2, Reg::T2, Reg::T3);
        a.add(Reg::T1, Reg::S6, Reg::T1);
        a.lwu(Reg::T4, 0, Reg::T0);
        a.lwu(Reg::T5, 0, Reg::T1);
        a.xor(Reg::T2, Reg::T2, Reg::T4);
        a.lwu(Reg::T3, (i * 4) as i32, Reg::S8);
        a.xor(Reg::T2, Reg::T2, Reg::T5);
        a.xor(out[i], Reg::T2, Reg::T3);
    }
    for i in 0..4 {
        a.mv(state[i], out[i]);
    }
    a.addi(Reg::S8, Reg::S8, 16);
    a.addi(Reg::S9, Reg::S9, -1);
    a.bnez(Reg::S9, round);
    // Write the encrypted block to the output stream (interleaved with the
    // checksum accumulation: non-consecutive same-line store pairs).
    a.sw(Reg::A0, 0, Reg::S10);
    a.add(Reg::S2, Reg::S2, Reg::A0);
    a.sw(Reg::A1, 4, Reg::S10);
    a.slli(Reg::T0, Reg::A1, 16);
    a.add(Reg::S2, Reg::S2, Reg::T0);
    a.sw(Reg::A2, 8, Reg::S10);
    a.slli(Reg::T0, Reg::A2, 32);
    a.add(Reg::S2, Reg::S2, Reg::T0);
    a.sw(Reg::A3, 12, Reg::S10);
    a.slli(Reg::T0, Reg::A3, 48);
    a.add(Reg::S2, Reg::S2, Reg::T0);
    a.addi(Reg::S10, Reg::S10, 16);
    a.addi(Reg::S0, Reg::S0, 16);
    a.addi(Reg::S1, Reg::S1, -1);
    a.bnez(Reg::S1, top);
    emit_output(&mut a, Reg::S2);
    a.halt();

    Workload {
        name: "rijndael",
        suite: Suite::MiBenchLike,
        program: a.assemble().expect("rijndael assembles"),
        expected: vec![reference],
        fuel: 5_000_000,
    }
}

/// Cascaded integer biquad filter bank (MiBench `rsynth` stand-in): per
/// section, a 5-coefficient record and a `{z1, z2}` state record — the
/// state update is a natural store-pair, the coefficient fetch a load-pair
/// cluster.
pub fn rsynth() -> Workload {
    let mut rng = StdRng::seed_from_u64(0x5219);
    let sections = 8usize;
    let n = 2_000usize;
    let coef: Vec<i64> = (0..sections * 5).map(|_| rng.gen_range(-512..512i64)).collect();
    let input: Vec<i64> = (0..n).map(|_| rng.gen_range(-2048..2048i64)).collect();

    let reference = {
        let mut z = vec![0i64; sections * 2];
        let mut acc = 0u64;
        for &x0 in &input {
            let mut x = x0;
            for s in 0..sections {
                let (b0, b1, b2, a1, a2) = (
                    coef[s * 5],
                    coef[s * 5 + 1],
                    coef[s * 5 + 2],
                    coef[s * 5 + 3],
                    coef[s * 5 + 4],
                );
                let y = (b0.wrapping_mul(x).wrapping_add(z[s * 2])) >> 10;
                z[s * 2] = b1
                    .wrapping_mul(x)
                    .wrapping_sub(a1.wrapping_mul(y))
                    .wrapping_add(z[s * 2 + 1]);
                z[s * 2 + 1] = b2.wrapping_mul(x).wrapping_sub(a2.wrapping_mul(y));
                x = y;
            }
            acc = acc.wrapping_add(x as u64);
        }
        acc
    };

    let mut a = Asm::new();
    let coef_addr = a.words64(&coef.iter().map(|&v| v as u64).collect::<Vec<_>>());
    let state_addr = a.zeros((sections * 16) as u64, 64);
    let in_addr = a.words64(&input.iter().map(|&v| v as u64).collect::<Vec<_>>());

    a.la(Reg::S0, in_addr);
    a.li(Reg::S1, n as i64);
    a.li(Reg::S2, 0); // acc
    let top = a.here();
    a.ld(Reg::A0, 0, Reg::S0); // x
    a.la(Reg::S3, coef_addr);
    a.la(Reg::S4, state_addr);
    a.li(Reg::S5, sections as i64);
    let sec = a.here();
    a.ld(Reg::T0, 0, Reg::S3); // b0  — coefficient run (pairs)
    a.ld(Reg::T1, 8, Reg::S3); // b1
    a.ld(Reg::T2, 16, Reg::S3); // b2
    a.ld(Reg::T3, 24, Reg::S3); // a1
    a.ld(Reg::T4, 32, Reg::S3); // a2
    a.ld(Reg::A2, 0, Reg::S4); // z1  (load pair)
    a.ld(Reg::A3, 8, Reg::S4); // z2
    a.mul(Reg::T5, Reg::T0, Reg::A0);
    a.add(Reg::T5, Reg::T5, Reg::A2);
    a.srai(Reg::T5, Reg::T5, 10); // y
    a.mul(Reg::T6, Reg::T1, Reg::A0);
    a.mul(Reg::A4, Reg::T3, Reg::T5);
    a.sub(Reg::T6, Reg::T6, Reg::A4);
    a.add(Reg::T6, Reg::T6, Reg::A3); // z1'
    a.mul(Reg::A5, Reg::T2, Reg::A0);
    a.mul(Reg::A4, Reg::T4, Reg::T5);
    a.sub(Reg::A5, Reg::A5, Reg::A4); // z2'
    a.sd(Reg::T6, 0, Reg::S4); // store pair
    a.sd(Reg::A5, 8, Reg::S4);
    a.mv(Reg::A0, Reg::T5); // x = y
    a.addi(Reg::S3, Reg::S3, 40);
    a.addi(Reg::S4, Reg::S4, 16);
    a.addi(Reg::S5, Reg::S5, -1);
    a.bnez(Reg::S5, sec);
    a.add(Reg::S2, Reg::S2, Reg::A0);
    a.addi(Reg::S0, Reg::S0, 8);
    a.addi(Reg::S1, Reg::S1, -1);
    a.bnez(Reg::S1, top);
    emit_output(&mut a, Reg::S2);
    a.halt();

    Workload {
        name: "rsynth",
        suite: Suite::MiBenchLike,
        program: a.assemble().expect("rsynth assembles"),
        expected: vec![reference],
        fuel: 3_000_000,
    }
}
