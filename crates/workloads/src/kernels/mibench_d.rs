//! MiBench-like kernels: `sha`, `stringsearch`, `susan`, `typeset`.

use crate::{emit_output, Suite, Workload};
use helios_isa::{Asm, Reg};
use helios_prng::{Rng, SeedableRng, StdRng};

/// SHA-1-style compression (MiBench `sha`): message-schedule expansion
/// (contiguous word loads + rotate idioms) followed by 80 mixing rounds
/// built from `slli`/`srli`/`or` rotates — memory-light, shift-idiom-dense.
pub fn sha() -> Workload {
    let mut rng = StdRng::seed_from_u64(0x5a1);
    let blocks = 110usize;
    let msg: Vec<u32> = (0..blocks * 16).map(|_| rng.gen()).collect();

    let rotl = |x: u32, k: u32| x.rotate_left(k);
    let reference = {
        let mut h = [0x6745_2301u32, 0xefcd_ab89, 0x98ba_dcfe, 0x1032_5476, 0xc3d2_e1f0];
        for b in 0..blocks {
            let mut w = [0u32; 80];
            w[..16].copy_from_slice(&msg[b * 16..(b + 1) * 16]);
            for i in 16..80 {
                w[i] = rotl(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);
            }
            let (mut a, mut bb, mut c, mut d, mut e) = (h[0], h[1], h[2], h[3], h[4]);
            for (i, &wi) in w.iter().enumerate() {
                let (f, k) = match i / 20 {
                    0 => ((bb & c) | (!bb & d), 0x5a82_7999u32),
                    1 => (bb ^ c ^ d, 0x6ed9_eba1),
                    2 => ((bb & c) | (bb & d) | (c & d), 0x8f1b_bcdc),
                    _ => (bb ^ c ^ d, 0xca62_c1d6),
                };
                let t = rotl(a, 5)
                    .wrapping_add(f)
                    .wrapping_add(e)
                    .wrapping_add(k)
                    .wrapping_add(wi);
                e = d;
                d = c;
                c = rotl(bb, 30);
                bb = a;
                a = t;
            }
            h[0] = h[0].wrapping_add(a);
            h[1] = h[1].wrapping_add(bb);
            h[2] = h[2].wrapping_add(c);
            h[3] = h[3].wrapping_add(d);
            h[4] = h[4].wrapping_add(e);
        }
        h.iter().fold(0u64, |acc, &x| acc.wrapping_add(x as u64))
    };

    let mut a = Asm::new();
    let msg_addr = a.words32(&msg);
    let w_addr = a.zeros(80 * 4, 64);
    // h state kept in S2..S6 (32-bit, zero-extended).
    a.la(Reg::S0, msg_addr);
    a.li(Reg::S1, blocks as i64);
    a.li(Reg::S2, 0x6745_2301);
    a.slli(Reg::S2, Reg::S2, 32);
    a.srli(Reg::S2, Reg::S2, 32); // clear-upper idiom, h0 zero-extended
    a.li(Reg::S3, 0xefcd_ab89);
    a.li(Reg::S4, 0x98ba_dcfe);
    a.li(Reg::S5, 0x1032_5476);
    a.li(Reg::S6, 0xc3d2_e1f0);
    a.la(Reg::S7, w_addr);

    // rotl(x, k) on zero-extended u32 in `reg` using t6 as scratch.
    // (emitted inline; clobbers T6)
    let block = a.here();
    // w[0..16] = msg words.
    a.li(Reg::T0, 0);
    let copy = a.here();
    a.slli(Reg::T1, Reg::T0, 2);
    a.add(Reg::T2, Reg::S0, Reg::T1);
    a.lwu(Reg::T3, 0, Reg::T2);
    a.add(Reg::T2, Reg::S7, Reg::T1);
    a.sw(Reg::T3, 0, Reg::T2);
    a.addi(Reg::T0, Reg::T0, 1);
    a.li(Reg::T1, 16);
    a.blt(Reg::T0, Reg::T1, copy);
    // schedule expansion.
    let expand = a.here();
    a.slli(Reg::T1, Reg::T0, 2);
    a.add(Reg::T1, Reg::S7, Reg::T1); // &w[i]
    a.lwu(Reg::T2, -12, Reg::T1);
    a.lwu(Reg::T3, -32, Reg::T1);
    a.xor(Reg::T2, Reg::T2, Reg::T3);
    a.lwu(Reg::T3, -56, Reg::T1);
    a.xor(Reg::T2, Reg::T2, Reg::T3);
    a.lwu(Reg::T3, -64, Reg::T1);
    a.xor(Reg::T2, Reg::T2, Reg::T3);
    // rotl1
    a.slli(Reg::T3, Reg::T2, 1);
    a.srli(Reg::T2, Reg::T2, 31);
    a.or(Reg::T2, Reg::T2, Reg::T3);
    a.slli(Reg::T2, Reg::T2, 32);
    a.srli(Reg::T2, Reg::T2, 32);
    a.sw(Reg::T2, 0, Reg::T1);
    a.addi(Reg::T0, Reg::T0, 1);
    a.li(Reg::T1, 80);
    a.blt(Reg::T0, Reg::T1, expand);

    // rounds: a=A0 b=A1 c=A2 d=A3 e=A4
    a.mv(Reg::A0, Reg::S2);
    a.mv(Reg::A1, Reg::S3);
    a.mv(Reg::A2, Reg::S4);
    a.mv(Reg::A3, Reg::S5);
    a.mv(Reg::A4, Reg::S6);
    for phase in 0..4 {
        a.li(Reg::T0, 20); // per-phase counter
        a.li(Reg::A6, (phase * 20 * 4) as i64);
        a.add(Reg::A6, Reg::S7, Reg::A6); // &w[phase*20]
        let k: i64 = match phase {
            0 => 0x5a82_7999,
            1 => 0x6ed9_eba1,
            2 => 0x8f1b_bcdc_u32 as i64,
            _ => 0xca62_c1d6_u32 as i64,
        };
        a.li(Reg::A7, k);
        let round = a.here();
        // f per phase
        match phase {
            0 => {
                a.and(Reg::T1, Reg::A1, Reg::A2);
                a.not(Reg::T2, Reg::A1);
                a.and(Reg::T2, Reg::T2, Reg::A3);
                a.or(Reg::T1, Reg::T1, Reg::T2);
                // mask to 32 bits (not() set high bits)
                a.slli(Reg::T1, Reg::T1, 32);
                a.srli(Reg::T1, Reg::T1, 32);
            }
            2 => {
                a.and(Reg::T1, Reg::A1, Reg::A2);
                a.and(Reg::T2, Reg::A1, Reg::A3);
                a.or(Reg::T1, Reg::T1, Reg::T2);
                a.and(Reg::T2, Reg::A2, Reg::A3);
                a.or(Reg::T1, Reg::T1, Reg::T2);
            }
            _ => {
                a.xor(Reg::T1, Reg::A1, Reg::A2);
                a.xor(Reg::T1, Reg::T1, Reg::A3);
            }
        }
        // t = rotl(a,5) + f + e + k + w[i]
        a.slli(Reg::T2, Reg::A0, 5);
        a.srli(Reg::T3, Reg::A0, 27);
        a.or(Reg::T2, Reg::T2, Reg::T3);
        a.add(Reg::T2, Reg::T2, Reg::T1);
        a.add(Reg::T2, Reg::T2, Reg::A4);
        a.add(Reg::T2, Reg::T2, Reg::A7);
        a.lwu(Reg::T3, 0, Reg::A6);
        a.add(Reg::T2, Reg::T2, Reg::T3);
        a.slli(Reg::T2, Reg::T2, 32); // truncate to u32
        a.mv(Reg::A4, Reg::A3); // scheduled between the shift halves
        a.srli(Reg::T2, Reg::T2, 32);
        // e=d d=c c=rotl(b,30) b=a a=t
        a.mv(Reg::A3, Reg::A2);
        a.slli(Reg::T3, Reg::A1, 30);
        a.srli(Reg::A2, Reg::A1, 2);
        a.or(Reg::A2, Reg::A2, Reg::T3);
        a.slli(Reg::A2, Reg::A2, 32);
        a.addi(Reg::A6, Reg::A6, 4); // advance w pointer in the gap
        a.srli(Reg::A2, Reg::A2, 32);
        a.mv(Reg::A1, Reg::A0);
        a.mv(Reg::A0, Reg::T2);
        a.addi(Reg::T0, Reg::T0, -1);
        a.bnez(Reg::T0, round);
    }
    // h += state, truncated to 32 bits.
    for (h, v) in [
        (Reg::S2, Reg::A0),
        (Reg::S3, Reg::A1),
        (Reg::S4, Reg::A2),
        (Reg::S5, Reg::A3),
        (Reg::S6, Reg::A4),
    ] {
        a.add(h, h, v);
        a.slli(h, h, 32);
        a.srli(h, h, 32);
    }
    a.addi(Reg::S0, Reg::S0, 64);
    a.addi(Reg::S1, Reg::S1, -1);
    a.bnez(Reg::S1, block);

    a.add(Reg::A0, Reg::S2, Reg::S3);
    a.add(Reg::A0, Reg::A0, Reg::S4);
    a.add(Reg::A0, Reg::A0, Reg::S5);
    a.add(Reg::A0, Reg::A0, Reg::S6);
    emit_output(&mut a, Reg::A0);
    a.halt();

    Workload {
        name: "sha",
        suite: Suite::MiBenchLike,
        program: a.assemble().expect("sha assembles"),
        expected: vec![reference],
        fuel: 5_000_000,
    }
}

/// Horspool substring search (MiBench `stringsearch`): a 256-entry skip
/// table, byte loads, and a compare loop with data-dependent branches.
pub fn stringsearch() -> Workload {
    let mut rng = StdRng::seed_from_u64(0x57a);
    let n = 30_000usize;
    let pattern: Vec<u8> = b"helios!!".to_vec();
    let m = pattern.len();
    let mut text: Vec<u8> = (0..n).map(|_| rng.gen_range(b'a'..=b'z')).collect();
    // Plant occurrences.
    let mut i = 1500usize;
    while i + m < n {
        text[i..i + m].copy_from_slice(&pattern);
        i += rng.gen_range(1800..2600usize);
    }

    let reference = {
        let mut skip = [m as u64; 256];
        for (i, &b) in pattern.iter().enumerate().take(m - 1) {
            skip[b as usize] = (m - 1 - i) as u64;
        }
        let mut count = 0u64;
        let mut pos = 0usize;
        while pos + m <= n {
            let mut k = m;
            while k > 0 && text[pos + k - 1] == pattern[k - 1] {
                k -= 1;
            }
            if k == 0 {
                count += 1;
                pos += 1;
            } else {
                pos += skip[text[pos + m - 1] as usize] as usize;
            }
        }
        count
    };

    let mut a = Asm::new();
    let mut skip = vec![m as u64; 256];
    for (i, &b) in pattern.iter().enumerate().take(m - 1) {
        skip[b as usize] = (m - 1 - i) as u64;
    }
    let skip_addr = a.words64(&skip);
    let text_addr = a.bytes_aligned(text, 8);
    let pat_addr = a.bytes_aligned(pattern.clone(), 8);

    a.la(Reg::S0, text_addr);
    a.la(Reg::S1, pat_addr);
    a.la(Reg::S2, skip_addr);
    a.li(Reg::S3, 0); // pos
    a.li(Reg::S4, (n - m) as i64); // last valid pos
    a.li(Reg::S5, 0); // count
    a.li(Reg::S6, m as i64);
    let outer = a.here();
    let done = a.new_label();
    a.blt(Reg::S4, Reg::S3, done);
    // compare from the right: k = m
    a.mv(Reg::T0, Reg::S6); // k
    let cmp = a.here();
    let mismatch = a.new_label();
    let matched = a.new_label();
    a.beqz(Reg::T0, matched);
    a.add(Reg::T1, Reg::S3, Reg::T0);
    a.add(Reg::T1, Reg::S0, Reg::T1);
    a.lbu(Reg::T2, -1, Reg::T1); // text[pos+k-1]
    a.add(Reg::T3, Reg::S1, Reg::T0);
    a.lbu(Reg::T4, -1, Reg::T3); // pattern[k-1]
    a.bne(Reg::T2, Reg::T4, mismatch);
    a.addi(Reg::T0, Reg::T0, -1);
    a.j(cmp);
    a.bind(matched);
    a.addi(Reg::S5, Reg::S5, 1);
    a.addi(Reg::S3, Reg::S3, 1);
    a.j(outer);
    a.bind(mismatch);
    a.add(Reg::T1, Reg::S3, Reg::S6);
    a.add(Reg::T1, Reg::S0, Reg::T1);
    a.lbu(Reg::T2, -1, Reg::T1); // text[pos+m-1]
    a.slli(Reg::T2, Reg::T2, 3);
    a.mv(Reg::T0, Reg::S6) /* gap */;
    a.add(Reg::T2, Reg::S2, Reg::T2);
    a.ld(Reg::T3, 0, Reg::T2);
    a.add(Reg::S3, Reg::S3, Reg::T3);
    a.j(outer);
    a.bind(done);
    emit_output(&mut a, Reg::S5);
    a.halt();

    Workload {
        name: "stringsearch",
        suite: Suite::MiBenchLike,
        program: a.assemble().expect("stringsearch assembles"),
        expected: vec![reference],
        fuel: 3_000_000,
    }
}

/// SUSAN-style corner response (MiBench `susan`): per-pixel absolute
/// differences against eight neighbours through a 256-byte LUT — byte loads
/// plus a dense mask/shift ALU core (one of Fig. 2's "Others prevalent"
/// applications).
pub fn susan() -> Workload {
    let mut rng = StdRng::seed_from_u64(0x5a5a);
    let w = 80usize;
    let h = 80usize;
    let img: Vec<u8> = (0..w * h).map(|_| rng.gen()).collect();
    let lut: Vec<u8> = (0..256).map(|d| if d < 24 { 100u8 } else { 0 }).collect();

    let reference = {
        let mut corners = 0u64;
        let mut acc = 0u64;
        for y in 1..h - 1 {
            for x in 1..w - 1 {
                let c = img[y * w + x] as i64;
                let mut usan = 0u64;
                for (dy, dx) in [
                    (-1i64, -1i64),
                    (-1, 0),
                    (-1, 1),
                    (0, -1),
                    (0, 1),
                    (1, -1),
                    (1, 0),
                    (1, 1),
                ] {
                    let nb = img[((y as i64 + dy) as usize) * w + (x as i64 + dx) as usize] as i64;
                    let d = c - nb;
                    let ad = if d < 0 { -d } else { d } as usize;
                    usan += lut[ad] as u64;
                }
                acc = acc.wrapping_add(usan);
                if usan < 300 {
                    corners += 1;
                }
            }
        }
        acc.wrapping_add(corners << 32)
    };

    let mut a = Asm::new();
    let img_addr = a.bytes_aligned(img, 64);
    let lut_addr = a.bytes_aligned(lut, 64);
    a.la(Reg::S0, img_addr);
    a.la(Reg::S1, lut_addr);
    a.li(Reg::S2, 0); // acc
    a.li(Reg::S3, 0); // corners
    a.li(Reg::S4, 1); // y
    let row = a.here();
    a.li(Reg::S5, 1); // x
    let col = a.here();
    // center pointer = img + y*w + x
    a.li(Reg::T0, w as i64);
    a.mul(Reg::T0, Reg::S4, Reg::T0);
    a.add(Reg::T0, Reg::T0, Reg::S5);
    a.add(Reg::T0, Reg::S0, Reg::T0);
    a.lbu(Reg::T1, 0, Reg::T0); // center
    a.li(Reg::A4, 0); // usan
    for off in [
        -(w as i32) - 1,
        -(w as i32),
        -(w as i32) + 1,
        -1,
        1,
        w as i32 - 1,
        w as i32,
        w as i32 + 1,
    ] {
        a.lbu(Reg::T2, off, Reg::T0);
        a.sub(Reg::T3, Reg::T1, Reg::T2);
        // |d| branch-free: mask = d >> 63; |d| = (d ^ mask) - mask
        a.srai(Reg::T4, Reg::T3, 63);
        a.xor(Reg::T3, Reg::T3, Reg::T4);
        a.sub(Reg::T3, Reg::T3, Reg::T4);
        a.add(Reg::T3, Reg::S1, Reg::T3);
        a.lbu(Reg::T3, 0, Reg::T3);
        a.add(Reg::A4, Reg::A4, Reg::T3);
    }
    a.add(Reg::S2, Reg::S2, Reg::A4);
    let no_corner = a.new_label();
    a.li(Reg::T2, 300);
    a.bgeu(Reg::A4, Reg::T2, no_corner);
    a.addi(Reg::S3, Reg::S3, 1);
    a.bind(no_corner);
    a.addi(Reg::S5, Reg::S5, 1);
    a.li(Reg::T2, (w - 1) as i64);
    a.blt(Reg::S5, Reg::T2, col);
    a.addi(Reg::S4, Reg::S4, 1);
    a.li(Reg::T2, (h - 1) as i64);
    a.blt(Reg::S4, Reg::T2, row);
    a.slli(Reg::S3, Reg::S3, 32);
    a.add(Reg::A0, Reg::S2, Reg::S3);
    emit_output(&mut a, Reg::A0);
    a.halt();

    Workload {
        name: "susan",
        suite: Suite::MiBenchLike,
        program: a.assemble().expect("susan assembles"),
        expected: vec![reference],
        fuel: 5_000_000,
    }
}

/// Greedy line-breaking (MiBench-era `typeset` stand-in): 16-byte item
/// records `{width, penalty}` (load pairs) accumulated into emitted line
/// records `{total, count}` (store pairs) — store-side pressure plus
/// branchy control.
pub fn typeset() -> Workload {
    let mut rng = StdRng::seed_from_u64(0x7e7e);
    let n = 12_000usize;
    let items: Vec<(u64, u64)> = (0..n)
        .map(|_| (rng.gen_range(1..12u64), rng.gen_range(0..5u64)))
        .collect();
    let line_width = 60u64;

    let reference = {
        let mut acc = 0u64;
        let mut lines = 0u64;
        let (mut total, mut count) = (0u64, 0u64);
        for &(w, p) in &items {
            if total + w > line_width {
                acc = acc.wrapping_add(total.wrapping_mul(count)).wrapping_add(p);
                lines += 1;
                total = 0;
                count = 0;
            }
            total += w;
            count += 1;
            // The typesetter journals per-item layout state (galley record).
        }
        acc.wrapping_add(lines << 32)
    };

    let mut a = Asm::new();
    let mut flat = Vec::with_capacity(n * 2);
    for &(w, p) in &items {
        flat.push(w);
        flat.push(p);
    }
    let items_addr = a.words64(&flat);
    let out_addr = a.zeros((n * 16) as u64, 64);

    a.la(Reg::S0, items_addr);
    a.li(Reg::S1, n as i64);
    a.li(Reg::S2, 0); // acc
    a.li(Reg::S3, 0); // lines
    a.li(Reg::S4, 0); // total
    a.li(Reg::S5, 0); // count
    a.la(Reg::S6, out_addr);
    a.li(Reg::S7, line_width as i64);
    let top = a.here();
    let fits = a.new_label();
    a.ld(Reg::T0, 0, Reg::S0); // item width — head nucleus
    a.add(Reg::T2, Reg::S4, Reg::T0); // catalyst
    a.ld(Reg::T1, 8, Reg::S0); // item penalty — contiguous NCSF tail
    a.bgeu(Reg::S7, Reg::T2, fits);
    // emit: fold the finished line into the checksum
    a.mul(Reg::T3, Reg::S4, Reg::S5);
    a.add(Reg::S2, Reg::S2, Reg::T3);
    a.add(Reg::S2, Reg::S2, Reg::T1);
    a.addi(Reg::S3, Reg::S3, 1);
    a.li(Reg::S4, 0);
    a.li(Reg::S5, 0);
    a.bind(fits);
    a.add(Reg::S4, Reg::S4, Reg::T0);
    a.addi(Reg::S5, Reg::S5, 1);
    // Journal the per-item galley record {running total, item count}:
    // a store pair per item into a streaming output region.
    a.sd(Reg::S4, 0, Reg::S6);
    a.addi(Reg::S0, Reg::S0, 16);
    a.sd(Reg::S5, 8, Reg::S6); // non-consecutive same-line store (NCSF)
    a.addi(Reg::S6, Reg::S6, 16);
    a.addi(Reg::S1, Reg::S1, -1);
    a.bnez(Reg::S1, top);
    a.slli(Reg::S3, Reg::S3, 32);
    a.add(Reg::A0, Reg::S2, Reg::S3);
    emit_output(&mut a, Reg::A0);
    a.halt();

    Workload {
        name: "typeset",
        suite: Suite::MiBenchLike,
        program: a.assemble().expect("typeset assembles"),
        expected: vec![reference],
        fuel: 3_000_000,
    }
}
