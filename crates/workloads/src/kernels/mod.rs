//! Kernel registry: one constructor per paper benchmark.

mod mibench_a;
mod mibench_b;
mod mibench_c;
mod mibench_d;
mod spec_a;
mod spec_b;

use crate::Workload;

/// Builds every workload of the evaluation, in the paper's table order
/// (SPEC rows first, then MiBench).
pub fn all_workloads() -> Vec<Workload> {
    vec![
        spec_a::perlbench_1(),
        spec_a::perlbench_2(),
        spec_a::perlbench_3(),
        spec_a::gcc_1(),
        spec_a::gcc_2(),
        spec_a::gcc_3(),
        spec_b::mcf(),
        spec_b::omnetpp(),
        spec_b::xalancbmk(),
        spec_b::deepsjeng(),
        spec_b::leela(),
        spec_b::exchange2(),
        spec_b::xz_1(),
        spec_b::xz_2(),
        mibench_a::adpcm(),
        mibench_a::basicmath(),
        mibench_a::bitcount(),
        mibench_a::blowfish(),
        mibench_a::crc32(),
        mibench_b::dijkstra(),
        mibench_b::fft(),
        mibench_b::gsm_toast(),
        mibench_b::gsm_untoast(),
        mibench_b::jpeg(),
        mibench_c::patricia(),
        mibench_c::qsort(),
        mibench_c::rijndael(),
        mibench_c::rsynth(),
        mibench_d::sha(),
        mibench_d::stringsearch(),
        mibench_d::susan(),
        mibench_d::typeset(),
    ]
}

/// Builds a single workload by its paper name.
pub fn workload(name: &str) -> Option<Workload> {
    all_workloads().into_iter().find(|w| w.name == name)
}
