//! SPEC-like kernels: `600.perlbench_{1,2,3}` (hash tables + strings) and
//! `602.gcc_{1,2,3}` (IR interpretation over quad records).

use crate::{emit_output, Suite, Workload};
use helios_isa::{Asm, Reg};
use helios_prng::{Rng, SeedableRng, StdRng};

/// Multiplicative 64-bit hash shared by the asm kernel and the reference.
fn hash64(key: u64) -> u64 {
    let h = key.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    h ^ (h >> 29)
}

/// Hash-table lookup storm (perlbench's hot loop): bucket-head load, then a
/// chain walk touching `{hash, value, next}` fields of 32-byte nodes —
/// same-line non-consecutive loads plus pointer chasing.
fn perlbench(variant: usize) -> Workload {
    let (n_keys, n_buckets, n_lookups, seed) = match variant {
        1 => (4_000usize, 1_024usize, 7_000usize, 0x9e11u64),
        2 => (8_000, 512, 6_000, 0x9e12), // longer chains
        _ => (2_000, 2_048, 8_000, 0x9e13), // shorter chains
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let keys: Vec<u64> = (0..n_keys).map(|_| rng.gen()).collect();
    let values: Vec<u64> = (0..n_keys).map(|_| rng.gen::<u32>() as u64).collect();
    let queries: Vec<u64> = (0..n_lookups)
        .map(|_| {
            if rng.gen_bool(0.8) {
                keys[rng.gen_range(0..n_keys)]
            } else {
                rng.gen() // mostly misses
            }
        })
        .collect();

    // Reference.
    let reference = {
        use std::collections::HashMap;
        let mut map: HashMap<u64, u64> = HashMap::new();
        for i in 0..n_keys {
            map.insert(hash64(keys[i]), values[i]);
        }
        // Chain insertion order: later duplicates of the same hash shadow
        // earlier ones in our front-inserted chains; mirror by letting the
        // last insert win (HashMap insert does).
        let mut acc = 0u64;
        for &q in &queries {
            if let Some(&v) = map.get(&hash64(q)) {
                acc = acc.wrapping_add(v);
            } else {
                acc = acc.wrapping_add(1);
            }
        }
        acc
    };

    let mut a = Asm::new();
    // Layout: nodes (32 B each), bucket-head table (8 B entries).
    let nodes_base = a.zeros(0, 64);
    let mut node_words: Vec<u64> = Vec::with_capacity(n_keys * 4);
    let mut heads = vec![0u64; n_buckets];
    for i in 0..n_keys {
        let h = hash64(keys[i]);
        let b = (h as usize) & (n_buckets - 1);
        let addr = nodes_base + (i as u64) * 32;
        // Front insertion: this node becomes the head, pointing at the old
        // head — so the *latest* insert of a hash is found first (matches
        // HashMap shadowing).
        // Layout {hash, pad, next, value}: hash and next live at offsets 0
        // and 16 of the same cache line — same-line but not contiguous, the
        // paper's NCTF category.
        node_words.push(h);
        node_words.push(0);
        node_words.push(heads[b]);
        node_words.push(values[i]);
        heads[b] = addr;
    }
    let nodes_addr = a.words64(&node_words);
    assert_eq!(nodes_addr, nodes_base);
    let heads_addr = a.words64(&heads);
    let q_addr = a.words64(&queries);

    a.la(Reg::S0, q_addr);
    a.li(Reg::S1, n_lookups as i64);
    a.la(Reg::S2, heads_addr);
    a.li(Reg::S3, 0); // acc
    a.li(Reg::S4, (n_buckets - 1) as i64);
    a.li(Reg::S5, 0x9e37_79b9_7f4a_7c15u64 as i64);
    let top = a.here();
    a.ld(Reg::T0, 0, Reg::S0); // query key
    // h = hash64(key)
    a.mul(Reg::T0, Reg::T0, Reg::S5);
    a.srli(Reg::T1, Reg::T0, 29);
    a.xor(Reg::T0, Reg::T0, Reg::T1);
    // bucket head
    a.and(Reg::T1, Reg::T0, Reg::S4);
    a.slli(Reg::T1, Reg::T1, 3);
    a.addi(Reg::S0, Reg::S0, 8); // advance query cursor early
    a.add(Reg::T1, Reg::S2, Reg::T1);
    a.ld(Reg::T2, 0, Reg::T1); // node ptr
    let walk = a.here();
    let miss = a.new_label();
    let hit = a.new_label();
    let next_q = a.new_label();
    a.beqz(Reg::T2, miss);
    a.ld(Reg::T3, 0, Reg::T2); // node.hash — head nucleus
    a.xor(Reg::T5, Reg::T3, Reg::T0); // compare computation (catalyst)
    a.ld(Reg::T6, 16, Reg::T2); // node.next — same-line NCSF tail
    a.beqz(Reg::T5, hit);
    a.mv(Reg::T2, Reg::T6);
    a.j(walk);
    a.bind(hit);
    a.ld(Reg::T4, 24, Reg::T2); // node.value
    a.add(Reg::S3, Reg::S3, Reg::T4);
    a.j(next_q);
    a.bind(miss);
    a.addi(Reg::S3, Reg::S3, 1);
    a.bind(next_q);
    a.addi(Reg::S1, Reg::S1, -1);
    a.bnez(Reg::S1, top);
    emit_output(&mut a, Reg::S3);
    a.halt();

    let name: &'static str = match variant {
        1 => "600.perlbench_1",
        2 => "600.perlbench_2",
        _ => "600.perlbench_3",
    };
    Workload {
        name,
        suite: Suite::SpecLike,
        program: a.assemble().expect("perlbench assembles"),
        expected: vec![reference],
        fuel: 5_000_000,
    }
}

pub fn perlbench_1() -> Workload {
    perlbench(1)
}
pub fn perlbench_2() -> Workload {
    perlbench(2)
}
pub fn perlbench_3() -> Workload {
    perlbench(3)
}

/// Quad-based IR interpreter (gcc's constant-folding/propagation hot loops):
/// 16-byte quads `{op, lhs, rhs, dest}` drive loads from a 64-entry virtual
/// register file, ALU work selected by a branch tree, and a result store.
fn gcc(variant: usize) -> Workload {
    let (n_quads, passes, seed) = match variant {
        1 => (3_000usize, 5usize, 0x6cc1u64),
        2 => (1_500, 10, 0x6cc2),
        _ => (6_000, 3, 0x6cc3),
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let n_vregs = 64usize;
    // op: 0 add, 1 sub, 2 and, 3 or, 4 xor, 5 sll, 6 srl, 7 mul.
    // Ops arrive in short runs (compilers emit clustered operations), which
    // keeps the interpreter's dispatch branches predictable — real gcc
    // traces are far more regular than uniform randomness.
    let quads: Vec<(u32, u32, u32, u32)> = {
        let mut v = Vec::with_capacity(n_quads);
        let mut op = 0u32;
        let mut window = 0u32; // active 8-register neighbourhood
        while v.len() < n_quads {
            if v.len() % rng.gen_range(6..14usize) == 0 {
                op = rng.gen_range(0..8u32);
                window = rng.gen_range(0..(n_vregs as u32) / 8) * 8;
            }
            // Operands cluster in one 8-register (64-byte, one-line)
            // neighbourhood, like compiler temporaries.
            v.push((
                op,
                window + rng.gen_range(0..8u32),
                window + rng.gen_range(0..8u32),
                window + rng.gen_range(0..8u32),
            ));
        }
        v
    };
    let init_regs: Vec<u64> = (0..n_vregs).map(|_| rng.gen()).collect();

    let eval = |op: u32, a: u64, b: u64| -> u64 {
        match op {
            0 => a.wrapping_add(b),
            1 => a.wrapping_sub(b),
            2 => a & b,
            3 => a | b,
            4 => a ^ b,
            5 => a << (b & 63),
            6 => a >> (b & 63),
            _ => a.wrapping_mul(b),
        }
    };
    let reference = {
        let mut regs = init_regs.clone();
        for _ in 0..passes {
            for &(op, l, r, d) in &quads {
                regs[d as usize] = eval(op, regs[l as usize], regs[r as usize]);
            }
        }
        regs.iter().fold(0u64, |a, &v| a.wrapping_add(v))
    };

    let mut a = Asm::new();
    let mut quad_words: Vec<u32> = Vec::with_capacity(n_quads * 4);
    for &(op, l, r, d) in &quads {
        quad_words.extend_from_slice(&[op, l, r, d]);
    }
    let quads_addr = a.words32(&quad_words);
    let regs_addr = a.words64(&init_regs);

    a.la(Reg::S1, regs_addr);
    a.li(Reg::S2, passes as i64);
    let pass_top = a.here();
    a.la(Reg::S0, quads_addr);
    a.li(Reg::S3, n_quads as i64);
    let top = a.here();
    // Load the quad: four contiguous words (pair idioms).
    a.lwu(Reg::T0, 0, Reg::S0); // op
    a.lwu(Reg::T1, 4, Reg::S0); // lhs
    a.lwu(Reg::T2, 8, Reg::S0); // rhs
    a.lwu(Reg::T3, 12, Reg::S0); // dest
    // operand loads (address arithmetic interleaved, scheduler-style)
    a.slli(Reg::T1, Reg::T1, 3);
    a.slli(Reg::T2, Reg::T2, 3);
    a.add(Reg::T1, Reg::S1, Reg::T1);
    a.add(Reg::T2, Reg::S1, Reg::T2);
    a.ld(Reg::A2, 0, Reg::T1);
    a.ld(Reg::A3, 0, Reg::T2);
    // branch tree on op
    let l_hi = a.new_label(); // ops 4..7
    let l_01 = a.new_label();
    let l_23 = a.new_label();
    let l_45 = a.new_label();
    let l_67 = a.new_label();
    let op1 = a.new_label();
    let op2 = a.new_label();
    let op3 = a.new_label();
    let op5 = a.new_label();
    let op6 = a.new_label();
    let op7 = a.new_label();
    let store = a.new_label();
    a.li(Reg::T4, 4);
    a.bgeu(Reg::T0, Reg::T4, l_hi);
    a.li(Reg::T4, 2);
    a.bgeu(Reg::T0, Reg::T4, l_23);
    a.bind(l_01);
    a.bnez(Reg::T0, op1);
    a.add(Reg::A4, Reg::A2, Reg::A3);
    a.j(store);
    a.bind(op1);
    a.sub(Reg::A4, Reg::A2, Reg::A3);
    a.j(store);
    a.bind(l_23);
    a.andi(Reg::T4, Reg::T0, 1);
    a.bnez(Reg::T4, op3);
    a.bind(op2);
    a.and(Reg::A4, Reg::A2, Reg::A3);
    a.j(store);
    a.bind(op3);
    a.or(Reg::A4, Reg::A2, Reg::A3);
    a.j(store);
    a.bind(l_hi);
    a.li(Reg::T4, 6);
    a.bgeu(Reg::T0, Reg::T4, l_67);
    a.bind(l_45);
    a.andi(Reg::T4, Reg::T0, 1);
    a.bnez(Reg::T4, op5);
    a.xor(Reg::A4, Reg::A2, Reg::A3);
    a.j(store);
    a.bind(op5);
    a.sll(Reg::A4, Reg::A2, Reg::A3);
    a.j(store);
    a.bind(l_67);
    a.andi(Reg::T4, Reg::T0, 1);
    a.bnez(Reg::T4, op7);
    a.bind(op6);
    a.srl(Reg::A4, Reg::A2, Reg::A3);
    a.j(store);
    a.bind(op7);
    a.mul(Reg::A4, Reg::A2, Reg::A3);
    a.bind(store);
    a.slli(Reg::T3, Reg::T3, 3);
    a.addi(Reg::S0, Reg::S0, 16);
    a.add(Reg::T3, Reg::S1, Reg::T3);
    a.sd(Reg::A4, 0, Reg::T3);
    a.addi(Reg::S3, Reg::S3, -1);
    a.bnez(Reg::S3, top);
    a.addi(Reg::S2, Reg::S2, -1);
    a.bnez(Reg::S2, pass_top);

    // checksum
    a.li(Reg::A0, 0);
    a.li(Reg::T0, n_vregs as i64);
    a.mv(Reg::T1, Reg::S1);
    let sum = a.here();
    a.ld(Reg::T2, 0, Reg::T1);
    a.add(Reg::A0, Reg::A0, Reg::T2);
    a.addi(Reg::T1, Reg::T1, 8);
    a.addi(Reg::T0, Reg::T0, -1);
    a.bnez(Reg::T0, sum);
    emit_output(&mut a, Reg::A0);
    a.halt();

    let name: &'static str = match variant {
        1 => "602.gcc_1",
        2 => "602.gcc_2",
        _ => "602.gcc_3",
    };
    Workload {
        name,
        suite: Suite::SpecLike,
        program: a.assemble().expect("gcc assembles"),
        expected: vec![reference],
        fuel: 5_000_000,
    }
}

pub fn gcc_1() -> Workload {
    gcc(1)
}
pub fn gcc_2() -> Workload {
    gcc(2)
}
pub fn gcc_3() -> Workload {
    gcc(3)
}
